/**
 * @file
 * SABRE/MIRAGE routing engine: front-layer DAG walk, extended-set
 * lookahead scoring, SWAP selection, the mirror-gate intermediate layer
 * with aggression policies, and multi-trial post-selection.
 *
 * Hot-path design (the routing phase dominates transpile time, paper
 * Fig. 13): every scoring quantity is an exact integer distance sum,
 * combined into the floating-point heuristic by ONE shared expression
 * (combineHeuristic / combineOutlook). A per-pass scratch arena
 * (epoch-stamped `seen`, reusable front/extended/candidate buffers,
 * per-wire touch lists) makes the steady state allocation-free, and
 * swap candidates are scored incrementally: the base sums are built
 * once per stall step, and a candidate SWAP (pa, pb) only adjusts the
 * contributions of nodes touching pa or pb (ScoreMode::Delta). The
 * allocation-heavy full-rescan scorer survives as ScoreMode::Naive -- a
 * runtime test hook, not an #ifdef -- and produces bit-identical
 * results because both modes feed the same integer sums through the
 * same combiner. Since distances are small non-negative ints, the sums
 * are exact in any accumulation order, so Delta == Naive holds for
 * every extendedSetWeight; with the default weight 0.5 (exactly
 * representable halves) the combined doubles also reproduce the
 * historical per-term accumulation bit for bit.
 */

#include "router/sabre.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "circuit/dag.hh"
#include "common/logging.hh"
#include "mirage/depth_metric.hh"
#include "weyl/catalog.hh"
#include "weyl/coordinates.hh"

namespace mirage::router {

using circuit::Circuit;
using circuit::DagCircuit;
using circuit::Gate;
using circuit::GateKind;
using layout::Layout;
using topology::CouplingMap;

namespace {

/**
 * One front/extended node's contribution pinned to a physical wire:
 * stored under both endpoints so a candidate SWAP (pa, pb) can find
 * every affected node by scanning just touch[pa] and touch[pb].
 */
struct TouchEntry
{
    int other;     ///< the node's other physical endpoint
    int dist;      ///< distance under the live layout
    bool in_front; ///< blocked-front node (else extended-set node)
};

/**
 * Exact integer distance sums over the blocked front (F) and extended
 * set (E). `fine*` are plain distance sums (the SABRE heuristic and
 * the mirror tiebreaker); `unit*` are future-SWAP sums max(0, d-1)
 * (the mirror outlook). Integers make the scores order-independent:
 * a delta-adjusted sum equals a full rescan exactly.
 */
struct ScoreSums
{
    long long fineFront = 0;
    long long fineExt = 0;
    long long unitFront = 0;
    long long unitExt = 0;
};

/**
 * SABRE heuristic H = 1/|F| sum_F d + W/|E| sum_E d. The single
 * combiner shared by both score modes: bit-identity of Delta vs Naive
 * reduces to equality of the integer sums.
 */
double
combineHeuristic(const ScoreSums &s, size_t nf, size_t ne, double w)
{
    double h = 0;
    if (nf)
        h += double(s.fineFront) / double(nf);
    if (ne)
        h += w * double(s.fineExt) / double(ne);
    return h;
}

/**
 * MIRAGE mirror outlook in future-SWAP units: each blocked gate needs
 * (distance - 1) SWAPs before it can execute, the lookahead window
 * contributes with the usual extended-set weight, and unlike the SABRE
 * selection heuristic this is deliberately NOT normalized by the set
 * sizes -- the mirror decision trades an absolute decomposition-cost
 * difference against an absolute number of saved SWAPs (paper Section
 * IV). The fine-grained tiebreaker (total lookahead distance, scaled
 * far below one SWAP unit) only resolves ties; without it the Equal
 * level accepts cost-neutral mirrors that merely randomize the
 * permutation, hurting CCX-heavy circuits.
 */
double
combineOutlook(const ScoreSums &s, size_t ne, double w)
{
    double units = double(s.unitFront) + w * double(s.unitExt);
    double fine = double(s.fineFront);
    if (ne)
        fine += w * double(s.fineExt) / double(ne);
    return units + 0.02 * fine;
}

/**
 * Reusable buffers for one routing pass (the per-trial scratch arena).
 * Everything here reaches a steady-state capacity after the first few
 * steps, after which extendedSet/blockedFront/candidate enumeration
 * and scoring allocate nothing. The `seen` array is epoch-stamped
 * instead of cleared: bumping `epoch` invalidates every mark in O(1).
 */
struct PassScratch
{
    std::vector<uint64_t> seen; ///< per-DAG-node visit epoch
    uint64_t epoch = 0;

    std::vector<int> ext;      ///< extended (lookahead) set
    std::vector<int> front2q;  ///< blocked front-layer 2Q nodes
    std::vector<int> walk;     ///< BFS worklist (index-driven)
    std::vector<std::pair<int, int>> candidates;
    std::vector<std::pair<int, int>> bestSwaps;

    std::vector<std::vector<TouchEntry>> touch; ///< per physical wire
    std::vector<int> touched; ///< wires with non-empty touch lists

    void
    prepare(size_t dag_size, size_t num_phys)
    {
        if (seen.size() < dag_size)
            seen.resize(dag_size, 0);
        if (touch.size() < num_phys)
            touch.resize(num_phys);
    }
};

/** Per-node mirror data: everything about a mirror decision that does
 * not depend on the layout, precomputed once per DAG and reused by
 * every pass of the trial grid. */
struct NodeMirror
{
    weyl::Coord mirrorCoord;      ///< mirrorCoord(gate coords)
    double gateCost = 0;          ///< costModel->costOf(coords)
    double mirrorCost = 0;        ///< costModel->costOf(mirror coords)
    linalg::Mat4 mirroredMatrix;  ///< SWAP * U (the emitted unitary)
};

/**
 * Immutable routing plan for one DAG direction: compact per-node
 * arrays (the hot loops touch these instead of chasing Gate objects
 * through DagNode), plus the mirror table when the pass may mirror.
 * Built once per routeWithTrials direction and shared read-only across
 * the whole trial grid; routePass builds a private one.
 */
struct RoutePlan
{
    const DagCircuit *dag = nullptr;
    std::vector<uint8_t> oneQ;                ///< per node: 1Q gate
    std::vector<uint8_t> twoQ;                ///< per node: 2Q gate
    std::vector<std::array<int, 2>> wires;    ///< logical operands
    std::vector<NodeMirror> mirror;           ///< empty unless mirroring
};

RoutePlan
makePlan(const DagCircuit &dag, const monodromy::CostModel *cost_model,
         bool with_mirrors)
{
    RoutePlan plan;
    plan.dag = &dag;
    const size_t n = dag.size();
    plan.oneQ.resize(n);
    plan.twoQ.resize(n);
    plan.wires.assign(n, {0, 0});
    if (with_mirrors) {
        MIRAGE_ASSERT(cost_model, "mirror decisions need a cost model");
        plan.mirror.resize(n);
    }
    for (const auto &node : dag.nodes()) {
        const Gate &g = node.gate;
        const size_t id = size_t(node.id);
        MIRAGE_ASSERT(g.isOneQubit() || g.isTwoQubit(),
                      "router requires 1Q/2Q gates (unroll 3Q first)");
        plan.oneQ[id] = g.isOneQubit();
        plan.twoQ[id] = g.isTwoQubit();
        plan.wires[id][0] = g.qubits[0];
        if (g.isTwoQubit())
            plan.wires[id][1] = g.qubits[1];
        if (with_mirrors && g.isTwoQubit()) {
            // Same values considerMirror/execute historically computed
            // per consideration, hoisted to once per node: the Weyl
            // coordinates, both decomposition costs, and the mirrored
            // unitary SWAP * U (paper Eq. 1 -- no eigensolver call).
            weyl::Coord c = g.coords.has_value()
                                ? *g.coords
                                : weyl::weylCoordinates(g.matrix4());
            NodeMirror &m = plan.mirror[id];
            m.mirrorCoord = weyl::mirrorCoord(c);
            m.gateCost = cost_model->costOf(c);
            m.mirrorCost = cost_model->costOf(m.mirrorCoord);
            m.mirroredMatrix = weyl::gateSWAP() * g.matrix4();
        }
    }
    return plan;
}

/** Mutable routing state for one pass. */
struct PassState
{
    const DagCircuit *dag;
    const RoutePlan *plan;
    const CouplingMap *coupling;
    const PassOptions *opts;
    PassScratch *scratch;
    Rng rng;

    Layout layout;
    std::vector<int> indegree;
    std::vector<int> front;      // dependency-free, unexecuted nodes
    std::vector<double> decay;   // per physical qubit
    int swaps_since_reset = 0;

    // The extended set depends only on the front layer and the DAG --
    // never on the layout -- so consecutive stall steps (which only
    // swap wires) reuse the cached set. Any front mutation bumps
    // front_version; ext_version records which front the cached set
    // was built from (0 = invalid; versions start at 1).
    uint64_t front_version = 1;
    uint64_t ext_version = 0;

    Circuit out;
    int swaps_added = 0;
    int mirrors_accepted = 0;
    int mirror_candidates = 0;
    RoutingCounters counters;

    explicit PassState(const RoutePlan &p, const CouplingMap &c,
                       const Layout &init, const PassOptions &o,
                       PassScratch &s)
        : dag(p.dag), plan(&p), coupling(&c), opts(&o), scratch(&s),
          rng(o.seed), layout(init), indegree(p.dag->size(), 0),
          decay(size_t(c.numQubits()), 1.0),
          out(c.numQubits(), "routed")
    {
        scratch->prepare(dag->size(), size_t(c.numQubits()));
        for (const auto &node : dag->nodes())
            indegree[size_t(node.id)] = int(node.preds.size());
        for (int id : dag->roots())
            front.push_back(id);
    }

    void
    resetDecay()
    {
        std::fill(decay.begin(), decay.end(), 1.0);
        swaps_since_reset = 0;
    }

    /** Move a completed node's successors into the front layer. */
    void
    advance(int id)
    {
        for (int s : dag->node(id).succs) {
            if (--indegree[size_t(s)] == 0)
                front.push_back(s);
        }
        ++front_version;
    }

    /**
     * Collect the lookahead window into scratch->ext: the next 2Q gates
     * after the front, breadth-first over the successor closure, capped
     * at extendedSetSize. With skip_node >= 0 the BFS seeds the front
     * minus that node first and the node last (the mirror decision's
     * view); those builds bypass the stall-step cache.
     */
    void
    buildExtendedSet(int skip_node = -1)
    {
        ++counters.extSetBuilds;
        auto &ext = scratch->ext;
        auto &walk = scratch->walk;
        ext.clear();
        walk.clear();
        for (int id : front) {
            if (id != skip_node)
                walk.push_back(id);
        }
        if (skip_node >= 0)
            walk.push_back(skip_node);
        const uint64_t epoch = ++scratch->epoch;
        auto &seen = scratch->seen;
        for (int id : walk)
            seen[size_t(id)] = epoch;
        // Walk the successor closure breadth-first collecting 2Q gates
        // that are not already in the front.
        size_t head = 0;
        while (head < walk.size() &&
               int(ext.size()) < opts->extendedSetSize) {
            int id = walk[head++];
            for (int s : dag->node(id).succs) {
                if (seen[size_t(s)] == epoch)
                    continue;
                seen[size_t(s)] = epoch;
                if (plan->twoQ[size_t(s)]) {
                    ext.push_back(s);
                    if (int(ext.size()) >= opts->extendedSetSize)
                        break;
                }
                walk.push_back(s);
            }
        }
        ext_version = skip_node < 0 ? front_version : 0;
    }

    /** Stall-step extended set, rebuilt only when the front changed. */
    void
    ensureExtendedSet()
    {
        if (ext_version == front_version) {
            ++counters.extSetReuses;
            return;
        }
        buildExtendedSet();
    }

    /** Distance of a 2Q node's wires under the live layout. */
    int
    nodeDistance(int id) const
    {
        const auto &w = plan->wires[size_t(id)];
        return coupling->distance(layout.toPhysical(w[0]),
                                  layout.toPhysical(w[1]));
    }

    /** Front-layer 2Q nodes that are not yet executable. */
    void
    buildBlockedFront()
    {
        auto &blocked = scratch->front2q;
        blocked.clear();
        for (int id : front) {
            if (!plan->twoQ[size_t(id)])
                continue;
            const auto &w = plan->wires[size_t(id)];
            if (!coupling->isEdge(layout.toPhysical(w[0]),
                                  layout.toPhysical(w[1])))
                blocked.push_back(id);
        }
    }

    // --- scoring ----------------------------------------------------------

    void
    clearTouch()
    {
        for (int p : scratch->touched)
            scratch->touch[size_t(p)].clear();
        scratch->touched.clear();
    }

    void
    pushTouch(int p, const TouchEntry &e)
    {
        auto &list = scratch->touch[size_t(p)];
        if (list.empty())
            scratch->touched.push_back(p);
        list.push_back(e);
    }

    static void
    accumulate(ScoreSums &s, int d, bool in_front)
    {
        if (in_front) {
            s.fineFront += d;
            s.unitFront += std::max(0, d - 1);
        } else {
            s.fineExt += d;
            s.unitExt += std::max(0, d - 1);
        }
    }

    /**
     * Build the per-step base: distances of every blocked-front and
     * extended-set node under the live layout, registered on both
     * physical endpoints so candidate deltas touch only the two swapped
     * wires. O(|F| + |E|) once per step.
     */
    ScoreSums
    buildBaseSums()
    {
        clearTouch();
        ScoreSums s;
        for (int pass = 0; pass < 2; ++pass) {
            const bool in_front = pass == 0;
            const auto &nodes =
                in_front ? scratch->front2q : scratch->ext;
            for (int id : nodes) {
                const auto &w = plan->wires[size_t(id)];
                int qa = layout.toPhysical(w[0]);
                int qb = layout.toPhysical(w[1]);
                int d = coupling->distance(qa, qb);
                accumulate(s, d, in_front);
                pushTouch(qa, {qb, d, in_front});
                pushTouch(qb, {qa, d, in_front});
            }
        }
        return s;
    }

    static void
    applyDelta(ScoreSums &s, const TouchEntry &e, int nd)
    {
        int dfine = nd - e.dist;
        int dunit = std::max(0, nd - 1) - std::max(0, e.dist - 1);
        if (e.in_front) {
            s.fineFront += dfine;
            s.unitFront += dunit;
        } else {
            s.fineExt += dfine;
            s.unitExt += dunit;
        }
    }

    /**
     * Score sums under the hypothetical layout with pa/pb swapped, by
     * adjusting only the nodes whose wires move. A node with BOTH
     * endpoints in {pa, pb} keeps its distance (the pair is preserved),
     * so its double-registration is skipped on both lists. O(degree of
     * the step's active wires) instead of O(|F| + |E|) per candidate.
     */
    ScoreSums
    deltaSums(const ScoreSums &base, int pa, int pb) const
    {
        ScoreSums s = base;
        const int *row_pb = coupling->distanceRow(pb);
        for (const TouchEntry &e : scratch->touch[size_t(pa)]) {
            if (e.other != pb)
                applyDelta(s, e, row_pb[e.other]);
        }
        const int *row_pa = coupling->distanceRow(pa);
        for (const TouchEntry &e : scratch->touch[size_t(pb)]) {
            if (e.other != pa)
                applyDelta(s, e, row_pa[e.other]);
        }
        return s;
    }

    /**
     * Reference scorer (ScoreMode::Naive): rescan every front/extended
     * node under the hypothetical layout, applied to the live layout
     * via ScopedSwap (apply/undo) rather than the historical O(n)
     * Layout copy. Produces the same integer sums as deltaSums by
     * construction; the scoring-equivalence tests compare the two over
     * the full Table III suite.
     */
    ScoreSums
    rescanSums(int swap_a = -1, int swap_b = -1)
    {
        std::optional<layout::ScopedSwap> guard;
        if (swap_a >= 0)
            guard.emplace(layout, swap_a, swap_b);
        ScoreSums s;
        for (int id : scratch->front2q)
            accumulate(s, nodeDistance(id), true);
        for (int id : scratch->ext)
            accumulate(s, nodeDistance(id), false);
        return s;
    }

    /**
     * MIRAGE intermediate layer: decide whether to replace an executable
     * gate by its mirror (paper Algorithm 2). Returns true when the
     * mirror was accepted (the layout permutation is applied here).
     */
    bool
    considerMirror(int id)
    {
        if (opts->aggression == Aggression::None)
            return false;
        MIRAGE_ASSERT(opts->costModel, "mirror decisions need a cost model");
        const NodeMirror &mi = plan->mirror[size_t(id)];
        ++mirror_candidates;
        ++counters.mirrorOutlooks;
        counters.heuristicEvals += 2;

        const auto &wires = plan->wires[size_t(id)];
        int pa = layout.toPhysical(wires[0]);
        int pb = layout.toPhysical(wires[1]);

        buildBlockedFront();
        buildExtendedSet(id);

        ScoreSums now_sums, mirror_sums;
        if (opts->scoreMode == ScoreMode::Delta) {
            now_sums = buildBaseSums();
            mirror_sums = deltaSums(now_sums, pa, pb);
        } else {
            now_sums = rescanSums();
            mirror_sums = rescanSums(pa, pb);
        }
        const size_t ne = scratch->ext.size();
        const double w = opts->extendedSetWeight;
        double h_now = combineOutlook(now_sums, ne, w);
        double h_mirror = combineOutlook(mirror_sums, ne, w);

        double swap_cost = opts->costModel->swapCost();
        double cost_current = mi.gateCost + swap_cost * h_now;
        double cost_trial = mi.mirrorCost + swap_cost * h_mirror;

        bool accept = false;
        switch (opts->aggression) {
          case Aggression::None:
            break;
          case Aggression::Lower:
            accept = cost_trial < cost_current - 1e-12;
            break;
          case Aggression::Equal:
            accept = cost_trial <= cost_current + 1e-12;
            break;
          case Aggression::Always:
            accept = true;
            break;
        }
        if (accept)
            layout.swapPhysical(pa, pb);
        return accept;
    }

    /**
     * Emit an executable node onto physical wires. Returns true when
     * the layout changed (a mirror was accepted) -- the flush loop only
     * needs to rescan earlier front nodes in that case, because a 2Q
     * node's executability is a function of the layout alone.
     */
    bool
    execute(int id)
    {
        const Gate &g = dag->node(id).gate;
        if (plan->oneQ[size_t(id)]) {
            Gate phys = g;
            phys.qubits = {layout.toPhysical(g.qubits[0])};
            out.append(std::move(phys));
            advance(id);
            return false;
        }

        int pa = layout.toPhysical(g.qubits[0]);
        int pb = layout.toPhysical(g.qubits[1]);
        bool mirrored = considerMirror(id);

        Gate phys;
        if (mirrored) {
            // U' = SWAP * U with the mirror coordinate annotated via
            // Eq. 1 -- no eigensolver call (paper Section VI-C); both
            // were precomputed into the plan's mirror table.
            const NodeMirror &mi = plan->mirror[size_t(id)];
            phys = circuit::makeUnitary2(pa, pb, mi.mirroredMatrix);
            phys.mirrored = true;
            phys.coords = mi.mirrorCoord;
            ++mirrors_accepted;
        } else {
            phys = g;
            phys.qubits = {pa, pb};
        }
        out.append(std::move(phys));
        resetDecay();
        advance(id);
        return mirrored;
    }

    /** Stalled front: enumerate, score, and apply the best SWAP. */
    void
    stallStep()
    {
        // The stall step is the unit of routing progress: checking here
        // bounds overshoot past an expired deadline to one swap
        // decision, and no shared state is mid-mutation at this point.
        opts->deadline.check("route.stall");
        buildBlockedFront();
        MIRAGE_ASSERT(!scratch->front2q.empty(),
                      "stall without blocked gates");
        ensureExtendedSet();
        ++counters.stallSteps;

        auto &candidates = scratch->candidates;
        candidates.clear();
        for (int id : scratch->front2q) {
            for (int lq : plan->wires[size_t(id)]) {
                int p = layout.toPhysical(lq);
                for (int nb : coupling->neighbors(p)) {
                    int a = std::min(p, nb), b = std::max(p, nb);
                    candidates.emplace_back(a, b);
                }
            }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
        counters.swapCandidates += candidates.size();

        const bool use_delta = opts->scoreMode == ScoreMode::Delta;
        const size_t nf = scratch->front2q.size();
        const size_t ne = scratch->ext.size();
        const double w = opts->extendedSetWeight;
        ScoreSums base;
        if (use_delta)
            base = buildBaseSums();

        double best = std::numeric_limits<double>::infinity();
        auto &best_swaps = scratch->bestSwaps;
        best_swaps.clear();
        for (auto [pa, pb] : candidates) {
            ++counters.heuristicEvals;
            ScoreSums s = use_delta ? deltaSums(base, pa, pb)
                                    : rescanSums(pa, pb);
            double h = combineHeuristic(s, nf, ne, w);
            h *= std::max(decay[size_t(pa)], decay[size_t(pb)]);
            if (h < best - 1e-12) {
                best = h;
                best_swaps.clear();
                best_swaps.emplace_back(pa, pb);
            } else if (h <= best + 1e-12) {
                best_swaps.emplace_back(pa, pb);
            }
        }
        auto [pa, pb] = best_swaps[rng.index(best_swaps.size())];

        Gate sw = circuit::makeGate2(GateKind::SWAP, pa, pb);
        sw.coords = weyl::coordSWAP();
        out.append(std::move(sw));
        layout.swapPhysical(pa, pb);
        ++swaps_added;
        decay[size_t(pa)] += opts->decayIncrement;
        decay[size_t(pb)] += opts->decayIncrement;
        if (++swaps_since_reset >= opts->decayResetInterval)
            resetDecay();
    }

    /** Run the pass to completion. */
    void
    run()
    {
        while (!front.empty()) {
            // Flush everything executable. A single in-order sweep
            // emits the same gate sequence as the historical
            // restart-from-zero scan: blocked 2Q nodes can only become
            // executable when the layout changes (an accepted mirror),
            // so that is the one case that rescans the earlier front.
            bool progress = true;
            while (progress) {
                progress = false;
                for (size_t i = 0; i < front.size();) {
                    int id = front[i];
                    const auto &w = plan->wires[size_t(id)];
                    bool executable =
                        plan->oneQ[size_t(id)] ||
                        coupling->isEdge(layout.toPhysical(w[0]),
                                         layout.toPhysical(w[1]));
                    if (executable) {
                        front.erase(front.begin() + long(i));
                        ++front_version;
                        bool layout_changed = execute(id);
                        progress = true;
                        if (layout_changed)
                            i = 0;
                        // else: the erase shifted the next node into
                        // slot i; earlier nodes are still blocked.
                    } else {
                        ++i;
                    }
                }
            }
            if (front.empty())
                break;
            stallStep();
        }
    }
};

/**
 * Lift the logical circuit onto the padded wire count so the DAG and
 * the layout agree. One DAG serves every pass over the same circuit:
 * routeWithTrials builds the forward/backward DAGs once and shares them
 * read-only across the whole trial grid instead of re-copying every
 * gate (4x4 matrices included) per pass.
 *
 * With annotate_coords set, 2Q gates missing Weyl coordinates get them
 * stamped here (the same deterministic weylCoordinates value every
 * later consumer would compute), so the routed output carries coords
 * and per-pass metric computation never re-runs the eigensolver.
 */
/**
 * Route-entry fail-fast: on a disconnected device, distance() returns
 * the -1 sentinel for cross-component pairs, which would otherwise flow
 * silently into the heuristic's integer score sums and corrupt every
 * SWAP decision. Refuse up front with a diagnostic instead.
 */
void
requireRoutableTopology(const CouplingMap &coupling)
{
    if (coupling.numQubits() <= 0)
        throw topology::TopologyError(
            "cannot route on empty coupling map '" + coupling.name() + "'");
    if (coupling.numComponents() != 1)
        throw topology::TopologyError(
            "cannot route on disconnected coupling map '" + coupling.name() +
            "': " + std::to_string(coupling.numQubits()) + " qubits in " +
            std::to_string(coupling.numComponents()) +
            " connected components; SABRE/MIRAGE distance sums are "
            "undefined across components (distance() == -1)");
}

DagCircuit
liftToDag(const Circuit &circuit, const CouplingMap &coupling,
          bool annotate_coords)
{
    MIRAGE_ASSERT(circuit.numQubits() <= coupling.numQubits(),
                  "circuit does not fit the device (%d > %d)",
                  circuit.numQubits(), coupling.numQubits());
    Circuit lifted(coupling.numQubits(), circuit.name());
    for (const auto &g : circuit.gates())
        lifted.append(g);
    if (annotate_coords) {
        for (auto &g : lifted.gates()) {
            if (g.isTwoQubit())
                g.annotateCoords();
        }
    }
    return DagCircuit(lifted);
}

RouteResult
routePassOnPlan(const RoutePlan &plan, const CouplingMap &coupling,
                const Layout &initial, const PassOptions &opts,
                PassScratch &scratch)
{
    MIRAGE_ASSERT(initial.size() == coupling.numQubits(),
                  "layout size mismatch");

    PassState state(plan, coupling, initial, opts, scratch);
    state.run();

    RouteResult res;
    res.routed = std::move(state.out);
    res.initial = initial;
    res.final = state.layout;
    res.swapsAdded = state.swaps_added;
    res.mirrorsAccepted = state.mirrors_accepted;
    res.mirrorCandidates = state.mirror_candidates;
    res.counters = state.counters;
    if (opts.costModel && opts.estimateMetrics) {
        auto metrics =
            mirage_pass::computeMetrics(res.routed, *opts.costModel);
        res.estDepth = metrics.depth;
        res.estTotalCost = metrics.totalCost;
    }
    return res;
}

} // namespace

RouteResult
routePass(const Circuit &circuit, const CouplingMap &coupling,
          const Layout &initial, const PassOptions &opts)
{
    requireRoutableTopology(coupling);
    PassScratch scratch;
    DagCircuit dag =
        liftToDag(circuit, coupling, opts.costModel != nullptr);
    RoutePlan plan = makePlan(dag, opts.costModel,
                              opts.aggression != Aggression::None);
    return routePassOnPlan(plan, coupling, initial, opts, scratch);
}

std::vector<Aggression>
mirageAggressionMix(int trials)
{
    // 5% level 0, 45% level 1, 45% level 2, 5% level 3 (Section IV-C).
    // The edge levels are guaranteed one slot each whenever there are
    // enough trials: level 0 keeps a plain-SABRE fallback in the pool for
    // mirror-hostile circuits, level 3 explores the always-mirror
    // extreme; depth post-selection then keeps the best of all worlds.
    std::vector<Aggression> mix;
    for (int i = 0; i < trials; ++i) {
        double f = (i + 0.5) / trials;
        if (f < 0.05)
            mix.push_back(Aggression::None);
        else if (f < 0.50)
            mix.push_back(Aggression::Lower);
        else if (f < 0.95)
            mix.push_back(Aggression::Equal);
        else
            mix.push_back(Aggression::Always);
    }
    if (trials >= 4) {
        if (std::find(mix.begin(), mix.end(), Aggression::None) ==
            mix.end())
            mix.front() = Aggression::None;
        if (std::find(mix.begin(), mix.end(), Aggression::Always) ==
            mix.end())
            mix.back() = Aggression::Always;
    }
    return mix;
}

namespace {

/**
 * Per-trial RNG stream layout (counters within stream (seed, trial)):
 * counter 0 seeds the random initial layout, counters 1..2P seed the P
 * forward/backward refinement passes, and counter 2P+1+st seeds swap
 * trial st. Every value is a pure function of (seed, trial, counter),
 * so a trial computes identical results on any thread.
 */
enum : uint64_t { kLayoutCounter = 0, kRefineBase = 1 };

PassOptions
passForTrial(const TrialOptions &opts, int trial)
{
    PassOptions pass = opts.pass;
    if (!opts.trialAggression.empty())
        pass.aggression = opts.trialAggression[size_t(trial) %
                                               opts.trialAggression.size()];
    return pass;
}

} // namespace

RouteResult
routeWithTrials(const Circuit &circuit, const CouplingMap &coupling,
                const TrialOptions &opts)
{
    requireRoutableTopology(coupling);
    MIRAGE_ASSERT(opts.layoutTrials > 0 && opts.swapTrials > 0,
                  "need at least one layout and one swap trial");
    if (opts.postSelect == PostSelect::Depth) {
        MIRAGE_ASSERT(opts.pass.costModel,
                      "depth post-selection needs a cost model");
    }
    // Both walk directions are lifted, DAG-ified, and planned exactly
    // once (compact node arrays + per-node mirror costs/matrices);
    // every pass of every trial reads the same immutable plans.
    bool with_mirrors =
        opts.trialAggression.empty()
            ? opts.pass.aggression != Aggression::None
            : std::any_of(opts.trialAggression.begin(),
                          opts.trialAggression.end(),
                          [](Aggression a) {
                              return a != Aggression::None;
                          });
    const bool annotate = opts.pass.costModel != nullptr;
    const DagCircuit fwd_dag = liftToDag(circuit, coupling, annotate);
    const DagCircuit bwd_dag =
        liftToDag(circuit.reversed(), coupling, annotate);
    const RoutePlan fwd_plan =
        makePlan(fwd_dag, opts.pass.costModel, with_mirrors);
    const RoutePlan bwd_plan =
        makePlan(bwd_dag, opts.pass.costModel, with_mirrors);

    // Null pool = pure serial fast path; otherwise use the caller's
    // pool or spin up a local one.
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool *pool = opts.pool;
    if (!pool && opts.threads != 1) {
        local_pool.emplace(opts.threads);
        pool = &*local_pool;
    }

    const int trials = opts.layoutTrials;
    const int swap_trials = opts.swapTrials;
    const uint64_t swap_base =
        kRefineBase + 2 * uint64_t(opts.forwardBackwardPasses);

    // Stage 1: independent layout trials with fwd/bwd refinement. Each
    // trial owns one scratch arena shared by all of its passes.
    std::vector<Layout> refined(static_cast<size_t>(trials));
    std::vector<RoutingCounters> refine_counters(
        static_cast<size_t>(trials));
    exec::parallelFor(pool, trials, [&](int64_t t) {
        StreamRng stream(opts.seed, uint64_t(t));
        PassOptions pass = passForTrial(opts, int(t));
        // Refinement passes only feed their final layout forward; skip
        // the estimate walk nobody reads.
        pass.estimateMetrics = false;
        Rng layout_rng(stream.at(kLayoutCounter));
        Layout layout = Layout::random(coupling.numQubits(), layout_rng);
        PassScratch scratch;
        RoutingCounters &counters = refine_counters[size_t(t)];
        for (int iter = 0; iter < opts.forwardBackwardPasses; ++iter) {
            pass.seed = stream.at(kRefineBase + 2 * uint64_t(iter));
            RouteResult fwd = routePassOnPlan(fwd_plan, coupling, layout,
                                              pass, scratch);
            pass.seed = stream.at(kRefineBase + 2 * uint64_t(iter) + 1);
            RouteResult bwd = routePassOnPlan(bwd_plan, coupling,
                                              fwd.final, pass, scratch);
            layout = bwd.final;
            counters.add(fwd.counters);
            counters.add(bwd.counters);
        }
        refined[size_t(t)] = layout;
    });

    // Stage 2: the flattened layoutTrials x swapTrials grid of final
    // forward routes, reduced streamingly to the lexicographic
    // (metric, grid-index) minimum. Taking the lowest index among equal
    // metrics reproduces the serial strictly-lower-wins loop exactly,
    // independent of completion order, while keeping only the running
    // best result live instead of the whole grid.
    const int64_t grid = int64_t(trials) * int64_t(swap_trials);
    std::vector<RoutingCounters> grid_counters(static_cast<size_t>(grid));
    std::optional<RouteResult> best;
    double best_metric = std::numeric_limits<double>::infinity();
    int64_t best_idx = grid;
    std::mutex best_mutex;
    exec::parallelFor(pool, grid, [&](int64_t i) {
        int t = int(i / swap_trials);
        int st = int(i % swap_trials);
        PassOptions pass = passForTrial(opts, t);
        pass.seed = StreamRng(opts.seed, uint64_t(t))
                        .at(swap_base + uint64_t(st));
        PassScratch scratch;
        RouteResult res = routePassOnPlan(
            fwd_plan, coupling, refined[size_t(t)], pass, scratch);
        grid_counters[size_t(i)] = res.counters;
        double metric = opts.postSelect == PostSelect::Swaps
                            ? double(res.swapsAdded)
                            : res.estDepth;
        std::lock_guard<std::mutex> lock(best_mutex);
        if (metric < best_metric ||
            (metric == best_metric && i < best_idx)) {
            best_metric = metric;
            best_idx = i;
            best = std::move(res);
        }
    });
    MIRAGE_ASSERT(best.has_value(), "no routing trial succeeded");

    // Report the routing-phase work of the WHOLE grid (refinement +
    // swap trials), summed in index order so the total is identical
    // for every thread count.
    RoutingCounters total;
    for (const auto &c : refine_counters)
        total.add(c);
    for (const auto &c : grid_counters)
        total.add(c);
    best->counters = total;
    return std::move(*best);
}

} // namespace mirage::router
