/**
 * @file
 * SABRE/MIRAGE routing engine: front-layer DAG walk, extended-set
 * lookahead scoring, SWAP selection, the mirror-gate intermediate layer
 * with aggression policies, and multi-trial post-selection.
 */

#include "router/sabre.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <mutex>

#include "circuit/dag.hh"
#include "common/logging.hh"
#include "mirage/depth_metric.hh"
#include "weyl/catalog.hh"
#include "weyl/coordinates.hh"

namespace mirage::router {

using circuit::Circuit;
using circuit::DagCircuit;
using circuit::Gate;
using circuit::GateKind;
using layout::Layout;
using topology::CouplingMap;

namespace {

/** Mutable routing state for one pass. */
struct PassState
{
    const DagCircuit *dag;
    const CouplingMap *coupling;
    const PassOptions *opts;
    Rng rng;

    Layout layout;
    std::vector<int> indegree;
    std::vector<int> front;      // dependency-free, unexecuted nodes
    std::vector<double> decay;   // per physical qubit
    int swaps_since_reset = 0;

    Circuit out;
    int swaps_added = 0;
    int mirrors_accepted = 0;
    int mirror_candidates = 0;

    explicit PassState(const DagCircuit &d, const CouplingMap &c,
                       const Layout &init, const PassOptions &o)
        : dag(&d), coupling(&c), opts(&o), rng(o.seed),
          layout(init), indegree(d.size(), 0),
          decay(size_t(c.numQubits()), 1.0),
          out(c.numQubits(), "routed")
    {
        for (const auto &node : d.nodes())
            indegree[size_t(node.id)] = int(node.preds.size());
        for (int id : d.roots())
            front.push_back(id);
    }

    void
    resetDecay()
    {
        std::fill(decay.begin(), decay.end(), 1.0);
        swaps_since_reset = 0;
    }

    /** Move a completed node's successors into the front layer. */
    void
    advance(int id)
    {
        for (int s : dag->node(id).succs) {
            if (--indegree[size_t(s)] == 0)
                front.push_back(s);
        }
    }

    /** Collect the lookahead window: the next 2Q gates after the front. */
    std::vector<int>
    extendedSet(int skip_node = -1) const
    {
        std::vector<int> ext;
        std::vector<int> indeg_copy; // lazily simulated BFS frontier
        std::deque<int> queue;
        for (int id : front) {
            if (id != skip_node)
                queue.push_back(id);
        }
        if (skip_node >= 0)
            queue.push_back(skip_node);
        std::vector<bool> seen(dag->size(), false);
        for (int id : queue)
            seen[size_t(id)] = true;
        // Walk successor closure breadth-first collecting 2Q gates that
        // are not already in the front.
        std::deque<int> walk = queue;
        while (!walk.empty() && int(ext.size()) < opts->extendedSetSize) {
            int id = walk.front();
            walk.pop_front();
            for (int s : dag->node(id).succs) {
                if (seen[size_t(s)])
                    continue;
                seen[size_t(s)] = true;
                if (dag->node(s).gate.isTwoQubit()) {
                    ext.push_back(s);
                    if (int(ext.size()) >= opts->extendedSetSize)
                        break;
                }
                walk.push_back(s);
            }
        }
        return ext;
    }

    /** Distance of a 2Q node under a hypothetical layout. */
    int
    nodeDistance(int id, const Layout &lay) const
    {
        const Gate &g = dag->node(id).gate;
        return coupling->distance(lay.toPhysical(g.qubits[0]),
                                  lay.toPhysical(g.qubits[1]));
    }

    /**
     * SABRE heuristic H over the given front / extended sets, evaluated
     * for a hypothetical layout.
     */
    double
    heuristic(const std::vector<int> &front_2q, const std::vector<int> &ext,
              const Layout &lay) const
    {
        double h = 0;
        if (!front_2q.empty()) {
            double s = 0;
            for (int id : front_2q)
                s += nodeDistance(id, lay);
            h += s / double(front_2q.size());
        }
        if (!ext.empty()) {
            double s = 0;
            for (int id : ext)
                s += nodeDistance(id, lay);
            h += opts->extendedSetWeight * s / double(ext.size());
        }
        return h;
    }

    /** Front-layer 2Q nodes that are not yet executable. */
    std::vector<int>
    blockedFront() const
    {
        std::vector<int> blocked;
        for (int id : front) {
            const Gate &g = dag->node(id).gate;
            if (g.isTwoQubit() &&
                !coupling->isEdge(layout.toPhysical(g.qubits[0]),
                                  layout.toPhysical(g.qubits[1])))
                blocked.push_back(id);
        }
        return blocked;
    }

    /**
     * MIRAGE intermediate layer: decide whether to replace an executable
     * gate by its mirror (paper Algorithm 2). Returns true when the
     * mirror was accepted (the layout permutation is applied here).
     */
    bool
    considerMirror(int id)
    {
        if (opts->aggression == Aggression::None)
            return false;
        MIRAGE_ASSERT(opts->costModel, "mirror decisions need a cost model");
        const Gate &g = dag->node(id).gate;
        ++mirror_candidates;

        weyl::Coord c = g.coords.has_value()
                            ? *g.coords
                            : weyl::weylCoordinates(g.matrix4());
        weyl::Coord cm = weyl::mirrorCoord(c);

        int pa = layout.toPhysical(g.qubits[0]);
        int pb = layout.toPhysical(g.qubits[1]);

        // Routing outlook measured in future-SWAP units: each blocked
        // gate in the front needs (distance - 1) SWAPs before it can
        // execute, and the lookahead window contributes with the usual
        // extended-set weight. Unlike the SABRE selection heuristic this
        // is deliberately NOT normalized by the set sizes -- the mirror
        // decision trades an absolute decomposition-cost difference
        // against an absolute number of saved SWAPs (paper Section IV).
        auto front_2q = blockedFront();
        auto ext = extendedSet(id);
        auto outlook = [&](const Layout &lay) {
            double s = 0;
            for (int nid : front_2q)
                s += std::max(0, nodeDistance(nid, lay) - 1);
            for (int nid : ext)
                s += opts->extendedSetWeight *
                     std::max(0, nodeDistance(nid, lay) - 1);
            // Fine-grained tiebreaker: total lookahead distance. Scaled
            // far below one SWAP unit so it only resolves ties; without
            // it the Equal level accepts cost-neutral mirrors that merely
            // randomize the permutation (hurting CCX-heavy circuits).
            double fine = 0;
            for (int nid : front_2q)
                fine += nodeDistance(nid, lay);
            if (!ext.empty()) {
                double fe = 0;
                for (int nid : ext)
                    fe += nodeDistance(nid, lay);
                fine += opts->extendedSetWeight * fe / double(ext.size());
            }
            return s + 0.02 * fine;
        };
        double h_now = outlook(layout);
        Layout trial = layout;
        trial.swapPhysical(pa, pb);
        double h_mirror = outlook(trial);

        double swap_cost = opts->costModel->swapCost();
        double cost_current =
            opts->costModel->costOf(c) + swap_cost * h_now;
        double cost_trial =
            opts->costModel->costOf(cm) + swap_cost * h_mirror;

        bool accept = false;
        switch (opts->aggression) {
          case Aggression::None:
            break;
          case Aggression::Lower:
            accept = cost_trial < cost_current - 1e-12;
            break;
          case Aggression::Equal:
            accept = cost_trial <= cost_current + 1e-12;
            break;
          case Aggression::Always:
            accept = true;
            break;
        }
        if (accept)
            layout.swapPhysical(pa, pb);
        return accept;
    }

    /** Emit an executable node onto physical wires. */
    void
    execute(int id)
    {
        const Gate &g = dag->node(id).gate;
        if (g.isOneQubit()) {
            Gate phys = g;
            phys.qubits = {layout.toPhysical(g.qubits[0])};
            out.append(std::move(phys));
            advance(id);
            return;
        }

        int pa = layout.toPhysical(g.qubits[0]);
        int pb = layout.toPhysical(g.qubits[1]);
        bool mirrored = considerMirror(id);

        Gate phys;
        if (mirrored) {
            // U' = SWAP * U with the mirror coordinate annotated via
            // Eq. 1 -- no eigensolver call (paper Section VI-C).
            phys = circuit::makeUnitary2(pa, pb,
                                         weyl::gateSWAP() * g.matrix4());
            phys.mirrored = true;
            phys.coords = weyl::mirrorCoord(
                g.coords.has_value() ? *g.coords
                                     : weyl::weylCoordinates(g.matrix4()));
            ++mirrors_accepted;
        } else {
            phys = g;
            phys.qubits = {pa, pb};
        }
        out.append(std::move(phys));
        resetDecay();
        advance(id);
    }

    /** Run the pass to completion. */
    void
    run()
    {
        while (!front.empty()) {
            // Flush everything executable.
            bool progress = true;
            while (progress) {
                progress = false;
                for (size_t i = 0; i < front.size();) {
                    int id = front[i];
                    const Gate &g = dag->node(id).gate;
                    bool executable =
                        g.isOneQubit() ||
                        coupling->isEdge(layout.toPhysical(g.qubits[0]),
                                         layout.toPhysical(g.qubits[1]));
                    if (executable) {
                        front.erase(front.begin() + long(i));
                        execute(id);
                        progress = true;
                        // restart scan: execute() may alter the layout
                        i = 0;
                    } else {
                        ++i;
                    }
                }
            }
            if (front.empty())
                break;

            // Stalled: choose the best SWAP.
            auto front_2q = blockedFront();
            MIRAGE_ASSERT(!front_2q.empty(), "stall without blocked gates");
            auto ext = extendedSet();

            std::vector<std::pair<int, int>> candidates;
            for (int id : front_2q) {
                const Gate &g = dag->node(id).gate;
                for (int lq : g.qubits) {
                    int p = layout.toPhysical(lq);
                    for (int nb : coupling->neighbors(p)) {
                        int a = std::min(p, nb), b = std::max(p, nb);
                        candidates.emplace_back(a, b);
                    }
                }
            }
            std::sort(candidates.begin(), candidates.end());
            candidates.erase(
                std::unique(candidates.begin(), candidates.end()),
                candidates.end());

            double best = std::numeric_limits<double>::infinity();
            std::vector<std::pair<int, int>> best_swaps;
            for (auto [pa, pb] : candidates) {
                Layout trial = layout;
                trial.swapPhysical(pa, pb);
                double h = heuristic(front_2q, ext, trial);
                h *= std::max(decay[size_t(pa)], decay[size_t(pb)]);
                if (h < best - 1e-12) {
                    best = h;
                    best_swaps = {{pa, pb}};
                } else if (h <= best + 1e-12) {
                    best_swaps.emplace_back(pa, pb);
                }
            }
            auto [pa, pb] = best_swaps[rng.index(best_swaps.size())];

            Gate sw = circuit::makeGate2(GateKind::SWAP, pa, pb);
            sw.coords = weyl::coordSWAP();
            out.append(std::move(sw));
            layout.swapPhysical(pa, pb);
            ++swaps_added;
            decay[size_t(pa)] += opts->decayIncrement;
            decay[size_t(pb)] += opts->decayIncrement;
            if (++swaps_since_reset >= opts->decayResetInterval)
                resetDecay();
        }
    }
};

} // namespace

RouteResult
routePass(const Circuit &circuit, const CouplingMap &coupling,
          const Layout &initial, const PassOptions &opts)
{
    MIRAGE_ASSERT(circuit.numQubits() <= coupling.numQubits(),
                  "circuit does not fit the device (%d > %d)",
                  circuit.numQubits(), coupling.numQubits());
    MIRAGE_ASSERT(initial.size() == coupling.numQubits(),
                  "layout size mismatch");

    // Lift the logical circuit onto the padded wire count so the DAG and
    // the layout agree.
    Circuit lifted(coupling.numQubits(), circuit.name());
    for (const auto &g : circuit.gates())
        lifted.append(g);

    DagCircuit dag(lifted);
    PassState state(dag, coupling, initial, opts);
    state.run();

    RouteResult res;
    res.routed = std::move(state.out);
    res.initial = initial;
    res.final = state.layout;
    res.swapsAdded = state.swaps_added;
    res.mirrorsAccepted = state.mirrors_accepted;
    res.mirrorCandidates = state.mirror_candidates;
    if (opts.costModel) {
        auto metrics =
            mirage_pass::computeMetrics(res.routed, *opts.costModel);
        res.estDepth = metrics.depth;
        res.estTotalCost = metrics.totalCost;
    }
    return res;
}

std::vector<Aggression>
mirageAggressionMix(int trials)
{
    // 5% level 0, 45% level 1, 45% level 2, 5% level 3 (Section IV-C).
    // The edge levels are guaranteed one slot each whenever there are
    // enough trials: level 0 keeps a plain-SABRE fallback in the pool for
    // mirror-hostile circuits, level 3 explores the always-mirror
    // extreme; depth post-selection then keeps the best of all worlds.
    std::vector<Aggression> mix;
    for (int i = 0; i < trials; ++i) {
        double f = (i + 0.5) / trials;
        if (f < 0.05)
            mix.push_back(Aggression::None);
        else if (f < 0.50)
            mix.push_back(Aggression::Lower);
        else if (f < 0.95)
            mix.push_back(Aggression::Equal);
        else
            mix.push_back(Aggression::Always);
    }
    if (trials >= 4) {
        if (std::find(mix.begin(), mix.end(), Aggression::None) ==
            mix.end())
            mix.front() = Aggression::None;
        if (std::find(mix.begin(), mix.end(), Aggression::Always) ==
            mix.end())
            mix.back() = Aggression::Always;
    }
    return mix;
}

namespace {

/**
 * Per-trial RNG stream layout (counters within stream (seed, trial)):
 * counter 0 seeds the random initial layout, counters 1..2P seed the P
 * forward/backward refinement passes, and counter 2P+1+st seeds swap
 * trial st. Every value is a pure function of (seed, trial, counter),
 * so a trial computes identical results on any thread.
 */
enum : uint64_t { kLayoutCounter = 0, kRefineBase = 1 };

PassOptions
passForTrial(const TrialOptions &opts, int trial)
{
    PassOptions pass = opts.pass;
    if (!opts.trialAggression.empty())
        pass.aggression = opts.trialAggression[size_t(trial) %
                                               opts.trialAggression.size()];
    return pass;
}

} // namespace

RouteResult
routeWithTrials(const Circuit &circuit, const CouplingMap &coupling,
                const TrialOptions &opts)
{
    MIRAGE_ASSERT(opts.layoutTrials > 0 && opts.swapTrials > 0,
                  "need at least one layout and one swap trial");
    if (opts.postSelect == PostSelect::Depth) {
        MIRAGE_ASSERT(opts.pass.costModel,
                      "depth post-selection needs a cost model");
    }
    Circuit reversed = circuit.reversed();

    // Null pool = pure serial fast path; otherwise use the caller's
    // pool or spin up a local one.
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool *pool = opts.pool;
    if (!pool && opts.threads != 1) {
        local_pool.emplace(opts.threads);
        pool = &*local_pool;
    }

    const int trials = opts.layoutTrials;
    const int swap_trials = opts.swapTrials;
    const uint64_t swap_base =
        kRefineBase + 2 * uint64_t(opts.forwardBackwardPasses);

    // Stage 1: independent layout trials with fwd/bwd refinement.
    std::vector<Layout> refined(static_cast<size_t>(trials));
    exec::parallelFor(pool, trials, [&](int64_t t) {
        StreamRng stream(opts.seed, uint64_t(t));
        PassOptions pass = passForTrial(opts, int(t));
        Rng layout_rng(stream.at(kLayoutCounter));
        Layout layout = Layout::random(coupling.numQubits(), layout_rng);
        for (int iter = 0; iter < opts.forwardBackwardPasses; ++iter) {
            pass.seed = stream.at(kRefineBase + 2 * uint64_t(iter));
            RouteResult fwd = routePass(circuit, coupling, layout, pass);
            pass.seed = stream.at(kRefineBase + 2 * uint64_t(iter) + 1);
            RouteResult bwd = routePass(reversed, coupling, fwd.final, pass);
            layout = bwd.final;
        }
        refined[size_t(t)] = layout;
    });

    // Stage 2: the flattened layoutTrials x swapTrials grid of final
    // forward routes, reduced streamingly to the lexicographic
    // (metric, grid-index) minimum. Taking the lowest index among equal
    // metrics reproduces the serial strictly-lower-wins loop exactly,
    // independent of completion order, while keeping only the running
    // best result live instead of the whole grid.
    const int64_t grid = int64_t(trials) * int64_t(swap_trials);
    std::optional<RouteResult> best;
    double best_metric = std::numeric_limits<double>::infinity();
    int64_t best_idx = grid;
    std::mutex best_mutex;
    exec::parallelFor(pool, grid, [&](int64_t i) {
        int t = int(i / swap_trials);
        int st = int(i % swap_trials);
        PassOptions pass = passForTrial(opts, t);
        pass.seed = StreamRng(opts.seed, uint64_t(t))
                        .at(swap_base + uint64_t(st));
        RouteResult res =
            routePass(circuit, coupling, refined[size_t(t)], pass);
        double metric = opts.postSelect == PostSelect::Swaps
                            ? double(res.swapsAdded)
                            : res.estDepth;
        std::lock_guard<std::mutex> lock(best_mutex);
        if (metric < best_metric ||
            (metric == best_metric && i < best_idx)) {
            best_metric = metric;
            best_idx = i;
            best = std::move(res);
        }
    });
    MIRAGE_ASSERT(best.has_value(), "no routing trial succeeded");
    return std::move(*best);
}

} // namespace mirage::router
