/**
 * @file
 * SABRE routing (Li, Ding, Xie; ASPLOS'19) -- the baseline router -- and
 * the shared single-pass engine that MIRAGE extends with its intermediate
 * mirror layer (paper Fig. 7).
 *
 * One routing pass walks the circuit DAG with a front layer of
 * dependency-free gates; executable gates (operands adjacent under the
 * current layout) are mapped immediately, and when the front stalls the
 * router inserts the SWAP minimizing the distance heuristic
 *   H = 1/|F| sum_F d(gate) + W/|E| sum_E d(gate)
 * damped by per-qubit decay factors that promote parallelism.
 *
 * Layout selection runs independent random trials refined by
 * forward/backward routing passes, post-selected either by SWAP count
 * (stock SABRE) or by the estimated-depth metric (MIRAGE, Section IV-B).
 */

#ifndef MIRAGE_ROUTER_SABRE_HH
#define MIRAGE_ROUTER_SABRE_HH

#include <optional>

#include "circuit/circuit.hh"
#include "common/deadline.hh"
#include "common/exec.hh"
#include "layout/layout.hh"
#include "monodromy/cost_model.hh"
#include "topology/coupling.hh"

namespace mirage::router {

/** Mirror aggression levels (paper Algorithm 2). */
enum class Aggression
{
    None = 0,   ///< never accept a mirror (plain SABRE behavior)
    Lower = 1,  ///< accept when the trial cost is strictly lower
    Equal = 2,  ///< accept when the trial cost does not increase
    Always = 3, ///< always accept
};

/** Post-selection metric across routing trials. */
enum class PostSelect
{
    Swaps, ///< fewest inserted SWAP gates (stock SABRE)
    Depth, ///< lowest estimated pulse depth (MIRAGE, Section IV-B)
};

/**
 * How swap candidates and mirror outlooks are scored.
 *
 * Both modes compute the SABRE heuristic from exact integer distance
 * sums and combine them with one shared floating-point expression, so
 * their outputs are bit-identical by construction -- the equivalence is
 * enforced by test over the whole Table III suite. Delta is the
 * production path; Naive is the allocation-heavy reference kept as a
 * runtime option (no #ifdef) so the regression test can always compare
 * the two inside a single binary.
 */
enum class ScoreMode
{
    Delta, ///< incremental: per-step base sums + per-candidate deltas
    Naive, ///< reference: full front/extended rescan per candidate
};

/** Options for one routing pass. */
struct PassOptions
{
    int extendedSetSize = 20;
    double extendedSetWeight = 0.5;
    double decayIncrement = 0.001;
    int decayResetInterval = 5;
    Aggression aggression = Aggression::None;
    /** Cost model used for mirror decisions and depth estimation; may be
     * null only when aggression == None. */
    const monodromy::CostModel *costModel = nullptr;
    uint64_t seed = 1;
    /** Test hook: swap-candidate/mirror scoring implementation. */
    ScoreMode scoreMode = ScoreMode::Delta;
    /**
     * Cooperative cancellation: checked once per stall step (the unit
     * of routing progress), so an expired request aborts the trial grid
     * within one swap decision instead of wedging a worker. Inactive by
     * default -- the check is a pointer test.
     */
    Deadline deadline;
    /**
     * Fill RouteResult::estDepth/estTotalCost when a cost model is set.
     * routeWithTrials turns this off for the layout-refinement passes,
     * whose estimates nobody reads -- an O(routed gates) metric walk
     * per pass for nothing.
     */
    bool estimateMetrics = true;
};

/**
 * Deterministic work counters for the routing hot path. All counts are
 * pure functions of (circuit, coupling, options, seed) -- independent of
 * thread count, machine, and build type -- which makes them a noise-free
 * perf-trajectory signal: CI fails when heuristic evaluations regress
 * versus the checked-in BENCH_fig13.json baseline, no timer involved.
 */
struct RoutingCounters
{
    uint64_t stallSteps = 0;       ///< SWAP-selection rounds
    uint64_t swapCandidates = 0;   ///< candidate SWAPs enumerated
    uint64_t heuristicEvals = 0;   ///< candidate-layout scorings
                                   ///< (stall candidates + 2 per mirror)
    uint64_t mirrorOutlooks = 0;   ///< mirror decisions scored
    uint64_t extSetBuilds = 0;     ///< extended-set BFS walks
    uint64_t extSetReuses = 0;     ///< stall steps reusing the cached set

    double
    evalsPerStall() const
    {
        return stallSteps ? double(heuristicEvals) / double(stallSteps)
                          : 0.0;
    }

    void
    add(const RoutingCounters &o)
    {
        stallSteps += o.stallSteps;
        swapCandidates += o.swapCandidates;
        heuristicEvals += o.heuristicEvals;
        mirrorOutlooks += o.mirrorOutlooks;
        extSetBuilds += o.extSetBuilds;
        extSetReuses += o.extSetReuses;
    }

    bool
    operator==(const RoutingCounters &o) const
    {
        return stallSteps == o.stallSteps &&
               swapCandidates == o.swapCandidates &&
               heuristicEvals == o.heuristicEvals &&
               mirrorOutlooks == o.mirrorOutlooks &&
               extSetBuilds == o.extSetBuilds &&
               extSetReuses == o.extSetReuses;
    }
};

/** Result of routing a circuit onto a coupling map. */
struct RouteResult
{
    circuit::Circuit routed; ///< physical circuit (SWAPs materialized)
    layout::Layout initial;  ///< logical -> physical before the circuit
    layout::Layout final;    ///< logical -> physical after the circuit
    int swapsAdded = 0;
    int mirrorsAccepted = 0;
    int mirrorCandidates = 0;
    /** Estimated pulse depth/cost when a cost model was supplied. */
    double estDepth = 0;
    double estTotalCost = 0;
    /**
     * Hot-path work counters. For routePass(): this pass only. For
     * routeWithTrials(): the SUM over every pass of the whole trial grid
     * (layout refinement + swap trials), deterministic for any thread
     * count -- the routing-phase cost of the call, not of the winner.
     */
    RoutingCounters counters;
};

/** One deterministic routing pass from a fixed initial layout. */
RouteResult routePass(const circuit::Circuit &circuit,
                      const topology::CouplingMap &coupling,
                      const layout::Layout &initial,
                      const PassOptions &opts);

/**
 * Options for the full multi-trial flow (SabreLayout-style).
 *
 * Seed precedence: routeWithTrials derives EVERY random decision from
 * TrialOptions::seed via counter-based streams keyed by the layout-trial
 * index -- the random initial layout of trial t and the pass seeds of
 * its forward/backward refinements and swap trials are all
 * deriveSeed(seed, t, counter) values. `pass.seed` is therefore ignored
 * by routeWithTrials (it only matters for direct routePass calls); this
 * central derivation means callers cannot accidentally reuse one pass
 * seed across swap trials, and results are bit-identical for any
 * `threads` value.
 */
struct TrialOptions
{
    int layoutTrials = 4;
    int forwardBackwardPasses = 2;
    int swapTrials = 4;
    PostSelect postSelect = PostSelect::Swaps;
    /** Per-trial aggression; empty = all None (plain SABRE). A MIRAGE mix
     * of 5/45/45/5 percent across levels 0..3 is built by
     * mirageAggressionMix(). */
    std::vector<Aggression> trialAggression;
    PassOptions pass;
    uint64_t seed = 12345;
    /**
     * Worker threads for the trial grid: 1 = serial on the calling
     * thread (default), 0 = hardware concurrency, N = exactly N workers.
     * Output is bit-identical for every setting.
     */
    int threads = 1;
    /**
     * Optional externally owned pool (overrides `threads`); lets batch
     * callers (mirage_pass::transpileMany) share workers across circuits
     * instead of spawning a pool per call.
     */
    exec::ThreadPool *pool = nullptr;
};

/** The paper's 5/45/45/5 aggression distribution over `trials` slots. */
std::vector<Aggression> mirageAggressionMix(int trials);

/** Full flow: random layouts, fwd/bwd refinement, post-selection. */
RouteResult routeWithTrials(const circuit::Circuit &circuit,
                            const topology::CouplingMap &coupling,
                            const TrialOptions &opts);

} // namespace mirage::router

#endif // MIRAGE_ROUTER_SABRE_HH
