/**
 * @file
 * Serve engine + transports. The dispatcher thread is the only caller
 * of transpileMany(); connection threads park on futures, so the
 * routing trial grid (which fans out on the shared pool) never runs
 * concurrently with itself and result ordering is irrelevant --
 * responses are keyed by request id, and every result is bit-identical
 * to a one-shot transpile by the trial engine's determinism guarantee.
 */

#include "serve/server.hh"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>

#include "circuit/qasm.hh"
#include "common/deadline.hh"
#include "common/fault.hh"
#include "decomp/catalog.hh"

namespace mirage::serve {

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions opts)
    : opts_(std::move(opts)), pool_(opts_.threads),
      cache_(opts_.cacheEntries == 0 ? 1 : opts_.cacheEntries)
{
    if (opts_.maxBatch < 1)
        opts_.maxBatch = 1;

    // Warm the root-2 library from the committed fit catalog before
    // serving: the catalog includes the preseed gates, so a successful
    // load means the first --lower request fits nothing. A failed load
    // is recorded (unreadable vs malformed) and libraryFor() falls back
    // to its normal preseeded path for that root.
    catalogPath_ = decomp::resolveCatalogPath(opts_.catalogPath);
    if (!catalogPath_.empty()) {
        auto lib = std::make_unique<decomp::EquivalenceLibrary>(
            2, /*preseed=*/false);
        catalogLoad_ = lib->loadCacheFileDetailed(catalogPath_);
        if (catalogLoad_.status ==
            decomp::EquivalenceLibrary::CacheLoadStatus::Ok) {
            if (!opts_.cacheDir.empty())
                lib->loadCacheFile(opts_.cacheDir + "/eqlib-root2.cache");
            libraries_.emplace(2, std::move(lib));
        }
    }

    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

Engine::~Engine()
{
    beginShutdown();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueReady_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();

    if (!opts_.cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.cacheDir, ec);
        std::lock_guard<std::mutex> lock(libMutex_);
        for (const auto &[root, lib] : libraries_) {
            const std::string file = opts_.cacheDir + "/eqlib-root" +
                                     std::to_string(root) + ".cache";
            lib->saveCacheFile(file);
        }
    }
}

void
Engine::beginShutdown()
{
    shuttingDown_.store(true);
}

EngineCounters
Engine::counters() const
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    return counters_;
}

void
Engine::countDroppedResponse()
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    ++counters_.dropped;
}

decomp::EquivalenceLibrary *
Engine::libraryFor(int root_degree)
{
    std::lock_guard<std::mutex> lock(libMutex_);
    auto it = libraries_.find(root_degree);
    if (it != libraries_.end())
        return it->second.get();
    auto lib = std::make_unique<decomp::EquivalenceLibrary>(root_degree);
    if (!opts_.cacheDir.empty()) {
        const std::string file = opts_.cacheDir + "/eqlib-root" +
                                 std::to_string(root_degree) + ".cache";
        lib->loadCacheFile(file);
    }
    return libraries_.emplace(root_degree, std::move(lib))
        .first->second.get();
}

std::shared_ptr<const topology::CouplingMap>
Engine::resolveTopology(const std::string &spec, int min_qubits)
{
    // Resolve "auto" to the concrete grid it would pick BEFORE keying
    // the cache: two different-width circuits under "auto" may need
    // different grids, and must not alias each other's entry.
    std::string key = spec;
    if (spec == "auto") {
        int side = 1;
        while (side * side < min_qubits)
            ++side;
        key = "grid" + std::to_string(side) + "x" + std::to_string(side);
    }
    {
        std::lock_guard<std::mutex> lock(topoMutex_);
        auto it = topologies_.find(key);
        if (it != topologies_.end())
            return it->second;
    }
    // Build outside the lock (heavyhex1121 construction does real BFS
    // work); a racing duplicate build is harmless -- last writer wins
    // and both maps are identical.
    std::shared_ptr<const topology::CouplingMap> built;
    try {
        built = std::make_shared<const topology::CouplingMap>(
            topology::CouplingMap::parseSpec(key, min_qubits));
    } catch (const std::invalid_argument &e) {
        throw RequestError("request", e.what());
    }
    std::lock_guard<std::mutex> lock(topoMutex_);
    topologies_[key] = built;
    return built;
}

Engine::RelayedError
Engine::RelayedError::capture()
{
    RelayedError r;
    try {
        throw;
    } catch (const DeadlineError &e) {
        r.kind = Kind::Deadline;
        r.message = e.what();
    } catch (const fault::Injected &e) {
        r.kind = Kind::Fault;
        r.code = e.point();
        r.message = e.what();
    } catch (const RequestError &e) {
        r.kind = Kind::Request;
        r.code = e.code();
        r.message = e.what();
    } catch (const std::exception &e) {
        r.kind = Kind::Internal;
        r.message = e.what();
    } catch (...) {
        r.kind = Kind::Internal;
        r.message = "unknown error";
    }
    return r;
}

void
Engine::RelayedError::raise() const
{
    switch (kind) {
    case Kind::None:
        return;
    case Kind::Deadline:
        throw DeadlineError(message);
    case Kind::Fault:
        throw fault::Injected(code);
    case Kind::Request:
        throw RequestError(code, message);
    case Kind::Internal:
        break;
    }
    throw std::runtime_error(message);
}

std::future<Engine::JobOutcome>
Engine::enqueueJob(std::unique_ptr<Job> job)
{
    std::future<JobOutcome> future = job->promise.get_future();
    size_t backlog = 0;
    bool shed = false;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_)
            throw RequestError("shutdown", "server is shutting down");
        backlog = queue_.size();
        // Admission control: shed instead of queueing without bound. A
        // chaos schedule can also force the shed path on a quiet queue.
        shed = fault::shouldFail("queue.admit") ||
               (opts_.maxQueue > 0 && backlog >= size_t(opts_.maxQueue));
        if (!shed)
            queue_.push_back(std::move(job));
    }
    if (shed) {
        double retry_after_ms;
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.shed;
            retry_after_ms = avgJobMs_ * double(backlog + 1);
        }
        throw OverloadedError("admission queue full (" +
                                  std::to_string(backlog) +
                                  " requests queued); retry later",
                              retry_after_ms);
    }
    queueReady_.notify_one();
    return future;
}

void
Engine::dispatcherLoop()
{
    for (;;) {
        std::vector<std::unique_ptr<Job>> group;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            // Take the oldest job, then fold in every queued job with
            // the same (topology, options) group key -- those are
            // exactly the requests transpileMany can share a batch
            // with. Requests that piled up while the previous batch
            // ran coalesce here without any artificial batching delay.
            group.push_back(std::move(queue_.front()));
            queue_.pop_front();
            const std::string &gk = group.front()->groupKey;
            for (auto it = queue_.begin();
                 it != queue_.end() && int(group.size()) < opts_.maxBatch;) {
                if ((*it)->groupKey == gk) {
                    group.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }

        mirage_pass::TranspileOptions opts = group.front()->options;
        opts.pool = &pool_;
        const auto batch_start = std::chrono::steady_clock::now();
        try {
            if (opts.lowerToBasis)
                opts.equivalenceLibrary = libraryFor(opts.rootDegree);
            std::vector<circuit::Circuit> circuits;
            circuits.reserve(group.size());
            for (const auto &job : group)
                circuits.push_back(job->circuit);
            auto results = mirage_pass::transpileMany(
                circuits, *group.front()->topology, opts);
            const double batch_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - batch_start)
                    .count();
            // Count BEFORE fulfilling the promises: once a waiter's
            // response is visible, a stats snapshot must already
            // include its transpile (the bench gate relies on this).
            {
                std::lock_guard<std::mutex> lock(countersMutex_);
                counters_.transpiles += group.size();
                counters_.batches += 1;
                counters_.batchedRequests += group.size();
                counters_.maxBatchSize = std::max(counters_.maxBatchSize,
                                                  uint64_t(group.size()));
                // Rough per-job cost estimate feeding retryAfterMs.
                avgJobMs_ = 0.8 * avgJobMs_ +
                            0.2 * (batch_ms / double(group.size()));
            }
            for (size_t i = 0; i < group.size(); ++i) {
                JobOutcome out;
                out.result = std::move(results[i]);
                group[i]->promise.set_value(std::move(out));
            }
        } catch (...) {
            if (group.size() == 1) {
                JobOutcome out;
                out.error = RelayedError::capture();
                group.front()->promise.set_value(std::move(out));
                continue;
            }
            // Fault isolation: a batch dies as a unit (transpileMany
            // rethrows the first failure), but only one member may be
            // poisoned -- an injected fit fault, say. Rerun each job
            // solo so its batch mates still get their results.
            for (auto &job : group) {
                try {
                    mirage_pass::TranspileOptions jopts = job->options;
                    jopts.pool = &pool_;
                    if (jopts.lowerToBasis)
                        jopts.equivalenceLibrary =
                            libraryFor(jopts.rootDegree);
                    std::vector<circuit::Circuit> one;
                    one.push_back(job->circuit);
                    auto res = mirage_pass::transpileMany(
                        one, *job->topology, jopts);
                    {
                        std::lock_guard<std::mutex> lock(countersMutex_);
                        counters_.transpiles += 1;
                    }
                    JobOutcome out;
                    out.result = std::move(res.front());
                    job->promise.set_value(std::move(out));
                } catch (...) {
                    JobOutcome out;
                    out.error = RelayedError::capture();
                    job->promise.set_value(std::move(out));
                }
            }
        }
    }
}

json::Value
Engine::handleTranspile(const json::Value &doc, const json::Value &id)
{
    if (shuttingDown_.load())
        throw RequestError("shutdown", "server is shutting down");

    TranspileRequest req = parseTranspileRequest(doc);
    circuit::Circuit input;
    try {
        input = circuit::fromQasm(req.qasm);
    } catch (const circuit::QasmError &e) {
        throw RequestError("qasm", "qasm:" + std::to_string(e.line()) +
                                       ":" + std::to_string(e.column()) +
                                       ": " + e.message());
    }
    if (input.numQubits() == 0)
        throw RequestError("input", "circuit declares no qubits");

    // Per-request size caps: a single huge circuit must not be able to
    // monopolize the worker pool of a shared server.
    if ((opts_.maxQubits > 0 && input.numQubits() > opts_.maxQubits) ||
        (opts_.maxGates > 0 && int(input.size()) > opts_.maxGates)) {
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.tooLarge;
        }
        throw RequestError(
            "toolarge",
            "circuit (" + std::to_string(input.numQubits()) + " qubits, " +
                std::to_string(input.size()) + " gates) exceeds server caps" +
                (opts_.maxQubits > 0
                     ? " maxQubits=" + std::to_string(opts_.maxQubits)
                     : "") +
                (opts_.maxGates > 0
                     ? " maxGates=" + std::to_string(opts_.maxGates)
                     : ""));
    }

    // Effective deadline: the request's budget capped by the server's.
    // The clock starts HERE, at admission, so time spent queued behind
    // other work counts against the budget.
    double deadline_ms = req.deadlineMs;
    if (opts_.deadlineMs > 0 &&
        (deadline_ms <= 0 || deadline_ms > opts_.deadlineMs))
        deadline_ms = opts_.deadlineMs;
    Deadline deadline;
    if (deadline_ms > 0)
        deadline = Deadline::afterMs(deadline_ms);

    auto topo = resolveTopology(req.topology, input.numQubits());
    if (topo->numQubits() < input.numQubits())
        throw RequestError("input",
                           "topology '" + req.topology + "' has " +
                               std::to_string(topo->numQubits()) +
                               " qubits but the circuit needs " +
                               std::to_string(input.numQubits()));

    const uint64_t fp = circuitFingerprint(input);
    const std::string key =
        resultCacheKey(fp, topo->name(), req.options, req.format);

    auto respond = [this, &id](const EntryPtr &entry, bool hit,
                               bool coalesced) {
        json::Value v = okEnvelope(id);
        v.set("kind", "transpile");
        json::Value c = json::Value::object();
        c.set("hit", hit);
        c.set("coalesced", coalesced);
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            c.set("hits", counters_.cacheHits);
            c.set("misses", counters_.cacheMisses);
        }
        v.set("cache", std::move(c));
        if (entry->format == "qasm")
            v.set("qasm", entry->qasm);
        else
            v.set("report", entry->report);
        return v;
    };

    // A deadlined miss computes SOLO: it neither registers in pending_
    // (a coalesced waiter without a deadline must not inherit this
    // request's "deadline" failure) nor joins a dispatcher batch (the
    // batch runs under one options struct, and one expiring member must
    // not abort its mates). Completed results still land in the memo --
    // a deadline never changes result content, only whether there is
    // one.
    const bool solo = deadline.active();
    std::shared_ptr<Inflight> inflight;
    bool owner = false;
    EntryPtr hitEntry;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (auto entry = cache_.get(key)) {
            hitEntry = *entry; // snapshot; the LRU may evict it later
            std::lock_guard<std::mutex> clock(countersMutex_);
            ++counters_.cacheHits;
        }
        auto it = (hitEntry || solo) ? pending_.end() : pending_.find(key);
        if (it != pending_.end()) {
            inflight = it->second;
            std::lock_guard<std::mutex> clock(countersMutex_);
            ++counters_.coalesced;
        } else if (!hitEntry) {
            if (!solo) {
                inflight = std::make_shared<Inflight>();
                inflight->future = inflight->promise.get_future().share();
                pending_[key] = inflight;
            }
            owner = true;
            std::lock_guard<std::mutex> clock(countersMutex_);
            ++counters_.cacheMisses;
        }
    }
    if (hitEntry)
        return respond(hitEntry, true, false);

    if (!owner) {
        // Single-flight: an identical request is already computing;
        // wait for its entry (or its failure) instead of duplicating
        // the work.
        const InflightOutcome &out = inflight->future.get();
        out.error.raise();
        return respond(out.entry, true, true);
    }

    auto job = std::make_unique<Job>();
    job->circuit = input;
    job->topology = topo;
    job->options = req.options;
    job->options.deadline = deadline;
    job->groupKey = resultCacheKey(0, topo->name(), req.options, "");
    if (solo)
        job->groupKey +=
            "|solo=" + std::to_string(soloSeq_.fetch_add(1));

    mirage_pass::TranspileResult result;
    try {
        auto future = enqueueJob(std::move(job));
        JobOutcome out = future.get();
        out.error.raise(); // fresh exception on THIS thread
        result = std::move(out.result);
    } catch (...) {
        // Unblock coalesced waiters with the same failure, then drop
        // the rendezvous so a retry computes fresh. (Solo requests have
        // no rendezvous and no waiters.)
        if (inflight) {
            InflightOutcome io;
            io.error = RelayedError::capture();
            inflight->promise.set_value(std::move(io));
            std::lock_guard<std::mutex> lock(cacheMutex_);
            pending_.erase(key);
        }
        throw;
    }

    auto entry = std::make_shared<CachedEntry>();
    entry->format = req.format;
    if (req.format == "qasm") {
        const circuit::Circuit &emitted =
            result.loweredToBasis ? result.lowered : result.routed;
        entry->qasm = circuit::toQasm(emitted);
    } else {
        entry->report = transpileReportJson(req.name, input, *topo,
                                            req.options, result);
    }
    EntryPtr shared = entry;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        cache_.put(key, shared);
        if (inflight)
            pending_.erase(key);
    }
    if (inflight) {
        InflightOutcome io;
        io.entry = shared;
        inflight->promise.set_value(std::move(io));
    }
    return respond(shared, false, false);
}

json::Value
Engine::statsResponse(const json::Value &id) const
{
    json::Value v = okEnvelope(id);
    v.set("kind", "stats");
    v.set("protocolVersion", kProtocolVersion);
    EngineCounters c = counters();
    json::Value cj = json::Value::object();
    cj.set("requests", c.requests);
    cj.set("transpiles", c.transpiles);
    cj.set("cacheHits", c.cacheHits);
    cj.set("cacheMisses", c.cacheMisses);
    cj.set("coalesced", c.coalesced);
    cj.set("batches", c.batches);
    cj.set("batchedRequests", c.batchedRequests);
    cj.set("maxBatchSize", c.maxBatchSize);
    cj.set("errors", c.errors);
    cj.set("shed", c.shed);
    cj.set("deadlines", c.deadlines);
    cj.set("tooLarge", c.tooLarge);
    cj.set("dropped", c.dropped);
    v.set("counters", std::move(cj));
    {
        json::Value limits = json::Value::object();
        limits.set("maxQueue", opts_.maxQueue);
        limits.set("deadlineMs", opts_.deadlineMs);
        limits.set("maxQubits", opts_.maxQubits);
        limits.set("maxGates", opts_.maxGates);
        v.set("limits", std::move(limits));
    }
    if (fault::armed()) {
        json::Value f = json::Value::object();
        f.set("spec", fault::spec());
        f.set("totalInjected", fault::injectedCount());
        json::Value inj = json::Value::object();
        for (const auto &p : fault::stats())
            if (p.injected > 0)
                inj.set(p.point, p.injected);
        f.set("injected", std::move(inj));
        v.set("faults", std::move(f));
    }
    {
        json::Value cache = json::Value::object();
        {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            cache.set("entries", uint64_t(cache_.size()));
        }
        cache.set("capacity", uint64_t(opts_.cacheEntries));
        v.set("cache", std::move(cache));
    }
    {
        using Status = decomp::EquivalenceLibrary::CacheLoadStatus;
        json::Value cat = json::Value::object();
        cat.set("path", catalogPath_);
        const char *status = "none";
        if (!catalogPath_.empty()) {
            switch (catalogLoad_.status) {
            case Status::Ok:
                status = "ok";
                break;
            case Status::Unreadable:
                status = "unreadable";
                break;
            case Status::Malformed:
                status = "malformed";
                break;
            }
        }
        cat.set("status", status);
        v.set("catalog", std::move(cat));
    }
    v.set("poolThreads", pool_.numThreads());
    v.set("shuttingDown", shuttingDown_.load());
    return v;
}

json::Value
Engine::handleValue(const json::Value &request)
{
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.requests;
    }
    json::Value id;
    if (request.isObject())
        if (const json::Value *found = request.find("id"))
            id = *found;

    auto fail = [this, &id](const std::string &code,
                            const std::string &message) {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.errors;
        return errorResponse(id, code, message);
    };

    try {
        std::string op = "transpile";
        if (request.isObject()) {
            if (const json::Value *found = request.find("op")) {
                if (!found->isString())
                    throw RequestError("request",
                                       "field 'op' must be a string");
                op = found->asString();
            }
        }
        if (op == "transpile")
            return handleTranspile(request, id);
        if (op == "stats")
            return statsResponse(id);
        if (op == "ping") {
            json::Value v = okEnvelope(id);
            v.set("kind", "pong");
            return v;
        }
        if (op == "shutdown") {
            beginShutdown();
            json::Value v = okEnvelope(id);
            v.set("kind", "shutdown");
            v.set("draining", true);
            return v;
        }
        throw RequestError("request", "unknown op '" + op +
                                          "' (expected transpile, stats, "
                                          "ping, or shutdown)");
    } catch (const OverloadedError &e) {
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.errors;
        }
        return errorResponse(id, e.code(), e.what(), e.retryAfterMs());
    } catch (const RequestError &e) {
        return fail(e.code(), e.what());
    } catch (const DeadlineError &e) {
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.deadlines;
        }
        return fail("deadline", e.what());
    } catch (const fault::Injected &e) {
        return fail("fault", e.what());
    } catch (const std::exception &e) {
        return fail("internal", e.what());
    }
}

std::string
Engine::handle(const std::string &line)
{
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::ParseError &e) {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.requests;
        ++counters_.errors;
        return errorResponse(json::Value(), "parse", e.what()).dump(0);
    }
    return handleValue(doc).dump(0);
}

// --- stdio transport --------------------------------------------------------

uint64_t
serveStdio(Engine &engine, std::istream &in, std::ostream &out)
{
    uint64_t handled = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        out << engine.handle(line) << "\n" << std::flush;
        ++handled;
        if (!out) {
            // Downstream pipe gone (SIGPIPE is ignored in cmdServe, so
            // the write surfaces as a stream failure): count the lost
            // response and stop instead of spinning on a dead stream.
            engine.countDroppedResponse();
            break;
        }
        if (engine.shuttingDown())
            break;
    }
    return handled;
}

// --- Unix-socket transport --------------------------------------------------

namespace {

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

} // namespace

SocketServer::SocketServer(Engine &engine, std::string socket_path)
    : engine_(engine), path_(std::move(socket_path))
{
}

SocketServer::~SocketServer()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(path_.c_str());
    }
}

void
SocketServer::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        throw ServeError("socket path too long: '" + path_ + "'");
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        throw ServeError(std::string("socket(): ") + std::strerror(errno));

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (errno != EADDRINUSE) {
            int e = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw ServeError("bind('" + path_ + "'): " + std::strerror(e));
        }
        // A socket file exists. Probe it: if nobody answers, it is a
        // stale leftover from a dead server -- replace it. If a server
        // answers, refuse to hijack the path.
        int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        bool live = probe >= 0 &&
                    ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                              sizeof(addr)) == 0;
        if (probe >= 0)
            ::close(probe);
        if (live) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw ServeError("'" + path_ +
                             "' already has a live server behind it");
        }
        ::unlink(path_.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            int e = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw ServeError("bind('" + path_ + "'): " + std::strerror(e));
        }
    }
    if (::listen(listenFd_, 64) < 0) {
        int e = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(path_.c_str());
        throw ServeError("listen('" + path_ + "'): " + std::strerror(e));
    }
}

void
SocketServer::connectionLoop(Connection *conn)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        // Chaos hook: a read error is indistinguishable from the client
        // hanging up mid-request -- drop the connection (and anything
        // buffered) exactly as a real disconnect would.
        if (fault::shouldFail("serve.read"))
            break;
        buffer.append(chunk, size_t(n));
        size_t pos;
        while ((pos = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (line.empty())
                continue;
            std::string response = engine_.handle(line);
            response += '\n';
            // A failed send means the client vanished mid-response
            // (EPIPE/ECONNRESET -- sendAll uses MSG_NOSIGNAL, and
            // cmdServe ignores SIGPIPE, so the process survives). The
            // chaos hook fakes the same outcome. Either way the lost
            // response is counted and the work stays memoized for the
            // client's retry.
            if (fault::shouldFail("serve.write") ||
                !sendAll(conn->fd, response)) {
                engine_.countDroppedResponse();
                open = false;
                break;
            }
            if (engine_.shuttingDown()) {
                // The shutdown response has been delivered; stop
                // reading so run() can drain and exit.
                open = false;
                break;
            }
        }
    }
    conn->done.store(true);
}

void
SocketServer::run()
{
    if (listenFd_ < 0)
        start();

    while (!stopRequested_.load() && !engine_.shuttingDown()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, 100);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0) {
            // Idle tick: reap connections whose client went away so a
            // long-running server does not accumulate dead fds.
            std::lock_guard<std::mutex> lock(connMutex_);
            for (auto it = connections_.begin();
                 it != connections_.end();) {
                if ((*it)->done.load()) {
                    if ((*it)->thread.joinable())
                        (*it)->thread.join();
                    ::close((*it)->fd);
                    it = connections_.erase(it);
                } else {
                    ++it;
                }
            }
            continue;
        }
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == ECONNABORTED)
                continue;
            break;
        }
        // Chaos hook: an accept that fails after the fact (client gave
        // up, fd pressure) -- close and keep listening.
        if (fault::shouldFail("serve.accept")) {
            ::close(fd);
            continue;
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            connections_.push_back(std::move(conn));
        }
        raw->thread = std::thread([this, raw] { connectionLoop(raw); });
    }

    // Drain: stop listening, wake blocked readers (writes still flush),
    // join every connection thread.
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(path_.c_str());
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto &conn : connections_)
        if (!conn->done.load())
            ::shutdown(conn->fd, SHUT_RD);
    for (auto &conn : connections_) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }
    connections_.clear();
}

} // namespace mirage::serve
