/**
 * @file
 * Traffic-generator implementation: deterministic synthetic circuits,
 * the two-phase warmup/drive workload over either transport, artifact
 * assembly, and the exact-counter regression check.
 */

#include "serve/traffic.hh"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/qasm.hh"
#include "common/rng.hh"
#include "serve/server.hh"

namespace mirage::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Uniform double in [0, 2*pi) from one rng draw. */
double
angleDraw(StreamRng &rng)
{
    return double(rng() >> 11) * 0x1.0p-53 * 2.0 * linalg::kPi;
}

} // namespace

std::string
syntheticQasm(int index, int width, int two_qubit_gates, uint64_t seed)
{
    StreamRng rng(seed, 0x7261666669636bULL + uint64_t(index));
    circuit::Circuit c(width, "traffic" + std::to_string(index));
    for (int q = 0; q < width; ++q)
        c.h(q);
    for (int g = 0; g < two_qubit_gates; ++g) {
        int a = int(rng() % uint64_t(width));
        int b = int(rng() % uint64_t(width - 1));
        if (b >= a)
            ++b;
        c.rz(angleDraw(rng), a);
        c.ry(angleDraw(rng), b);
        c.cx(a, b);
    }
    return circuit::toQasm(c);
}

namespace {

/** The transpile request line for circuit #index of the workload. */
std::string
requestLine(const TrafficOptions &o, int index, const std::string &qasm,
            int request_id)
{
    json::Value req = json::Value::object();
    req.set("id", request_id);
    req.set("op", "transpile");
    req.set("name", "traffic" + std::to_string(index));
    req.set("qasm", qasm);
    json::Value opts = json::Value::object();
    opts.set("topology", o.topology);
    opts.set("trials", o.trials);
    opts.set("swapTrials", o.swapTrials);
    opts.set("fwdBwd", o.fwdBwd);
    opts.set("seed", o.seed);
    opts.set("aggression", o.aggression);
    opts.set("lower", o.lower);
    req.set("options", std::move(opts));
    return req.dump(0);
}

uint64_t
counterOf(const json::Value &report, const char *name)
{
    const json::Value *result = report.find("result");
    if (!result)
        return 0;
    const json::Value *counters = result->find("routingCounters");
    if (!counters)
        return 0;
    const json::Value *v = counters->find(name);
    return v && v->isNumber() ? uint64_t(v->asNumber()) : 0;
}

} // namespace

json::Value
runTraffic(const TrafficOptions &o, std::ostream &log)
{
    const bool overSocket = !o.socketPath.empty();

    // The in-process engine (unused over a socket). The memo must hold
    // the whole distinct set or drive-phase hits stop being exact.
    EngineOptions eopts;
    eopts.threads = o.engineThreads;
    eopts.cacheEntries = std::max<size_t>(256, size_t(o.distinct) * 4);
    std::unique_ptr<Engine> engine;
    if (!overSocket)
        engine = std::make_unique<Engine>(eopts);

    // call(): one request line -> one response line, whatever the
    // transport. Over the socket each thread makes its own client.
    auto makeCall = [&]() -> std::function<std::string(const std::string &)> {
        if (!overSocket) {
            Engine *e = engine.get();
            return [e](const std::string &line) { return e->handle(line); };
        }
        auto client = std::make_shared<SocketClient>(o.socketPath);
        return [client](const std::string &line) {
            return client->roundTrip(line);
        };
    };

    std::vector<std::string> qasm(size_t(o.distinct));
    for (int k = 0; k < o.distinct; ++k)
        qasm[size_t(k)] =
            syntheticQasm(k, o.width, o.twoQubitGates, o.seed);

    // --- phase 1: warmup (sequential; every circuit misses once) ----------
    log << "mirage: serve-bench warmup: " << o.distinct
        << " distinct circuits on " << o.topology << "...\n";
    auto warmCall = makeCall();
    std::vector<std::string> referenceReports(size_t(o.distinct));
    uint64_t warmupMisses = 0, warmupErrors = 0;
    uint64_t heuristicEvals = 0, swapCandidates = 0, mirrorOutlooks = 0;
    const auto warmupStart = Clock::now();
    for (int k = 0; k < o.distinct; ++k) {
        const std::string response =
            warmCall(requestLine(o, k, qasm[size_t(k)], k));
        json::Value doc = json::parse(response);
        if (!doc["ok"].asBool()) {
            ++warmupErrors;
            continue;
        }
        if (!doc["cache"]["hit"].asBool())
            ++warmupMisses;
        const json::Value &report = doc["report"];
        referenceReports[size_t(k)] = report.dump(0);
        heuristicEvals += counterOf(report, "heuristicEvals");
        swapCandidates += counterOf(report, "swapCandidates");
        mirrorOutlooks += counterOf(report, "mirrorOutlooks");
    }
    const double warmupMs = msSince(warmupStart);

    // --- phase 2: drive (N clients, all requests memo hits) ---------------
    const int driveTotal = o.clients * o.requestsPerClient;
    log << "mirage: serve-bench drive: " << o.clients << " clients x "
        << o.requestsPerClient << " requests...\n";
    std::vector<std::thread> clients;
    std::mutex mergeMutex;
    std::vector<double> latenciesMs;
    latenciesMs.reserve(size_t(driveTotal));
    uint64_t driveHits = 0, driveErrors = 0;
    bool bitIdentical = true;
    const auto driveStart = Clock::now();
    for (int i = 0; i < o.clients; ++i) {
        clients.emplace_back([&, i] {
            auto call = makeCall();
            std::vector<double> local;
            local.reserve(size_t(o.requestsPerClient));
            uint64_t hits = 0, errors = 0;
            bool identical = true;
            for (int j = 0; j < o.requestsPerClient; ++j) {
                const int k = (i + j) % o.distinct;
                const std::string line = requestLine(
                    o, k, qasm[size_t(k)], 1000 + i * 1000 + j);
                const auto t0 = Clock::now();
                const std::string response = call(line);
                local.push_back(msSince(t0));
                json::Value doc = json::parse(response);
                if (!doc["ok"].asBool()) {
                    ++errors;
                    continue;
                }
                if (doc["cache"]["hit"].asBool())
                    ++hits;
                if (doc["report"].dump(0) != referenceReports[size_t(k)])
                    identical = false;
            }
            std::lock_guard<std::mutex> lock(mergeMutex);
            latenciesMs.insert(latenciesMs.end(), local.begin(),
                               local.end());
            driveHits += hits;
            driveErrors += errors;
            bitIdentical = bitIdentical && identical;
        });
    }
    for (auto &t : clients)
        t.join();
    const double driveMs = msSince(driveStart);

    // Engine-side snapshot (stats op works over both transports).
    json::Value stats;
    {
        auto call = makeCall();
        stats = json::parse(call("{\"op\": \"stats\"}"));
    }

    std::sort(latenciesMs.begin(), latenciesMs.end());
    auto percentile = [&latenciesMs](double p) {
        if (latenciesMs.empty())
            return 0.0;
        size_t idx = size_t(p * double(latenciesMs.size() - 1));
        return latenciesMs[idx];
    };

    json::Value doc = json::Value::object();
    doc.set("schemaVersion", kProtocolVersion);
    doc.set("kind", kServeBenchKind);
    {
        json::Value p = json::Value::object();
        p.set("clients", o.clients);
        p.set("requestsPerClient", o.requestsPerClient);
        p.set("distinctCircuits", o.distinct);
        p.set("width", o.width);
        p.set("twoQubitGates", o.twoQubitGates);
        p.set("topology", o.topology);
        p.set("trials", o.trials);
        p.set("swapTrials", o.swapTrials);
        p.set("fwdBwd", o.fwdBwd);
        p.set("seed", o.seed);
        p.set("aggression", o.aggression);
        p.set("lower", o.lower);
        doc.set("parameters", std::move(p));
    }
    {
        // Exact, machine- and thread-count-invariant: what --check
        // gates. A drift here is a behavior change, never noise.
        json::Value c = json::Value::object();
        c.set("requests", uint64_t(o.distinct) + uint64_t(driveTotal));
        c.set("warmupMisses", warmupMisses);
        c.set("driveHits", driveHits);
        c.set("errors", warmupErrors + driveErrors);
        c.set("bitIdentical", bitIdentical);
        c.set("heuristicEvals", heuristicEvals);
        c.set("swapCandidates", swapCandidates);
        c.set("mirrorOutlooks", mirrorOutlooks);
        doc.set("counters", std::move(c));
    }
    {
        // Engine-side view: transpiles is exact for a fresh server
        // (= distinct circuits); coalesced/batches depend on arrival
        // timing, so they live here, uncompared.
        json::Value s = json::Value::object();
        if (const json::Value *counters = stats.find("counters")) {
            for (const auto &[key, value] : counters->members())
                s.set(key, value);
        }
        s.set("transport", overSocket ? "socket" : "in-process");
        doc.set("informational", std::move(s));
    }
    {
        json::Value t = json::Value::object();
        t.set("warmupMs", warmupMs);
        t.set("driveMs", driveMs);
        t.set("requestsPerSec",
              driveMs > 0 ? double(driveTotal) * 1000.0 / driveMs : 0.0);
        t.set("p50Ms", percentile(0.50));
        t.set("p99Ms", percentile(0.99));
        t.set("maxMs", latenciesMs.empty() ? 0.0 : latenciesMs.back());
        doc.set("timing", std::move(t));
    }
    log << "mirage: serve-bench: " << (o.distinct + driveTotal)
        << " requests, " << driveHits << "/" << driveTotal
        << " drive hits, bitIdentical="
        << (bitIdentical ? "true" : "false") << "\n";
    return doc;
}

bool
checkServeArtifact(const json::Value &current, const json::Value &baseline,
                   std::string *report)
{
    auto fail = [report](const std::string &message) {
        if (report) {
            *report += message;
            *report += "\n";
        }
        return false;
    };

    bool ok = true;
    for (const char *section : {"parameters", "counters"}) {
        const json::Value *cur = current.find(section);
        const json::Value *base = baseline.find(section);
        if (!cur || !base) {
            ok = fail(std::string("serve-bench check: missing '") +
                      section + "' section");
            continue;
        }
        // Exact key-by-key comparison in both directions: a missing,
        // added, or changed key is a schema/behavior drift.
        for (const auto &[key, value] : base->members()) {
            const json::Value *now = cur->find(key);
            if (!now) {
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " missing from current artifact");
                continue;
            }
            if (now->dump(0) != value.dump(0))
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " = " + now->dump(0) +
                          " (baseline " + value.dump(0) + ")");
        }
        for (const auto &[key, value] : cur->members()) {
            (void)value;
            if (!base->find(key))
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " not present in baseline");
        }
    }
    return ok;
}

// --- SocketClient -----------------------------------------------------------

SocketClient::SocketClient(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        throw ServeError("socket path too long: '" + socket_path + "'");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        throw ServeError(std::string("socket(): ") + std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd_);
        fd_ = -1;
        throw ServeError("connect('" + socket_path +
                         "'): " + std::strerror(e));
    }
}

SocketClient::~SocketClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
SocketClient::roundTrip(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServeError(std::string("send(): ") +
                             std::strerror(errno));
        }
        off += size_t(n);
    }
    for (;;) {
        size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            std::string response = buffer_.substr(0, pos);
            buffer_.erase(0, pos + 1);
            return response;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            throw ServeError("server closed the connection mid-response");
        buffer_.append(chunk, size_t(n));
    }
}

} // namespace mirage::serve
