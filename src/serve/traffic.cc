/**
 * @file
 * Traffic-generator implementation: deterministic synthetic circuits,
 * the two-phase warmup/drive workload over either transport, artifact
 * assembly, and the exact-counter regression check.
 */

#include "serve/traffic.hh"

#include <errno.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/qasm.hh"
#include "common/fault.hh"
#include "common/rng.hh"
#include "serve/server.hh"

namespace mirage::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Uniform double in [0, 2*pi) from one rng draw. */
double
angleDraw(StreamRng &rng)
{
    return double(rng() >> 11) * 0x1.0p-53 * 2.0 * linalg::kPi;
}

} // namespace

std::string
syntheticQasm(int index, int width, int two_qubit_gates, uint64_t seed)
{
    StreamRng rng(seed, 0x7261666669636bULL + uint64_t(index));
    circuit::Circuit c(width, "traffic" + std::to_string(index));
    for (int q = 0; q < width; ++q)
        c.h(q);
    for (int g = 0; g < two_qubit_gates; ++g) {
        int a = int(rng() % uint64_t(width));
        int b = int(rng() % uint64_t(width - 1));
        if (b >= a)
            ++b;
        c.rz(angleDraw(rng), a);
        c.ry(angleDraw(rng), b);
        c.cx(a, b);
    }
    return circuit::toQasm(c);
}

namespace {

/** The transpile request line for circuit #index of the workload. */
std::string
requestLine(const TrafficOptions &o, int index, const std::string &qasm,
            int request_id)
{
    json::Value req = json::Value::object();
    req.set("id", request_id);
    req.set("op", "transpile");
    req.set("name", "traffic" + std::to_string(index));
    req.set("qasm", qasm);
    json::Value opts = json::Value::object();
    opts.set("topology", o.topology);
    opts.set("trials", o.trials);
    opts.set("swapTrials", o.swapTrials);
    opts.set("fwdBwd", o.fwdBwd);
    opts.set("seed", o.seed);
    opts.set("aggression", o.aggression);
    opts.set("lower", o.lower);
    req.set("options", std::move(opts));
    return req.dump(0);
}

uint64_t
counterOf(const json::Value &report, const char *name)
{
    const json::Value *result = report.find("result");
    if (!result)
        return 0;
    const json::Value *counters = result->find("routingCounters");
    if (!counters)
        return 0;
    const json::Value *v = counters->find(name);
    return v && v->isNumber() ? uint64_t(v->asNumber()) : 0;
}

} // namespace

json::Value
runTraffic(const TrafficOptions &o, std::ostream &log)
{
    const bool overSocket = !o.socketPath.empty();

    // The in-process engine (unused over a socket). The memo must hold
    // the whole distinct set or drive-phase hits stop being exact.
    EngineOptions eopts;
    eopts.threads = o.engineThreads;
    eopts.cacheEntries = std::max<size_t>(256, size_t(o.distinct) * 4);
    std::unique_ptr<Engine> engine;
    if (!overSocket)
        engine = std::make_unique<Engine>(eopts);

    // call(): one request line -> one response line, whatever the
    // transport. Over the socket each thread makes its own client.
    auto makeCall = [&]() -> std::function<std::string(const std::string &)> {
        if (!overSocket) {
            Engine *e = engine.get();
            return [e](const std::string &line) { return e->handle(line); };
        }
        auto client = std::make_shared<SocketClient>(o.socketPath);
        return [client](const std::string &line) {
            return client->roundTrip(line);
        };
    };

    std::vector<std::string> qasm(size_t(o.distinct));
    for (int k = 0; k < o.distinct; ++k)
        qasm[size_t(k)] =
            syntheticQasm(k, o.width, o.twoQubitGates, o.seed);

    // --- phase 1: warmup (sequential; every circuit misses once) ----------
    log << "mirage: serve-bench warmup: " << o.distinct
        << " distinct circuits on " << o.topology << "...\n";
    auto warmCall = makeCall();
    std::vector<std::string> referenceReports(size_t(o.distinct));
    uint64_t warmupMisses = 0, warmupErrors = 0;
    uint64_t heuristicEvals = 0, swapCandidates = 0, mirrorOutlooks = 0;
    const auto warmupStart = Clock::now();
    for (int k = 0; k < o.distinct; ++k) {
        const std::string response =
            warmCall(requestLine(o, k, qasm[size_t(k)], k));
        json::Value doc = json::parse(response);
        if (!doc["ok"].asBool()) {
            ++warmupErrors;
            continue;
        }
        if (!doc["cache"]["hit"].asBool())
            ++warmupMisses;
        const json::Value &report = doc["report"];
        referenceReports[size_t(k)] = report.dump(0);
        heuristicEvals += counterOf(report, "heuristicEvals");
        swapCandidates += counterOf(report, "swapCandidates");
        mirrorOutlooks += counterOf(report, "mirrorOutlooks");
    }
    const double warmupMs = msSince(warmupStart);

    // --- phase 2: drive (N clients, all requests memo hits) ---------------
    const int driveTotal = o.clients * o.requestsPerClient;
    log << "mirage: serve-bench drive: " << o.clients << " clients x "
        << o.requestsPerClient << " requests...\n";
    std::vector<std::thread> clients;
    std::mutex mergeMutex;
    std::vector<double> latenciesMs;
    latenciesMs.reserve(size_t(driveTotal));
    uint64_t driveHits = 0, driveErrors = 0;
    bool bitIdentical = true;
    const auto driveStart = Clock::now();
    for (int i = 0; i < o.clients; ++i) {
        clients.emplace_back([&, i] {
            auto call = makeCall();
            std::vector<double> local;
            local.reserve(size_t(o.requestsPerClient));
            uint64_t hits = 0, errors = 0;
            bool identical = true;
            for (int j = 0; j < o.requestsPerClient; ++j) {
                const int k = (i + j) % o.distinct;
                const std::string line = requestLine(
                    o, k, qasm[size_t(k)], 1000 + i * 1000 + j);
                const auto t0 = Clock::now();
                const std::string response = call(line);
                local.push_back(msSince(t0));
                json::Value doc = json::parse(response);
                if (!doc["ok"].asBool()) {
                    ++errors;
                    continue;
                }
                if (doc["cache"]["hit"].asBool())
                    ++hits;
                if (doc["report"].dump(0) != referenceReports[size_t(k)])
                    identical = false;
            }
            std::lock_guard<std::mutex> lock(mergeMutex);
            latenciesMs.insert(latenciesMs.end(), local.begin(),
                               local.end());
            driveHits += hits;
            driveErrors += errors;
            bitIdentical = bitIdentical && identical;
        });
    }
    for (auto &t : clients)
        t.join();
    const double driveMs = msSince(driveStart);

    // Engine-side snapshot (stats op works over both transports).
    json::Value stats;
    {
        auto call = makeCall();
        stats = json::parse(call("{\"op\": \"stats\"}"));
    }

    std::sort(latenciesMs.begin(), latenciesMs.end());
    auto percentile = [&latenciesMs](double p) {
        if (latenciesMs.empty())
            return 0.0;
        size_t idx = size_t(p * double(latenciesMs.size() - 1));
        return latenciesMs[idx];
    };

    json::Value doc = json::Value::object();
    doc.set("schemaVersion", kProtocolVersion);
    doc.set("kind", kServeBenchKind);
    {
        json::Value p = json::Value::object();
        p.set("clients", o.clients);
        p.set("requestsPerClient", o.requestsPerClient);
        p.set("distinctCircuits", o.distinct);
        p.set("width", o.width);
        p.set("twoQubitGates", o.twoQubitGates);
        p.set("topology", o.topology);
        p.set("trials", o.trials);
        p.set("swapTrials", o.swapTrials);
        p.set("fwdBwd", o.fwdBwd);
        p.set("seed", o.seed);
        p.set("aggression", o.aggression);
        p.set("lower", o.lower);
        doc.set("parameters", std::move(p));
    }
    {
        // Exact, machine- and thread-count-invariant: what --check
        // gates. A drift here is a behavior change, never noise.
        json::Value c = json::Value::object();
        c.set("requests", uint64_t(o.distinct) + uint64_t(driveTotal));
        c.set("warmupMisses", warmupMisses);
        c.set("driveHits", driveHits);
        c.set("errors", warmupErrors + driveErrors);
        c.set("bitIdentical", bitIdentical);
        c.set("heuristicEvals", heuristicEvals);
        c.set("swapCandidates", swapCandidates);
        c.set("mirrorOutlooks", mirrorOutlooks);
        doc.set("counters", std::move(c));
    }
    {
        // Engine-side view: transpiles is exact for a fresh server
        // (= distinct circuits); coalesced/batches depend on arrival
        // timing, so they live here, uncompared.
        json::Value s = json::Value::object();
        if (const json::Value *counters = stats.find("counters")) {
            for (const auto &[key, value] : counters->members())
                s.set(key, value);
        }
        s.set("transport", overSocket ? "socket" : "in-process");
        doc.set("informational", std::move(s));
    }
    {
        json::Value t = json::Value::object();
        t.set("warmupMs", warmupMs);
        t.set("driveMs", driveMs);
        t.set("requestsPerSec",
              driveMs > 0 ? double(driveTotal) * 1000.0 / driveMs : 0.0);
        t.set("p50Ms", percentile(0.50));
        t.set("p99Ms", percentile(0.99));
        t.set("maxMs", latenciesMs.empty() ? 0.0 : latenciesMs.back());
        doc.set("timing", std::move(t));
    }
    log << "mirage: serve-bench: " << (o.distinct + driveTotal)
        << " requests, " << driveHits << "/" << driveTotal
        << " drive hits, bitIdentical="
        << (bitIdentical ? "true" : "false") << "\n";
    return doc;
}

// --- chaos harness ----------------------------------------------------------

const char *const kDefaultChaosFaults =
    "seed=7,catalog.load=1/1,cache.save=1/1,fit.converge=1/3,"
    "serve.accept=1/5,serve.read=1/11,serve.write=1/13,queue.admit=1/7";

namespace {

/** The transpile request line for chaos request #request_id. */
std::string
chaosRequestLine(const ChaosOptions &o, int index, const std::string &qasm,
                 int request_id, bool lower, double deadline_ms)
{
    json::Value req = json::Value::object();
    req.set("id", request_id);
    req.set("op", "transpile");
    req.set("name", "chaos" + std::to_string(index));
    req.set("qasm", qasm);
    json::Value opts = json::Value::object();
    opts.set("topology", o.topology);
    opts.set("trials", o.trials);
    opts.set("swapTrials", o.swapTrials);
    opts.set("fwdBwd", o.fwdBwd);
    opts.set("seed", o.seed);
    opts.set("aggression", o.aggression);
    opts.set("lower", lower);
    if (deadline_ms > 0)
        opts.set("deadlineMs", deadline_ms);
    req.set("options", std::move(opts));
    return req.dump(0);
}

/**
 * SocketClient that treats a dropped connection (injected serve.read/
 * serve.write/serve.accept faults, or a real disconnect) as retryable:
 * reconnect, resend, count the drop. A server that stops answering for
 * good -- crash or deadlock, the two things chaos must never cause --
 * exhausts the attempt budget and throws ServeError.
 */
class ReconnectingClient
{
  public:
    explicit ReconnectingClient(std::string socket_path)
        : path_(std::move(socket_path))
    {
    }

    std::string call(const std::string &line)
    {
        for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
            try {
                if (!client_)
                    client_ = std::make_unique<SocketClient>(path_);
                return client_->roundTrip(line);
            } catch (const ServeError &) {
                client_.reset();
                ++drops_;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        }
        throw ServeError("chaos: no response after " +
                         std::to_string(kMaxAttempts) +
                         " attempts -- server crashed or deadlocked?");
    }

    /** Connection drops survived (reconnect-and-resend cycles). */
    uint64_t drops() const { return drops_; }

  private:
    static constexpr int kMaxAttempts = 200;
    std::string path_;
    std::unique_ptr<SocketClient> client_;
    uint64_t drops_ = 0;
};

} // namespace

json::Value
runChaos(const ChaosOptions &o, std::ostream &log)
{
    const bool external = !o.socketPath.empty();
    std::string workDir = o.workDir;
    if (workDir.empty())
        workDir = "/tmp/mirage-chaos-" + std::to_string(::getpid());
    ::mkdir(workDir.c_str(), 0755);

    std::vector<std::string> qasm(size_t(o.distinct));
    for (int k = 0; k < o.distinct; ++k)
        qasm[size_t(k)] =
            syntheticQasm(k, o.width, o.twoQubitGates, o.seed);

    // --- fault-free references -------------------------------------------
    // Every SUCCESSFUL chaos response must be byte-identical to these:
    // faults may fail a request, never corrupt one.
    fault::disarm();
    log << "mirage: chaos: computing " << o.distinct
        << " fault-free reference reports...\n";
    std::vector<std::string> reference(size_t(o.distinct));
    {
        EngineOptions ropts;
        ropts.threads = o.engineThreads;
        ropts.catalogPath = "none";
        Engine ref(ropts);
        for (int k = 0; k < o.distinct; ++k) {
            json::Value doc = json::parse(ref.handle(chaosRequestLine(
                o, k, qasm[size_t(k)], k, false, 0.0)));
            if (!doc["ok"].asBool())
                throw ServeError(
                    "chaos: fault-free reference request failed: " +
                    doc.dump(0));
            reference[size_t(k)] = doc["report"].dump(0);
        }
    }

    // --- the server under test -------------------------------------------
    const std::string spec =
        o.faultSpec.empty() ? kDefaultChaosFaults : o.faultSpec;
    struct DisarmGuard
    {
        bool active = false;
        ~DisarmGuard()
        {
            if (active)
                fault::disarm();
        }
    } disarmGuard;

    std::unique_ptr<Engine> engine;
    std::unique_ptr<SocketServer> server;
    std::thread serverThread;
    std::string socketPath = o.socketPath;
    bool catalogDegraded = false;
    if (!external) {
        // Give the engine a VALID catalog file so the catalog.load
        // fault fires on a real load: startup must degrade to a cold
        // library, not die.
        const std::string catalogPath = workDir + "/chaos-catalog.bin";
        decomp::EquivalenceLibrary empty(2, /*preseed=*/false);
        empty.saveCacheFile(catalogPath);

        fault::arm(spec);
        disarmGuard.active = true;

        EngineOptions eopts;
        eopts.threads = o.engineThreads;
        eopts.cacheEntries = std::max<size_t>(256, size_t(o.distinct) * 4);
        eopts.catalogPath = catalogPath;
        eopts.cacheDir = workDir; // shutdown save crosses cache.save
        eopts.maxQueue = o.maxQueue;
        engine = std::make_unique<Engine>(eopts);
        catalogDegraded =
            engine->catalogLoad().status !=
            decomp::EquivalenceLibrary::CacheLoadStatus::Ok;
        socketPath = workDir + "/chaos.sock";
        server = std::make_unique<SocketServer>(*engine, socketPath);
        server->start();
        serverThread = std::thread([&server] { server->run(); });
        log << "mirage: chaos: server up at " << socketPath
            << " under schedule '" << spec << "'\n";
    }

    // --- drive ------------------------------------------------------------
    static const std::set<std::string> documented = {
        "parse",      "request",  "qasm",  "input",    "toolarge",
        "overloaded", "deadline", "fault", "shutdown", "internal"};

    ReconnectingClient client(socketPath);
    uint64_t okCount = 0, errorCount = 0;
    uint64_t loweredRequests = 0, deadlineRequests = 0;
    std::map<std::string, uint64_t> errorsByCode;
    std::set<std::string> undocumented;
    bool bitIdentical = true;
    const auto driveStart = Clock::now();
    for (int i = 0; i < o.requests; ++i) {
        const int k = i % o.distinct;
        const bool lower =
            o.lowerEvery > 0 && i % o.lowerEvery == o.lowerEvery - 1;
        const bool withDeadline =
            !lower && o.deadlineEvery > 0 &&
            i % o.deadlineEvery == o.deadlineEvery - 1;
        loweredRequests += lower ? 1 : 0;
        deadlineRequests += withDeadline ? 1 : 0;
        json::Value doc = json::parse(client.call(chaosRequestLine(
            o, k, qasm[size_t(k)], i, lower,
            withDeadline ? o.deadlineMs : 0.0)));
        if (doc["ok"].asBool()) {
            ++okCount;
            if (!lower &&
                doc["report"].dump(0) != reference[size_t(k)]) {
                bitIdentical = false;
                log << "mirage: chaos: request " << i
                    << " DIVERGED from its fault-free reference\n";
            }
        } else {
            ++errorCount;
            const std::string code = doc["error"]["code"].asString();
            ++errorsByCode[code];
            if (!documented.count(code))
                undocumented.insert(code);
        }
    }
    const double driveMs = msSince(driveStart);

    // Server-side counters before teardown (stats answers under chaos
    // too; the reconnecting client rides out injected drops).
    json::Value stats = json::parse(client.call("{\"op\": \"stats\"}"));

    // --- teardown + injection census --------------------------------------
    uint64_t faultKinds = 0, totalInjected = 0;
    json::Value injectedByPoint = json::Value::object();
    if (!external) {
        server->stop();
        serverThread.join();
        server.reset();
        // Engine shutdown persists libraries -> crosses cache.save.
        engine.reset();
        for (const auto &ps : fault::stats()) {
            if (ps.injected == 0)
                continue;
            ++faultKinds;
            totalInjected += ps.injected;
            injectedByPoint.set(ps.point, ps.injected);
        }
        fault::disarm();
        disarmGuard.active = false;
    } else {
        // External server: the schedule and the catalog live in its
        // process; read the census and load status it publishes via
        // the stats op.
        if (const json::Value *cat = stats.find("catalog")) {
            if (const json::Value *st = cat->find("status"))
                catalogDegraded = st->asString() == "unreadable" ||
                                  st->asString() == "malformed";
        }
        const json::Value *f = stats.find("faults");
        const json::Value *inj = f ? f->find("injected") : nullptr;
        if (inj) {
            for (const auto &[point, count] : inj->members()) {
                const uint64_t c = uint64_t(count.asNumber());
                if (c == 0)
                    continue;
                ++faultKinds;
                totalInjected += c;
                injectedByPoint.set(point, count);
            }
        }
    }

    const bool pass = undocumented.empty() && bitIdentical &&
                      okCount > 0 &&
                      faultKinds >= uint64_t(o.requireFaultKinds);

    json::Value doc = json::Value::object();
    doc.set("schemaVersion", kProtocolVersion);
    doc.set("kind", kServeChaosKind);
    {
        json::Value p = json::Value::object();
        p.set("requests", o.requests);
        p.set("distinctCircuits", o.distinct);
        p.set("width", o.width);
        p.set("twoQubitGates", o.twoQubitGates);
        p.set("topology", o.topology);
        p.set("trials", o.trials);
        p.set("swapTrials", o.swapTrials);
        p.set("fwdBwd", o.fwdBwd);
        p.set("seed", o.seed);
        p.set("aggression", o.aggression);
        p.set("lowerEvery", o.lowerEvery);
        p.set("deadlineEvery", o.deadlineEvery);
        p.set("deadlineMs", o.deadlineMs);
        p.set("requireFaultKinds", o.requireFaultKinds);
        p.set("faults", external ? std::string("<server-side>") : spec);
        p.set("transport", external ? "socket" : "in-process");
        doc.set("parameters", std::move(p));
    }
    {
        json::Value r = json::Value::object();
        r.set("okResponses", okCount);
        r.set("errorResponses", errorCount);
        r.set("loweredRequests", loweredRequests);
        r.set("deadlineRequests", deadlineRequests);
        r.set("transportDrops", client.drops());
        json::Value codes = json::Value::object();
        for (const auto &[code, count] : errorsByCode)
            codes.set(code, count);
        r.set("errorsByCode", std::move(codes));
        json::Value undoc = json::Value::array();
        for (const auto &code : undocumented)
            undoc.push(code);
        r.set("undocumentedCodes", std::move(undoc));
        r.set("bitIdentical", bitIdentical);
        r.set("catalogDegraded", catalogDegraded);
        r.set("faultKindsInjected", faultKinds);
        r.set("totalInjected", totalInjected);
        r.set("injectedByPoint", std::move(injectedByPoint));
        doc.set("results", std::move(r));
    }
    {
        json::Value s = json::Value::object();
        if (const json::Value *counters = stats.find("counters")) {
            for (const auto &[key, value] : counters->members())
                s.set(key, value);
        }
        s.set("driveMs", driveMs);
        doc.set("informational", std::move(s));
    }
    doc.set("pass", pass);

    log << "mirage: chaos: " << o.requests << " requests, " << okCount
        << " ok / " << errorCount << " errors, " << client.drops()
        << " drops survived, " << faultKinds
        << " fault kinds injected (total " << totalInjected
        << "), bitIdentical=" << (bitIdentical ? "true" : "false")
        << " -> " << (pass ? "PASS" : "FAIL") << "\n";
    return doc;
}

bool
checkServeArtifact(const json::Value &current, const json::Value &baseline,
                   std::string *report)
{
    auto fail = [report](const std::string &message) {
        if (report) {
            *report += message;
            *report += "\n";
        }
        return false;
    };

    bool ok = true;
    for (const char *section : {"parameters", "counters"}) {
        const json::Value *cur = current.find(section);
        const json::Value *base = baseline.find(section);
        if (!cur || !base) {
            ok = fail(std::string("serve-bench check: missing '") +
                      section + "' section");
            continue;
        }
        // Exact key-by-key comparison in both directions: a missing,
        // added, or changed key is a schema/behavior drift.
        for (const auto &[key, value] : base->members()) {
            const json::Value *now = cur->find(key);
            if (!now) {
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " missing from current artifact");
                continue;
            }
            if (now->dump(0) != value.dump(0))
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " = " + now->dump(0) +
                          " (baseline " + value.dump(0) + ")");
        }
        for (const auto &[key, value] : cur->members()) {
            (void)value;
            if (!base->find(key))
                ok = fail(std::string("serve-bench check: ") + section +
                          "." + key + " not present in baseline");
        }
    }
    return ok;
}

// --- SocketClient -----------------------------------------------------------

SocketClient::SocketClient(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        throw ServeError("socket path too long: '" + socket_path + "'");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        throw ServeError(std::string("socket(): ") + std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd_);
        fd_ = -1;
        throw ServeError("connect('" + socket_path +
                         "'): " + std::strerror(e));
    }
}

SocketClient::~SocketClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
SocketClient::roundTrip(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServeError(std::string("send(): ") +
                             std::strerror(errno));
        }
        off += size_t(n);
    }
    for (;;) {
        size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            std::string response = buffer_.substr(0, pos);
            buffer_.erase(0, pos + 1);
            return response;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            throw ServeError("server closed the connection mid-response");
        buffer_.append(chunk, size_t(n));
    }
}

} // namespace mirage::serve
