/**
 * @file
 * The persistent transpilation service behind `mirage serve`.
 *
 * Engine is the transport-independent core: it owns ONE warm trial-grid
 * thread pool, ONE persistent equivalence library per basis root, a
 * topology cache, and a thread-safe LRU memo of full transpile results
 * keyed by (circuit fingerprint, topology, options, format). handle()
 * is safe to call from any number of connection threads concurrently;
 * misses are funneled through a single dispatcher that batches
 * compatible concurrent requests into one transpileMany() call, and
 * identical in-flight requests are coalesced (single-flight) so a
 * thundering herd computes each result once.
 *
 * Transports: SocketServer accepts newline-delimited JSON over a Unix
 * domain socket (one thread per connection); serveStdio() runs the same
 * protocol over a stream pair for tests and piping.
 */

#ifndef MIRAGE_SERVE_SERVER_HH
#define MIRAGE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/exec.hh"
#include "common/lru_cache.hh"
#include "decomp/equivalence.hh"
#include "serve/protocol.hh"

namespace mirage::serve {

/** Transport/bind failure (socket setup, stale path, ...). */
class ServeError : public std::runtime_error
{
  public:
    explicit ServeError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** Engine construction knobs (the `mirage serve` flags). */
struct EngineOptions
{
    /** Trial-grid worker threads (0 = all cores). */
    int threads = 0;
    /** Result memo capacity, in full transpile reports. */
    size_t cacheEntries = 256;
    /** Max compatible requests folded into one transpileMany call. */
    int maxBatch = 32;
    /**
     * Equivalence-library persistence directory: each root's library is
     * loaded on first use and saved on engine shutdown, so a restarted
     * server lowers warm. Empty = in-memory only.
     */
    std::string cacheDir;
    /**
     * Committed fit catalog warm-starting the root-2 library at
     * construction: "" auto-discovers ($MIRAGE_FIT_CATALOG, then
     * ./FIT_CATALOG.bin), "none" disables, else an explicit path.
     * The load outcome (including the unreadable-vs-malformed split)
     * is reported via Engine::catalogLoad() so the transport can log
     * which failure happened at startup.
     */
    std::string catalogPath;
    /**
     * Admission-control bound on the dispatcher queue (0 = unbounded).
     * A request arriving with this many jobs already queued is shed
     * with an "overloaded" error carrying a retryAfterMs estimate,
     * instead of growing the backlog without bound.
     */
    int maxQueue = 256;
    /**
     * Server-wide compute budget per request in milliseconds (0 =
     * none). A request's own deadlineMs is honored up to this cap; the
     * clock starts at admission, so queue wait counts against it.
     */
    double deadlineMs = 0;
    /** Reject circuits wider than this with "toolarge" (0 = no cap). */
    int maxQubits = 0;
    /** Reject circuits with more gates than this (0 = no cap). */
    int maxGates = 0;
};

/**
 * Monotonic service counters. Everything except `coalesced`,
 * `batches`, and `maxBatchSize` is deterministic for a deterministic
 * request sequence (coalescing/batch composition depend on arrival
 * timing; the rest do not).
 */
struct EngineCounters
{
    uint64_t requests = 0;        ///< lines handled (any op)
    uint64_t transpiles = 0;      ///< circuits actually transpiled
    uint64_t cacheHits = 0;       ///< memo hits
    uint64_t cacheMisses = 0;     ///< memo misses (owner of the compute)
    uint64_t coalesced = 0;       ///< waited on an identical in-flight miss
    uint64_t batches = 0;         ///< transpileMany groups dispatched
    uint64_t batchedRequests = 0; ///< total circuits across all groups
    uint64_t maxBatchSize = 0;    ///< largest group so far
    uint64_t errors = 0;          ///< error responses produced
    uint64_t shed = 0;            ///< requests rejected "overloaded"
    uint64_t deadlines = 0;       ///< requests that died of "deadline"
    uint64_t tooLarge = 0;        ///< requests rejected by size caps
    uint64_t dropped = 0;         ///< responses lost to dead clients
};

/** The transport-independent serving core (see file comment). */
class Engine
{
  public:
    explicit Engine(EngineOptions opts = {});
    /** Drains in-flight work, then persists libraries (cacheDir set). */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Handle one request line; always returns a single-line JSON
     * response and never throws (every failure becomes a structured
     * error response). Thread-safe; blocks until the result is ready.
     */
    std::string handle(const std::string &line);

    /** handle() on an already parsed document (in-process callers). */
    json::Value handleValue(const json::Value &request);

    /**
     * Stop accepting transpile work: subsequent transpile requests get
     * a "shutdown" error response while stats/ping keep answering.
     * Requests already accepted still complete (the destructor blocks
     * until the queue is drained). Idempotent.
     */
    void beginShutdown();
    bool shuttingDown() const { return shuttingDown_.load(); }

    /** Snapshot of the service counters. */
    EngineCounters counters() const;

    /**
     * Record a response that could not be delivered (client hung up
     * mid-write, or an injected serve.write fault). Called by the
     * transports; the work itself stays cached, so a reconnecting
     * client's retry is a memo hit.
     */
    void countDroppedResponse();

    int poolThreads() const { return pool_.numThreads(); }

    /** Resolved catalog path ("" when disabled or not found). */
    const std::string &catalogPath() const { return catalogPath_; }
    /** Outcome of the startup catalog load (Ok when no catalog). */
    const decomp::EquivalenceLibrary::CacheLoadResult &
    catalogLoad() const
    {
        return catalogLoad_;
    }

  private:
    /** One memoized result: the report (json) or circuit (qasm). */
    struct CachedEntry
    {
        std::string format; ///< "json" or "qasm"
        json::Value report; ///< format == "json"
        std::string qasm;   ///< format == "qasm"
    };
    using EntryPtr = std::shared_ptr<const CachedEntry>;

    /**
     * Value-typed failure relayed across threads. The promises below
     * must NOT carry an exception_ptr: rethrowing shares one exception
     * object (and its refcounted message buffer) between the
     * fulfilling and the waiting thread, and the final release races
     * the waiter's what() read as far as ThreadSanitizer can tell
     * (libstdc++'s internal exception refcount is uninstrumented).
     * Shipping deep-copied strings and throwing a FRESH exception on
     * the waiting thread keeps every exception object thread-local.
     */
    struct RelayedError
    {
        enum class Kind { None, Request, Deadline, Fault, Internal };
        Kind kind = Kind::None;
        std::string code;    ///< RequestError code / fault point
        std::string message;
        /** Describe the in-flight exception (call inside a catch). */
        static RelayedError capture();
        /** Throw the equivalent fresh exception; no-op when None. */
        void raise() const;
    };

    /** Dispatcher -> waiter envelope (error.kind == None on success). */
    struct JobOutcome
    {
        mirage_pass::TranspileResult result;
        RelayedError error;
    };

    /** Owner -> coalesced-waiter envelope for one in-flight key. */
    struct InflightOutcome
    {
        EntryPtr entry;
        RelayedError error;
    };

    /** Single-flight rendezvous for one in-flight cache key. */
    struct Inflight
    {
        std::promise<InflightOutcome> promise;
        std::shared_future<InflightOutcome> future;
    };

    /** One queued transpile awaiting the dispatcher. */
    struct Job
    {
        circuit::Circuit circuit;
        std::shared_ptr<const topology::CouplingMap> topology;
        mirage_pass::TranspileOptions options;
        /** Requests sharing this key are transpileMany-compatible. */
        std::string groupKey;
        std::promise<JobOutcome> promise;
    };

    json::Value handleTranspile(const json::Value &doc,
                                const json::Value &id);
    json::Value statsResponse(const json::Value &id) const;

    /** Resolve+cache a topology spec (throws RequestError on bad spec). */
    std::shared_ptr<const topology::CouplingMap>
    resolveTopology(const std::string &spec, int min_qubits);

    /** Per-root persistent library (created on first use). */
    decomp::EquivalenceLibrary *libraryFor(int root_degree);

    /** Enqueue a job for the dispatcher; throws RequestError("shutdown")
     * when the engine is draining. */
    std::future<JobOutcome> enqueueJob(std::unique_ptr<Job> job);

    void dispatcherLoop();

    EngineOptions opts_;
    exec::ThreadPool pool_;

    mutable std::mutex libMutex_;
    std::map<int, std::unique_ptr<decomp::EquivalenceLibrary>> libraries_;
    std::string catalogPath_; ///< resolved at construction
    decomp::EquivalenceLibrary::CacheLoadResult catalogLoad_;

    mutable std::mutex topoMutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const topology::CouplingMap>>
        topologies_;

    mutable std::mutex cacheMutex_;
    LruCache<std::string, EntryPtr> cache_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> pending_;

    std::mutex queueMutex_;
    std::condition_variable queueReady_;
    std::deque<std::unique_ptr<Job>> queue_;
    bool stopping_ = false; ///< dispatcher exit flag (destructor only)
    std::atomic<bool> shuttingDown_{false};

    mutable std::mutex countersMutex_;
    EngineCounters counters_;
    /** EWMA of per-job compute time, feeding retryAfterMs estimates.
     * Guarded by countersMutex_. */
    double avgJobMs_ = 50.0;
    /** Uniquifier keeping deadlined jobs out of shared batches. */
    std::atomic<uint64_t> soloSeq_{0};

    std::thread dispatcher_;
};

/**
 * Serve newline-delimited requests from `in` to `out` until EOF or a
 * shutdown request. Sequential (one request at a time); used by
 * `mirage serve --stdio` and tests. Returns the number of requests.
 */
uint64_t serveStdio(Engine &engine, std::istream &in, std::ostream &out);

/** Unix-domain-socket front end (one thread per connection). */
class SocketServer
{
  public:
    /** Does not bind yet; start() does. */
    SocketServer(Engine &engine, std::string socket_path);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind + listen on the socket path. A stale socket file (no server
     * behind it) is replaced; a live one raises ServeError.
     */
    void start();

    /**
     * Accept/serve until stop(), engine shutdown, or a shutdown
     * request. Joins every connection thread before returning.
     */
    void run();

    /** Ask run() to return (safe from other threads/signal context). */
    void stop() { stopRequested_.store(true); }

    const std::string &path() const { return path_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void connectionLoop(Connection *conn);

    Engine &engine_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stopRequested_{false};
    std::mutex connMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

} // namespace mirage::serve

#endif // MIRAGE_SERVE_SERVER_HH
