/**
 * @file
 * Serve protocol implementation: request parsing/validation, the
 * circuit/options fingerprints keying the result memo cache, and the
 * transpile report builder shared with the one-shot CLI path.
 */

#include "serve/protocol.hh"

#include <cstring>

namespace mirage::serve {

namespace {

/** FNV-1a over a byte range. */
uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

uint64_t
fnvInt(uint64_t h, int64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

/** Hash the exact bit pattern of a double (no -0.0/0.0 folding: the
 * memo must never serve a result for a circuit it was not computed
 * from, so "bit-identical in, bit-identical out" is the contract). */
uint64_t
fnvDouble(uint64_t h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return fnv1a(h, &bits, sizeof bits);
}

uint64_t
fnvComplex(uint64_t h, const linalg::Complex &c)
{
    h = fnvDouble(h, c.real());
    return fnvDouble(h, c.imag());
}

} // namespace

mirage_pass::Flow
parseFlow(const std::string &name)
{
    if (name == "sabre")
        return mirage_pass::Flow::SabreBaseline;
    if (name == "mirage-swaps")
        return mirage_pass::Flow::MirageSwaps;
    if (name == "mirage" || name == "mirage-depth")
        return mirage_pass::Flow::MirageDepth;
    throw RequestError("request",
                       "unknown flow '" + name +
                           "' (expected sabre, mirage-swaps, or mirage)");
}

const char *
flowName(mirage_pass::Flow flow)
{
    switch (flow) {
      case mirage_pass::Flow::SabreBaseline: return "sabre";
      case mirage_pass::Flow::MirageSwaps: return "mirage-swaps";
      case mirage_pass::Flow::MirageDepth: return "mirage";
    }
    return "?";
}

TranspileRequest
parseTranspileRequest(const json::Value &doc)
{
    TranspileRequest req;
    if (!doc.isObject())
        throw RequestError("request", "request must be a JSON object");
    if (const json::Value *id = doc.find("id"))
        req.id = *id;

    auto stringField = [](const json::Value &v, const char *key) {
        if (!v.isString())
            throw RequestError("request", std::string("field '") + key +
                                              "' must be a string");
        return v.asString();
    };

    bool sawQasm = false;
    for (const auto &[key, value] : doc.members()) {
        if (key == "id" || key == "op")
            continue;
        if (key == "qasm") {
            req.qasm = stringField(value, "qasm");
            sawQasm = true;
        } else if (key == "name") {
            req.name = stringField(value, "name");
        } else if (key == "options") {
            if (!value.isObject())
                throw RequestError("request",
                                   "field 'options' must be an object");
        } else {
            throw RequestError("request", "unknown request field '" + key +
                                              "'");
        }
    }
    if (!sawQasm)
        throw RequestError("request",
                           "transpile request requires a 'qasm' field");

    const json::Value *options = doc.find("options");
    if (!options)
        return req;

    auto intField = [](const json::Value &v, const std::string &key) {
        if (!v.isNumber())
            throw RequestError("request", "option '" + key +
                                              "' must be a number");
        double d = v.asNumber();
        auto i = int64_t(d);
        if (double(i) != d)
            throw RequestError("request", "option '" + key +
                                              "' must be an integer");
        return i;
    };
    auto boolField = [](const json::Value &v, const std::string &key) {
        if (!v.isBool())
            throw RequestError("request", "option '" + key +
                                              "' must be a boolean");
        return v.asBool();
    };
    auto requirePositive = [](int64_t v, const std::string &key) {
        if (v < 1)
            throw RequestError("request", "option '" + key +
                                              "' must be >= 1");
        return int(v);
    };

    mirage_pass::TranspileOptions &o = req.options;
    for (const auto &[key, value] : options->members()) {
        if (key == "topology") {
            if (!value.isString())
                throw RequestError("request",
                                   "option 'topology' must be a string");
            req.topology = value.asString();
        } else if (key == "format") {
            if (!value.isString())
                throw RequestError("request",
                                   "option 'format' must be a string");
            req.format = value.asString();
            if (req.format != "json" && req.format != "qasm")
                throw RequestError("request", "unknown format '" +
                                                  req.format +
                                                  "' (expected json or "
                                                  "qasm)");
        } else if (key == "flow") {
            if (!value.isString())
                throw RequestError("request",
                                   "option 'flow' must be a string");
            o.flow = parseFlow(value.asString());
        } else if (key == "trials") {
            o.layoutTrials = requirePositive(intField(value, key), key);
        } else if (key == "swapTrials") {
            o.swapTrials = requirePositive(intField(value, key), key);
        } else if (key == "fwdBwd") {
            int64_t v = intField(value, key);
            if (v < 0)
                throw RequestError("request",
                                   "option 'fwdBwd' must be >= 0");
            o.forwardBackwardPasses = int(v);
        } else if (key == "seed") {
            int64_t v = intField(value, key);
            if (v < 0)
                throw RequestError("request",
                                   "option 'seed' must be >= 0");
            o.seed = uint64_t(v);
        } else if (key == "aggression") {
            int64_t v = intField(value, key);
            if (v < -1 || v > 3)
                throw RequestError("request",
                                   "option 'aggression' must be between "
                                   "-1 (mixed) and 3");
            o.fixedAggression = int(v);
        } else if (key == "root") {
            int64_t v = intField(value, key);
            if (v < 2)
                throw RequestError("request",
                                   "option 'root' must be >= 2");
            o.rootDegree = int(v);
        } else if (key == "lower") {
            o.lowerToBasis = boolField(value, key);
        } else if (key == "vf2") {
            o.tryVf2 = boolField(value, key);
        } else if (key == "deadlineMs") {
            if (!value.isNumber())
                throw RequestError("request",
                                   "option 'deadlineMs' must be a number");
            double v = value.asNumber();
            if (v < 1)
                throw RequestError("request",
                                   "option 'deadlineMs' must be >= 1");
            req.deadlineMs = v;
        } else {
            throw RequestError("request",
                               "unknown option '" + key + "'");
        }
    }
    return req;
}

uint64_t
circuitFingerprint(const circuit::Circuit &c)
{
    uint64_t h = 0xCBF29CE484222325ULL; // FNV offset basis
    h = fnvInt(h, c.numQubits());
    h = fnvInt(h, int64_t(c.size()));
    for (const circuit::Gate &g : c.gates()) {
        h = fnvInt(h, int64_t(g.kind));
        h = fnvInt(h, g.numQubits());
        for (int q : g.qubits)
            h = fnvInt(h, q);
        h = fnvInt(h, int64_t(g.params.size()));
        for (double p : g.params)
            h = fnvDouble(h, p);
        h = fnvInt(h, g.mirrored ? 1 : 0);
        if (g.mat2) {
            h = fnvInt(h, 2);
            for (const auto &e : g.mat2->a)
                h = fnvComplex(h, e);
        }
        if (g.mat4) {
            h = fnvInt(h, 4);
            for (const auto &e : g.mat4->a)
                h = fnvComplex(h, e);
        }
    }
    return h;
}

std::string
resultCacheKey(uint64_t circuit_fingerprint,
               const std::string &topology_name,
               const mirage_pass::TranspileOptions &o,
               const std::string &format)
{
    std::string key;
    key.reserve(96);
    key += std::to_string(circuit_fingerprint);
    key += "|topo=";
    key += topology_name;
    key += "|flow=";
    key += flowName(o.flow);
    key += "|root=" + std::to_string(o.rootDegree);
    key += "|trials=" + std::to_string(o.layoutTrials);
    key += "|swap=" + std::to_string(o.swapTrials);
    key += "|fb=" + std::to_string(o.forwardBackwardPasses);
    key += "|seed=" + std::to_string(o.seed);
    key += "|agg=" + std::to_string(o.fixedAggression);
    key += "|vf2=" + std::to_string(o.tryVf2 ? 1 : 0);
    key += "|lower=" + std::to_string(o.lowerToBasis ? 1 : 0);
    key += "|fmt=" + format;
    return key;
}

namespace {

json::Value
metricsJson(const mirage_pass::CircuitMetrics &m)
{
    json::Value v = json::Value::object();
    v.set("depth", m.depth);
    v.set("totalCost", m.totalCost);
    v.set("depthPulses", m.depthPulses);
    v.set("totalPulses", m.totalPulses);
    v.set("swapGates", m.swapGates);
    v.set("twoQubitGates", m.twoQubitGates);
    return v;
}

} // namespace

json::Value
transpileReportJson(const std::string &file_label,
                    const circuit::Circuit &input,
                    const topology::CouplingMap &topo,
                    const mirage_pass::TranspileOptions &opts,
                    const mirage_pass::TranspileResult &res)
{
    json::Value doc = json::Value::object();
    doc.set("schemaVersion", kProtocolVersion);
    doc.set("kind", "mirage-transpile");
    {
        json::Value in = json::Value::object();
        in.set("file", file_label);
        in.set("qubits", input.numQubits());
        in.set("gates", int(input.size()));
        in.set("twoQubitGates", input.twoQubitGateCount());
        doc.set("input", std::move(in));
    }
    {
        json::Value t = json::Value::object();
        t.set("name", topo.name());
        t.set("qubits", topo.numQubits());
        t.set("edges", int(topo.edges().size()));
        doc.set("topology", std::move(t));
    }
    {
        json::Value o = json::Value::object();
        o.set("flow", flowName(opts.flow));
        o.set("rootDegree", opts.rootDegree);
        o.set("layoutTrials", opts.layoutTrials);
        o.set("swapTrials", opts.swapTrials);
        o.set("forwardBackwardPasses", opts.forwardBackwardPasses);
        o.set("threads", opts.threads);
        o.set("seed", opts.seed);
        o.set("fixedAggression", opts.fixedAggression);
        o.set("tryVf2", opts.tryVf2);
        o.set("lowerToBasis", opts.lowerToBasis);
        doc.set("options", std::move(o));
    }
    {
        json::Value r = json::Value::object();
        r.set("metrics", metricsJson(res.metrics));
        r.set("swapsAdded", res.swapsAdded);
        r.set("mirrorsAccepted", res.mirrorsAccepted);
        r.set("mirrorCandidates", res.mirrorCandidates);
        r.set("mirrorAcceptRate", res.mirrorAcceptRate());
        r.set("usedVf2", res.usedVf2);
        r.set("routedGates", int(res.routed.size()));
        // Hot-path work counters: deterministic (thread-invariant), so
        // the report stays byte-identical across reruns and thread
        // counts. Wall time is deliberately NOT emitted here.
        json::Value c = json::Value::object();
        c.set("stallSteps", res.routingCounters.stallSteps);
        c.set("swapCandidates", res.routingCounters.swapCandidates);
        c.set("heuristicEvals", res.routingCounters.heuristicEvals);
        c.set("mirrorOutlooks", res.routingCounters.mirrorOutlooks);
        c.set("extSetBuilds", res.routingCounters.extSetBuilds);
        c.set("extSetReuses", res.routingCounters.extSetReuses);
        r.set("routingCounters", std::move(c));
        doc.set("result", std::move(r));
    }
    if (res.loweredToBasis) {
        json::Value l = json::Value::object();
        l.set("metrics", metricsJson(res.loweredMetrics));
        l.set("gates", int(res.lowered.size()));
        l.set("blocksTranslated", res.translateStats.blocksTranslated);
        l.set("cacheHits", res.translateStats.cacheHits);
        l.set("newFits", res.translateStats.newFits);
        l.set("worstInfidelity", res.translateStats.worstInfidelity);
        l.set("pulses", res.translateStats.totalPulses);
        doc.set("lowered", std::move(l));
    }
    return doc;
}

json::Value
okEnvelope(const json::Value &id)
{
    json::Value v = json::Value::object();
    v.set("id", id);
    v.set("ok", true);
    return v;
}

json::Value
errorResponse(const json::Value &id, const std::string &code,
              const std::string &message)
{
    json::Value v = okEnvelope(id);
    v.set("ok", false);
    json::Value e = json::Value::object();
    e.set("code", code);
    e.set("message", message);
    v.set("error", std::move(e));
    return v;
}

json::Value
errorResponse(const json::Value &id, const std::string &code,
              const std::string &message, double retry_after_ms)
{
    json::Value v = okEnvelope(id);
    v.set("ok", false);
    json::Value e = json::Value::object();
    e.set("code", code);
    e.set("message", message);
    e.set("retryAfterMs", retry_after_ms);
    v.set("error", std::move(e));
    return v;
}

} // namespace mirage::serve
