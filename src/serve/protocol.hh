/**
 * @file
 * Request/response schema of the `mirage serve` transpilation service.
 *
 * The wire protocol is deliberately minimal: one JSON object per line
 * in each direction (newline-delimited, over a Unix socket or stdio).
 * A request carries an `op` ("transpile", "stats", "ping", "shutdown";
 * default "transpile"), an optional client-chosen `id` that is echoed
 * verbatim in the response, and for transpile the OpenQASM 2 `qasm`
 * text plus an `options` object mirroring the `mirage transpile`
 * flags. Every response is a single JSON object with `ok` true/false;
 * failures carry a structured `error` {code, message} instead of
 * killing the connection or the server.
 *
 * This header also hosts the pieces the one-shot CLI path shares with
 * the server -- flow-name parsing and the transpile report builder --
 * so a served response is bit-identical to `mirage transpile` output
 * by construction, not by parallel evolution.
 */

#ifndef MIRAGE_SERVE_PROTOCOL_HH
#define MIRAGE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "circuit/circuit.hh"
#include "common/json.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

namespace mirage::serve {

/** Version stamped into transpile reports and bench artifacts. */
inline constexpr int kProtocolVersion = 1;

/**
 * Schema violation in an otherwise well-formed JSON request: unknown
 * op, missing/ill-typed field, or an option value outside its valid
 * range. Maps to a structured {code, message} error response.
 */
class RequestError : public std::runtime_error
{
  public:
    RequestError(std::string code, const std::string &message)
        : std::runtime_error(message), code_(std::move(code))
    {
    }

    /** Stable machine-readable discriminator ("request", "qasm", ...). */
    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/**
 * Load-shed rejection ("overloaded"): the admission queue is full. The
 * response carries `retryAfterMs`, the engine's estimate of when the
 * backlog will have drained, so well-behaved clients back off instead
 * of hammering a saturated server.
 */
class OverloadedError : public RequestError
{
  public:
    explicit OverloadedError(const std::string &message,
                             double retry_after_ms)
        : RequestError("overloaded", message),
          retryAfterMs_(retry_after_ms)
    {
    }

    double retryAfterMs() const { return retryAfterMs_; }

  private:
    double retryAfterMs_;
};

/** One parsed transpile request (transport- and cache-agnostic). */
struct TranspileRequest
{
    /** Echoed verbatim in the response; null when the client sent none. */
    json::Value id;
    /** Label used as the report's input.file (default "<request>"). */
    std::string name = "<request>";
    /** OpenQASM 2 source of the circuit to transpile. */
    std::string qasm;
    /** Device spec (topology::CouplingMap::parseSpec forms). */
    std::string topology = "auto";
    /** "json" (full report) or "qasm" (routed/lowered circuit). */
    std::string format = "json";
    /**
     * Pipeline options. threads/pool/equivalenceLibrary are engine-wide
     * and not client-settable; requests only choose the deterministic
     * knobs (flow, trials, seed, aggression, root, lower, vf2).
     */
    mirage_pass::TranspileOptions options;
    /**
     * Per-request compute budget in milliseconds (0 = none). The engine
     * caps it at its own --deadline-ms when one is set. NOT part of the
     * cache key: a deadline never changes a completed result, only
     * whether one is produced.
     */
    double deadlineMs = 0;
};

/**
 * Parse the `options`/`qasm`/`name`/`topology`/`format` fields of a
 * transpile request document. Throws RequestError on unknown keys,
 * ill-typed values, or out-of-range numerics (same bounds the CLI
 * enforces: trials/swap-trials >= 1, fwd-bwd >= 0, root >= 2,
 * aggression in [-1, 3]).
 */
TranspileRequest parseTranspileRequest(const json::Value &doc);

/** Flow name <-> enum (shared with the CLI's --flow flag). */
mirage_pass::Flow parseFlow(const std::string &name); ///< throws RequestError
const char *flowName(mirage_pass::Flow flow);

/**
 * 64-bit structural fingerprint of a circuit: FNV-1a over qubit count
 * and every gate's kind, operands, exact parameter bits, and explicit
 * matrices. Collisions are as unlikely as a 64-bit hash allows; the
 * memo cache uses this (not gate-list equality) as its key component.
 */
uint64_t circuitFingerprint(const circuit::Circuit &circuit);

/**
 * Canonical cache-key string for (circuit, topology, options, format).
 * Uses the RESOLVED topology name (so "auto" keys by the grid it chose)
 * and excludes `threads`/`pool` -- output is bit-identical across
 * thread counts by the trial engine's guarantee, so they must not
 * fragment the cache.
 */
std::string resultCacheKey(uint64_t circuit_fingerprint,
                           const std::string &topology_name,
                           const mirage_pass::TranspileOptions &options,
                           const std::string &format);

/**
 * The `mirage transpile` JSON report (schemaVersion / kind /
 * input / topology / options / result [/ lowered]). Shared by the
 * one-shot CLI path and the serve engine so the two are bit-identical.
 */
json::Value transpileReportJson(const std::string &file_label,
                                const circuit::Circuit &input,
                                const topology::CouplingMap &topology,
                                const mirage_pass::TranspileOptions &options,
                                const mirage_pass::TranspileResult &result);

/** {"id": <id>, "ok": true} -- the start of every success response. */
json::Value okEnvelope(const json::Value &id);

/**
 * {"id": <id>, "ok": false, "error": {"code": ..., "message": ...}}.
 * `code` is one of: "parse" (malformed JSON), "request" (schema or
 * option-range violation), "qasm" (circuit text failed to parse),
 * "input" (circuit/topology mismatch), "toolarge" (circuit exceeds the
 * server's --max-qubits/--max-gates caps), "overloaded" (admission
 * queue full; the error object carries `retryAfterMs`), "deadline"
 * (request budget exhausted mid-pipeline), "fault" (an injected chaos
 * fault fired), "shutdown" (server draining), "internal" (unexpected
 * exception). docs/ARCHITECTURE.md "Failure model" is the normative
 * list; tests/test_chaos.cc pins that no other code can escape.
 */
json::Value errorResponse(const json::Value &id, const std::string &code,
                          const std::string &message);

/** errorResponse plus an `error.retryAfterMs` hint (for "overloaded"). */
json::Value errorResponse(const json::Value &id, const std::string &code,
                          const std::string &message, double retry_after_ms);

} // namespace mirage::serve

#endif // MIRAGE_SERVE_PROTOCOL_HH
