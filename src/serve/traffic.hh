/**
 * @file
 * Synthetic traffic generator + throughput/latency artifact for the
 * serve engine (`mirage serve-bench`).
 *
 * The workload is a two-phase deterministic pattern chosen so the
 * interesting counters are exact and machine-invariant, which lets CI
 * gate them like BENCH_fig13.json:
 *
 *   1. warmup -- the D distinct synthetic circuits are requested once
 *      each, sequentially: exactly D memo misses and D transpiles, and
 *      the summed deterministic routing counters of those transpiles.
 *   2. drive  -- N client threads each fire R requests round-robin
 *      over the same D circuits: exactly N*R memo hits, every response
 *      byte-identical to its warmup report (`bitIdentical`).
 *
 * Requests/sec and p50/p99/max latency are measured over the drive
 * phase and recorded as informational timing (never gated). The
 * generator can drive an in-process Engine (default; what `--check`
 * gates) or a live `mirage serve` instance over its Unix socket.
 */

#ifndef MIRAGE_SERVE_TRAFFIC_HH
#define MIRAGE_SERVE_TRAFFIC_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/json.hh"

namespace mirage::serve {

/** The artifact's `kind` tag. */
inline constexpr const char *kServeBenchKind = "mirage-serve-bench";

/** Workload + engine knobs for one traffic run. */
struct TrafficOptions
{
    int clients = 8;           ///< concurrent drive-phase clients
    int requestsPerClient = 6; ///< drive requests per client
    int distinct = 4;          ///< distinct synthetic circuits
    int width = 5;             ///< qubits per synthetic circuit
    int twoQubitGates = 18;    ///< entangling gates per circuit
    std::string topology = "grid3x3";
    int trials = 4;
    int swapTrials = 2;
    int fwdBwd = 2;
    uint64_t seed = 20240229;
    int aggression = -1;
    bool lower = false;
    /** In-process engine pool size (0 = all cores). */
    int engineThreads = 0;
    /** Non-empty: drive a live server at this socket instead of an
     * in-process engine (timings include the transport). */
    std::string socketPath;
};

/**
 * Deterministic synthetic request circuit #index: seeded layered
 * random 1Q rotations + CNOTs (pure function of index/width/gates/
 * seed, identical on every platform).
 */
std::string syntheticQasm(int index, int width, int two_qubit_gates,
                          uint64_t seed);

/**
 * Run the two-phase workload; progress goes to `log`. Returns the
 * serve-bench artifact: {schemaVersion, kind, parameters, counters
 * (exact -- see file comment), server (engine-side snapshot),
 * informational, timing}. Throws ServeError when a socket target is
 * unreachable.
 */
json::Value runTraffic(const TrafficOptions &opts, std::ostream &log);

/**
 * Regression gate for `mirage serve-bench --check`: `parameters` and
 * `counters` must match the baseline EXACTLY (they are deterministic;
 * any drift is a behavior change, not noise). Timing and the
 * `informational` block are never compared. Returns false and
 * explains into *report on mismatch.
 */
bool checkServeArtifact(const json::Value &current,
                        const json::Value &baseline, std::string *report);

/** The chaos artifact's `kind` tag. */
inline constexpr const char *kServeChaosKind = "mirage-serve-chaos";

/**
 * Default seeded fault schedule for `serve-bench --chaos`: every named
 * injection point in common/fault.hh fires (catalog.load and
 * cache.save always; fit.converge at 1/3 so some lowers succeed and
 * the library save path runs; the transport points at low rates).
 */
extern const char *const kDefaultChaosFaults;

/** Workload knobs for one chaos run (`mirage serve-bench --chaos`). */
struct ChaosOptions
{
    int requests = 200;    ///< requests driven through the server
    int distinct = 6;      ///< distinct synthetic circuits
    int width = 4;         ///< qubits per circuit
    int twoQubitGates = 8; ///< entangling gates per circuit
    std::string topology = "grid2x2";
    int trials = 2;
    int swapTrials = 1;
    int fwdBwd = 1;
    uint64_t seed = 20240229;
    int aggression = -1;
    /** Every K-th request asks for lowering (0 = never). Lowering
     * crosses fit.converge, the most invasive injection point. */
    int lowerEvery = 5;
    /** Every K-th non-lowered request carries deadlineMs (0 = never). */
    int deadlineEvery = 7;
    double deadlineMs = 1.0;
    /** Injected fault kinds required for pass (the acceptance floor). */
    int requireFaultKinds = 6;
    /** Fault schedule; empty = kDefaultChaosFaults. Ignored over an
     * external socket (the server process owns its schedule). */
    std::string faultSpec;
    /** Engine admission-queue bound for the in-process server. */
    int maxQueue = 64;
    /** In-process engine pool size (0 = all cores). */
    int engineThreads = 0;
    /** Non-empty: torture a live `mirage serve --faults ...` at this
     * socket instead of an in-process server. */
    std::string socketPath;
    /** Scratch directory for the in-process server's socket, catalog,
     * and cacheDir ("" = /tmp/mirage-chaos-<pid>). */
    std::string workDir;
};

/**
 * Drive a server through a seeded fault schedule and prove it degrades
 * instead of dying: reference reports are computed fault-free first,
 * then every chaos-run success must be byte-identical to its reference
 * and every failure must carry a documented error code. Returns the
 * chaos artifact {schemaVersion, kind, parameters, results, pass};
 * throws ServeError only when the server stops answering for good
 * (crash/deadlock -- the one thing that must never happen).
 */
json::Value runChaos(const ChaosOptions &opts, std::ostream &log);

/**
 * Minimal line-oriented client for the serve socket protocol (used by
 * the traffic generator, tests, and scripting).
 */
class SocketClient
{
  public:
    /** Connects immediately; throws ServeError on failure. */
    explicit SocketClient(const std::string &socket_path);
    ~SocketClient();

    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    /**
     * Send one request line, block for one response line. Throws
     * ServeError on a broken connection.
     */
    std::string roundTrip(const std::string &line);

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace mirage::serve

#endif // MIRAGE_SERVE_TRAFFIC_HH
