/**
 * @file
 * Scalar reference implementations of the linalg kernels.
 *
 * The production kernels in matrix.cc/expm.cc/eigen.cc are hand-unrolled
 * over raw doubles so the compiler can vectorize them; this namespace
 * keeps the original std::complex scalar implementations alive as the
 * ground truth for the differential kernel tests
 * (tests/test_linalg_kernels.cc). The contract the tests pin down:
 *
 *  - Every optimized kernel preserves the reference accumulation ORDER
 *    and uses the same naive complex-product formula, so for finite
 *    inputs the results are bit-identical (operator== on every entry),
 *    not merely close. This is what keeps fitted decompositions, golden
 *    lowered-QASM snapshots, and the committed FIT_CATALOG.bin stable
 *    across the rewrite.
 *  - Kernels that are NOT reorder-free (none today) would be held to a
 *    <= 1e-14 Frobenius tolerance instead; the tests distinguish the
 *    two classes explicitly.
 *
 * Nothing here is used on the production path -- only tests link these
 * symbols -- so the implementations favour obvious correctness over
 * speed.
 */

#ifndef MIRAGE_LINALG_REFERENCE_HH
#define MIRAGE_LINALG_REFERENCE_HH

#include <array>

#include "linalg/eigen.hh"
#include "linalg/matrix.hh"

namespace mirage::linalg::reference {

/** Scalar 2x2 product (the original Mat2::operator*). */
Mat2 matmul2(const Mat2 &a, const Mat2 &b);

/**
 * Scalar 4x4 product with the zero-row skip (the original
 * Mat4::operator*): terms whose left factor is exactly zero are not
 * accumulated, and the k-loop runs ascending per output entry.
 */
Mat4 matmul4(const Mat4 &a, const Mat4 &b);

/** Conjugate transposes. */
Mat2 dagger2(const Mat2 &m);
Mat4 dagger4(const Mat4 &m);

/** Entrywise conjugates. */
Mat2 conj2(const Mat2 &m);
Mat4 conj4(const Mat4 &m);

/** Scalar products. */
Mat2 scale2(const Mat2 &m, Complex s);
Mat4 scale4(const Mat4 &m, Complex s);

/** Kronecker product of two 2x2 matrices. */
Mat4 kron(const Mat2 &a, const Mat2 &b);

/** |tr(A^dagger B)|^2 / 16 via the scalar product chain. */
double processFidelity(const Mat4 &a, const Mat4 &b);

/** Scaling-and-squaring Taylor expm built on the scalar product. */
Mat4 expm(const Mat4 &m);

/** Faddeev-LeVerrier characteristic polynomial (scalar products). */
std::array<Complex, 4> characteristicPolynomial(const Mat4 &m);

/** Durand-Kerner eigenvalues on the scalar characteristic polynomial. */
std::array<Complex, 4> eigenvalues4(const Mat4 &m);

/** Cyclic Jacobi eigensolver for real symmetric 4x4 matrices. */
SymEig4 jacobiEigen4(const Sym4 &m);

/** Simultaneous diagonalization of a commuting symmetric pair. */
Sym4 simultaneousDiagonalize(const Sym4 &a, const Sym4 &b,
                             double degeneracy_tol = 1e-9);

} // namespace mirage::linalg::reference

#endif // MIRAGE_LINALG_REFERENCE_HH
