/**
 * @file
 * Matrix exponential exp(i H) for small Hermitian H via scaling and
 * squaring with Taylor evaluation.
 */

#include "linalg/expm.hh"

#include <cmath>

namespace mirage::linalg {

Mat4
expm(const Mat4 &m)
{
    // Scale so the scaled norm is below ~0.5, Taylor to degree 16, then
    // square back up.
    double norm = m.frobeniusNorm();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    Mat4 x = m * Complex(scale);
    Mat4 term = Mat4::identity();
    Mat4 sum = Mat4::identity();
    for (int k = 1; k <= 16; ++k) {
        term = term * x * Complex(1.0 / k);
        sum = sum + term;
    }
    for (int s = 0; s < squarings; ++s)
        sum = sum * sum;
    return sum;
}

Mat2
expiPauli(const Mat2 &h, double theta)
{
    // exp(i theta h) = cos(theta) I + i sin(theta) h for h^2 == I.
    Mat2 r = Mat2::identity() * Complex(std::cos(theta), 0);
    Mat2 s = h * Complex(0, std::sin(theta));
    return r + s;
}

} // namespace mirage::linalg
