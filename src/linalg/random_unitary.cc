/**
 * @file
 * Haar-random unitary sampling via QR decomposition of complex
 * Ginibre matrices with R-diagonal phase fixing (Mezzadri's recipe).
 */

#include "linalg/random_unitary.hh"

#include <cmath>

namespace mirage::linalg {

namespace {

/**
 * QR-orthonormalize the columns of a complex NxN Ginibre sample using
 * modified Gram-Schmidt, then fix phases so the implied R has a positive
 * real diagonal. This makes the distribution exactly Haar.
 */
template <int N, typename Mat>
Mat
haarFromGinibre(Rng &rng)
{
    Complex g[N][N];
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            g[i][j] = Complex(rng.normal(), rng.normal());

    for (int col = 0; col < N; ++col) {
        // Remove projections onto previous columns (twice, for stability).
        for (int rep = 0; rep < 2; ++rep) {
            for (int prev = 0; prev < col; ++prev) {
                Complex dot(0);
                for (int i = 0; i < N; ++i)
                    dot += std::conj(g[i][prev]) * g[i][col];
                for (int i = 0; i < N; ++i)
                    g[i][col] -= dot * g[i][prev];
            }
        }
        double norm = 0;
        for (int i = 0; i < N; ++i)
            norm += std::norm(g[i][col]);
        norm = std::sqrt(norm);
        for (int i = 0; i < N; ++i)
            g[i][col] /= norm;
        // Phase fix: rotate the column so its pivot entry is real-positive
        // times a Haar-uniform phase; the uniform phase keeps the measure
        // Haar on U(N) (diagonal phases of R are uniform after the fix).
        double phi = rng.uniform(0.0, 2.0 * kPi);
        Complex rot = std::polar(1.0, phi);
        for (int i = 0; i < N; ++i)
            g[i][col] *= rot;
    }

    Mat out;
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            out(i, j) = g[i][j];
    return out;
}

} // namespace

Mat2
randomSU2(Rng &rng)
{
    Mat2 u = haarFromGinibre<2, Mat2>(rng);
    Complex d = u.det();
    // Divide by det^(1/2) to land in SU(2).
    Complex root = std::polar(1.0, std::arg(d) / 2.0);
    return u * (Complex(1) / root);
}

Mat4
randomSU4(Rng &rng)
{
    Mat4 u = haarFromGinibre<4, Mat4>(rng);
    Complex d = u.det();
    Complex root = std::polar(1.0, std::arg(d) / 4.0);
    return u * (Complex(1) / root);
}

Mat4
randomLocal4(Rng &rng)
{
    return kron(randomSU2(rng), randomSU2(rng));
}

} // namespace mirage::linalg
