/**
 * @file
 * Fixed-size complex matrix/vector operations: products, adjoints,
 * determinants, norms, and Kronecker products for the 2x2/4x4 types.
 *
 * The product/adjoint/Kronecker kernels are hand-unrolled over raw
 * doubles (std::complex guarantees array-of-double layout) so the
 * compiler can vectorize them: std::complex multiplication compiles to
 * the naive formula plus a NaN-recovery branch (__muldc3) that blocks
 * SIMD, while the raw form is branch-free. Each kernel preserves the
 * reference accumulation order and the naive product formula
 * (ar*br - ai*bi, ar*bi + ai*br), so for finite inputs the results are
 * BIT-IDENTICAL to the scalar implementations kept in
 * linalg/reference.hh -- the contract tests/test_linalg_kernels.cc
 * enforces, and what keeps fitted decompositions, golden snapshots, and
 * the committed FIT_CATALOG.bin stable across the rewrite.
 */

#include "linalg/matrix.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mirage::linalg {

namespace {

/** std::complex<double> arrays may be accessed as double pairs. */
inline const double *
flat(const Complex *p)
{
    return reinterpret_cast<const double *>(p);
}

inline double *
flat(Complex *p)
{
    return reinterpret_cast<double *>(p);
}

} // namespace

Mat2
Mat2::identity()
{
    Mat2 m;
    m.a = {Complex(1), Complex(0), Complex(0), Complex(1)};
    return m;
}

Mat2
Mat2::operator+(const Mat2 &o) const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = a[i] + o.a[i];
    return r;
}

Mat2
Mat2::operator-(const Mat2 &o) const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = a[i] - o.a[i];
    return r;
}

Mat2
Mat2::operator*(const Mat2 &o) const
{
    // Unrolled raw-double form of r(i,j) = a(i,0)*b(0,j) + a(i,1)*b(1,j):
    // same product formula and summation order as the reference kernel.
    const double *A = flat(a.data());
    const double *B = flat(o.a.data());
    Mat2 out;
    double *R = flat(out.a.data());
    for (int i = 0; i < 2; ++i) {
        const double a0r = A[4 * i], a0i = A[4 * i + 1];
        const double a1r = A[4 * i + 2], a1i = A[4 * i + 3];
        for (int j = 0; j < 2; ++j) {
            const double b0r = B[2 * j], b0i = B[2 * j + 1];
            const double b1r = B[4 + 2 * j], b1i = B[4 + 2 * j + 1];
            R[4 * i + 2 * j] =
                (a0r * b0r - a0i * b0i) + (a1r * b1r - a1i * b1i);
            R[4 * i + 2 * j + 1] =
                (a0r * b0i + a0i * b0r) + (a1r * b1i + a1i * b1r);
        }
    }
    return out;
}

Mat2
Mat2::operator*(Complex s) const
{
    const double sr = s.real(), si = s.imag();
    const double *A = flat(a.data());
    Mat2 out;
    double *R = flat(out.a.data());
    for (size_t i = 0; i < 4; ++i) {
        const double vr = A[2 * i], vi = A[2 * i + 1];
        R[2 * i] = vr * sr - vi * si;
        R[2 * i + 1] = vr * si + vi * sr;
    }
    return out;
}

Mat2
Mat2::dagger() const
{
    // Transposed copy with negated imaginary parts (conjugation is
    // exact, so this is trivially bit-identical to the reference).
    const double *A = flat(a.data());
    Mat2 out;
    double *R = flat(out.a.data());
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            R[4 * i + 2 * j] = A[4 * j + 2 * i];
            R[4 * i + 2 * j + 1] = -A[4 * j + 2 * i + 1];
        }
    }
    return out;
}

Mat2
Mat2::transpose() const
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat2
Mat2::conj() const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = std::conj(a[i]);
    return r;
}

Mat4
Mat4::identity()
{
    Mat4 m;
    for (int i = 0; i < 4; ++i)
        m(i, i) = Complex(1);
    return m;
}

Mat4
Mat4::diag(Complex d0, Complex d1, Complex d2, Complex d3)
{
    Mat4 m;
    m(0, 0) = d0;
    m(1, 1) = d1;
    m(2, 2) = d2;
    m(3, 3) = d3;
    return m;
}

Mat4
Mat4::operator+(const Mat4 &o) const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = a[i] + o.a[i];
    return r;
}

Mat4
Mat4::operator-(const Mat4 &o) const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = a[i] - o.a[i];
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    // ikj product over raw doubles. The zero-skip and the k-ascending
    // accumulation order replicate the reference kernel exactly (the
    // skip also preserves the signed zeros a naively-included 0*B row
    // would perturb); the branch-free 8-double row update is what the
    // compiler vectorizes. This is the hot kernel of ansatzFidelity and
    // therefore of every numerical fit.
    const double *A = flat(a.data());
    const double *B = flat(o.a.data());
    Mat4 out;
    double *R = flat(out.a.data());
    for (int i = 0; i < 4; ++i) {
        double *rrow = R + 8 * i;
        for (int k = 0; k < 4; ++k) {
            const double vr = A[8 * i + 2 * k], vi = A[8 * i + 2 * k + 1];
            if (vr == 0.0 && vi == 0.0)
                continue;
            const double *brow = B + 8 * k;
            for (int j = 0; j < 4; ++j) {
                const double br = brow[2 * j], bi = brow[2 * j + 1];
                rrow[2 * j] += vr * br - vi * bi;
                rrow[2 * j + 1] += vr * bi + vi * br;
            }
        }
    }
    return out;
}

Mat4
Mat4::operator*(Complex s) const
{
    const double sr = s.real(), si = s.imag();
    const double *A = flat(a.data());
    Mat4 out;
    double *R = flat(out.a.data());
    for (size_t i = 0; i < 16; ++i) {
        const double vr = A[2 * i], vi = A[2 * i + 1];
        R[2 * i] = vr * sr - vi * si;
        R[2 * i + 1] = vr * si + vi * sr;
    }
    return out;
}

Mat4
Mat4::dagger() const
{
    // Transposed copy with negated imaginary parts (conjugation is
    // exact, so this is trivially bit-identical to the reference).
    const double *A = flat(a.data());
    Mat4 out;
    double *R = flat(out.a.data());
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            R[8 * i + 2 * j] = A[8 * j + 2 * i];
            R[8 * i + 2 * j + 1] = -A[8 * j + 2 * i + 1];
        }
    }
    return out;
}

Mat4
Mat4::transpose() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat4
Mat4::conj() const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = std::conj(a[i]);
    return r;
}

Complex
Mat4::trace() const
{
    return a[0] + a[5] + a[10] + a[15];
}

Complex
Mat4::det() const
{
    // LU with partial pivoting on a scratch copy.
    Mat4 m = *this;
    Complex det(1);
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        double best = std::abs(m(col, col));
        for (int r = col + 1; r < 4; ++r) {
            double mag = std::abs(m(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            return Complex(0);
        if (pivot != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(m(pivot, c), m(col, c));
            det = -det;
        }
        det *= m(col, col);
        for (int r = col + 1; r < 4; ++r) {
            Complex f = m(r, col) / m(col, col);
            for (int c = col; c < 4; ++c)
                m(r, c) -= f * m(col, c);
        }
    }
    return det;
}

double
Mat4::distance(const Mat4 &o) const
{
    double s = 0;
    for (size_t i = 0; i < 16; ++i)
        s += std::norm(a[i] - o.a[i]);
    return std::sqrt(s);
}

double
Mat4::maxAbsDiff(const Mat4 &o) const
{
    double best = 0;
    for (size_t i = 0; i < 16; ++i)
        best = std::max(best, std::abs(a[i] - o.a[i]));
    return best;
}

double
Mat4::frobeniusNorm() const
{
    double s = 0;
    for (size_t i = 0; i < 16; ++i)
        s += std::norm(a[i]);
    return std::sqrt(s);
}

bool
Mat4::isUnitary(double tol) const
{
    Mat4 p = (*this) * dagger();
    return p.maxAbsDiff(Mat4::identity()) < tol;
}

std::string
Mat4::toString(int precision) const
{
    char buf[64];
    std::string out;
    for (int i = 0; i < 4; ++i) {
        out += "[";
        for (int j = 0; j < 4; ++j) {
            std::snprintf(buf, sizeof(buf), "%+.*f%+.*fi ", precision,
                          (*this)(i, j).real(), precision,
                          (*this)(i, j).imag());
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

Mat4
kron(const Mat2 &x, const Mat2 &y)
{
    // One naive complex product per output entry, in the same entry
    // order as the reference loop nest.
    const double *X = flat(x.a.data());
    const double *Y = flat(y.a.data());
    Mat4 out;
    double *R = flat(out.a.data());
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
            const double xr = X[4 * i + 2 * j], xi = X[4 * i + 2 * j + 1];
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l) {
                    const double yr = Y[4 * k + 2 * l];
                    const double yi = Y[4 * k + 2 * l + 1];
                    const int idx = 8 * (2 * i + k) + 2 * (2 * j + l);
                    R[idx] = xr * yr - xi * yi;
                    R[idx + 1] = xr * yi + xi * yr;
                }
        }
    return out;
}

Mat2
pauliX()
{
    Mat2 m;
    m(0, 1) = 1;
    m(1, 0) = 1;
    return m;
}

Mat2
pauliY()
{
    Mat2 m;
    m(0, 1) = Complex(0, -1);
    m(1, 0) = Complex(0, 1);
    return m;
}

Mat2
pauliZ()
{
    Mat2 m;
    m(0, 0) = 1;
    m(1, 1) = -1;
    return m;
}

Mat2
hadamard()
{
    const double s = 1.0 / std::sqrt(2.0);
    Mat2 m;
    m(0, 0) = s;
    m(0, 1) = s;
    m(1, 0) = s;
    m(1, 1) = -s;
    return m;
}

Mat4
pauliXX()
{
    return kron(pauliX(), pauliX());
}

Mat4
pauliYY()
{
    return kron(pauliY(), pauliY());
}

Mat4
pauliZZ()
{
    return kron(pauliZ(), pauliZ());
}

double
processFidelity(const Mat4 &a, const Mat4 &b)
{
    Complex t = (a.dagger() * b).trace();
    return std::norm(t) / 16.0;
}

double
averageGateFidelity(const Mat4 &a, const Mat4 &b)
{
    const double d = 4.0;
    double fpro = processFidelity(a, b);
    return (d * fpro + 1.0) / (d + 1.0);
}

void
factorTensorProduct(const Mat4 &m, Mat2 *x, Mat2 *y, double *error)
{
    MIRAGE_ASSERT(x && y, "null output factor");

    // View m as a 2x2 block matrix m = [[a00*y, a01*y], [a10*y, a11*y]].
    // Pick the block with the largest norm as a scaled copy of y.
    int bi = 0, bj = 0;
    double best = -1;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            double s = 0;
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    s += std::norm(m(2 * i + k, 2 * j + l));
            if (s > best) {
                best = s;
                bi = i;
                bj = j;
            }
        }
    }

    Mat2 yblk;
    for (int k = 0; k < 2; ++k)
        for (int l = 0; l < 2; ++l)
            yblk(k, l) = m(2 * bi + k, 2 * bj + l);
    // Normalize so y is (approximately) unitary: block = a_{bi,bj} * y with
    // |det(block)| = |a|^2 |det y| = |a|^2 for unitary y.
    Complex dblk = yblk.det();
    double scale = std::sqrt(std::abs(dblk));
    MIRAGE_ASSERT(scale > 1e-12, "tensor factor block is singular");
    Mat2 yhat = yblk * Complex(1.0 / scale);

    // Recover x entries by projecting each block onto yhat.
    Mat2 xhat;
    double ynorm2 = 0;
    for (size_t i = 0; i < 4; ++i)
        ynorm2 += std::norm(yhat.a[i]);
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Complex acc(0);
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    acc += std::conj(yhat(k, l)) * m(2 * i + k, 2 * j + l);
            xhat(i, j) = acc / ynorm2;
        }
    }

    if (error) {
        Mat4 rec = kron(xhat, yhat);
        // Phase-align before measuring the residual.
        Complex t = (rec.dagger() * m).trace();
        Complex phase = std::abs(t) > 1e-12 ? t / std::abs(t) : Complex(1);
        *error = (rec * phase).distance(m);
    }
    *x = xhat;
    *y = yhat;
}

} // namespace mirage::linalg
