/**
 * @file
 * Fixed-size complex matrix/vector operations: products, adjoints,
 * determinants, norms, and Kronecker products for the 2x2/4x4 types.
 */

#include "linalg/matrix.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mirage::linalg {

Mat2
Mat2::identity()
{
    Mat2 m;
    m.a = {Complex(1), Complex(0), Complex(0), Complex(1)};
    return m;
}

Mat2
Mat2::operator+(const Mat2 &o) const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = a[i] + o.a[i];
    return r;
}

Mat2
Mat2::operator-(const Mat2 &o) const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = a[i] - o.a[i];
    return r;
}

Mat2
Mat2::operator*(const Mat2 &o) const
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = (*this)(i, 0) * o(0, j) + (*this)(i, 1) * o(1, j);
    return r;
}

Mat2
Mat2::operator*(Complex s) const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = a[i] * s;
    return r;
}

Mat2
Mat2::dagger() const
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = std::conj((*this)(j, i));
    return r;
}

Mat2
Mat2::transpose() const
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat2
Mat2::conj() const
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = std::conj(a[i]);
    return r;
}

Mat4
Mat4::identity()
{
    Mat4 m;
    for (int i = 0; i < 4; ++i)
        m(i, i) = Complex(1);
    return m;
}

Mat4
Mat4::diag(Complex d0, Complex d1, Complex d2, Complex d3)
{
    Mat4 m;
    m(0, 0) = d0;
    m(1, 1) = d1;
    m(2, 2) = d2;
    m(3, 3) = d3;
    return m;
}

Mat4
Mat4::operator+(const Mat4 &o) const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = a[i] + o.a[i];
    return r;
}

Mat4
Mat4::operator-(const Mat4 &o) const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = a[i] - o.a[i];
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 4; ++k) {
            Complex v = (*this)(i, k);
            if (v == Complex(0))
                continue;
            for (int j = 0; j < 4; ++j)
                r(i, j) += v * o(k, j);
        }
    }
    return r;
}

Mat4
Mat4::operator*(Complex s) const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = a[i] * s;
    return r;
}

Mat4
Mat4::dagger() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = std::conj((*this)(j, i));
    return r;
}

Mat4
Mat4::transpose() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat4
Mat4::conj() const
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = std::conj(a[i]);
    return r;
}

Complex
Mat4::trace() const
{
    return a[0] + a[5] + a[10] + a[15];
}

Complex
Mat4::det() const
{
    // LU with partial pivoting on a scratch copy.
    Mat4 m = *this;
    Complex det(1);
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        double best = std::abs(m(col, col));
        for (int r = col + 1; r < 4; ++r) {
            double mag = std::abs(m(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            return Complex(0);
        if (pivot != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(m(pivot, c), m(col, c));
            det = -det;
        }
        det *= m(col, col);
        for (int r = col + 1; r < 4; ++r) {
            Complex f = m(r, col) / m(col, col);
            for (int c = col; c < 4; ++c)
                m(r, c) -= f * m(col, c);
        }
    }
    return det;
}

double
Mat4::distance(const Mat4 &o) const
{
    double s = 0;
    for (size_t i = 0; i < 16; ++i)
        s += std::norm(a[i] - o.a[i]);
    return std::sqrt(s);
}

double
Mat4::maxAbsDiff(const Mat4 &o) const
{
    double best = 0;
    for (size_t i = 0; i < 16; ++i)
        best = std::max(best, std::abs(a[i] - o.a[i]));
    return best;
}

double
Mat4::frobeniusNorm() const
{
    double s = 0;
    for (size_t i = 0; i < 16; ++i)
        s += std::norm(a[i]);
    return std::sqrt(s);
}

bool
Mat4::isUnitary(double tol) const
{
    Mat4 p = (*this) * dagger();
    return p.maxAbsDiff(Mat4::identity()) < tol;
}

std::string
Mat4::toString(int precision) const
{
    char buf[64];
    std::string out;
    for (int i = 0; i < 4; ++i) {
        out += "[";
        for (int j = 0; j < 4; ++j) {
            std::snprintf(buf, sizeof(buf), "%+.*f%+.*fi ", precision,
                          (*this)(i, j).real(), precision,
                          (*this)(i, j).imag());
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

Mat4
kron(const Mat2 &x, const Mat2 &y)
{
    Mat4 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    r(2 * i + k, 2 * j + l) = x(i, j) * y(k, l);
    return r;
}

Mat2
pauliX()
{
    Mat2 m;
    m(0, 1) = 1;
    m(1, 0) = 1;
    return m;
}

Mat2
pauliY()
{
    Mat2 m;
    m(0, 1) = Complex(0, -1);
    m(1, 0) = Complex(0, 1);
    return m;
}

Mat2
pauliZ()
{
    Mat2 m;
    m(0, 0) = 1;
    m(1, 1) = -1;
    return m;
}

Mat2
hadamard()
{
    const double s = 1.0 / std::sqrt(2.0);
    Mat2 m;
    m(0, 0) = s;
    m(0, 1) = s;
    m(1, 0) = s;
    m(1, 1) = -s;
    return m;
}

Mat4
pauliXX()
{
    return kron(pauliX(), pauliX());
}

Mat4
pauliYY()
{
    return kron(pauliY(), pauliY());
}

Mat4
pauliZZ()
{
    return kron(pauliZ(), pauliZ());
}

double
processFidelity(const Mat4 &a, const Mat4 &b)
{
    Complex t = (a.dagger() * b).trace();
    return std::norm(t) / 16.0;
}

double
averageGateFidelity(const Mat4 &a, const Mat4 &b)
{
    const double d = 4.0;
    double fpro = processFidelity(a, b);
    return (d * fpro + 1.0) / (d + 1.0);
}

void
factorTensorProduct(const Mat4 &m, Mat2 *x, Mat2 *y, double *error)
{
    MIRAGE_ASSERT(x && y, "null output factor");

    // View m as a 2x2 block matrix m = [[a00*y, a01*y], [a10*y, a11*y]].
    // Pick the block with the largest norm as a scaled copy of y.
    int bi = 0, bj = 0;
    double best = -1;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            double s = 0;
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    s += std::norm(m(2 * i + k, 2 * j + l));
            if (s > best) {
                best = s;
                bi = i;
                bj = j;
            }
        }
    }

    Mat2 yblk;
    for (int k = 0; k < 2; ++k)
        for (int l = 0; l < 2; ++l)
            yblk(k, l) = m(2 * bi + k, 2 * bj + l);
    // Normalize so y is (approximately) unitary: block = a_{bi,bj} * y with
    // |det(block)| = |a|^2 |det y| = |a|^2 for unitary y.
    Complex dblk = yblk.det();
    double scale = std::sqrt(std::abs(dblk));
    MIRAGE_ASSERT(scale > 1e-12, "tensor factor block is singular");
    Mat2 yhat = yblk * Complex(1.0 / scale);

    // Recover x entries by projecting each block onto yhat.
    Mat2 xhat;
    double ynorm2 = 0;
    for (size_t i = 0; i < 4; ++i)
        ynorm2 += std::norm(yhat.a[i]);
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Complex acc(0);
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    acc += std::conj(yhat(k, l)) * m(2 * i + k, 2 * j + l);
            xhat(i, j) = acc / ynorm2;
        }
    }

    if (error) {
        Mat4 rec = kron(xhat, yhat);
        // Phase-align before measuring the residual.
        Complex t = (rec.dagger() * m).trace();
        Complex phase = std::abs(t) > 1e-12 ? t / std::abs(t) : Complex(1);
        *error = (rec * phase).distance(m);
    }
    *x = xhat;
    *y = yhat;
}

} // namespace mirage::linalg
