/**
 * @file
 * Scalar reference kernels: verbatim copies of the pre-vectorization
 * std::complex implementations. The differential tests compare these
 * against the optimized production kernels for bit-identity.
 */

#include "linalg/reference.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mirage::linalg::reference {

Mat2
matmul2(const Mat2 &a, const Mat2 &b)
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = a(i, 0) * b(0, j) + a(i, 1) * b(1, j);
    return r;
}

Mat4
matmul4(const Mat4 &a, const Mat4 &b)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 4; ++k) {
            Complex v = a(i, k);
            if (v == Complex(0))
                continue;
            for (int j = 0; j < 4; ++j)
                r(i, j) += v * b(k, j);
        }
    }
    return r;
}

Mat2
dagger2(const Mat2 &m)
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = std::conj(m(j, i));
    return r;
}

Mat4
dagger4(const Mat4 &m)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = std::conj(m(j, i));
    return r;
}

Mat2
conj2(const Mat2 &m)
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = std::conj(m.a[i]);
    return r;
}

Mat4
conj4(const Mat4 &m)
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = std::conj(m.a[i]);
    return r;
}

Mat2
scale2(const Mat2 &m, Complex s)
{
    Mat2 r;
    for (size_t i = 0; i < 4; ++i)
        r.a[i] = m.a[i] * s;
    return r;
}

Mat4
scale4(const Mat4 &m, Complex s)
{
    Mat4 r;
    for (size_t i = 0; i < 16; ++i)
        r.a[i] = m.a[i] * s;
    return r;
}

Mat4
kron(const Mat2 &x, const Mat2 &y)
{
    Mat4 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    r(2 * i + k, 2 * j + l) = x(i, j) * y(k, l);
    return r;
}

double
processFidelity(const Mat4 &a, const Mat4 &b)
{
    Complex t = matmul4(dagger4(a), b).trace();
    return std::norm(t) / 16.0;
}

Mat4
expm(const Mat4 &m)
{
    double norm = m.frobeniusNorm();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    Mat4 x = scale4(m, Complex(scale));
    Mat4 term = Mat4::identity();
    Mat4 sum = Mat4::identity();
    for (int k = 1; k <= 16; ++k) {
        term = scale4(matmul4(term, x), Complex(1.0 / k));
        sum = sum + term;
    }
    for (int s = 0; s < squarings; ++s)
        sum = matmul4(sum, sum);
    return sum;
}

std::array<Complex, 4>
characteristicPolynomial(const Mat4 &m)
{
    Mat4 mk = m;
    Complex c3 = -mk.trace();
    Mat4 aux = mk + scale4(Mat4::identity(), c3);
    mk = matmul4(m, aux);
    Complex c2 = mk.trace() * Complex(-0.5);
    aux = mk + scale4(Mat4::identity(), c2);
    mk = matmul4(m, aux);
    Complex c1 = mk.trace() * Complex(-1.0 / 3.0);
    aux = mk + scale4(Mat4::identity(), c1);
    mk = matmul4(m, aux);
    Complex c0 = mk.trace() * Complex(-0.25);
    return {c0, c1, c2, c3};
}

namespace {

Complex
evalPoly(const std::array<Complex, 4> &c, Complex x)
{
    Complex v = x + c[3];
    v = v * x + c[2];
    v = v * x + c[1];
    v = v * x + c[0];
    return v;
}

} // namespace

std::array<Complex, 4>
eigenvalues4(const Mat4 &m)
{
    // Qualified: ADL on Mat4 would also find linalg::characteristicPolynomial.
    auto c = reference::characteristicPolynomial(m);

    std::array<Complex, 4> r;
    Complex seed(0.4, 0.9);
    r[0] = Complex(1);
    for (int i = 1; i < 4; ++i)
        r[i] = r[i - 1] * seed;

    for (int iter = 0; iter < 200; ++iter) {
        double delta = 0;
        for (int i = 0; i < 4; ++i) {
            Complex denom(1);
            for (int j = 0; j < 4; ++j) {
                if (j != i)
                    denom *= (r[i] - r[j]);
            }
            if (std::abs(denom) < 1e-300)
                denom = Complex(1e-300);
            Complex step = evalPoly(c, r[i]) / denom;
            r[i] -= step;
            delta = std::max(delta, std::abs(step));
        }
        if (delta < 1e-14)
            break;
    }

    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 3; ++k) {
            Complex x = r[i];
            Complex f = evalPoly(c, x);
            Complex fp = Complex(4) * x * x * x + Complex(3) * c[3] * x * x +
                         Complex(2) * c[2] * x + c[1];
            if (std::abs(fp) < 1e-10)
                break;
            Complex step = f / fp;
            if (std::abs(step) > 0.1)
                break;
            r[i] = x - step;
        }
    }
    return r;
}

SymEig4
jacobiEigen4(const Sym4 &m)
{
    Sym4 a = m;
    Sym4 v{};
    for (int i = 0; i < 4; ++i)
        v(i, i) = 1.0;

    for (int sweep = 0; sweep < 60; ++sweep) {
        double off = 0;
        for (int p = 0; p < 4; ++p)
            for (int q = p + 1; q < 4; ++q)
                off += a(p, q) * a(p, q);
        if (off < 1e-28)
            break;

        for (int p = 0; p < 4; ++p) {
            for (int q = p + 1; q < 4; ++q) {
                if (std::fabs(a(p, q)) < 1e-300)
                    continue;
                double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double cth = 1.0 / std::sqrt(t * t + 1.0);
                double sth = t * cth;

                for (int k = 0; k < 4; ++k) {
                    double akp = a(k, p), akq = a(k, q);
                    a(k, p) = cth * akp - sth * akq;
                    a(k, q) = sth * akp + cth * akq;
                }
                for (int k = 0; k < 4; ++k) {
                    double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = cth * apk - sth * aqk;
                    a(q, k) = sth * apk + cth * aqk;
                }
                for (int k = 0; k < 4; ++k) {
                    double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = cth * vkp - sth * vkq;
                    v(k, q) = sth * vkp + cth * vkq;
                }
            }
        }
    }

    SymEig4 out;
    for (int i = 0; i < 4; ++i)
        out.values[size_t(i)] = a(i, i);
    out.vectors = v;
    return out;
}

namespace {

Sym4
congruenceRef(const Sym4 &v, const Sym4 &m)
{
    // r = v^T m v
    Sym4 t{}; // m v
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0;
            for (int k = 0; k < 4; ++k)
                s += m(i, k) * v(k, j);
            t(i, j) = s;
        }
    Sym4 r{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0;
            for (int k = 0; k < 4; ++k)
                s += v(k, i) * t(k, j);
            r(i, j) = s;
        }
    return r;
}

} // namespace

Sym4
simultaneousDiagonalize(const Sym4 &a, const Sym4 &b, double degeneracy_tol)
{
    // Qualified: ADL on Sym4 would also find linalg::jacobiEigen4.
    SymEig4 ea = reference::jacobiEigen4(a);

    std::array<int, 4> order = {0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return ea.values[size_t(x)] > ea.values[size_t(y)];
    });
    Sym4 v{};
    std::array<double, 4> w{};
    for (int j = 0; j < 4; ++j) {
        w[size_t(j)] = ea.values[size_t(order[size_t(j)])];
        for (int i = 0; i < 4; ++i)
            v(i, j) = ea.vectors(i, order[size_t(j)]);
    }

    Sym4 bv = congruenceRef(v, b);

    int start = 0;
    while (start < 4) {
        int end = start + 1;
        while (end < 4 &&
               std::fabs(w[size_t(end)] - w[size_t(start)]) < degeneracy_tol)
            ++end;
        int size = end - start;
        if (size > 1) {
            const size_t n = size_t(size);
            std::vector<std::vector<double>> blk(
                n, std::vector<double>(n, 0.0));
            for (int i = 0; i < size; ++i)
                for (int j = 0; j < size; ++j)
                    blk[size_t(i)][size_t(j)] = bv(start + i, start + j);
            std::vector<std::vector<double>> rot(
                size_t(size), std::vector<double>(size_t(size), 0.0));
            for (int i = 0; i < size; ++i)
                rot[size_t(i)][size_t(i)] = 1.0;

            for (int sweep = 0; sweep < 50; ++sweep) {
                double off = 0;
                for (int p = 0; p < size; ++p)
                    for (int q = p + 1; q < size; ++q)
                        off += blk[size_t(p)][size_t(q)] *
                               blk[size_t(p)][size_t(q)];
                if (off < 1e-28)
                    break;
                for (int p = 0; p < size; ++p) {
                    for (int q = p + 1; q < size; ++q) {
                        double bpq = blk[size_t(p)][size_t(q)];
                        if (std::fabs(bpq) < 1e-300)
                            continue;
                        double theta =
                            (blk[size_t(q)][size_t(q)] -
                             blk[size_t(p)][size_t(p)]) / (2.0 * bpq);
                        double t = (theta >= 0 ? 1.0 : -1.0) /
                                   (std::fabs(theta) +
                                    std::sqrt(theta * theta + 1.0));
                        double cth = 1.0 / std::sqrt(t * t + 1.0);
                        double sth = t * cth;
                        for (int k = 0; k < size; ++k) {
                            double bkp = blk[size_t(k)][size_t(p)];
                            double bkq = blk[size_t(k)][size_t(q)];
                            blk[size_t(k)][size_t(p)] = cth * bkp - sth * bkq;
                            blk[size_t(k)][size_t(q)] = sth * bkp + cth * bkq;
                        }
                        for (int k = 0; k < size; ++k) {
                            double bpk = blk[size_t(p)][size_t(k)];
                            double bqk = blk[size_t(q)][size_t(k)];
                            blk[size_t(p)][size_t(k)] = cth * bpk - sth * bqk;
                            blk[size_t(q)][size_t(k)] = sth * bpk + cth * bqk;
                        }
                        for (int k = 0; k < size; ++k) {
                            double rkp = rot[size_t(k)][size_t(p)];
                            double rkq = rot[size_t(k)][size_t(q)];
                            rot[size_t(k)][size_t(p)] = cth * rkp - sth * rkq;
                            rot[size_t(k)][size_t(q)] = sth * rkp + cth * rkq;
                        }
                    }
                }
            }

            Sym4 vr = v;
            for (int i = 0; i < 4; ++i) {
                for (int j = 0; j < size; ++j) {
                    double s = 0;
                    for (int k = 0; k < size; ++k)
                        s += v(i, start + k) * rot[size_t(k)][size_t(j)];
                    vr(i, start + j) = s;
                }
            }
            v = vr;
            bv = congruenceRef(v, b);
        }
        start = end;
    }
    return v;
}

} // namespace mirage::linalg::reference
