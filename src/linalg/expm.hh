/**
 * @file
 * Matrix exponential for small complex matrices.
 *
 * exp(i H) for Hermitian H is the only case the library needs (canonical
 * gate construction and ansatz generators); a scaling-and-squaring Taylor
 * evaluation is accurate to machine precision for the norms that occur
 * (|H| <= ~3).
 */

#ifndef MIRAGE_LINALG_EXPM_HH
#define MIRAGE_LINALG_EXPM_HH

#include "linalg/matrix.hh"

namespace mirage::linalg {

/** exp(m) via scaling and squaring with a degree-16 Taylor core. */
Mat4 expm(const Mat4 &m);

/** exp(i * theta * h) for 2x2 h; closed form when h*h == I (Paulis). */
Mat2 expiPauli(const Mat2 &h, double theta);

} // namespace mirage::linalg

#endif // MIRAGE_LINALG_EXPM_HH
