/**
 * @file
 * Haar-random unitary sampling.
 *
 * Random SU(2) and SU(4) elements are drawn by QR-decomposing a complex
 * Ginibre matrix and fixing the R diagonal phases (Mezzadri's recipe),
 * which yields exactly Haar measure. Used by the Monte Carlo Haar-score
 * experiments (paper Algorithm 1, Fig. 5) and all property-based tests.
 */

#ifndef MIRAGE_LINALG_RANDOM_UNITARY_HH
#define MIRAGE_LINALG_RANDOM_UNITARY_HH

#include "common/rng.hh"
#include "linalg/matrix.hh"

namespace mirage::linalg {

/** Haar-random U(2) element, det-normalized into SU(2). */
Mat2 randomSU2(Rng &rng);

/** Haar-random U(4) element, det-normalized into SU(4). */
Mat4 randomSU4(Rng &rng);

/** Haar-random single-qubit pair k1 (x) k2. */
Mat4 randomLocal4(Rng &rng);

} // namespace mirage::linalg

#endif // MIRAGE_LINALG_RANDOM_UNITARY_HH
