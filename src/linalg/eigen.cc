/**
 * @file
 * Small-matrix eigenvalue solvers: Faddeev-LeVerrier characteristic
 * polynomial with Durand-Kerner roots for complex 4x4 matrices, and a
 * Jacobi solver for real symmetric ones.
 */

#include "linalg/eigen.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace mirage::linalg {

std::array<Complex, 4>
characteristicPolynomial(const Mat4 &m)
{
    // Faddeev-LeVerrier: M_1 = M, c_{n-k} built from traces of the
    // auxiliary sequence M_{k+1} = M (M_k + c_k I).
    Mat4 mk = m;
    Complex c3 = -mk.trace();
    Mat4 aux = mk + Mat4::identity() * c3;
    mk = m * aux;
    Complex c2 = mk.trace() * Complex(-0.5);
    aux = mk + Mat4::identity() * c2;
    mk = m * aux;
    Complex c1 = mk.trace() * Complex(-1.0 / 3.0);
    aux = mk + Mat4::identity() * c1;
    mk = m * aux;
    Complex c0 = mk.trace() * Complex(-0.25);
    return {c0, c1, c2, c3};
}

namespace {

Complex
evalPoly(const std::array<Complex, 4> &c, Complex x)
{
    // x^4 + c3 x^3 + c2 x^2 + c1 x + c0, Horner form.
    Complex v = x + c[3];
    v = v * x + c[2];
    v = v * x + c[1];
    v = v * x + c[0];
    return v;
}

} // namespace

std::array<Complex, 4>
eigenvalues4(const Mat4 &m)
{
    auto c = characteristicPolynomial(m);

    // Durand-Kerner with the standard non-real, non-root-of-unity seed.
    std::array<Complex, 4> r;
    Complex seed(0.4, 0.9);
    r[0] = Complex(1);
    for (int i = 1; i < 4; ++i)
        r[i] = r[i - 1] * seed;

    for (int iter = 0; iter < 200; ++iter) {
        double delta = 0;
        for (int i = 0; i < 4; ++i) {
            Complex denom(1);
            for (int j = 0; j < 4; ++j) {
                if (j != i)
                    denom *= (r[i] - r[j]);
            }
            if (std::abs(denom) < 1e-300)
                denom = Complex(1e-300);
            Complex step = evalPoly(c, r[i]) / denom;
            r[i] -= step;
            delta = std::max(delta, std::abs(step));
        }
        if (delta < 1e-14)
            break;
    }

    // One Newton polish per root (quadratic cleanup; harmless on clusters
    // because we cap the step size).
    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 3; ++k) {
            Complex x = r[i];
            Complex f = evalPoly(c, x);
            // f' = 4x^3 + 3 c3 x^2 + 2 c2 x + c1
            Complex fp = Complex(4) * x * x * x + Complex(3) * c[3] * x * x +
                         Complex(2) * c[2] * x + c[1];
            if (std::abs(fp) < 1e-10)
                break;
            Complex step = f / fp;
            if (std::abs(step) > 0.1)
                break;
            r[i] = x - step;
        }
    }
    return r;
}

Sym4
congruence(const Sym4 &v, const Sym4 &m)
{
    // r = v^T m v
    Sym4 t{}; // m v
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0;
            for (int k = 0; k < 4; ++k)
                s += m(i, k) * v(k, j);
            t(i, j) = s;
        }
    Sym4 r{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0;
            for (int k = 0; k < 4; ++k)
                s += v(k, i) * t(k, j);
            r(i, j) = s;
        }
    return r;
}

double
det4(const Sym4 &m)
{
    Sym4 a = m;
    double det = 1;
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        double best = std::fabs(a(col, col));
        for (int r = col + 1; r < 4; ++r) {
            if (std::fabs(a(r, col)) > best) {
                best = std::fabs(a(r, col));
                pivot = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (pivot != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(a(pivot, c), a(col, c));
            det = -det;
        }
        det *= a(col, col);
        for (int r = col + 1; r < 4; ++r) {
            double f = a(r, col) / a(col, col);
            for (int c = col; c < 4; ++c)
                a(r, c) -= f * a(col, c);
        }
    }
    return det;
}

SymEig4
jacobiEigen4(const Sym4 &m)
{
    Sym4 a = m;
    Sym4 v{};
    for (int i = 0; i < 4; ++i)
        v(i, i) = 1.0;

    for (int sweep = 0; sweep < 60; ++sweep) {
        double off = 0;
        for (int p = 0; p < 4; ++p)
            for (int q = p + 1; q < 4; ++q)
                off += a(p, q) * a(p, q);
        if (off < 1e-28)
            break;

        for (int p = 0; p < 4; ++p) {
            for (int q = p + 1; q < 4; ++q) {
                if (std::fabs(a(p, q)) < 1e-300)
                    continue;
                double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double cth = 1.0 / std::sqrt(t * t + 1.0);
                double sth = t * cth;

                for (int k = 0; k < 4; ++k) {
                    double akp = a(k, p), akq = a(k, q);
                    a(k, p) = cth * akp - sth * akq;
                    a(k, q) = sth * akp + cth * akq;
                }
                for (int k = 0; k < 4; ++k) {
                    double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = cth * apk - sth * aqk;
                    a(q, k) = sth * apk + cth * aqk;
                }
                for (int k = 0; k < 4; ++k) {
                    double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = cth * vkp - sth * vkq;
                    v(k, q) = sth * vkp + cth * vkq;
                }
            }
        }
    }

    SymEig4 out;
    for (int i = 0; i < 4; ++i)
        out.values[size_t(i)] = a(i, i);
    out.vectors = v;
    return out;
}

Sym4
simultaneousDiagonalize(const Sym4 &a, const Sym4 &b, double degeneracy_tol)
{
    SymEig4 ea = jacobiEigen4(a);

    // Sort eigenpairs of a (descending) so degenerate clusters are
    // contiguous.
    std::array<int, 4> order = {0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return ea.values[size_t(x)] > ea.values[size_t(y)];
    });
    Sym4 v{};
    std::array<double, 4> w{};
    for (int j = 0; j < 4; ++j) {
        w[size_t(j)] = ea.values[size_t(order[size_t(j)])];
        for (int i = 0; i < 4; ++i)
            v(i, j) = ea.vectors(i, order[size_t(j)]);
    }

    // b in the eigenbasis of a; block-diagonal across a's eigenspaces.
    Sym4 bv = congruence(v, b);

    // Walk degenerate clusters of a and rotate within each to diagonalize
    // the corresponding block of b. Clusters of size <= 1 need nothing;
    // larger ones get a small dense Jacobi on the block.
    int start = 0;
    while (start < 4) {
        int end = start + 1;
        while (end < 4 &&
               std::fabs(w[size_t(end)] - w[size_t(start)]) < degeneracy_tol)
            ++end;
        int size = end - start;
        if (size > 1) {
            // Jacobi on the sub-block bv[start:end, start:end].
            const size_t n = size_t(size);
            std::vector<std::vector<double>> blk(
                n, std::vector<double>(n, 0.0));
            for (int i = 0; i < size; ++i)
                for (int j = 0; j < size; ++j)
                    blk[size_t(i)][size_t(j)] = bv(start + i, start + j);
            std::vector<std::vector<double>> rot(
                size_t(size), std::vector<double>(size_t(size), 0.0));
            for (int i = 0; i < size; ++i)
                rot[size_t(i)][size_t(i)] = 1.0;

            for (int sweep = 0; sweep < 50; ++sweep) {
                double off = 0;
                for (int p = 0; p < size; ++p)
                    for (int q = p + 1; q < size; ++q)
                        off += blk[size_t(p)][size_t(q)] *
                               blk[size_t(p)][size_t(q)];
                if (off < 1e-28)
                    break;
                for (int p = 0; p < size; ++p) {
                    for (int q = p + 1; q < size; ++q) {
                        double bpq = blk[size_t(p)][size_t(q)];
                        if (std::fabs(bpq) < 1e-300)
                            continue;
                        double theta =
                            (blk[size_t(q)][size_t(q)] -
                             blk[size_t(p)][size_t(p)]) / (2.0 * bpq);
                        double t = (theta >= 0 ? 1.0 : -1.0) /
                                   (std::fabs(theta) +
                                    std::sqrt(theta * theta + 1.0));
                        double cth = 1.0 / std::sqrt(t * t + 1.0);
                        double sth = t * cth;
                        for (int k = 0; k < size; ++k) {
                            double bkp = blk[size_t(k)][size_t(p)];
                            double bkq = blk[size_t(k)][size_t(q)];
                            blk[size_t(k)][size_t(p)] = cth * bkp - sth * bkq;
                            blk[size_t(k)][size_t(q)] = sth * bkp + cth * bkq;
                        }
                        for (int k = 0; k < size; ++k) {
                            double bpk = blk[size_t(p)][size_t(k)];
                            double bqk = blk[size_t(q)][size_t(k)];
                            blk[size_t(p)][size_t(k)] = cth * bpk - sth * bqk;
                            blk[size_t(q)][size_t(k)] = sth * bpk + cth * bqk;
                        }
                        for (int k = 0; k < size; ++k) {
                            double rkp = rot[size_t(k)][size_t(p)];
                            double rkq = rot[size_t(k)][size_t(q)];
                            rot[size_t(k)][size_t(p)] = cth * rkp - sth * rkq;
                            rot[size_t(k)][size_t(q)] = sth * rkp + cth * rkq;
                        }
                    }
                }
            }

            // Fold the block rotation into v.
            Sym4 vr = v;
            for (int i = 0; i < 4; ++i) {
                for (int j = 0; j < size; ++j) {
                    double s = 0;
                    for (int k = 0; k < size; ++k)
                        s += v(i, start + k) * rot[size_t(k)][size_t(j)];
                    vr(i, start + j) = s;
                }
            }
            v = vr;
            bv = congruence(v, b);
        }
        start = end;
    }
    return v;
}

} // namespace mirage::linalg
