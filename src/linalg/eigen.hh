/**
 * @file
 * Eigenvalue solvers for the small matrices the Weyl machinery needs.
 *
 * Two solvers are provided:
 *  - complex eigenvalues of an arbitrary 4x4 complex matrix via the
 *    Faddeev-LeVerrier characteristic polynomial and Durand-Kerner root
 *    iteration (used on the unitary "gamma" matrix whose spectrum encodes
 *    Weyl coordinates), and
 *  - a cyclic Jacobi eigensolver for real symmetric 4x4 matrices, with a
 *    two-stage variant that simultaneously diagonalizes a commuting pair
 *    (used by the KAK decomposition where Re(gamma) and Im(gamma) commute).
 */

#ifndef MIRAGE_LINALG_EIGEN_HH
#define MIRAGE_LINALG_EIGEN_HH

#include <array>

#include "linalg/matrix.hh"

namespace mirage::linalg {

/**
 * Coefficients of det(xI - M) = x^4 + c3 x^3 + c2 x^2 + c1 x + c0
 * via Faddeev-LeVerrier.
 */
std::array<Complex, 4> characteristicPolynomial(const Mat4 &m);

/**
 * All four eigenvalues of a 4x4 complex matrix (with multiplicity) via
 * Durand-Kerner iteration on the characteristic polynomial. Accurate to
 * ~1e-12 for well-scaled inputs such as unitaries.
 */
std::array<Complex, 4> eigenvalues4(const Mat4 &m);

/** Real symmetric 4x4 matrix stored densely. */
struct Sym4
{
    std::array<double, 16> a{};

    double &operator()(int r, int c) { return a[size_t(4 * r + c)]; }
    const double &operator()(int r, int c) const
    {
        return a[size_t(4 * r + c)];
    }
};

/** Result of a real symmetric eigendecomposition m = V diag(w) V^T. */
struct SymEig4
{
    std::array<double, 4> values{};
    /** Columns are eigenvectors; orthogonal with det +1 not guaranteed. */
    Sym4 vectors{};
};

/** Cyclic Jacobi diagonalization of a real symmetric 4x4 matrix. */
SymEig4 jacobiEigen4(const Sym4 &m);

/**
 * Simultaneously diagonalize two commuting real symmetric matrices:
 * returns orthogonal V with V^T a V and V^T b V both diagonal.
 * Diagonalizes a first, then runs Jacobi on b restricted to each
 * (near-)degenerate eigenspace of a.
 */
Sym4 simultaneousDiagonalize(const Sym4 &a, const Sym4 &b,
                             double degeneracy_tol = 1e-9);

/** V^T m V for orthogonal V. */
Sym4 congruence(const Sym4 &v, const Sym4 &m);

/** Determinant of a real 4x4 matrix. */
double det4(const Sym4 &m);

} // namespace mirage::linalg

#endif // MIRAGE_LINALG_EIGEN_HH
