/**
 * @file
 * Fixed-size dense complex matrices (2x2 and 4x4) and vectors.
 *
 * Everything the Weyl-chamber, KAK, and decomposition machinery needs is
 * built on these two sizes, so they are simple stack-allocated aggregates
 * with value semantics instead of a general matrix library.
 */

#ifndef MIRAGE_LINALG_MATRIX_HH
#define MIRAGE_LINALG_MATRIX_HH

#include <array>
#include <complex>
#include <string>

namespace mirage::linalg {

using Complex = std::complex<double>;

inline constexpr double kPi = 3.14159265358979323846;

/** Dense 2x2 complex matrix, row-major. */
struct Mat2
{
    std::array<Complex, 4> a{};

    Complex &operator()(int r, int c) { return a[size_t(2 * r + c)]; }
    const Complex &operator()(int r, int c) const
    {
        return a[size_t(2 * r + c)];
    }

    static Mat2 identity();
    static Mat2 zero() { return Mat2{}; }

    Mat2 operator+(const Mat2 &o) const;
    Mat2 operator-(const Mat2 &o) const;
    Mat2 operator*(const Mat2 &o) const;
    Mat2 operator*(Complex s) const;

    Mat2 dagger() const;
    Mat2 transpose() const;
    Mat2 conj() const;
    Complex trace() const { return a[0] + a[3]; }
    Complex det() const { return a[0] * a[3] - a[1] * a[2]; }
};

/** Dense 4x4 complex matrix, row-major. */
struct Mat4
{
    std::array<Complex, 16> a{};

    Complex &operator()(int r, int c) { return a[size_t(4 * r + c)]; }
    const Complex &operator()(int r, int c) const
    {
        return a[size_t(4 * r + c)];
    }

    static Mat4 identity();
    static Mat4 zero() { return Mat4{}; }
    static Mat4 diag(Complex d0, Complex d1, Complex d2, Complex d3);

    Mat4 operator+(const Mat4 &o) const;
    Mat4 operator-(const Mat4 &o) const;
    Mat4 operator*(const Mat4 &o) const;
    Mat4 operator*(Complex s) const;

    Mat4 dagger() const;
    Mat4 transpose() const;
    Mat4 conj() const;
    Complex trace() const;
    /** Determinant via cofactor-free LU with partial pivoting. */
    Complex det() const;

    /** Frobenius norm of (this - o). */
    double distance(const Mat4 &o) const;
    /** Largest |entry| of (this - o). */
    double maxAbsDiff(const Mat4 &o) const;
    double frobeniusNorm() const;

    /** True when M M^dagger == I within tol. */
    bool isUnitary(double tol = 1e-9) const;

    std::string toString(int precision = 4) const;
};

/** Kronecker product of two 2x2 matrices: (a tensor b). */
Mat4 kron(const Mat2 &a, const Mat2 &b);

/** Pauli matrices and friends. */
Mat2 pauliX();
Mat2 pauliY();
Mat2 pauliZ();
Mat2 hadamard();

/** XX, YY, ZZ two-qubit Pauli products. */
Mat4 pauliXX();
Mat4 pauliYY();
Mat4 pauliZZ();

/**
 * Process fidelity between two 4x4 unitaries, insensitive to global phase:
 * |tr(A^dagger B)|^2 / 16. Equals 1 iff A == B up to phase.
 */
double processFidelity(const Mat4 &a, const Mat4 &b);

/**
 * Average gate fidelity for d=4: (d*Fpro + 1) / (d + 1) with
 * Fpro = |tr(A^dagger B)|^2 / d^2.
 */
double averageGateFidelity(const Mat4 &a, const Mat4 &b);

/**
 * Split a 4x4 tensor-product unitary into its 2x2 factors so that
 * kron(a, b) reproduces m up to global phase. Requires m to actually be a
 * tensor product; the residual is returned through *error if non-null.
 */
void factorTensorProduct(const Mat4 &m, Mat2 *a, Mat2 *b,
                         double *error = nullptr);

} // namespace mirage::linalg

#endif // MIRAGE_LINALG_MATRIX_HH
