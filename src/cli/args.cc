/**
 * @file
 * ArgumentParser implementation: table-driven option matching with
 * `--opt value` / `--opt=value` forms, `--` end-of-options, collected
 * positionals, and a --help renderer generated from the declarations.
 */

#include "cli/args.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mirage::cli {

ArgumentParser::ArgumentParser(std::string command, std::string synopsis)
    : command_(std::move(command)), synopsis_(std::move(synopsis))
{
}

void
ArgumentParser::addFlag(const std::string &name, const std::string &help)
{
    Spec s;
    s.name = name;
    s.help = help;
    specs_.push_back(std::move(s));
}

void
ArgumentParser::addOption(const std::string &name,
                          const std::string &valueName,
                          const std::string &defaultValue,
                          const std::string &help)
{
    Spec s;
    s.name = name;
    s.takesValue = true;
    s.valueName = valueName;
    s.value = defaultValue;
    s.help = help;
    specs_.push_back(std::move(s));
}

ArgumentParser::Spec *
ArgumentParser::findSpec(const std::string &name)
{
    for (auto &s : specs_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const ArgumentParser::Spec &
ArgumentParser::requireSpec(const std::string &name) const
{
    for (const auto &s : specs_) {
        if (s.name == name)
            return s;
    }
    panic("undeclared option '%s' queried", name.c_str());
}

void
ArgumentParser::parse(const std::vector<std::string> &args)
{
    bool optionsDone = false;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (optionsDone || arg.empty() || arg[0] != '-' || arg == "-") {
            positionals_.push_back(arg);
            continue;
        }
        if (arg == "--") {
            optionsDone = true;
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            continue;
        }

        std::string name = arg;
        std::string inlineValue;
        bool hasInline = false;
        if (size_t eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            inlineValue = arg.substr(eq + 1);
            hasInline = true;
        }

        Spec *spec = findSpec(name);
        if (!spec)
            throw UsageError("unknown option '" + name + "' for '" +
                             command_ + "' (see --help)");
        spec->seen = true;
        if (!spec->takesValue) {
            if (hasInline)
                throw UsageError("option '" + name +
                                 "' does not take a value");
            continue;
        }
        if (hasInline) {
            spec->value = inlineValue;
        } else {
            if (i + 1 >= args.size())
                throw UsageError("option '" + name + "' expects a value <" +
                                 spec->valueName + ">");
            spec->value = args[++i];
        }
    }
}

bool
ArgumentParser::flag(const std::string &name) const
{
    return requireSpec(name).seen;
}

const std::string &
ArgumentParser::option(const std::string &name) const
{
    return requireSpec(name).value;
}

bool
ArgumentParser::optionSeen(const std::string &name) const
{
    return requireSpec(name).seen;
}

int
ArgumentParser::intOption(const std::string &name) const
{
    const std::string &v = option(name);
    char *end = nullptr;
    long parsed = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0')
        throw UsageError("option '" + name + "' expects an integer, got '" +
                         v + "'");
    return int(parsed);
}

uint64_t
ArgumentParser::u64Option(const std::string &name) const
{
    const std::string &v = option(name);
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v.c_str(), &end, 0);
    if (v.empty() || *end != '\0')
        throw UsageError("option '" + name + "' expects an integer, got '" +
                         v + "'");
    return uint64_t(parsed);
}

std::string
ArgumentParser::helpText() const
{
    std::string out = "usage: mirage " + command_;
    if (!specs_.empty())
        out += " [options]";
    out += " " + synopsis_ + "\n\noptions:\n";
    for (const auto &s : specs_) {
        std::string left = "  " + s.name;
        if (s.takesValue) {
            left += " <" + s.valueName + ">";
        }
        if (left.size() < 26)
            left.resize(26, ' ');
        else
            left += "  ";
        out += left + s.help;
        if (s.takesValue && !s.value.empty())
            out += " (default: " + s.value + ")";
        out += "\n";
    }
    out += "  --help                  show this help\n";
    return out;
}

} // namespace mirage::cli
