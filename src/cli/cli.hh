/**
 * @file
 * The `mirage` command-line tool: subcommand dispatch and exit-code
 * discipline.
 *
 * Subcommands: `transpile` (full pipeline on arbitrary OpenQASM 2,
 * JSON or QASM output), `sweep` (runs a registered paper experiment
 * and writes a versioned JSON/CSV artifact), `report` (renders sweep
 * artifacts as markdown tables), plus `help`/`version`. run() is the
 * whole tool behind main(): it takes argv and the output/error
 * streams, never calls exit(), and returns 0 on success, 1 on runtime
 * errors (bad input files, malformed artifacts), 2 on usage errors --
 * so tests drive it in-process and scripts can branch on the code.
 */

#ifndef MIRAGE_CLI_CLI_HH
#define MIRAGE_CLI_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mirage::cli {

inline constexpr int kExitSuccess = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

/**
 * Run the tool on argv (without the program name). Normal output goes
 * to `out`, diagnostics to `err`; returns the process exit code.
 */
int run(const std::vector<std::string> &args, std::ostream &out,
        std::ostream &err);

} // namespace mirage::cli

#endif // MIRAGE_CLI_CLI_HH
