/**
 * @file
 * Declarative command-line argument parser for the `mirage` tool (no
 * third-party deps).
 *
 * Each subcommand declares its flags and value options up front; the
 * parser then handles `--opt value`, `--opt=value`, boolean flags,
 * `--` (end of options), positional operands, and renders a --help
 * page from the declarations. Errors are reported as messages (never
 * exit()/abort()), so the CLI keeps scripting-grade exit-code
 * discipline and tests can drive parsing in-process.
 */

#ifndef MIRAGE_CLI_ARGS_HH
#define MIRAGE_CLI_ARGS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mirage::cli {

/** Invalid command-line usage (maps to exit code 2). */
class UsageError : public std::runtime_error
{
  public:
    explicit UsageError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/**
 * Option/flag table plus parse state for one subcommand invocation.
 */
class ArgumentParser
{
  public:
    /** `command` and `synopsis` seed the --help page. */
    ArgumentParser(std::string command, std::string synopsis);

    /** Declare a boolean flag, e.g. addFlag("--lower", "..."). */
    void addFlag(const std::string &name, const std::string &help);
    /** Declare a value option, e.g. addOption("--seed", "N", "42", "..."). */
    void addOption(const std::string &name, const std::string &valueName,
                   const std::string &defaultValue, const std::string &help);

    /**
     * Parse argv (without the program/subcommand words). Throws
     * UsageError on unknown options, missing values, or malformed
     * integers requested later via intOption().
     */
    void parse(const std::vector<std::string> &args);

    /** True when a declared flag was present (or --help was seen). */
    bool flag(const std::string &name) const;
    bool helpRequested() const { return helpRequested_; }

    /** Value of a declared option (default when absent). */
    const std::string &option(const std::string &name) const;
    /** True when the user supplied the option explicitly. */
    bool optionSeen(const std::string &name) const;
    /** option() parsed as an integer; UsageError on garbage. */
    int intOption(const std::string &name) const;
    /** option() parsed as uint64 (seeds); UsageError on garbage. */
    uint64_t u64Option(const std::string &name) const;

    /** Operands left after option parsing, in order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** The rendered --help page. */
    std::string helpText() const;

  private:
    struct Spec
    {
        std::string name;
        bool takesValue = false;
        std::string valueName;
        std::string help;
        std::string value; ///< default, then parsed value
        bool seen = false;
    };

    Spec *findSpec(const std::string &name);
    const Spec &requireSpec(const std::string &name) const;

    std::string command_;
    std::string synopsis_;
    std::vector<Spec> specs_;
    std::vector<std::string> positionals_;
    bool helpRequested_ = false;
};

} // namespace mirage::cli

#endif // MIRAGE_CLI_ARGS_HH
