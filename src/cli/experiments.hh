/**
 * @file
 * The paper-reproduction experiment registry shared by the `mirage
 * sweep` subcommand and the bench_* binaries.
 *
 * Every reproducible figure/table of the paper (Figs. 8/10/11/12/13,
 * Tables I-III) is one named Experiment whose run() returns a
 * machine-readable JSON artifact: a versioned envelope (schemaVersion,
 * kind, experiment, title, paperRef) around resolved parameters, a
 * typed column list, data rows, and a summary. The CLI writes the
 * artifact to disk for CI archival/diffing; `mirage report` and the
 * bench binaries render the same artifact as a markdown table, so the
 * sweep logic lives in exactly one place.
 */

#ifndef MIRAGE_CLI_EXPERIMENTS_HH
#define MIRAGE_CLI_EXPERIMENTS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"

namespace mirage::decomp {
class EquivalenceLibrary;
}

namespace mirage::cli {

/** Version stamped into every artifact; bump on breaking layout. */
inline constexpr int kArtifactSchemaVersion = 1;
/** The `kind` tag of sweep artifacts. */
inline constexpr const char *kSweepArtifactKind = "mirage-sweep";

/**
 * User-tunable sweep knobs. -1 (or "" for cacheDir) means "use the
 * experiment's own default"; the resolved values are recorded in the
 * artifact's `parameters` object.
 */
struct SweepKnobs
{
    int seeds = -1;         ///< independent instances averaged
    int layoutTrials = -1;  ///< SABRE/MIRAGE layout trials
    int swapTrials = -1;    ///< routing repeats per layout
    int fwdBwd = -1;        ///< layout refinement rounds
    int threads = 1;        ///< trial-grid fan-out (0 = all cores)
    int mcIterations = -1;  ///< Monte-Carlo iterations (Table II)
    int suiteLimit = -1;    ///< first N Table III circuits (-1 = all)
    std::string cacheDir;   ///< equivalence-library cache dir ("" = off)
    /**
     * Committed fit catalog: "" auto-discovers ($MIRAGE_FIT_CATALOG,
     * then ./FIT_CATALOG.bin), "none" disables, anything else is an
     * explicit path. Lowering experiments (table3, mirror-*,
     * bench-lowering) warm-start their equivalence library from it.
     */
    std::string catalogPath;
};

/**
 * Knobs taken from the MIRAGE_BENCH_* environment (SEEDS, TRIALS,
 * SWAP_TRIALS, FWD_BWD, MC_ITERS); unset variables stay "experiment
 * default". The bench binaries use this so their historical env
 * interface keeps working on top of the registry.
 */
SweepKnobs knobsFromEnv();

/** Integer env knob with a fallback for unset variables. */
int envInt(const char *name, int fallback);

/** One registered experiment. */
struct Experiment
{
    std::string name;     ///< registry key, e.g. "table3"
    std::string artifact; ///< paper artifact, e.g. "Table III"
    std::string title;    ///< human title for reports
    std::string paperRef; ///< the paper's reference numbers
    /** Runs the experiment; returns columns/rows/summary/parameters. */
    std::function<json::Value(const SweepKnobs &)> run;
};

/** All registered experiments, in paper order. */
const std::vector<Experiment> &experimentRegistry();

/**
 * Fit the full catalog target set -- every decomposition the Table III
 * sweep (exact table3/fig13 config) and the mirror-rb/mirror-qv
 * families need, plus the standard preseed gates -- into one
 * equivalence library, cold (no catalog/cache load). saveCache of the
 * result IS the FIT_CATALOG.bin artifact; the build is deterministic,
 * so `mirage catalog check` can compare bytes against the committed
 * file.
 */
std::unique_ptr<decomp::EquivalenceLibrary>
buildCatalogLibrary(int threads);

/** Lookup by name; nullptr when unknown. */
const Experiment *findExperiment(const std::string &name);

/**
 * Run an experiment and wrap its result in the versioned artifact
 * envelope (schemaVersion/kind/experiment/title/paperRef + payload).
 */
json::Value runExperiment(const Experiment &e, const SweepKnobs &knobs);

/**
 * Check an artifact against the schema `mirage report` and CI rely on:
 * schemaVersion == kArtifactSchemaVersion, kind == "mirage-sweep", and
 * the required keys (experiment/title/parameters/columns/rows) with
 * well-formed columns ({key,label} objects) and object rows. On
 * failure returns false and sets *error.
 */
bool validateArtifact(const json::Value &artifact, std::string *error);

/**
 * Perf-trajectory gate for `mirage bench --check`: compare a freshly
 * produced `bench` artifact against a checked-in baseline. Fails (and
 * explains in *report) when the run parameters differ, a baseline
 * circuit is missing, or a deterministic work counter (heuristicEvals,
 * extSetBuilds) regressed -- wall times are never compared, so the
 * check is noise-free and runs on any machine.
 */
bool checkBenchCounters(const json::Value &current,
                        const json::Value &baseline, std::string *report);

/** Render an artifact as a GitHub-markdown section (table + summary). */
std::string renderMarkdown(const json::Value &artifact);

/** Render an artifact's rows as CSV (header = column keys). */
std::string renderCsv(const json::Value &artifact);

} // namespace mirage::cli

#endif // MIRAGE_CLI_EXPERIMENTS_HH
