/**
 * @file
 * Experiment registry implementation: one entry per reproducible paper
 * artifact, each returning a versioned JSON payload, plus the shared
 * renderers (markdown, CSV) and the schema validator. The aggregation
 * logic that used to live in bench/bench_util.hh (geomean depth over
 * seeds, baseline-vs-MIRAGE sweeps) lives here now, so the CLI and the
 * bench binaries drive identical code.
 */

#include "cli/experiments.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "bench_circuits/generators.hh"
#include "bench_circuits/mirror.hh"
#include "common/exec.hh"
#include "decomp/catalog.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "monodromy/scores.hh"
#include "topology/coupling.hh"

namespace mirage::cli {

int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atoi(v) : fallback;
}

namespace {

/** Knobs with every "experiment default" slot filled in. */
struct ResolvedKnobs
{
    int seeds;
    int layoutTrials;
    int swapTrials;
    int fwdBwd;
    int threads;
    int mcIterations;
    std::string cacheDir;
    std::string catalogPath; ///< RESOLVED path ("" = no catalog)
};

ResolvedKnobs
resolve(const SweepKnobs &k, int seeds, int trials, int swapTrials,
        int fwdBwd, int mcIterations = 300)
{
    ResolvedKnobs r;
    r.seeds = k.seeds >= 0 ? k.seeds : seeds;
    r.layoutTrials = k.layoutTrials >= 0 ? k.layoutTrials : trials;
    r.swapTrials = k.swapTrials >= 0 ? k.swapTrials : swapTrials;
    r.fwdBwd = k.fwdBwd >= 0 ? k.fwdBwd : fwdBwd;
    r.threads = k.threads;
    r.mcIterations = k.mcIterations >= 0 ? k.mcIterations : mcIterations;
    r.cacheDir = k.cacheDir;
    r.catalogPath = decomp::resolveCatalogPath(k.catalogPath);
    return r;
}

json::Value
parametersJson(const ResolvedKnobs &k, bool withMc = false)
{
    json::Value p = json::Value::object();
    p.set("seeds", k.seeds);
    p.set("layoutTrials", k.layoutTrials);
    p.set("swapTrials", k.swapTrials);
    p.set("forwardBackwardPasses", k.fwdBwd);
    p.set("threads", k.threads);
    if (withMc)
        p.set("mcIterations", k.mcIterations);
    if (!k.cacheDir.empty())
        p.set("cacheDir", k.cacheDir);
    return p;
}

/** Column descriptor: key into the row objects + table label. */
json::Value
column(const char *key, const char *label, int digits = -1,
       bool sci = false)
{
    json::Value c = json::Value::object();
    c.set("key", key);
    c.set("label", label);
    if (digits >= 0)
        c.set("digits", digits);
    if (sci)
        c.set("sci", true);
    return c;
}

mirage_pass::TranspileOptions
sweepOptions(mirage_pass::Flow flow, uint64_t seed, const ResolvedKnobs &k)
{
    mirage_pass::TranspileOptions o;
    o.flow = flow;
    o.layoutTrials = k.layoutTrials;
    o.swapTrials = k.swapTrials;
    o.forwardBackwardPasses = k.fwdBwd;
    // The paper's suite is selected to need routing; skip the VF2
    // short-circuit so linear-interaction circuits are routed too.
    o.tryVf2 = false;
    o.seed = seed;
    o.threads = k.threads;
    return o;
}

/** Aggregated transpile statistics over several seeds (geometric mean
 * for depth as in the paper, arithmetic for counters). */
struct SweepStats
{
    double depth = 0;
    double depthPulses = 0;
    double totalPulses = 0;
    double swaps = 0;
    double mirrorRate = 0;
};

SweepStats
runSweep(const std::string &bench_name,
         const topology::CouplingMap &coupling, mirage_pass::Flow flow,
         const ResolvedKnobs &knobs, int fixed_aggression = -1)
{
    SweepStats s;
    double log_depth = 0;
    for (int i = 0; i < knobs.seeds; ++i) {
        auto circ = bench::benchmarkByName(bench_name).make();
        auto opts = sweepOptions(flow, 0x9000 + 131 * uint64_t(i), knobs);
        opts.fixedAggression = fixed_aggression;
        auto res = mirage_pass::transpile(circ, coupling, opts);
        log_depth += std::log(std::max(res.metrics.depth, 1e-9));
        s.depthPulses += res.metrics.depthPulses;
        s.totalPulses += res.metrics.totalPulses;
        s.swaps += res.swapsAdded;
        s.mirrorRate += res.mirrorAcceptRate();
    }
    s.depth = std::exp(log_depth / knobs.seeds);
    s.depthPulses /= knobs.seeds;
    s.totalPulses /= knobs.seeds;
    s.swaps /= knobs.seeds;
    s.mirrorRate /= knobs.seeds;
    return s;
}

double
pct(double base, double now)
{
    return base > 0 ? 100.0 * (base - now) / base : 0.0;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
cacheFilePath(const std::string &dir, int root_degree)
{
    return dir + "/eqlib-root" + std::to_string(root_degree) + ".cache";
}

/** Load a shared equivalence-library cache when a cache dir is set. */
void
loadLibraryCache(decomp::EquivalenceLibrary &lib, const std::string &dir)
{
    if (!dir.empty())
        lib.loadCacheFile(cacheFilePath(dir, lib.rootDegree()));
}

/** Persist the library cache (creating the directory) when enabled. */
void
saveLibraryCache(const decomp::EquivalenceLibrary &lib,
                 const std::string &dir)
{
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    lib.saveCacheFile(cacheFilePath(dir, lib.rootDegree()));
}

/** How a lowering experiment obtained its equivalence library. */
struct CatalogUse
{
    std::string path; ///< resolved catalog path ("" = none in play)
    bool loaded = false;
    size_t entries = 0;
    std::string message; ///< diagnostic when a resolved path failed
};

/**
 * Library for a lowering experiment: warm-started from the resolved
 * catalog when one is available (preseeding skipped -- the catalog
 * already contains the standard gates), preseeded cold otherwise. A
 * catalog that resolves but fails to load falls back to a cold library
 * and carries the load diagnostic in `use`.
 */
std::unique_ptr<decomp::EquivalenceLibrary>
makeLibrary(int root_degree, const ResolvedKnobs &knobs, CatalogUse *use)
{
    CatalogUse u;
    u.path = knobs.catalogPath;
    if (!u.path.empty()) {
        auto lib = std::make_unique<decomp::EquivalenceLibrary>(
            root_degree, /*preseed=*/false);
        auto res = lib->loadCacheFileDetailed(u.path);
        if (res.status == decomp::EquivalenceLibrary::CacheLoadStatus::Ok) {
            u.loaded = true;
            u.entries = res.entriesLoaded;
            if (use)
                *use = u;
            return lib;
        }
        u.message = res.message;
    }
    if (use)
        *use = u;
    return std::make_unique<decomp::EquivalenceLibrary>(root_degree);
}

/** Record catalog usage in an artifact's summary object. */
void
setCatalogSummary(json::Value &summary, const CatalogUse &use)
{
    summary.set("catalogPath", use.path);
    summary.set("catalogLoaded", use.loaded);
    summary.set("catalogEntries", uint64_t(use.entries));
    if (!use.message.empty())
        summary.set("catalogError", use.message);
}

// --- experiments ------------------------------------------------------------

/** Fig. 8: TwoLocal(full, 4q) on a 4-qubit line, baseline vs MIRAGE. */
json::Value
runFig8(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 8, 4, 2);
    auto circ = bench::twoLocalFull(4, 1, 7);
    auto line = topology::CouplingMap::line(4);

    json::Value rows = json::Value::array();
    json::Value gates = json::Value::array();
    for (auto [label, flow] :
         {std::pair{"Qiskit-baseline", mirage_pass::Flow::SabreBaseline},
          std::pair{"MIRAGE", mirage_pass::Flow::MirageDepth}}) {
        auto res = mirage_pass::transpile(circ, line,
                                          sweepOptions(flow, 1, knobs));
        json::Value row = json::Value::object();
        row.set("flow", label);
        row.set("depthPulses", res.metrics.depthPulses);
        row.set("swaps", res.metrics.swapGates);
        row.set("mirrors", res.mirrorsAccepted);
        row.set("depth", res.metrics.depth);
        rows.push(std::move(row));
        if (flow == mirage_pass::Flow::MirageDepth) {
            for (const auto &g : res.routed.gates()) {
                if (!g.isTwoQubit())
                    continue;
                gates.push(g.name() + "(" + std::to_string(g.qubits[0]) +
                           "," + std::to_string(g.qubits[1]) + ")" +
                           (g.mirrored ? " [mirror]" : ""));
            }
        }
    }

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("flow", "flow"));
    cols.push(column("depthPulses", "pulses(sqiSW)", 1));
    cols.push(column("swaps", "swaps"));
    cols.push(column("mirrors", "mirrors"));
    cols.push(column("depth", "depth(iSWAP)", 2));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("mirageTwoQubitGates", std::move(gates));
    out.set("summary", std::move(summary));
    return out;
}

/** Fig. 10: fixed aggression levels vs baseline on four circuits. */
json::Value
runFig10(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 3, 12, 4, 2);
    auto grid = topology::CouplingMap::grid(6, 6);
    const char *names[] = {"wstate_n27", "bigadder_n18", "qft_n18",
                           "bv_n30"};

    json::Value rows = json::Value::array();
    for (const char *name : names) {
        json::Value row = json::Value::object();
        row.set("circuit", name);
        row.set("qiskit",
                runSweep(name, grid, mirage_pass::Flow::SabreBaseline,
                         knobs)
                    .depth);
        for (int a = 0; a <= 3; ++a) {
            std::string key("a");
            key.push_back(char('0' + a));
            row.set(key,
                    runSweep(name, grid, mirage_pass::Flow::MirageDepth,
                             knobs, a)
                        .depth);
        }
        row.set("mix",
                runSweep(name, grid, mirage_pass::Flow::MirageDepth, knobs)
                    .depth);
        rows.push(std::move(row));
    }

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("circuit", "circuit"));
    cols.push(column("qiskit", "qiskit", 1));
    for (int a = 0; a <= 3; ++a) {
        std::string key("a");
        key.push_back(char('0' + a));
        cols.push(column(key.c_str(), key.c_str(), 1));
    }
    cols.push(column("mix", "mix", 1));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    out.set("notes",
            "Average depth in iSWAP units on a 6x6 grid. No single "
            "aggression level wins everywhere, motivating the mixed "
            "5/45/45/5 distribution.");
    return out;
}

const std::vector<const char *> &
suiteCircuits()
{
    static const std::vector<const char *> names = {
        "qec9xz_n17",       "seca_n11",       "knn_n25",
        "swap_test_n25",    "qram_n20",       "qft_n18",
        "qftentangled_n16", "ae_n16",         "bigadder_n18",
        "qpeexact_n16",     "multiplier_n15", "portfolioqaoa_n16",
        "sat_n11",
    };
    return names;
}

/** Fig. 11: SWAP-count vs estimated-depth post-selection. */
json::Value
runFig11(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 3, 12, 4, 2);
    auto grid = topology::CouplingMap::grid(6, 6);

    json::Value rows = json::Value::array();
    double sum_swap_red = 0, sum_depth_red = 0, sum_gate_ratio = 0;
    int count = 0;
    for (const char *name : suiteCircuits()) {
        auto qiskit =
            runSweep(name, grid, mirage_pass::Flow::SabreBaseline, knobs);
        auto mswaps =
            runSweep(name, grid, mirage_pass::Flow::MirageSwaps, knobs);
        auto mdepth =
            runSweep(name, grid, mirage_pass::Flow::MirageDepth, knobs);
        double ds = pct(qiskit.depth, mswaps.depth);
        double dd = pct(qiskit.depth, mdepth.depth);
        json::Value row = json::Value::object();
        row.set("circuit", name);
        row.set("qiskit", qiskit.depth);
        row.set("mirageSwaps", mswaps.depth);
        row.set("mirageDepth", mdepth.depth);
        row.set("swapSelRed", ds);
        row.set("depthSelRed", dd);
        rows.push(std::move(row));
        sum_swap_red += ds;
        sum_depth_red += dd;
        sum_gate_ratio += pct(qiskit.totalPulses, mdepth.totalPulses);
        ++count;
    }

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("circuit", "circuit"));
    cols.push(column("qiskit", "qiskit", 1));
    cols.push(column("mirageSwaps", "mirage-swaps", 1));
    cols.push(column("mirageDepth", "mirage-depth", 1));
    cols.push(column("swapSelRed", "dS(%)", 1));
    cols.push(column("depthSelRed", "dD(%)", 1));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("avgDepthReductionSwapSel", sum_swap_red / count);
    summary.set("avgDepthReductionDepthSel", sum_depth_red / count);
    summary.set("avgExtraFromDepthSel",
                (sum_depth_red - sum_swap_red) / count);
    summary.set("avgTotalPulseChange", sum_gate_ratio / count);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Average depth in iSWAP units on a 6x6 grid; dS/dD are the "
            "reductions of MIRAGE post-selected on SWAPs/depth vs the "
            "baseline.");
    return out;
}

/** Fig. 12: end-to-end comparison on heavy-hex 57Q and the 6x6 grid. */
json::Value
runFig12(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 3, 12, 4, 2);

    json::Value rows = json::Value::array();
    json::Value summary = json::Value::object();
    for (const auto &topo : {topology::CouplingMap::heavyHex57(),
                             topology::CouplingMap::grid(6, 6)}) {
        double sum_d = 0, sum_g = 0, sum_s = 0;
        double wsum_d = 0, wsum_g = 0, wsum_s = 0;
        double wtot_d = 0, wtot_g = 0, wtot_s = 0;
        int count = 0;
        for (const char *name : suiteCircuits()) {
            auto q = runSweep(name, topo,
                              mirage_pass::Flow::SabreBaseline, knobs);
            auto m = runSweep(name, topo, mirage_pass::Flow::MirageDepth,
                              knobs);
            double dp = pct(q.depth, m.depth);
            double gp = pct(q.totalPulses, m.totalPulses);
            double sp = pct(q.swaps, m.swaps);
            json::Value row = json::Value::object();
            row.set("topology", topo.name());
            row.set("circuit", name);
            row.set("qiskitDepth", q.depth);
            row.set("mirageDepth", m.depth);
            row.set("depthRed", dp);
            row.set("qiskitPulses", q.totalPulses);
            row.set("miragePulses", m.totalPulses);
            row.set("pulseRed", gp);
            row.set("qiskitSwaps", q.swaps);
            row.set("mirageSwaps", m.swaps);
            row.set("mirrorRate", 100.0 * m.mirrorRate);
            rows.push(std::move(row));
            sum_d += dp;
            sum_g += gp;
            sum_s += sp;
            wsum_d += dp * q.depth;
            wtot_d += q.depth;
            wsum_g += gp * q.totalPulses;
            wtot_g += q.totalPulses;
            wsum_s += sp * q.swaps;
            wtot_s += q.swaps;
            ++count;
        }
        json::Value t = json::Value::object();
        t.set("avgDepthReduction", sum_d / count);
        t.set("avgPulseReduction", sum_g / count);
        t.set("avgSwapReduction", sum_s / count);
        t.set("weightedDepthReduction", wsum_d / wtot_d);
        t.set("weightedPulseReduction", wsum_g / wtot_g);
        t.set("weightedSwapReduction", wsum_s / wtot_s);
        summary.set(topo.name(), std::move(t));
    }

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("topology", "topology"));
    cols.push(column("circuit", "circuit"));
    cols.push(column("qiskitDepth", "Q.depth", 1));
    cols.push(column("mirageDepth", "M.depth", 1));
    cols.push(column("depthRed", "d%", 1));
    cols.push(column("qiskitPulses", "Q.pulse", 0));
    cols.push(column("miragePulses", "M.pulse", 0));
    cols.push(column("pulseRed", "g%", 1));
    cols.push(column("qiskitSwaps", "Q.swap", 1));
    cols.push(column("mirageSwaps", "M.swap", 1));
    cols.push(column("mirrorRate", "mirror%", 1));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    out.set("summary", std::move(summary));
    return out;
}

/** Fig. 13: suite transpile timing, serial vs parallel + lowering. */
json::Value
runFig13(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 8, 2, 2);
    const auto grid = topology::CouplingMap::grid(8, 8);

    std::vector<circuit::Circuit> circuits;
    for (const auto &b : bench::paperBenchmarks())
        circuits.push_back(b.make());

    auto opts = sweepOptions(mirage_pass::Flow::MirageDepth, 0xB3, knobs);

    // Warm the process-wide coverage/coordinate caches outside the
    // timed region (both runs then see the same warm state).
    mirage_pass::transpile(circuits.front(), grid, opts);

    opts.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    auto serial = mirage_pass::transpileMany(circuits, grid, opts);
    double serial_ms = millisSince(t0);

    opts.threads = 0; // all hardware threads
    t0 = std::chrono::steady_clock::now();
    auto parallel = mirage_pass::transpileMany(circuits, grid, opts);
    double parallel_ms = millisSince(t0);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical =
            circuit::Circuit::bitIdentical(serial[i].routed,
                                           parallel[i].routed) &&
            serial[i].metrics.depth == parallel[i].metrics.depth;

    // Lowering stage: cold library (numerical fits) vs warm rerun
    // (pure cache hits) over one shared equivalence library.
    opts.threads = knobs.threads;
    opts.lowerToBasis = true;
    decomp::EquivalenceLibrary lib(opts.rootDegree);
    loadLibraryCache(lib, knobs.cacheDir);
    opts.equivalenceLibrary = &lib;

    t0 = std::chrono::steady_clock::now();
    mirage_pass::transpileMany(circuits, grid, opts);
    double cold_ms = millisSince(t0);
    uint64_t cold_fits = lib.fitCount();

    t0 = std::chrono::steady_clock::now();
    auto warm = mirage_pass::transpileMany(circuits, grid, opts);
    double warm_ms = millisSince(t0);
    int warm_fits = 0;
    for (const auto &r : warm)
        warm_fits += r.translateStats.newFits;
    saveLibraryCache(lib, knobs.cacheDir);

    json::Value rows = json::Value::array();
    auto addRow = [&rows](const char *stage, double ms,
                          const std::string &detail) {
        json::Value row = json::Value::object();
        row.set("stage", stage);
        row.set("ms", ms);
        row.set("detail", detail);
        rows.push(std::move(row));
    };
    addRow("transpile-serial", serial_ms, "threads=1");
    addRow("transpile-parallel", parallel_ms,
           "threads=" + std::to_string(exec::defaultThreads()));
    addRow("lowering-cold", cold_ms,
           std::to_string(cold_fits) + " fits");
    addRow("lowering-warm", warm_ms,
           std::to_string(warm_fits) + " new fits");

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("stage", "stage"));
    cols.push(column("ms", "wall(ms)", 1));
    cols.push(column("detail", "detail"));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("parallelSpeedup",
                parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
    summary.set("loweringWarmSpeedup",
                warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    summary.set("outputsBitIdentical", identical);
    summary.set("hardwareThreads", exec::defaultThreads());
    out.set("summary", std::move(summary));
    out.set("notes",
            "Whole Table III suite on an 8x8 grid. Wall times vary by "
            "machine; outputsBitIdentical must always be true (the "
            "trial engine's determinism guarantee).");
    return out;
}

/** Tables I/II: Haar scores, exact or Monte-Carlo approximate. */
json::Value
runHaarTable(const SweepKnobs &userKnobs, bool approximate)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 0, 0, 0);

    json::Value params = json::Value::object();
    if (approximate)
        params.set("mcIterations", knobs.mcIterations);

    json::Value rows = json::Value::array();
    for (int n : {2, 3, 4}) {
        const monodromy::CoverageSet &cs =
            monodromy::coverageForRootIswap(n);
        monodromy::HaarScore plain, mirror;
        if (approximate) {
            monodromy::MonteCarloOptions opts;
            opts.iterations = knobs.mcIterations;
            opts.approximate = true;
            opts.mirrors = false;
            plain = monodromy::haarScoreMonteCarlo(cs, opts);
            opts.mirrors = true;
            opts.seed ^= 0x77;
            mirror = monodromy::haarScoreMonteCarlo(cs, opts);
        } else {
            plain = monodromy::haarScoreExact(cs, false);
            mirror = monodromy::haarScoreExact(cs, true);
        }
        json::Value row = json::Value::object();
        row.set("basis", std::to_string(n) + "-rt iSWAP");
        row.set("haar", plain.score);
        row.set("fidelity", plain.fidelity);
        row.set("mirrorHaar", mirror.score);
        row.set("mirrorFidelity", mirror.fidelity);
        rows.push(std::move(row));
    }

    json::Value out = json::Value::object();
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("basis", "basis"));
    cols.push(column("haar", "haar", 4));
    cols.push(column("fidelity", "fidelity", 4));
    cols.push(column("mirrorHaar", "mirror haar", 4));
    cols.push(column("mirrorFidelity", "mirror fid", 4));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    out.set("notes", approximate
                         ? "Algorithm 1 Monte Carlo with approximate "
                           "decomposition accepted when it improves "
                           "total fidelity."
                         : "Exact decomposition scores by polytope "
                           "integration.");
    return out;
}

/** Table III: suite inventory + measured sqrt(iSWAP) pulse counts. */
json::Value
runTable3(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 8, 2, 2);
    const auto grid = topology::CouplingMap::grid(8, 8);

    const auto &suite = bench::paperBenchmarks();
    size_t limit = userKnobs.suiteLimit >= 0
                       ? std::min(size_t(userKnobs.suiteLimit), suite.size())
                       : suite.size();
    std::vector<circuit::Circuit> circuits;
    for (size_t i = 0; i < limit; ++i)
        circuits.push_back(suite[i].make());

    auto opts = sweepOptions(mirage_pass::Flow::MirageDepth, 0xB3, knobs);
    opts.lowerToBasis = true;
    CatalogUse catalog;
    auto lib = makeLibrary(opts.rootDegree, knobs, &catalog);
    loadLibraryCache(*lib, knobs.cacheDir);
    opts.equivalenceLibrary = lib.get();

    auto t0 = std::chrono::steady_clock::now();
    auto results = mirage_pass::transpileMany(circuits, grid, opts);
    double elapsed_ms = millisSince(t0);
    saveLibraryCache(*lib, knobs.cacheDir);

    json::Value rows = json::Value::array();
    bool all_equal = true;
    double worst_inf = 0;
    int new_fits = 0;
    uint64_t fit_evals = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &b = suite[i];
        const auto &r = results[i];
        json::Value row = json::Value::object();
        row.set("name", b.name);
        row.set("class", b.klass);
        row.set("qubits", b.qubits);
        row.set("paperTwoQ", b.paperTwoQ);
        row.set("rawTwoQ", circuits[i].twoQubitGateCount());
        row.set("cxEquiv", bench::cxEquivalentCount(circuits[i]));
        row.set("estPulses", r.metrics.totalPulses);
        row.set("measPulses", r.loweredMetrics.totalPulses);
        row.set("measDepthPulses", r.loweredMetrics.depthPulses);
        row.set("fits", r.translateStats.newFits);
        row.set("worstInfidelity", r.translateStats.worstInfidelity);
        rows.push(std::move(row));
        all_equal = all_equal &&
                    r.metrics.totalPulses == r.loweredMetrics.totalPulses;
        worst_inf =
            std::max(worst_inf, r.translateStats.worstInfidelity);
        new_fits += r.translateStats.newFits;
        fit_evals += r.translateStats.fitEvaluations;
    }

    json::Value out = json::Value::object();
    out.set("parameters", parametersJson(knobs));
    json::Value cols = json::Value::array();
    cols.push(column("name", "name"));
    cols.push(column("class", "class"));
    cols.push(column("qubits", "qubits"));
    cols.push(column("paperTwoQ", "paper 2Q"));
    cols.push(column("rawTwoQ", "raw 2Q"));
    cols.push(column("cxEquiv", "cx-equiv"));
    cols.push(column("estPulses", "est.pulse", 0));
    cols.push(column("measPulses", "meas.pulse", 0));
    cols.push(column("measDepthPulses", "meas.depth", 0));
    cols.push(column("fits", "fits"));
    cols.push(column("worstInfidelity", "worst-inf", -1, true));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("measuredEqualsEstimated", all_equal);
    summary.set("worstInfidelity", worst_inf);
    summary.set("elapsedMs", elapsed_ms);
    summary.set("fits", uint64_t(lib->fitCount()));
    summary.set("newFits", new_fits);
    summary.set("fitEvaluations", fit_evals);
    summary.set("cachedDecompositions", uint64_t(lib->cacheSize()));
    setCatalogSummary(summary, catalog);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Routed on an 8x8 grid with MirageDepth flow, then lowered "
            "to sqrt(iSWAP) pulses over one shared equivalence library. "
            "est.pulse is the polytope estimate, meas.pulse the count "
            "measured on the emitted circuit; the paper counts "
            "QASMBench entries natively (raw 2Q) and MQTBench entries "
            "after CX decomposition (cx-equiv).");
    return out;
}

/**
 * bench-lowering: the lowering cold-start perf trajectory. Routes the
 * Table III suite once, then translates every routed circuit twice --
 * cold (fresh preseeded library, every block numerically fitted) and
 * warm (library restored from the committed FIT_CATALOG.bin; falls
 * back to a second pass over the cold library when no catalog
 * resolves). Wall times are recorded but never gated; the
 * deterministic counters (fits, fitEvaluations, warmNewFits,
 * warmFitEvaluations -- pure functions of the circuits and the
 * FMA-free fit pipeline) are gated by `mirage bench --experiment
 * bench-lowering --check BENCH_lowering.json` in CI, so the repo can
 * never silently go cold again.
 */
json::Value
runBenchLowering(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 8, 2, 2);
    const auto grid = topology::CouplingMap::grid(8, 8);

    const auto &suite = bench::paperBenchmarks();
    size_t limit = userKnobs.suiteLimit >= 0
                       ? std::min(size_t(userKnobs.suiteLimit), suite.size())
                       : suite.size();
    std::vector<circuit::Circuit> circuits;
    for (size_t i = 0; i < limit; ++i)
        circuits.push_back(suite[i].make());

    // Route once (table3's exact config); lowering is then isolated
    // from routing cost and measured per circuit, sequentially, so the
    // counters cannot be split across threads.
    auto opts = sweepOptions(mirage_pass::Flow::MirageDepth, 0xB3, knobs);
    auto routed = mirage_pass::transpileMany(circuits, grid, opts);

    decomp::EquivalenceLibrary cold(2);
    std::vector<decomp::TranslateStats> cold_stats(routed.size());
    std::vector<double> cold_ms(routed.size());
    for (size_t i = 0; i < routed.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        cold.translate(routed[i].routed, &cold_stats[i]);
        cold_ms[i] = millisSince(t0);
    }

    CatalogUse catalog;
    catalog.path = knobs.catalogPath;
    std::unique_ptr<decomp::EquivalenceLibrary> warm_lib;
    if (!catalog.path.empty()) {
        warm_lib = std::make_unique<decomp::EquivalenceLibrary>(
            2, /*preseed=*/false);
        auto res = warm_lib->loadCacheFileDetailed(catalog.path);
        if (res.status == decomp::EquivalenceLibrary::CacheLoadStatus::Ok) {
            catalog.loaded = true;
            catalog.entries = res.entriesLoaded;
        } else {
            catalog.message = res.message;
            warm_lib.reset();
        }
    }
    decomp::EquivalenceLibrary &warm = warm_lib ? *warm_lib : cold;

    std::vector<decomp::TranslateStats> warm_stats(routed.size());
    std::vector<double> warm_ms(routed.size());
    for (size_t i = 0; i < routed.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        warm.translate(routed[i].routed, &warm_stats[i]);
        warm_ms[i] = millisSince(t0);
    }

    json::Value rows = json::Value::array();
    double total_cold = 0, total_warm = 0;
    int warm_new_fits = 0;
    for (size_t i = 0; i < routed.size(); ++i) {
        json::Value row = json::Value::object();
        row.set("name", suite[i].name);
        row.set("qubits", suite[i].qubits);
        row.set("blocks", cold_stats[i].blocksTranslated);
        row.set("fits", cold_stats[i].newFits);
        row.set("fitEvaluations", cold_stats[i].fitEvaluations);
        row.set("coldMs", cold_ms[i]);
        row.set("warmNewFits", warm_stats[i].newFits);
        row.set("warmFitEvaluations", warm_stats[i].fitEvaluations);
        row.set("warmMs", warm_ms[i]);
        rows.push(std::move(row));
        total_cold += cold_ms[i];
        total_warm += warm_ms[i];
        warm_new_fits += warm_stats[i].newFits;
    }

    json::Value out = json::Value::object();
    json::Value params = parametersJson(knobs);
    params.set("circuits", uint64_t(routed.size()));
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("name", "name"));
    cols.push(column("qubits", "qubits"));
    cols.push(column("blocks", "blocks"));
    cols.push(column("fits", "fits"));
    cols.push(column("fitEvaluations", "fit-evals"));
    cols.push(column("coldMs", "cold(ms)", 1));
    cols.push(column("warmNewFits", "warm-fits"));
    cols.push(column("warmFitEvaluations", "warm-evals"));
    cols.push(column("warmMs", "warm(ms)", 1));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("loweringColdMs", total_cold);
    summary.set("loweringWarmMs", total_warm);
    summary.set("warmSpeedup", total_warm > 0 ? total_cold / total_warm : 0.0);
    summary.set("warmNewFits", warm_new_fits);
    summary.set("totalFits", uint64_t(cold.fitCount()));
    summary.set("totalFitEvaluations", uint64_t(cold.fitEvaluations()));
    setCatalogSummary(summary, catalog);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Table III suite routed once on an 8x8 grid, then lowered "
            "cold (fresh library, every block fitted) vs warm (library "
            "restored from the committed FIT_CATALOG.bin). Wall times "
            "are machine-dependent and never gated; fits/fitEvaluations/"
            "warmNewFits are deterministic and CI-gated. warmNewFits "
            "must be 0: a nonzero value means the committed catalog no "
            "longer covers the suite.");
    return out;
}

/**
 * Routing perf trajectory (`mirage bench`): the Table III suite routed
 * with the MIRAGE flow, reporting per-circuit routing-phase wall time
 * (threads=1 and all cores) next to the deterministic hot-path work
 * counters. The counters are pure functions of (circuit, options,
 * seed) -- machine-, build-, and thread-invariant -- so the committed
 * BENCH_fig13.json baseline gives CI a noise-free regression gate
 * while the wall times track the actual speedups per machine.
 */
json::Value
runBenchRouting(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 8, 2, 2);
    const auto grid = topology::CouplingMap::grid(8, 8);
    const auto &suite = bench::paperBenchmarks();
    const size_t limit =
        userKnobs.suiteLimit >= 0
            ? std::min(size_t(userKnobs.suiteLimit), suite.size())
            : suite.size();

    json::Value rows = json::Value::array();
    bool identical = true;
    double serial_ms = 0, parallel_ms = 0;
    uint64_t total_evals = 0, total_stalls = 0;
    for (size_t i = 0; i < limit; ++i) {
        auto circ = suite[i].make();
        auto opts =
            sweepOptions(mirage_pass::Flow::MirageDepth, 0xF13, knobs);
        opts.threads = 1;
        auto serial = mirage_pass::transpile(circ, grid, opts);
        opts.threads = 0; // all hardware threads
        auto parallel = mirage_pass::transpile(circ, grid, opts);
        identical = identical &&
                    circuit::Circuit::bitIdentical(serial.routed,
                                                   parallel.routed) &&
                    serial.routingCounters == parallel.routingCounters;

        const auto &c = serial.routingCounters;
        json::Value row = json::Value::object();
        row.set("name", suite[i].name);
        row.set("qubits", suite[i].qubits);
        row.set("serialMs", serial.routingMs);
        row.set("parallelMs", parallel.routingMs);
        row.set("swaps", serial.swapsAdded);
        row.set("stallSteps", c.stallSteps);
        row.set("swapCandidates", c.swapCandidates);
        row.set("heuristicEvals", c.heuristicEvals);
        row.set("evalsPerStall", c.evalsPerStall());
        row.set("mirrorOutlooks", c.mirrorOutlooks);
        row.set("extSetBuilds", c.extSetBuilds);
        row.set("extSetReuses", c.extSetReuses);
        rows.push(std::move(row));

        serial_ms += serial.routingMs;
        parallel_ms += parallel.routingMs;
        total_evals += c.heuristicEvals;
        total_stalls += c.stallSteps;
    }

    json::Value out = json::Value::object();
    json::Value params = parametersJson(knobs);
    params.set("circuits", uint64_t(limit));
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("name", "name"));
    cols.push(column("qubits", "qubits"));
    cols.push(column("serialMs", "route(ms,1T)", 1));
    cols.push(column("parallelMs", "route(ms,NT)", 1));
    cols.push(column("swaps", "swaps"));
    cols.push(column("stallSteps", "stalls"));
    cols.push(column("heuristicEvals", "h-evals"));
    cols.push(column("evalsPerStall", "evals/stall", 2));
    cols.push(column("extSetBuilds", "ext-builds"));
    cols.push(column("extSetReuses", "ext-reuses"));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("routingSerialMs", serial_ms);
    summary.set("routingParallelMs", parallel_ms);
    summary.set("parallelSpeedup",
                parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
    summary.set("heuristicEvals", total_evals);
    summary.set("evalsPerStall",
                total_stalls ? double(total_evals) / double(total_stalls)
                             : 0.0);
    summary.set("outputsBitIdentical", identical);
    summary.set("hardwareThreads", exec::defaultThreads());
    out.set("summary", std::move(summary));
    out.set("notes",
            "Routing-phase wall time of the Table III suite on an 8x8 "
            "grid (MirageDepth flow), threads=1 vs all cores, with the "
            "deterministic hot-path counters. Wall times vary by "
            "machine; the counters and routed circuits must not (the "
            "`mirage bench --check` CI gate compares counters only).");
    return out;
}

/**
 * Large-device routing gate (fig12 at Osprey/Condor scale): route a
 * slice of the Table III suite on the 433/1121-qubit heavy-hex and
 * 33x33-grid topologies, which build in sparse mode (CSR + BFS-on-demand
 * distance rows; no O(n^2) tables). The artifact records the same
 * deterministic hot-path counters as the `bench` experiment -- so
 * `mirage bench --experiment fig12-large --check` gates regressions the
 * same way -- plus per-topology memory accounting (CSR + landmarks +
 * per-thread row cache vs the dense-equivalent flat tables) and an
 * admissibility audit of the ALT landmark lower bounds. The
 * `memorySubQuadratic` summary flag is the CI memory gate.
 */
json::Value
runFig12Large(const SweepKnobs &userKnobs)
{
    // Small knob defaults: a single routed pass per direction is enough
    // for the counters/memory gate, and keeps the 1121-qubit sweep in CI
    // seconds territory.
    ResolvedKnobs knobs = resolve(userKnobs, 1, 2, 1, 1);
    // Pin the per-thread row-cache budget so the memory audit is a
    // fixed, reproducible bound (128 rows ~= 0.5 MB at n=1121); restored
    // to the library default afterwards.
    constexpr size_t kAuditRowCacheCapacity = 128;
    topology::CouplingMap::setRowCacheCapacity(kAuditRowCacheCapacity);
    const std::vector<topology::CouplingMap> devices = {
        topology::CouplingMap::heavyHex433(),
        topology::CouplingMap::heavyHex1121(),
        topology::CouplingMap::grid(33, 33),
    };
    // Table III circuits spanning a ~6x range of 2Q gate count, so
    // ms-per-gate across rows tracks route-time scaling in gate count.
    const std::vector<std::string> circuits = {
        "wstate_n27", "knn_n25", "multiplier_n15", "qft_n18"};
    const size_t limit =
        userKnobs.suiteLimit >= 0
            ? std::min(size_t(userKnobs.suiteLimit), circuits.size())
            : circuits.size();

    json::Value rows = json::Value::array();
    json::Value topo_summaries = json::Value::array();
    bool all_sub_quadratic = true;
    bool all_admissible = true;
    bool all_near_linear = true;
    std::vector<std::pair<size_t, double>> ratio_by_n;
    for (const auto &device : devices) {
        const size_t n = size_t(device.numQubits());
        topology::CouplingMap::clearRowCache();
        // Smallest/largest circuit by 2Q count on this device, for the
        // route-time-vs-gate-count growth comparison.
        int gates_min = 0, gates_max = 0;
        double ms_at_min = 0, ms_at_max = 0;
        for (size_t i = 0; i < limit; ++i) {
            const auto &info = bench::benchmarkByName(circuits[i]);
            auto circ = info.make();
            auto opts =
                sweepOptions(mirage_pass::Flow::MirageDepth, 0xF12, knobs);
            // Serial: the memory audit below reads the calling thread's
            // row cache, which a trial-grid fan-out would bypass.
            opts.threads = 1;
            auto res = mirage_pass::transpile(circ, device, opts);

            const auto &c = res.routingCounters;
            const double ms_per_gate =
                info.paperTwoQ > 0 ? res.routingMs / info.paperTwoQ : 0.0;
            json::Value row = json::Value::object();
            row.set("name", info.name + "@" + device.name());
            row.set("topology", device.name());
            row.set("deviceQubits", uint64_t(n));
            row.set("circuitQubits", info.qubits);
            row.set("gates2q", info.paperTwoQ);
            row.set("routeMs", res.routingMs);
            row.set("msPerGate2q", ms_per_gate);
            row.set("swaps", res.swapsAdded);
            row.set("stallSteps", c.stallSteps);
            row.set("heuristicEvals", c.heuristicEvals);
            row.set("extSetBuilds", c.extSetBuilds);
            row.set("extSetReuses", c.extSetReuses);
            rows.push(std::move(row));

            if (gates_min == 0 || info.paperTwoQ < gates_min) {
                gates_min = info.paperTwoQ;
                ms_at_min = res.routingMs;
            }
            if (info.paperTwoQ > gates_max) {
                gates_max = info.paperTwoQ;
                ms_at_max = res.routingMs;
            }
        }

        // Memory audit: everything the sparse device held resident while
        // routing the whole slice, vs the flat tables dense mode would
        // have materialized. Captured before the landmark audit below so
        // its row fetches don't inflate the routing numbers.
        const auto cache = topology::CouplingMap::rowCacheStats();
        const size_t resident = device.derivedTableBytes() + cache.bytes;
        const size_t dense_equiv =
            n * n * (sizeof(int) + sizeof(uint8_t));
        const bool sub_quadratic = 2 * resident < dense_equiv;
        all_sub_quadratic = all_sub_quadratic && sub_quadratic;

        // Landmark audit: the ALT bound must be admissible (never above
        // the exact BFS distance) on a deterministic pair sample.
        bool admissible = true;
        double ratio_sum = 0;
        int sampled = 0;
        for (int s = 0; s < 500; ++s) {
            const int a = int((uint64_t(s) * 97) % n);
            const int b = int((uint64_t(s) * 193 + 41) % n);
            if (a == b)
                continue;
            const int exact = device.distance(a, b);
            const int bound = device.distanceLowerBound(a, b);
            admissible = admissible && bound >= 0 && bound <= exact;
            if (exact > 0) {
                ratio_sum += double(bound) / double(exact);
                ++sampled;
            }
        }
        all_admissible = all_admissible && admissible;

        // Near-linear route time in gate count: going from the smallest
        // to the largest circuit, wall time must not grow more than 1.5x
        // the gate-count growth (in practice it grows slower -- per-pass
        // fixed costs amortize). Informational headroom, not a hard CI
        // gate: wall times vary by machine.
        const double gate_growth =
            gates_min > 0 ? double(gates_max) / gates_min : 0.0;
        const double time_growth =
            ms_at_min > 0 ? ms_at_max / ms_at_min : 0.0;
        const bool near_linear =
            gate_growth > 0 && time_growth <= 1.5 * gate_growth;
        all_near_linear = all_near_linear && near_linear;
        ratio_by_n.emplace_back(
            n, dense_equiv ? double(resident) / double(dense_equiv) : 0.0);

        json::Value ts = json::Value::object();
        ts.set("topology", device.name());
        ts.set("qubits", uint64_t(n));
        ts.set("edges", uint64_t(device.edges().size()));
        ts.set("sparse", device.sparse());
        ts.set("derivedTableBytes", uint64_t(device.derivedTableBytes()));
        ts.set("rowCacheBytes", uint64_t(cache.bytes));
        ts.set("rowCacheRows", uint64_t(cache.rows));
        ts.set("rowCacheHits", cache.hits);
        ts.set("rowCacheMisses", cache.misses);
        ts.set("rowCacheEvictions", cache.evictions);
        ts.set("denseEquivalentBytes", uint64_t(dense_equiv));
        ts.set("memoryRatio",
               dense_equiv ? double(resident) / double(dense_equiv) : 0.0);
        ts.set("memorySubQuadratic", sub_quadratic);
        ts.set("landmarkBoundMeanRatio",
               sampled ? ratio_sum / sampled : 0.0);
        ts.set("landmarksAdmissible", admissible);
        ts.set("routeTimeGrowth", time_growth);
        ts.set("gateCountGrowth", gate_growth);
        ts.set("routeTimeNearLinearInGates", near_linear);
        topo_summaries.push(std::move(ts));
    }
    // The point of sparse mode: resident memory relative to dense must
    // FALL as devices grow (O(n + m) vs O(n^2)). Compare the smallest
    // device against the largest.
    std::sort(ratio_by_n.begin(), ratio_by_n.end());
    const bool ratio_shrinks =
        ratio_by_n.size() < 2 ||
        ratio_by_n.back().second < ratio_by_n.front().second;
    // Restore the library-default cache budget for any later experiment
    // in this process.
    topology::CouplingMap::clearRowCache();
    topology::CouplingMap::setRowCacheCapacity(256);

    json::Value out = json::Value::object();
    json::Value params = parametersJson(knobs);
    params.set("circuits", uint64_t(limit));
    params.set("rowCacheCapacity", uint64_t(kAuditRowCacheCapacity));
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("name", "name"));
    cols.push(column("deviceQubits", "device-q"));
    cols.push(column("gates2q", "2q-gates"));
    cols.push(column("routeMs", "route(ms)", 1));
    cols.push(column("msPerGate2q", "ms/2q-gate", 3));
    cols.push(column("swaps", "swaps"));
    cols.push(column("stallSteps", "stalls"));
    cols.push(column("heuristicEvals", "h-evals"));
    cols.push(column("extSetBuilds", "ext-builds"));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("topologies", std::move(topo_summaries));
    summary.set("memorySubQuadratic", all_sub_quadratic);
    summary.set("memoryRatioShrinksWithN", ratio_shrinks);
    summary.set("landmarksAdmissible", all_admissible);
    summary.set("routeTimeNearLinearInGates", all_near_linear);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Table III circuits routed on 433/1121-qubit heavy-hex and a "
            "33x33 grid, all in sparse topology mode (CSR adjacency + "
            "BFS-on-demand distance rows behind a per-thread LRU cache; "
            "no O(n^2) tables). memorySubQuadratic asserts resident "
            "topology bytes (tables + row cache) stay under half of the "
            "dense-equivalent flat tables; msPerGate2q tracks route-time "
            "scaling in gate count. Counters are deterministic and gated "
            "by `mirage bench --experiment fig12-large --check`; wall "
            "times vary by machine and are never compared.");
    return out;
}

// --- mirror-circuit verification -------------------------------------------

/**
 * Success-probability tolerance for a lowered circuit, derived the same
 * way as the test oracle's loweringTolerance (tests/support/
 * equivalence.hh): per-amplitude error is bounded by 1e-7 + 8 *
 * sum(sqrt(block infidelity)), and a probability |a|^2 can dip below 1
 * by at most twice the amplitude error. Capped at 0.5 so the threshold
 * always separates a working pipeline (~1) from a corrupted one
 * (~2^-width).
 */
double
loweredSuccessTolerance(double root_infidelity_sum)
{
    return std::min(0.5, 2.0 * (1e-7 + 8.0 * root_infidelity_sum));
}

/**
 * Self-verifying mirror-family sweep (mirror-RB or mirror-QV) on the
 * heavy-hex 57Q device -- widths the 6-qubit unitary oracle cannot
 * reach. Each instance is routed with the baseline and MIRAGE flows,
 * lowered to RootISWAP pulses, and the ideal bitstring's probability is
 * measured on BOTH the routed and the lowered circuit by sparse
 * simulation; `verified` requires routed ~exact and lowered within the
 * fit-error budget.
 */
json::Value
runMirrorFamily(const SweepKnobs &userKnobs, bool qv)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 4, 2, 1);
    const auto topo = topology::CouplingMap::heavyHex57();
    std::vector<int> widths =
        qv ? std::vector<int>{8, 10, 12} : std::vector<int>{8, 10, 14};
    if (userKnobs.suiteLimit >= 0 &&
        size_t(userKnobs.suiteLimit) < widths.size())
        widths.resize(size_t(userKnobs.suiteLimit));

    CatalogUse catalog;
    auto lib = makeLibrary(2, knobs, &catalog);
    loadLibraryCache(*lib, knobs.cacheDir);

    json::Value rows = json::Value::array();
    bool all_verified = true;
    double min_lowered = 1.0;
    for (int w : widths) {
        for (int i = 0; i < knobs.seeds; ++i) {
            const uint64_t gen_seed = 0xA11CE + 977 * uint64_t(i);
            auto mc = qv ? bench::mirrorQv(w, 4, gen_seed)
                         : bench::mirrorRb(w, 3, gen_seed);

            const uint64_t route_seed = 0x9000 + 131 * uint64_t(i);
            auto base = mirage_pass::transpile(
                mc.circuit, topo,
                sweepOptions(mirage_pass::Flow::SabreBaseline, route_seed,
                             knobs));
            auto opts = sweepOptions(mirage_pass::Flow::MirageDepth,
                                     route_seed, knobs);
            opts.lowerToBasis = true;
            opts.equivalenceLibrary = lib.get();
            auto res = mirage_pass::transpile(mc.circuit, topo, opts);

            const auto &l2p = res.final.logicalToPhysical();
            double routed_p = bench::mirrorSuccessProbability(
                res.routed, l2p, mc.bitstring);
            double lowered_p = bench::mirrorSuccessProbability(
                res.lowered, l2p, mc.bitstring);
            double tol = loweredSuccessTolerance(
                res.translateStats.rootInfidelitySum);
            bool verified =
                routed_p >= 1.0 - 1e-9 && lowered_p >= 1.0 - tol;
            all_verified = all_verified && verified;
            min_lowered = std::min(min_lowered, lowered_p);

            json::Value row = json::Value::object();
            row.set("circuit", mc.circuit.name());
            row.set("qubits", w);
            row.set("instance", i);
            row.set("baselineDepth", base.metrics.depth);
            row.set("mirageDepth", res.metrics.depth);
            row.set("depthRed", pct(base.metrics.depth, res.metrics.depth));
            row.set("swaps", res.swapsAdded);
            row.set("mirrors", res.mirrorsAccepted);
            row.set("routedSuccess", routed_p);
            row.set("loweredSuccess", lowered_p);
            row.set("successTolerance", tol);
            row.set("verified", verified);
            row.set("stallSteps", res.routingCounters.stallSteps);
            row.set("heuristicEvals", res.routingCounters.heuristicEvals);
            rows.push(std::move(row));
        }
    }
    saveLibraryCache(*lib, knobs.cacheDir);

    json::Value out = json::Value::object();
    json::Value params = parametersJson(knobs);
    params.set("topology", topo.name());
    params.set("widths", uint64_t(widths.size()));
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("circuit", "circuit"));
    cols.push(column("qubits", "qubits"));
    cols.push(column("instance", "inst"));
    cols.push(column("baselineDepth", "base depth", 1));
    cols.push(column("mirageDepth", "mirage depth", 1));
    cols.push(column("depthRed", "d%", 1));
    cols.push(column("swaps", "swaps"));
    cols.push(column("mirrors", "mirrors"));
    cols.push(column("routedSuccess", "P(routed)", 6));
    cols.push(column("loweredSuccess", "P(lowered)", 6));
    cols.push(column("successTolerance", "tol", -1, true));
    cols.push(column("verified", "ok"));
    cols.push(column("stallSteps", "stalls"));
    cols.push(column("heuristicEvals", "h-evals"));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("allVerified", all_verified);
    summary.set("minLoweredSuccess", min_lowered);
    setCatalogSummary(summary, catalog);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Every row is one self-verifying mirror circuit routed on "
            "heavy-hex 57Q and lowered to sqrt(iSWAP) pulses; the ideal "
            "bitstring's probability is measured by sparse simulation of "
            "the emitted circuit on all 57 wires. allVerified must be "
            "true: the bitstring check certifies the whole pipeline at "
            "widths the exhaustive unitary oracle (<= 6 qubits) cannot "
            "reach.");
    return out;
}

/**
 * Scenario matrix: {mirror families + Table III suite} x {grid6x6,
 * heavyhex57, line30} x {aggression 0-3}. Mirror workloads lead the
 * suite so `--limit 2` runs exactly the self-verifying rows (the CI
 * smoke shape); their routed circuits are bitstring-checked per cell.
 */
json::Value
runMatrix(const SweepKnobs &userKnobs)
{
    ResolvedKnobs knobs = resolve(userKnobs, 1, 2, 2, 1);

    struct Workload
    {
        std::string name;
        int qubits;
        circuit::Circuit circ;
        std::vector<int> bits; ///< empty = not a mirror workload
    };
    std::vector<Workload> suite;
    auto rb = bench::mirrorRb(10, 3, 0xB0B);
    suite.push_back({rb.circuit.name(), 10, rb.circuit, rb.bitstring});
    auto qv = bench::mirrorQv(10, 4, 0xB0B);
    suite.push_back({qv.circuit.name(), 10, qv.circuit, qv.bitstring});
    for (const auto &b : bench::paperBenchmarks())
        suite.push_back({b.name, b.qubits, b.make(), {}});
    if (userKnobs.suiteLimit >= 0 &&
        size_t(userKnobs.suiteLimit) < suite.size())
        suite.resize(size_t(userKnobs.suiteLimit));

    const std::vector<topology::CouplingMap> topologies = {
        topology::CouplingMap::grid(6, 6),
        topology::CouplingMap::heavyHex57(),
        topology::CouplingMap::line(30),
    };

    json::Value rows = json::Value::array();
    int cells = 0, mirror_cells = 0, verified_cells = 0;
    for (const auto &w : suite) {
        for (const auto &topo : topologies) {
            auto base = mirage_pass::transpile(
                w.circ, topo,
                sweepOptions(mirage_pass::Flow::SabreBaseline, 0x9000,
                             knobs));
            for (int a = 0; a <= 3; ++a) {
                auto opts = sweepOptions(mirage_pass::Flow::MirageDepth,
                                         0x9000, knobs);
                opts.fixedAggression = a;
                auto res = mirage_pass::transpile(w.circ, topo, opts);

                json::Value row = json::Value::object();
                row.set("circuit", w.name);
                row.set("qubits", w.qubits);
                row.set("topology", topo.name());
                row.set("aggression", a);
                row.set("baselineDepth", base.metrics.depth);
                row.set("depth", res.metrics.depth);
                row.set("depthRed",
                        pct(base.metrics.depth, res.metrics.depth));
                row.set("swaps", res.swapsAdded);
                row.set("mirrors", res.mirrorsAccepted);
                row.set("heuristicEvals",
                        res.routingCounters.heuristicEvals);
                ++cells;
                if (!w.bits.empty()) {
                    double p = bench::mirrorSuccessProbability(
                        res.routed, res.final.logicalToPhysical(),
                        w.bits);
                    bool ok = p >= 1.0 - 1e-9;
                    row.set("successProb", p);
                    row.set("verified", ok);
                    ++mirror_cells;
                    if (ok)
                        ++verified_cells;
                }
                rows.push(std::move(row));
            }
        }
    }

    json::Value out = json::Value::object();
    json::Value params = parametersJson(knobs);
    params.set("workloads", uint64_t(suite.size()));
    out.set("parameters", std::move(params));
    json::Value cols = json::Value::array();
    cols.push(column("circuit", "circuit"));
    cols.push(column("qubits", "qubits"));
    cols.push(column("topology", "topology"));
    cols.push(column("aggression", "aggr"));
    cols.push(column("baselineDepth", "base depth", 1));
    cols.push(column("depth", "depth", 1));
    cols.push(column("depthRed", "d%", 1));
    cols.push(column("swaps", "swaps"));
    cols.push(column("mirrors", "mirrors"));
    cols.push(column("heuristicEvals", "h-evals"));
    cols.push(column("successProb", "P(bitstring)", 6));
    cols.push(column("verified", "ok"));
    out.set("columns", std::move(cols));
    out.set("rows", std::move(rows));
    json::Value summary = json::Value::object();
    summary.set("cells", cells);
    summary.set("mirrorCells", mirror_cells);
    summary.set("verifiedCells", verified_cells);
    summary.set("allMirrorCellsVerified",
                mirror_cells == verified_cells);
    out.set("summary", std::move(summary));
    out.set("notes",
            "Table III grown into a scenario matrix: every workload x "
            "{grid6x6, heavyhex57, line30} x fixed aggression 0-3, one "
            "row per cell. The two mirror workloads lead the suite "
            "(--limit 2 runs only them) and are bitstring-verified "
            "against the routed circuit in every cell; "
            "allMirrorCellsVerified must be true.");
    return out;
}

} // namespace

SweepKnobs
knobsFromEnv()
{
    SweepKnobs k;
    k.seeds = envInt("MIRAGE_BENCH_SEEDS", -1);
    k.layoutTrials = envInt("MIRAGE_BENCH_TRIALS", -1);
    k.swapTrials = envInt("MIRAGE_BENCH_SWAP_TRIALS", -1);
    k.fwdBwd = envInt("MIRAGE_BENCH_FWD_BWD", -1);
    k.mcIterations = envInt("MIRAGE_BENCH_MC_ITERS", -1);
    return k;
}

const std::vector<Experiment> &
experimentRegistry()
{
    static const std::vector<Experiment> registry = {
        {"fig8", "Figure 8",
         "TwoLocal(full, 4q) on a 4-qubit line: baseline vs MIRAGE",
         "paper: 16 pulses / 3 SWAPs vs 10 pulses / 0 SWAPs", runFig8},
        {"fig10", "Figure 10",
         "Fixed mirror-aggression levels vs the Qiskit baseline",
         "paper: no single aggression level is universally optimal; the "
         "mixed 5/45/45/5 distribution is competitive everywhere",
         runFig10},
        {"fig11", "Figure 11",
         "Post-selection metric: SWAP count vs estimated depth",
         "paper: -24.1% average depth (SWAP selection) -> -29.5% (depth "
         "selection), total gates mostly unchanged",
         runFig11},
        {"fig12", "Figure 12",
         "MIRAGE vs Qiskit-SABRE on production topologies",
         "paper: heavy-hex -31.19% depth / -16.97% gates / -56.19% "
         "SWAPs; square lattice -29.58% depth / -10.25% gates / -59.86% "
         "SWAPs",
         runFig12},
        {"fig13", "Figure 13",
         "Transpiler runtime: parallel trial engine and lowering cache",
         "paper: caching keeps MIRAGE runtime competitive with SABRE "
         "(Section VI-C)",
         runFig13},
        {"table1", "Table I",
         "Exact Haar scores/fidelities for iSWAP roots, with mirrors",
         "paper: 1.105/0.9890 1.029/0.9897 | 0.9907/0.9901 "
         "0.9545/0.9904 | 0.9599/0.9904 0.8997/0.9910",
         [](const SweepKnobs &k) { return runHaarTable(k, false); }},
        {"table2", "Table II",
         "Approximate (Algorithm 1) Haar scores for iSWAP roots",
         "paper: 1.031/0.9895 0.9950/0.9899 | 0.9433/0.9904 "
         "0.8900/0.9908 | 0.9165/0.9906 0.8453/0.9913",
         [](const SweepKnobs &k) { return runHaarTable(k, true); }},
        {"table3", "Table III",
         "Benchmark suite inventory with measured sqrt(iSWAP) pulses",
         "paper: Table III reports the suite's 2Q gate counts; this "
         "repo additionally measures the lowered pulse counts "
         "(measured == estimated expected)",
         runTable3},
        {"mirror-rb", "Mirror RB",
         "Self-verifying mirror randomized-benchmarking circuits, "
         "routed+lowered on heavy-hex 57Q with a bitstring oracle",
         "beyond paper: Proctor et al. mirror circuits; end-to-end "
         "pipeline verification at widths the 6-qubit unitary oracle "
         "cannot reach (allVerified must be true)",
         [](const SweepKnobs &k) { return runMirrorFamily(k, false); }},
        {"mirror-qv", "Mirror QV",
         "Self-verifying mirror quantum-volume circuits (random SU(4) "
         "halves), routed+lowered on heavy-hex 57Q with a bitstring "
         "oracle",
         "beyond paper: mitiq-style mirror QV; end-to-end pipeline "
         "verification at widths the 6-qubit unitary oracle cannot "
         "reach (allVerified must be true)",
         [](const SweepKnobs &k) { return runMirrorFamily(k, true); }},
        {"matrix", "Table III (scenario matrix)",
         "{mirror families + Table III suite} x {grid6x6, heavyhex57, "
         "line30} x aggression 0-3, one artifact row per cell",
         "beyond paper: full scenario coverage with per-cell depth "
         "reduction and bitstring verification of the mirror workloads",
         runMatrix},
        {"bench", "Figure 13 (routing)",
         "Routing hot-path perf trajectory: wall time + deterministic "
         "work counters",
         "paper: mirror-aware routing must stay fast enough to run "
         "many trials (Section VI-C); tracked here as the committed "
         "BENCH_fig13.json trajectory",
         runBenchRouting},
        {"fig12-large", "Figure 12 (large devices)",
         "Table III circuits routed on 433/1121-qubit heavy-hex and a "
         "33x33 grid in sparse topology mode, with memory and "
         "landmark-bound audits",
         "beyond paper: the paper evaluates up to heavy-hex 57; this "
         "sweep scales routing to IBM Osprey/Condor-class devices with "
         "sub-quadratic topology memory (tracked as the committed "
         "BENCH_large_topo.json trajectory)",
         runFig12Large},
        {"bench-lowering", "Figure 13 (lowering)",
         "Lowering cold-start trajectory: cold fits vs the committed "
         "FIT_CATALOG.bin, with deterministic fit counters",
         "paper: Section VI-C motivates the decomposition cache; "
         "tracked here as the committed BENCH_lowering.json trajectory "
         "(warmNewFits must stay 0)",
         runBenchLowering},
    };
    return registry;
}

std::unique_ptr<decomp::EquivalenceLibrary>
buildCatalogLibrary(int threads)
{
    auto lib = std::make_unique<decomp::EquivalenceLibrary>(2);
    SweepKnobs user;
    user.threads = threads;
    user.catalogPath = decomp::kCatalogDisabled; // always build cold

    // Table III target set, at the exact config table3/fig13/
    // bench-lowering run: 8x8 grid, MirageDepth, seed 0xB3,
    // trials 8/2/2.
    {
        ResolvedKnobs knobs = resolve(user, 1, 8, 2, 2);
        const auto grid = topology::CouplingMap::grid(8, 8);
        std::vector<circuit::Circuit> circuits;
        for (const auto &b : bench::paperBenchmarks())
            circuits.push_back(b.make());
        auto opts =
            sweepOptions(mirage_pass::Flow::MirageDepth, 0xB3, knobs);
        opts.lowerToBasis = true;
        opts.equivalenceLibrary = lib.get();
        mirage_pass::transpileMany(circuits, grid, opts);
    }

    // Mirror-workload target set, at the exact mirror-rb/mirror-qv
    // default config: heavy-hex 57, trials 4/2/1, the registered widths
    // and generation/routing seeds.
    {
        ResolvedKnobs knobs = resolve(user, 1, 4, 2, 1);
        const auto topo = topology::CouplingMap::heavyHex57();
        for (bool qv : {false, true}) {
            std::vector<int> widths = qv ? std::vector<int>{8, 10, 12}
                                         : std::vector<int>{8, 10, 14};
            for (int w : widths) {
                for (int i = 0; i < knobs.seeds; ++i) {
                    const uint64_t gen_seed = 0xA11CE + 977 * uint64_t(i);
                    auto mc = qv ? bench::mirrorQv(w, 4, gen_seed)
                                 : bench::mirrorRb(w, 3, gen_seed);
                    const uint64_t route_seed = 0x9000 + 131 * uint64_t(i);
                    auto opts = sweepOptions(
                        mirage_pass::Flow::MirageDepth, route_seed, knobs);
                    opts.lowerToBasis = true;
                    opts.equivalenceLibrary = lib.get();
                    mirage_pass::transpile(mc.circuit, topo, opts);
                }
            }
        }
    }
    return lib;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &e : experimentRegistry()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

json::Value
runExperiment(const Experiment &e, const SweepKnobs &knobs)
{
    json::Value payload = e.run(knobs);
    json::Value artifact = json::Value::object();
    artifact.set("schemaVersion", kArtifactSchemaVersion);
    artifact.set("kind", kSweepArtifactKind);
    artifact.set("experiment", e.name);
    artifact.set("paperArtifact", e.artifact);
    artifact.set("title", e.title);
    artifact.set("paperRef", e.paperRef);
    for (const auto &[key, value] : payload.members())
        artifact.set(key, value);
    return artifact;
}

bool
validateArtifact(const json::Value &artifact, std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (!artifact.isObject())
        return fail("artifact is not a JSON object");
    const json::Value *version = artifact.find("schemaVersion");
    if (!version || !version->isNumber())
        return fail("missing numeric 'schemaVersion'");
    if (version->asInt() != kArtifactSchemaVersion)
        return fail("schemaVersion " + std::to_string(version->asInt()) +
                    " != supported " +
                    std::to_string(kArtifactSchemaVersion));
    const json::Value *kind = artifact.find("kind");
    if (!kind || !kind->isString() ||
        kind->asString() != kSweepArtifactKind)
        return fail("missing or unexpected 'kind' (want \"" +
                    std::string(kSweepArtifactKind) + "\")");
    for (const char *key :
         {"experiment", "paperArtifact", "title", "paperRef"}) {
        const json::Value *v = artifact.find(key);
        if (!v || !v->isString())
            return fail(std::string("missing string '") + key + "'");
    }
    const json::Value *params = artifact.find("parameters");
    if (!params || !params->isObject())
        return fail("missing object 'parameters'");
    const json::Value *columns = artifact.find("columns");
    if (!columns || !columns->isArray() || columns->size() == 0)
        return fail("missing non-empty array 'columns'");
    for (size_t i = 0; i < columns->size(); ++i) {
        const json::Value &c = columns->at(i);
        const json::Value *key = c.isObject() ? c.find("key") : nullptr;
        const json::Value *label =
            c.isObject() ? c.find("label") : nullptr;
        if (!key || !key->isString() || !label || !label->isString())
            return fail("column " + std::to_string(i) +
                        " lacks string key/label");
    }
    const json::Value *rows = artifact.find("rows");
    if (!rows || !rows->isArray())
        return fail("missing array 'rows'");
    for (size_t i = 0; i < rows->size(); ++i) {
        if (!rows->at(i).isObject())
            return fail("row " + std::to_string(i) + " is not an object");
    }
    return true;
}

bool
checkBenchCounters(const json::Value &current, const json::Value &baseline,
                   std::string *report)
{
    auto fail = [report](const std::string &msg) {
        if (report)
            *report += msg + "\n";
        return false;
    };
    std::string err;
    if (!validateArtifact(current, &err))
        return fail("current artifact invalid: " + err);
    if (!validateArtifact(baseline, &err))
        return fail("baseline artifact invalid: " + err);
    // Counter-gated artifacts: rows keyed by "name" carrying the
    // deterministic hot-path counters. Both sides must come from the
    // same experiment or the row sets aren't comparable.
    const std::string experiment = current["experiment"].asString();
    if (experiment != "bench" && experiment != "fig12-large" &&
        experiment != "bench-lowering")
        return fail("not a counter-gated artifact: " + experiment);
    if (baseline["experiment"].asString() != experiment)
        return fail("experiment mismatch: current '" + experiment +
                    "' vs baseline '" +
                    baseline["experiment"].asString() + "'");

    // Memory gate for the sparse-topology bench: losing the
    // sub-quadratic property is a regression even if counters hold.
    if (experiment == "fig12-large") {
        const json::Value *sub =
            current["summary"].find("memorySubQuadratic");
        if (!sub || !sub->isBool() || !sub->asBool())
            return fail("memorySubQuadratic is not true: sparse topology "
                        "memory regressed to O(n^2) territory");
        const json::Value *shrink =
            current["summary"].find("memoryRatioShrinksWithN");
        if (!shrink || !shrink->isBool() || !shrink->asBool())
            return fail("memoryRatioShrinksWithN is not true: resident "
                        "topology memory is not scaling sub-quadratically "
                        "across device sizes");
        const json::Value *adm =
            current["summary"].find("landmarksAdmissible");
        if (!adm || !adm->isBool() || !adm->asBool())
            return fail("landmarksAdmissible is not true: ALT lower "
                        "bound exceeded an exact distance");
    }

    // Counters are only comparable when the routing workload matches;
    // threads is exempt (counters are thread-invariant by contract).
    for (const char *key : {"seeds", "layoutTrials", "swapTrials",
                            "forwardBackwardPasses", "circuits"}) {
        const json::Value *c = current["parameters"].find(key);
        const json::Value *b = baseline["parameters"].find(key);
        if (!c || !b || c->asInt() != b->asInt())
            return fail(std::string("parameter '") + key +
                        "' differs from the baseline; regenerate the "
                        "baseline with matching knobs");
    }

    // The gated counters per experiment. Routing benches gate the
    // SABRE hot path; bench-lowering gates the fit pipeline (fits and
    // objective evaluations per circuit) plus warmNewFits, whose
    // baseline is 0 -- so ANY warm fit is a regression: the committed
    // catalog stopped covering the suite.
    const std::vector<const char *> counter_keys =
        experiment == "bench-lowering"
            ? std::vector<const char *>{"fits", "fitEvaluations",
                                        "warmNewFits",
                                        "warmFitEvaluations"}
            : std::vector<const char *>{"heuristicEvals", "extSetBuilds"};

    bool ok = true;
    const json::Value &rows = current["rows"];
    const json::Value &base_rows = baseline["rows"];
    auto findRow = [&base_rows](const std::string &name) {
        for (size_t i = 0; i < base_rows.size(); ++i) {
            const json::Value *n = base_rows.at(i).find("name");
            if (n && n->isString() && n->asString() == name)
                return &base_rows.at(i);
        }
        return static_cast<const json::Value *>(nullptr);
    };
    size_t matched = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        const json::Value &row = rows.at(i);
        const std::string name = row["name"].asString();
        const json::Value *base = findRow(name);
        if (!base)
            continue; // a new circuit has no baseline yet
        ++matched;
        for (const char *key : counter_keys) {
            int64_t now = row[key].asInt();
            int64_t ref = (*base)[key].asInt();
            if (now > ref) {
                ok = false;
                fail(name + ": " + key + " regressed " +
                     std::to_string(ref) + " -> " + std::to_string(now));
            } else if (report && now < ref) {
                *report += name + ": " + key + " improved " +
                           std::to_string(ref) + " -> " +
                           std::to_string(now) + "\n";
            }
        }
    }
    // Every baseline circuit must still be measured, or a regression
    // could hide behind a shrunken suite.
    if (matched < base_rows.size()) {
        ok = false;
        fail("current run covers " + std::to_string(matched) + " of " +
             std::to_string(base_rows.size()) + " baseline circuits");
    }
    return ok;
}

namespace {

/** Format one cell according to the column spec. */
std::string
formatCell(const json::Value &v, const json::Value &col)
{
    if (v.isString())
        return v.asString();
    if (v.isBool())
        return v.asBool() ? "true" : "false";
    if (v.isNull())
        return "";
    if (!v.isNumber())
        return v.dump(0);
    const json::Value *sci = col.find("sci");
    if (sci && sci->isBool() && sci->asBool()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1e", v.asNumber());
        return buf;
    }
    const json::Value *digits = col.find("digits");
    if (digits && digits->isNumber()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.*f", int(digits->asInt()),
                      v.asNumber());
        return buf;
    }
    return json::formatNumber(v.asNumber());
}

std::string
formatSummaryValue(const json::Value &v)
{
    if (v.isString())
        return v.asString();
    if (v.isBool())
        return v.asBool() ? "true" : "false";
    if (v.isNumber()) {
        double d = v.asNumber();
        if (d == std::floor(d) && std::fabs(d) < 1e15)
            return json::formatNumber(d);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", d);
        return buf;
    }
    return v.dump(0);
}

} // namespace

std::string
renderMarkdown(const json::Value &artifact)
{
    std::string err;
    if (!validateArtifact(artifact, &err))
        return "<!-- invalid artifact: " + err + " -->\n";

    const json::Value &columns = artifact["columns"];
    const json::Value &rows = artifact["rows"];

    std::string out = "## " + artifact["paperArtifact"].asString() +
                      " — " + artifact["title"].asString() + " (`" +
                      artifact["experiment"].asString() + "`)\n\n";

    const json::Value &params = artifact["parameters"];
    if (params.size()) {
        out += "Parameters: ";
        bool first = true;
        for (const auto &[k, v] : params.members()) {
            if (!first)
                out += ", ";
            out += k + "=" + formatSummaryValue(v);
            first = false;
        }
        out += "\n\n";
    }

    // Header + alignment (numbers right, everything else left). A
    // column is numeric when its first present value is a number.
    std::string header = "|", align = "|";
    for (size_t c = 0; c < columns.size(); ++c) {
        const json::Value &col = columns.at(c);
        header += " " + col["label"].asString() + " |";
        bool numeric = false;
        const std::string &key = col["key"].asString();
        for (size_t r = 0; r < rows.size(); ++r) {
            if (const json::Value *v = rows.at(r).find(key)) {
                numeric = v->isNumber();
                break;
            }
        }
        align += numeric ? " ---: |" : " --- |";
    }
    out += header + "\n" + align + "\n";

    for (size_t r = 0; r < rows.size(); ++r) {
        out += "|";
        for (size_t c = 0; c < columns.size(); ++c) {
            const json::Value &col = columns.at(c);
            const json::Value *v = rows.at(r).find(col["key"].asString());
            out += " ";
            if (v)
                out += formatCell(*v, col);
            out += " |";
        }
        out += "\n";
    }

    if (const json::Value *summary = artifact.find("summary");
        summary && summary->isObject() && summary->size()) {
        out += "\n";
        for (const auto &[k, v] : summary->members()) {
            if (v.isObject()) {
                out += "- " + k + ":";
                for (const auto &[k2, v2] : v.members())
                    out += " " + k2 + "=" + formatSummaryValue(v2);
                out += "\n";
            } else if (v.isArray()) {
                out += "- " + k + ": ";
                for (size_t i = 0; i < v.size(); ++i) {
                    if (i)
                        out += ", ";
                    out += formatSummaryValue(v.at(i));
                }
                out += "\n";
            } else {
                out += "- " + k + ": " + formatSummaryValue(v) + "\n";
            }
        }
    }

    if (const json::Value *notes = artifact.find("notes");
        notes && notes->isString())
        out += "\n" + notes->asString() + "\n";
    out += "\n*" + artifact["paperRef"].asString() + "*\n";
    return out;
}

std::string
renderCsv(const json::Value &artifact)
{
    std::string err;
    if (!validateArtifact(artifact, &err))
        return "";

    const json::Value &columns = artifact["columns"];
    const json::Value &rows = artifact["rows"];

    auto csvEscape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };

    std::string out;
    for (size_t c = 0; c < columns.size(); ++c) {
        if (c)
            out += ",";
        out += csvEscape(columns.at(c)["key"].asString());
    }
    out += "\n";
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < columns.size(); ++c) {
            if (c)
                out += ",";
            const json::Value *v =
                rows.at(r).find(columns.at(c)["key"].asString());
            if (!v || v->isNull())
                continue;
            if (v->isNumber())
                out += json::formatNumber(v->asNumber());
            else if (v->isBool())
                out += v->asBool() ? "true" : "false";
            else if (v->isString())
                out += csvEscape(v->asString());
            else
                out += csvEscape(v->dump(0));
        }
        out += "\n";
    }
    return out;
}

} // namespace mirage::cli
