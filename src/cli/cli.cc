/**
 * @file
 * `mirage` subcommand implementations: transpile (QASM in, JSON/QASM
 * out), sweep (experiment registry -> versioned artifacts), report
 * (artifacts -> markdown). All user-facing failures are reported as
 * "mirage: ..." messages on the error stream with scripting-grade exit
 * codes; nothing in this layer calls exit() or aborts.
 */

#include "cli/cli.hh"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "cli/args.hh"
#include "cli/experiments.hh"
#include "circuit/qasm.hh"
#include "common/atomic_file.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "decomp/catalog.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/traffic.hh"
#include "topology/coupling.hh"

namespace mirage::cli {

namespace {

/** Runtime (non-usage) failure: maps to exit code 1. */
class CliError : public std::runtime_error
{
  public:
    explicit CliError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** Parse "grid3x3" / "line4" / ... ; `min_qubits` sizes "auto".
 * (Thin wrapper over the shared topology-module parser that maps its
 * invalid_argument to a usage error, exit code 2.) */
topology::CouplingMap
parseTopology(const std::string &spec, int min_qubits)
{
    try {
        return topology::CouplingMap::parseSpec(spec, min_qubits);
    } catch (const std::invalid_argument &e) {
        throw UsageError(e.what());
    }
}

mirage_pass::Flow
parseFlow(const std::string &name)
{
    try {
        return serve::parseFlow(name);
    } catch (const serve::RequestError &e) {
        throw UsageError(e.what());
    }
}

/**
 * Validate a --cache DIR value up front: create it if absent, and
 * reject a path that cannot be a writable directory with a clear
 * usage error (exit 2) instead of silently fitting cold and failing
 * to persist at exit. Returns the (possibly empty) directory.
 */
std::string
validateCacheDir(const std::string &dir)
{
    if (dir.empty())
        return dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!std::filesystem::is_directory(dir, ec))
        throw UsageError("--cache '" + dir +
                         "' is not a directory and cannot be created" +
                         (ec ? " (" + ec.message() + ")" : ""));
    if (::access(dir.c_str(), W_OK) != 0)
        throw UsageError("--cache directory '" + dir +
                         "' is not writable");
    return dir;
}

std::string
readInput(const std::string &path)
{
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        return buf.str();
    }
    std::ifstream in(path);
    if (!in)
        throw CliError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeOutput(const std::string &path, const std::string &content,
            std::ostream &out)
{
    if (path.empty() || path == "-") {
        out << content;
        return;
    }
    std::ofstream f(path);
    if (!f)
        throw CliError("cannot write '" + path + "'");
    f << content;
}

// --- transpile --------------------------------------------------------------

int
cmdTranspile(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err)
{
    ArgumentParser parser("transpile", "<input.qasm | ->");
    parser.addOption("--topology", "SPEC", "auto",
                     "device coupling map: grid<R>x<C>, line<N>, "
                     "ring<N>, heavyhex57, heavyhex433, heavyhex1121, "
                     "alltoall<N>, auto");
    parser.addOption("--flow", "NAME", "mirage",
                     "pipeline flow: sabre, mirage-swaps, mirage");
    parser.addOption("--trials", "N", "8", "independent layout trials");
    parser.addOption("--swap-trials", "N", "4",
                     "routing repeats per layout");
    parser.addOption("--fwd-bwd", "N", "2", "layout refinement rounds");
    parser.addOption("--threads", "N", "1",
                     "trial-grid worker threads (0 = all cores); output "
                     "is bit-identical for every value");
    parser.addOption("--seed", "N", "20240229", "root RNG seed");
    parser.addOption("--aggression", "N", "-1",
                     "fixed mirror aggression 0-3 (-1 = 5/45/45/5 mix)");
    parser.addOption("--root", "N", "2",
                     "basis gate: the N-th root of iSWAP");
    parser.addFlag("--no-vf2", "skip the VF2 SWAP-free layout check");
    parser.addFlag("--lower",
                   "lower the routed circuit to RootISWAP pulses and "
                   "measure pulse metrics");
    parser.addOption("--cache", "DIR", "",
                     "equivalence-library cache directory (load before, "
                     "save after; implies faster --lower reruns)");
    parser.addOption("--catalog", "FILE", "",
                     "fit catalog warm-starting --lower ('none' "
                     "disables; default: $MIRAGE_FIT_CATALOG, then "
                     "./FIT_CATALOG.bin when present)");
    parser.addOption("--deadline-ms", "N", "0",
                     "abort with exit 1 if the pipeline exceeds this "
                     "compute budget (0 = none)");
    parser.addOption("--format", "FMT", "json",
                     "output format: json (report) or qasm (circuit)");
    parser.addOption("--output", "FILE", "",
                     "write output here instead of stdout");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (parser.positionals().size() != 1)
        throw UsageError("transpile expects exactly one input file "
                         "(or '-' for stdin); see 'mirage transpile "
                         "--help'");

    const std::string &path = parser.positionals()[0];
    const std::string format = parser.option("--format");
    if (format != "json" && format != "qasm")
        throw UsageError("unknown --format '" + format +
                         "' (expected json or qasm)");

    const std::string text = readInput(path);
    circuit::Circuit input;
    try {
        input = circuit::fromQasm(text);
    } catch (const circuit::QasmError &e) {
        err << "mirage: " << (path == "-" ? "<stdin>" : path) << ":"
            << e.line() << ":" << e.column() << ": " << e.message()
            << "\n";
        return kExitFailure;
    }
    if (input.numQubits() == 0)
        throw CliError("'" + path + "' declares no qubits");

    mirage_pass::TranspileOptions opts;
    opts.flow = parseFlow(parser.option("--flow"));
    opts.rootDegree = parser.intOption("--root");
    opts.layoutTrials = parser.intOption("--trials");
    opts.swapTrials = parser.intOption("--swap-trials");
    opts.forwardBackwardPasses = parser.intOption("--fwd-bwd");
    opts.threads = parser.intOption("--threads");
    opts.seed = parser.u64Option("--seed");
    opts.fixedAggression = parser.intOption("--aggression");
    opts.tryVf2 = !parser.flag("--no-vf2");
    opts.lowerToBasis = parser.flag("--lower");
    if (opts.layoutTrials < 1 || opts.swapTrials < 1)
        throw UsageError("--trials and --swap-trials must be >= 1");
    if (opts.forwardBackwardPasses < 0)
        throw UsageError("--fwd-bwd must be >= 0");
    if (opts.threads < 0)
        throw UsageError("--threads must be >= 0 (0 = all cores)");
    if (opts.rootDegree < 2)
        throw UsageError("--root must be >= 2");
    if (opts.fixedAggression < -1 || opts.fixedAggression > 3)
        throw UsageError("--aggression must be in [-1, 3] (-1 = mixed)");
    const int deadlineMs = parser.intOption("--deadline-ms");
    if (deadlineMs < 0)
        throw UsageError("--deadline-ms must be >= 0 (0 = none)");
    if (deadlineMs > 0)
        opts.deadline = Deadline::afterMs(deadlineMs);

    const topology::CouplingMap topo =
        parseTopology(parser.option("--topology"), input.numQubits());
    if (topo.numQubits() < input.numQubits())
        throw CliError("topology '" + parser.option("--topology") +
                       "' has " + std::to_string(topo.numQubits()) +
                       " qubits but the circuit needs " +
                       std::to_string(input.numQubits()));

    // Constructing the library preseeds standard-gate fits, so build
    // it only when the lowering stage will actually run.
    std::optional<decomp::EquivalenceLibrary> library;
    const std::string cacheDir = validateCacheDir(parser.option("--cache"));
    std::string cacheFile;
    if (opts.lowerToBasis) {
        const std::string catalogPath =
            decomp::resolveCatalogPath(parser.option("--catalog"));
        if (!catalogPath.empty()) {
            // The catalog includes the preseed gates, so a successful
            // load replaces preseeding entirely (zero cold fits).
            library.emplace(opts.rootDegree, /*preseed=*/false);
            const auto loaded =
                library->loadCacheFileDetailed(catalogPath);
            if (loaded.status !=
                decomp::EquivalenceLibrary::CacheLoadStatus::Ok) {
                err << "mirage: warning: fit catalog "
                    << (loaded.status == decomp::EquivalenceLibrary::
                                             CacheLoadStatus::Unreadable
                            ? "unreadable"
                            : "malformed")
                    << ": " << loaded.message << "; fitting cold\n";
                library.emplace(opts.rootDegree);
            }
        } else {
            library.emplace(opts.rootDegree);
        }
        if (!cacheDir.empty()) {
            cacheFile = cacheDir + "/eqlib-root" +
                        std::to_string(opts.rootDegree) + ".cache";
            library->loadCacheFile(cacheFile);
        }
        opts.equivalenceLibrary = &*library;
    }

    mirage_pass::TranspileResult res;
    try {
        res = mirage_pass::transpile(input, topo, opts);
    } catch (const DeadlineError &e) {
        err << "mirage: deadline: " << e.what() << " (budget "
            << deadlineMs << " ms)\n";
        return kExitFailure;
    }

    if (!cacheFile.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir, ec);
        if (!library->saveCacheFile(cacheFile))
            err << "mirage: warning: cannot write cache '" << cacheFile
                << "'\n";
    }

    if (format == "qasm") {
        const circuit::Circuit &emitted =
            res.loweredToBasis ? res.lowered : res.routed;
        writeOutput(parser.option("--output"), circuit::toQasm(emitted),
                    out);
        return kExitSuccess;
    }

    // The report document is built by the serve module's shared
    // builder, so a `mirage serve` response is bit-identical to this
    // one-shot path by construction.
    json::Value doc = serve::transpileReportJson(
        path == "-" ? "<stdin>" : path, input, topo, opts, res);
    writeOutput(parser.option("--output"), doc.dump(2), out);
    return kExitSuccess;
}

// --- sweep ------------------------------------------------------------------

int
cmdSweep(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    ArgumentParser parser("sweep", "--experiment <name>");
    parser.addOption("--experiment", "NAME", "",
                     "registered experiment to run (see --list)");
    parser.addOption("--out", "DIR", ".",
                     "directory for the emitted artifacts");
    parser.addOption("--seeds", "N", "",
                     "independent instances averaged (experiment "
                     "default when omitted)");
    parser.addOption("--trials", "N", "", "layout trials (default: "
                     "experiment)");
    parser.addOption("--swap-trials", "N", "",
                     "routing repeats per layout (default: experiment)");
    parser.addOption("--fwd-bwd", "N", "",
                     "layout refinement rounds (default: experiment)");
    parser.addOption("--threads", "N", "1",
                     "trial-grid worker threads (0 = all cores)");
    parser.addOption("--mc-iters", "N", "",
                     "Monte-Carlo iterations (table2)");
    parser.addOption("--limit", "N", "",
                     "first N suite entries / widths (mirror-rb, "
                     "mirror-qv, matrix; default: all)");
    parser.addOption("--cache", "DIR", "",
                     "equivalence-library cache directory shared across "
                     "runs (table3/fig13)");
    parser.addOption("--catalog", "FILE", "",
                     "fit catalog warm-starting lowering experiments "
                     "('none' disables; default: $MIRAGE_FIT_CATALOG, "
                     "then ./FIT_CATALOG.bin when present)");
    parser.addFlag("--csv", "also write <name>.csv next to the JSON");
    parser.addFlag("--stdout",
                   "print the artifact JSON to stdout instead of "
                   "writing files");
    parser.addFlag("--list", "list registered experiments and exit");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (parser.flag("--list")) {
        for (const auto &e : experimentRegistry())
            out << e.name << "\t" << e.artifact << "\t" << e.title
                << "\n";
        return kExitSuccess;
    }
    if (!parser.positionals().empty())
        throw UsageError("sweep takes no positional operands");
    const std::string name = parser.option("--experiment");
    if (name.empty())
        throw UsageError("sweep requires --experiment <name> (or "
                         "--list)");
    const Experiment *experiment = findExperiment(name);
    if (!experiment) {
        std::string known;
        for (const auto &e : experimentRegistry())
            known += (known.empty() ? "" : ", ") + e.name;
        throw UsageError("unknown experiment '" + name +
                         "' (available: " + known +
                         "; run 'mirage sweep --list' for one-line "
                         "descriptions)");
    }

    SweepKnobs knobs;
    auto knob = [&parser](const char *flag, int *slot) {
        if (!parser.optionSeen(flag))
            return;
        int v = parser.intOption(flag);
        if (v < 1)
            throw UsageError(std::string("option '") + flag +
                             "' must be >= 1");
        *slot = v;
    };
    knob("--seeds", &knobs.seeds);
    knob("--trials", &knobs.layoutTrials);
    knob("--swap-trials", &knobs.swapTrials);
    knob("--fwd-bwd", &knobs.fwdBwd);
    knob("--mc-iters", &knobs.mcIterations);
    knob("--limit", &knobs.suiteLimit);
    knobs.threads = parser.intOption("--threads");
    if (knobs.threads < 0)
        throw UsageError("--threads must be >= 0 (0 = all cores)");
    knobs.cacheDir = validateCacheDir(parser.option("--cache"));
    knobs.catalogPath = parser.option("--catalog");

    err << "mirage: running experiment '" << name << "' ("
        << experiment->artifact << ")...\n";
    json::Value artifact = runExperiment(*experiment, knobs);

    if (parser.flag("--stdout")) {
        out << artifact.dump(2);
        return kExitSuccess;
    }

    const std::string dir = parser.option("--out");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string jsonPath = dir + "/" + name + ".json";
    {
        std::ofstream f(jsonPath);
        if (!f)
            throw CliError("cannot write '" + jsonPath + "'");
        f << artifact.dump(2);
    }
    out << "wrote " << jsonPath << " ("
        << artifact["rows"].size() << " rows)\n";
    if (parser.flag("--csv")) {
        const std::string csvPath = dir + "/" + name + ".csv";
        std::ofstream f(csvPath);
        if (!f)
            throw CliError("cannot write '" + csvPath + "'");
        f << renderCsv(artifact);
        out << "wrote " << csvPath << "\n";
    }
    return kExitSuccess;
}

// --- bench ------------------------------------------------------------------

/**
 * `mirage bench`: the routing perf trajectory. Thin front end over the
 * registry's `bench` experiment that (a) defaults the artifact to the
 * repo-root BENCH_fig13.json trajectory file and (b) gates CI: --check
 * compares the deterministic hot-path counters against a checked-in
 * baseline and fails the run on any regression.
 */
int
cmdBench(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    ArgumentParser parser("bench", "[--check <baseline.json>]");
    parser.addOption("--experiment", "NAME", "bench",
                     "counter-gated experiment: bench (Table III routing, "
                     "BENCH_fig13.json), fig12-large (1000+ qubit sparse "
                     "topologies, BENCH_large_topo.json), or "
                     "bench-lowering (fit pipeline cold vs catalog, "
                     "BENCH_lowering.json)");
    parser.addOption("--out", "FILE", "",
                     "artifact path ('-' for stdout; default: the "
                     "experiment's committed baseline name)");
    parser.addOption("--check", "FILE", "",
                     "baseline artifact; exit 1 if a deterministic "
                     "counter (heuristicEvals/extSetBuilds, or the fit "
                     "counters for bench-lowering) regressed");
    parser.addOption("--catalog", "FILE", "",
                     "fit catalog for bench-lowering's warm half ('none' "
                     "disables; default: $MIRAGE_FIT_CATALOG, then "
                     "./FIT_CATALOG.bin when present)");
    parser.addOption("--trials", "N", "", "layout trials (default: 8)");
    parser.addOption("--swap-trials", "N", "",
                     "routing repeats per layout (default: 2)");
    parser.addOption("--fwd-bwd", "N", "",
                     "layout refinement rounds (default: 2)");
    parser.addOption("--limit", "N", "",
                     "only the first N Table III circuits (default: all)");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (!parser.positionals().empty())
        throw UsageError("bench takes no positional operands");

    SweepKnobs knobs;
    auto knob = [&parser](const char *flag, int *slot, int min_value) {
        if (!parser.optionSeen(flag))
            return;
        int v = parser.intOption(flag);
        if (v < min_value)
            throw UsageError(std::string("option '") + flag +
                             "' must be >= " + std::to_string(min_value));
        *slot = v;
    };
    knob("--trials", &knobs.layoutTrials, 1);
    knob("--swap-trials", &knobs.swapTrials, 1);
    knob("--fwd-bwd", &knobs.fwdBwd, 1);
    knob("--limit", &knobs.suiteLimit, 1);

    const std::string experimentName = parser.option("--experiment");
    if (experimentName != "bench" && experimentName != "fig12-large" &&
        experimentName != "bench-lowering")
        throw UsageError("--experiment must be 'bench', 'fig12-large', "
                         "or 'bench-lowering' (counter-gated "
                         "experiments), got '" +
                         experimentName + "'");
    knobs.catalogPath = parser.option("--catalog");

    // Read the baseline BEFORE writing the fresh artifact: with the
    // default --out the two paths coincide (the committed repo-root
    // BENCH_fig13.json), and writing first would make the gate compare
    // the new artifact against itself -- always passing.
    const std::string baselinePath = parser.option("--check");
    json::Value baseline;
    if (!baselinePath.empty()) {
        try {
            baseline = json::parse(readInput(baselinePath));
        } catch (const json::ParseError &e) {
            err << "mirage: " << baselinePath << ":" << e.line() << ":"
                << e.column() << ": " << e.what() << "\n";
            return kExitFailure;
        }
    }

    const Experiment *experiment = findExperiment(experimentName);
    MIRAGE_ASSERT(experiment, "bench experiment not registered");
    err << "mirage: running " << experimentName << " bench ("
        << (knobs.suiteLimit >= 0 ? std::to_string(knobs.suiteLimit)
                                  : std::string("all"))
        << " circuits)...\n";
    json::Value artifact = runExperiment(*experiment, knobs);

    std::string path = parser.option("--out");
    if (path.empty())
        path = experimentName == "bench"        ? "BENCH_fig13.json"
               : experimentName == "fig12-large" ? "BENCH_large_topo.json"
                                                 : "BENCH_lowering.json";
    writeOutput(path, artifact.dump(2), out);
    if (path != "-" && !path.empty())
        out << "wrote " << path << " (" << artifact["rows"].size()
            << " circuits)\n";

    if (!baselinePath.empty()) {
        std::string report;
        bool ok = checkBenchCounters(artifact, baseline, &report);
        if (!report.empty())
            out << report;
        if (!ok) {
            err << "mirage: bench counters regressed versus '"
                << baselinePath << "'\n";
            return kExitFailure;
        }
        out << "bench check OK: no counter regressions versus "
            << baselinePath << "\n";
    }
    return kExitSuccess;
}

// --- report -----------------------------------------------------------------

int
cmdReport(const std::vector<std::string> &args, std::ostream &out,
          std::ostream &err)
{
    ArgumentParser parser("report", "<artifact.json>...");
    parser.addOption("--output", "FILE", "",
                     "write the markdown here instead of stdout");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (parser.positionals().empty())
        throw UsageError("report expects at least one artifact file");

    std::string rendered;
    for (const auto &path : parser.positionals()) {
        const std::string text = readInput(path);
        json::Value artifact;
        try {
            artifact = json::parse(text);
        } catch (const json::ParseError &e) {
            err << "mirage: " << path << ":" << e.line() << ":"
                << e.column() << ": " << e.what() << "\n";
            return kExitFailure;
        }
        std::string schemaError;
        if (!validateArtifact(artifact, &schemaError)) {
            err << "mirage: " << path << ": invalid artifact: "
                << schemaError << "\n";
            return kExitFailure;
        }
        if (!rendered.empty())
            rendered += "\n";
        rendered += renderMarkdown(artifact);
    }
    writeOutput(parser.option("--output"), rendered, out);
    return kExitSuccess;
}

// --- serve ------------------------------------------------------------------

/** The running socket server, for SIGINT/SIGTERM-driven shutdown.
 * SocketServer::stop() only stores an atomic flag, so it is
 * async-signal-safe. */
std::atomic<serve::SocketServer *> g_signalServer{nullptr};

void
serveSignalHandler(int)
{
    if (serve::SocketServer *server = g_signalServer.load())
        server->stop();
}

int
cmdServe(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    ArgumentParser parser("serve", "--socket <path> | --stdio");
    parser.addOption("--socket", "PATH", "",
                     "bind a Unix domain socket here and serve "
                     "concurrent newline-delimited JSON requests");
    parser.addFlag("--stdio",
                   "serve requests from stdin to stdout (sequential; "
                   "for tests and piping)");
    parser.addOption("--threads", "N", "0",
                     "warm trial-grid worker threads shared by every "
                     "request (0 = all cores)");
    parser.addOption("--cache-entries", "N", "256",
                     "result memo capacity, in full transpile reports");
    parser.addOption("--max-batch", "N", "32",
                     "max compatible concurrent requests folded into "
                     "one transpileMany call");
    parser.addOption("--cache", "DIR", "",
                     "equivalence-library persistence directory "
                     "(loaded on first use, saved on shutdown)");
    parser.addOption("--catalog", "FILE", "",
                     "fit catalog warm-starting the root-2 library at "
                     "startup ('none' disables; default: "
                     "$MIRAGE_FIT_CATALOG, then ./FIT_CATALOG.bin "
                     "when present)");
    parser.addOption("--max-queue", "N", "256",
                     "admission bound: shed requests with 'overloaded' "
                     "+ retryAfterMs once this many are queued (0 = "
                     "unbounded)");
    parser.addOption("--deadline-ms", "N", "0",
                     "server-wide per-request compute budget; caps any "
                     "client deadlineMs (0 = none)");
    parser.addOption("--max-qubits", "N", "0",
                     "reject wider circuits with 'toolarge' (0 = no "
                     "cap)");
    parser.addOption("--max-gates", "N", "0",
                     "reject longer circuits with 'toolarge' (0 = no "
                     "cap)");
    parser.addOption("--faults", "SPEC", "",
                     "arm a deterministic fault schedule, e.g. "
                     "'seed=7,serve.read=1/11,cache.save=1/1' "
                     "(overrides $MIRAGE_FAULTS; chaos testing only)");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (!parser.positionals().empty())
        throw UsageError("serve takes no positional operands");

    const std::string socketPath = parser.option("--socket");
    const bool stdio = parser.flag("--stdio");
    if (socketPath.empty() == !stdio)
        throw UsageError("serve needs exactly one transport: "
                         "--socket <path> or --stdio");

    serve::EngineOptions eopts;
    eopts.threads = parser.intOption("--threads");
    if (eopts.threads < 0)
        throw UsageError("--threads must be >= 0 (0 = all cores)");
    const int entries = parser.intOption("--cache-entries");
    if (entries < 1)
        throw UsageError("--cache-entries must be >= 1");
    eopts.cacheEntries = size_t(entries);
    eopts.maxBatch = parser.intOption("--max-batch");
    if (eopts.maxBatch < 1)
        throw UsageError("--max-batch must be >= 1");
    eopts.cacheDir = validateCacheDir(parser.option("--cache"));
    eopts.catalogPath = parser.option("--catalog");
    eopts.maxQueue = parser.intOption("--max-queue");
    if (eopts.maxQueue < 0)
        throw UsageError("--max-queue must be >= 0 (0 = unbounded)");
    const int deadlineMs = parser.intOption("--deadline-ms");
    if (deadlineMs < 0)
        throw UsageError("--deadline-ms must be >= 0 (0 = none)");
    eopts.deadlineMs = deadlineMs;
    eopts.maxQubits = parser.intOption("--max-qubits");
    eopts.maxGates = parser.intOption("--max-gates");
    if (eopts.maxQubits < 0 || eopts.maxGates < 0)
        throw UsageError("--max-qubits/--max-gates must be >= 0 "
                         "(0 = no cap)");

    const std::string faultSpec = parser.option("--faults");
    if (!faultSpec.empty()) {
        try {
            fault::arm(faultSpec);
        } catch (const std::invalid_argument &e) {
            throw UsageError(std::string("--faults: ") + e.what());
        }
    }
    if (fault::armed())
        err << "mirage: serve: FAULT INJECTION armed: '" << fault::spec()
            << "'\n";

    // A client that hangs up mid-response must fail that one write
    // (counted as a dropped response), not kill the server.
    std::signal(SIGPIPE, SIG_IGN);

    try {
        serve::Engine engine(eopts);
        if (!engine.catalogPath().empty()) {
            const auto &load = engine.catalogLoad();
            using Status =
                decomp::EquivalenceLibrary::CacheLoadStatus;
            if (load.status == Status::Ok)
                err << "mirage: serve: fit catalog '"
                    << engine.catalogPath() << "' loaded ("
                    << load.entriesLoaded << " entries)\n";
            else
                err << "mirage: serve: warning: fit catalog "
                    << (load.status == Status::Unreadable
                            ? "unreadable"
                            : "malformed")
                    << ": " << load.message << "; lowering cold\n";
        }
        if (stdio) {
            const uint64_t n = serve::serveStdio(engine, std::cin, out);
            err << "mirage: serve: handled " << n << " request(s)\n";
            return kExitSuccess;
        }
        serve::SocketServer server(engine, socketPath);
        server.start();
        err << "mirage: serving on " << server.path() << " ("
            << engine.poolThreads() << " worker thread(s))\n";
        g_signalServer.store(&server);
        std::signal(SIGINT, serveSignalHandler);
        std::signal(SIGTERM, serveSignalHandler);
        server.run();
        g_signalServer.store(nullptr);
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
        const serve::EngineCounters c = engine.counters();
        err << "mirage: serve: drained after " << c.requests
            << " request(s) (" << c.cacheHits << " cache hit(s), "
            << c.transpiles << " transpile(s))\n";
        return kExitSuccess;
    } catch (const serve::ServeError &e) {
        throw CliError(e.what());
    }
}

// --- serve-bench ------------------------------------------------------------

/**
 * `mirage serve-bench`: the serve throughput/latency trajectory.
 * Runs the two-phase synthetic workload (see serve/traffic.hh) against
 * an in-process engine (default) or a live server (--socket), writes
 * the BENCH_serve.json artifact, and with --check gates CI on the
 * deterministic parameters/counters exactly (timings stay
 * informational).
 */
int
cmdServeBench(const std::vector<std::string> &args, std::ostream &out,
              std::ostream &err)
{
    ArgumentParser parser("serve-bench", "[--check <baseline.json>]");
    parser.addOption("--clients", "N", "8",
                     "concurrent drive-phase client threads");
    parser.addOption("--requests", "N", "6",
                     "drive requests per client");
    parser.addOption("--distinct", "N", "4",
                     "distinct synthetic circuits in the request mix");
    parser.addOption("--width", "N", "5",
                     "qubits per synthetic circuit");
    parser.addOption("--gates", "N", "18",
                     "entangling gates per synthetic circuit");
    parser.addOption("--topology", "SPEC", "grid3x3",
                     "device coupling map for every request");
    parser.addOption("--trials", "N", "4", "layout trials per request");
    parser.addOption("--swap-trials", "N", "2",
                     "routing repeats per layout");
    parser.addOption("--fwd-bwd", "N", "2", "layout refinement rounds");
    parser.addOption("--seed", "N", "20240229",
                     "workload + pipeline seed");
    parser.addOption("--aggression", "N", "-1",
                     "fixed mirror aggression 0-3 (-1 = mixed)");
    parser.addFlag("--lower",
                   "requests also lower to RootISWAP pulses");
    parser.addOption("--threads", "N", "0",
                     "in-process engine pool threads (0 = all cores)");
    parser.addOption("--socket", "PATH", "",
                     "drive a live `mirage serve` at this socket "
                     "instead of an in-process engine");
    parser.addOption("--out", "FILE", "BENCH_serve.json",
                     "artifact path ('-' for stdout; --chaos defaults "
                     "to stdout instead)");
    parser.addOption("--check", "FILE", "",
                     "baseline artifact; exit 1 if the deterministic "
                     "parameters or counters drifted");
    parser.addFlag("--chaos",
                   "robustness mode: drive a server through a seeded "
                   "fault schedule; exit 1 unless it degrades cleanly "
                   "(documented errors, bit-identical successes, no "
                   "crash)");
    parser.addOption("--chaos-requests", "N", "200",
                     "requests driven through the chaos server");
    parser.addOption("--faults", "SPEC", "",
                     "chaos fault schedule (default: every injection "
                     "point; ignored with --socket, where the server "
                     "process owns its schedule)");
    parser.addOption("--chaos-dir", "DIR", "",
                     "chaos scratch directory for the in-process "
                     "server's socket/catalog/cache (default: "
                     "/tmp/mirage-chaos-<pid>)");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (!parser.positionals().empty())
        throw UsageError("serve-bench takes no positional operands");

    // --- chaos mode --------------------------------------------------------
    if (parser.flag("--chaos")) {
        if (!parser.option("--check").empty())
            throw UsageError("--chaos and --check are mutually "
                             "exclusive (chaos gates on its own pass "
                             "flag)");
        serve::ChaosOptions copts;
        copts.requests = parser.intOption("--chaos-requests");
        if (copts.requests < 1)
            throw UsageError("--chaos-requests must be >= 1");
        copts.seed = parser.u64Option("--seed");
        copts.engineThreads = parser.intOption("--threads");
        if (copts.engineThreads < 0)
            throw UsageError("--threads must be >= 0 (0 = all cores)");
        copts.faultSpec = parser.option("--faults");
        copts.socketPath = parser.option("--socket");
        copts.workDir = parser.option("--chaos-dir");
        // Writes happen over SocketClient; a server killed mid-chaos
        // must surface as a reconnect, not a fatal SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);

        json::Value artifact;
        try {
            artifact = serve::runChaos(copts, err);
        } catch (const serve::ServeError &e) {
            throw CliError(e.what());
        }
        // Never clobber the committed throughput baseline with a
        // chaos artifact by default.
        std::string path = parser.option("--out");
        if (path == "BENCH_serve.json")
            path = "-";
        writeOutput(path, artifact.dump(2), out);
        if (path != "-" && !path.empty())
            out << "wrote " << path << "\n";
        const json::Value *pass = artifact.find("pass");
        if (!pass || !pass->asBool()) {
            err << "mirage: serve-bench --chaos FAILED (see the "
                   "artifact's results section)\n";
            return kExitFailure;
        }
        return kExitSuccess;
    }

    serve::TrafficOptions topts;
    auto positive = [&parser](const char *flag, int *slot) {
        int v = parser.intOption(flag);
        if (v < 1)
            throw UsageError(std::string("option '") + flag +
                             "' must be >= 1");
        *slot = v;
    };
    positive("--clients", &topts.clients);
    positive("--requests", &topts.requestsPerClient);
    positive("--distinct", &topts.distinct);
    positive("--trials", &topts.trials);
    positive("--swap-trials", &topts.swapTrials);
    topts.width = parser.intOption("--width");
    if (topts.width < 2)
        throw UsageError("--width must be >= 2 (entangling gates need "
                         "two qubits)");
    topts.twoQubitGates = parser.intOption("--gates");
    if (topts.twoQubitGates < 1)
        throw UsageError("--gates must be >= 1");
    topts.fwdBwd = parser.intOption("--fwd-bwd");
    if (topts.fwdBwd < 0)
        throw UsageError("--fwd-bwd must be >= 0");
    topts.aggression = parser.intOption("--aggression");
    if (topts.aggression < -1 || topts.aggression > 3)
        throw UsageError("--aggression must be in [-1, 3] (-1 = mixed)");
    topts.engineThreads = parser.intOption("--threads");
    if (topts.engineThreads < 0)
        throw UsageError("--threads must be >= 0 (0 = all cores)");
    topts.seed = parser.u64Option("--seed");
    topts.topology = parser.option("--topology");
    topts.lower = parser.flag("--lower");
    topts.socketPath = parser.option("--socket");

    // Read the baseline BEFORE writing the fresh artifact: with the
    // default --out the two paths coincide (the committed repo-root
    // BENCH_serve.json), and writing first would gate the new artifact
    // against itself -- always passing.
    const std::string baselinePath = parser.option("--check");
    json::Value baseline;
    if (!baselinePath.empty()) {
        try {
            baseline = json::parse(readInput(baselinePath));
        } catch (const json::ParseError &e) {
            err << "mirage: " << baselinePath << ":" << e.line() << ":"
                << e.column() << ": " << e.what() << "\n";
            return kExitFailure;
        }
    }

    json::Value artifact;
    try {
        artifact = serve::runTraffic(topts, err);
    } catch (const serve::ServeError &e) {
        throw CliError(e.what());
    }

    const std::string path = parser.option("--out");
    writeOutput(path, artifact.dump(2), out);
    if (path != "-" && !path.empty())
        out << "wrote " << path << "\n";

    if (!baselinePath.empty()) {
        std::string report;
        const bool ok =
            serve::checkServeArtifact(artifact, baseline, &report);
        if (!report.empty())
            out << report;
        if (!ok) {
            err << "mirage: serve-bench counters drifted versus '"
                << baselinePath << "'\n";
            return kExitFailure;
        }
        out << "serve-bench check OK: deterministic counters match "
            << baselinePath << "\n";
    }
    return kExitSuccess;
}

// --- catalog ----------------------------------------------------------------

/**
 * `mirage catalog`: maintain the committed FIT_CATALOG.bin. `build`
 * fits the full target set cold and writes the catalog; `check`
 * refits and byte-compares against the committed file (the CI gate:
 * any drift -- unreadable, malformed, or changed bytes -- fails and
 * leaves the fresh bytes next to the stale file); `stats` inspects a
 * catalog without fitting anything.
 */
int
cmdCatalog(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    ArgumentParser parser("catalog", "<build | check | stats>");
    parser.addOption("--path", "FILE", decomp::kCatalogFileName,
                     "catalog file to write (build), compare against "
                     "(check), or inspect (stats)");
    parser.addOption("--threads", "N", "1",
                     "routing worker threads while collecting the "
                     "target set (0 = all cores; the catalog bytes do "
                     "not depend on this)");
    parser.parse(args);
    if (parser.helpRequested()) {
        out << parser.helpText();
        return kExitSuccess;
    }
    if (parser.positionals().size() != 1)
        throw UsageError("catalog expects exactly one action: build, "
                         "check, or stats; see 'mirage catalog --help'");
    const std::string action = parser.positionals()[0];
    const std::string path = parser.option("--path");
    const int threads = parser.intOption("--threads");
    if (threads < 0)
        throw UsageError("--threads must be >= 0 (0 = all cores)");

    using Status = decomp::EquivalenceLibrary::CacheLoadStatus;

    if (action == "stats") {
        decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
        const auto load = lib.loadCacheFileDetailed(path);
        if (load.status != Status::Ok) {
            err << "mirage: catalog stats: "
                << (load.status == Status::Unreadable ? "unreadable"
                                                      : "malformed")
                << ": " << load.message << "\n";
            return kExitFailure;
        }
        out << "catalog: " << path << "\n"
            << "entries: " << lib.cacheSize() << "\n"
            << "k histogram:\n";
        for (const auto &[k, count] : lib.kHistogram())
            out << "  k=" << k << ": " << count << "\n";
        return kExitSuccess;
    }
    if (action != "build" && action != "check")
        throw UsageError("unknown catalog action '" + action +
                         "' (expected build, check, or stats)");

    err << "mirage: fitting the catalog target set cold (Table III + "
           "mirror workloads; several minutes)...\n";
    auto lib = buildCatalogLibrary(threads);
    std::ostringstream fresh;
    lib->saveCache(fresh);

    if (action == "build") {
        // Atomic replace: a crash (or SIGKILL) mid-build must leave
        // either the old committed catalog or the new one, never a
        // torn file that poisons every warm start.
        std::string werr;
        if (!writeFileAtomic(path, fresh.str(), &werr))
            throw CliError("cannot write '" + path + "': " + werr);
        out << "wrote " << path << " (" << lib->cacheSize()
            << " entries, " << lib->fitCount() << " fits)\n";
        return kExitSuccess;
    }

    // check: classify the committed file first so CI logs say WHICH
    // way it is bad (missing/unreadable vs corrupt vs drifted bytes).
    decomp::EquivalenceLibrary probe(2, /*preseed=*/false);
    const auto load = probe.loadCacheFileDetailed(path);
    std::string failure;
    if (load.status == Status::Unreadable)
        failure = "unreadable: " + load.message;
    else if (load.status == Status::Malformed)
        failure = "malformed: " + load.message;
    else if (readInput(path) != fresh.str())
        failure = "'" + path +
                  "' drifted from the freshly fitted target set";
    if (failure.empty()) {
        out << "catalog check OK: " << path
            << " matches the freshly fitted target set ("
            << lib->cacheSize() << " entries)\n";
        return kExitSuccess;
    }
    const std::string freshPath = path + ".fresh";
    {
        std::ofstream f(freshPath);
        if (f)
            f << fresh.str();
    }
    err << "mirage: catalog check: " << failure
        << " (fresh bytes left at '" << freshPath
        << "'; regenerate with 'mirage catalog build')\n";
    return kExitFailure;
}

// --- dispatch ---------------------------------------------------------------

const char *const kVersion = "0.1.0";

std::string
usage()
{
    return "usage: mirage <command> [options]\n"
           "\n"
           "commands:\n"
           "  transpile   run the full MIRAGE pipeline on an OpenQASM 2 "
           "file\n"
           "  sweep       run a registered paper experiment, emit a "
           "JSON/CSV artifact\n"
           "  bench       routing perf trajectory (BENCH_fig13.json); "
           "--check gates CI\n"
           "  serve       persistent transpilation service (Unix socket "
           "or stdio)\n"
           "  serve-bench serve throughput/latency (BENCH_serve.json); "
           "--check gates CI,\n"
           "              --chaos runs the fault-tolerance gate\n"
           "  catalog     build/check/inspect the committed fit catalog "
           "(FIT_CATALOG.bin)\n"
           "  report      render sweep artifacts as markdown tables\n"
           "  version     print the version\n"
           "  help        show this message\n"
           "\n"
           "'mirage <command> --help' documents each command;\n"
           "'mirage sweep --list' names the registered experiments.\n";
}

} // namespace

int
run(const std::vector<std::string> &args, std::ostream &out,
    std::ostream &err)
{
    if (args.empty()) {
        err << usage();
        return kExitUsage;
    }
    const std::string &command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());

    // MIRAGE_FAULTS arms the deterministic fault schedule for any
    // command (a --faults flag, where offered, re-arms over this).
    if (const char *spec = std::getenv("MIRAGE_FAULTS");
        spec && *spec && !fault::armed()) {
        try {
            fault::arm(spec);
            err << "mirage: FAULT INJECTION armed from MIRAGE_FAULTS: '"
                << spec << "'\n";
        } catch (const std::invalid_argument &e) {
            err << "mirage: bad MIRAGE_FAULTS spec: " << e.what()
                << "\n";
            return kExitUsage;
        }
    }

    try {
        if (command == "help" || command == "--help" || command == "-h") {
            out << usage();
            return kExitSuccess;
        }
        if (command == "version" || command == "--version") {
            out << "mirage " << kVersion << "\n";
            return kExitSuccess;
        }
        if (command == "transpile")
            return cmdTranspile(rest, out, err);
        if (command == "sweep")
            return cmdSweep(rest, out, err);
        if (command == "bench")
            return cmdBench(rest, out, err);
        if (command == "serve")
            return cmdServe(rest, out, err);
        if (command == "serve-bench")
            return cmdServeBench(rest, out, err);
        if (command == "catalog")
            return cmdCatalog(rest, out, err);
        if (command == "report")
            return cmdReport(rest, out, err);
        err << "mirage: unknown command '" << command << "'\n\n"
            << usage();
        return kExitUsage;
    } catch (const UsageError &e) {
        err << "mirage: " << e.what() << "\n";
        return kExitUsage;
    } catch (const CliError &e) {
        err << "mirage: " << e.what() << "\n";
        return kExitFailure;
    } catch (const std::exception &e) {
        err << "mirage: " << e.what() << "\n";
        return kExitFailure;
    }
}

} // namespace mirage::cli
