/**
 * @file
 * Cost model implementation: coverage-polytope lookup of minimal
 * basis applications k with a quantized-coordinate LRU table, plus the
 * decoherence fidelity model of Eq. 2.
 */

#include "monodromy/cost_model.hh"

#include <cmath>

#include "weyl/catalog.hh"

namespace mirage::monodromy {

double
decayFidelity(double duration)
{
    // Lifetime normalized so that a unit-duration pulse has fidelity 0.99:
    // F = e^{-d/T} with T = -1/ln(0.99) (Eq. 2 with the paper's anchors).
    static const double inv_lifetime = -std::log(0.99);
    return std::exp(-duration * inv_lifetime);
}

CostModel::CostModel(const CoverageSet &coverage)
    : coverage_(&coverage), cache_(1 << 16)
{
    swapCost_ = coverage_->minK(weyl::coordSWAP()) * basisDuration();
}

int
CostModel::kFor(const Coord &c) const
{
    if (!cacheEnabled_)
        return coverage_->minK(c);
    Key key{int64_t(std::llround(c.a * 1e7)),
            int64_t(std::llround(c.b * 1e7)),
            int64_t(std::llround(c.c * 1e7))};
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (auto hit = cache_.get(key))
            return *hit;
    }
    // Polytope iteration runs unlocked; concurrent misses on the same
    // key just compute the same value and the second put is a no-op
    // overwrite.
    int k = coverage_->minK(c);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    cache_.put(key, k);
    return k;
}

CostModel
makeRootIswapCostModel(int n)
{
    return CostModel(coverageForRootIswap(n));
}

} // namespace mirage::monodromy
