/**
 * @file
 * Monodromy coverage sets: construction of the alcove polytopes
 * reachable by k basis applications and their mirror-extended
 * counterparts (paper Section III).
 */

#include "monodromy/coverage.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "decomp/optimize.hh"
#include "geometry/quadrature.hh"
#include "monodromy/haar_density.hh"
#include "weyl/can.hh"
#include "weyl/catalog.hh"

namespace mirage::monodromy {

using geometry::Halfspace;
using geometry::Vec3;
using linalg::kPi;

BasisSpec
BasisSpec::rootIswap(int n)
{
    MIRAGE_ASSERT(n >= 1, "bad iSWAP root degree");
    BasisSpec b;
    b.name = (n == 1) ? "iswap" : ("riswap-" + std::to_string(n));
    b.matrix = weyl::gateRootISWAP(n);
    b.coords = weyl::coordRootISWAP(n);
    b.duration = 1.0 / n;
    b.gridDivisor = n;
    return b;
}

BasisSpec
BasisSpec::cnot()
{
    BasisSpec b;
    b.name = "cnot";
    b.matrix = weyl::gateCX();
    b.coords = weyl::coordCNOT();
    b.duration = 1.0;
    b.gridDivisor = 1;
    return b;
}

namespace {

/** Candidate facet directions: integer vectors with |component| <= 2,
 * primitive (gcd 1), both orientations kept. */
const std::vector<Vec3> &
candidateDirections()
{
    static const std::vector<Vec3> dirs = [] {
        std::vector<Vec3> out;
        auto gcd3 = [](int a, int b, int c) {
            a = std::abs(a);
            b = std::abs(b);
            c = std::abs(c);
            int g = std::gcd(a, std::gcd(b, c));
            return g == 0 ? 1 : g;
        };
        std::vector<std::array<int, 3>> seen;
        for (int i = -2; i <= 2; ++i) {
            for (int j = -2; j <= 2; ++j) {
                for (int k = -2; k <= 2; ++k) {
                    if (i == 0 && j == 0 && k == 0)
                        continue;
                    int g = gcd3(i, j, k);
                    std::array<int, 3> v = {i / g, j / g, k / g};
                    if (std::find(seen.begin(), seen.end(), v) != seen.end())
                        continue;
                    seen.push_back(v);
                    out.push_back(Vec3{double(v[0]), double(v[1]),
                                       double(v[2])});
                }
            }
        }
        return out;
    }();
    return dirs;
}

/** Product of k basis applications with the given interleaver params. */
Mat4
interleavedProduct(const Mat4 &basis, int k, const std::vector<double> &p)
{
    Mat4 w = basis;
    for (int j = 0; j < k - 1; ++j) {
        const double *q = p.data() + 6 * j;
        Mat4 local = linalg::kron(weyl::gateU3(q[0], q[1], q[2]),
                                  weyl::gateU3(q[3], q[4], q[5]));
        w = basis * (local * w);
    }
    return w;
}

Vec3
signedVec(const weyl::Coord &c)
{
    auto s = weyl::signedRep(c);
    return Vec3{s[0], s[1], s[2]};
}

/**
 * Landmark coordinates (alcove vertices, edge midpoints, centroid) whose
 * reachability is certified by direct numerical fits. Random sampling
 * alone misses the chamber corners because the Haar density vanishes
 * there; a certified landmark pins the supports exactly.
 */
const std::vector<Vec3> &
landmarkPoints()
{
    static const std::vector<Vec3> pts = [] {
        const double q = kPi / 4.0;
        std::vector<Vec3> out = {
            {0, 0, 0},             // identity
            {q, 0, 0},             // CNOT
            {q, q, 0},             // iSWAP
            {q, q, q},             // SWAP
            {q, q, -q},            // SWAP (other boundary sign)
            {q / 2, q / 2, 0},     // sqrt(iSWAP)
            {q / 2, q / 2, q / 2}, // sqrt(SWAP)
            {q / 2, q / 2, -q / 2}, // sqrt(SWAP)^dagger
            {q, q / 2, 0},         // B gate
            {q, q / 2, q / 2},     //
            {q, q / 2, -q / 2},    //
            {q, q, q / 2},         //
            {q, q, -q / 2},        //
            {q / 2, 0, 0},         // sqrt(CNOT) class
            {3 * q / 4, q / 2, q / 4},  // interior points
            {3 * q / 4, q / 2, -q / 4},
        };
        // All landmarks must be genuine signed-chamber points: the
        // supports are enforced on the raw coordinates.
        for (const auto &p : out) {
            MIRAGE_ASSERT(weyl::inSignedChamber({p.x, p.y, p.z}, 1e-9),
                          "landmark outside the signed chamber");
        }
        return out;
    }();
    return pts;
}

/** Point polytope at a coordinate (six axis-aligned halfspaces). */
Polytope
pointPolytope(const weyl::Coord &c)
{
    auto s = weyl::signedRep(c);
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, s[0]},  {{-1, 0, 0}, -s[0]}, {{0, 1, 0}, s[1]},
        {{0, -1, 0}, -s[1]}, {{0, 0, 1}, s[2]},  {{0, 0, -1}, -s[2]},
    };
    return Polytope(std::move(hs));
}

} // namespace

std::vector<Polytope>
mirrorImage(const Polytope &region)
{
    // Eq. 1 in signed-chamber coordinates is piecewise affine with the
    // branch split on the sign of z:
    //   z <= 0:  (x,y,z) -> (pi/4+z, pi/4-y, pi/4-x)
    //   z >= 0:  (x,y,z) -> (pi/4-z, pi/4-y, x-pi/4)
    // and both branches map the chamber into itself.
    const double q = kPi / 4.0;
    Polytope chamber = geometry::signedChamber();

    Polytope lower = region;
    lower.addHalfspace(Halfspace{{0, 0, 1}, 0}); // z <= 0
    Polytope piece1 =
        lower.affineImage({0, 0, 1, 0, -1, 0, -1, 0, 0}, Vec3{q, q, q})
            .intersect(chamber);

    Polytope upper = region;
    upper.addHalfspace(Halfspace{{0, 0, -1}, 0}); // z >= 0
    Polytope piece2 =
        upper.affineImage({0, 0, -1, 0, -1, 0, 1, 0, 0}, Vec3{q, q, -q})
            .intersect(chamber);

    return {piece1, piece2};
}

CoverageSet
CoverageSet::build(const BasisSpec &basis, const CoverageBuildOptions &opts,
                   const CoverageSet *parent, int parent_stride)
{
    CoverageSet cs;
    cs.basis_ = basis;

    Rng rng(opts.seed);
    const auto &dirs = candidateDirections();
    const double grid = kPi / (16.0 * basis.gridDivisor);
    const double snap_tol = 0.012;
    const double q4 = kPi / 4.0;

    // k = 1: a single point (up to local gates).
    cs.perK_.push_back(
        pointPolytope(basis.coords).intersect(geometry::signedChamber()));
    {
        auto pieces = mirrorImage(cs.perK_.back());
        pieces.insert(pieces.begin(), cs.perK_.back());
        cs.mirror_.push_back(std::move(pieces));
    }

    std::vector<Vec3> prev_vertices = {signedVec(basis.coords)};
    std::vector<bool> certified(landmarkPoints().size(), false);
    Rng fit_rng(opts.seed ^ 0xF17ULL);

    for (int k = 2; k <= opts.maxK; ++k) {
        const int nparams = 6 * (k - 1);
        std::vector<double> supports(dirs.size(),
                                     -std::numeric_limits<double>::infinity());
        std::vector<std::vector<double>> argmax(dirs.size());

        // Nesting: P_{k-1} subset P_k, so its vertices lower-bound every
        // support exactly.
        for (size_t d = 0; d < dirs.size(); ++d) {
            for (const auto &v : prev_vertices)
                supports[d] = std::max(supports[d], dirs[d].dot(v));
        }

        // Bulk sampling of interleaved products.
        for (int s = 0; s < opts.samplesPerK; ++s) {
            std::vector<double> p(static_cast<size_t>(nparams));
            for (auto &x : p)
                x = rng.uniform(-kPi, kPi);
            weyl::Coord c =
                weyl::weylCoordinates(interleavedProduct(basis.matrix, k, p));
            Vec3 v = signedVec(c);
            for (size_t d = 0; d < dirs.size(); ++d) {
                double h = dirs[d].dot(v);
                if (h > supports[d]) {
                    supports[d] = h;
                    argmax[d] = p;
                }
            }
        }

        // Exact inherited bounds: j parent-basis gates = j*stride gates
        // of this basis, so the parent polytope's vertices belong to
        // P_k for every j with j*stride <= k.
        if (parent && parent_stride >= 1) {
            int j = std::min(k / parent_stride, parent->kMax());
            if (j >= 1) {
                for (const auto &v :
                     parent->polytope(j).vertices()) {
                    for (size_t d = 0; d < dirs.size(); ++d)
                        supports[d] =
                            std::max(supports[d], dirs[d].dot(v));
                }
            }
        }

        // Exact power landmarks: k consecutive basis pulses realize
        // CAN(k*beta, k*beta, 0) with no interleavers, pinning the
        // x+y direction for free.
        for (int j = 1; j <= k; ++j) {
            weyl::Coord pw = weyl::canonicalize(
                j * basis.coords.a, j * basis.coords.b, j * basis.coords.c);
            Vec3 v = signedVec(pw);
            for (size_t d = 0; d < dirs.size(); ++d)
                supports[d] = std::max(supports[d], dirs[d].dot(v));
            // The x == pi/4 face carries both z-sign representatives.
            if (std::fabs(v.x - kPi / 4.0) < 1e-9) {
                Vec3 w{v.x, v.y, -v.z};
                for (size_t d = 0; d < dirs.size(); ++d)
                    supports[d] = std::max(supports[d], dirs[d].dot(w));
            }
        }

        // Landmark certification: direct numerical fits prove membership
        // of chamber corners the random sampling cannot reach.
        {
            decomp::FitOptions fo;
            fo.restarts = 5 + k / 2;
            fo.adamIterations = 350 + 60 * k;
            fo.targetInfidelity = 1e-10;
            const auto &pts = landmarkPoints();
            for (size_t i = 0; i < pts.size(); ++i) {
                if (certified[i])
                    continue;
                Mat4 target = weyl::canonicalGate(pts[i].x, pts[i].y,
                                                  pts[i].z);
                auto fit = decomp::fitAnsatz(target, basis.matrix, k,
                                             fit_rng, fo);
                // Reachable fits converge to ~1e-9 infidelity while
                // unreachable landmarks stall around 1e-3; 1e-6 separates
                // the two regimes with orders of magnitude to spare.
                if (fit.fidelity >= 1.0 - 1e-6)
                    certified[i] = true;
            }
            for (size_t d = 0; d < dirs.size(); ++d) {
                for (size_t i = 0; i < pts.size(); ++i) {
                    if (certified[i])
                        supports[d] =
                            std::max(supports[d], dirs[d].dot(pts[i]));
                }
            }
        }

        // Per-direction support refinement.
        if (opts.refineSupports) {
            for (size_t d = 0; d < dirs.size(); ++d) {
                if (argmax[d].empty())
                    continue;
                decomp::ObjectiveFn obj =
                    [&](const std::vector<double> &p) {
                        weyl::Coord c = weyl::weylCoordinates(
                            interleavedProduct(basis.matrix, k, p));
                        return -dirs[d].dot(signedVec(c));
                    };
                double val = 0;
                decomp::nelderMead(obj, argmax[d], 0.15, opts.refineEvals,
                                   &val);
                supports[d] = std::max(supports[d], -val);
            }
        }

        // Snap supports onto the rational grid; pad un-snapped values so
        // the polytope never excludes genuinely reachable points.
        std::vector<Halfspace> hs;
        for (size_t d = 0; d < dirs.size(); ++d) {
            double h = supports[d];
            double snapped = std::round(h / grid) * grid;
            if (std::fabs(snapped - h) <= snap_tol)
                h = snapped;
            else
                h += 1e-9;
            hs.push_back(Halfspace{dirs[d], h});
        }
        Polytope poly =
            Polytope(std::move(hs)).intersect(geometry::signedChamber());
        poly.removeRedundancy();

        cs.perK_.push_back(poly);
        auto pieces = mirrorImage(poly);
        pieces.insert(pieces.begin(), poly);
        cs.mirror_.push_back(std::move(pieces));

        prev_vertices = poly.vertices();

        // Full coverage is a geometric fact: the polytope is convex, so
        // it equals the chamber as soon as it contains all four chamber
        // vertices.
        const Vec3 chamber_vertices[4] = {
            {0, 0, 0}, {q4, 0, 0}, {q4, q4, q4}, {q4, q4, -q4}};
        bool full = true;
        for (const auto &v : chamber_vertices) {
            if (!poly.contains(v, 1e-9)) {
                full = false;
                break;
            }
        }
        if (full)
            break;
    }
    return cs;
}

int
CoverageSet::minK(const Coord &c) const
{
    // The identity class costs nothing (this is what makes the mirror of
    // a SWAP free: SWAP * SWAP = I is pure relabeling).
    if (c.a < 1e-9 && c.b < 1e-9 && c.c < 1e-9)
        return 0;
    auto s = weyl::signedRep(c);
    std::vector<Vec3> reps = {Vec3{s[0], s[1], s[2]}};
    // On the x == pi/4 face the class has both z-sign representatives.
    if (std::fabs(s[0] - kPi / 4.0) < 1e-9 && std::fabs(s[2]) > 1e-12)
        reps.push_back(Vec3{s[0], s[1], -s[2]});
    for (int k = 1; k <= kMax(); ++k) {
        for (const auto &rep : reps) {
            if (perK_[size_t(k - 1)].contains(rep, 1e-6))
                return k;
        }
    }
    // Numerical edge: fall back to the full-coverage depth.
    return kMax();
}

int
CoverageSet::minKMirrored(const Coord &c) const
{
    return std::min(minK(c), minK(weyl::mirrorCoord(c)));
}

double
CoverageSet::haarFractionAt(int k) const
{
    if (fracCache_.size() < perK_.size())
        fracCache_.assign(perK_.size(), -1.0);
    double &slot = fracCache_[size_t(k - 1)];
    if (slot < 0)
        slot = haarFraction(perK_[size_t(k - 1)]);
    return slot;
}

double
CoverageSet::mirrorHaarFractionAt(int k) const
{
    if (mirrorFracCache_.size() < mirror_.size())
        mirrorFracCache_.assign(mirror_.size(), -1.0);
    double &slot = mirrorFracCache_[size_t(k - 1)];
    if (slot < 0)
        slot = haarFraction(mirror_[size_t(k - 1)]);
    return slot;
}

const CoverageSet &
coverageForRootIswap(int n)
{
    // Recursive: building root n inserts its divisor parents first. The
    // lock guards callers invoking transpile() concurrently from their
    // own threads (transpileMany constructs cost models sequentially);
    // references stay valid because std::map never relocates nodes.
    static std::recursive_mutex registry_mutex;
    static std::map<int, CoverageSet> registry;
    std::lock_guard<std::recursive_mutex> lock(registry_mutex);
    auto it = registry.find(n);
    if (it == registry.end()) {
        // Largest proper divisor gives the tightest exact parent.
        const CoverageSet *parent = nullptr;
        int stride = 1;
        for (int m = n / 2; m >= 1; --m) {
            if (n % m == 0) {
                parent = &coverageForRootIswap(m);
                stride = n / m;
                break;
            }
        }
        it = registry
                 .emplace(n, CoverageSet::build(BasisSpec::rootIswap(n), {},
                                                parent, stride))
                 .first;
    }
    return it->second;
}

const CoverageSet &
coverageForCnot()
{
    static const CoverageSet cs = CoverageSet::build(BasisSpec::cnot());
    return cs;
}

} // namespace mirage::monodromy
