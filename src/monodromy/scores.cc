/**
 * @file
 * Haar scores: exact expected decomposition cost by polytope
 * integration and the Monte Carlo approximation of the paper's
 * Algorithm 1.
 */

#include "monodromy/scores.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "decomp/numerical.hh"
#include "linalg/random_unitary.hh"
#include "monodromy/cost_model.hh"
#include "monodromy/haar_density.hh"
#include "weyl/can.hh"

namespace mirage::monodromy {

HaarScore
haarScoreExact(const CoverageSet &coverage, bool mirrors)
{
    const double dur = coverage.basis().duration;
    const int kmax = coverage.kMax();

    HaarScore out;
    double prev = 0;
    for (int k = 1; k <= kmax; ++k) {
        double frac = mirrors ? coverage.mirrorHaarFractionAt(k)
                              : coverage.haarFractionAt(k);
        // Clamp out quadrature noise and enforce monotonicity.
        frac = std::clamp(frac, prev, 1.0);
        double mass = frac - prev; // P(exact depth == k)
        prev = frac;
        out.score += mass * k * dur;
        out.fidelity += mass * decayFidelity(k * dur);
    }
    // Remaining mass (quadrature residue) sits at kmax.
    double rest = 1.0 - prev;
    if (rest > 0) {
        out.score += rest * kmax * dur;
        out.fidelity += rest * decayFidelity(kmax * dur);
    }
    return out;
}

HaarScore
haarScoreMonteCarlo(const CoverageSet &coverage, const MonteCarloOptions &opts)
{
    Rng rng(opts.seed);
    const double dur = coverage.basis().duration;
    const Mat4 &basis_matrix = coverage.basis().matrix;

    double total_cost = 0;
    double total_fid = 0;

    decomp::FitOptions fit_opts;
    fit_opts.restarts = opts.fitRestarts;
    fit_opts.adamIterations = opts.fitIterations;
    fit_opts.polish = false;
    fit_opts.targetInfidelity = 1e-9;

    for (int it = 1; it <= opts.iterations; ++it) {
        Mat4 target = linalg::randomSU4(rng);
        Coord c = weyl::weylCoordinates(target);

        int k_exact = opts.mirrors ? coverage.minKMirrored(c)
                                   : coverage.minK(c);
        double best_cost = k_exact * dur;
        double best_fid = decayFidelity(best_cost);

        if (opts.approximate) {
            // Try every cheaper depth; accept when the total fidelity
            // (decomposition accuracy x decoherence decay) improves.
            // Mirrors allow fitting either the gate or its mirror.
            for (int k = 1; k < k_exact; ++k) {
                double circuit_fid = decayFidelity(k * dur);
                if (circuit_fid <= best_fid)
                    break; // deeper candidates only get worse
                double fit_fid = decomp::decomposeWithK(
                                     target, basis_matrix, k, rng, fit_opts)
                                     .fidelity;
                if (opts.mirrors) {
                    Mat4 mirror_target =
                        weyl::canonicalGate(weyl::mirrorCoord(c).a,
                                            weyl::mirrorCoord(c).b,
                                            weyl::mirrorCoord(c).c);
                    double mfid = decomp::decomposeWithK(mirror_target,
                                                         basis_matrix, k,
                                                         rng, fit_opts)
                                      .fidelity;
                    fit_fid = std::max(fit_fid, mfid);
                }
                double total = circuit_fid * fit_fid;
                if (total > best_fid) {
                    best_fid = total;
                    best_cost = k * dur;
                    break; // cheapest acceptable depth wins
                }
            }
        }

        total_cost += best_cost;
        total_fid += best_fid;
        if (opts.progress)
            opts.progress(it, total_cost / it);
    }

    HaarScore out;
    out.score = total_cost / opts.iterations;
    out.fidelity = total_fid / opts.iterations;
    return out;
}

} // namespace mirage::monodromy
