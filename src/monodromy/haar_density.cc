/**
 * @file
 * Haar density on the Weyl alcove: the sin^2-product density, its
 * normalization, and Haar-weighted polytope measures.
 */

#include "monodromy/haar_density.hh"

#include <cmath>

#include "geometry/quadrature.hh"
#include "linalg/random_unitary.hh"

namespace mirage::monodromy {

double
haarDensity(const Vec3 &c)
{
    // KAK integration Jacobian for the type-AI symmetric space
    // SU(4)/SO(4) (local gates become SO(4) in the magic basis): with the
    // magic-basis angles d_j, the density is prod_{i<j} |sin(d_i - d_j)|,
    // and the pairwise differences reduce to 2(c_i +- c_j).
    auto s = [](double x) { return std::fabs(std::sin(2.0 * x)); };
    return s(c.x + c.y) * s(c.x - c.y) * s(c.x + c.z) * s(c.x - c.z) *
           s(c.y + c.z) * s(c.y - c.z);
}

double
alcoveHaarMass()
{
    static const double mass = geometry::integratePolytope(
        geometry::signedChamber(), haarDensity, /*depth=*/4);
    return mass;
}

double
haarFraction(const std::vector<Polytope> &members, int depth)
{
    if (members.empty())
        return 0.0;
    double num = geometry::integrateUnion(members, geometry::signedChamber(),
                                          haarDensity, depth);
    return num / alcoveHaarMass();
}

double
haarFraction(const Polytope &region, int depth)
{
    return haarFraction(std::vector<Polytope>{region}, depth);
}

weyl::Coord
sampleHaarCoord(Rng &rng)
{
    return weyl::weylCoordinates(linalg::randomSU4(rng));
}

Vec3
sampleHaarSigned(Rng &rng)
{
    auto s = weyl::signedRep(sampleHaarCoord(rng));
    return Vec3{s[0], s[1], s[2]};
}

} // namespace mirage::monodromy
