/**
 * @file
 * Haar measure pushed forward onto the Weyl alcove.
 *
 * The distribution of canonical coordinates of a Haar-random SU(4) element
 * has density proportional to prod_{i<j} sin^2(c_i + c_j) sin^2(c_i - c_j)
 * on the alcove. This module provides the density, its normalization, the
 * Haar-weighted measure of polytope regions (the paper's cost-weighted
 * polytope integration), and direct Haar sampling for cross-validation.
 */

#ifndef MIRAGE_MONODROMY_HAAR_DENSITY_HH
#define MIRAGE_MONODROMY_HAAR_DENSITY_HH

#include <vector>

#include "common/rng.hh"
#include "geometry/polytope.hh"
#include "weyl/coordinates.hh"

namespace mirage::monodromy {

using geometry::Polytope;
using geometry::Vec3;

/** Unnormalized Haar density at an alcove point. */
double haarDensity(const Vec3 &c);

/** Integral of haarDensity over the signed chamber (cached). */
double alcoveHaarMass();

/**
 * Haar-weighted fraction of the signed chamber covered by the union of
 * the given polytopes, in [0, 1]. Deterministic (tetrahedral quadrature
 * with inclusion-exclusion).
 */
double haarFraction(const std::vector<Polytope> &members, int depth = 4);

/** Haar-weighted fraction for a single region. */
double haarFraction(const Polytope &region, int depth = 4);

/** Weyl coordinates of a Haar-random SU(4) element. */
weyl::Coord sampleHaarCoord(Rng &rng);

/** Signed-chamber coordinates of a Haar-random SU(4) element. */
Vec3 sampleHaarSigned(Rng &rng);

} // namespace mirage::monodromy

#endif // MIRAGE_MONODROMY_HAAR_DENSITY_HH
