/**
 * @file
 * Decomposition cost model used by MIRAGE while routing.
 *
 * Maps Weyl coordinates to the minimum number of basis applications k via
 * the coverage polytopes, with an LRU lookup table over quantized
 * coordinates (paper Fig. 13a / Section VI-C). Also provides the
 * decoherence fidelity model of Eq. 2: F = e^{-duration/lifetime} with the
 * lifetime normalized so a unit-duration iSWAP has fidelity 0.99.
 */

#ifndef MIRAGE_MONODROMY_COST_MODEL_HH
#define MIRAGE_MONODROMY_COST_MODEL_HH

#include <cstdint>
#include <mutex>

#include "common/lru_cache.hh"
#include "monodromy/coverage.hh"

namespace mirage::monodromy {

/** Eq. 2 fidelity for a pulse train of total duration d (iSWAP units). */
double decayFidelity(double duration);

/**
 * Cost/fidelity oracle for one basis gate.
 *
 * Safe to share across threads: parallel routing trials
 * (router::routeWithTrials with threads > 1) query one instance
 * concurrently, so the LRU lookup is serialized by an internal mutex.
 * The underlying CoverageSet queries (minK) are const and lock-free.
 */
class CostModel
{
  public:
    explicit CostModel(const CoverageSet &coverage);

    /** Copies share the coverage set but get a fresh, empty cache. */
    CostModel(const CostModel &o)
        : coverage_(o.coverage_), swapCost_(o.swapCost_),
          cacheEnabled_(o.cacheEnabled_)
    {}

    const BasisSpec &basis() const { return coverage_->basis(); }
    double basisDuration() const { return coverage_->basis().duration; }

    /** Minimum applications of the basis realizing these coordinates. */
    int kFor(const Coord &c) const;
    /** Pulse cost: kFor * duration. */
    double costOf(const Coord &c) const { return kFor(c) * basisDuration(); }
    /** Pulse cost of the mirror gate U' = U * SWAP. */
    double mirrorCostOf(const Coord &c) const
    {
        return kFor(weyl::mirrorCoord(c)) * basisDuration();
    }
    /** Pulse cost of a bare SWAP in this basis. */
    double swapCost() const { return swapCost_; }
    /** Circuit fidelity of an exact decomposition (Eq. 2). */
    double circuitFidelity(const Coord &c) const
    {
        return decayFidelity(costOf(c));
    }

    uint64_t cacheHits() const
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        return cache_.hits();
    }
    uint64_t cacheMisses() const
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        return cache_.misses();
    }
    /** Disable/enable the LRU (for the Fig. 13 ablation). */
    void setCacheEnabled(bool enabled) { cacheEnabled_ = enabled; }

  private:
    struct Key
    {
        int64_t a, b, c;
        bool operator==(const Key &o) const
        {
            return a == o.a && b == o.b && c == o.c;
        }
    };
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            uint64_t h = 0xcbf29ce484222325ULL;
            for (int64_t v : {k.a, k.b, k.c}) {
                h ^= uint64_t(v);
                h *= 0x100000001b3ULL;
            }
            return size_t(h);
        }
    };

    const CoverageSet *coverage_;
    double swapCost_ = 0;
    bool cacheEnabled_ = true;
    mutable std::mutex cacheMutex_;
    mutable LruCache<Key, int, KeyHash> cache_;
};

/** Cost model for the n-th root of iSWAP (process-cached coverage). */
CostModel makeRootIswapCostModel(int n);

} // namespace mirage::monodromy

#endif // MIRAGE_MONODROMY_COST_MODEL_HH
