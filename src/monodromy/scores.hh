/**
 * @file
 * Haar scores: expected decomposition cost of a Haar-random two-qubit
 * unitary in a given basis (paper Section III-C, Tables I and II, Fig. 5).
 *
 * The exact scores integrate the Haar density over the coverage polytopes
 * (with or without mirror extension). The approximate scores run the
 * paper's Algorithm 1: Monte Carlo sampling with numerical-decomposition
 * checks that accept a cheaper depth whenever the total fidelity
 * (circuit decay x decomposition accuracy, Eq. 2) improves.
 */

#ifndef MIRAGE_MONODROMY_SCORES_HH
#define MIRAGE_MONODROMY_SCORES_HH

#include <functional>

#include "monodromy/coverage.hh"

namespace mirage::monodromy {

/** A Haar score together with the matching average total fidelity. */
struct HaarScore
{
    double score = 0;    ///< expected pulse cost (iSWAP units)
    double fidelity = 0; ///< expected total fidelity
};

/**
 * Exact Haar score by polytope integration. With `mirrors`, the coverage
 * regions are mirror-extended (a free output permutation is allowed).
 */
HaarScore haarScoreExact(const CoverageSet &coverage, bool mirrors);

/** Options for the Monte Carlo estimator (Algorithm 1). */
struct MonteCarloOptions
{
    int iterations = 1000;
    bool mirrors = false;
    /** Allow approximate decomposition when it improves total fidelity. */
    bool approximate = false;
    uint64_t seed = 0xA15EULL;
    /** Optimizer restarts per approximation check. */
    int fitRestarts = 2;
    int fitIterations = 220;
    /** Running-average callback: (iteration, running score). */
    std::function<void(int, double)> progress;
};

/** Monte Carlo Haar score (Algorithm 1). */
HaarScore haarScoreMonteCarlo(const CoverageSet &coverage,
                              const MonteCarloOptions &opts);

} // namespace mirage::monodromy

#endif // MIRAGE_MONODROMY_SCORES_HH
