/**
 * @file
 * Monodromy coverage sets: the regions of the Weyl alcove reachable by
 * k applications of a basis gate interleaved with arbitrary single-qubit
 * gates, and their mirror-extended counterparts (paper Section III).
 *
 * The coverage regions are convex polytopes in the alcove with
 * small-integer facet normals (in canonical coordinates). They are
 * derived numerically but snapped exactly: deterministic seeded sampling
 * of interleaved products provides interior points; per-direction support
 * maximization (Nelder-Mead over the interleaver parameters) sharpens
 * each candidate facet; supports are snapped to the rational grid
 * pi/(16 n). Anchor values from the paper (e.g. sqrt(iSWAP) k=2 covers
 * 79.0% of Haar volume, 94.4% with mirrors) validate the construction in
 * the test suite.
 */

#ifndef MIRAGE_MONODROMY_COVERAGE_HH
#define MIRAGE_MONODROMY_COVERAGE_HH

#include <string>
#include <vector>

#include "geometry/polytope.hh"
#include "linalg/matrix.hh"
#include "weyl/coordinates.hh"

namespace mirage::monodromy {

using geometry::Polytope;
using linalg::Mat4;
using weyl::Coord;

/** A two-qubit basis gate with its cost model inputs. */
struct BasisSpec
{
    std::string name;
    Mat4 matrix;
    Coord coords;
    /** Pulse duration in iSWAP units (iSWAP = 1.0). */
    double duration = 1.0;
    /** Snapping grid divisor: facet offsets lie on pi/(16*gridDivisor). */
    int gridDivisor = 1;

    /** The n-th root of iSWAP (duration 1/n). */
    static BasisSpec rootIswap(int n);
    /** CNOT basis (duration conventionally 1.0). */
    static BasisSpec cnot();
};

/** Options for coverage construction. */
struct CoverageBuildOptions
{
    int samplesPerK = 6000;
    bool refineSupports = true;
    int refineEvals = 250;
    int maxK = 8;
    uint64_t seed = 0x5EEDULL;
    /** Stop once the Haar fraction exceeds this (full coverage). */
    double fullCoverageThreshold = 0.999999;
};

/** Coverage sets P_1..P_kMax for one basis gate. */
class CoverageSet
{
  public:
    /**
     * Build the coverage sets. When `parent` is given with stride s,
     * every j-gate product of the parent basis equals a (j*s)-gate
     * product of this basis (e.g. two 4th-roots make one sqrt), so the
     * parent's polytope vertices are exact lower bounds on the supports
     * of P_{j*s} -- this pins deep corners (SWAP, CNOT) exactly instead
     * of relying on numerical certification alone.
     */
    static CoverageSet build(const BasisSpec &basis,
                             const CoverageBuildOptions &opts = {},
                             const CoverageSet *parent = nullptr,
                             int parent_stride = 1);

    const BasisSpec &basis() const { return basis_; }
    /** Largest k computed; P_kMax covers the full alcove. */
    int kMax() const { return int(perK_.size()); }
    /** Region reachable with exactly <= k applications (1-based). */
    const Polytope &polytope(int k) const { return perK_[size_t(k - 1)]; }
    /** P_k together with its mirror image (union members). */
    const std::vector<Polytope> &mirrorRegion(int k) const
    {
        return mirror_[size_t(k - 1)];
    }

    /** Smallest k with coords inside P_k (tests both alcove reps). */
    int minK(const Coord &c) const;
    /** Smallest k with coords inside P_k or its mirror inside P_k. */
    int minKMirrored(const Coord &c) const;

    /** Haar-weighted fraction covered at k (cached). */
    double haarFractionAt(int k) const;
    /** Haar-weighted fraction covered at k with mirrors (cached). */
    double mirrorHaarFractionAt(int k) const;

  private:
    BasisSpec basis_;
    std::vector<Polytope> perK_;
    std::vector<std::vector<Polytope>> mirror_;
    mutable std::vector<double> fracCache_;
    mutable std::vector<double> mirrorFracCache_;
};

/**
 * Mirror image of a region: the two affine pieces of Eq. 1 applied to the
 * polytope, clipped to the alcove.
 */
std::vector<Polytope> mirrorImage(const Polytope &region);

/** Process-wide cached coverage set for the n-th root of iSWAP. */
const CoverageSet &coverageForRootIswap(int n);
/** Process-wide cached coverage set for CNOT. */
const CoverageSet &coverageForCnot();

} // namespace mirage::monodromy

#endif // MIRAGE_MONODROMY_COVERAGE_HH
