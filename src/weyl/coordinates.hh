/**
 * @file
 * Weyl-chamber (positive canonical) coordinates of two-qubit unitaries.
 *
 * Conventions (matching the paper and the monodromy package):
 *   - CAN(a,b,c) = exp(i(a XX + b YY + c ZZ))
 *   - alcove A = { (a,b,c) : a >= b >= c >= 0 and a + b <= pi/2 }
 *   - CNOT = (pi/4, 0, 0), iSWAP = (pi/4, pi/4, 0),
 *     sqrt(iSWAP) = (pi/8, pi/8, 0), SWAP = (pi/4, pi/4, pi/4)
 *   - on the c == 0 face, (a, b, 0) and (pi/2 - a, b, 0) denote the same
 *     local-equivalence class; canonicalization picks a <= pi/4 there.
 *
 * The mirror transform (paper Eq. 1) maps coords(U) to coords(U * SWAP).
 */

#ifndef MIRAGE_WEYL_COORDINATES_HH
#define MIRAGE_WEYL_COORDINATES_HH

#include <array>
#include <string>

#include "linalg/matrix.hh"

namespace mirage::weyl {

using linalg::Mat4;

/** A point in the Weyl chamber (radians). */
struct Coord
{
    double a = 0;
    double b = 0;
    double c = 0;

    bool closeTo(const Coord &o, double tol = 1e-8) const;
    std::string toString() const;

    /** Coordinates scaled so CNOT = (1,0,0) (units of pi/4). */
    std::array<double, 3> inQuarterPiUnits() const;
};

/**
 * Fold an arbitrary coordinate triple into the alcove using the Weyl group
 * action (mod-pi/2 shifts, permutations, even sign flips) plus the c == 0
 * face identification.
 */
Coord canonicalize(double a, double b, double c);

/** Weyl coordinates of a two-qubit unitary, canonicalized into the alcove. */
Coord weylCoordinates(const Mat4 &u);

/**
 * Mirror transform (paper Eq. 1): coordinates of U * SWAP given the
 * coordinates of U.
 */
Coord mirrorCoord(const Coord &x);

/**
 * The two alcove representatives of a class: the point itself, plus the
 * (pi/2 - a, b, 0) twin when c is (numerically) zero. Membership queries
 * against coverage polytopes must test all representatives.
 */
std::array<Coord, 2> representatives(const Coord &x, double tol = 1e-9);

/** True when x lies inside the alcove (with tolerance). */
bool inAlcove(const Coord &x, double tol = 1e-9);

/**
 * Signed-chamber representative: the canonical Weyl chamber
 * { pi/4 >= x >= y >= |z| } in which monodromy coverage sets are convex.
 * Alcove points with a > pi/4 map via (a,b,c) -> (pi/2-a, b, -c).
 */
std::array<double, 3> signedRep(const Coord &x);

/** Signed-chamber membership check. */
bool inSignedChamber(const std::array<double, 3> &s, double tol = 1e-9);

} // namespace mirage::weyl

#endif // MIRAGE_WEYL_COORDINATES_HH
