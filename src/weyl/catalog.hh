/**
 * @file
 * Catalog of named one- and two-qubit gate matrices and their Weyl
 * coordinates.
 *
 * Two-qubit matrices act on basis order |q0 q1> (first operand is the most
 * significant bit), which matches the circuit simulator's convention.
 */

#ifndef MIRAGE_WEYL_CATALOG_HH
#define MIRAGE_WEYL_CATALOG_HH

#include "linalg/matrix.hh"
#include "weyl/coordinates.hh"

namespace mirage::weyl {

using linalg::Mat2;
using linalg::Mat4;

// --- one-qubit gates ------------------------------------------------------

Mat2 gateI2();
Mat2 gateX();
Mat2 gateY();
Mat2 gateZ();
Mat2 gateH();
Mat2 gateS();
Mat2 gateSdg();
Mat2 gateT();
Mat2 gateTdg();
Mat2 gateSX();
Mat2 gateRX(double theta);
Mat2 gateRY(double theta);
Mat2 gateRZ(double theta);
/** U3(theta, phi, lambda) in the OpenQASM convention. */
Mat2 gateU3(double theta, double phi, double lambda);

// --- two-qubit gates ------------------------------------------------------

Mat4 gateCX();
Mat4 gateCZ();
Mat4 gateCP(double phi);
Mat4 gateCRX(double theta);
Mat4 gateCRY(double theta);
Mat4 gateCRZ(double theta);
Mat4 gateSWAP();
Mat4 gateISWAP();
/** n-th root of iSWAP (n = 1 is iSWAP itself). */
Mat4 gateRootISWAP(int n);
Mat4 gateRXX(double theta);
Mat4 gateRYY(double theta);
Mat4 gateRZZ(double theta);
/** CNOT followed by SWAP, the paper's CNS gate (locally an iSWAP). */
Mat4 gateCNS();
/** Berkeley B gate, CAN(pi/4, pi/8, 0). */
Mat4 gateB();
/** Parametric SWAP: the mirror image of CPHASE(phi) (paper Fig. 6). */
Mat4 gatePSWAP(double phi);

/**
 * ZYZ Euler angles (theta, phi, lambda) such that
 * u == e^{i delta} U3(theta, phi, lambda); the global phase delta is
 * returned as the 4th element.
 */
std::array<double, 4> eulerZYZ(const Mat2 &u);

// --- reference Weyl coordinates -------------------------------------------

Coord coordCNOT();
Coord coordISWAP();
Coord coordSWAP();
Coord coordRootISWAP(int n);
Coord coordIdentity();
Coord coordB();
Coord coordCP(double phi);

} // namespace mirage::weyl

#endif // MIRAGE_WEYL_CATALOG_HH
