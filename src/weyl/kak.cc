/**
 * @file
 * KAK decomposition: magic-basis diagonalization of gamma = V V^T,
 * local factor extraction, and phase bookkeeping.
 */

#include "weyl/kak.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"
#include "linalg/eigen.hh"
#include "weyl/can.hh"
#include "weyl/magic.hh"

namespace mirage::weyl {

using linalg::Complex;
using linalg::Sym4;

namespace {

/** Total greedy matching distance between two eigenvalue multisets. */
double
matchScore(const std::array<Complex, 4> &got,
           const std::array<Complex, 4> &want)
{
    std::array<bool, 4> used{};
    double total = 0;
    for (int i = 0; i < 4; ++i) {
        double best = 1e18;
        int bj = -1;
        for (int j = 0; j < 4; ++j) {
            if (used[size_t(j)])
                continue;
            double d = std::abs(got[size_t(j)] - want[size_t(i)]);
            if (d < best) {
                best = d;
                bj = j;
            }
        }
        used[size_t(bj)] = true;
        total += best;
    }
    return total;
}

/** Best column permutation aligning diag values to the wanted spectrum. */
std::array<int, 4>
bestPermutation(const std::array<Complex, 4> &got,
                const std::array<Complex, 4> &want)
{
    std::array<int, 4> perm = {0, 1, 2, 3};
    std::array<int, 4> best_perm = perm;
    double best = 1e18;
    std::sort(perm.begin(), perm.end());
    do {
        double s = 0;
        for (int i = 0; i < 4; ++i)
            s += std::abs(got[size_t(perm[size_t(i)])] - want[size_t(i)]);
        if (s < best) {
            best = s;
            best_perm = perm;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best_perm;
}

} // namespace

Mat4
KakDecomposition::reconstruct() const
{
    Mat4 mid = canonicalGate(coords.a, coords.b, coords.c);
    Mat4 out = linalg::kron(l1, l2) * mid * linalg::kron(r1, r2);
    return out * std::polar(1.0, phase);
}

double
KakDecomposition::error(const Mat4 &reference) const
{
    return reconstruct().distance(reference);
}

KakDecomposition
kakDecompose(const Mat4 &u)
{
    MIRAGE_ASSERT(u.isUnitary(1e-8), "kakDecompose needs a unitary input");

    // Det-normalize into SU(4).
    Complex det = u.det();
    Mat4 un = u * std::polar(1.0, -std::arg(det) / 4.0);

    // Canonical coordinates and the target CAN spectrum.
    KakDecomposition out;
    out.coords = weylCoordinates(u);
    auto d = canMagicAngles(out.coords.a, out.coords.b, out.coords.c);
    std::array<Complex, 4> lambda;
    for (int i = 0; i < 4; ++i)
        lambda[size_t(i)] = std::polar(1.0, 2.0 * d[size_t(i)]);

    Mat4 v = toMagic(un);
    Mat4 gamma = v * v.transpose();

    // The SU(4) representative is only defined up to a 4th root of unity;
    // that scales gamma by +-1. Pick the branch whose spectrum matches the
    // CAN target.
    auto got = linalg::eigenvalues4(gamma);
    std::array<Complex, 4> neg_lambda;
    for (int i = 0; i < 4; ++i)
        neg_lambda[size_t(i)] = -lambda[size_t(i)];
    if (matchScore(got, neg_lambda) < matchScore(got, lambda)) {
        un = un * Complex(0, 1);
        v = toMagic(un);
        gamma = v * v.transpose();
    }

    // Simultaneously diagonalize Re(gamma), Im(gamma) (they commute for a
    // symmetric unitary) with a real orthogonal O.
    Sym4 re{}, im{};
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            re(i, j) = gamma(i, j).real();
            im(i, j) = gamma(i, j).imag();
        }
    }
    Sym4 o = linalg::simultaneousDiagonalize(re, im, 1e-6);

    // Diagonal of O^T gamma O, then reorder columns to match the target
    // spectrum slot by slot.
    std::array<Complex, 4> diag;
    for (int j = 0; j < 4; ++j) {
        Complex s(0);
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                s += o(r, j) * gamma(r, c) * o(c, j);
        diag[size_t(j)] = s;
    }
    auto perm = bestPermutation(diag, lambda);
    Sym4 op{};
    for (int j = 0; j < 4; ++j)
        for (int i = 0; i < 4; ++i)
            op(i, j) = o(i, perm[size_t(j)]);

    // Land in SO(4); negating one column leaves the diagonalization alone.
    if (linalg::det4(op) < 0) {
        for (int i = 0; i < 4; ++i)
            op(i, 0) = -op(i, 0);
    }

    Mat4 omat;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            omat(i, j) = Complex(op(i, j), 0);

    // V = O D K2 with D = diag(e^{i d_j}); K2 = D^{-1} O^T V comes out
    // real orthogonal when everything above is consistent.
    Mat4 dinv = Mat4::diag(std::polar(1.0, -d[0]), std::polar(1.0, -d[1]),
                           std::polar(1.0, -d[2]), std::polar(1.0, -d[3]));
    Mat4 k2 = dinv * omat.transpose() * v;

    double imag_resid = 0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            imag_resid = std::max(imag_resid,
                                  std::fabs(k2(i, j).imag()));
    if (imag_resid > 1e-6)
        warn("kak: right factor imaginary residue %.2e", imag_resid);

    // Scrub the residue so the tensor factorization sees a clean SO(4)
    // element.
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            k2(i, j) = Complex(k2(i, j).real(), 0);

    Mat4 l4 = fromMagic(omat);
    Mat4 r4 = fromMagic(k2);

    double el = 0, er = 0;
    linalg::factorTensorProduct(l4, &out.l1, &out.l2, &el);
    linalg::factorTensorProduct(r4, &out.r1, &out.r2, &er);
    if (el > 1e-6 || er > 1e-6)
        warn("kak: tensor factor residue %.2e / %.2e", el, er);

    // Fix the global phase by trace alignment against the input.
    out.phase = 0;
    Mat4 rec = out.reconstruct();
    Complex t = (rec.dagger() * u).trace();
    if (std::abs(t) > 1e-9)
        out.phase = std::arg(t);
    return out;
}

} // namespace mirage::weyl
