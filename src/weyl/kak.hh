/**
 * @file
 * Cartan (KAK) decomposition of two-qubit unitaries.
 *
 * Any U in U(4) factors as
 *     U = e^{i phase} (L1 (x) L2) CAN(a,b,c) (R1 (x) R2)
 * with (a,b,c) the canonical Weyl coordinates of U. The decomposition is
 * computed in the magic basis: gamma = V V^T (V = B^dagger U B, det
 * normalized) is a symmetric unitary whose real and imaginary parts
 * commute, so a real orthogonal eigenbasis simultaneously diagonalizes
 * them; the eigenbasis yields the left local, and the diagonal square
 * root yields the right local.
 */

#ifndef MIRAGE_WEYL_KAK_HH
#define MIRAGE_WEYL_KAK_HH

#include "linalg/matrix.hh"
#include "weyl/coordinates.hh"

namespace mirage::weyl {

using linalg::Mat2;
using linalg::Mat4;

/** Result of a KAK decomposition. */
struct KakDecomposition
{
    double phase = 0;     ///< global phase
    Mat2 l1, l2;          ///< left (post-CAN) single-qubit factors
    Coord coords;         ///< canonical Weyl coordinates
    Mat2 r1, r2;          ///< right (pre-CAN) single-qubit factors

    /** Rebuild e^{i phase} (l1 x l2) CAN(coords) (r1 x r2). */
    Mat4 reconstruct() const;

    /** Frobenius error between reconstruct() and a reference matrix. */
    double error(const Mat4 &reference) const;
};

/**
 * Decompose a two-qubit unitary. Accuracy is ~1e-9 for generic inputs and
 * degenerate special gates alike (the degenerate-eigenspace case is
 * handled by a two-stage Jacobi diagonalization).
 */
KakDecomposition kakDecompose(const Mat4 &u);

} // namespace mirage::weyl

#endif // MIRAGE_WEYL_KAK_HH
