/**
 * @file
 * Magic (Bell) basis conversions and the real-orthogonal /
 * diagonal structure checks used by coordinate extraction and KAK.
 */

#include "weyl/magic.hh"

#include <cmath>

namespace mirage::weyl {

const Mat4 &
magicBasis()
{
    static const Mat4 b = [] {
        const double s = 1.0 / std::sqrt(2.0);
        const Complex i(0, 1);
        Mat4 m;
        // Columns: |Phi+>, i|Psi+>, |Psi->, i|Phi->
        m(0, 0) = s;
        m(3, 0) = s;
        m(1, 1) = i * s;
        m(2, 1) = i * s;
        m(1, 2) = s;
        m(2, 2) = -s;
        m(0, 3) = i * s;
        m(3, 3) = -i * s;
        return m;
    }();
    return b;
}

const Mat4 &
magicBasisDagger()
{
    static const Mat4 bd = magicBasis().dagger();
    return bd;
}

Mat4
toMagic(const Mat4 &u)
{
    return magicBasisDagger() * u * magicBasis();
}

Mat4
fromMagic(const Mat4 &m)
{
    return magicBasis() * m * magicBasisDagger();
}

std::array<double, 4>
canMagicAngles(double a, double b, double c)
{
    return {a - b + c, a + b - c, -a - b - c, -a + b + c};
}

} // namespace mirage::weyl
