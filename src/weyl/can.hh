/**
 * @file
 * Canonical two-qubit gates CAN(a,b,c) = exp(i(a XX + b YY + c ZZ)).
 *
 * Every two-qubit unitary is locally equivalent to exactly one CAN gate
 * with coordinates in the positive-canonical alcove; this header builds
 * the CAN representative in closed form (diagonal in the magic basis).
 */

#ifndef MIRAGE_WEYL_CAN_HH
#define MIRAGE_WEYL_CAN_HH

#include "linalg/matrix.hh"

namespace mirage::weyl {

using linalg::Mat4;

/** CAN(a,b,c) = exp(i (a XX + b YY + c ZZ)), computed in closed form. */
Mat4 canonicalGate(double a, double b, double c);

} // namespace mirage::weyl

#endif // MIRAGE_WEYL_CAN_HH
