/**
 * @file
 * Named gate catalog: matrices and Weyl coordinates for the standard
 * one- and two-qubit gates and the root-iSWAP family.
 */

#include "weyl/catalog.hh"

#include <cmath>

#include "common/logging.hh"
#include "linalg/expm.hh"
#include "weyl/can.hh"

namespace mirage::weyl {

using linalg::Complex;
using linalg::kPi;

Mat2
gateI2()
{
    return Mat2::identity();
}

Mat2
gateX()
{
    return linalg::pauliX();
}

Mat2
gateY()
{
    return linalg::pauliY();
}

Mat2
gateZ()
{
    return linalg::pauliZ();
}

Mat2
gateH()
{
    return linalg::hadamard();
}

Mat2
gateS()
{
    Mat2 m;
    m(0, 0) = 1;
    m(1, 1) = Complex(0, 1);
    return m;
}

Mat2
gateSdg()
{
    return gateS().dagger();
}

Mat2
gateT()
{
    Mat2 m;
    m(0, 0) = 1;
    m(1, 1) = std::polar(1.0, kPi / 4.0);
    return m;
}

Mat2
gateTdg()
{
    return gateT().dagger();
}

Mat2
gateSX()
{
    // sqrt(X) with the standard phase.
    Mat2 m;
    m(0, 0) = Complex(0.5, 0.5);
    m(0, 1) = Complex(0.5, -0.5);
    m(1, 0) = Complex(0.5, -0.5);
    m(1, 1) = Complex(0.5, 0.5);
    return m;
}

Mat2
gateRX(double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    Mat2 m;
    m(0, 0) = c;
    m(0, 1) = Complex(0, -s);
    m(1, 0) = Complex(0, -s);
    m(1, 1) = c;
    return m;
}

Mat2
gateRY(double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    Mat2 m;
    m(0, 0) = c;
    m(0, 1) = -s;
    m(1, 0) = s;
    m(1, 1) = c;
    return m;
}

Mat2
gateRZ(double theta)
{
    Mat2 m;
    m(0, 0) = std::polar(1.0, -theta / 2);
    m(1, 1) = std::polar(1.0, theta / 2);
    return m;
}

Mat2
gateU3(double theta, double phi, double lambda)
{
    Mat2 m;
    m(0, 0) = std::cos(theta / 2);
    m(0, 1) = -std::polar(1.0, lambda) * std::sin(theta / 2);
    m(1, 0) = std::polar(1.0, phi) * std::sin(theta / 2);
    m(1, 1) = std::polar(1.0, phi + lambda) * std::cos(theta / 2);
    return m;
}

Mat4
gateCX()
{
    // Control is the first (most significant) qubit.
    Mat4 m;
    m(0, 0) = 1;
    m(1, 1) = 1;
    m(2, 3) = 1;
    m(3, 2) = 1;
    return m;
}

Mat4
gateCZ()
{
    return Mat4::diag(1, 1, 1, -1);
}

Mat4
gateCP(double phi)
{
    return Mat4::diag(1, 1, 1, std::polar(1.0, phi));
}

namespace {

Mat4
controlled(const Mat2 &u)
{
    Mat4 m;
    m(0, 0) = 1;
    m(1, 1) = 1;
    m(2, 2) = u(0, 0);
    m(2, 3) = u(0, 1);
    m(3, 2) = u(1, 0);
    m(3, 3) = u(1, 1);
    return m;
}

} // namespace

Mat4
gateCRX(double theta)
{
    return controlled(gateRX(theta));
}

Mat4
gateCRY(double theta)
{
    return controlled(gateRY(theta));
}

Mat4
gateCRZ(double theta)
{
    return controlled(gateRZ(theta));
}

Mat4
gateSWAP()
{
    Mat4 m;
    m(0, 0) = 1;
    m(1, 2) = 1;
    m(2, 1) = 1;
    m(3, 3) = 1;
    return m;
}

Mat4
gateISWAP()
{
    Mat4 m;
    m(0, 0) = 1;
    m(1, 2) = Complex(0, 1);
    m(2, 1) = Complex(0, 1);
    m(3, 3) = 1;
    return m;
}

Mat4
gateRootISWAP(int n)
{
    MIRAGE_ASSERT(n >= 1, "root index must be positive");
    // iSWAP = exp(i pi/4 (XX + YY)), so the n-th root is
    // CAN(pi/(4n), pi/(4n), 0).
    double t = kPi / (4.0 * n);
    return canonicalGate(t, t, 0.0);
}

Mat4
gateRXX(double theta)
{
    Mat4 h = linalg::pauliXX() * Complex(0, -theta / 2);
    return linalg::expm(h);
}

Mat4
gateRYY(double theta)
{
    Mat4 h = linalg::pauliYY() * Complex(0, -theta / 2);
    return linalg::expm(h);
}

Mat4
gateRZZ(double theta)
{
    // Diagonal in the computational basis.
    Complex p = std::polar(1.0, -theta / 2);
    Complex q = std::polar(1.0, theta / 2);
    return Mat4::diag(p, q, q, p);
}

Mat4
gateCNS()
{
    // CNOT followed by SWAP (circuit order), i.e. SWAP * CX as matrices.
    return gateSWAP() * gateCX();
}

Mat4
gateB()
{
    return canonicalGate(kPi / 4.0, kPi / 8.0, 0.0);
}

Mat4
gatePSWAP(double phi)
{
    // The mirror image of CPHASE(phi): CP(phi) followed by SWAP.
    return gateSWAP() * gateCP(phi);
}

std::array<double, 4>
eulerZYZ(const Mat2 &u)
{
    // Compare against U3(theta,phi,lambda) =
    //   [[cos(t/2), -e^{i l} sin(t/2)], [e^{i p} sin(t/2), e^{i(p+l)} cos]].
    double c = std::abs(u(0, 0));
    double s = std::abs(u(1, 0));
    double theta = 2.0 * std::atan2(s, c);

    double phi = 0, lambda = 0, delta = 0;
    if (c > 1e-10 && s > 1e-10) {
        delta = std::arg(u(0, 0));
        phi = std::arg(u(1, 0)) - delta;
        lambda = std::arg(-u(0, 1)) - delta;
    } else if (s <= 1e-10) {
        // Diagonal: put the full relative phase into phi.
        delta = std::arg(u(0, 0));
        phi = std::arg(u(1, 1)) - delta;
        lambda = 0;
    } else {
        // Anti-diagonal.
        delta = 0;
        phi = std::arg(u(1, 0));
        lambda = std::arg(-u(0, 1));
    }
    return {theta, phi, lambda, delta};
}

Coord
coordCNOT()
{
    return Coord{kPi / 4.0, 0.0, 0.0};
}

Coord
coordISWAP()
{
    return Coord{kPi / 4.0, kPi / 4.0, 0.0};
}

Coord
coordSWAP()
{
    return Coord{kPi / 4.0, kPi / 4.0, kPi / 4.0};
}

Coord
coordRootISWAP(int n)
{
    MIRAGE_ASSERT(n >= 1, "root index must be positive");
    return Coord{kPi / (4.0 * n), kPi / (4.0 * n), 0.0};
}

Coord
coordIdentity()
{
    return Coord{0.0, 0.0, 0.0};
}

Coord
coordB()
{
    return Coord{kPi / 4.0, kPi / 8.0, 0.0};
}

Coord
coordCP(double phi)
{
    return canonicalize(phi / 4.0, 0.0, 0.0);
}

} // namespace mirage::weyl
