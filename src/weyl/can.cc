/**
 * @file
 * Canonical gate construction CAN(a,b,c) in closed form via the
 * magic-basis diagonal.
 */

#include "weyl/can.hh"

#include <cmath>

#include "weyl/magic.hh"

namespace mirage::weyl {

Mat4
canonicalGate(double a, double b, double c)
{
    // XX, YY, ZZ are simultaneously diagonal in the magic basis with
    // eigenvalue patterns (1,1,-1,-1), (-1,1,-1,1), (1,-1,-1,1), so
    // CAN is B diag(e^{i d_j}) B^dagger with d from canMagicAngles.
    auto d = canMagicAngles(a, b, c);
    Mat4 diag = Mat4::diag(std::polar(1.0, d[0]), std::polar(1.0, d[1]),
                           std::polar(1.0, d[2]), std::polar(1.0, d[3]));
    return fromMagic(diag);
}

} // namespace mirage::weyl
