/**
 * @file
 * The magic (Bell) basis and conversions into and out of it.
 *
 * In the magic basis single-qubit unitary pairs become real orthogonal
 * matrices and the canonical gates CAN(a,b,c) become diagonal, which is
 * the foundation of both Weyl-coordinate extraction and the KAK
 * decomposition.
 */

#ifndef MIRAGE_WEYL_MAGIC_HH
#define MIRAGE_WEYL_MAGIC_HH

#include "linalg/matrix.hh"

namespace mirage::weyl {

using linalg::Complex;
using linalg::Mat2;
using linalg::Mat4;

/** The magic basis change matrix B (columns are Bell-like states). */
const Mat4 &magicBasis();

/** B^dagger (cached). */
const Mat4 &magicBasisDagger();

/** B^dagger * u * B. */
Mat4 toMagic(const Mat4 &u);

/** B * m * B^dagger. */
Mat4 fromMagic(const Mat4 &m);

/**
 * The diagonal of CAN(a,b,c) in the magic basis:
 * d = (a-b+c, a+b-c, -a-b-c, -a+b+c).
 */
std::array<double, 4> canMagicAngles(double a, double b, double c);

} // namespace mirage::weyl

#endif // MIRAGE_WEYL_MAGIC_HH
