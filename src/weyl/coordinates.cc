/**
 * @file
 * Weyl coordinate extraction: gamma-matrix spectrum analysis,
 * canonicalization into the positive alcove, and mirror-coordinate
 * transforms (paper Eq. 1).
 */

#include "weyl/coordinates.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "linalg/eigen.hh"
#include "weyl/magic.hh"

namespace mirage::weyl {

namespace {

using linalg::Complex;
using linalg::kPi;

constexpr double kPi2 = kPi / 2.0;
constexpr double kPi4 = kPi / 4.0;

double
mod(double x, double m)
{
    double r = std::fmod(x, m);
    if (r < 0)
        r += m;
    return r;
}

} // namespace

bool
Coord::closeTo(const Coord &o, double tol) const
{
    return std::fabs(a - o.a) < tol && std::fabs(b - o.b) < tol &&
           std::fabs(c - o.c) < tol;
}

std::string
Coord::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "(%.6f, %.6f, %.6f)pi/4", a / kPi4,
                  b / kPi4, c / kPi4);
    return buf;
}

std::array<double, 3>
Coord::inQuarterPiUnits() const
{
    return {a / kPi4, b / kPi4, c / kPi4};
}

Coord
canonicalize(double a, double b, double c)
{
    // Step 1: coordinate-wise shifts are local (exp(i pi/2 XX) = i XX is a
    // local gate), so reduce mod pi/2 into [0, pi/2).
    std::array<double, 3> v = {mod(a, kPi2), mod(b, kPi2), mod(c, kPi2)};

    // Snap values that landed infinitesimally below pi/2 back to 0.
    for (auto &x : v) {
        if (kPi2 - x < 1e-12)
            x = 0.0;
    }

    // Step 2: iterate sort + fold until the alcove constraint a+b <= pi/2
    // holds. The fold (a,b) -> (pi/2-b, pi/2-a) is an even sign flip
    // followed by two pi/2 shifts, hence a local-equivalence move, and it
    // strictly decreases a+b when a+b > pi/2, so the loop terminates.
    for (int iter = 0; iter < 16; ++iter) {
        std::sort(v.begin(), v.end(), std::greater<double>());
        if (v[0] + v[1] <= kPi2 + 1e-14)
            break;
        double na = kPi2 - v[1];
        double nb = kPi2 - v[0];
        v[0] = na;
        v[1] = nb;
    }

    // Step 3: on the c == 0 face the class has two alcove representatives;
    // pick the a <= pi/4 one. (Flipping signs of a and c is an even flip;
    // with c == 0 it reduces to a -> pi/2 - a after a shift.)
    if (v[2] < 1e-10 && v[0] > kPi4 + 1e-14) {
        v[0] = kPi2 - v[0];
        std::sort(v.begin(), v.end(), std::greater<double>());
    }

    // Clean numerical dust.
    for (auto &x : v) {
        if (std::fabs(x) < 1e-12)
            x = 0.0;
    }
    return Coord{v[0], v[1], v[2]};
}

Coord
weylCoordinates(const Mat4 &u)
{
    // Normalize to det 1.
    Complex det = u.det();
    MIRAGE_ASSERT(std::abs(std::abs(det) - 1.0) < 1e-6,
                  "weylCoordinates needs a unitary input");
    Mat4 un = u * std::polar(1.0, -std::arg(det) / 4.0);

    // gamma = V V^T in the magic basis has spectrum {e^{2 i d_j}} where the
    // d_j follow the CAN diagonal pattern. gamma is a symmetric unitary, so
    // Re(gamma) and Im(gamma) are commuting real symmetric matrices; a
    // Jacobi simultaneous diagonalization recovers the eigenphases at
    // machine precision even for the (very common) degenerate spectra,
    // where generic polynomial root finders lose half their digits.
    Mat4 v = toMagic(un);
    Mat4 gamma = v * v.transpose();

    linalg::Sym4 re{}, im{};
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            re(i, j) = gamma(i, j).real();
            im(i, j) = gamma(i, j).imag();
        }
    }
    linalg::Sym4 o = linalg::simultaneousDiagonalize(re, im, 1e-6);
    std::array<Complex, 4> eigs;
    for (int j = 0; j < 4; ++j) {
        Complex s(0);
        for (int r = 0; r < 4; ++r)
            for (int c2 = 0; c2 < 4; ++c2)
                s += o(r, j) * gamma(r, c2) * o(c2, j);
        eigs[size_t(j)] = s;
    }

    std::array<double, 4> f;
    for (int i = 0; i < 4; ++i)
        f[size_t(i)] = std::arg(eigs[size_t(i)]) / 2.0; // in (-pi/2, pi/2]

    // The d_j are the f_j plus integer multiples of pi with sum(d) == 0
    // (mod 2pi). The running sum is a multiple of pi; push it to ~0 by
    // shifting extreme entries in pi steps.
    double s = f[0] + f[1] + f[2] + f[3];
    for (int guard = 0; guard < 8 && s > kPi2; ++guard) {
        auto it = std::max_element(f.begin(), f.end());
        *it -= kPi;
        s -= kPi;
    }
    for (int guard = 0; guard < 8 && s < -kPi2; ++guard) {
        auto it = std::min_element(f.begin(), f.end());
        *it += kPi;
        s += kPi;
    }

    // Invert the pattern d = (a-b+c, a+b-c, -a-b-c, -a+b+c):
    //   a = (d0+d1)/2, b = (d1+d3)/2, c = (d0+d3)/2.
    // Any assignment of eigenvalues to slots lands in the same local class
    // (the gamma spectrum is a complete invariant), and canonicalize()
    // folds every choice to the same alcove point.
    double a = (f[0] + f[1]) / 2.0;
    double b = (f[1] + f[3]) / 2.0;
    double c = (f[0] + f[3]) / 2.0;
    return canonicalize(a, b, c);
}

Coord
mirrorCoord(const Coord &x)
{
    Coord m;
    if (x.a <= kPi4) {
        m = Coord{kPi4 + x.c, kPi4 - x.b, kPi4 - x.a};
    } else {
        m = Coord{kPi4 - x.c, kPi4 - x.b, x.a - kPi4};
    }
    // The formula maps the alcove into the alcove, but re-canonicalize to
    // apply the c == 0 convention and to scrub rounding dust.
    return canonicalize(m.a, m.b, m.c);
}

std::array<Coord, 2>
representatives(const Coord &x, double tol)
{
    if (x.c < tol) {
        Coord twin = Coord{kPi2 - x.a, x.b, 0.0};
        if (twin.a < twin.b)
            std::swap(twin.a, twin.b);
        return {x, twin};
    }
    return {x, x};
}

bool
inAlcove(const Coord &x, double tol)
{
    return x.a >= x.b - tol && x.b >= x.c - tol && x.c >= -tol &&
           x.a + x.b <= kPi2 + tol;
}

std::array<double, 3>
signedRep(const Coord &x)
{
    if (x.a <= kPi4)
        return {x.a, x.b, x.c};
    return {kPi2 - x.a, x.b, -x.c};
}

bool
inSignedChamber(const std::array<double, 3> &s, double tol)
{
    return s[0] <= kPi4 + tol && s[0] >= s[1] - tol &&
           s[1] >= std::fabs(s[2]) - tol;
}

} // namespace mirage::weyl
