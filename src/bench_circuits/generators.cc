/**
 * @file
 * Core benchmark generators (GHZ, W-state, QFT, TwoLocal, QEC, SECA,
 * QRAM) plus the Table III registry mapping names to generator functions
 * and the CX-equivalent gate counter.
 */

#include "bench_circuits/generators.hh"

#include <cmath>
#include <stdexcept>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mirage::bench {

using circuit::GateKind;
using linalg::kPi;

Circuit
wstate(int n)
{
    MIRAGE_ASSERT(n >= 2, "wstate needs >= 2 qubits");
    // Standard W-state cascade: |100..0> spread by controlled rotations
    // followed by a CNOT chain (QASMBench wstate style: F-gates).
    Circuit c(n, "wstate_n" + std::to_string(n));
    c.x(n - 1);
    for (int i = n - 1; i > 0; --i) {
        double theta = 2.0 * std::acos(std::sqrt(1.0 / (i + 1)));
        c.cry(theta, i, i - 1);
        c.cx(i - 1, i);
    }
    return c;
}

Circuit
ghz(int n)
{
    Circuit c(n, "ghz_n" + std::to_string(n));
    c.h(0);
    for (int i = 0; i + 1 < n; ++i)
        c.cx(i, i + 1);
    return c;
}

Circuit
twoLocalFull(int n, int reps, uint64_t seed)
{
    // RY rotation layer + full-entanglement CX layer, repeated (Fig. 8a).
    Circuit c(n, "twolocal_n" + std::to_string(n));
    Rng rng(seed);
    for (int r = 0; r < reps; ++r) {
        for (int q = 0; q < n; ++q)
            c.ry(rng.uniform(0, 2 * kPi), q);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                c.cx(i, j);
    }
    for (int q = 0; q < n; ++q)
        c.ry(rng.uniform(0, 2 * kPi), q);
    return c;
}

Circuit
qec9xz(int n)
{
    MIRAGE_ASSERT(n == 17, "qec9xz is defined on 17 qubits");
    // 9 data qubits (0..8), 8 ancillas (9..16). Shor-code encoding
    // followed by Z-pair and X-block stabilizer extraction: 32 CNOTs.
    Circuit c(n, "qec9xz_n17");
    // Encode: |psi> -> three blocks of three.
    c.cx(0, 3);
    c.cx(0, 6);
    c.h(0);
    c.h(3);
    c.h(6);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 4);
    c.cx(3, 5);
    c.cx(6, 7);
    c.cx(7, 8); // 8 encode CNOTs
    // Z1Z2-type stabilizers inside each block (6 ancilla, 2 CX each).
    int anc = 9;
    const int zpairs[6][2] = {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8}};
    for (auto &p : zpairs) {
        c.cx(p[0], anc);
        c.cx(p[1], anc);
        ++anc;
    }
    // X-block stabilizers X0..X5 and X3..X8 (2 ancillas, 6 CX each).
    for (int blk = 0; blk < 2; ++blk) {
        c.h(anc);
        for (int q = 3 * blk; q < 3 * blk + 6; ++q)
            c.cx(anc, q);
        c.h(anc);
        ++anc;
    }
    return c;
}

Circuit
seca(int n)
{
    MIRAGE_ASSERT(n == 11, "seca is defined on 11 qubits");
    // Shor-code error correction assisted by teleportation (QASMBench
    // 'seca_n11'): encode a 9-qubit Shor block on 0..8, inject an error,
    // decode with CCX corrections, and teleport the result via 9, 10.
    Circuit c(n, "seca_n11");
    // Encode.
    c.cx(0, 3);
    c.cx(0, 6);
    c.h(0);
    c.h(3);
    c.h(6);
    for (int b : {0, 3, 6}) {
        c.cx(b, b + 1);
        c.cx(b, b + 2);
    }
    // Error: Z on qubit 0 region.
    c.z(0);
    c.x(1);
    // Decode each block with CCX majority vote.
    for (int b : {0, 3, 6}) {
        c.cx(b, b + 1);
        c.cx(b, b + 2);
        c.ccx(b + 2, b + 1, b);
    }
    c.h(0);
    c.h(3);
    c.h(6);
    c.cx(0, 3);
    c.cx(0, 6);
    c.ccx(6, 3, 0);
    // Second protection round: re-encode, new error, decode again.
    c.cx(0, 3);
    c.cx(0, 6);
    c.h(0);
    c.h(3);
    c.h(6);
    for (int b : {0, 3, 6}) {
        c.cx(b, b + 1);
        c.cx(b, b + 2);
    }
    c.x(4);
    for (int b : {0, 3, 6}) {
        c.cx(b, b + 1);
        c.cx(b, b + 2);
        c.ccx(b + 2, b + 1, b);
    }
    c.h(0);
    c.h(3);
    c.h(6);
    c.cx(0, 3);
    c.cx(0, 6);
    c.ccx(6, 3, 0);
    // Teleport the recovered logical qubit 0 via the Bell pair (9, 10).
    c.h(9);
    c.cx(9, 10);
    c.cx(0, 9);
    c.h(0);
    c.cx(9, 10);
    c.cz(0, 10);
    return c;
}

Circuit
qram(int n)
{
    MIRAGE_ASSERT(n == 20, "qram is defined on 20 qubits");
    // Bucket-brigade router: 2 address qubits (0,1), a 3-node router tree
    // (2..4), 4 memory cells (5..8), a bus (9) and auxiliary registers
    // (10..19) carrying the addressed data back out.
    Circuit c(n, "qram_n20");
    c.h(0);
    c.h(1);
    // Route the address into the tree.
    c.cx(0, 2);
    c.cswap(2, 3, 4);
    c.cx(1, 3);
    c.cx(1, 4);
    // Load memory cells.
    for (int m = 5; m <= 8; ++m)
        c.h(m);
    // Route each cell toward the bus under router control.
    c.cswap(3, 5, 9);
    c.cswap(3, 6, 9);
    c.cswap(4, 7, 9);
    c.cswap(4, 8, 9);
    // Copy out through the auxiliary register and unroute.
    c.cx(9, 10);
    c.cswap(4, 8, 9);
    c.cswap(4, 7, 9);
    c.cswap(3, 6, 9);
    c.cswap(3, 5, 9);
    c.cx(9, 11);
    c.cswap(2, 3, 4);
    c.cx(0, 2);
    // Fan the readout across the remaining aux qubits.
    for (int q = 12; q < 20; ++q)
        c.cx(10, q);
    return c;
}

const std::vector<BenchmarkInfo> &
paperBenchmarks()
{
    static const std::vector<BenchmarkInfo> list = {
        {"wstate_n27", 27, 52, "Entanglement", [] { return wstate(27); }},
        {"qftentangled_n16", 16, 279, "Hidden Subgroup",
         [] { return qftEntangled(16); }},
        {"qpeexact_n16", 16, 261, "Hidden Subgroup",
         [] { return qpeExact(16); }},
        {"ae_n16", 16, 240, "Hidden Subgroup",
         [] { return amplitudeEstimation(16); }},
        {"qft_n18", 18, 306, "Hidden Subgroup",
         [] { return qft(18, /*with_swaps=*/false); }},
        {"bv_n30", 30, 18, "Hidden Subgroup",
         [] { return bernsteinVazirani(30, 18); }},
        {"multiplier_n15", 15, 246, "Arithmetic",
         [] { return multiplier(15); }},
        {"bigadder_n18", 18, 130, "Arithmetic", [] { return bigadder(18); }},
        {"qec9xz_n17", 17, 32, "EC", [] { return qec9xz(17); }},
        {"seca_n11", 11, 84, "EC", [] { return seca(11); }},
        {"qram_n20", 20, 92, "Memory", [] { return qram(20); }},
        {"sat_n11", 11, 252, "QML", [] { return satGrover(11); }},
        {"portfolioqaoa_n16", 16, 720, "QML",
         [] { return portfolioQaoa(16); }},
        {"knn_n25", 25, 96, "QML", [] { return knn(25); }},
        {"swap_test_n25", 25, 96, "QML", [] { return swapTest(25); }},
    };
    return list;
}

const BenchmarkInfo &
benchmarkByName(const std::string &name)
{
    for (const auto &b : paperBenchmarks()) {
        if (b.name == name)
            return b;
    }
    // A typed error, not fatal(): the name can come from request or
    // CLI data, and bad input must never take the process down.
    throw std::invalid_argument("unknown benchmark '" + name + "'");
}

int
cxEquivalentCount(const Circuit &c)
{
    int total = 0;
    for (const auto &g : c.gates()) {
        switch (g.kind) {
          case GateKind::CX:
          case GateKind::CZ:
            total += 1;
            break;
          case GateKind::CP:
          case GateKind::CRX:
          case GateKind::CRY:
          case GateKind::CRZ:
          case GateKind::RXX:
          case GateKind::RYY:
          case GateKind::RZZ:
          case GateKind::ISWAP:
            total += 2;
            break;
          case GateKind::SWAP:
            total += 3;
            break;
          case GateKind::RootISWAP:
          case GateKind::Unitary2Q:
            total += 3; // generic 2Q worst case
            break;
          case GateKind::CCX:
            total += 6;
            break;
          case GateKind::CSWAP:
            total += 8;
            break;
          default:
            break;
        }
    }
    return total;
}

} // namespace mirage::bench
