/**
 * @file
 * Self-verifying mirror-circuit workloads (mirror-RB and mirror-QV).
 *
 * Both families have the shape C · (twist) · C^-1: the ideal output on
 * |0...0> is a single known computational basis state, so one sparse
 * simulation of the routed+lowered circuit checks the ENTIRE transpile
 * pipeline at any width -- no exhaustive unitary comparison, no 6-qubit
 * ceiling (see tests/support/equivalence.hh).
 *
 *  - mirrorRb: random Clifford layers (1Q Cliffords + disjoint CX/CZ
 *    pairs), a uniformly random central Pauli layer, then the exact
 *    inverse half. The ideal bitstring is computed in O(gates) by
 *    conjugating the central Pauli through the inverse half (Proctor et
 *    al., mirror randomized benchmarking).
 *  - mirrorQv: quantum-volume style random SU(4) layers on disjoint
 *    pairs, the exact adjoint blocks in reverse, then a seeded final X
 *    layer so the target bitstring is nontrivial (mitiq's mirror-QV
 *    generator plus the X twist).
 *
 * Generation draws every random choice from counter-based streams
 * (deriveSeed(seed, stream, layer)), so circuits are bit-identical
 * regardless of thread count or call order, at any width up to the
 * 62-qubit sparse-simulator ceiling (heavyhex57 subregions included).
 *
 * Verification: |0...0> is invariant under the initial-layout
 * permutation, so the routed circuit applied to all-zeros on n_phys
 * wires must concentrate on the basis state with bit
 * finalLayout(q) = bitstring[q] -- mirrorSuccessProbability returns
 * that state's probability (1.0 for an exactly-routed circuit, ~1 minus
 * the fit error for a lowered one, ~2^-n for a corrupted pipeline).
 */

#ifndef MIRAGE_BENCH_CIRCUITS_MIRROR_HH
#define MIRAGE_BENCH_CIRCUITS_MIRROR_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"

namespace mirage::bench {

/** A mirror circuit plus its ideal output bitstring. */
struct MirrorCircuit
{
    circuit::Circuit circuit;
    /** Ideal measured bit of logical qubit q (0 or 1). */
    std::vector<int> bitstring;
};

/**
 * Mirror randomized-benchmarking circuit: `layers` rounds of (random 1Q
 * Cliffords, random disjoint CX/CZ pairs), a random central Pauli, and
 * the exact inverse half. 2*layers entangling layers of floor(n/2)
 * gates each.
 */
MirrorCircuit mirrorRb(int n, int layers, uint64_t seed);

/**
 * Mirror quantum-volume circuit: `depth` layers of Haar-random SU(4)
 * blocks on random disjoint pairs, the adjoint blocks in reverse, and a
 * seeded final X layer (at least one X, so an accidentally-empty
 * pipeline can never fake a pass).
 */
MirrorCircuit mirrorQv(int n, int depth, uint64_t seed);

/**
 * Probability that measuring `routed` (applied to |0...0> on its full
 * wire count) yields the ideal bitstring, with logical qubit q read on
 * wire logical_to_physical[q] (the router's FINAL layout). Sparse
 * simulation: linear in gates, memory ~2^(logical width).
 */
double mirrorSuccessProbability(
    const circuit::Circuit &routed,
    const std::vector<int> &logical_to_physical,
    const std::vector<int> &bitstring);

} // namespace mirage::bench

#endif // MIRAGE_BENCH_CIRCUITS_MIRROR_HH
