/**
 * @file
 * QML / optimization benchmark family: Grover-SAT, portfolio QAOA,
 * swap-test and KNN kernels.
 */

#include <cmath>

#include "bench_circuits/generators.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace mirage::bench {

using linalg::kPi;

Circuit
satGrover(int n)
{
    // Grover search over 4 variables for a small CNF; the oracle ANDs
    // clause results into ancillas with CCX cascades (QASMBench 'sat'
    // style). Qubits: 4 variables, 6 clause/work ancillas, 1 phase qubit.
    MIRAGE_ASSERT(n == 11, "satGrover is defined on 11 qubits");
    Circuit c(n, "sat_n11");
    const int vars = 4;
    const int phase = n - 1;

    for (int q = 0; q < vars; ++q)
        c.h(q);
    c.x(phase);
    c.h(phase);

    auto oracle = [&]() {
        // Clauses (v0 | v1), (~v1 | v2), (v2 | v3), (v0 | v3) computed
        // into ancillas 4..7, AND-reduced into 8..9, then kicked back.
        auto clause_or = [&](int a, bool na, int b, bool nb, int anc) {
            if (na)
                c.x(a);
            if (nb)
                c.x(b);
            c.x(anc);
            c.ccx(a, b, anc);
            c.cx(a, anc);
            c.cx(b, anc);
            if (na)
                c.x(a);
            if (nb)
                c.x(b);
        };
        clause_or(0, false, 1, false, 4);
        clause_or(1, true, 2, false, 5);
        clause_or(2, false, 3, false, 6);
        clause_or(0, false, 3, false, 7);
        c.ccx(4, 5, 8);
        c.ccx(6, 7, 9);
        c.ccx(8, 9, phase);
        // Uncompute.
        c.ccx(6, 7, 9);
        c.ccx(4, 5, 8);
        clause_or(0, false, 3, false, 7);
        clause_or(2, false, 3, false, 6);
        clause_or(1, true, 2, false, 5);
        clause_or(0, false, 1, false, 4);
    };

    auto diffusion = [&]() {
        for (int q = 0; q < vars; ++q) {
            c.h(q);
            c.x(q);
        }
        // Multi-controlled Z via CCX cascade into ancilla 8.
        c.ccx(0, 1, 8);
        c.h(3);
        c.ccx(2, 8, 3);
        c.h(3);
        c.ccx(0, 1, 8);
        for (int q = 0; q < vars; ++q) {
            c.x(q);
            c.h(q);
        }
    };

    for (int iter = 0; iter < 2; ++iter) {
        oracle();
        diffusion();
    }
    return c;
}

Circuit
portfolioQaoa(int n, int p, uint64_t seed)
{
    // QAOA for portfolio optimization: the covariance term makes the
    // interaction graph complete, so every layer has n(n-1)/2 RZZ gates.
    Circuit c(n, "portfolioqaoa_n" + std::to_string(n));
    Rng rng(seed);
    std::vector<double> gamma, beta;
    for (int layer = 0; layer < p; ++layer) {
        gamma.push_back(rng.uniform(0, 2 * kPi));
        beta.push_back(rng.uniform(0, kPi));
    }

    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int layer = 0; layer < p; ++layer) {
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                double w = rng.uniform(0.1, 1.0);
                c.rzz(gamma[size_t(layer)] * w, i, j);
            }
        }
        for (int q = 0; q < n; ++q)
            c.rx(2.0 * beta[size_t(layer)], q);
    }
    return c;
}

Circuit
swapTest(int n)
{
    // 1 ancilla + two (n-1)/2 qubit registers compared via controlled
    // SWAPs.
    MIRAGE_ASSERT(n % 2 == 1, "swapTest needs an odd qubit count");
    const int w = (n - 1) / 2;
    Circuit c(n, "swap_test_n" + std::to_string(n));
    const int anc = 0;
    auto ra = [](int i) { return 1 + i; };
    auto rb = [w](int i) { return 1 + w + i; };

    Rng rng(23);
    for (int i = 0; i < w; ++i) {
        c.ry(rng.uniform(0, kPi), ra(i));
        c.ry(rng.uniform(0, kPi), rb(i));
    }
    c.h(anc);
    for (int i = 0; i < w; ++i)
        c.cswap(anc, ra(i), rb(i));
    c.h(anc);
    return c;
}

Circuit
knn(int n)
{
    // Swap-test based KNN kernel: same interference structure with a
    // feature-encoding layer (RY + entangling CX chain) on each register.
    MIRAGE_ASSERT(n % 2 == 1, "knn needs an odd qubit count");
    const int w = (n - 1) / 2;
    Circuit c(n, "knn_n" + std::to_string(n));
    const int anc = 0;
    auto ra = [](int i) { return 1 + i; };
    auto rb = [w](int i) { return 1 + w + i; };

    Rng rng(29);
    for (int i = 0; i < w; ++i) {
        c.ry(rng.uniform(0, kPi), ra(i));
        c.ry(rng.uniform(0, kPi), rb(i));
    }
    c.h(anc);
    for (int i = 0; i < w; ++i)
        c.cswap(anc, ra(i), rb(i));
    c.h(anc);
    return c;
}

} // namespace mirage::bench
