/**
 * @file
 * Arithmetic benchmark family: CDKM ripple-carry adder and the Draper
 * QFT-based multiplier.
 */

#include <cmath>

#include "bench_circuits/generators.hh"
#include "common/logging.hh"

namespace mirage::bench {

using linalg::kPi;

namespace {

/** CDKM majority gate on (c, b, a). */
void
maj(Circuit &circ, int c, int b, int a)
{
    circ.cx(a, b);
    circ.cx(a, c);
    circ.ccx(c, b, a);
}

/** CDKM un-majority-and-add on (c, b, a). */
void
uma(Circuit &circ, int c, int b, int a)
{
    circ.ccx(c, b, a);
    circ.cx(a, c);
    circ.cx(c, b);
}

} // namespace

Circuit
bigadder(int n)
{
    // Layout: cin = 0, a-bits = 1..w, b-bits = w+1..2w, cout = 2w+1 with
    // w = (n - 2) / 2 (w = 8 for the paper's 18-qubit instance).
    MIRAGE_ASSERT(n >= 4 && n % 2 == 0, "bigadder needs even n >= 4");
    const int w = (n - 2) / 2;
    Circuit c(n, "bigadder_n" + std::to_string(n));
    auto a = [w](int i) { return 1 + i; };
    auto b = [w](int i) { return 1 + w + i; };
    const int cin = 0, cout = 2 * w + 1;

    // Some nontrivial input state.
    for (int i = 0; i < w; i += 2)
        c.x(a(i));
    for (int i = 1; i < w; i += 2)
        c.x(b(i));

    maj(c, cin, b(0), a(0));
    for (int i = 1; i < w; ++i)
        maj(c, a(i - 1), b(i), a(i));
    c.cx(a(w - 1), cout);
    for (int i = w - 1; i >= 1; --i)
        uma(c, a(i - 1), b(i), a(i));
    uma(c, cin, b(0), a(0));
    return c;
}

Circuit
multiplier(int n)
{
    // Draper-style multiplier: x (wx bits), y (wy bits), product
    // (wp = wx + wy bits) kept in the Fourier basis while
    // controlled-controlled phases accumulate x*y.
    MIRAGE_ASSERT(n == 15, "multiplier is defined on 15 qubits");
    const int wx = 3, wy = 3, wp = 6;
    Circuit c(n, "multiplier_n" + std::to_string(n));
    auto x = [](int i) { return i; };
    auto y = [wx](int i) { return wx + i; };
    auto p = [wx, wy](int i) { return wx + wy + i; };

    // Inputs.
    c.x(x(0));
    c.x(x(1));
    c.x(y(0));
    c.x(y(2));

    // QFT on the product register.
    for (int i = wp - 1; i >= 0; --i) {
        c.h(p(i));
        for (int j = i - 1; j >= 0; --j)
            c.cp(kPi / double(1 << (i - j)), p(j), p(i));
    }

    // Accumulate phases: for each x_i, y_j pair add 2^{i+j} into the
    // product via doubly controlled phases (ccp decomposed as
    // cp/2 + cx + cp/-2 + cx + cp/2).
    auto ccp = [&c](double theta, int q0, int q1, int t) {
        c.cp(theta / 2, q1, t);
        c.cx(q0, q1);
        c.cp(-theta / 2, q1, t);
        c.cx(q0, q1);
        c.cp(theta / 2, q0, t);
    };
    for (int i = 0; i < wx; ++i) {
        for (int j = 0; j < wy; ++j) {
            for (int k = i + j; k < wp; ++k) {
                double theta = 2.0 * kPi / double(1 << (k - i - j + 1));
                ccp(theta, x(i), y(j), p(k));
            }
        }
    }

    // Inverse QFT on the product register.
    for (int i = 0; i < wp; ++i) {
        for (int j = 0; j < i; ++j)
            c.cp(-kPi / double(1 << (i - j)), p(j), p(i));
        c.h(p(i));
    }
    return c;
}

} // namespace mirage::bench
