/**
 * @file
 * Hidden-subgroup benchmark family: Bernstein-Vazirani, QFT variants,
 * phase estimation, amplitude estimation.
 */

#include <cmath>

#include "bench_circuits/generators.hh"
#include "common/logging.hh"

namespace mirage::bench {

using linalg::kPi;

Circuit
bernsteinVazirani(int n, int secret_ones)
{
    MIRAGE_ASSERT(secret_ones < n, "secret too long");
    Circuit c(n, "bv_n" + std::to_string(n));
    int target = n - 1;
    for (int q = 0; q < n - 1; ++q)
        c.h(q);
    c.x(target);
    c.h(target);
    // Secret string: the first `secret_ones` data qubits are 1.
    for (int q = 0; q < secret_ones; ++q)
        c.cx(q, target);
    for (int q = 0; q < n - 1; ++q)
        c.h(q);
    return c;
}

namespace {

/** Append a QFT (optionally inverse) on qubits [0, m). */
void
appendQft(Circuit &c, int m, bool inverse, bool with_swaps)
{
    if (!inverse) {
        for (int i = m - 1; i >= 0; --i) {
            c.h(i);
            for (int j = i - 1; j >= 0; --j)
                c.cp(kPi / double(1 << (i - j)), j, i);
        }
        if (with_swaps) {
            for (int i = 0; i < m / 2; ++i)
                c.swap(i, m - 1 - i);
        }
    } else {
        if (with_swaps) {
            for (int i = m / 2 - 1; i >= 0; --i)
                c.swap(i, m - 1 - i);
        }
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < i; ++j)
                c.cp(-kPi / double(1 << (i - j)), j, i);
            c.h(i);
        }
    }
}

} // namespace

Circuit
qft(int n, bool with_swaps)
{
    Circuit c(n, "qft_n" + std::to_string(n));
    appendQft(c, n, false, with_swaps);
    return c;
}

Circuit
qftEntangled(int n)
{
    Circuit c(n, "qftentangled_n" + std::to_string(n));
    c.h(0);
    for (int i = 0; i + 1 < n; ++i)
        c.cx(i, i + 1);
    appendQft(c, n, false, true);
    return c;
}

Circuit
qpeExact(int n)
{
    // n-1 counting qubits estimate an exactly representable phase of a
    // U = P(theta) acting on the eigenstate qubit n-1.
    Circuit c(n, "qpeexact_n" + std::to_string(n));
    int m = n - 1;
    double theta = 2.0 * kPi * (1.0 / (1 << m)) * ((1 << (m - 1)) | 5);
    c.x(n - 1); // eigenstate |1>
    for (int q = 0; q < m; ++q)
        c.h(q);
    for (int q = 0; q < m; ++q) {
        // Controlled-U^{2^q}; phase gates commute so one cp suffices.
        double phi = theta * double(1ULL << q);
        c.cp(std::fmod(phi, 2.0 * kPi), q, n - 1);
    }
    appendQft(c, m, true, true);
    return c;
}

Circuit
amplitudeEstimation(int n)
{
    // MQTBench-style AE: m evaluation qubits + 1 objective qubit; the
    // Grover operator is a controlled RY power, then inverse QFT without
    // the reversal swaps.
    Circuit c(n, "ae_n" + std::to_string(n));
    int m = n - 1;
    const double theta = 2.0 * std::asin(std::sqrt(0.2));
    c.ry(theta, n - 1);
    for (int q = 0; q < m; ++q)
        c.h(q);
    for (int q = 0; q < m; ++q) {
        double power = double(1ULL << q);
        c.cry(2.0 * theta * power, q, n - 1);
    }
    appendQft(c, m, true, false);
    return c;
}

} // namespace mirage::bench
