/**
 * @file
 * Mirror-circuit generators and the bitstring-success query.
 *
 * The mirror-RB bitstring is derived without any simulation: the final
 * state is D P C |0> with D = C^-1, i.e. (C^dag P C)|0>, and conjugating
 * a Pauli string through Clifford gates is a linear update of per-qubit
 * (x, z) bits. The X-support of the conjugated string IS the output
 * bitstring (phases cannot change which basis state it is).
 */

#include "bench_circuits/mirror.hh"

#include <numeric>
#include <string>

#include "circuit/sim_sparse.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "linalg/random_unitary.hh"

namespace mirage::bench {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

// Stream tags for the counter-based RNG (deriveSeed(seed, stream, l)).
constexpr uint64_t kStreamOneQ = 0x51;
constexpr uint64_t kStreamEntangle = 0x52;
constexpr uint64_t kStreamPauli = 0x53;
constexpr uint64_t kStreamQvLayer = 0x54;
constexpr uint64_t kStreamFinalX = 0x55;

/** Seeded Fisher-Yates permutation of [0, n). */
std::vector<int>
randomPermutation(int n, Rng &rng)
{
    std::vector<int> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = n - 1; i > 0; --i)
        std::swap(perm[size_t(i)], perm[size_t(rng.index(uint64_t(i) + 1))]);
    return perm;
}

/** The sampled 1Q Clifford alphabet (each is its own inverse except S). */
constexpr GateKind kOneQCliffords[] = {GateKind::H,  GateKind::S,
                                       GateKind::Sdg, GateKind::X,
                                       GateKind::Y,  GateKind::Z};

GateKind
inverseOf(GateKind k)
{
    if (k == GateKind::S)
        return GateKind::Sdg;
    if (k == GateKind::Sdg)
        return GateKind::S;
    return k; // H, X, Y, Z are involutions
}

/**
 * Conjugate the Pauli string tracked by (x, z) through one Clifford
 * gate g: P -> g P g^dag, phases discarded (they never move the
 * X-support between basis states, only the sign/i factor in front).
 */
void
conjugatePauli(std::vector<int> &x, std::vector<int> &z, const Gate &g)
{
    switch (g.kind) {
      case GateKind::H: {
        std::swap(x[size_t(g.qubits[0])], z[size_t(g.qubits[0])]);
        return;
      }
      case GateKind::S:
      case GateKind::Sdg: {
        z[size_t(g.qubits[0])] ^= x[size_t(g.qubits[0])];
        return;
      }
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
        return; // Paulis commute with Paulis up to phase
      case GateKind::CX: {
        const size_t c = size_t(g.qubits[0]), t = size_t(g.qubits[1]);
        x[t] ^= x[c];
        z[c] ^= z[t];
        return;
      }
      case GateKind::CZ: {
        const size_t a = size_t(g.qubits[0]), b = size_t(g.qubits[1]);
        z[a] ^= x[b];
        z[b] ^= x[a];
        return;
      }
      case GateKind::SWAP: {
        const size_t a = size_t(g.qubits[0]), b = size_t(g.qubits[1]);
        std::swap(x[a], x[b]);
        std::swap(z[a], z[b]);
        return;
      }
      default:
        panic("pauli propagation: unsupported gate %s", g.name().c_str());
    }
}

} // namespace

MirrorCircuit
mirrorRb(int n, int layers, uint64_t seed)
{
    MIRAGE_ASSERT(n >= 2 && n <= 62, "mirrorRb width out of range: %d", n);
    MIRAGE_ASSERT(layers >= 1, "mirrorRb needs >= 1 layers");

    Circuit c(n, "mirror_rb_n" + std::to_string(n));

    // First half: record each layer so the inverse half can replay it.
    std::vector<std::vector<GateKind>> one_q(static_cast<size_t>(layers));
    std::vector<std::vector<Gate>> entangling(
        static_cast<size_t>(layers));
    for (int l = 0; l < layers; ++l) {
        Rng oneq_rng(deriveSeed(seed, kStreamOneQ, uint64_t(l)));
        auto &kinds = one_q[size_t(l)];
        for (int q = 0; q < n; ++q) {
            kinds.push_back(
                kOneQCliffords[oneq_rng.index(std::size(kOneQCliffords))]);
            c.append(circuit::makeGate1(kinds.back(), q));
        }
        Rng ent_rng(deriveSeed(seed, kStreamEntangle, uint64_t(l)));
        auto perm = randomPermutation(n, ent_rng);
        for (int i = 0; i + 1 < n; i += 2) {
            GateKind k = ent_rng.uniform() < 0.5 ? GateKind::CX
                                                 : GateKind::CZ;
            Gate g = circuit::makeGate2(k, perm[size_t(i)],
                                        perm[size_t(i) + 1]);
            entangling[size_t(l)].push_back(g);
            c.append(g);
        }
    }

    // Central Pauli twist.
    std::vector<int> px(size_t(n), 0), pz(size_t(n), 0);
    Rng pauli_rng(deriveSeed(seed, kStreamPauli, 0));
    for (int q = 0; q < n; ++q) {
        switch (pauli_rng.index(4)) {
          case 1: c.x(q); px[size_t(q)] = 1; break;
          case 2: c.y(q); px[size_t(q)] = 1; pz[size_t(q)] = 1; break;
          case 3: c.z(q); pz[size_t(q)] = 1; break;
          default: break; // identity
        }
    }

    // Inverse half, while conjugating the Pauli through it: the final
    // state is (second-half operator) P |0>, and pushing P rightwards
    // past every gate leaves (conjugated P) |0> -- a basis state whose
    // bits are the conjugated string's X-support.
    for (int l = layers - 1; l >= 0; --l) {
        for (const Gate &g : entangling[size_t(l)]) {
            c.append(g); // CX/CZ are involutions
            conjugatePauli(px, pz, g);
        }
        for (int q = 0; q < n; ++q) {
            Gate g =
                circuit::makeGate1(inverseOf(one_q[size_t(l)][size_t(q)]), q);
            c.append(g);
            conjugatePauli(px, pz, g);
        }
    }

    return MirrorCircuit{std::move(c), std::move(px)};
}

MirrorCircuit
mirrorQv(int n, int depth, uint64_t seed)
{
    MIRAGE_ASSERT(n >= 2 && n <= 62, "mirrorQv width out of range: %d", n);
    MIRAGE_ASSERT(depth >= 1, "mirrorQv needs >= 1 layers");

    Circuit c(n, "mirror_qv_n" + std::to_string(n));

    struct Block
    {
        int a, b;
        linalg::Mat4 m;
    };
    std::vector<Block> blocks;
    for (int l = 0; l < depth; ++l) {
        Rng rng(deriveSeed(seed, kStreamQvLayer, uint64_t(l)));
        auto perm = randomPermutation(n, rng);
        for (int i = 0; i + 1 < n; i += 2) {
            Block b{perm[size_t(i)], perm[size_t(i) + 1],
                    linalg::randomSU4(rng)};
            c.unitary(b.a, b.b, b.m);
            blocks.push_back(std::move(b));
        }
    }
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it)
        c.unitary(it->a, it->b, it->m.dagger());

    // Seeded X twist: guarantees a nontrivial target, so a pipeline
    // that silently drops everything cannot fake a pass on |0...0>.
    std::vector<int> bits(size_t(n), 0);
    Rng x_rng(deriveSeed(seed, kStreamFinalX, 0));
    for (int q = 0; q < n; ++q) {
        if (x_rng.uniform() < 0.5) {
            c.x(q);
            bits[size_t(q)] = 1;
        }
    }
    if (std::accumulate(bits.begin(), bits.end(), 0) == 0) {
        c.x(0);
        bits[0] = 1;
    }

    return MirrorCircuit{std::move(c), std::move(bits)};
}

double
mirrorSuccessProbability(const circuit::Circuit &routed,
                         const std::vector<int> &logical_to_physical,
                         const std::vector<int> &bitstring)
{
    MIRAGE_ASSERT(bitstring.size() <= logical_to_physical.size(),
                  "bitstring larger than the layout");
    circuit::SparseState psi(routed.numQubits());
    psi.applyCircuit(routed);
    uint64_t target = 0;
    for (size_t q = 0; q < bitstring.size(); ++q) {
        if (bitstring[q]) {
            const int wire = logical_to_physical[q];
            MIRAGE_ASSERT(wire >= 0 && wire < routed.numQubits(),
                          "layout wire %d outside the routed circuit",
                          wire);
            target |= uint64_t(1) << wire;
        }
    }
    return psi.probability(target);
}

} // namespace mirage::bench
