/**
 * @file
 * Benchmark circuit generators reproducing the paper's Table III suite
 * (QASMBench + MQTBench families) plus the TwoLocal ansatz of Fig. 8.
 *
 * The original benchmarks ship as QASM files; here each family is
 * generated programmatically at the same qubit count with closely
 * matching two-qubit gate counts (the QASMBench-sourced entries count
 * native gates; the MQTBench-sourced entries count CX-decomposed gates;
 * see cxEquivalentCount).
 */

#ifndef MIRAGE_BENCH_CIRCUITS_GENERATORS_HH
#define MIRAGE_BENCH_CIRCUITS_GENERATORS_HH

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace mirage::bench {

using circuit::Circuit;

// --- entanglement / state preparation --------------------------------------

/** W-state preparation: a cascade of controlled rotations + CNOTs. */
Circuit wstate(int n);
/** GHZ state (linear CNOT chain). */
Circuit ghz(int n);
/** TwoLocal ansatz with full (all-pairs) entanglement (paper Fig. 8a). */
Circuit twoLocalFull(int n, int reps = 1, uint64_t seed = 7);

// --- hidden subgroup --------------------------------------------------------

/** Bernstein-Vazirani with the given number of 1-bits in the secret. */
Circuit bernsteinVazirani(int n, int secret_ones);
/** Quantum Fourier transform (with the final reversal SWAP network). */
Circuit qft(int n, bool with_swaps = true);
/** GHZ-entangled input followed by QFT (MQTBench 'qftentangled'). */
Circuit qftEntangled(int n);
/** Quantum phase estimation of an exactly representable phase. */
Circuit qpeExact(int n);
/** Iterative amplitude-estimation style circuit (MQTBench 'ae'). */
Circuit amplitudeEstimation(int n);

// --- arithmetic --------------------------------------------------------------

/** CDKM ripple-carry adder: two (n-2)/2-bit registers + carries. */
Circuit bigadder(int n);
/** Draper (QFT-based) multiplier on split registers. */
Circuit multiplier(int n);

// --- error correction --------------------------------------------------------

/** Shor-9 code: encoding plus X/Z stabilizer syndrome extraction. */
Circuit qec9xz(int n);
/** Shor-code error correction with teleportation (QASMBench 'seca'). */
Circuit seca(int n);

// --- memory ------------------------------------------------------------------

/** Bucket-brigade style QRAM router tree. */
Circuit qram(int n);

// --- QML / optimization -------------------------------------------------------

/** Grover search for a small SAT instance (CCX-cascade oracle). */
Circuit satGrover(int n);
/** QAOA on a complete graph (portfolio optimization), p layers. */
Circuit portfolioQaoa(int n, int p = 3, uint64_t seed = 11);
/** Swap-test between two multi-qubit registers. */
Circuit swapTest(int n);
/** Swap-test based k-nearest-neighbor kernel circuit. */
Circuit knn(int n);

// --- registry -----------------------------------------------------------------

/** One benchmark suite entry. */
struct BenchmarkInfo
{
    std::string name;   ///< paper's name, e.g. "qft_n18"
    int qubits;         ///< paper's qubit count
    int paperTwoQ;      ///< 2Q gate count reported in Table III
    std::string klass;  ///< paper's class label
    std::function<Circuit()> make;
};

/** The 15 circuits of Table III. */
const std::vector<BenchmarkInfo> &paperBenchmarks();

/** Look up a Table III entry by name; throws std::invalid_argument on
 * an unknown name (benchmark names can arrive as request data). */
const BenchmarkInfo &benchmarkByName(const std::string &name);

/**
 * Two-qubit gate count after decomposition to CNOTs (cp/cry/rzz = 2,
 * swap = 3, ccx = 6, cswap = 8, ...), the convention MQTBench reports.
 */
int cxEquivalentCount(const Circuit &c);

} // namespace mirage::bench

#endif // MIRAGE_BENCH_CIRCUITS_GENERATORS_HH
