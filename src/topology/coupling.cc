/**
 * @file
 * Coupling map construction (line, ring, grid, heavy-hex,
 * all-to-all) and BFS all-pairs distances.
 */

#include "topology/coupling.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace mirage::topology {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges,
                         std::string name)
    : numQubits_(num_qubits), name_(std::move(name)), edges_(std::move(edges))
{
    for (auto &[a, b] : edges_) {
        MIRAGE_ASSERT(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
                      "edge (%d,%d) out of range", a, b);
        MIRAGE_ASSERT(a != b, "self-loop edge on qubit %d", a);
        if (a > b)
            std::swap(a, b);
    }
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    buildDerived();
}

void
CouplingMap::buildDerived()
{
    adjacency_.assign(size_t(numQubits_), {});
    adj_.assign(size_t(numQubits_) * size_t(numQubits_), 0);
    for (const auto &[a, b] : edges_) {
        adjacency_[size_t(a)].push_back(b);
        adjacency_[size_t(b)].push_back(a);
        adj_[size_t(a) * size_t(numQubits_) + size_t(b)] = 1;
        adj_[size_t(b) * size_t(numQubits_) + size_t(a)] = 1;
    }
    for (auto &nb : adjacency_)
        std::sort(nb.begin(), nb.end());

    dist_.assign(size_t(numQubits_) * size_t(numQubits_), -1);
    for (int src = 0; src < numQubits_; ++src) {
        int *d = dist_.data() + size_t(src) * size_t(numQubits_);
        d[src] = 0;
        std::deque<int> queue = {src};
        while (!queue.empty()) {
            int u = queue.front();
            queue.pop_front();
            for (int v : adjacency_[size_t(u)]) {
                if (d[v] < 0) {
                    d[v] = d[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

bool
CouplingMap::isConnected() const
{
    for (int q = 0; q < numQubits_; ++q) {
        if (distance(0, q) < 0)
            return false;
    }
    return numQubits_ > 0;
}

int
CouplingMap::maxDegree() const
{
    int best = 0;
    for (const auto &nb : adjacency_)
        best = std::max(best, int(nb.size()));
    return best;
}

std::vector<int>
CouplingMap::shortestPath(int a, int b) const
{
    std::vector<int> path = {b};
    int cur = b;
    while (cur != a) {
        for (int nb : adjacency_[size_t(cur)]) {
            if (distance(a, nb) == distance(a, cur) - 1) {
                cur = nb;
                path.push_back(cur);
                break;
            }
        }
    }
    std::reverse(path.begin(), path.end());
    return path;
}

CouplingMap
CouplingMap::line(int n)
{
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < n; ++i)
        e.emplace_back(i, i + 1);
    return CouplingMap(n, std::move(e), "line-" + std::to_string(n));
}

CouplingMap
CouplingMap::ring(int n)
{
    auto cm = line(n);
    auto e = cm.edges();
    if (n > 2)
        e.emplace_back(0, n - 1);
    return CouplingMap(n, std::move(e), "ring-" + std::to_string(n));
}

CouplingMap
CouplingMap::grid(int rows, int cols)
{
    std::vector<std::pair<int, int>> e;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                e.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                e.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return CouplingMap(rows * cols, std::move(e),
                       "grid-" + std::to_string(rows) + "x" +
                           std::to_string(cols));
}

CouplingMap
CouplingMap::allToAll(int n)
{
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            e.emplace_back(i, j);
    return CouplingMap(n, std::move(e), "a2a-" + std::to_string(n));
}

CouplingMap
CouplingMap::heavyHex(int rows, int row_width)
{
    // Row qubits 0 .. rows*row_width-1 laid out row-major and connected in
    // lines; bridge qubits between consecutive rows at columns congruent
    // to 0 (even gaps) or 2 (odd gaps) mod 4, which tiles the plane with
    // heavy hexagons and keeps every degree <= 3.
    std::vector<std::pair<int, int>> e;
    auto id = [row_width](int r, int c) { return r * row_width + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c + 1 < row_width; ++c)
            e.emplace_back(id(r, c), id(r, c + 1));

    int next = rows * row_width;
    for (int gap = 0; gap + 1 < rows; ++gap) {
        int offset = (gap % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_width; c += 4) {
            int bridge = next++;
            e.emplace_back(id(gap, c), bridge);
            e.emplace_back(bridge, id(gap + 1, c));
        }
    }
    return CouplingMap(next, std::move(e),
                       "heavyhex-" + std::to_string(next));
}

CouplingMap
CouplingMap::heavyHex57()
{
    // 5 rows x 9 row qubits = 45 plus 10 bridges = 55; two boundary flag
    // qubits (as on IBM devices) bring the lattice to 57 while keeping the
    // maximum degree at 3.
    CouplingMap base = heavyHex(5, 9);
    int n = base.numQubits();
    auto e = base.edges();
    // Dangling boundary qubits attached to degree-2 corner-row sites
    // (columns without a bridge in the adjacent gap).
    e.emplace_back(2, n);             // above row 0, column 2
    e.emplace_back(4 * 9 + 4, n + 1); // below row 4, column 4
    return CouplingMap(n + 2, std::move(e), "heavyhex-57");
}

} // namespace mirage::topology
