/**
 * @file
 * Coupling map construction (line, ring, grid, heavy-hex, all-to-all),
 * CSR adjacency, and BFS distances: precomputed all-pairs tables in
 * dense mode, on-demand rows behind a per-thread LRU cache plus ALT
 * landmark lower bounds in sparse mode.
 */

#include "topology/coupling.hh"

#include <algorithm>
#include <atomic>
#include <limits>
#include <list>
#include <unordered_map>

namespace mirage::topology {

namespace {

std::string
edgeStr(int a, int b)
{
    return "(" + std::to_string(a) + "," + std::to_string(b) + ")";
}

/** Next topologyId_ for a sparse map. Never reused, so a row cached for
 * a destroyed map can never be served to a different topology. */
std::atomic<uint64_t> g_nextTopologyId{1};

/** How many landmark rows a sparse map precomputes for
 * distanceLowerBound. 8 rows at n=1121 is ~36 KB -- O(n), not O(n^2). */
constexpr int kNumLandmarks = 8;

// --- per-thread LRU cache of BFS distance rows (sparse mode) ----------
//
// Thread-local by design: CouplingMap is shared read-only across the
// routing trial threads (exec::parallelFor), so a shared mutable cache
// would need locking on the hottest lookup in the router and evictions
// could dangle row pointers held by another thread. Per-thread caches
// are lock-free, TSan-clean, and bounded at capacity * n * 4 bytes per
// routing thread.

struct RowKey
{
    uint64_t id;
    int src;
    bool operator==(const RowKey &o) const
    {
        return id == o.id && src == o.src;
    }
};

struct RowKeyHash
{
    size_t operator()(const RowKey &k) const
    {
        uint64_t h = k.id * 0x9E3779B97F4A7C15ull ^ uint64_t(uint32_t(k.src));
        return size_t(h ^ (h >> 32));
    }
};

struct RowCacheState
{
    struct Entry
    {
        RowKey key{0, 0};
        std::vector<int> row;
    };
    /** Front = most recently used. */
    std::list<Entry> lru;
    std::unordered_map<RowKey, std::list<Entry>::iterator, RowKeyHash> index;
    size_t capacity = 256;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    void evictDownTo(size_t limit)
    {
        while (lru.size() > limit) {
            index.erase(lru.back().key);
            lru.pop_back();
            ++evictions;
        }
    }
};

thread_local RowCacheState t_rowCache;

/** Floor for setRowCacheCapacity: deltaSums in sabre.cc holds two rows
 * at once, so fetching the second must never evict the first. */
constexpr size_t kMinRowCacheCapacity = 8;

} // namespace

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges,
                         std::string name)
    : numQubits_(num_qubits), name_(std::move(name)), edges_(std::move(edges))
{
    if (numQubits_ < 0)
        throw TopologyError("coupling map '" + name_ +
                            "': negative qubit count " +
                            std::to_string(numQubits_));
    for (auto &[a, b] : edges_) {
        if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
            throw TopologyError("coupling map '" + name_ + "': edge " +
                                edgeStr(a, b) + " out of range [0, " +
                                std::to_string(numQubits_) + ")");
        if (a == b)
            throw TopologyError("coupling map '" + name_ +
                                "': self-loop edge on qubit " +
                                std::to_string(a));
        if (a > b)
            std::swap(a, b);
    }
    std::sort(edges_.begin(), edges_.end());
    auto dup = std::adjacent_find(edges_.begin(), edges_.end());
    if (dup != edges_.end())
        throw TopologyError("coupling map '" + name_ + "': duplicate edge " +
                            edgeStr(dup->first, dup->second));
    buildDerived(/*force_sparse=*/false);
}

void
CouplingMap::buildDerived(bool force_sparse)
{
    const size_t n = size_t(numQubits_);
    sparse_ = force_sparse || numQubits_ > kDenseQubitThreshold;

    // CSR adjacency (both modes). Edges are sorted and unique; rows come
    // out sorted because we fill ascending-neighbor per endpoint, then
    // sort each row (the b->a direction arrives out of order).
    csrOffsets_.assign(n + 1, 0);
    for (const auto &[a, b] : edges_) {
        ++csrOffsets_[size_t(a) + 1];
        ++csrOffsets_[size_t(b) + 1];
    }
    for (size_t q = 0; q < n; ++q)
        csrOffsets_[q + 1] += csrOffsets_[q];
    csrNeighbors_.assign(2 * edges_.size(), 0);
    std::vector<int> cursor(csrOffsets_.begin(), csrOffsets_.end() - 1);
    for (const auto &[a, b] : edges_) {
        csrNeighbors_[size_t(cursor[size_t(a)]++)] = b;
        csrNeighbors_[size_t(cursor[size_t(b)]++)] = a;
    }
    for (size_t q = 0; q < n; ++q)
        std::sort(csrNeighbors_.begin() + csrOffsets_[q],
                  csrNeighbors_.begin() + csrOffsets_[q + 1]);

    // Connected components, O(n + m): the route-entry fail-fast and the
    // shortestPath disconnected check key off these ids in O(1).
    component_.assign(n, -1);
    numComponents_ = 0;
    std::vector<int> queue;
    queue.reserve(n);
    for (int root = 0; root < numQubits_; ++root) {
        if (component_[size_t(root)] >= 0)
            continue;
        int comp = numComponents_++;
        component_[size_t(root)] = comp;
        queue.clear();
        queue.push_back(root);
        for (size_t head = 0; head < queue.size(); ++head) {
            for (int v : neighbors(queue[head])) {
                if (component_[size_t(v)] < 0) {
                    component_[size_t(v)] = comp;
                    queue.push_back(v);
                }
            }
        }
    }

    if (!sparse_) {
        // Dense fast path: flat adjacency matrix + all-pairs distances.
        adj_.assign(n * n, 0);
        for (const auto &[a, b] : edges_) {
            adj_[size_t(a) * n + size_t(b)] = 1;
            adj_[size_t(b) * n + size_t(a)] = 1;
        }
        dist_.assign(n * n, -1);
        for (int src = 0; src < numQubits_; ++src)
            bfsFrom(src, dist_.data() + size_t(src) * n);
        topologyId_ = 0;
        landmarks_.clear();
        landmarkDist_.clear();
        return;
    }

    // Sparse mode: no O(n^2) tables. Distance rows are BFS-on-demand via
    // the per-thread cache; here we only pick landmarks for the ALT
    // lower bound, by farthest-point sampling (classic ALT placement:
    // spread landmarks toward the periphery so |d(L,a) - d(L,b)| is
    // tight along lattice axes). Deterministic: seeded at qubit 0,
    // ties broken by lowest index.
    adj_.clear();
    adj_.shrink_to_fit();
    dist_.clear();
    dist_.shrink_to_fit();
    topologyId_ = g_nextTopologyId.fetch_add(1, std::memory_order_relaxed);

    landmarks_.clear();
    landmarkDist_.clear();
    const int k = std::min(kNumLandmarks, numQubits_);
    if (k <= 0)
        return;
    landmarkDist_.assign(size_t(k) * n, -1);
    // minDist[q] = min over chosen landmarks of d(L, q); unreachable
    // counts as "infinitely far" so later landmarks seed every component.
    std::vector<int> minDist(n, std::numeric_limits<int>::max());
    int next = 0;
    for (int li = 0; li < k; ++li) {
        landmarks_.push_back(next);
        int *row = landmarkDist_.data() + size_t(li) * n;
        bfsFrom(next, row);
        int best = -1;
        next = 0;
        for (size_t q = 0; q < n; ++q) {
            int d = row[q] < 0 ? std::numeric_limits<int>::max() : row[q];
            minDist[q] = std::min(minDist[q], d);
            if (minDist[q] > best) {
                best = minDist[q];
                next = int(q);
            }
        }
    }
}

void
CouplingMap::bfsFrom(int src, int *dist) const
{
    dist[src] = 0;
    std::vector<int> queue;
    queue.reserve(size_t(numQubits_));
    queue.push_back(src);
    for (size_t head = 0; head < queue.size(); ++head) {
        int u = queue[head];
        for (int v : neighbors(u)) {
            if (dist[v] < 0) {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
}

const int *
CouplingMap::sparseRow(int a) const
{
    RowCacheState &c = t_rowCache;
    const RowKey key{topologyId_, a};
    auto it = c.index.find(key);
    if (it != c.index.end()) {
        ++c.hits;
        c.lru.splice(c.lru.begin(), c.lru, it->second);
        return it->second->row.data();
    }
    ++c.misses;
    // Recycle the LRU entry's row storage instead of reallocating.
    std::list<RowCacheState::Entry> node;
    if (c.lru.size() >= c.capacity) {
        auto last = std::prev(c.lru.end());
        c.index.erase(last->key);
        node.splice(node.begin(), c.lru, last);
        ++c.evictions;
    } else {
        node.emplace_back();
    }
    RowCacheState::Entry &e = node.front();
    e.key = key;
    e.row.assign(size_t(numQubits_), -1);
    bfsFrom(a, e.row.data());
    c.lru.splice(c.lru.begin(), node);
    c.index[key] = c.lru.begin();
    return c.lru.front().row.data();
}

int
CouplingMap::distanceLowerBound(int a, int b) const
{
    if (!sparse_)
        return distance(a, b);
    if (!sameComponent(a, b))
        return -1;
    if (a == b)
        return 0;
    // ALT: d(a,b) >= |d(L,a) - d(L,b)| by the triangle inequality.
    // Adjacent qubits give >= 1 trivially.
    int best = 1;
    const size_t n = size_t(numQubits_);
    for (size_t li = 0; li < landmarks_.size(); ++li) {
        const int *row = landmarkDist_.data() + li * n;
        const int da = row[a];
        const int db = row[b];
        if (da < 0 || db < 0)
            continue; // landmark in another component
        best = std::max(best, da < db ? db - da : da - db);
    }
    return best;
}

int
CouplingMap::maxDegree() const
{
    int best = 0;
    for (int q = 0; q < numQubits_; ++q)
        best = std::max(best, int(neighbors(q).size()));
    return best;
}

CouplingMap
CouplingMap::asSparse() const
{
    CouplingMap m;
    m.numQubits_ = numQubits_;
    m.name_ = name_;
    m.edges_ = edges_;
    m.buildDerived(/*force_sparse=*/true);
    return m;
}

size_t
CouplingMap::derivedTableBytes() const
{
    return csrOffsets_.capacity() * sizeof(int) +
           csrNeighbors_.capacity() * sizeof(int) +
           component_.capacity() * sizeof(int) +
           adj_.capacity() * sizeof(uint8_t) +
           dist_.capacity() * sizeof(int) +
           landmarks_.capacity() * sizeof(int) +
           landmarkDist_.capacity() * sizeof(int);
}

std::vector<int>
CouplingMap::shortestPath(int a, int b) const
{
    if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
        throw TopologyError("shortestPath(" + std::to_string(a) + ", " +
                            std::to_string(b) + ") out of range on '" +
                            name_ + "' (" + std::to_string(numQubits_) +
                            " qubits)");
    if (!sameComponent(a, b))
        throw TopologyError(
            "no path between qubits " + std::to_string(a) + " and " +
            std::to_string(b) + " on '" + name_ +
            "': they are in different connected components (" +
            std::to_string(componentOf(a)) + " vs " +
            std::to_string(componentOf(b)) + ")");
    // Walk b -> a through any neighbor one hop closer to a. One row
    // fetch covers the whole reconstruction in either storage mode, and
    // both modes walk identical rows, so the returned path is identical.
    const int *row = distanceRow(a);
    std::vector<int> path = {b};
    int cur = b;
    while (cur != a) {
        for (int nb : neighbors(cur)) {
            if (row[nb] == row[cur] - 1) {
                cur = nb;
                path.push_back(cur);
                break;
            }
        }
    }
    std::reverse(path.begin(), path.end());
    return path;
}

CouplingMap::RowCacheStats
CouplingMap::rowCacheStats()
{
    const RowCacheState &c = t_rowCache;
    RowCacheStats s;
    s.rows = c.lru.size();
    s.capacity = c.capacity;
    for (const auto &e : c.lru)
        s.bytes += e.row.capacity() * sizeof(int);
    s.hits = c.hits;
    s.misses = c.misses;
    s.evictions = c.evictions;
    return s;
}

void
CouplingMap::setRowCacheCapacity(size_t rows)
{
    RowCacheState &c = t_rowCache;
    c.capacity = std::max(rows, kMinRowCacheCapacity);
    c.evictDownTo(c.capacity);
}

void
CouplingMap::clearRowCache()
{
    RowCacheState &c = t_rowCache;
    c.lru.clear();
    c.index.clear();
    c.hits = c.misses = c.evictions = 0;
}

CouplingMap
CouplingMap::line(int n)
{
    if (n <= 0)
        throw TopologyError("line(" + std::to_string(n) +
                            "): qubit count must be positive");
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < n; ++i)
        e.emplace_back(i, i + 1);
    return CouplingMap(n, std::move(e), "line-" + std::to_string(n));
}

CouplingMap
CouplingMap::ring(int n)
{
    if (n <= 0)
        throw TopologyError("ring(" + std::to_string(n) +
                            "): qubit count must be positive");
    auto cm = line(n);
    auto e = cm.edges();
    if (n > 2)
        e.emplace_back(0, n - 1);
    return CouplingMap(n, std::move(e), "ring-" + std::to_string(n));
}

CouplingMap
CouplingMap::grid(int rows, int cols)
{
    if (rows <= 0 || cols <= 0)
        throw TopologyError("grid(" + std::to_string(rows) + ", " +
                            std::to_string(cols) +
                            "): dimensions must be positive");
    std::vector<std::pair<int, int>> e;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                e.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                e.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return CouplingMap(rows * cols, std::move(e),
                       "grid-" + std::to_string(rows) + "x" +
                           std::to_string(cols));
}

CouplingMap
CouplingMap::allToAll(int n)
{
    if (n <= 0)
        throw TopologyError("allToAll(" + std::to_string(n) +
                            "): qubit count must be positive");
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            e.emplace_back(i, j);
    return CouplingMap(n, std::move(e), "a2a-" + std::to_string(n));
}

CouplingMap
CouplingMap::heavyHex(int rows, int row_width)
{
    if (rows <= 0 || row_width <= 0)
        throw TopologyError("heavyHex(" + std::to_string(rows) + ", " +
                            std::to_string(row_width) +
                            "): dimensions must be positive");
    // Row qubits 0 .. rows*row_width-1 laid out row-major and connected in
    // lines; bridge qubits between consecutive rows at columns congruent
    // to 0 (even gaps) or 2 (odd gaps) mod 4, which tiles the plane with
    // heavy hexagons and keeps every degree <= 3.
    std::vector<std::pair<int, int>> e;
    auto id = [row_width](int r, int c) { return r * row_width + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c + 1 < row_width; ++c)
            e.emplace_back(id(r, c), id(r, c + 1));

    int next = rows * row_width;
    for (int gap = 0; gap + 1 < rows; ++gap) {
        int offset = (gap % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_width; c += 4) {
            int bridge = next++;
            e.emplace_back(id(gap, c), bridge);
            e.emplace_back(bridge, id(gap + 1, c));
        }
    }
    return CouplingMap(next, std::move(e),
                       "heavyhex-" + std::to_string(next));
}

CouplingMap
CouplingMap::heavyHex57()
{
    // 5 rows x 9 row qubits = 45 plus 10 bridges = 55; two boundary flag
    // qubits (as on IBM devices) bring the lattice to 57 while keeping the
    // maximum degree at 3.
    CouplingMap base = heavyHex(5, 9);
    int n = base.numQubits();
    auto e = base.edges();
    // Dangling boundary qubits attached to degree-2 corner-row sites
    // (columns without a bridge in the adjacent gap).
    e.emplace_back(2, n);             // above row 0, column 2
    e.emplace_back(4 * 9 + 4, n + 1); // below row 4, column 4
    return CouplingMap(n + 2, std::move(e), "heavyhex-57");
}

CouplingMap
CouplingMap::heavyHex433()
{
    // IBM Osprey scale: 15 rows x 23 row qubits = 345 plus 14 gaps x 6
    // bridges = 84 -> 429; four boundary flag qubits on degree-2 sites
    // (row 0 and row 14 at odd columns, which never host a bridge) bring
    // it to 433 with max degree still 3. Over kDenseQubitThreshold, so
    // this builds in sparse mode.
    CouplingMap base = heavyHex(15, 23);
    int n = base.numQubits();
    auto e = base.edges();
    e.emplace_back(1, n);               // above row 0, column 1
    e.emplace_back(3, n + 1);           // above row 0, column 3
    e.emplace_back(14 * 23 + 1, n + 2); // below row 14, column 1
    e.emplace_back(14 * 23 + 3, n + 3); // below row 14, column 3
    return CouplingMap(n + 4, std::move(e), "heavyhex-433");
}

CouplingMap
CouplingMap::heavyHex1121()
{
    // IBM Condor scale: 25 rows x 36 row qubits = 900 plus 24 gaps x 9
    // bridges = 216 -> 1116; five boundary flag qubits on degree-2 sites
    // bring it to 1121 with max degree still 3. Sparse mode.
    CouplingMap base = heavyHex(25, 36);
    int n = base.numQubits();
    auto e = base.edges();
    e.emplace_back(1, n);               // above row 0, column 1
    e.emplace_back(3, n + 1);           // above row 0, column 3
    e.emplace_back(5, n + 2);           // above row 0, column 5
    e.emplace_back(24 * 36 + 1, n + 3); // below row 24, column 1
    e.emplace_back(24 * 36 + 3, n + 4); // below row 24, column 3
    return CouplingMap(n + 5, std::move(e), "heavyhex-1121");
}

const char *
CouplingMap::specForms()
{
    return "grid<R>x<C>, line<N>, ring<N>, heavyhex57, heavyhex433, "
           "heavyhex1121, alltoall<N>, or auto";
}

CouplingMap
CouplingMap::parseSpec(const std::string &spec, int min_qubits)
{
    auto intSuffix = [&spec](size_t prefix_len, int *value) {
        const std::string tail = spec.substr(prefix_len);
        if (tail.empty() ||
            tail.find_first_not_of("0123456789") != std::string::npos)
            return false;
        *value = std::atoi(tail.c_str());
        return *value > 0;
    };

    if (spec == "auto") {
        int side = 1;
        while (side * side < min_qubits)
            ++side;
        return grid(side, side);
    }
    if (spec == "heavyhex57")
        return heavyHex57();
    if (spec == "heavyhex433")
        return heavyHex433();
    if (spec == "heavyhex1121")
        return heavyHex1121();
    if (spec.rfind("grid", 0) == 0) {
        size_t x = spec.find('x', 4);
        if (x != std::string::npos) {
            const std::string rows = spec.substr(4, x - 4);
            const std::string cols = spec.substr(x + 1);
            if (!rows.empty() && !cols.empty() &&
                rows.find_first_not_of("0123456789") == std::string::npos &&
                cols.find_first_not_of("0123456789") == std::string::npos) {
                int r = std::atoi(rows.c_str());
                int c = std::atoi(cols.c_str());
                if (r > 0 && c > 0)
                    return grid(r, c);
            }
        }
    }
    int n = 0;
    if (spec.rfind("line", 0) == 0 && intSuffix(4, &n))
        return line(n);
    if (spec.rfind("ring", 0) == 0 && intSuffix(4, &n))
        return ring(n);
    if (spec.rfind("alltoall", 0) == 0 && intSuffix(8, &n))
        return allToAll(n);
    throw std::invalid_argument("unknown topology '" + spec +
                                "' (expected " + specForms() + ")");
}

} // namespace mirage::topology
