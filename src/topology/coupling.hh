/**
 * @file
 * Hardware coupling maps (qubit connectivity graphs).
 *
 * Provides the topologies evaluated in the paper: line, ring, square
 * lattice (6x6, 8x8), a 57-qubit heavy-hex lattice, and all-to-all, plus
 * BFS all-pairs distances that the SABRE/MIRAGE heuristics consume.
 */

#ifndef MIRAGE_TOPOLOGY_COUPLING_HH
#define MIRAGE_TOPOLOGY_COUPLING_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mirage::topology {

/** Undirected qubit connectivity graph. */
class CouplingMap
{
  public:
    CouplingMap() = default;
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges,
                std::string name = "custom");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    const std::vector<int> &neighbors(int q) const
    {
        return adjacency_[size_t(q)];
    }

    /** O(1) adjacency probe (flat matrix; the routing flush loop's
     * executability test). */
    bool isEdge(int a, int b) const
    {
        return adj_[size_t(a) * size_t(numQubits_) + size_t(b)] != 0;
    }
    /** Shortest-path distance (hops); -1 if disconnected. */
    int distance(int a, int b) const
    {
        return dist_[size_t(a) * size_t(numQubits_) + size_t(b)];
    }
    /**
     * Row `a` of the flat all-pairs distance table: `distanceRow(a)[b] ==
     * distance(a, b)`. The table is contiguous row-major storage, so the
     * routing hot path can hoist one pointer per swap candidate instead
     * of chasing a vector-of-vectors indirection per lookup.
     */
    const int *distanceRow(int a) const
    {
        return dist_.data() + size_t(a) * size_t(numQubits_);
    }
    bool isConnected() const;
    int maxDegree() const;

    /** A shortest path from a to b (inclusive of endpoints). */
    std::vector<int> shortestPath(int a, int b) const;

    // Generators -------------------------------------------------------
    static CouplingMap line(int n);
    static CouplingMap ring(int n);
    static CouplingMap grid(int rows, int cols);
    static CouplingMap allToAll(int n);
    /**
     * IBM-style heavy-hex lattice: rows of linearly connected qubits with
     * bridge qubits between rows at alternating columns (period 4). Row
     * count and width control the size; degree never exceeds 3.
     */
    static CouplingMap heavyHex(int rows, int row_width);
    /** The 57-qubit heavy-hex instance used in the paper's evaluation. */
    static CouplingMap heavyHex57();

  private:
    void buildDerived();

    int numQubits_ = 0;
    std::string name_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adjacency_;
    /** Row-major numQubits_ x numQubits_ adjacency matrix. */
    std::vector<uint8_t> adj_;
    /** Row-major numQubits_ x numQubits_ all-pairs BFS distances. */
    std::vector<int> dist_;
};

} // namespace mirage::topology

#endif // MIRAGE_TOPOLOGY_COUPLING_HH
