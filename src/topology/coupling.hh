/**
 * @file
 * Hardware coupling maps (qubit connectivity graphs).
 *
 * Provides the topologies evaluated in the paper: line, ring, square
 * lattice (6x6, 8x8), a 57-qubit heavy-hex lattice, and all-to-all, plus
 * the large-device instances (heavy-hex 433/1121 a la IBM Osprey/Condor).
 *
 * Storage is split by device size:
 *
 *  - **Dense mode** (n <= kDenseQubitThreshold): flat O(n^2) adjacency
 *    and all-pairs BFS distance tables, exactly as before. `distance`
 *    and `isEdge` are single loads; `distanceRow` is a pointer into the
 *    row-major table.
 *  - **Sparse mode** (larger devices, or forced via `asSparse()`): CSR
 *    adjacency only -- O(n + m) resident memory -- with distance rows
 *    computed by BFS on demand and kept in a small per-thread LRU row
 *    cache. `distanceRow` still returns a contiguous `const int *` row,
 *    so the routing hot path in src/router/sabre.cc is mode-agnostic.
 *    ALT-style landmark tables give O(1) admissible lower bounds via
 *    `distanceLowerBound` without materializing exact rows.
 *
 * Both modes produce identical `distance` / `distanceRow` /
 * `shortestPath` results (property-tested), so routing output is
 * bit-identical regardless of storage mode.
 */

#ifndef MIRAGE_TOPOLOGY_COUPLING_HH
#define MIRAGE_TOPOLOGY_COUPLING_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mirage::topology {

/**
 * Invalid topology construction or query: bad generator sizes,
 * out-of-range / self-loop / duplicate edges, or a path request across
 * disconnected components. Thrown (rather than abort()) so the CLI can
 * surface a clean `mirage: ...` diagnostic and tests can EXPECT_THROW.
 */
class TopologyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Undirected qubit connectivity graph. */
class CouplingMap
{
  public:
    /**
     * Lightweight view over one CSR adjacency row. Iterates like
     * `const std::vector<int> &` did; valid as long as the CouplingMap
     * it came from.
     */
    class NeighborSpan
    {
      public:
        NeighborSpan(const int *begin, const int *end)
            : begin_(begin), end_(end)
        {
        }
        const int *begin() const { return begin_; }
        const int *end() const { return end_; }
        size_t size() const { return size_t(end_ - begin_); }
        bool empty() const { return begin_ == end_; }
        int operator[](size_t i) const { return begin_[i]; }

      private:
        const int *begin_;
        const int *end_;
    };

    /** Devices up to this many qubits keep the flat O(n^2) tables. */
    static constexpr int kDenseQubitThreshold = 128;

    CouplingMap() = default;
    /** Throws TopologyError on negative qubit count, out-of-range,
     * self-loop, or duplicate edges. */
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges,
                std::string name = "custom");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    /** Sorted neighbor list of q (CSR row view). */
    NeighborSpan neighbors(int q) const
    {
        return NeighborSpan(csrNeighbors_.data() + csrOffsets_[size_t(q)],
                            csrNeighbors_.data() + csrOffsets_[size_t(q) + 1]);
    }

    /** Adjacency probe (the routing flush loop's executability test):
     * O(1) matrix load in dense mode, bounded scan of a sorted CSR row
     * (degree <= 4 on every shipped lattice) in sparse mode. */
    bool isEdge(int a, int b) const
    {
        if (!sparse_)
            return adj_[size_t(a) * size_t(numQubits_) + size_t(b)] != 0;
        for (int nb : neighbors(a)) {
            if (nb == b)
                return true;
            if (nb > b)
                return false;
        }
        return false;
    }
    /** Shortest-path distance (hops); -1 if disconnected. Sparse mode
     * resolves through the per-thread row cache. */
    int distance(int a, int b) const
    {
        if (!sparse_)
            return dist_[size_t(a) * size_t(numQubits_) + size_t(b)];
        return sparseRow(a)[b];
    }
    /**
     * Row `a` of the all-pairs distance table: `distanceRow(a)[b] ==
     * distance(a, b)`. Always contiguous `int[numQubits()]` storage so
     * the routing hot path can hoist one pointer per swap candidate.
     * Dense mode: a pointer into the flat table, valid for the map's
     * lifetime. Sparse mode: a pointer into the calling thread's LRU
     * row cache, valid until that thread faults in `rowCacheCapacity() -
     * 1` further distinct rows (the capacity is clamped >= 8; the
     * router holds at most two rows at a time).
     */
    const int *distanceRow(int a) const
    {
        if (!sparse_)
            return dist_.data() + size_t(a) * size_t(numQubits_);
        return sparseRow(a);
    }
    /**
     * Admissible lower bound on distance(a, b): exact in dense mode; in
     * sparse mode the ALT bound max_L |d(L,a) - d(L,b)| over the
     * precomputed landmark rows -- O(#landmarks) with no BFS and no row
     * cache traffic, for outlook-style scoring that only needs a bound.
     * -1 if a and b are in different components (matching distance()).
     */
    int distanceLowerBound(int a, int b) const;

    bool isConnected() const
    {
        return numQubits_ > 0 && numComponents_ == 1;
    }
    /** Number of connected components (0 for the empty map). */
    int numComponents() const { return numComponents_; }
    /** Component id of qubit q (ids are dense, 0-based). */
    int componentOf(int q) const { return component_[size_t(q)]; }
    bool sameComponent(int a, int b) const
    {
        return component_[size_t(a)] == component_[size_t(b)];
    }
    int maxDegree() const;

    /** True when this map uses sparse (CSR + on-demand BFS) storage. */
    bool sparse() const { return sparse_; }
    /** Copy of this map with sparse storage forced regardless of size
     * (test hook for dense-vs-sparse equivalence checks). */
    CouplingMap asSparse() const;

    /** Resident bytes of derived tables (CSR, components, dense
     * adjacency/distance tables, landmark rows). Excludes the
     * per-thread row cache -- see rowCacheStats().bytes. */
    size_t derivedTableBytes() const;

    /**
     * A shortest path from a to b (inclusive of endpoints). Throws
     * TopologyError if a and b are in different components (previously
     * this spun forever walking -1 distances).
     */
    std::vector<int> shortestPath(int a, int b) const;

    // Sparse row cache (per-thread; shared by all sparse maps) --------
    struct RowCacheStats
    {
        size_t rows = 0;     ///< rows currently resident
        size_t capacity = 0; ///< eviction threshold (rows)
        size_t bytes = 0;    ///< resident row storage, bytes
        uint64_t hits = 0;
        uint64_t misses = 0;   ///< each miss is one O(n + m) BFS
        uint64_t evictions = 0;
    };
    /** Stats for the calling thread's row cache. */
    static RowCacheStats rowCacheStats();
    /** Set the calling thread's row-cache capacity (clamped to >= 8 so
     * hot-path callers holding two rows never see an eviction race). */
    static void setRowCacheCapacity(size_t rows);
    /** Drop all cached rows (and reset stats) on the calling thread. */
    static void clearRowCache();

    // Generators -------------------------------------------------------
    static CouplingMap line(int n);
    static CouplingMap ring(int n);
    static CouplingMap grid(int rows, int cols);
    static CouplingMap allToAll(int n);
    /**
     * IBM-style heavy-hex lattice: rows of linearly connected qubits with
     * bridge qubits between rows at alternating columns (period 4). Row
     * count and width control the size; degree never exceeds 3.
     */
    static CouplingMap heavyHex(int rows, int row_width);
    /** The 57-qubit heavy-hex instance used in the paper's evaluation. */
    static CouplingMap heavyHex57();
    /** 433-qubit heavy-hex (IBM Osprey scale); sparse storage. */
    static CouplingMap heavyHex433();
    /** 1121-qubit heavy-hex (IBM Condor scale); sparse storage. */
    static CouplingMap heavyHex1121();

    /**
     * Parse a device spec string shared by the CLI and the serve
     * request schema: grid<R>x<C>, line<N>, ring<N>, heavyhex57,
     * heavyhex433, heavyhex1121, alltoall<N>, or "auto" (the smallest
     * square grid with at least `min_qubits` sites). Throws
     * std::invalid_argument (listing the accepted forms) on anything
     * else; callers map that to their own usage-error type.
     */
    static CouplingMap parseSpec(const std::string &spec, int min_qubits);
    /** The accepted parseSpec() forms, for help text and errors. */
    static const char *specForms();

  private:
    void buildDerived(bool force_sparse);
    /** BFS from src over the CSR adjacency into dist[0..n), which must
     * be pre-filled with -1. */
    void bfsFrom(int src, int *dist) const;
    const int *sparseRow(int a) const;

    int numQubits_ = 0;
    std::string name_;
    std::vector<std::pair<int, int>> edges_;

    // CSR adjacency (both modes): neighbors of q are
    // csrNeighbors_[csrOffsets_[q] .. csrOffsets_[q+1]), sorted.
    std::vector<int> csrOffsets_;
    std::vector<int> csrNeighbors_;
    /** Connected-component id per qubit. */
    std::vector<int> component_;
    int numComponents_ = 0;

    bool sparse_ = false;
    /** Globally unique id keying this map's rows in the per-thread row
     * cache (sparse mode; never reused, so stale entries can't alias a
     * new map). Copies share the id -- identical edges, identical rows. */
    uint64_t topologyId_ = 0;

    // Dense mode only:
    /** Row-major numQubits_ x numQubits_ adjacency matrix. */
    std::vector<uint8_t> adj_;
    /** Row-major numQubits_ x numQubits_ all-pairs BFS distances. */
    std::vector<int> dist_;

    // Sparse mode only: landmark qubits (farthest-point sampled) and
    // their full BFS rows, row-major #landmarks x numQubits_.
    std::vector<int> landmarks_;
    std::vector<int> landmarkDist_;
};

} // namespace mirage::topology

#endif // MIRAGE_TOPOLOGY_COUPLING_HH
