/**
 * @file
 * Deterministic quadrature over tetrahedra and polytopes.
 *
 * Used to integrate the Haar density over coverage polytopes ("exact"
 * Haar volumes and scores in the paper's Tables I/II are computed by
 * polytope integration; here that is uniform tetrahedral subdivision with
 * a degree-2 rule per leaf, converged well beyond the reported digits).
 */

#ifndef MIRAGE_GEOMETRY_QUADRATURE_HH
#define MIRAGE_GEOMETRY_QUADRATURE_HH

#include <functional>

#include "geometry/polytope.hh"

namespace mirage::geometry {

using DensityFn = std::function<double(const Vec3 &)>;

/**
 * Integrate f over a tetrahedron: uniform subdivision to `depth` levels
 * (8^depth leaves) with a 4-point degree-2 rule per leaf.
 */
double integrateTetra(const Tetra &t, const DensityFn &f, int depth = 2);

/** Integrate f over a polytope (sum over its tetrahedralization). */
double integratePolytope(const Polytope &p, const DensityFn &f,
                         int depth = 2);

/**
 * Integrate f over the region (union of polytopes) intersected with a
 * bounding polytope `domain`: integrates over the domain's
 * tetrahedralization with the union's indicator folded into f. Handles
 * overlapping union members without double counting.
 */
double integrateUnion(const std::vector<Polytope> &members,
                      const Polytope &domain, const DensityFn &f,
                      int depth = 3);

} // namespace mirage::geometry

#endif // MIRAGE_GEOMETRY_QUADRATURE_HH
