/**
 * @file
 * Deterministic quadrature: uniform tetrahedral subdivision of
 * polytopes with a degree-2 rule per leaf, used for exact Haar volumes.
 */

#include "geometry/quadrature.hh"

#include <array>

namespace mirage::geometry {

namespace {

/** Degree-2 4-point rule on a tetrahedron. */
double
leafRule(const Tetra &t, const DensityFn &f)
{
    constexpr double alpha = 0.5854101966249685;
    constexpr double beta = 0.1381966011250105;
    double vol = t.volume();
    if (vol <= 0)
        return 0;
    double acc = 0;
    for (int i = 0; i < 4; ++i) {
        Vec3 p{0, 0, 0};
        for (int j = 0; j < 4; ++j) {
            double w = (i == j) ? alpha : beta;
            p = p + t.v[size_t(j)] * w;
        }
        acc += f(p);
    }
    return acc * vol / 4.0;
}

/** Split a tetrahedron into 8 children via edge midpoints. */
std::array<Tetra, 8>
split(const Tetra &t)
{
    const Vec3 &v0 = t.v[0], &v1 = t.v[1], &v2 = t.v[2], &v3 = t.v[3];
    Vec3 m01 = (v0 + v1) * 0.5, m02 = (v0 + v2) * 0.5, m03 = (v0 + v3) * 0.5;
    Vec3 m12 = (v1 + v2) * 0.5, m13 = (v1 + v3) * 0.5, m23 = (v2 + v3) * 0.5;
    return {
        Tetra{{v0, m01, m02, m03}}, Tetra{{m01, v1, m12, m13}},
        Tetra{{m02, m12, v2, m23}}, Tetra{{m03, m13, m23, v3}},
        // Interior octahedron split along the m01-m23 diagonal.
        Tetra{{m01, m02, m03, m23}}, Tetra{{m01, m02, m12, m23}},
        Tetra{{m01, m03, m13, m23}}, Tetra{{m01, m12, m13, m23}},
    };
}

double
integrateRec(const Tetra &t, const DensityFn &f, int depth)
{
    if (depth <= 0)
        return leafRule(t, f);
    double acc = 0;
    for (const auto &child : split(t))
        acc += integrateRec(child, f, depth - 1);
    return acc;
}

} // namespace

double
integrateTetra(const Tetra &t, const DensityFn &f, int depth)
{
    return integrateRec(t, f, depth);
}

double
integratePolytope(const Polytope &p, const DensityFn &f, int depth)
{
    double acc = 0;
    for (const auto &t : p.tetrahedralize())
        acc += integrateRec(t, f, depth);
    return acc;
}

double
integrateUnion(const std::vector<Polytope> &members, const Polytope &domain,
               const DensityFn &f, int depth)
{
    // Inclusion-exclusion over convex intersections keeps the integrand
    // smooth on every term, unlike masking with the union's indicator.
    const size_t n = members.size();
    double acc = 0;
    for (size_t mask = 1; mask < (size_t(1) << n); ++mask) {
        Polytope inter = domain;
        int bits = 0;
        for (size_t i = 0; i < n; ++i) {
            if (mask & (size_t(1) << i)) {
                inter = inter.intersect(members[i]);
                ++bits;
            }
        }
        double term = integratePolytope(inter, f, depth);
        acc += (bits % 2 == 1) ? term : -term;
    }
    return acc;
}

} // namespace mirage::geometry
