/**
 * @file
 * H-representation polytope kernel: membership, intersection, vertex
 * enumeration from facet-plane triples, and facet geometry in exact
 * rational arithmetic.
 */

#include "geometry/polytope.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mirage::geometry {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Solve the 3x3 system M x = rhs by Cramer's rule; false if singular. */
bool
solve3(const Vec3 &r0, const Vec3 &r1, const Vec3 &r2, const Vec3 &rhs,
       Vec3 *out)
{
    double det = r0.dot(r1.cross(r2));
    if (std::fabs(det) < 1e-12)
        return false;
    // Despite the name, solve with a small dense Gaussian elimination
    // rather than literal Cramer column replacement -- clearer and just
    // as fast at this size.
    double m[3][4] = {{r0.x, r0.y, r0.z, rhs.x},
                      {r1.x, r1.y, r1.z, rhs.y},
                      {r2.x, r2.y, r2.z, rhs.z}};
    for (int col = 0; col < 3; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 3; ++r)
            if (std::fabs(m[r][col]) > std::fabs(m[pivot][col]))
                pivot = r;
        if (std::fabs(m[pivot][col]) < 1e-12)
            return false;
        if (pivot != col)
            for (int c = 0; c < 4; ++c)
                std::swap(m[pivot][c], m[col][c]);
        for (int r = 0; r < 3; ++r) {
            if (r == col)
                continue;
            double f = m[r][col] / m[col][col];
            for (int c = col; c < 4; ++c)
                m[r][c] -= f * m[col][c];
        }
    }
    out->x = m[0][3] / m[0][0];
    out->y = m[1][3] / m[1][1];
    out->z = m[2][3] / m[2][2];
    return true;
}

} // namespace

double
Vec3::norm() const
{
    return std::sqrt(x * x + y * y + z * z);
}

double
Tetra::volume() const
{
    Vec3 a = v[1] - v[0], b = v[2] - v[0], c = v[3] - v[0];
    return std::fabs(a.dot(b.cross(c))) / 6.0;
}

Vec3
Tetra::centroid() const
{
    return (v[0] + v[1] + v[2] + v[3]) * 0.25;
}

bool
Polytope::contains(const Vec3 &p, double tol) const
{
    for (const auto &h : hs_) {
        if (h.violation(p) > tol)
            return false;
    }
    return true;
}

Polytope
Polytope::intersect(const Polytope &o) const
{
    std::vector<Halfspace> hs = hs_;
    hs.insert(hs.end(), o.hs_.begin(), o.hs_.end());
    return Polytope(std::move(hs));
}

std::vector<Vec3>
Polytope::vertices(double tol) const
{
    std::vector<Vec3> verts;
    const size_t m = hs_.size();
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = i + 1; j < m; ++j) {
            for (size_t k = j + 1; k < m; ++k) {
                Vec3 p;
                if (!solve3(hs_[i].n, hs_[j].n, hs_[k].n,
                            {hs_[i].d, hs_[j].d, hs_[k].d}, &p))
                    continue;
                if (!contains(p, tol))
                    continue;
                bool dup = false;
                for (const auto &q : verts) {
                    if ((p - q).norm() < 1e-7) {
                        dup = true;
                        break;
                    }
                }
                if (!dup)
                    verts.push_back(p);
            }
        }
    }
    return verts;
}

void
Polytope::removeRedundancy(double tol)
{
    auto verts = vertices(tol);
    if (verts.size() < 4)
        return;
    std::vector<Halfspace> kept;
    for (const auto &h : hs_) {
        int tight = 0;
        for (const auto &v : verts) {
            if (std::fabs(h.violation(v)) < tol * 10)
                ++tight;
        }
        if (tight >= 3)
            kept.push_back(h);
    }
    if (kept.size() >= 4)
        hs_ = std::move(kept);
}

std::vector<Tetra>
Polytope::tetrahedralize(double tol) const
{
    auto verts = vertices(tol);
    if (verts.size() < 4)
        return {};

    Vec3 centroid{0, 0, 0};
    for (const auto &v : verts)
        centroid = centroid + v;
    centroid = centroid * (1.0 / double(verts.size()));

    // Deduplicate facet planes (intersections routinely carry repeated
    // halfspaces; a repeated plane would double-count its face fan).
    std::vector<Halfspace> unique;
    for (const auto &h : hs_) {
        double nn = h.n.norm();
        if (nn < 1e-12)
            continue;
        Vec3 n = h.n * (1.0 / nn);
        double d = h.d / nn;
        bool dup = false;
        for (const auto &u : unique) {
            if ((u.n - n).norm() < 1e-9 && std::fabs(u.d - d) < 1e-9) {
                dup = true;
                break;
            }
        }
        if (!dup)
            unique.push_back(Halfspace{n, d});
    }

    std::vector<Tetra> tets;
    for (const auto &h : unique) {
        // Vertices tight on this facet.
        std::vector<Vec3> face;
        for (const auto &v : verts) {
            if (std::fabs(h.violation(v)) < tol * 10)
                face.push_back(v);
        }
        if (face.size() < 3)
            continue;

        // Order the face polygon by angle around its centroid.
        Vec3 fc{0, 0, 0};
        for (const auto &v : face)
            fc = fc + v;
        fc = fc * (1.0 / double(face.size()));

        Vec3 nrm = h.n;
        double nn = nrm.norm();
        if (nn < 1e-12)
            continue;
        nrm = nrm * (1.0 / nn);
        // In-plane orthonormal basis (u, w).
        Vec3 u = nrm.cross(Vec3{1, 0, 0});
        if (u.norm() < 1e-6)
            u = nrm.cross(Vec3{0, 1, 0});
        u = u * (1.0 / u.norm());
        Vec3 w = nrm.cross(u);

        std::sort(face.begin(), face.end(), [&](const Vec3 &a, const Vec3 &b) {
            Vec3 da = a - fc, db = b - fc;
            return std::atan2(da.dot(w), da.dot(u)) <
                   std::atan2(db.dot(w), db.dot(u));
        });

        for (size_t i = 1; i + 1 < face.size(); ++i) {
            Tetra t{{face[0], face[i], face[i + 1], centroid}};
            if (t.volume() > 1e-14)
                tets.push_back(t);
        }
    }
    return tets;
}

double
Polytope::volume() const
{
    double vol = 0;
    for (const auto &t : tetrahedralize())
        vol += t.volume();
    return vol;
}

Polytope
Polytope::affineImage(const std::array<double, 9> &a, const Vec3 &b) const
{
    // Invert A (row-major 3x3).
    const double *m = a.data();
    double det = m[0] * (m[4] * m[8] - m[5] * m[7]) -
                 m[1] * (m[3] * m[8] - m[5] * m[6]) +
                 m[2] * (m[3] * m[7] - m[4] * m[6]);
    MIRAGE_ASSERT(std::fabs(det) > 1e-12, "affine map is singular");
    double inv[9] = {
        (m[4] * m[8] - m[5] * m[7]) / det, (m[2] * m[7] - m[1] * m[8]) / det,
        (m[1] * m[5] - m[2] * m[4]) / det, (m[5] * m[6] - m[3] * m[8]) / det,
        (m[0] * m[8] - m[2] * m[6]) / det, (m[2] * m[3] - m[0] * m[5]) / det,
        (m[3] * m[7] - m[4] * m[6]) / det, (m[1] * m[6] - m[0] * m[7]) / det,
        (m[0] * m[4] - m[1] * m[3]) / det};

    // n . x <= d with x = A^{-1}(x' - b) becomes (A^{-T} n) . x' <= d +
    // (A^{-T} n) . b.
    std::vector<Halfspace> out;
    out.reserve(hs_.size());
    for (const auto &h : hs_) {
        Vec3 n2{inv[0] * h.n.x + inv[3] * h.n.y + inv[6] * h.n.z,
                inv[1] * h.n.x + inv[4] * h.n.y + inv[7] * h.n.z,
                inv[2] * h.n.x + inv[5] * h.n.y + inv[8] * h.n.z};
        out.push_back(Halfspace{n2, h.d + n2.dot(b)});
    }
    return Polytope(std::move(out));
}

std::string
Polytope::toString() const
{
    std::string s;
    char buf[128];
    for (const auto &h : hs_) {
        std::snprintf(buf, sizeof(buf), "  %+.4f a %+.4f b %+.4f c <= %.6f\n",
                      h.n.x, h.n.y, h.n.z, h.d);
        s += buf;
    }
    return s;
}

Polytope
weylAlcove()
{
    std::vector<Halfspace> hs = {
        {{-1, 1, 0}, 0},        // b <= a
        {{0, -1, 1}, 0},        // c <= b
        {{0, 0, -1}, 0},        // 0 <= c
        {{1, 1, 0}, kPi / 2.0}, // a + b <= pi/2
    };
    return Polytope(std::move(hs));
}

Polytope
signedChamber()
{
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, kPi / 4.0}, // x <= pi/4
        {{-1, 1, 0}, 0},        // y <= x
        {{0, -1, 1}, 0},        // z <= y
        {{0, -1, -1}, 0},       // -z <= y
    };
    return Polytope(std::move(hs));
}

} // namespace mirage::geometry
