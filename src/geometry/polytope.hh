/**
 * @file
 * Convex polytopes in 3D via halfspace (H-) representation.
 *
 * The monodromy coverage sets live in the Weyl alcove; their facets have
 * small-integer normals in the canonical coordinates. This kernel supports
 * exactly the operations the coverage machinery needs: membership queries,
 * intersection, vertex enumeration (triples of facet planes), facet
 * extraction, tetrahedralization, and affine images (for the mirror
 * transform, which is piecewise affine).
 */

#ifndef MIRAGE_GEOMETRY_POLYTOPE_HH
#define MIRAGE_GEOMETRY_POLYTOPE_HH

#include <array>
#include <string>
#include <vector>

namespace mirage::geometry {

/** 3-vector. */
struct Vec3
{
    double x = 0, y = 0, z = 0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    double dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }
    Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    double norm() const;
};

/** Halfspace n . x <= d. */
struct Halfspace
{
    Vec3 n;
    double d = 0;

    double violation(const Vec3 &p) const { return n.dot(p) - d; }
};

/** Tetrahedron (for quadrature). */
struct Tetra
{
    std::array<Vec3, 4> v;

    double volume() const;
    Vec3 centroid() const;
};

/** Convex polytope as an intersection of halfspaces. */
class Polytope
{
  public:
    Polytope() = default;
    explicit Polytope(std::vector<Halfspace> halfspaces)
        : hs_(std::move(halfspaces))
    {}

    const std::vector<Halfspace> &halfspaces() const { return hs_; }
    bool empty() const { return hs_.empty(); }

    bool contains(const Vec3 &p, double tol = 1e-9) const;

    /** Intersection (concatenated halfspace lists). */
    Polytope intersect(const Polytope &o) const;
    void addHalfspace(const Halfspace &h) { hs_.push_back(h); }

    /**
     * Enumerate vertices: intersections of facet-plane triples satisfying
     * all constraints, deduplicated.
     */
    std::vector<Vec3> vertices(double tol = 1e-7) const;

    /**
     * Drop halfspaces that are not tight at any vertex (redundant facets).
     * Requires the polytope to be full-dimensional.
     */
    void removeRedundancy(double tol = 1e-7);

    /**
     * Decompose into tetrahedra (facet fan around the vertex centroid).
     * Returns an empty list for lower-dimensional polytopes.
     */
    std::vector<Tetra> tetrahedralize(double tol = 1e-7) const;

    /** Euclidean volume (sum over tetrahedralization). */
    double volume() const;

    /** Affine image under x -> A x + b (A must be invertible). */
    Polytope affineImage(const std::array<double, 9> &a,
                         const Vec3 &b) const;

    std::string toString() const;

  private:
    std::vector<Halfspace> hs_;
};

/** The positive-canonical Weyl alcove as a polytope (radians). */
Polytope weylAlcove();

/**
 * The signed Weyl chamber { pi/4 >= x >= y >= |z| } (radians) -- the
 * domain in which monodromy coverage polytopes are convex.
 */
Polytope signedChamber();

} // namespace mirage::geometry

#endif // MIRAGE_GEOMETRY_POLYTOPE_HH
