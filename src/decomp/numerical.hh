/**
 * @file
 * Numerical decomposition front-end: express a two-qubit target in k
 * applications of a basis gate, either exactly (fidelity ~1) or as the
 * best achievable approximation for a given k (used by the approximate
 * decomposition experiments, paper Algorithm 1 / Table II).
 */

#ifndef MIRAGE_DECOMP_NUMERICAL_HH
#define MIRAGE_DECOMP_NUMERICAL_HH

#include "circuit/circuit.hh"
#include "decomp/optimize.hh"

namespace mirage::decomp {

/** A fitted decomposition of a 2Q target. */
struct Decomposition
{
    int k = 0;                  ///< basis applications used
    double fidelity = 0;        ///< achieved process fidelity
    std::vector<double> params; ///< 6(k+1) U3 angles
    /**
     * Objective evaluations spent producing this fit, including
     * discarded restarts/continuation branches. Zero for entries
     * restored from a saved cache (warm starts cost nothing) -- the
     * counter behind the bench-lowering `fitEvaluations` gate, and NOT
     * part of the persisted cache format.
     */
    uint64_t evaluations = 0;
};

/** Best fit with exactly k basis applications. */
Decomposition decomposeWithK(const Mat4 &target, const Mat4 &basis, int k,
                             Rng &rng, const FitOptions &opts = {});

/**
 * Like decomposeWithK, but fits the CANONICAL gate CAN(a,b,c) of the
 * target and grafts the exact KAK local factors onto the outermost
 * ansatz layers. The optimization landscape of the bare canonical gate
 * is far better conditioned than that of a locally dressed block
 * (small-angle controlled-phase blocks routinely fit to ~1e-14 via the
 * canonical form where the direct fit stalls around 1e-5), and the
 * grafting is exact, so the achieved fidelity carries over. The
 * reported fidelity is re-evaluated against the original target.
 */
Decomposition decomposeViaCanonical(const Mat4 &target, const Mat4 &basis,
                                    int k, Rng &rng,
                                    const FitOptions &opts = {});

/**
 * Smallest k in [0, max_k] whose fit reaches `min_fidelity`; the fit for
 * that k is returned (or the best found at max_k when none reaches it).
 */
Decomposition decomposeMinimal(const Mat4 &target, const Mat4 &basis,
                               int max_k, double min_fidelity, Rng &rng,
                               const FitOptions &opts = {});

/**
 * Append the fitted sequence to a circuit as Unitary1Q layers interleaved
 * with RootISWAP(root_degree) gates on wires (qa, qb).
 */
void appendDecomposition(circuit::Circuit &circ, const Decomposition &d,
                         int root_degree, int qa, int qb);

} // namespace mirage::decomp

#endif // MIRAGE_DECOMP_NUMERICAL_HH
