/**
 * @file
 * Numerical decomposition front-end: exact and best-approximation
 * fits of two-qubit targets in k basis applications with seeded
 * optimizer restarts.
 */

#include "decomp/numerical.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "decomp/ansatz.hh"
#include "weyl/can.hh"
#include "weyl/catalog.hh"
#include "weyl/kak.hh"

namespace mirage::decomp {

Decomposition
decomposeWithK(const Mat4 &target, const Mat4 &basis, int k, Rng &rng,
               const FitOptions &opts)
{
    Decomposition d;
    d.k = k;
    if (k == 0) {
        // Only local: fidelity of the best L0 fit. Optimize the k=0
        // ansatz (a single local layer).
        AnsatzFit fit = fitAnsatz(target, basis, 0, rng, opts);
        d.fidelity = fit.fidelity;
        d.params = fit.params;
        d.evaluations = uint64_t(fit.evaluations);
        return d;
    }
    AnsatzFit fit = fitAnsatz(target, basis, k, rng, opts);
    d.fidelity = fit.fidelity;
    d.params = fit.params;
    d.evaluations = uint64_t(fit.evaluations);
    return d;
}

namespace {

/** Write the ZYZ angles of `m` into three consecutive U3 parameters. */
void
setU3Params(std::vector<double> &params, size_t base, const linalg::Mat2 &m)
{
    auto ang = weyl::eulerZYZ(m);
    params[base] = ang[0];
    params[base + 1] = ang[1];
    params[base + 2] = ang[2];
}

Mat2
u3Of(const std::vector<double> &params, size_t base)
{
    return weyl::gateU3(params[base], params[base + 1], params[base + 2]);
}

/**
 * Continuation fallback for canonical targets near a degenerate Weyl
 * chamber vertex (identity, iSWAP, SWAP). The fit landscape of CAN(c)
 * degrades as c approaches a vertex -- the QFT's small-angle
 * controlled-phase tail and near-SWAP mirrored blocks routinely stall
 * around 1e-5..1e-7 infidelity -- but it is benign at moderate
 * distance. So walk a geometric distance schedule along the straight
 * line from a well-conditioned pulled-out anchor down to the real
 * target, warm-starting each step from the previous solution. Both the
 * vertex and the target lie in the (convex) k-pulse coverage polytope,
 * so every intermediate point is a valid k-pulse target.
 */
Decomposition
fitCanonicalByContinuation(const weyl::Coord &c, const Mat4 &basis, int k,
                           Rng &rng, const FitOptions &opts)
{
    constexpr double kComfortDistance = 0.125;
    constexpr int kSteps = 6;
    const double quarter_pi = linalg::kPi / 4.0;
    const double vertices[][3] = {
        {0.0, 0.0, 0.0},                      // identity
        {quarter_pi, quarter_pi, 0.0},        // iSWAP
        {quarter_pi, quarter_pi, quarter_pi}, // SWAP
    };

    Decomposition d;
    d.k = k;
    d.fidelity = -1;

    // Nearest degenerate vertex and the offset direction from it.
    double best_dist = -1;
    double dir[3] = {0, 0, 0};
    for (const auto &v : vertices) {
        double da = c.a - v[0], db = c.b - v[1], dc = c.c - v[2];
        double dist = std::sqrt(da * da + db * db + dc * dc);
        if (best_dist < 0 || dist < best_dist) {
            best_dist = dist;
            dir[0] = da;
            dir[1] = db;
            dir[2] = dc;
        }
    }
    if (best_dist <= 0.0 || best_dist >= kComfortDistance)
        return d; // not the stall zone; caller keeps the direct fit
    for (double &x : dir)
        x /= best_dist;
    const double va = c.a - dir[0] * best_dist;
    const double vb = c.b - dir[1] * best_dist;
    const double vc = c.c - dir[2] * best_dist;

    FitOptions step_opts = opts;
    for (int j = 0; j <= kSteps; ++j) {
        double m = kComfortDistance *
                   std::pow(best_dist / kComfortDistance,
                            double(j) / kSteps);
        Mat4 target = weyl::canonicalGate(va + dir[0] * m, vb + dir[1] * m,
                                          vc + dir[2] * m);
        AnsatzFit fit = fitAnsatz(target, basis, k, rng, step_opts);
        d.evaluations += uint64_t(fit.evaluations);
        step_opts.initialGuess = fit.params;
        step_opts.restarts = 1; // track the branch; warm start suffices
        if (j == kSteps) {
            d.fidelity = fit.fidelity;
            d.params = std::move(fit.params);
        }
    }
    return d;
}

} // namespace

Decomposition
decomposeViaCanonical(const Mat4 &target, const Mat4 &basis, int k, Rng &rng,
                      const FitOptions &opts)
{
    weyl::KakDecomposition kak = weyl::kakDecompose(target);
    Mat4 canonical =
        weyl::canonicalGate(kak.coords.a, kak.coords.b, kak.coords.c);
    Decomposition d = decomposeWithK(canonical, basis, k, rng, opts);
    if (k >= 1 && 1.0 - d.fidelity > opts.targetInfidelity) {
        Decomposition cont =
            fitCanonicalByContinuation(kak.coords, basis, k, rng, opts);
        // Evaluations measure work DONE, so the continuation's cost is
        // charged whether or not its branch wins.
        uint64_t total = d.evaluations + cont.evaluations;
        if (cont.fidelity > d.fidelity)
            d = cont;
        d.evaluations = total;
    }

    // target = e^{i phase} (l1 x l2) CAN (r1 x r2): fold the exact local
    // factors into the first (rightmost) and last ansatz layers. Global
    // phases dropped by the ZYZ extraction do not affect fidelity.
    const size_t last = size_t(6 * k);
    if (k == 0) {
        setU3Params(d.params, 0, kak.l1 * u3Of(d.params, 0) * kak.r1);
        setU3Params(d.params, 3, kak.l2 * u3Of(d.params, 3) * kak.r2);
    } else {
        setU3Params(d.params, 0, u3Of(d.params, 0) * kak.r1);
        setU3Params(d.params, 3, u3Of(d.params, 3) * kak.r2);
        setU3Params(d.params, last, kak.l1 * u3Of(d.params, last));
        setU3Params(d.params, last + 3, kak.l2 * u3Of(d.params, last + 3));
    }
    d.fidelity = ansatzFidelity(target, basis, k, d.params, nullptr);
    d.evaluations += 1; // the re-evaluation above
    return d;
}

Decomposition
decomposeMinimal(const Mat4 &target, const Mat4 &basis, int max_k,
                 double min_fidelity, Rng &rng, const FitOptions &opts)
{
    Decomposition best;
    best.fidelity = -1;
    uint64_t total = 0;
    for (int k = 0; k <= max_k; ++k) {
        Decomposition d = decomposeWithK(target, basis, k, rng, opts);
        total += d.evaluations;
        if (d.fidelity > best.fidelity)
            best = d;
        if (d.fidelity >= min_fidelity) {
            d.evaluations = total;
            return d;
        }
    }
    best.evaluations = total;
    return best;
}

void
appendDecomposition(circuit::Circuit &circ, const Decomposition &d,
                    int root_degree, int qa, int qb)
{
    MIRAGE_ASSERT(int(d.params.size()) == ansatzParamCount(d.k),
                  "malformed decomposition");
    auto layer = [&](int i) {
        const double *p = d.params.data() + 6 * i;
        circ.append(circuit::makeUnitary1(
            qa, weyl::gateU3(p[0], p[1], p[2])));
        circ.append(circuit::makeUnitary1(
            qb, weyl::gateU3(p[3], p[4], p[5])));
    };
    layer(0);
    for (int i = 1; i <= d.k; ++i) {
        circ.riswap(root_degree, qa, qb);
        layer(i);
    }
}

} // namespace mirage::decomp
