/**
 * @file
 * Numerical decomposition front-end: exact and best-approximation
 * fits of two-qubit targets in k basis applications with seeded
 * optimizer restarts.
 */

#include "decomp/numerical.hh"

#include "common/logging.hh"
#include "decomp/ansatz.hh"
#include "weyl/catalog.hh"

namespace mirage::decomp {

Decomposition
decomposeWithK(const Mat4 &target, const Mat4 &basis, int k, Rng &rng,
               const FitOptions &opts)
{
    Decomposition d;
    d.k = k;
    if (k == 0) {
        // Only local: fidelity of the best L0 fit. Optimize the k=0
        // ansatz (a single local layer).
        AnsatzFit fit = fitAnsatz(target, basis, 0, rng, opts);
        d.fidelity = fit.fidelity;
        d.params = fit.params;
        return d;
    }
    AnsatzFit fit = fitAnsatz(target, basis, k, rng, opts);
    d.fidelity = fit.fidelity;
    d.params = fit.params;
    return d;
}

Decomposition
decomposeMinimal(const Mat4 &target, const Mat4 &basis, int max_k,
                 double min_fidelity, Rng &rng, const FitOptions &opts)
{
    Decomposition best;
    best.fidelity = -1;
    for (int k = 0; k <= max_k; ++k) {
        Decomposition d = decomposeWithK(target, basis, k, rng, opts);
        if (d.fidelity > best.fidelity)
            best = d;
        if (d.fidelity >= min_fidelity)
            return d;
    }
    return best;
}

void
appendDecomposition(circuit::Circuit &circ, const Decomposition &d,
                    int root_degree, int qa, int qb)
{
    MIRAGE_ASSERT(int(d.params.size()) == ansatzParamCount(d.k),
                  "malformed decomposition");
    auto layer = [&](int i) {
        const double *p = d.params.data() + 6 * i;
        circ.append(circuit::makeUnitary1(
            qa, weyl::gateU3(p[0], p[1], p[2])));
        circ.append(circuit::makeUnitary1(
            qb, weyl::gateU3(p[3], p[4], p[5])));
    };
    layer(0);
    for (int i = 1; i <= d.k; ++i) {
        circ.riswap(root_degree, qa, qb);
        layer(i);
    }
}

} // namespace mirage::decomp
