/**
 * @file
 * Cartan-form interleaved ansatz: circuit construction, parameter
 * packing, and analytic gradient support for the numerical decomposer.
 */

#include "decomp/ansatz.hh"

#include <cmath>

#include "common/logging.hh"

namespace mirage::decomp {

namespace {

/** U3 and its three partial derivatives. */
struct U3WithGrad
{
    Mat2 u;
    Mat2 dt; ///< d/dtheta
    Mat2 dp; ///< d/dphi
    Mat2 dl; ///< d/dlambda
};

U3WithGrad
u3WithGrad(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    const Complex el = std::polar(1.0, lambda);
    const Complex ep = std::polar(1.0, phi);
    const Complex epl = std::polar(1.0, phi + lambda);
    const Complex i(0, 1);

    U3WithGrad out;
    out.u(0, 0) = c;
    out.u(0, 1) = -el * s;
    out.u(1, 0) = ep * s;
    out.u(1, 1) = epl * c;

    out.dt(0, 0) = -s / 2.0;
    out.dt(0, 1) = -el * (c / 2.0);
    out.dt(1, 0) = ep * (c / 2.0);
    out.dt(1, 1) = -epl * (s / 2.0);

    out.dp(1, 0) = i * ep * s;
    out.dp(1, 1) = i * epl * c;

    out.dl(0, 1) = -i * el * s;
    out.dl(1, 1) = i * epl * c;
    return out;
}

Complex
traceDaggerProduct(const Mat4 &a, const Mat4 &m)
{
    // tr(a^dagger m)
    Complex s(0);
    for (size_t i = 0; i < 16; ++i)
        s += std::conj(a.a[i]) * m.a[i];
    return s;
}

} // namespace

Mat4
buildAnsatz(const Mat4 &basis, int k, const std::vector<double> &params)
{
    MIRAGE_ASSERT(int(params.size()) == ansatzParamCount(k),
                  "ansatz parameter count mismatch");
    using linalg::kron;

    auto layer = [&](int i) {
        const double *p = params.data() + 6 * i;
        U3WithGrad a = u3WithGrad(p[0], p[1], p[2]);
        U3WithGrad b = u3WithGrad(p[3], p[4], p[5]);
        return kron(a.u, b.u);
    };

    Mat4 v = layer(0);
    for (int i = 1; i <= k; ++i)
        v = layer(i) * (basis * v);
    return v;
}

double
ansatzFidelity(const Mat4 &target, const Mat4 &basis, int k,
               const std::vector<double> &params, std::vector<double> *grad)
{
    MIRAGE_ASSERT(int(params.size()) == ansatzParamCount(k),
                  "ansatz parameter count mismatch");
    using linalg::kron;

    const int m = 2 * k; // factor positions 0..m
    const int nfac = m + 1;

    // Layer matrices and their per-parameter derivative pieces.
    std::vector<U3WithGrad> la(size_t(k + 1)), lb(static_cast<size_t>(k + 1));
    for (int i = 0; i <= k; ++i) {
        const double *p = params.data() + 6 * i;
        la[size_t(i)] = u3WithGrad(p[0], p[1], p[2]);
        lb[size_t(i)] = u3WithGrad(p[3], p[4], p[5]);
    }

    auto factor = [&](int j) -> Mat4 {
        if (j % 2 == 1)
            return basis;
        int i = j / 2;
        return kron(la[size_t(i)].u, lb[size_t(i)].u);
    };

    // Suffix products: suffix[j] = F_m ... F_{j+1}; prefix[j] = F_{j-1}..F_0.
    std::vector<Mat4> suffix(static_cast<size_t>(nfac));
    suffix[size_t(m)] = Mat4::identity();
    for (int j = m - 1; j >= 0; --j)
        suffix[size_t(j)] = suffix[size_t(j + 1)] * factor(j + 1);

    std::vector<Mat4> prefix(static_cast<size_t>(nfac));
    prefix[0] = Mat4::identity();
    for (int j = 1; j <= m; ++j)
        prefix[size_t(j)] = factor(j - 1) * prefix[size_t(j - 1)];

    Mat4 v = suffix[0] * factor(0);
    Complex g = traceDaggerProduct(v, target);
    double fid = std::norm(g) / 16.0;

    if (grad) {
        grad->assign(size_t(ansatzParamCount(k)), 0.0);
        for (int i = 0; i <= k; ++i) {
            int j = 2 * i;
            // M = suffix[j]^dagger * target * prefix[j]^dagger
            Mat4 mj = suffix[size_t(j)].dagger() * target *
                      prefix[size_t(j)].dagger();
            const U3WithGrad &a = la[size_t(i)];
            const U3WithGrad &b = lb[size_t(i)];
            const Mat2 *da[3] = {&a.dt, &a.dp, &a.dl};
            const Mat2 *db[3] = {&b.dt, &b.dp, &b.dl};
            for (int p = 0; p < 3; ++p) {
                Complex dg = traceDaggerProduct(kron(*da[p], b.u), mj);
                (*grad)[size_t(6 * i + p)] =
                    2.0 / 16.0 * (std::conj(g) * dg).real();
            }
            for (int p = 0; p < 3; ++p) {
                Complex dg = traceDaggerProduct(kron(a.u, *db[p]), mj);
                (*grad)[size_t(6 * i + 3 + p)] =
                    2.0 / 16.0 * (std::conj(g) * dg).real();
            }
        }
    }
    return fid;
}

} // namespace mirage::decomp
