/**
 * @file
 * Interleaved circuit ansatz for numerical decomposition.
 *
 * The ansatz is the standard Cartan form (paper Fig. 2): k applications of
 * the 2Q basis gate interleaved with k+1 layers of arbitrary single-qubit
 * pairs, each parametrized by U3 Euler angles:
 *
 *   V(p) = L_k B L_{k-1} B ... L_1 B L_0,   L_i = U3(a_i) (x) U3(b_i)
 *
 * 6(k+1) real parameters. The objective is PU(4) process fidelity against
 * a target; gradients are computed analytically via prefix/suffix
 * products, which is what makes the Monte Carlo experiments (Fig. 5,
 * Table II) fast enough.
 */

#ifndef MIRAGE_DECOMP_ANSATZ_HH
#define MIRAGE_DECOMP_ANSATZ_HH

#include <vector>

#include "linalg/matrix.hh"

namespace mirage::decomp {

using linalg::Complex;
using linalg::Mat2;
using linalg::Mat4;

/** Number of parameters for a k-application ansatz. */
inline int
ansatzParamCount(int k)
{
    return 6 * (k + 1);
}

/** Build V(p) for k applications of `basis`. */
Mat4 buildAnsatz(const Mat4 &basis, int k, const std::vector<double> &params);

/**
 * Process fidelity |tr(V(p)^dagger target)|^2 / 16 and (optionally) its
 * gradient with respect to all parameters.
 */
double ansatzFidelity(const Mat4 &target, const Mat4 &basis, int k,
                      const std::vector<double> &params,
                      std::vector<double> *grad = nullptr);

} // namespace mirage::decomp

#endif // MIRAGE_DECOMP_ANSATZ_HH
