/**
 * @file
 * Numerical optimizers: Adam for the decomposition ansatz (analytic
 * gradients) and a generic Nelder-Mead simplex used both for polishing
 * and for derivative-free objectives (e.g. polytope support functions).
 */

#ifndef MIRAGE_DECOMP_OPTIMIZE_HH
#define MIRAGE_DECOMP_OPTIMIZE_HH

#include <functional>
#include <vector>

#include "common/rng.hh"
#include "linalg/matrix.hh"

namespace mirage::decomp {

using linalg::Mat4;

/** Result of an ansatz optimization. */
struct AnsatzFit
{
    std::vector<double> params;
    double fidelity = 0; ///< process fidelity in [0, 1]
    int evaluations = 0;
};

/** Options for fitAnsatz. */
struct FitOptions
{
    int restarts = 3;
    int adamIterations = 300;
    double adamLearningRate = 0.1;
    /** Early-exit once 1 - fidelity < this. */
    double targetInfidelity = 1e-10;
    /** Run a Nelder-Mead polish on the best start. */
    bool polish = true;
    /**
     * Optional warm start: when the size matches the ansatz parameter
     * count, the FIRST restart begins here instead of at a random
     * point (remaining restarts stay random). Used by the continuation
     * fallback for ill-conditioned near-identity targets.
     */
    std::vector<double> initialGuess;
};

/**
 * Fit the interleaved ansatz (k applications of basis) to the target in
 * process fidelity. Multi-start Adam with analytic gradients plus an
 * optional simplex polish.
 */
AnsatzFit fitAnsatz(const Mat4 &target, const Mat4 &basis, int k, Rng &rng,
                    const FitOptions &opts = {});

/** Generic objective for Nelder-Mead. */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

/**
 * Nelder-Mead minimization. Returns the best point found; `f` is called
 * at most max_evals times.
 */
std::vector<double> nelderMead(const ObjectiveFn &f,
                               std::vector<double> start, double step,
                               int max_evals, double *best_value = nullptr);

} // namespace mirage::decomp

#endif // MIRAGE_DECOMP_OPTIMIZE_HH
