/**
 * @file
 * Optimizers: Adam with analytic gradients for the decomposition
 * ansatz and a generic Nelder-Mead simplex for derivative-free
 * objectives.
 */

#include "decomp/optimize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "decomp/ansatz.hh"

namespace mirage::decomp {

AnsatzFit
fitAnsatz(const Mat4 &target, const Mat4 &basis, int k, Rng &rng,
          const FitOptions &opts)
{
    const int np = ansatzParamCount(k);
    AnsatzFit best;
    best.params.assign(size_t(np), 0.0);
    best.fidelity = -1;

    int evals = 0;
    for (int restart = 0; restart < opts.restarts; ++restart) {
        std::vector<double> p(static_cast<size_t>(np));
        if (restart == 0 && int(opts.initialGuess.size()) == np) {
            p = opts.initialGuess;
        } else {
            for (auto &x : p)
                x = rng.uniform(-linalg::kPi, linalg::kPi);
        }

        // Adam with analytic gradients (maximize fidelity = minimize -F).
        std::vector<double> m(size_t(np), 0.0), v(size_t(np), 0.0);
        std::vector<double> grad;
        double fid = 0;
        const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
        double lr = opts.adamLearningRate;
        for (int it = 1; it <= opts.adamIterations; ++it) {
            fid = ansatzFidelity(target, basis, k, p, &grad);
            ++evals;
            if (1.0 - fid < opts.targetInfidelity)
                break;
            // Light learning-rate decay stabilizes the tail.
            if (it % 100 == 0)
                lr *= 0.5;
            for (int i = 0; i < np; ++i) {
                double gneg = -grad[size_t(i)]; // minimizing -F
                m[size_t(i)] = b1 * m[size_t(i)] + (1 - b1) * gneg;
                v[size_t(i)] = b2 * v[size_t(i)] + (1 - b2) * gneg * gneg;
                double mh = m[size_t(i)] / (1 - std::pow(b1, it));
                double vh = v[size_t(i)] / (1 - std::pow(b2, it));
                p[size_t(i)] -= lr * mh / (std::sqrt(vh) + eps);
            }
        }
        fid = ansatzFidelity(target, basis, k, p, nullptr);
        ++evals;
        if (fid > best.fidelity) {
            best.fidelity = fid;
            best.params = p;
        }
        if (1.0 - best.fidelity < opts.targetInfidelity)
            break;
    }

    if (opts.polish && 1.0 - best.fidelity > opts.targetInfidelity) {
        ObjectiveFn obj = [&](const std::vector<double> &p) {
            ++evals;
            return 1.0 - ansatzFidelity(target, basis, k, p, nullptr);
        };
        double val = 0;
        auto polished = nelderMead(obj, best.params, 0.05, 2000, &val);
        if (1.0 - val > best.fidelity) {
            best.fidelity = 1.0 - val;
            best.params = polished;
        }
    }

    best.evaluations = evals;
    return best;
}

std::vector<double>
nelderMead(const ObjectiveFn &f, std::vector<double> start, double step,
           int max_evals, double *best_value)
{
    const size_t n = start.size();
    MIRAGE_ASSERT(n >= 1, "empty start point");

    struct Point
    {
        std::vector<double> x;
        double v;
    };
    std::vector<Point> simplex;
    simplex.reserve(n + 1);

    int evals = 0;
    auto eval = [&](const std::vector<double> &x) {
        ++evals;
        return f(x);
    };

    simplex.push_back({start, eval(start)});
    for (size_t i = 0; i < n; ++i) {
        auto x = start;
        x[i] += step;
        simplex.push_back({x, eval(x)});
    }

    const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
    while (evals < max_evals) {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Point &a, const Point &b) { return a.v < b.v; });
        if (simplex.back().v - simplex.front().v < 1e-14)
            break;

        // Centroid of all but worst.
        std::vector<double> c(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j)
                c[j] += simplex[i].x[j];
        }
        for (auto &x : c)
            x /= double(n);

        auto &worst = simplex.back();
        std::vector<double> xr(n);
        for (size_t j = 0; j < n; ++j)
            xr[j] = c[j] + alpha * (c[j] - worst.x[j]);
        double vr = eval(xr);

        if (vr < simplex.front().v) {
            // Expand.
            std::vector<double> xe(n);
            for (size_t j = 0; j < n; ++j)
                xe[j] = c[j] + gamma * (xr[j] - c[j]);
            double ve = eval(xe);
            worst = (ve < vr) ? Point{xe, ve} : Point{xr, vr};
        } else if (vr < simplex[n - 1].v) {
            worst = {xr, vr};
        } else {
            // Contract.
            std::vector<double> xc(n);
            for (size_t j = 0; j < n; ++j)
                xc[j] = c[j] + rho * (worst.x[j] - c[j]);
            double vc = eval(xc);
            if (vc < worst.v) {
                worst = {xc, vc};
            } else {
                // Shrink toward best.
                for (size_t i = 1; i <= n; ++i) {
                    for (size_t j = 0; j < n; ++j)
                        simplex[i].x[j] = simplex[0].x[j] +
                                          sigma * (simplex[i].x[j] -
                                                   simplex[0].x[j]);
                    simplex[i].v = eval(simplex[i].x);
                }
            }
        }
    }

    std::sort(simplex.begin(), simplex.end(),
              [](const Point &a, const Point &b) { return a.v < b.v; });
    if (best_value)
        *best_value = simplex.front().v;
    return simplex.front().x;
}

} // namespace mirage::decomp
