/**
 * @file
 * Session equivalence library: seeded standard-gate rules, fitted
 * decompositions cached by quantized unitary, and translateToBasis()
 * lowering to the root-iSWAP basis.
 */

#include "decomp/equivalence.hh"

#include <cmath>

#include "common/logging.hh"
#include "weyl/catalog.hh"

namespace mirage::decomp {

using circuit::Circuit;
using circuit::Gate;
using linalg::Mat4;

namespace {

uint64_t
quantizeKey(const Mat4 &m)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &entry : m.a) {
        auto mix = [&h](double v) {
            h ^= uint64_t(int64_t(std::llround(v * 1e9)));
            h *= 0x100000001b3ULL;
        };
        mix(entry.real());
        mix(entry.imag());
    }
    return h;
}

} // namespace

EquivalenceLibrary::EquivalenceLibrary(int root_degree)
    : rootDegree_(root_degree),
      basisMatrix_(weyl::gateRootISWAP(root_degree)),
      costModel_(monodromy::coverageForRootIswap(root_degree)),
      rng_(0xE91ULL ^ uint64_t(root_degree))
{
    // Pre-seed the standard rules the paper installs: CNOT, its mirror
    // CNS, SWAP, and iSWAP.
    (void)lookup(weyl::gateCX());
    (void)lookup(weyl::gateCNS());
    (void)lookup(weyl::gateSWAP());
    (void)lookup(weyl::gateISWAP());
}

const Decomposition &
EquivalenceLibrary::lookup(const Mat4 &u)
{
    uint64_t key = quantizeKey(u);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    // The cost model gives the exact pulse count; fit the ansatz at that
    // depth (with one extra-depth fallback guarding optimizer misses).
    weyl::Coord coords = weyl::weylCoordinates(u);
    int k = costModel_.kFor(coords);
    FitOptions opts;
    opts.restarts = 4;
    opts.adamIterations = 350;
    opts.targetInfidelity = 1e-11;
    Decomposition d = decomposeWithK(u, basisMatrix_, k, rng_, opts);
    if (1.0 - d.fidelity > 1e-7) {
        Decomposition retry =
            decomposeWithK(u, basisMatrix_, k + 1, rng_, opts);
        if (retry.fidelity > d.fidelity)
            d = retry;
    }
    return cache_.emplace(key, std::move(d)).first->second;
}

Circuit
EquivalenceLibrary::translate(const Circuit &input, TranslateStats *stats)
{
    Circuit out(input.numQubits(), input.name() + "_basis");
    TranslateStats local;
    for (const auto &g : input.gates()) {
        if (g.isBarrier() || g.isOneQubit()) {
            out.append(g);
            continue;
        }
        MIRAGE_ASSERT(g.isTwoQubit(),
                      "translate requires <= 2Q gates (unroll first)");
        size_t before = cache_.size();
        const Decomposition &d = lookup(g.matrix4());
        if (cache_.size() == before)
            ++local.cacheHits;
        appendDecomposition(out, d, rootDegree_, g.qubits[0], g.qubits[1]);
        ++local.blocksTranslated;
        local.worstInfidelity =
            std::max(local.worstInfidelity, 1.0 - d.fidelity);
        local.totalPulses += d.k;
    }
    if (stats)
        *stats = local;
    return out;
}

} // namespace mirage::decomp
