/**
 * @file
 * Session equivalence library: seeded standard-gate rules, fitted
 * decompositions cached by quantized unitary behind a mutex (fits run
 * outside the lock from per-target deterministic seeds), chained
 * collision-verified entries, hexfloat cache persistence, and
 * translate() lowering to the root-iSWAP basis.
 */

#include "decomp/equivalence.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "decomp/ansatz.hh"
#include "weyl/catalog.hh"

namespace mirage::decomp {

using circuit::Circuit;
using circuit::Gate;
using linalg::Mat4;

namespace {

/** Cache file format version (bump on any layout change). */
constexpr int kCacheFormatVersion = 1;

/** Fit-stream domain separator for deriveSeed. */
constexpr uint64_t kFitSeedDomain = 0xE91F17ULL;

/** Accept a fit at the cost-model depth once it reaches this. */
constexpr double kAcceptInfidelity = 1e-9;
/** Escalate to k+1 only while the best k-fit is worse than this. */
constexpr double kRetryInfidelity = 1e-7;
/** Independent restart rounds at the cost-model depth k. */
constexpr int kMaxFitRounds = 3;
/** Independent restart rounds at k+1 for optimizer misses. */
constexpr int kMaxRetryRounds = 3;

/** Largest credible pulse count in a cache entry (sanity bound). */
constexpr int kMaxCachedK = 64;

EquivalenceLibrary::QuantizedMat
quantize(const Mat4 &m)
{
    EquivalenceLibrary::QuantizedMat q;
    for (size_t i = 0; i < m.a.size(); ++i) {
        q[2 * i] = int64_t(std::llround(m.a[i].real() * 1e9));
        q[2 * i + 1] = int64_t(std::llround(m.a[i].imag() * 1e9));
    }
    return q;
}

/**
 * The representative unitary of a quantization cell. Fits target THIS
 * matrix, not the caller's: two full-precision unitaries that agree to
 * the quantization step share one cache entry, so the stored
 * decomposition must be a function of the cell alone -- independent of
 * which of them arrives first (the bit-identical sharing guarantee).
 * The representative deviates from the true unitary by < 1e-9 per
 * entry, far below the 1e-6 infidelity bar.
 */
Mat4
dequantize(const EquivalenceLibrary::QuantizedMat &q)
{
    Mat4 m;
    for (size_t i = 0; i < m.a.size(); ++i)
        m.a[i] = linalg::Complex(double(q[2 * i]) * 1e-9,
                                 double(q[2 * i + 1]) * 1e-9);
    return m;
}

uint64_t
fnvOver(const EquivalenceLibrary::QuantizedMat &q, uint64_t h)
{
    for (int64_t v : q) {
        h ^= uint64_t(v);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

EquivalenceLibrary::EquivalenceLibrary(int root_degree, bool preseed)
    : rootDegree_(root_degree),
      basisMatrix_(weyl::gateRootISWAP(root_degree)),
      costModel_(monodromy::coverageForRootIswap(root_degree))
{
    if (!preseed)
        return;
    // Pre-seed the standard rules the paper installs: CNOT, its mirror
    // CNS, SWAP, and iSWAP.
    (void)lookup(weyl::gateCX());
    (void)lookup(weyl::gateCNS());
    (void)lookup(weyl::gateSWAP());
    (void)lookup(weyl::gateISWAP());
}

uint64_t
EquivalenceLibrary::keyOf(const QuantizedMat &qm) const
{
    if (forceKeyCollisions_)
        return 0;
    return fnvOver(qm, 0xcbf29ce484222325ULL);
}

const EquivalenceLibrary::CacheEntry *
EquivalenceLibrary::findEntryLocked(uint64_t key, const QuantizedMat &qm) const
{
    auto it = cache_.find(key);
    if (it == cache_.end())
        return nullptr;
    for (const auto &entry : it->second) {
        if (entry->qmat == qm)
            return entry.get();
    }
    return nullptr;
}

Decomposition
EquivalenceLibrary::fitFor(const Mat4 &u, const QuantizedMat &qm,
                           const Deadline &deadline) const
{
    // Chaos hook: a fit that "never converges" is modelled as a throw
    // before any expensive work, so chaos runs exercise the error path
    // without paying for real optimization.
    fault::maybeThrow("fit.converge");
    // The cost model gives the exact pulse count; fit the ansatz at
    // that depth. All randomness is keyed by the quantized target, so
    // the result does not depend on which thread fits first or on any
    // previous lookup -- the precondition for the thread-count and
    // warm-cache bit-identical guarantees.
    weyl::Coord coords = weyl::weylCoordinates(u);
    int k = costModel_.kFor(coords);
    uint64_t fit_seed = fnvOver(qm, kFitSeedDomain);

    FitOptions opts;
    opts.restarts = 4;
    opts.adamIterations = 350;
    opts.targetInfidelity = 1e-11;

    // `total` charges every round's evaluations to the returned fit,
    // including discarded restarts: the counter measures work done.
    Decomposition best;
    best.fidelity = -1;
    uint64_t total = 0;
    for (int round = 0; round < kMaxFitRounds; ++round) {
        deadline.check("fit.round");
        Rng rng(deriveSeed(fit_seed, uint64_t(round)));
        Decomposition d = decomposeViaCanonical(u, basisMatrix_, k, rng, opts);
        total += d.evaluations;
        if (d.fidelity > best.fidelity)
            best = d;
        if (1.0 - best.fidelity < kAcceptInfidelity) {
            best.evaluations = total;
            return best;
        }
    }
    // Optimizer-miss guard: allow one extra pulse when the polytope
    // depth could not be reached numerically. Only hard blocks pay for
    // these extra rounds.
    for (int round = 0; round < kMaxRetryRounds; ++round) {
        if (1.0 - best.fidelity <= kRetryInfidelity)
            break;
        deadline.check("fit.retryRound");
        Rng rng(deriveSeed(fit_seed, 0x100 + uint64_t(round)));
        Decomposition retry =
            decomposeViaCanonical(u, basisMatrix_, k + 1, rng, opts);
        total += retry.evaluations;
        if (retry.fidelity > best.fidelity)
            best = retry;
    }
    best.evaluations = total;
    return best;
}

const Decomposition &
EquivalenceLibrary::lookupEntry(const Mat4 &u, bool *fitted,
                                const Deadline &deadline)
{
    QuantizedMat qm = quantize(u);
    uint64_t key = keyOf(qm);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const CacheEntry *e = findEntryLocked(key, qm)) {
            ++hits_;
            *fitted = false;
            return e->decomp;
        }
        if (cache_.count(key))
            ++collisions_; // key taken by a different quantized matrix
    }

    // Fit outside the lock, against the quantization-cell
    // representative -- deterministic per quantized target, so a
    // concurrent fit of the same unitary produces the same entry.
    Decomposition d = fitFor(dequantize(qm), qm, deadline);

    std::lock_guard<std::mutex> lock(mutex_);
    if (const CacheEntry *e = findEntryLocked(key, qm)) {
        // Another thread inserted while we fitted; its result is
        // bit-identical, keep it.
        ++hits_;
        *fitted = false;
        return e->decomp;
    }
    ++fits_;
    ++entries_;
    fitEvaluations_ += d.evaluations;
    *fitted = true;
    auto entry = std::make_unique<CacheEntry>();
    entry->qmat = qm;
    entry->decomp = std::move(d);
    auto &chain = cache_[key];
    chain.push_back(std::move(entry));
    return chain.back()->decomp;
}

const Decomposition &
EquivalenceLibrary::lookup(const Mat4 &u)
{
    bool fitted = false;
    return lookupEntry(u, &fitted);
}

Circuit
EquivalenceLibrary::translate(const Circuit &input, TranslateStats *stats,
                              const Deadline &deadline)
{
    Circuit out(input.numQubits(), input.name() + "_basis");
    TranslateStats local;
    for (const auto &g : input.gates()) {
        if (g.isBarrier() || g.isOneQubit()) {
            out.append(g);
            continue;
        }
        MIRAGE_ASSERT(g.isTwoQubit(),
                      "translate requires <= 2Q gates (unroll first)");
        deadline.check("lower.block");
        bool fitted = false;
        const Decomposition &d = lookupEntry(g.matrix4(), &fitted, deadline);
        if (fitted) {
            ++local.newFits;
            local.fitEvaluations += d.evaluations;
        } else {
            ++local.cacheHits;
        }
        appendDecomposition(out, d, rootDegree_, g.qubits[0], g.qubits[1]);
        ++local.blocksTranslated;
        double infidelity = std::max(0.0, 1.0 - d.fidelity);
        local.worstInfidelity = std::max(local.worstInfidelity, infidelity);
        local.rootInfidelitySum += std::sqrt(infidelity);
        local.totalPulses += d.k;
    }
    if (stats)
        *stats = local;
    return out;
}

size_t
EquivalenceLibrary::cacheSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

uint64_t
EquivalenceLibrary::fitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fits_;
}

uint64_t
EquivalenceLibrary::hitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
EquivalenceLibrary::collisionCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return collisions_;
}

uint64_t
EquivalenceLibrary::fitEvaluations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fitEvaluations_;
}

std::map<int, size_t>
EquivalenceLibrary::kHistogram() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<int, size_t> hist;
    for (const auto &[key, chain] : cache_)
        for (const auto &e : chain)
            ++hist[e->decomp.k];
    return hist;
}

void
EquivalenceLibrary::saveCache(std::ostream &out) const
{
    // Deterministic order: sort entries by quantized matrix so the file
    // does not depend on hash-table iteration or insertion order.
    std::vector<const CacheEntry *> entries;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries.reserve(entries_);
        for (const auto &[key, chain] : cache_)
            for (const auto &e : chain)
                entries.push_back(e.get());
    }
    std::sort(entries.begin(), entries.end(),
              [](const CacheEntry *a, const CacheEntry *b) {
                  return a->qmat < b->qmat;
              });

    out << "mirage-eqlib " << kCacheFormatVersion << " root " << rootDegree_
        << " entries " << entries.size() << "\n";
    for (const CacheEntry *e : entries) {
        out << "entry " << e->decomp.k << " "
            << serial::encodeDouble(e->decomp.fidelity) << " "
            << e->decomp.params.size() << "\n";
        for (size_t i = 0; i < e->qmat.size(); ++i)
            out << e->qmat[i] << (i + 1 < e->qmat.size() ? ' ' : '\n');
        for (size_t i = 0; i < e->decomp.params.size(); ++i)
            out << serial::encodeDouble(e->decomp.params[i])
                << (i + 1 < e->decomp.params.size() ? ' ' : '\n');
    }
    out << "end\n";
}

bool
EquivalenceLibrary::loadCache(std::istream &in, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    serial::TokenReader r(in);
    r.expect("mirage-eqlib");
    if (!r.ok())
        return fail("not a mirage-eqlib cache (bad magic)");
    int64_t version = r.i64();
    if (version != kCacheFormatVersion)
        return fail("unsupported cache format version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kCacheFormatVersion) + ")");
    r.expect("root");
    int64_t root = r.i64();
    if (!r.ok())
        return fail("malformed header (missing root degree)");
    if (root != rootDegree_)
        return fail("basis mismatch: cache is for root degree " +
                    std::to_string(root) + ", library expects " +
                    std::to_string(rootDegree_));
    r.expect("entries");
    int64_t count = r.i64();
    if (!r.ok() || count < 0)
        return fail("malformed header (bad entry count)");

    // Parse everything before touching the cache so a malformed stream
    // leaves the library unchanged. The header count is untrusted:
    // clamp the reserve (a lying count then just fails at the first
    // missing entry instead of attempting a huge allocation).
    std::vector<std::unique_ptr<CacheEntry>> loaded;
    loaded.reserve(size_t(std::min<int64_t>(count, 4096)));
    for (int64_t i = 0; i < count; ++i) {
        r.expect("entry");
        auto e = std::make_unique<CacheEntry>();
        int64_t k = r.i64();
        e->decomp.fidelity = r.f64();
        int64_t nparams = r.i64();
        // Bound k before any allocation: a corrupt/crafted file must
        // fail cleanly, not via a multi-gigabyte resize or int
        // overflow in ansatzParamCount.
        if (!r.ok() || k < 0 || k > kMaxCachedK ||
            nparams != ansatzParamCount(int(k)))
            return fail("malformed entry " + std::to_string(i) +
                        " (bad k or parameter count)");
        e->decomp.k = int(k);
        for (auto &q : e->qmat)
            q = r.i64();
        e->decomp.params.resize(size_t(nparams));
        for (auto &p : e->decomp.params)
            p = r.f64();
        if (!r.ok())
            return fail("truncated or corrupt entry " + std::to_string(i) +
                        " of " + std::to_string(count));
        loaded.push_back(std::move(e));
    }
    r.expect("end");
    if (!r.ok())
        return fail("missing end marker (truncated file)");

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &e : loaded) {
        uint64_t key = keyOf(e->qmat);
        if (findEntryLocked(key, e->qmat))
            continue; // already fitted locally (identical by construction)
        ++entries_;
        cache_[key].push_back(std::move(e));
    }
    return true;
}

bool
EquivalenceLibrary::saveCacheFile(const std::string &path) const
{
    if (fault::shouldFail("cache.save"))
        return false;
    // Serialize in memory, then publish with temp + fsync + rename: a
    // kill at any instant leaves the old file or the new one, never a
    // torn prefix (pinned by the chaos suite's kill-mid-save test).
    std::ostringstream out;
    saveCache(out);
    if (!out)
        return false;
    return writeFileAtomic(path, out.str());
}

bool
EquivalenceLibrary::loadCacheFile(const std::string &path)
{
    return loadCacheFileDetailed(path).status == CacheLoadStatus::Ok;
}

EquivalenceLibrary::CacheLoadResult
EquivalenceLibrary::loadCacheFileDetailed(const std::string &path)
{
    CacheLoadResult result;
    std::ifstream in(path);
    if (!in) {
        result.status = CacheLoadStatus::Unreadable;
        result.message = "cannot open '" + path + "' for reading";
        return result;
    }
    // Chaos hook: a readable-but-corrupt cache, reported exactly like a
    // real parse failure so callers exercise their degrade paths.
    if (fault::shouldFail("catalog.load")) {
        result.status = CacheLoadStatus::Malformed;
        result.message = "'" + path + "': injected fault (catalog.load)";
        return result;
    }
    size_t before = cacheSize();
    std::string error;
    if (!loadCache(in, &error)) {
        result.status = CacheLoadStatus::Malformed;
        result.message = "'" + path + "': " + error;
        return result;
    }
    result.entriesLoaded = cacheSize() - before;
    return result;
}

} // namespace mirage::decomp
