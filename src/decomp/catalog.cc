/**
 * @file
 * Catalog path resolution (see catalog.hh for the contract).
 */

#include "decomp/catalog.hh"

#include <cstdlib>
#include <filesystem>

namespace mirage::decomp {

std::string
resolveCatalogPath(const std::string &knob)
{
    if (knob == kCatalogDisabled)
        return "";
    if (!knob.empty())
        return knob;
    if (const char *env = std::getenv("MIRAGE_FIT_CATALOG")) {
        if (std::string(env) == kCatalogDisabled)
            return "";
        if (env[0] != '\0')
            return env;
    }
    std::error_code ec;
    if (std::filesystem::exists(kCatalogFileName, ec))
        return kCatalogFileName;
    return "";
}

} // namespace mirage::decomp
