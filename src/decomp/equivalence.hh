/**
 * @file
 * Session equivalence library and basis translation (paper Section V).
 *
 * The paper adds CNOT and SWAP -> sqrt(iSWAP) rules to Qiskit's session
 * equivalence library for final circuit output. Here the library caches
 * fitted decompositions keyed by quantized unitary, seeded with the
 * standard gates (CNOT, CNS, SWAP, iSWAP), and translate() lowers a
 * routed circuit -- including mirrored Unitary2Q blocks -- into
 * RootISWAP pulses plus single-qubit unitaries.
 *
 * One library instance is safe to share across threads and across all
 * circuits of a transpileMany batch: the cache is mutex-guarded, fits
 * run outside the lock, and every fit targets the quantization-cell
 * representative with randomness from a counter-based stream keyed by
 * the quantized target, so the cached decomposition is a pure function
 * of the quantized unitary -- identical no matter which thread fits it
 * first or in what order requests arrive. Cache entries store the quantized matrix alongside
 * the fit and verify it on every hit, so a 64-bit key collision falls
 * back to a fresh chained fit instead of silently returning the wrong
 * decomposition. saveCache/loadCache persist the fitted entries with
 * exact (hexfloat) parameters, so a warm-started process reproduces
 * bit-identical output with zero new fits.
 */

#ifndef MIRAGE_DECOMP_EQUIVALENCE_HH
#define MIRAGE_DECOMP_EQUIVALENCE_HH

#include <array>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hh"
#include "common/deadline.hh"
#include "decomp/numerical.hh"
#include "monodromy/cost_model.hh"

namespace mirage::decomp {

/** Statistics from one translation run. */
struct TranslateStats
{
    int blocksTranslated = 0;
    int cacheHits = 0;
    int newFits = 0;            ///< blocks that required a numerical fit
    /**
     * Objective evaluations spent on the fits behind newFits. Exactly 0
     * when every block was answered from a warm cache -- the number the
     * cold-start regression test and bench-lowering gate pin.
     */
    uint64_t fitEvaluations = 0;
    double worstInfidelity = 0; ///< max 1 - fidelity over all blocks
    /**
     * Sum of sqrt(1 - fidelity) over all blocks: an upper bound (up to
     * a small constant) on the operator-norm error of the lowered
     * circuit, used by the test oracle to budget its tolerance.
     */
    double rootInfidelitySum = 0;
    double totalPulses = 0;     ///< emitted RootISWAP count
};

/**
 * Cached decomposition database for one basis gate.
 */
class EquivalenceLibrary
{
  public:
    /** A 4x4 unitary quantized entrywise to 1e-9 (re/im interleaved). */
    using QuantizedMat = std::array<int64_t, 32>;

    /**
     * Build for the n-th root of iSWAP. When `preseed` is true the
     * standard rules the paper installs (CNOT, CNS, SWAP, iSWAP) are
     * fitted up front; pass false when the cache will be warm-started
     * via loadCache.
     */
    explicit EquivalenceLibrary(int root_degree, bool preseed = true);

    int rootDegree() const { return rootDegree_; }

    /**
     * Decomposition of an arbitrary 2Q unitary into k basis pulses with
     * k taken from the monodromy cost model (cached by quantized
     * unitary; thread-safe). The reference stays valid for the life of
     * the library -- entries are never evicted.
     */
    const Decomposition &lookup(const linalg::Mat4 &u);

    /**
     * Lower every 2Q gate of a circuit into RootISWAP + Unitary1Q gates.
     * One-qubit gates pass through unchanged. Thread-safe; concurrent
     * callers share the cache. An active `deadline` is checked at every
     * block boundary and between fit rounds (throws DeadlineError); an
     * abandoned translation leaves the shared cache consistent -- any
     * entries fitted before the cutoff stay valid.
     */
    circuit::Circuit translate(const circuit::Circuit &input,
                               TranslateStats *stats = nullptr,
                               const Deadline &deadline = {});

    // --- cache persistence -------------------------------------------------
    // Fitting dominates translation cost, so fitted entries can be
    // saved and re-loaded across processes. The format is a versioned
    // text stream with hexfloat parameters: a reloaded library produces
    // bit-identical circuits and performs zero new fits on inputs the
    // saved library had seen.

    /** Write every cached entry (deterministic order). */
    void saveCache(std::ostream &out) const;
    /**
     * Merge a saved cache into this library. Returns false (library
     * unchanged) on version/basis mismatch or a malformed stream; when
     * `error` is non-null it receives a one-line diagnostic saying what
     * was wrong (bad magic, version/root mismatch, truncated entry...).
     */
    bool loadCache(std::istream &in, std::string *error = nullptr);
    /** saveCache to a file; returns false if the file cannot be written. */
    bool saveCacheFile(const std::string &path) const;
    /** loadCache from a file; returns false if unreadable or malformed. */
    bool loadCacheFile(const std::string &path);

    /**
     * Why a cache file failed to load. `Unreadable` (missing file,
     * permissions) and `Malformed` (parse/version failure) are distinct
     * outcomes: a deployment can ignore the former (cold start) but
     * should surface the latter (a corrupt or stale artifact).
     */
    enum class CacheLoadStatus
    {
        Ok,
        Unreadable,
        Malformed,
    };

    /** Result of loadCacheFileDetailed. */
    struct CacheLoadResult
    {
        CacheLoadStatus status = CacheLoadStatus::Ok;
        std::string message;   ///< human-readable diagnostic when not Ok
        size_t entriesLoaded = 0; ///< entries merged on success
    };

    /**
     * loadCacheFile with the unreadable/malformed outcomes split and a
     * diagnostic message. The bool overload keeps its old contract.
     */
    CacheLoadResult loadCacheFileDetailed(const std::string &path);

    // --- introspection -----------------------------------------------------

    /** Cached decompositions. */
    size_t cacheSize() const;
    /** Numerical fits performed since construction (includes preseed). */
    uint64_t fitCount() const;
    /** Lookups answered from the cache. */
    uint64_t hitCount() const;
    /**
     * Total objective evaluations spent by fits since construction
     * (includes preseed; excludes entries merged via loadCache, which
     * cost no evaluations).
     */
    uint64_t fitEvaluations() const;
    /** Cached-entry count per pulse count k (for `mirage catalog stats`). */
    std::map<int, size_t> kHistogram() const;
    /**
     * Lookups whose 64-bit key matched an existing entry with a
     * DIFFERENT quantized matrix (a real key collision, resolved by
     * chaining instead of returning the wrong decomposition).
     */
    uint64_t collisionCount() const;

    /**
     * TEST HOOK: collapse every cache key to 0 so all entries collide,
     * forcing the quantized-matrix verification path. Not for
     * production use.
     */
    void forceKeyCollisionsForTest() { forceKeyCollisions_ = true; }

  private:
    struct CacheEntry
    {
        QuantizedMat qmat;
        Decomposition decomp;
    };

    uint64_t keyOf(const QuantizedMat &qm) const;
    const CacheEntry *findEntryLocked(uint64_t key,
                                      const QuantizedMat &qm) const;
    const Decomposition &lookupEntry(const linalg::Mat4 &u, bool *fitted,
                                     const Deadline &deadline = {});
    Decomposition fitFor(const linalg::Mat4 &u, const QuantizedMat &qm,
                         const Deadline &deadline) const;

    int rootDegree_;
    linalg::Mat4 basisMatrix_;
    monodromy::CostModel costModel_;
    bool forceKeyCollisions_ = false;

    mutable std::mutex mutex_; ///< guards cache_ and the counters below
    std::unordered_map<uint64_t, std::vector<std::unique_ptr<CacheEntry>>>
        cache_;
    size_t entries_ = 0;
    uint64_t fits_ = 0;
    uint64_t hits_ = 0;
    uint64_t collisions_ = 0;
    uint64_t fitEvaluations_ = 0;
};

} // namespace mirage::decomp

#endif // MIRAGE_DECOMP_EQUIVALENCE_HH
