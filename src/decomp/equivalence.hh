/**
 * @file
 * Session equivalence library and basis translation (paper Section V).
 *
 * The paper adds CNOT and SWAP -> sqrt(iSWAP) rules to Qiskit's session
 * equivalence library for final circuit output. Here the library caches
 * fitted decompositions keyed by quantized unitary, seeded with the
 * standard gates (CNOT, CNS, SWAP, iSWAP), and translateToBasis() lowers
 * a routed circuit -- including mirrored Unitary2Q blocks -- into
 * RootISWAP pulses plus single-qubit unitaries.
 */

#ifndef MIRAGE_DECOMP_EQUIVALENCE_HH
#define MIRAGE_DECOMP_EQUIVALENCE_HH

#include "circuit/circuit.hh"
#include "decomp/numerical.hh"
#include "monodromy/cost_model.hh"

namespace mirage::decomp {

/** Statistics from one translation run. */
struct TranslateStats
{
    int blocksTranslated = 0;
    int cacheHits = 0;
    double worstInfidelity = 0; ///< max 1 - fidelity over all blocks
    double totalPulses = 0;     ///< emitted RootISWAP count
};

/**
 * Cached decomposition database for one basis gate.
 */
class EquivalenceLibrary
{
  public:
    /** Build for the n-th root of iSWAP, pre-seeding standard gates. */
    explicit EquivalenceLibrary(int root_degree);

    int rootDegree() const { return rootDegree_; }

    /**
     * Decomposition of an arbitrary 2Q unitary into k basis pulses with
     * k taken from the monodromy cost model (cached by quantized
     * unitary).
     */
    const Decomposition &lookup(const linalg::Mat4 &u);

    /**
     * Lower every 2Q gate of a circuit into RootISWAP + Unitary1Q gates.
     * One-qubit gates pass through unchanged.
     */
    circuit::Circuit translate(const circuit::Circuit &input,
                               TranslateStats *stats = nullptr);

  private:
    int rootDegree_;
    linalg::Mat4 basisMatrix_;
    monodromy::CostModel costModel_;
    Rng rng_;
    std::unordered_map<uint64_t, Decomposition> cache_;
};

} // namespace mirage::decomp

#endif // MIRAGE_DECOMP_EQUIVALENCE_HH
