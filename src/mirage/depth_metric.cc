/**
 * @file
 * Polytope-based circuit metrics: per-gate minimal basis cost from
 * the monodromy cost model and weighted-longest-path depth estimation.
 */

#include "mirage/depth_metric.hh"

#include <algorithm>
#include <vector>

namespace mirage::mirage_pass {

CircuitMetrics
computeMetrics(const circuit::Circuit &circuit,
               const monodromy::CostModel &cost_model)
{
    CircuitMetrics m;
    std::vector<double> wire_depth(size_t(circuit.numQubits()), 0.0);

    for (const auto &g : circuit.gates()) {
        if (g.isBarrier() || g.isOneQubit())
            continue;
        double cost = cost_model.costOf(g.weylCoords());
        m.totalCost += cost;
        ++m.twoQubitGates;
        if (g.kind == circuit::GateKind::SWAP)
            ++m.swapGates;
        double start = 0;
        for (int q : g.qubits)
            start = std::max(start, wire_depth[size_t(q)]);
        for (int q : g.qubits)
            wire_depth[size_t(q)] = start + cost;
        m.depth = std::max(m.depth, start + cost);
    }
    double dur = cost_model.basisDuration();
    m.depthPulses = m.depth / dur;
    m.totalPulses = m.totalCost / dur;
    return m;
}

CircuitMetrics
measuredPulseMetrics(const circuit::Circuit &circuit, double pulse_duration)
{
    CircuitMetrics m;
    std::vector<double> wire_depth(size_t(circuit.numQubits()), 0.0);

    for (const auto &g : circuit.gates()) {
        if (g.isBarrier() || g.isOneQubit())
            continue;
        m.totalCost += pulse_duration;
        ++m.twoQubitGates;
        if (g.kind == circuit::GateKind::SWAP)
            ++m.swapGates;
        double start = 0;
        for (int q : g.qubits)
            start = std::max(start, wire_depth[size_t(q)]);
        for (int q : g.qubits)
            wire_depth[size_t(q)] = start + pulse_duration;
        m.depth = std::max(m.depth, start + pulse_duration);
    }
    m.depthPulses = m.depth / pulse_duration;
    m.totalPulses = m.totalCost / pulse_duration;
    return m;
}

} // namespace mirage::mirage_pass
