/**
 * @file
 * End-to-end transpilation pipeline (paper Section V).
 *
 * Stages: input cleaning (3Q unrolling, barrier removal), two-qubit block
 * consolidation with coordinate annotation, VF2 SWAP-free layout check,
 * SABRE or MIRAGE routing with independent trials, and polytope-based
 * metrics. The baseline configuration ("Qiskit-sqrt(iSWAP)") is SABRE
 * with SWAP-count post-selection; MIRAGE adds the mirror intermediate
 * layer (mixed aggression) and depth post-selection.
 */

#ifndef MIRAGE_MIRAGE_PIPELINE_HH
#define MIRAGE_MIRAGE_PIPELINE_HH

#include <span>
#include <vector>

#include "circuit/circuit.hh"
#include "common/deadline.hh"
#include "common/exec.hh"
#include "decomp/equivalence.hh"
#include "mirage/depth_metric.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

namespace mirage::mirage_pass {

/** Which router drives the flow. */
enum class Flow
{
    SabreBaseline,  ///< no mirrors, post-select on SWAP count
    MirageSwaps,    ///< mirrors on, post-select on SWAP count
    MirageDepth,    ///< mirrors on, post-select on estimated depth
};

/** Pipeline options. */
struct TranspileOptions
{
    /** Basis gate: the n-th root of iSWAP. */
    int rootDegree = 2;
    Flow flow = Flow::MirageDepth;
    /** Fixed aggression level; -1 = the paper's 5/45/45/5 mix. */
    int fixedAggression = -1;
    int layoutTrials = 4;
    int forwardBackwardPasses = 2;
    int swapTrials = 4;
    bool tryVf2 = true;
    uint64_t seed = 20240229;
    /**
     * Worker threads for the routing-trial grid: 1 = serial (default),
     * 0 = hardware concurrency, N = exactly N. The transpiled circuit is
     * bit-identical for every setting (see router::TrialOptions).
     */
    int threads = 1;
    /**
     * Run basis translation as a final stage: lower the routed circuit
     * to RootISWAP + 1Q gates (decomp::EquivalenceLibrary::translate)
     * and report MEASURED pulse metrics next to the polytope estimates.
     */
    bool lowerToBasis = false;
    /**
     * Optional externally owned equivalence library (must match
     * rootDegree). Share one instance across calls to reuse fitted
     * decompositions -- fitting dominates lowering cost, and a shared
     * or warm-loaded cache never changes output (fits are pure
     * functions of the target unitary). When null and lowerToBasis is
     * set, transpile() builds a private library; transpileMany() builds
     * one shared by the whole batch.
     */
    decomp::EquivalenceLibrary *equivalenceLibrary = nullptr;
    /**
     * Optional externally owned trial-grid thread pool (overrides
     * `threads`). Long-lived callers -- the serve engine above all --
     * keep one warm pool across many transpile()/transpileMany() calls
     * instead of paying spin-up per request. Like `threads`, the pool
     * never changes output, only throughput.
     */
    exec::ThreadPool *pool = nullptr;
    /**
     * Cooperative per-request deadline. Checked at stage boundaries, at
     * every routing stall step, and at every lowering block/fit round;
     * expiry aborts the pipeline with DeadlineError. Never changes the
     * content of a completed result (it feeds no randomness), so serve
     * excludes it from the result-cache key.
     */
    Deadline deadline;
};

/** Pipeline result. */
struct TranspileResult
{
    circuit::Circuit routed;
    layout::Layout initial;
    layout::Layout final;
    CircuitMetrics metrics;
    int swapsAdded = 0;
    int mirrorsAccepted = 0;
    int mirrorCandidates = 0;
    bool usedVf2 = false;
    /**
     * Routing-phase wall time (the routeWithTrials call; zero on the
     * VF2 short-circuit path) and the deterministic hot-path work
     * counters summed over the whole trial grid. The counters are
     * machine- and thread-count-invariant, which is what the perf
     * trajectory (BENCH_fig13.json) and the CI bench-smoke gate track.
     */
    double routingMs = 0;
    router::RoutingCounters routingCounters;

    /** True when TranspileOptions::lowerToBasis ran (fields below set). */
    bool loweredToBasis = false;
    /** The routed circuit lowered to RootISWAP + 1Q gates. */
    circuit::Circuit lowered;
    /** Translation statistics (fits, cache hits, worst infidelity). */
    decomp::TranslateStats translateStats;
    /**
     * Metrics measured on `lowered` (one pulse per RootISWAP) -- the
     * measured counterpart of the polytope estimate in `metrics`.
     */
    CircuitMetrics loweredMetrics;

    double
    mirrorAcceptRate() const
    {
        return mirrorCandidates ? double(mirrorsAccepted) / mirrorCandidates
                                : 0.0;
    }
};

/** Unroll CCX/CSWAP into 1Q + CX gates (standard decompositions). */
circuit::Circuit unrollThreeQubit(const circuit::Circuit &input);

/** Full pipeline. */
TranspileResult transpile(const circuit::Circuit &input,
                          const topology::CouplingMap &coupling,
                          const TranspileOptions &opts = {});

/**
 * Batch transpilation: route many circuits against one device, sharing
 * a single thread pool across all of their trial grids (the serving
 * shape -- one warm pool, many requests). With lowerToBasis set, one
 * equivalence library also serves the whole batch, so fitted
 * decompositions are reused across circuits. Each circuit is processed
 * with the same options, and its result is bit-identical to a
 * standalone transpile(circuits[i], coupling, opts) call: the batch API
 * changes throughput, never output (shared caches included -- fits are
 * pure functions of the target unitary).
 */
std::vector<TranspileResult>
transpileMany(std::span<const circuit::Circuit> circuits,
              const topology::CouplingMap &coupling,
              const TranspileOptions &opts = {});

} // namespace mirage::mirage_pass

#endif // MIRAGE_MIRAGE_PIPELINE_HH
