/**
 * @file
 * End-to-end transpilation pipeline (paper Section V).
 *
 * Stages: input cleaning (3Q unrolling, barrier removal), two-qubit block
 * consolidation with coordinate annotation, VF2 SWAP-free layout check,
 * SABRE or MIRAGE routing with independent trials, and polytope-based
 * metrics. The baseline configuration ("Qiskit-sqrt(iSWAP)") is SABRE
 * with SWAP-count post-selection; MIRAGE adds the mirror intermediate
 * layer (mixed aggression) and depth post-selection.
 */

#ifndef MIRAGE_MIRAGE_PIPELINE_HH
#define MIRAGE_MIRAGE_PIPELINE_HH

#include "circuit/circuit.hh"
#include "mirage/depth_metric.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

namespace mirage::mirage_pass {

/** Which router drives the flow. */
enum class Flow
{
    SabreBaseline,  ///< no mirrors, post-select on SWAP count
    MirageSwaps,    ///< mirrors on, post-select on SWAP count
    MirageDepth,    ///< mirrors on, post-select on estimated depth
};

/** Pipeline options. */
struct TranspileOptions
{
    /** Basis gate: the n-th root of iSWAP. */
    int rootDegree = 2;
    Flow flow = Flow::MirageDepth;
    /** Fixed aggression level; -1 = the paper's 5/45/45/5 mix. */
    int fixedAggression = -1;
    int layoutTrials = 4;
    int forwardBackwardPasses = 2;
    int swapTrials = 4;
    bool tryVf2 = true;
    uint64_t seed = 20240229;
};

/** Pipeline result. */
struct TranspileResult
{
    circuit::Circuit routed;
    layout::Layout initial;
    layout::Layout final;
    CircuitMetrics metrics;
    int swapsAdded = 0;
    int mirrorsAccepted = 0;
    int mirrorCandidates = 0;
    bool usedVf2 = false;

    double
    mirrorAcceptRate() const
    {
        return mirrorCandidates ? double(mirrorsAccepted) / mirrorCandidates
                                : 0.0;
    }
};

/** Unroll CCX/CSWAP into 1Q + CX gates (standard decompositions). */
circuit::Circuit unrollThreeQubit(const circuit::Circuit &input);

/** Full pipeline. */
TranspileResult transpile(const circuit::Circuit &input,
                          const topology::CouplingMap &coupling,
                          const TranspileOptions &opts = {});

} // namespace mirage::mirage_pass

#endif // MIRAGE_MIRAGE_PIPELINE_HH
