/**
 * @file
 * Polytope-based circuit metrics (paper Section IV-B).
 *
 * Instead of decomposing to the basis gate, MIRAGE estimates circuit
 * depth from Weyl coordinates: every 2Q gate contributes its minimal
 * basis-application cost k * duration (via the monodromy cost model), 1Q
 * gates contribute zero, and the depth is the weighted longest path.
 * Total cost sums the weights over all gates.
 */

#ifndef MIRAGE_MIRAGE_DEPTH_METRIC_HH
#define MIRAGE_MIRAGE_DEPTH_METRIC_HH

#include "circuit/circuit.hh"
#include "monodromy/cost_model.hh"

namespace mirage::mirage_pass {

/** Metrics of a (routed or logical) circuit under a basis cost model. */
struct CircuitMetrics
{
    /** Weighted critical path in pulse-duration units (iSWAP = 1.0). */
    double depth = 0;
    /** Sum of per-gate pulse costs. */
    double totalCost = 0;
    /** Critical path measured in basis-gate pulses (depth / duration). */
    double depthPulses = 0;
    /** Total pulses (totalCost / duration). */
    double totalPulses = 0;
    /** Explicit SWAP gates present in the circuit. */
    int swapGates = 0;
    /** Two-qubit gates (blocks) present. */
    int twoQubitGates = 0;
};

/** Compute metrics; uses annotated coords when present. */
CircuitMetrics computeMetrics(const circuit::Circuit &circuit,
                              const monodromy::CostModel &cost_model);

/**
 * Metrics MEASURED from an explicitly lowered circuit (RootISWAP + 1Q
 * gates, as produced by decomp::EquivalenceLibrary::translate): every
 * two-qubit gate is one basis pulse of `pulse_duration`, one-qubit
 * gates are free. On a lowered circuit totalPulses is the emitted pulse
 * count and depthPulses the pulse-critical path -- the measured
 * counterparts of the polytope estimates from computeMetrics.
 */
CircuitMetrics measuredPulseMetrics(const circuit::Circuit &circuit,
                                    double pulse_duration);

} // namespace mirage::mirage_pass

#endif // MIRAGE_MIRAGE_DEPTH_METRIC_HH
