/**
 * @file
 * Transpilation pipeline implementation: 3Q unrolling, block
 * consolidation, VF2 short-circuit, routing trials with post-selection,
 * and metric computation for the SABRE baseline and MIRAGE flows.
 */

#include "mirage/pipeline.hh"

#include <chrono>
#include <optional>

#include "circuit/consolidate.hh"
#include "common/logging.hh"
#include "layout/vf2.hh"

namespace mirage::mirage_pass {

using circuit::Circuit;
using circuit::GateKind;

circuit::Circuit
unrollThreeQubit(const Circuit &input)
{
    Circuit out(input.numQubits(), input.name());
    for (const auto &g : input.gates()) {
        if (g.kind == GateKind::CCX) {
            int a = g.qubits[0], b = g.qubits[1], c = g.qubits[2];
            // Standard 6-CNOT Toffoli.
            out.h(c);
            out.cx(b, c);
            out.tdg(c);
            out.cx(a, c);
            out.t(c);
            out.cx(b, c);
            out.tdg(c);
            out.cx(a, c);
            out.t(b);
            out.t(c);
            out.h(c);
            out.cx(a, b);
            out.t(a);
            out.tdg(b);
            out.cx(a, b);
        } else if (g.kind == GateKind::CSWAP) {
            int c = g.qubits[0], x = g.qubits[1], y = g.qubits[2];
            // Fredkin = CX(y,x) Toffoli(c,x,y) CX(y,x).
            out.cx(y, x);
            Circuit tof(input.numQubits());
            tof.ccx(c, x, y);
            Circuit unrolled = unrollThreeQubit(tof);
            for (const auto &tg : unrolled.gates())
                out.append(tg);
            out.cx(y, x);
        } else if (g.isBarrier()) {
            continue; // input cleaning removes barriers
        } else {
            out.append(g);
        }
    }
    return out;
}

namespace {

/**
 * Final pipeline stage: lower the routed circuit to explicit basis
 * pulses and measure the pulse metrics the polytope stage estimated.
 */
void
lowerResult(TranspileResult &result, const TranspileOptions &opts,
            const monodromy::CostModel &cost_model,
            decomp::EquivalenceLibrary *library)
{
    if (!opts.lowerToBasis)
        return;
    MIRAGE_ASSERT(library != nullptr, "lowerToBasis needs a library");
    MIRAGE_ASSERT(library->rootDegree() == opts.rootDegree,
                  "equivalence library basis does not match rootDegree");
    result.lowered = library->translate(result.routed,
                                        &result.translateStats,
                                        opts.deadline);
    result.loweredMetrics =
        measuredPulseMetrics(result.lowered, cost_model.basisDuration());
    result.loweredToBasis = true;
}

/**
 * transpile() with an optional externally owned trial-grid pool and
 * equivalence library.
 */
TranspileResult
transpileImpl(const Circuit &input, const topology::CouplingMap &coupling,
              const TranspileOptions &opts, exec::ThreadPool *pool,
              decomp::EquivalenceLibrary *library)
{
    MIRAGE_ASSERT(opts.rootDegree >= 1, "bad basis root degree");
    opts.deadline.check("pipeline.start");
    const monodromy::CostModel cost_model =
        monodromy::makeRootIswapCostModel(opts.rootDegree);

    // 1. Input cleaning + consolidation.
    Circuit cleaned = unrollThreeQubit(input);
    circuit::ConsolidateOptions copts;
    Circuit consolidated = circuit::consolidateBlocks(cleaned, copts);

    TranspileResult result;

    // 2. SWAP-free check (VF2).
    if (opts.tryVf2) {
        auto vf2 = layout::findSwapFreeLayout(consolidated, coupling);
        if (vf2.has_value()) {
            // Apply the layout directly; no routing needed.
            Circuit placed(coupling.numQubits(), input.name());
            for (const auto &g : consolidated.gates()) {
                circuit::Gate phys = g;
                for (auto &q : phys.qubits)
                    q = vf2->toPhysical(q);
                placed.append(std::move(phys));
            }
            result.routed = std::move(placed);
            result.initial = *vf2;
            result.final = *vf2;
            result.usedVf2 = true;
            result.metrics = computeMetrics(result.routed, cost_model);
            lowerResult(result, opts, cost_model, library);
            return result;
        }
    }

    // 3. Routing.
    router::TrialOptions topts;
    topts.layoutTrials = opts.layoutTrials;
    topts.forwardBackwardPasses = opts.forwardBackwardPasses;
    topts.swapTrials = opts.swapTrials;
    topts.seed = opts.seed;
    topts.threads = opts.threads;
    topts.pool = pool;
    topts.pass.costModel = &cost_model;
    // Every trial's pass copies opts.pass (passForTrial), so the token
    // reaches the whole grid; parallelFor rethrows the first
    // DeadlineError and skips unclaimed trials.
    topts.pass.deadline = opts.deadline;

    switch (opts.flow) {
      case Flow::SabreBaseline:
        topts.postSelect = router::PostSelect::Swaps;
        topts.trialAggression = {router::Aggression::None};
        break;
      case Flow::MirageSwaps:
        topts.postSelect = router::PostSelect::Swaps;
        topts.trialAggression =
            router::mirageAggressionMix(opts.layoutTrials);
        break;
      case Flow::MirageDepth:
        topts.postSelect = router::PostSelect::Depth;
        topts.trialAggression =
            router::mirageAggressionMix(opts.layoutTrials);
        break;
    }
    if (opts.fixedAggression >= 0) {
        topts.trialAggression = {
            router::Aggression(opts.fixedAggression)};
    }

    const auto route_start = std::chrono::steady_clock::now();
    router::RouteResult routed =
        router::routeWithTrials(consolidated, coupling, topts);
    result.routingMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - route_start)
            .count();

    result.routed = std::move(routed.routed);
    result.initial = routed.initial;
    result.final = routed.final;
    result.swapsAdded = routed.swapsAdded;
    result.mirrorsAccepted = routed.mirrorsAccepted;
    result.mirrorCandidates = routed.mirrorCandidates;
    result.routingCounters = routed.counters;
    result.metrics = computeMetrics(result.routed, cost_model);
    lowerResult(result, opts, cost_model, library);
    return result;
}

} // namespace

TranspileResult
transpile(const Circuit &input, const topology::CouplingMap &coupling,
          const TranspileOptions &opts)
{
    std::optional<decomp::EquivalenceLibrary> local_lib;
    decomp::EquivalenceLibrary *lib = opts.equivalenceLibrary;
    if (opts.lowerToBasis && !lib)
        lib = &local_lib.emplace(opts.rootDegree);
    return transpileImpl(input, coupling, opts, opts.pool, lib);
}

std::vector<TranspileResult>
transpileMany(std::span<const Circuit> circuits,
              const topology::CouplingMap &coupling,
              const TranspileOptions &opts)
{
    // One pool outlives the whole batch; every circuit's trial grid
    // fans out on it. Circuits are processed in order -- each result is
    // identical to a standalone transpile() because all randomness is
    // keyed by (opts.seed, trial), never by batch position.
    std::optional<exec::ThreadPool> pool;
    if (!opts.pool && opts.threads != 1)
        pool.emplace(opts.threads);

    // Likewise one equivalence library serves every circuit: cached
    // fits are pure functions of the target unitary, so sharing them
    // across the batch changes throughput, never output.
    std::optional<decomp::EquivalenceLibrary> local_lib;
    decomp::EquivalenceLibrary *lib = opts.equivalenceLibrary;
    if (opts.lowerToBasis && !lib)
        lib = &local_lib.emplace(opts.rootDegree);

    std::vector<TranspileResult> results;
    results.reserve(circuits.size());
    exec::ThreadPool *shared = opts.pool ? opts.pool
                                         : (pool ? &*pool : nullptr);
    for (const Circuit &c : circuits)
        results.push_back(transpileImpl(c, coupling, opts, shared, lib));
    return results;
}

} // namespace mirage::mirage_pass
