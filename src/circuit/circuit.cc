/**
 * @file
 * Circuit container implementation: gate list management, builder
 * helpers for the common gate set, and structural metrics (depth,
 * two-qubit counts).
 */

#include "circuit/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mirage::circuit {

void
Circuit::append(Gate g)
{
    for (int q : g.qubits) {
        MIRAGE_ASSERT(q >= 0 && q < numQubits_,
                      "gate %s operand %d out of range (n=%d)",
                      g.name().c_str(), q, numQubits_);
    }
    if (g.numQubits() >= 2) {
        for (size_t i = 0; i < g.qubits.size(); ++i)
            for (size_t j = i + 1; j < g.qubits.size(); ++j)
                MIRAGE_ASSERT(g.qubits[i] != g.qubits[j],
                              "repeated operand in %s", g.name().c_str());
    }
    gates_.push_back(std::move(g));
}

int
Circuit::twoQubitGateCount() const
{
    int n = 0;
    for (const auto &g : gates_) {
        if (!g.isBarrier() && g.numQubits() >= 2)
            ++n;
    }
    return n;
}

int
Circuit::gateCount() const
{
    int n = 0;
    for (const auto &g : gates_) {
        if (!g.isBarrier())
            ++n;
    }
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> level(size_t(numQubits_), 0);
    int depth = 0;
    for (const auto &g : gates_) {
        if (g.isBarrier())
            continue;
        int start = 0;
        for (int q : g.qubits)
            start = std::max(start, level[size_t(q)]);
        for (int q : g.qubits)
            level[size_t(q)] = start + 1;
        depth = std::max(depth, start + 1);
    }
    return depth;
}

int
Circuit::countKind(GateKind kind) const
{
    int n = 0;
    for (const auto &g : gates_) {
        if (g.kind == kind)
            ++n;
    }
    return n;
}

Circuit
Circuit::reversed() const
{
    Circuit r(numQubits_, name_ + "_rev");
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
        r.append(*it);
    return r;
}

std::string
Circuit::toString() const
{
    std::string out = name_ + " (" + std::to_string(numQubits_) + " qubits, " +
                      std::to_string(gates_.size()) + " gates)\n";
    for (const auto &g : gates_) {
        out += "  " + g.name();
        for (int q : g.qubits)
            out += " q" + std::to_string(q);
        if (!g.params.empty()) {
            out += " (";
            for (size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    out += ", ";
                out += std::to_string(g.params[i]);
            }
            out += ")";
        }
        out += "\n";
    }
    return out;
}

bool
Circuit::bitIdentical(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        if (ga.kind != gb.kind || ga.qubits != gb.qubits ||
            ga.params != gb.params || ga.mirrored != gb.mirrored)
            return false;
        if (ga.mat2.has_value() != gb.mat2.has_value() ||
            (ga.mat2.has_value() && ga.mat2->a != gb.mat2->a))
            return false;
        if (ga.mat4.has_value() != gb.mat4.has_value() ||
            (ga.mat4.has_value() && ga.mat4->a != gb.mat4->a))
            return false;
        if (ga.coords.has_value() != gb.coords.has_value())
            return false;
        if (ga.coords.has_value() &&
            (ga.coords->a != gb.coords->a || ga.coords->b != gb.coords->b ||
             ga.coords->c != gb.coords->c))
            return false;
    }
    return true;
}

} // namespace mirage::circuit
