/**
 * @file
 * Sparse statevector simulator.
 *
 * Stores only the nonzero amplitudes in a hash map keyed by basis index,
 * so cost is linear in gate count and exponential only in the number of
 * qubits the circuit actually entangles: a k-qubit logical circuit routed
 * onto a 57-wire device touches ~2^k amplitudes, not 2^57. This is what
 * lets the bitstring oracle verify routed+lowered circuits on devices far
 * past the dense StateVector's 26-qubit ceiling.
 *
 * Same index conventions as sim.hh: qubit q is bit q of the basis index
 * (little-endian), and a two-qubit matrix treats its FIRST operand as the
 * most significant bit of the 2-bit local index.
 *
 * Not a stabilizer simulator: arbitrary (non-Clifford) gates are fine;
 * only the reachable support costs memory. Amplitudes below the prune
 * threshold are dropped after each gate so numerically-lowered circuits
 * (fit error ~1e-8 per block) cannot grow the support without bound.
 */

#ifndef MIRAGE_CIRCUIT_SIM_SPARSE_HH
#define MIRAGE_CIRCUIT_SIM_SPARSE_HH

#include <complex>
#include <cstdint>
#include <unordered_map>

#include "circuit/circuit.hh"

namespace mirage::circuit {

using linalg::Complex;

/** A sparse statevector on up to 62 qubits, initialized to |0...0>. */
class SparseState
{
  public:
    explicit SparseState(int num_qubits);

    int numQubits() const { return numQubits_; }
    /** Number of stored (nonzero) amplitudes. */
    size_t support() const { return amps_.size(); }

    /** Amplitude of one basis state (zero when not stored). */
    Complex amplitude(uint64_t index) const;
    /** |amplitude(index)|^2. */
    double probability(uint64_t index) const;
    double norm() const;

    /**
     * Amplitudes below this magnitude are dropped after every gate
     * (default 1e-12: far below any signal, far above the float noise
     * a lowered circuit's ~1e-8 fit errors leave behind).
     */
    void setPruneThreshold(double eps) { pruneEps_ = eps; }

    void applyMat2(int q, const Mat2 &m);
    void applyMat4(int q_hi, int q_lo, const Mat4 &m);
    void applyGate(const Gate &g);
    void applyCircuit(const Circuit &c);

    const std::unordered_map<uint64_t, Complex> &amplitudes() const
    {
        return amps_;
    }

  private:
    int numQubits_;
    double pruneEps_ = 1e-12;
    std::unordered_map<uint64_t, Complex> amps_;
};

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_SIM_SPARSE_HH
