/**
 * @file
 * Circuit container: an ordered list of gates on n qubits, with builder
 * helpers for the common gate set and simple structural metrics.
 */

#ifndef MIRAGE_CIRCUIT_CIRCUIT_HH
#define MIRAGE_CIRCUIT_CIRCUIT_HH

#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace mirage::circuit {

/** An ordered quantum circuit. */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits, std::string name = "circuit")
        : numQubits_(num_qubits), name_(std::move(name))
    {}

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &gates() { return gates_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append any gate (operand bounds are checked). */
    void append(Gate g);

    // Builder helpers ------------------------------------------------------
    void h(int q) { append(makeGate1(GateKind::H, q)); }
    void x(int q) { append(makeGate1(GateKind::X, q)); }
    void y(int q) { append(makeGate1(GateKind::Y, q)); }
    void z(int q) { append(makeGate1(GateKind::Z, q)); }
    void s(int q) { append(makeGate1(GateKind::S, q)); }
    void sdg(int q) { append(makeGate1(GateKind::Sdg, q)); }
    void t(int q) { append(makeGate1(GateKind::T, q)); }
    void tdg(int q) { append(makeGate1(GateKind::Tdg, q)); }
    void sx(int q) { append(makeGate1(GateKind::SX, q)); }
    void rx(double th, int q) { append(makeGate1(GateKind::RX, q, {th})); }
    void ry(double th, int q) { append(makeGate1(GateKind::RY, q, {th})); }
    void rz(double th, int q) { append(makeGate1(GateKind::RZ, q, {th})); }
    void u3(double th, double ph, double la, int q)
    {
        append(makeGate1(GateKind::U3, q, {th, ph, la}));
    }
    void cx(int c, int t) { append(makeGate2(GateKind::CX, c, t)); }
    void cz(int a, int b) { append(makeGate2(GateKind::CZ, a, b)); }
    void cp(double phi, int a, int b)
    {
        append(makeGate2(GateKind::CP, a, b, {phi}));
    }
    void crx(double th, int c, int t)
    {
        append(makeGate2(GateKind::CRX, c, t, {th}));
    }
    void cry(double th, int c, int t)
    {
        append(makeGate2(GateKind::CRY, c, t, {th}));
    }
    void crz(double th, int c, int t)
    {
        append(makeGate2(GateKind::CRZ, c, t, {th}));
    }
    void swap(int a, int b) { append(makeGate2(GateKind::SWAP, a, b)); }
    void iswap(int a, int b) { append(makeGate2(GateKind::ISWAP, a, b)); }
    void riswap(int n, int a, int b)
    {
        append(makeGate2(GateKind::RootISWAP, a, b, {double(n)}));
    }
    void rxx(double th, int a, int b)
    {
        append(makeGate2(GateKind::RXX, a, b, {th}));
    }
    void rzz(double th, int a, int b)
    {
        append(makeGate2(GateKind::RZZ, a, b, {th}));
    }
    void unitary(int a, int b, const Mat4 &m)
    {
        append(makeUnitary2(a, b, m));
    }
    void ccx(int c0, int c1, int t)
    {
        Gate g;
        g.kind = GateKind::CCX;
        g.qubits = {c0, c1, t};
        append(g);
    }
    void cswap(int c, int a, int b)
    {
        Gate g;
        g.kind = GateKind::CSWAP;
        g.qubits = {c, a, b};
        append(g);
    }
    void barrier() {}

    // Metrics --------------------------------------------------------------

    /** Number of gates acting on >= 2 qubits. */
    int twoQubitGateCount() const;
    /** Number of non-barrier gates. */
    int gateCount() const;
    /** Unit-weight circuit depth (each gate = 1 layer). */
    int depth() const;
    /** Count of gates of a specific kind. */
    int countKind(GateKind kind) const;

    /**
     * Circuit with all gates reversed and each replaced by its inverse is
     * not needed; routing's backward pass only needs the mirror-image gate
     * ORDER (SABRE routes the reversed DAG). This returns the gate list in
     * reverse order.
     */
    Circuit reversed() const;

    /** Human-readable one-line-per-gate dump. */
    std::string toString() const;

    /**
     * Bit-exact structural equality: same wire count and gate list,
     * with every numeric field (params, matrices, coords) compared
     * with == rather than a tolerance. This is the comparison behind
     * the thread-count-determinism guarantee of the parallel trial
     * engine; tests and benches share it so the field list cannot
     * silently drift.
     */
    static bool bitIdentical(const Circuit &a, const Circuit &b);

  private:
    int numQubits_ = 0;
    std::string name_ = "circuit";
    std::vector<Gate> gates_;
};

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_CIRCUIT_HH
