/**
 * @file
 * Statevector simulator: gate application kernels, qubit permutation,
 * and inner products used to prove functional equivalence of routed
 * circuits in the tests.
 */

#include "circuit/sim.hh"

#include <cmath>

#include "common/logging.hh"

namespace mirage::circuit {

StateVector::StateVector(int num_qubits)
    : numQubits_(num_qubits), amps_(size_t(1) << num_qubits)
{
    MIRAGE_ASSERT(num_qubits >= 1 && num_qubits <= 26,
                  "statevector size out of range: %d", num_qubits);
    amps_[0] = Complex(1);
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Complex(0));
    amps_[0] = Complex(1);
}

void
StateVector::randomize(Rng &rng)
{
    double total = 0;
    for (auto &a : amps_) {
        a = Complex(rng.normal(), rng.normal());
        total += std::norm(a);
    }
    double scale = 1.0 / std::sqrt(total);
    for (auto &a : amps_)
        a *= scale;
}

void
StateVector::applyMat2(int q, const Mat2 &m)
{
    const size_t bit = size_t(1) << q;
    const size_t n = amps_.size();
    for (size_t i = 0; i < n; ++i) {
        if (i & bit)
            continue;
        Complex a0 = amps_[i];
        Complex a1 = amps_[i | bit];
        amps_[i] = m(0, 0) * a0 + m(0, 1) * a1;
        amps_[i | bit] = m(1, 0) * a0 + m(1, 1) * a1;
    }
}

void
StateVector::applyMat4(int q_hi, int q_lo, const Mat4 &m)
{
    MIRAGE_ASSERT(q_hi != q_lo, "two-qubit gate with equal operands");
    const size_t bh = size_t(1) << q_hi;
    const size_t bl = size_t(1) << q_lo;
    const size_t n = amps_.size();
    for (size_t i = 0; i < n; ++i) {
        if (i & (bh | bl))
            continue;
        const size_t i00 = i;
        const size_t i01 = i | bl;
        const size_t i10 = i | bh;
        const size_t i11 = i | bh | bl;
        Complex a00 = amps_[i00], a01 = amps_[i01];
        Complex a10 = amps_[i10], a11 = amps_[i11];
        amps_[i00] = m(0, 0) * a00 + m(0, 1) * a01 + m(0, 2) * a10 +
                     m(0, 3) * a11;
        amps_[i01] = m(1, 0) * a00 + m(1, 1) * a01 + m(1, 2) * a10 +
                     m(1, 3) * a11;
        amps_[i10] = m(2, 0) * a00 + m(2, 1) * a01 + m(2, 2) * a10 +
                     m(2, 3) * a11;
        amps_[i11] = m(3, 0) * a00 + m(3, 1) * a01 + m(3, 2) * a10 +
                     m(3, 3) * a11;
    }
}

void
StateVector::applyGate(const Gate &g)
{
    if (g.isBarrier())
        return;
    if (g.isOneQubit()) {
        applyMat2(g.qubits[0], g.matrix2());
        return;
    }
    if (g.isTwoQubit()) {
        applyMat4(g.qubits[0], g.qubits[1], g.matrix4());
        return;
    }
    // Three-qubit gates, applied with direct bit manipulation.
    if (g.kind == GateKind::CCX) {
        const size_t c0 = size_t(1) << g.qubits[0];
        const size_t c1 = size_t(1) << g.qubits[1];
        const size_t t = size_t(1) << g.qubits[2];
        for (size_t i = 0; i < amps_.size(); ++i) {
            if ((i & c0) && (i & c1) && !(i & t))
                std::swap(amps_[i], amps_[i | t]);
        }
        return;
    }
    if (g.kind == GateKind::CSWAP) {
        const size_t c = size_t(1) << g.qubits[0];
        const size_t a = size_t(1) << g.qubits[1];
        const size_t b = size_t(1) << g.qubits[2];
        for (size_t i = 0; i < amps_.size(); ++i) {
            if ((i & c) && (i & a) && !(i & b))
                std::swap(amps_[i], amps_[(i & ~a) | b]);
        }
        return;
    }
    panic("simulator cannot apply gate %s", g.name().c_str());
}

void
StateVector::applyCircuit(const Circuit &c)
{
    MIRAGE_ASSERT(c.numQubits() <= numQubits_,
                  "circuit larger than state vector");
    for (const auto &g : c.gates())
        applyGate(g);
}

double
StateVector::norm() const
{
    double s = 0;
    for (const auto &a : amps_)
        s += std::norm(a);
    return std::sqrt(s);
}

Complex
StateVector::inner(const StateVector &o) const
{
    MIRAGE_ASSERT(amps_.size() == o.amps_.size(), "dimension mismatch");
    Complex s(0);
    for (size_t i = 0; i < amps_.size(); ++i)
        s += std::conj(amps_[i]) * o.amps_[i];
    return s;
}

double
StateVector::overlapWithPermutation(const StateVector &o,
                                    const std::vector<int> &perm) const
{
    MIRAGE_ASSERT(int(perm.size()) == numQubits_, "bad permutation size");
    Complex s(0);
    const size_t n = amps_.size();
    for (size_t i = 0; i < n; ++i) {
        // Build the relabeled index: bit q of i goes to bit perm[q].
        size_t j = 0;
        for (int q = 0; q < numQubits_; ++q) {
            if (i & (size_t(1) << q))
                j |= size_t(1) << perm[size_t(q)];
        }
        s += std::conj(amps_[j]) * o.amps_[i];
    }
    return std::abs(s);
}

StateVector
StateVector::permuted(const std::vector<int> &perm) const
{
    MIRAGE_ASSERT(int(perm.size()) == numQubits_, "bad permutation size");
    StateVector out(numQubits_);
    const size_t n = amps_.size();
    for (size_t i = 0; i < n; ++i) {
        size_t j = 0;
        for (int q = 0; q < numQubits_; ++q) {
            if (i & (size_t(1) << q))
                j |= size_t(1) << perm[size_t(q)];
        }
        out.amps_[j] = amps_[i];
    }
    return out;
}

double
circuitOverlap(const Circuit &a, const Circuit &b,
               const std::vector<int> &perm, Rng &rng)
{
    int n = std::max(a.numQubits(), b.numQubits());
    StateVector sa(n), sb(n);
    sa.randomize(rng);
    sb = sa;
    sa.applyCircuit(a);
    sb.applyCircuit(b);
    return sa.overlapWithPermutation(sb, perm);
}

} // namespace mirage::circuit
