/**
 * @file
 * Directed acyclic graph view of a circuit.
 *
 * SABRE/MIRAGE routing consumes circuits through this DAG: nodes are
 * gates, edges are wire dependencies. The router tracks per-node
 * unresolved-predecessor counts to maintain its front layer.
 */

#ifndef MIRAGE_CIRCUIT_DAG_HH
#define MIRAGE_CIRCUIT_DAG_HH

#include <vector>

#include "circuit/circuit.hh"

namespace mirage::circuit {

/** A node in the circuit DAG. */
struct DagNode
{
    Gate gate;
    int id = -1;
    std::vector<int> preds;
    std::vector<int> succs;
};

/** Dependency DAG of a circuit (barriers excluded). */
class DagCircuit
{
  public:
    explicit DagCircuit(const Circuit &circuit);

    int numQubits() const { return numQubits_; }
    const std::vector<DagNode> &nodes() const { return nodes_; }
    const DagNode &node(int id) const { return nodes_[size_t(id)]; }
    size_t size() const { return nodes_.size(); }

    /** Nodes with no predecessors. */
    const std::vector<int> &roots() const { return roots_; }

    /** Topological order (construction order is already topological). */
    std::vector<int> topologicalOrder() const;

    /**
     * Unit-weight longest path length counting only 2Q nodes (1Q nodes
     * have zero weight), i.e. the 2Q-depth of the circuit.
     */
    int twoQubitDepth() const;

  private:
    int numQubits_ = 0;
    std::vector<DagNode> nodes_;
    std::vector<int> roots_;
};

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_DAG_HH
