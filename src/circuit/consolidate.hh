/**
 * @file
 * Two-qubit block consolidation (the paper's ConsolidateBlocks rewrite).
 *
 * Maximal runs of gates confined to one qubit pair are merged into single
 * Unitary2Q blocks whose Weyl coordinates are computed once and annotated
 * on the gate. A quantized-unitary LRU cache reproduces the caching
 * optimization of Fig. 13a: identical interior unitaries (common in
 * structured circuits like QFT) hit the cache instead of re-running the
 * eigensolver.
 */

#ifndef MIRAGE_CIRCUIT_CONSOLIDATE_HH
#define MIRAGE_CIRCUIT_CONSOLIDATE_HH

#include <cstdint>

#include "circuit/circuit.hh"

namespace mirage::circuit {

/** Options controlling consolidation. */
struct ConsolidateOptions
{
    /** Annotate each block with its Weyl coordinates. */
    bool annotateCoords = true;
    /** Use the coordinate LRU cache (Fig. 13a); off = always recompute. */
    bool useCoordinateCache = true;
    /** Fold dangling 1Q gates into neighboring blocks where possible. */
    bool absorbSingleQubitGates = true;
};

/** Statistics from one consolidation run. */
struct ConsolidateStats
{
    int blocksEmitted = 0;
    int gatesAbsorbed = 0;
    uint64_t coordCacheHits = 0;
    uint64_t coordCacheMisses = 0;
};

/**
 * Merge maximal same-pair gate runs into Unitary2Q blocks. Barriers seal
 * all open blocks; 3Q gates must be unrolled beforehand.
 */
Circuit consolidateBlocks(const Circuit &input,
                          const ConsolidateOptions &opts = {},
                          ConsolidateStats *stats = nullptr);

/** Reset the process-wide coordinate cache (for benchmarking). */
void clearCoordinateCache();

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_CONSOLIDATE_HH
