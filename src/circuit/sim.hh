/**
 * @file
 * Statevector simulator.
 *
 * Used by the test suite to prove functional equivalence of transpiled
 * circuits (original vs routed-with-mirrors, up to the qubit permutation
 * the router reports). Practical up to ~22 qubits.
 *
 * Convention: qubit q is bit q of the amplitude index (little-endian), and
 * a two-qubit gate matrix treats its FIRST operand as the most significant
 * bit of the 2-bit local index, matching weyl/catalog.hh.
 */

#ifndef MIRAGE_CIRCUIT_SIM_HH
#define MIRAGE_CIRCUIT_SIM_HH

#include <complex>
#include <vector>

#include "circuit/circuit.hh"
#include "common/rng.hh"

namespace mirage::circuit {

using linalg::Complex;

/** A dense statevector on n qubits. */
class StateVector
{
  public:
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<Complex> &amplitudes() const { return amps_; }
    std::vector<Complex> &amplitudes() { return amps_; }

    /** Reset to |0...0>. */
    void reset();
    /** Haar-ish random state (normalized complex Gaussian amplitudes). */
    void randomize(Rng &rng);

    void applyMat2(int q, const Mat2 &m);
    void applyMat4(int q_hi, int q_lo, const Mat4 &m);
    void applyGate(const Gate &g);
    void applyCircuit(const Circuit &c);

    double norm() const;
    Complex inner(const StateVector &o) const;

    /**
     * |<this| P |o>| where P relabels qubits: amplitude of o indexed by
     * bits b is compared against this indexed with bit q of o moved to
     * bit perm[q]. Returns overlap magnitude in [0, 1].
     */
    double overlapWithPermutation(const StateVector &o,
                                  const std::vector<int> &perm) const;

    /**
     * Relabeled copy: qubit q of this state becomes qubit perm[q] of the
     * result (perm must be a bijection on [0, n)).
     */
    StateVector permuted(const std::vector<int> &perm) const;

  private:
    int numQubits_;
    std::vector<Complex> amps_;
};

/**
 * Full-circuit functional check: simulate `a` and `b` from a shared random
 * initial state and return the overlap magnitude after relabeling b's
 * qubit q to perm[q]. 1.0 means equivalent up to global phase.
 */
double circuitOverlap(const Circuit &a, const Circuit &b,
                      const std::vector<int> &perm, Rng &rng);

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_SIM_HH
