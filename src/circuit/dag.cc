/**
 * @file
 * DAG view of a circuit: wire-dependency edge construction and the
 * unresolved-predecessor bookkeeping the SABRE/MIRAGE front layer uses.
 */

#include "circuit/dag.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mirage::circuit {

DagCircuit::DagCircuit(const Circuit &circuit)
    : numQubits_(circuit.numQubits())
{
    std::vector<int> last_on_wire(size_t(numQubits_), -1);
    nodes_.reserve(circuit.size());

    for (const auto &g : circuit.gates()) {
        if (g.isBarrier())
            continue;
        DagNode node;
        node.gate = g;
        node.id = int(nodes_.size());
        for (int q : g.qubits) {
            int prev = last_on_wire[size_t(q)];
            if (prev >= 0) {
                // Avoid duplicate edges when both wires of a 2Q gate come
                // from the same predecessor.
                auto &p = node.preds;
                if (std::find(p.begin(), p.end(), prev) == p.end()) {
                    p.push_back(prev);
                    nodes_[size_t(prev)].succs.push_back(node.id);
                }
            }
            last_on_wire[size_t(q)] = node.id;
        }
        if (node.preds.empty())
            roots_.push_back(node.id);
        nodes_.push_back(std::move(node));
    }
}

std::vector<int>
DagCircuit::topologicalOrder() const
{
    std::vector<int> order(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i)
        order[i] = int(i);
    return order;
}

int
DagCircuit::twoQubitDepth() const
{
    std::vector<int> longest(nodes_.size(), 0);
    int best = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        int w = nodes_[i].gate.numQubits() >= 2 ? 1 : 0;
        int in = 0;
        for (int p : nodes_[i].preds)
            in = std::max(in, longest[size_t(p)]);
        longest[i] = in + w;
        best = std::max(best, longest[i]);
    }
    return best;
}

} // namespace mirage::circuit
