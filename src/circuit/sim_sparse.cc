/**
 * @file
 * Sparse statevector kernels: each gate rebuilds the amplitude map by
 * visiting every stored entry once, gathering its 2- (or 4-) element
 * group via O(1) partner lookups, and writing back only amplitudes above
 * the prune threshold.
 */

#include "circuit/sim_sparse.hh"

#include <cmath>

#include "common/logging.hh"

namespace mirage::circuit {

SparseState::SparseState(int num_qubits) : numQubits_(num_qubits)
{
    MIRAGE_ASSERT(num_qubits >= 1 && num_qubits <= 62,
                  "sparse state size out of range: %d", num_qubits);
    amps_.emplace(0, Complex(1));
}

Complex
SparseState::amplitude(uint64_t index) const
{
    auto it = amps_.find(index);
    return it == amps_.end() ? Complex(0) : it->second;
}

double
SparseState::probability(uint64_t index) const
{
    return std::norm(amplitude(index));
}

double
SparseState::norm() const
{
    double s = 0;
    for (const auto &[idx, a] : amps_)
        s += std::norm(a);
    return std::sqrt(s);
}

void
SparseState::applyMat2(int q, const Mat2 &m)
{
    const uint64_t bit = uint64_t(1) << q;
    std::unordered_map<uint64_t, Complex> next;
    next.reserve(amps_.size() * 2);
    auto emit = [this, &next](uint64_t idx, Complex a) {
        if (std::abs(a) > pruneEps_)
            next.emplace(idx, a);
    };
    for (const auto &[idx, a] : amps_) {
        if (idx & bit) {
            // Handled from the partner entry if it exists.
            if (amps_.count(idx ^ bit))
                continue;
            emit(idx ^ bit, m(0, 1) * a);
            emit(idx, m(1, 1) * a);
        } else {
            Complex a1 = amplitude(idx | bit);
            emit(idx, m(0, 0) * a + m(0, 1) * a1);
            emit(idx | bit, m(1, 0) * a + m(1, 1) * a1);
        }
    }
    amps_ = std::move(next);
}

void
SparseState::applyMat4(int q_hi, int q_lo, const Mat4 &m)
{
    MIRAGE_ASSERT(q_hi != q_lo, "two-qubit gate with equal operands");
    const uint64_t bh = uint64_t(1) << q_hi;
    const uint64_t bl = uint64_t(1) << q_lo;
    std::unordered_map<uint64_t, Complex> next;
    next.reserve(amps_.size() * 2);
    auto member = [bh, bl](uint64_t base, int r) {
        return base | (r & 2 ? bh : 0) | (r & 1 ? bl : 0);
    };
    for (const auto &[idx, a] : amps_) {
        const uint64_t base = idx & ~(bh | bl);
        // Each 4-element group is processed exactly once, from its
        // lowest stored member.
        const int local =
            int(((idx >> q_hi) & 1) << 1 | ((idx >> q_lo) & 1));
        bool lowest = true;
        for (int r = 0; r < local && lowest; ++r)
            lowest = !amps_.count(member(base, r));
        if (!lowest)
            continue;
        Complex in[4];
        for (int c = 0; c < 4; ++c)
            in[c] = amplitude(member(base, c));
        for (int r = 0; r < 4; ++r) {
            Complex out = m(r, 0) * in[0] + m(r, 1) * in[1] +
                          m(r, 2) * in[2] + m(r, 3) * in[3];
            if (std::abs(out) > pruneEps_)
                next.emplace(member(base, r), out);
        }
    }
    amps_ = std::move(next);
}

void
SparseState::applyGate(const Gate &g)
{
    if (g.isBarrier())
        return;
    if (g.isOneQubit()) {
        applyMat2(g.qubits[0], g.matrix2());
        return;
    }
    if (g.isTwoQubit()) {
        applyMat4(g.qubits[0], g.qubits[1], g.matrix4());
        return;
    }
    // Three-qubit gates are index permutations: rebuild the map with
    // remapped keys (support size is unchanged).
    if (g.kind == GateKind::CCX) {
        const uint64_t c0 = uint64_t(1) << g.qubits[0];
        const uint64_t c1 = uint64_t(1) << g.qubits[1];
        const uint64_t t = uint64_t(1) << g.qubits[2];
        std::unordered_map<uint64_t, Complex> next;
        next.reserve(amps_.size());
        for (const auto &[idx, a] : amps_)
            next.emplace((idx & c0) && (idx & c1) ? idx ^ t : idx, a);
        amps_ = std::move(next);
        return;
    }
    if (g.kind == GateKind::CSWAP) {
        const uint64_t c = uint64_t(1) << g.qubits[0];
        const uint64_t a_bit = uint64_t(1) << g.qubits[1];
        const uint64_t b_bit = uint64_t(1) << g.qubits[2];
        std::unordered_map<uint64_t, Complex> next;
        next.reserve(amps_.size());
        for (const auto &[idx, a] : amps_) {
            uint64_t out = idx;
            if ((idx & c) && bool(idx & a_bit) != bool(idx & b_bit))
                out = idx ^ a_bit ^ b_bit;
            next.emplace(out, a);
        }
        amps_ = std::move(next);
        return;
    }
    panic("sparse simulator cannot apply gate %s", g.name().c_str());
}

void
SparseState::applyCircuit(const Circuit &c)
{
    MIRAGE_ASSERT(c.numQubits() <= numQubits_,
                  "circuit larger than sparse state");
    for (const auto &g : c.gates())
        applyGate(g);
}

} // namespace mirage::circuit
