/**
 * @file
 * Gate implementation: names, operand/parameter accessors, and matrix
 * realization for standard gates and consolidated Unitary1Q/Unitary2Q
 * blocks.
 */

#include "circuit/gate.hh"

#include <cmath>

#include "common/logging.hh"
#include "weyl/catalog.hh"

namespace mirage::circuit {

using namespace mirage::weyl;

bool
Gate::isOneQubit() const
{
    return !isBarrier() && numQubits() == 1;
}

bool
Gate::isTwoQubit() const
{
    return !isBarrier() && numQubits() == 2;
}

bool
Gate::isThreeQubit() const
{
    return !isBarrier() && numQubits() == 3;
}

std::string
Gate::name() const
{
    switch (kind) {
      case GateKind::I: return "id";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::SX: return "sx";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::U3: return "u3";
      case GateKind::Unitary1Q: return "u1q";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::CP: return "cp";
      case GateKind::CRX: return "crx";
      case GateKind::CRY: return "cry";
      case GateKind::CRZ: return "crz";
      case GateKind::SWAP: return "swap";
      case GateKind::ISWAP: return "iswap";
      case GateKind::RootISWAP: return "riswap";
      case GateKind::RXX: return "rxx";
      case GateKind::RYY: return "ryy";
      case GateKind::RZZ: return "rzz";
      case GateKind::Unitary2Q: return mirrored ? "u2q*" : "u2q";
      case GateKind::CCX: return "ccx";
      case GateKind::CSWAP: return "cswap";
      case GateKind::Barrier: return "barrier";
    }
    return "?";
}

Mat2
Gate::matrix2() const
{
    MIRAGE_ASSERT(isOneQubit(), "matrix2 on non-1q gate %s", name().c_str());
    switch (kind) {
      case GateKind::I: return gateI2();
      case GateKind::X: return gateX();
      case GateKind::Y: return gateY();
      case GateKind::Z: return gateZ();
      case GateKind::H: return gateH();
      case GateKind::S: return gateS();
      case GateKind::Sdg: return gateSdg();
      case GateKind::T: return gateT();
      case GateKind::Tdg: return gateTdg();
      case GateKind::SX: return gateSX();
      case GateKind::RX: return gateRX(params.at(0));
      case GateKind::RY: return gateRY(params.at(0));
      case GateKind::RZ: return gateRZ(params.at(0));
      case GateKind::U3:
        return gateU3(params.at(0), params.at(1), params.at(2));
      case GateKind::Unitary1Q:
        MIRAGE_ASSERT(mat2.has_value(), "u1q without matrix");
        return *mat2;
      default:
        panic("matrix2 on gate kind %d", int(kind));
    }
}

Mat4
Gate::matrix4() const
{
    MIRAGE_ASSERT(isTwoQubit(), "matrix4 on non-2q gate %s", name().c_str());
    switch (kind) {
      case GateKind::CX: return gateCX();
      case GateKind::CZ: return gateCZ();
      case GateKind::CP: return gateCP(params.at(0));
      case GateKind::CRX: return gateCRX(params.at(0));
      case GateKind::CRY: return gateCRY(params.at(0));
      case GateKind::CRZ: return gateCRZ(params.at(0));
      case GateKind::SWAP: return gateSWAP();
      case GateKind::ISWAP: return gateISWAP();
      case GateKind::RootISWAP: return gateRootISWAP(int(params.at(0)));
      case GateKind::RXX: return gateRXX(params.at(0));
      case GateKind::RYY: return gateRYY(params.at(0));
      case GateKind::RZZ: return gateRZZ(params.at(0));
      case GateKind::Unitary2Q:
        MIRAGE_ASSERT(mat4.has_value(), "u2q without matrix");
        return *mat4;
      default:
        panic("matrix4 on gate kind %d", int(kind));
    }
}

Coord
Gate::weylCoords() const
{
    if (coords.has_value())
        return *coords;
    return weyl::weylCoordinates(matrix4());
}

Coord
Gate::annotateCoords()
{
    if (!coords.has_value())
        coords = weyl::weylCoordinates(matrix4());
    return *coords;
}

Gate
makeGate1(GateKind kind, int q, std::vector<double> params)
{
    Gate g;
    g.kind = kind;
    g.qubits = {q};
    g.params = std::move(params);
    return g;
}

Gate
makeGate2(GateKind kind, int a, int b, std::vector<double> params)
{
    MIRAGE_ASSERT(a != b, "two-qubit gate with repeated operand %d", a);
    Gate g;
    g.kind = kind;
    g.qubits = {a, b};
    g.params = std::move(params);
    return g;
}

Gate
makeUnitary2(int a, int b, const Mat4 &m)
{
    Gate g = makeGate2(GateKind::Unitary2Q, a, b);
    g.mat4 = m;
    return g;
}

Gate
makeUnitary1(int q, const Mat2 &m)
{
    Gate g = makeGate1(GateKind::Unitary1Q, q);
    g.mat2 = m;
    return g;
}

Gate
makeBarrier(std::vector<int> qubits)
{
    Gate g;
    g.kind = GateKind::Barrier;
    g.qubits = std::move(qubits);
    return g;
}

} // namespace mirage::circuit
