/**
 * @file
 * Two-qubit block consolidation: merges maximal same-pair gate runs
 * into Unitary2Q blocks, annotates Weyl coordinates, and memoizes
 * coordinates of identical interior unitaries in a quantized LRU cache.
 */

#include "circuit/consolidate.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include <mutex>

#include "common/lru_cache.hh"
#include "weyl/coordinates.hh"

namespace mirage::circuit {

namespace {

/** Quantized-matrix key for the coordinate cache. */
struct MatKey
{
    std::array<int64_t, 32> q;

    bool operator==(const MatKey &o) const { return q == o.q; }
};

struct MatKeyHash
{
    size_t
    operator()(const MatKey &k) const
    {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (int64_t v : k.q) {
            h ^= uint64_t(v);
            h *= 0x100000001b3ULL;
        }
        return size_t(h);
    }
};

MatKey
quantize(const Mat4 &m)
{
    MatKey k;
    for (int i = 0; i < 16; ++i) {
        k.q[size_t(2 * i)] = int64_t(std::llround(m.a[size_t(i)].real() * 1e9));
        k.q[size_t(2 * i + 1)] =
            int64_t(std::llround(m.a[size_t(i)].imag() * 1e9));
    }
    return k;
}

LruCache<MatKey, weyl::Coord, MatKeyHash> &
coordCache()
{
    static LruCache<MatKey, weyl::Coord, MatKeyHash> cache(1 << 16);
    return cache;
}

std::mutex &
coordCacheMutex()
{
    static std::mutex m;
    return m;
}

/** An open 2Q block being accumulated. */
struct OpenBlock
{
    int qa = -1; ///< most-significant operand of the block matrix
    int qb = -1;
    Mat4 matrix = Mat4::identity();
    int absorbed = 0;
};

} // namespace

void
clearCoordinateCache()
{
    std::lock_guard<std::mutex> lock(coordCacheMutex());
    coordCache().clear();
}

Circuit
consolidateBlocks(const Circuit &input, const ConsolidateOptions &opts,
                  ConsolidateStats *stats)
{
    const int n = input.numQubits();
    Circuit out(n, input.name());

    // Per-wire state: either an open block index, or a pending 1Q matrix.
    std::vector<int> open_of_wire(size_t(n), -1);
    std::vector<Mat2> pending(size_t(n), Mat2::identity());
    std::vector<bool> has_pending(size_t(n), false);
    std::vector<OpenBlock> blocks;
    std::vector<bool> sealed;

    ConsolidateStats local;

    auto annotate = [&](Gate &g) {
        if (!opts.annotateCoords)
            return;
        if (opts.useCoordinateCache) {
            // The cache is process-wide shared state: callers running
            // transpile() concurrently from their own threads would
            // otherwise race here (transpileMany itself consolidates
            // sequentially).
            MatKey key = quantize(*g.mat4);
            {
                std::lock_guard<std::mutex> lock(coordCacheMutex());
                if (auto hit = coordCache().get(key)) {
                    ++local.coordCacheHits;
                    g.coords = *hit;
                    return;
                }
            }
            ++local.coordCacheMisses;
            g.coords = weyl::weylCoordinates(*g.mat4);
            std::lock_guard<std::mutex> lock(coordCacheMutex());
            coordCache().put(key, *g.coords);
        } else {
            ++local.coordCacheMisses;
            g.coords = weyl::weylCoordinates(*g.mat4);
        }
    };

    auto seal = [&](int blk_id) {
        if (blk_id < 0 || sealed[size_t(blk_id)])
            return;
        OpenBlock &blk = blocks[size_t(blk_id)];
        Gate g = makeUnitary2(blk.qa, blk.qb, blk.matrix);
        annotate(g);
        out.append(std::move(g));
        ++local.blocksEmitted;
        local.gatesAbsorbed += blk.absorbed;
        sealed[size_t(blk_id)] = true;
        open_of_wire[size_t(blk.qa)] = -1;
        open_of_wire[size_t(blk.qb)] = -1;
    };

    auto flushPending = [&](int q) {
        if (!has_pending[size_t(q)])
            return;
        out.append(makeUnitary1(q, pending[size_t(q)]));
        pending[size_t(q)] = Mat2::identity();
        has_pending[size_t(q)] = false;
    };

    auto mulLeft1q = [&](OpenBlock &blk, int q, const Mat2 &m) {
        // Apply the 1Q matrix after the block so far: matrix = (m on wire q)
        // * matrix.
        Mat4 lift = (q == blk.qa) ? linalg::kron(m, Mat2::identity())
                                  : linalg::kron(Mat2::identity(), m);
        blk.matrix = lift * blk.matrix;
        ++blk.absorbed;
    };

    for (const auto &g : input.gates()) {
        if (g.isBarrier()) {
            for (auto &blk_id : open_of_wire)
                seal(blk_id);
            continue;
        }
        MIRAGE_ASSERT(!g.isThreeQubit(),
                      "consolidate requires 3Q gates to be unrolled first");

        if (g.isOneQubit()) {
            int q = g.qubits[0];
            int blk_id = open_of_wire[size_t(q)];
            if (blk_id >= 0 && opts.absorbSingleQubitGates) {
                mulLeft1q(blocks[size_t(blk_id)], q, g.matrix2());
            } else {
                pending[size_t(q)] = g.matrix2() * pending[size_t(q)];
                has_pending[size_t(q)] = true;
            }
            continue;
        }

        // Two-qubit gate.
        int a = g.qubits[0];
        int b = g.qubits[1];
        int blk_a = open_of_wire[size_t(a)];
        int blk_b = open_of_wire[size_t(b)];

        if (blk_a >= 0 && blk_a == blk_b) {
            // Same open pair: multiply in (respecting operand order).
            OpenBlock &blk = blocks[size_t(blk_a)];
            Mat4 m = g.matrix4();
            if (a != blk.qa) {
                // The gate lists operands in the swapped order relative to
                // the block; conjugate by SWAP-reindexing.
                Mat4 r;
                static const int swap_idx[4] = {0, 2, 1, 3};
                for (int i = 0; i < 4; ++i)
                    for (int j = 0; j < 4; ++j)
                        r(swap_idx[i], swap_idx[j]) = m(i, j);
                m = r;
            }
            blk.matrix = m * blk.matrix;
            ++blk.absorbed;
            continue;
        }

        // Conflicting blocks on either wire get sealed.
        seal(blk_a);
        seal(blk_b);

        // Open a new block, folding in any pending 1Q gates.
        OpenBlock blk;
        blk.qa = a;
        blk.qb = b;
        blk.matrix = g.matrix4();
        if (has_pending[size_t(a)]) {
            blk.matrix =
                blk.matrix * linalg::kron(pending[size_t(a)], Mat2::identity());
            pending[size_t(a)] = Mat2::identity();
            has_pending[size_t(a)] = false;
            ++blk.absorbed;
        }
        if (has_pending[size_t(b)]) {
            blk.matrix =
                blk.matrix * linalg::kron(Mat2::identity(), pending[size_t(b)]);
            pending[size_t(b)] = Mat2::identity();
            has_pending[size_t(b)] = false;
            ++blk.absorbed;
        }
        blocks.push_back(blk);
        sealed.push_back(false);
        open_of_wire[size_t(a)] = int(blocks.size()) - 1;
        open_of_wire[size_t(b)] = int(blocks.size()) - 1;
    }

    // Seal everything left open, then flush dangling 1Q gates.
    for (int q = 0; q < n; ++q)
        seal(open_of_wire[size_t(q)]);
    for (int q = 0; q < n; ++q)
        flushPending(q);

    if (stats)
        *stats = local;
    return out;
}

} // namespace mirage::circuit
