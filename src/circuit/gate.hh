/**
 * @file
 * Gate representation for the circuit IR.
 *
 * Gates carry a kind, qubit operands, real parameters, and (for
 * consolidated blocks) an explicit matrix plus cached Weyl coordinates.
 * Two-qubit matrices use basis order |q0 q1> with the first operand as the
 * most significant bit, matching weyl/catalog.hh.
 */

#ifndef MIRAGE_CIRCUIT_GATE_HH
#define MIRAGE_CIRCUIT_GATE_HH

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hh"
#include "weyl/coordinates.hh"

namespace mirage::circuit {

using linalg::Mat2;
using linalg::Mat4;
using weyl::Coord;

enum class GateKind
{
    // one-qubit
    I, X, Y, Z, H, S, Sdg, T, Tdg, SX,
    RX, RY, RZ, U3,
    Unitary1Q,
    // two-qubit
    CX, CZ, CP, CRX, CRY, CRZ,
    SWAP, ISWAP, RootISWAP,
    RXX, RYY, RZZ,
    Unitary2Q,
    // three-qubit (unrolled before routing)
    CCX, CSWAP,
    // structural
    Barrier,
};

/** A single circuit operation. */
struct Gate
{
    GateKind kind = GateKind::I;
    std::vector<int> qubits;
    std::vector<double> params;

    /** Explicit matrix for Unitary1Q blocks. */
    std::optional<Mat2> mat2;
    /** Explicit matrix for Unitary2Q blocks. */
    std::optional<Mat4> mat4;
    /** Cached Weyl coordinates (annotated during consolidation/routing). */
    std::optional<Coord> coords;
    /**
     * True when this gate was accepted as a mirror U' = SWAP * U during
     * MIRAGE routing (its matrix already includes the trailing SWAP).
     */
    bool mirrored = false;

    int numQubits() const { return int(qubits.size()); }
    bool isBarrier() const { return kind == GateKind::Barrier; }
    bool isOneQubit() const;
    bool isTwoQubit() const;
    bool isThreeQubit() const;

    /** Gate name in OpenQASM-ish spelling. */
    std::string name() const;

    /** Matrix of a one-qubit gate. */
    Mat2 matrix2() const;
    /** Matrix of a two-qubit gate (first operand = most significant). */
    Mat4 matrix4() const;

    /**
     * Weyl coordinates, computed on demand and NOT cached (use
     * annotateCoords for caching).
     */
    Coord weylCoords() const;
    /** Compute and store coords if absent; returns them. */
    Coord annotateCoords();
};

// Convenience constructors.
Gate makeGate1(GateKind kind, int q, std::vector<double> params = {});
Gate makeGate2(GateKind kind, int a, int b, std::vector<double> params = {});
Gate makeUnitary2(int a, int b, const Mat4 &m);
Gate makeUnitary1(int q, const Mat2 &m);
Gate makeBarrier(std::vector<int> qubits);

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_GATE_HH
