/**
 * @file
 * OpenQASM 2.0 export.
 *
 * Standard gates map directly; Unitary1Q/Unitary2Q blocks are emitted via
 * their ZYZ / KAK parameters so the output is loadable by any QASM 2
 * toolchain (CNOT basis for the KAK core).
 */

#ifndef MIRAGE_CIRCUIT_QASM_HH
#define MIRAGE_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace mirage::circuit {

/** Serialize a circuit as OpenQASM 2.0. */
std::string toQasm(const Circuit &circuit);

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_QASM_HH
