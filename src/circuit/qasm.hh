/**
 * @file
 * OpenQASM 2.0 export and import.
 *
 * Export: standard gates map directly; Unitary1Q/Unitary2Q blocks are
 * emitted via their ZYZ / KAK parameters so the output is loadable by any
 * QASM 2 toolchain (CNOT basis for the KAK core).
 *
 * Import: fromQasm parses the dialect toQasm emits -- qelib1 standard
 * gates (plus rxx/ryy/rzz/iswap extensions), one or more qreg
 * declarations, barriers, and constant parameter expressions over
 * numbers and pi with + - * / and parentheses. Classical registers and
 * measurements are skipped; gate definitions are not supported.
 * Malformed input raises QasmError with a 1-based line/column position,
 * so callers (the `mirage` CLI in particular) can print actionable
 * "file:line:col: message" diagnostics instead of dying.
 */

#ifndef MIRAGE_CIRCUIT_QASM_HH
#define MIRAGE_CIRCUIT_QASM_HH

#include <stdexcept>
#include <string>

#include "circuit/circuit.hh"

namespace mirage::circuit {

/**
 * Parse failure raised by fromQasm. what() reads "<line>:<col>:
 * <message>"; line/column are 1-based and point at the offending token.
 */
class QasmError : public std::runtime_error
{
  public:
    QasmError(int line, int column, const std::string &message);

    int line() const { return line_; }
    int column() const { return column_; }
    /** The message without the position prefix. */
    const std::string &message() const { return message_; }

  private:
    int line_;
    int column_;
    std::string message_;
};

/** Serialize a circuit as OpenQASM 2.0. */
std::string toQasm(const Circuit &circuit);

/** Parse OpenQASM 2.0 text (the exporter's dialect); throws QasmError. */
Circuit fromQasm(const std::string &text);

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_QASM_HH
