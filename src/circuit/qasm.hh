/**
 * @file
 * OpenQASM 2.0 export and import.
 *
 * Export: standard gates map directly; Unitary1Q/Unitary2Q blocks are
 * emitted via their ZYZ / KAK parameters so the output is loadable by any
 * QASM 2 toolchain (CNOT basis for the KAK core).
 *
 * Import: fromQasm parses the dialect toQasm emits -- qelib1 standard
 * gates (plus rxx/ryy/rzz/iswap extensions), one or more qreg
 * declarations, barriers, and constant parameter expressions over
 * numbers and pi with + - * / and parentheses. Classical registers and
 * measurements are skipped; gate definitions are not supported.
 */

#ifndef MIRAGE_CIRCUIT_QASM_HH
#define MIRAGE_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace mirage::circuit {

/** Serialize a circuit as OpenQASM 2.0. */
std::string toQasm(const Circuit &circuit);

/** Parse OpenQASM 2.0 text (the exporter's dialect); fatal on errors. */
Circuit fromQasm(const std::string &text);

} // namespace mirage::circuit

#endif // MIRAGE_CIRCUIT_QASM_HH
