/**
 * @file
 * OpenQASM 2.0 exporter and importer: direct emission for standard
 * gates, ZYZ / KAK-parameter lowering for consolidated unitary blocks,
 * and a recursive-descent parser for the emitted dialect that reports
 * 1-based line/column positions via QasmError.
 */

#include "circuit/qasm.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "weyl/catalog.hh"
#include "weyl/kak.hh"

namespace mirage::circuit {

QasmError::QasmError(int line, int column, const std::string &message)
    : std::runtime_error(std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line), column_(column), message_(message)
{
}

namespace {

/** The shared printf-style formatter behind every parse diagnostic. */
std::string
vformat(const char *fmt, va_list args)
{
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    return buf;
}

/** Format printf-style and throw a positioned QasmError. */
[[noreturn]] void
raiseAt(int line, int column, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw QasmError(line, column, msg);
}

std::string
fmt(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", x);
    return buf;
}

void
emitU3(std::string &out, const Mat2 &m, int q)
{
    auto ang = weyl::eulerZYZ(m);
    out += "u3(" + fmt(ang[0]) + "," + fmt(ang[1]) + "," + fmt(ang[2]) +
           ") q[" + std::to_string(q) + "];\n";
}

void
emitRzz(std::string &out, double theta, int a, int b)
{
    out += "rzz(" + fmt(theta) + ") q[" + std::to_string(a) + "],q[" +
           std::to_string(b) + "];\n";
}

void
emitRyyViaRzz(std::string &out, double theta, int a, int b)
{
    // YY = (RX(pi/2) (x) RX(pi/2)) ZZ (RX(-pi/2) (x) RX(-pi/2)).
    out += "rx(-pi/2) q[" + std::to_string(a) + "];\n";
    out += "rx(-pi/2) q[" + std::to_string(b) + "];\n";
    emitRzz(out, theta, a, b);
    out += "rx(pi/2) q[" + std::to_string(a) + "];\n";
    out += "rx(pi/2) q[" + std::to_string(b) + "];\n";
}

void
emitUnitary2(std::string &out, const Gate &g)
{
    // KAK: U = e^{i phase} (l1 x l2) CAN(a,b,c) (r1 x r2) with
    // CAN(a,b,c) = rxx(-2a) ryy(-2b) rzz(-2c).
    weyl::KakDecomposition kak = weyl::kakDecompose(*g.mat4);
    int qa = g.qubits[0], qb = g.qubits[1];
    emitU3(out, kak.r1, qa);
    emitU3(out, kak.r2, qb);
    out += "rxx(" + fmt(-2.0 * kak.coords.a) + ") q[" + std::to_string(qa) +
           "],q[" + std::to_string(qb) + "];\n";
    if (kak.coords.b != 0.0)
        emitRyyViaRzz(out, -2.0 * kak.coords.b, qa, qb);
    if (kak.coords.c != 0.0)
        emitRzz(out, -2.0 * kak.coords.c, qa, qb);
    emitU3(out, kak.l1, qa);
    emitU3(out, kak.l2, qb);
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::string out;
    out += "OPENQASM 2.0;\n";
    out += "include \"qelib1.inc\";\n";
    out += "qreg q[" + std::to_string(circuit.numQubits()) + "];\n";

    for (const auto &g : circuit.gates()) {
        if (g.isBarrier()) {
            out += "barrier q;\n";
            continue;
        }
        switch (g.kind) {
          case GateKind::Unitary1Q:
            emitU3(out, *g.mat2, g.qubits[0]);
            break;
          case GateKind::Unitary2Q:
            emitUnitary2(out, g);
            break;
          case GateKind::RootISWAP: {
            // No qelib1 primitive; emit as the equivalent XX+YY rotation.
            double t = linalg::kPi / (4.0 * g.params.at(0));
            out += "rxx(" + fmt(-2.0 * t) + ") q[" +
                   std::to_string(g.qubits[0]) + "],q[" +
                   std::to_string(g.qubits[1]) + "];\n";
            emitRyyViaRzz(out, -2.0 * t, g.qubits[0], g.qubits[1]);
            break;
          }
          default: {
            out += g.name();
            if (!g.params.empty()) {
                out += "(";
                for (size_t i = 0; i < g.params.size(); ++i) {
                    if (i)
                        out += ",";
                    out += fmt(g.params[i]);
                }
                out += ")";
            }
            out += " ";
            for (size_t i = 0; i < g.qubits.size(); ++i) {
                if (i)
                    out += ",";
                out += "q[" + std::to_string(g.qubits[i]) + "]";
            }
            out += ";\n";
            break;
          }
        }
    }
    return out;
}

namespace {

/** Gate-name table for the importer (inverse of Gate::name()). */
struct GateSpec
{
    GateKind kind;
    int operands;
    int params;
};

const std::map<std::string, GateSpec> &
gateTable()
{
    static const std::map<std::string, GateSpec> table = {
        {"id", {GateKind::I, 1, 0}},      {"x", {GateKind::X, 1, 0}},
        {"y", {GateKind::Y, 1, 0}},       {"z", {GateKind::Z, 1, 0}},
        {"h", {GateKind::H, 1, 0}},       {"s", {GateKind::S, 1, 0}},
        {"sdg", {GateKind::Sdg, 1, 0}},   {"t", {GateKind::T, 1, 0}},
        {"tdg", {GateKind::Tdg, 1, 0}},   {"sx", {GateKind::SX, 1, 0}},
        {"rx", {GateKind::RX, 1, 1}},     {"ry", {GateKind::RY, 1, 1}},
        {"rz", {GateKind::RZ, 1, 1}},     {"u3", {GateKind::U3, 1, 3}},
        {"cx", {GateKind::CX, 2, 0}},     {"cz", {GateKind::CZ, 2, 0}},
        {"cp", {GateKind::CP, 2, 1}},     {"crx", {GateKind::CRX, 2, 1}},
        {"cry", {GateKind::CRY, 2, 1}},   {"crz", {GateKind::CRZ, 2, 1}},
        {"swap", {GateKind::SWAP, 2, 0}}, {"iswap", {GateKind::ISWAP, 2, 0}},
        {"rxx", {GateKind::RXX, 2, 1}},   {"ryy", {GateKind::RYY, 2, 1}},
        {"rzz", {GateKind::RZZ, 2, 1}},   {"ccx", {GateKind::CCX, 3, 0}},
        {"cswap", {GateKind::CSWAP, 3, 0}},
    };
    return table;
}

/** Character-level cursor over the QASM text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    bool atEnd() { skipSpace(); return pos_ >= s_.size(); }

    void
    skipSpace()
    {
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '/' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
                while (pos_ < s_.size() && s_[pos_] != '\n')
                    ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                if (c == '\n') {
                    ++line_;
                    lineStart_ = pos_ + 1;
                }
                ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fail("expected '%c'", c);
    }

    /** [A-Za-z_][A-Za-z0-9_]* (token start recorded for failAtToken). */
    std::string
    identifier()
    {
        skipSpace();
        markToken();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_'))
            ++pos_;
        if (pos_ == start)
            fail("expected identifier");
        return s_.substr(start, pos_ - start);
    }

    int
    integer()
    {
        skipSpace();
        markToken();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail("expected integer");
        try {
            return std::stoi(s_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            failAtToken("integer out of range");
        }
    }

    // Constant expression grammar: expr := term (('+'|'-') term)*,
    // term := factor (('*'|'/') factor)*, factor := ('+'|'-') factor |
    // '(' expr ')' | number | 'pi'.
    double
    expression()
    {
        double v = term();
        for (;;) {
            if (consume('+'))
                v += term();
            else if (consume('-'))
                v -= term();
            else
                return v;
        }
    }

    void
    skipStringLiteral()
    {
        expect('"');
        while (pos_ < s_.size() && s_[pos_] != '"')
            ++pos_;
        expect('"');
    }

    int line() const { return line_; }
    /** 1-based column of the current parse position. */
    int column() const { return int(pos_ - lineStart_) + 1; }
    /** Position of the most recently started identifier/integer token. */
    int tokenLine() const { return tokLine_; }
    int tokenColumn() const { return tokCol_; }

    /** Throw a QasmError at the current parse position (printf-style). */
    [[noreturn]] void
    fail(const char *fmt, ...)
    {
        va_list args;
        va_start(args, fmt);
        std::string msg = vformat(fmt, args);
        va_end(args);
        throw QasmError(line_, column(), msg);
    }

    /** Throw at the start of the last identifier/integer token. */
    [[noreturn]] void
    failAtToken(const char *fmt, ...)
    {
        va_list args;
        va_start(args, fmt);
        std::string msg = vformat(fmt, args);
        va_end(args);
        throw QasmError(tokLine_, tokCol_, msg);
    }

  private:
    /** Record the current position as a token start. */
    void
    markToken()
    {
        tokLine_ = line_;
        tokCol_ = column();
    }
    double
    term()
    {
        double v = factor();
        for (;;) {
            if (consume('*'))
                v *= factor();
            else if (consume('/'))
                v /= factor();
            else
                return v;
        }
    }

    double
    factor()
    {
        if (consume('-'))
            return -factor();
        if (consume('+'))
            return factor();
        if (consume('(')) {
            double v = expression();
            expect(')');
            return v;
        }
        skipSpace();
        if (pos_ < s_.size() &&
            std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
            std::string name = identifier();
            if (name == "pi")
                return linalg::kPi;
            failAtToken("unknown constant '%s'", name.c_str());
        }
        // In-place parse (no tail copy; strtod stops at the first
        // non-numeric character). s_ is a std::string, so c_str() is
        // NUL-terminated past the literal.
        const char *begin = s_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            fail("expected number");
        pos_ += size_t(end - begin);
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
    size_t lineStart_ = 0;
    int line_ = 1;
    int tokLine_ = 1;
    int tokCol_ = 1;
};

} // namespace

Circuit
fromQasm(const std::string &text)
{
    Parser p(text);

    // Header.
    {
        std::string kw = p.identifier();
        if (kw != "OPENQASM")
            p.failAtToken("expected OPENQASM header, got '%s'",
                          kw.c_str());
        p.expression(); // version number (e.g. 2.0)
        p.expect(';');
    }

    // Registers are concatenated into one flat wire space in declaration
    // order, matching how the exporter writes a single register "q".
    struct QReg
    {
        std::string name;
        int base;
        int size;
    };
    std::vector<QReg> qregs;
    int num_qubits = 0;

    std::vector<Gate> gates;

    auto findReg = [&](const std::string &reg) -> const QReg & {
        for (const auto &r : qregs) {
            if (r.name == reg)
                return r;
        }
        p.failAtToken("unknown register '%s'", reg.c_str());
    };

    auto wireOf = [&](const std::string &reg, int idx) {
        const QReg &r = findReg(reg);
        if (idx < 0 || idx >= r.size)
            p.failAtToken("index %d out of range for %s[%d]", idx,
                          reg.c_str(), r.size);
        return r.base + idx;
    };

    while (!p.atEnd()) {
        std::string word = p.identifier();
        const int word_line = p.tokenLine();
        const int word_col = p.tokenColumn();

        if (word == "include") {
            p.skipStringLiteral();
            p.expect(';');
            continue;
        }
        if (word == "qreg" || word == "creg") {
            std::string name = p.identifier();
            p.expect('[');
            int n = p.integer();
            p.expect(']');
            p.expect(';');
            if (word == "qreg") {
                qregs.push_back({name, num_qubits, n});
                num_qubits += n;
            }
            continue;
        }
        if (word == "measure") {
            // measure q[i] -> c[i]; (skipped: the IR has no classical bits)
            p.identifier();
            if (p.consume('[')) {
                p.integer();
                p.expect(']');
            }
            p.expect('-');
            p.expect('>');
            p.identifier();
            if (p.consume('[')) {
                p.integer();
                p.expect(']');
            }
            p.expect(';');
            continue;
        }
        if (word == "barrier") {
            std::vector<int> qubits;
            do {
                std::string reg = p.identifier();
                if (p.consume('[')) {
                    int idx = p.integer();
                    p.expect(']');
                    qubits.push_back(wireOf(reg, idx));
                } else {
                    const auto &r = findReg(reg);
                    for (int i = 0; i < r.size; ++i)
                        qubits.push_back(r.base + i);
                }
            } while (p.consume(','));
            p.expect(';');
            gates.push_back(makeBarrier(std::move(qubits)));
            continue;
        }

        auto it = gateTable().find(word);
        if (it == gateTable().end())
            raiseAt(word_line, word_col, "unsupported statement '%s'",
                    word.c_str());
        const GateSpec &spec = it->second;

        std::vector<double> params;
        if (p.consume('(')) {
            do {
                params.push_back(p.expression());
            } while (p.consume(','));
            p.expect(')');
        }
        if (int(params.size()) != spec.params)
            raiseAt(word_line, word_col, "%s expects %d params, got %d",
                    word.c_str(), spec.params, int(params.size()));

        std::vector<int> qubits;
        do {
            std::string reg = p.identifier();
            p.expect('[');
            int idx = p.integer();
            p.expect(']');
            qubits.push_back(wireOf(reg, idx));
        } while (p.consume(','));
        p.expect(';');
        if (int(qubits.size()) != spec.operands)
            raiseAt(word_line, word_col, "%s expects %d operands, got %d",
                    word.c_str(), spec.operands, int(qubits.size()));

        Gate g;
        g.kind = spec.kind;
        g.qubits = std::move(qubits);
        g.params = std::move(params);
        gates.push_back(std::move(g));
    }

    Circuit out(num_qubits, "qasm");
    for (auto &g : gates)
        out.append(std::move(g));
    return out;
}

} // namespace mirage::circuit
