/**
 * @file
 * OpenQASM 2.0 exporter: direct emission for standard gates and
 * ZYZ / KAK-parameter lowering for consolidated unitary blocks.
 */

#include "circuit/qasm.hh"

#include <cstdio>

#include "common/logging.hh"
#include "weyl/catalog.hh"
#include "weyl/kak.hh"

namespace mirage::circuit {

namespace {

std::string
fmt(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", x);
    return buf;
}

void
emitU3(std::string &out, const Mat2 &m, int q)
{
    auto ang = weyl::eulerZYZ(m);
    out += "u3(" + fmt(ang[0]) + "," + fmt(ang[1]) + "," + fmt(ang[2]) +
           ") q[" + std::to_string(q) + "];\n";
}

void
emitRzz(std::string &out, double theta, int a, int b)
{
    out += "rzz(" + fmt(theta) + ") q[" + std::to_string(a) + "],q[" +
           std::to_string(b) + "];\n";
}

void
emitRyyViaRzz(std::string &out, double theta, int a, int b)
{
    // YY = (RX(pi/2) (x) RX(pi/2)) ZZ (RX(-pi/2) (x) RX(-pi/2)).
    out += "rx(-pi/2) q[" + std::to_string(a) + "];\n";
    out += "rx(-pi/2) q[" + std::to_string(b) + "];\n";
    emitRzz(out, theta, a, b);
    out += "rx(pi/2) q[" + std::to_string(a) + "];\n";
    out += "rx(pi/2) q[" + std::to_string(b) + "];\n";
}

void
emitUnitary2(std::string &out, const Gate &g)
{
    // KAK: U = e^{i phase} (l1 x l2) CAN(a,b,c) (r1 x r2) with
    // CAN(a,b,c) = rxx(-2a) ryy(-2b) rzz(-2c).
    weyl::KakDecomposition kak = weyl::kakDecompose(*g.mat4);
    int qa = g.qubits[0], qb = g.qubits[1];
    emitU3(out, kak.r1, qa);
    emitU3(out, kak.r2, qb);
    out += "rxx(" + fmt(-2.0 * kak.coords.a) + ") q[" + std::to_string(qa) +
           "],q[" + std::to_string(qb) + "];\n";
    if (kak.coords.b != 0.0)
        emitRyyViaRzz(out, -2.0 * kak.coords.b, qa, qb);
    if (kak.coords.c != 0.0)
        emitRzz(out, -2.0 * kak.coords.c, qa, qb);
    emitU3(out, kak.l1, qa);
    emitU3(out, kak.l2, qb);
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::string out;
    out += "OPENQASM 2.0;\n";
    out += "include \"qelib1.inc\";\n";
    out += "qreg q[" + std::to_string(circuit.numQubits()) + "];\n";

    for (const auto &g : circuit.gates()) {
        if (g.isBarrier()) {
            out += "barrier q;\n";
            continue;
        }
        switch (g.kind) {
          case GateKind::Unitary1Q:
            emitU3(out, *g.mat2, g.qubits[0]);
            break;
          case GateKind::Unitary2Q:
            emitUnitary2(out, g);
            break;
          case GateKind::RootISWAP: {
            // No qelib1 primitive; emit as the equivalent XX+YY rotation.
            double t = linalg::kPi / (4.0 * g.params.at(0));
            out += "rxx(" + fmt(-2.0 * t) + ") q[" +
                   std::to_string(g.qubits[0]) + "],q[" +
                   std::to_string(g.qubits[1]) + "];\n";
            emitRyyViaRzz(out, -2.0 * t, g.qubits[0], g.qubits[1]);
            break;
          }
          default: {
            out += g.name();
            if (!g.params.empty()) {
                out += "(";
                for (size_t i = 0; i < g.params.size(); ++i) {
                    if (i)
                        out += ",";
                    out += fmt(g.params[i]);
                }
                out += ")";
            }
            out += " ";
            for (size_t i = 0; i < g.qubits.size(); ++i) {
                if (i)
                    out += ",";
                out += "q[" + std::to_string(g.qubits[i]) + "]";
            }
            out += ";\n";
            break;
          }
        }
    }
    return out;
}

} // namespace mirage::circuit
