/**
 * @file
 * Deterministic seeded random number generation used across the library.
 *
 * All stochastic components (coverage-set sampling, Haar sampling, SABRE
 * layout trials, numerical-optimizer restarts) draw from an explicitly
 * seeded Rng so every experiment in the repository is reproducible.
 *
 * For parallel work, deriveSeed/StreamRng provide counter-based streams:
 * value = PRF(seed, stream, counter) with no sequential state, so each
 * work item's randomness is a pure function of its index and results do
 * not depend on thread count or scheduling order.
 */

#ifndef MIRAGE_COMMON_RNG_HH
#define MIRAGE_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace mirage {

/** SplitMix64 finalizer: a high-quality 64-bit bit mixer. */
constexpr uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/**
 * Counter-based PRF over (seed, stream, counter): the canonical way to
 * derive independent sub-seeds for parallel work.
 *
 * Conceptually this is a tiny keyed hash: the (seed, stream) pair forms
 * the key, `counter` indexes into the stream, and the output depends
 * only on the three inputs -- no hidden state, no draw order. Distinct
 * (seed, stream) keys give sequences with no shared prefix (unlike
 * seeding SplitMix64 at nearby counters, where stream j is stream i
 * shifted), so trial j on thread 3 sees exactly the random values it
 * would see serially.
 */
constexpr uint64_t
deriveSeed(uint64_t seed, uint64_t stream, uint64_t counter = 0)
{
    // Golden-ratio / Moremur-style odd constants decorrelate the three
    // inputs before each mix round.
    uint64_t key = mix64(seed + 0x9E3779B97F4A7C15ULL);
    key = mix64(key ^ (stream * 0xD1B54A32D192ED03ULL +
                       0x8CB92BA72F3D8DD7ULL));
    return mix64(key ^ (counter * 0x2545F4914F6CDD1DULL +
                        0x632BE59BD9B4E019ULL));
}

/**
 * A counter-based random stream: stateless apart from the position
 * counter, so stream (seed, s) at counter c always yields
 * deriveSeed(seed, s, c). Satisfies UniformRandomBitGenerator; use it
 * directly or as a seed source for heavier engines.
 */
class StreamRng
{
  public:
    using result_type = uint64_t;

    StreamRng(uint64_t seed, uint64_t stream)
        : seed_(seed), stream_(stream)
    {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~uint64_t(0); }

    /** Next value in the stream (advances the counter). */
    result_type operator()() { return deriveSeed(seed_, stream_, counter_++); }

    /** Random-access peek at an arbitrary counter (no state change). */
    uint64_t at(uint64_t counter) const
    {
        return deriveSeed(seed_, stream_, counter);
    }

    uint64_t counter() const { return counter_; }

  private:
    uint64_t seed_;
    uint64_t stream_;
    uint64_t counter_ = 0;
};

/**
 * Thin wrapper around std::mt19937_64 with convenience draws.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0xC0FFEEULL) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Standard normal draw. */
    double
    normal()
    {
        return std::normal_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t
    index(uint64_t n)
    {
        return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
    }

    /** Fork a child generator with a decorrelated seed. */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_RNG_HH
