/**
 * @file
 * Deterministic seeded random number generation used across the library.
 *
 * All stochastic components (coverage-set sampling, Haar sampling, SABRE
 * layout trials, numerical-optimizer restarts) draw from an explicitly
 * seeded Rng so every experiment in the repository is reproducible.
 */

#ifndef MIRAGE_COMMON_RNG_HH
#define MIRAGE_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace mirage {

/**
 * Thin wrapper around std::mt19937_64 with convenience draws.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0xC0FFEEULL) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Standard normal draw. */
    double
    normal()
    {
        return std::normal_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t
    index(uint64_t n)
    {
        return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
    }

    /** Fork a child generator with a decorrelated seed. */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_RNG_HH
