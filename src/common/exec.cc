/**
 * @file
 * Thread pool implementation: worker loop over a mutex/condvar FIFO,
 * atomic-counter parallelFor with first-exception propagation, and the
 * null-pool inline fallback.
 */

#include "common/exec.hh"

#include <atomic>

#include "common/logging.hh"

namespace mirage::exec {

int
defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? int(hw) : 1;
}

int
resolveThreads(int threads)
{
    MIRAGE_ASSERT(threads >= 0, "negative thread count %d", threads);
    return threads == 0 ? defaultThreads() : threads;
}

ThreadPool::ThreadPool(int threads)
{
    int n = resolveThreads(threads);
    workers_.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        MIRAGE_ASSERT(!stopping_, "submit to a stopping pool");
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> fut = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return fut;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace {

/** Shared state of one parallelFor call. */
struct ForContext
{
    std::atomic<int64_t> next{0};
    std::atomic<bool> cancelled{false};
    int drivers_pending = 0;
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable done;
};

} // namespace

void
ThreadPool::parallelFor(int64_t n, const std::function<void(int64_t)> &body)
{
    if (n <= 0)
        return;
    // One "driver" per worker claims indices off a shared counter; the
    // body reference stays valid because this call blocks until every
    // driver has finished.
    auto ctx = std::make_shared<ForContext>();
    int drivers = int(std::min<int64_t>(numThreads(), n));
    ctx->drivers_pending = drivers;

    auto drive = [ctx, n, pbody = &body]() {
        int64_t i;
        while (!ctx->cancelled.load(std::memory_order_relaxed) &&
               (i = ctx->next.fetch_add(1, std::memory_order_relaxed)) < n) {
            try {
                (*pbody)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(ctx->mutex);
                if (!ctx->error)
                    ctx->error = std::current_exception();
                ctx->cancelled.store(true, std::memory_order_relaxed);
            }
        }
        {
            std::lock_guard<std::mutex> lock(ctx->mutex);
            --ctx->drivers_pending;
        }
        ctx->done.notify_one();
    };

    for (int d = 0; d < drivers; ++d)
        enqueue(drive);

    std::unique_lock<std::mutex> lock(ctx->mutex);
    ctx->done.wait(lock, [&] { return ctx->drivers_pending == 0; });
    if (ctx->error)
        std::rethrow_exception(ctx->error);
}

void
parallelFor(ThreadPool *pool, int64_t n,
            const std::function<void(int64_t)> &body)
{
    if (pool) {
        pool->parallelFor(n, body);
        return;
    }
    for (int64_t i = 0; i < n; ++i)
        body(i);
}

} // namespace mirage::exec
