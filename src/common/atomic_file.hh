/**
 * @file
 * Crash-safe whole-file writes: temp file + fsync + atomic rename.
 *
 * A reader racing the writer -- or a SIGKILL landing mid-write -- sees
 * either the complete old file or the complete new file, never a torn
 * prefix. Used for every persisted cache (FIT_CATALOG.bin, the serve
 * engine's equivalence caches) so `catalog build` and engine shutdown
 * can be killed at any instant without poisoning the next start.
 */

#ifndef MIRAGE_COMMON_ATOMIC_FILE_HH
#define MIRAGE_COMMON_ATOMIC_FILE_HH

#include <string>

namespace mirage {

/**
 * Replace `path` with `content` atomically (write to `path.tmp.<pid>`
 * in the same directory, fsync, rename over the target, best-effort
 * fsync of the directory). Returns false and fills `*error` (when
 * non-null) on failure; the temp file is unlinked and the target is
 * left untouched.
 */
bool writeFileAtomic(const std::string &path, const std::string &content,
                     std::string *error = nullptr);

} // namespace mirage

#endif // MIRAGE_COMMON_ATOMIC_FILE_HH
