/**
 * @file
 * Small LRU cache template.
 *
 * MIRAGE's cost model queries monodromy coverage polytopes for the same
 * quantized Weyl coordinates over and over while routing (Section VI-C of
 * the paper); an LRU lookup table makes each coordinate pay the polytope
 * iteration price only once.
 */

#ifndef MIRAGE_COMMON_LRU_CACHE_HH
#define MIRAGE_COMMON_LRU_CACHE_HH

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace mirage {

/**
 * Fixed-capacity least-recently-used cache.
 *
 * @tparam Key   hashable key type
 * @tparam Value copyable value type
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache
{
  public:
    explicit LruCache(size_t capacity = 1 << 16) : capacity_(capacity) {}

    /** Look up a key, refreshing its recency on hit. */
    std::optional<Value>
    get(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            return std::nullopt;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return it->second->second;
    }

    /** Insert or overwrite a key. */
    void
    put(const Key &key, const Value &value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = value;
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        order_.emplace_front(key, value);
        map_[key] = order_.begin();
        if (map_.size() > capacity_) {
            map_.erase(order_.back().first);
            order_.pop_back();
        }
    }

    size_t size() const { return map_.size(); }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    void
    clear()
    {
        map_.clear();
        order_.clear();
        hits_ = misses_ = 0;
    }

  private:
    size_t capacity_;
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace mirage

#endif // MIRAGE_COMMON_LRU_CACHE_HH
