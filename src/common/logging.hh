/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user-caused conditions (bad arguments, impossible
 * configuration) and exits cleanly; panic() is for internal invariant
 * violations (library bugs) and aborts. warn()/inform() never stop
 * execution.
 */

#ifndef MIRAGE_COMMON_LOGGING_HH
#define MIRAGE_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mirage {

/** Print an error caused by the user and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print an internal-bug error and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a warning; execution continues. */
void warn(const char *fmt, ...);

/** Print a status message; execution continues. */
void inform(const char *fmt, ...);

/**
 * Internal invariant check. Unlike assert() this is active in all build
 * types; use for cheap checks guarding algorithm correctness.
 */
#define MIRAGE_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond))                                                       \
            ::mirage::panic("assertion '%s' failed at %s:%d: " __VA_ARGS__,\
                            #cond, __FILE__, __LINE__);                    \
    } while (0)

} // namespace mirage

#endif // MIRAGE_COMMON_LOGGING_HH
