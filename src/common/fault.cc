#include "common/fault.hh"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/rng.hh"

namespace mirage {
namespace fault {

namespace {

/** FNV-1a over the point name: the PRF stream id for its schedule. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct PointConfig
{
    // Rate form: inject iff PRF % den < num.
    uint64_t num = 0;
    uint64_t den = 1;
    // One-shot form: inject exactly on call number `shot` (1-based).
    uint64_t shot = 0;
};

struct Counts
{
    uint64_t calls = 0;
    uint64_t injected = 0;
};

struct Schedule
{
    std::string spec;
    uint64_t seed = 0;
    std::map<std::string, PointConfig> points;
    std::map<std::string, Counts> counts; // includes unscheduled points
    uint64_t totalInjected = 0;
};

// armed_ is the fast-path gate; everything else sits behind the mutex.
std::atomic<bool> armed_{false};
std::mutex mutex_;
Schedule schedule_;

[[noreturn]] void
badSpec(const std::string &spec, const std::string &why)
{
    throw std::invalid_argument("bad fault spec '" + spec + "': " + why);
}

/** Parse a non-negative integer; returns false on junk/overflow. */
bool
parseU64(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        if (v > (~uint64_t(0) - (c - '0')) / 10)
            return false;
        v = v * 10 + (c - '0');
    }
    *out = v;
    return true;
}

Schedule
parseSpec(const std::string &spec)
{
    Schedule s;
    s.spec = spec;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size())
            badSpec(spec, "expected 'name=value' in '" + item + "'");
        const std::string name = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (name == "seed") {
            if (!parseU64(value, &s.seed))
                badSpec(spec, "seed must be a non-negative integer");
            continue;
        }
        PointConfig cfg;
        if (value[0] == '#') {
            if (!parseU64(value.substr(1), &cfg.shot) || cfg.shot == 0)
                badSpec(spec, "'" + item +
                                  "': one-shot form is point=#K with K >= 1");
        } else {
            const size_t slash = value.find('/');
            if (slash == std::string::npos)
                badSpec(spec, "'" + item +
                                  "': rate form is point=N/D, one-shot "
                                  "form is point=#K");
            if (!parseU64(value.substr(0, slash), &cfg.num) ||
                !parseU64(value.substr(slash + 1), &cfg.den) ||
                cfg.den == 0)
                badSpec(spec, "'" + item + "': rate must be N/D with D >= 1");
            if (cfg.num > cfg.den)
                badSpec(spec, "'" + item + "': rate N/D needs N <= D");
        }
        if (!s.points.emplace(name, cfg).second)
            badSpec(spec, "point '" + name + "' listed twice");
    }
    if (s.points.empty())
        badSpec(spec, "no injection points");
    return s;
}

} // namespace

void
arm(const std::string &spec)
{
    Schedule parsed = parseSpec(spec); // throws before touching state
    std::lock_guard<std::mutex> lock(mutex_);
    schedule_ = std::move(parsed);
    armed_.store(true, std::memory_order_release);
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(false, std::memory_order_release);
    schedule_ = Schedule();
}

bool
armed()
{
    return armed_.load(std::memory_order_relaxed);
}

std::string
spec()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return schedule_.spec;
}

bool
shouldFail(const char *point)
{
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    Counts &c = schedule_.counts[point];
    const uint64_t call = c.calls++; // 0-based index of THIS call
    auto it = schedule_.points.find(point);
    if (it == schedule_.points.end())
        return false;
    const PointConfig &cfg = it->second;
    bool fire;
    if (cfg.shot > 0) {
        fire = (call + 1 == cfg.shot);
    } else {
        const uint64_t draw =
            deriveSeed(schedule_.seed, fnv1a(point), call);
        fire = (draw % cfg.den) < cfg.num;
    }
    if (fire) {
        ++c.injected;
        ++schedule_.totalInjected;
    }
    return fire;
}

void
maybeThrow(const char *point)
{
    if (shouldFail(point))
        throw Injected(point);
}

std::vector<PointStats>
stats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PointStats> out;
    out.reserve(schedule_.counts.size());
    for (const auto &kv : schedule_.counts) {
        PointStats p;
        p.point = kv.first;
        p.calls = kv.second.calls;
        p.injected = kv.second.injected;
        out.push_back(std::move(p));
    }
    return out;
}

uint64_t
injectedCount()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return schedule_.totalInjected;
}

} // namespace fault
} // namespace mirage
