/**
 * @file
 * Minimal concurrency subsystem: a fixed-size thread pool with a
 * blocking parallelFor.
 *
 * Routing trials (router::routeWithTrials) and batch transpilation
 * (mirage_pass::transpileMany) are embarrassingly parallel: every work
 * item derives all of its randomness from a counter-based stream keyed
 * by (seed, itemIndex) (see common/rng.hh), so results are bit-identical
 * regardless of thread count or scheduling order. The pool therefore
 * needs no work stealing and no task dependencies -- just a shared FIFO
 * of closures and a barrier-style parallelFor that propagates the first
 * exception to the caller.
 */

#ifndef MIRAGE_COMMON_EXEC_HH
#define MIRAGE_COMMON_EXEC_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mirage::exec {

/** Hardware concurrency, clamped to at least 1. */
int defaultThreads();

/**
 * Resolve a user-facing `threads` knob: 0 means defaultThreads(),
 * anything >= 1 is taken literally. Negative values are an error.
 */
int resolveThreads(int threads);

/**
 * Fixed-size thread pool.
 *
 * Workers drain a shared FIFO queue. Destruction finishes every task
 * already submitted, then joins all workers; it never abandons queued
 * work. The pool is not reentrant: calling parallelFor from inside a
 * pool task deadlocks by design (keep nesting out of the hot path).
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = hardware concurrency). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return int(workers_.size()); }

    /** Queue a task; the future reports completion or the exception. */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, n), distributed over the workers
     * via an atomic claim counter. Blocks until all indices finished.
     * If any invocation throws, remaining unclaimed indices are skipped
     * and the first exception (in completion order) is rethrown here.
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &body);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    bool stopping_ = false;
};

/**
 * Convenience dispatcher: run body(i) for i in [0, n) on `pool` when
 * non-null, or inline on the calling thread (in index order) when null.
 * Serial callers pass nullptr and pay zero synchronization cost.
 */
void parallelFor(ThreadPool *pool, int64_t n,
                 const std::function<void(int64_t)> &body);

} // namespace mirage::exec

#endif // MIRAGE_COMMON_EXEC_HH
