/**
 * @file
 * Exact rational arithmetic: normalization, comparison, and __int128
 * intermediate products with overflow checks.
 */

#include "common/rational.hh"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace mirage {

namespace {

__int128
gcdWide(__int128 a, __int128 b)
{
    if (a < 0)
        a = -a;
    if (b < 0)
        b = -b;
    while (b != 0) {
        __int128 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

Rational::Rational(int64_t num, int64_t den)
{
    MIRAGE_ASSERT(den != 0, "rational with zero denominator");
    *this = fromWide(num, den);
}

Rational
Rational::fromWide(__int128 num, __int128 den)
{
    MIRAGE_ASSERT(den != 0, "rational with zero denominator");
    if (den < 0) {
        num = -num;
        den = -den;
    }
    __int128 g = gcdWide(num, den);
    if (g > 1) {
        num /= g;
        den /= g;
    }
    const __int128 lo = std::numeric_limits<int64_t>::min();
    const __int128 hi = std::numeric_limits<int64_t>::max();
    if (num < lo || num > hi || den > hi)
        panic("rational overflow after reduction");
    Rational r;
    r.num_ = int64_t(num);
    r.den_ = int64_t(den);
    return r;
}

std::string
Rational::toString() const
{
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational
Rational::approximate(double x, int64_t max_den)
{
    MIRAGE_ASSERT(max_den >= 1, "bad max denominator");
    MIRAGE_ASSERT(std::isfinite(x), "approximating non-finite value");

    bool neg = x < 0;
    double v = neg ? -x : x;

    // Continued-fraction convergents p_k/q_k until the denominator budget
    // is exhausted; the last admissible convergent is the best approximant.
    int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
    double frac = v;
    for (int iter = 0; iter < 64; ++iter) {
        double fl = std::floor(frac);
        if (fl > 9.0e17)
            break;
        int64_t a = int64_t(fl);
        // p2 = a*p1 + p0 with overflow care in 128-bit.
        __int128 p2 = __int128(a) * p1 + p0;
        __int128 q2 = __int128(a) * q1 + q0;
        if (q2 > max_den || p2 > std::numeric_limits<int64_t>::max())
            break;
        p0 = p1;
        q0 = q1;
        p1 = int64_t(p2);
        q1 = int64_t(q2);
        double rem = frac - fl;
        if (rem < 1e-15)
            break;
        frac = 1.0 / rem;
    }
    if (q1 == 0)
        return Rational(neg ? -p0 : p0, q0 == 0 ? 1 : q0);
    return Rational(neg ? -p1 : p1, q1);
}

Rational
Rational::operator-() const
{
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
}

Rational
Rational::operator+(const Rational &o) const
{
    return fromWide(__int128(num_) * o.den_ + __int128(o.num_) * den_,
                    __int128(den_) * o.den_);
}

Rational
Rational::operator-(const Rational &o) const
{
    return fromWide(__int128(num_) * o.den_ - __int128(o.num_) * den_,
                    __int128(den_) * o.den_);
}

Rational
Rational::operator*(const Rational &o) const
{
    return fromWide(__int128(num_) * o.num_, __int128(den_) * o.den_);
}

Rational
Rational::operator/(const Rational &o) const
{
    MIRAGE_ASSERT(o.num_ != 0, "rational division by zero");
    return fromWide(__int128(num_) * o.den_, __int128(den_) * o.num_);
}

bool
Rational::operator<(const Rational &o) const
{
    return __int128(num_) * o.den_ < __int128(o.num_) * den_;
}

} // namespace mirage
