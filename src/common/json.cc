/**
 * @file
 * JSON writer/parser implementation: ordered-member objects, exact
 * number round-trips via shortest-representation probing, and a
 * recursive-descent parser that reports 1-based line/column positions
 * in every error.
 */

#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace mirage::json {

ParseError::ParseError(int line, int column, const std::string &message)
    : std::runtime_error(std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line), column_(column)
{
}

bool
Value::asBool() const
{
    MIRAGE_ASSERT(kind_ == Kind::Bool, "json value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    MIRAGE_ASSERT(kind_ == Kind::Number, "json value is not a number");
    return num_;
}

int64_t
Value::asInt() const
{
    return int64_t(std::llround(asNumber()));
}

const std::string &
Value::asString() const
{
    MIRAGE_ASSERT(kind_ == Kind::String, "json value is not a string");
    return str_;
}

size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

const Value &
Value::at(size_t i) const
{
    MIRAGE_ASSERT(kind_ == Kind::Array, "json value is not an array");
    MIRAGE_ASSERT(i < arr_.size(), "json array index out of range");
    return arr_[i];
}

void
Value::push(Value v)
{
    MIRAGE_ASSERT(kind_ == Kind::Array, "json value is not an array");
    arr_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    MIRAGE_ASSERT(kind_ == Kind::Object, "json value is not an object");
    return obj_;
}

void
Value::set(const std::string &key, Value v)
{
    MIRAGE_ASSERT(kind_ == Kind::Object, "json value is not an object");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Value &
Value::operator[](const std::string &key) const
{
    const Value *v = find(key);
    MIRAGE_ASSERT(v, "missing json object key '%s'", key.c_str());
    return *v;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral values inside the exactly-representable range print as
    // plain integers (the common case for counts and schema versions).
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest decimal representation that strtod recovers exactly.
    for (int prec = 15; prec <= 17; ++prec) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return "null"; // unreachable: %.17g always round-trips
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    out += '"';
    return out;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(size_t(indent) * (depth + 1), ' ') : "";
    const std::string closePad =
        indent > 0 ? std::string(size_t(indent) * depth, ' ') : "";
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += formatNumber(num_);
        break;
      case Kind::String:
        out += quote(str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += quote(obj_[i].first);
            out += colon;
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent JSON reader with line/column tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    Value
    document()
    {
        Value v = value();
        skipSpace();
        if (pos_ < s_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw ParseError(line_, column(), message);
    }

    int column() const { return int(pos_ - lineStart_) + 1; }

    void
    skipSpace()
    {
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                lineStart_ = pos_;
            } else if (c == ' ' || c == '\t' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= s_.size())
            fail("unexpected end of document");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    Value
    value()
    {
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Value(string());
          case 't': literal("true"); return Value(true);
          case 'f': literal("false"); return Value(false);
          case 'n': literal("null"); return Value();
          default: return number();
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                fail(std::string("expected '") + word + "'");
            ++pos_;
        }
    }

    Value
    number()
    {
        const char *begin = s_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin || !std::isfinite(v))
            fail("expected a value");
        pos_ += size_t(end - begin);
        return Value(v);
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("newline in string literal");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs are not needed for the
                // ASCII-ish artifacts we read; encode the code unit).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xC0 | (code >> 6));
                    out += char(0x80 | (code & 0x3F));
                } else {
                    out += char(0xE0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3F));
                    out += char(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    Value
    array()
    {
        expect('[');
        Value v = Value::array();
        if (consume(']'))
            return v;
        do {
            v.push(value());
        } while (consume(','));
        expect(']');
        return v;
    }

    Value
    object()
    {
        expect('{');
        Value v = Value::object();
        if (consume('}'))
            return v;
        do {
            skipSpace();
            std::string key = string();
            expect(':');
            v.set(key, value());
        } while (consume(','));
        expect('}');
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
    size_t lineStart_ = 0;
    int line_ = 1;
};

} // namespace

Value
parse(const std::string &text)
{
    return JsonParser(text).document();
}

} // namespace mirage::json
