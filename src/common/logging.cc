/**
 * @file
 * Logging implementation: message formatting and the fatal()/panic()
 * exit/abort behavior split.
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mirage {

namespace {

void
vreport(const char *label, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", label);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace mirage
