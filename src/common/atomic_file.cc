#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace mirage {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *error)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        setError(error, "cannot create '" + tmp + "'");
        return false;
    }

    const char *p = content.data();
    size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write to '" + tmp + "' failed");
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        left -= size_t(n);
    }

    // The data must be durable BEFORE the rename publishes the name:
    // otherwise a crash can leave the new name pointing at zero-length
    // or partial data -- exactly the torn state this function exists
    // to rule out.
    if (::fsync(fd) != 0) {
        setError(error, "fsync of '" + tmp + "' failed");
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close of '" + tmp + "' failed");
        ::unlink(tmp.c_str());
        return false;
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename '" + tmp + "' -> '" + path + "' failed");
        ::unlink(tmp.c_str());
        return false;
    }

    // Best-effort directory fsync so the rename itself survives a
    // power cut; failure here is not a torn file, so it is not fatal.
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

} // namespace mirage
