/**
 * @file
 * Exact rational arithmetic on 64-bit numerator/denominator.
 *
 * Used by the polytope kernel to snap facet coefficients derived from
 * floating-point convex hulls onto exact values (in units of pi/4) and to
 * evaluate membership predicates without accumulating rounding error.
 * Intermediate products are computed in __int128; overflow of the reduced
 * representation is a hard error (panic), which in practice never fires for
 * the small coefficients monodromy facets have.
 */

#ifndef MIRAGE_COMMON_RATIONAL_HH
#define MIRAGE_COMMON_RATIONAL_HH

#include <cstdint>
#include <string>

namespace mirage {

/**
 * An exact rational number p/q with q > 0 and gcd(|p|, q) == 1.
 */
class Rational
{
  public:
    Rational() : num_(0), den_(1) {}
    Rational(int64_t value) : num_(value), den_(1) {}
    Rational(int64_t num, int64_t den);

    int64_t num() const { return num_; }
    int64_t den() const { return den_; }

    double toDouble() const { return double(num_) / double(den_); }
    std::string toString() const;

    /**
     * Best rational approximation of x with denominator <= max_den
     * (Stern-Brocot / continued-fraction expansion).
     */
    static Rational approximate(double x, int64_t max_den);

    Rational operator-() const;
    Rational operator+(const Rational &o) const;
    Rational operator-(const Rational &o) const;
    Rational operator*(const Rational &o) const;
    Rational operator/(const Rational &o) const;

    Rational &operator+=(const Rational &o) { return *this = *this + o; }
    Rational &operator-=(const Rational &o) { return *this = *this - o; }
    Rational &operator*=(const Rational &o) { return *this = *this * o; }
    Rational &operator/=(const Rational &o) { return *this = *this / o; }

    bool operator==(const Rational &o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }
    bool operator!=(const Rational &o) const { return !(*this == o); }
    bool operator<(const Rational &o) const;
    bool operator>(const Rational &o) const { return o < *this; }
    bool operator<=(const Rational &o) const { return !(o < *this); }
    bool operator>=(const Rational &o) const { return !(*this < o); }

    bool isZero() const { return num_ == 0; }
    int sign() const { return num_ > 0 ? 1 : (num_ < 0 ? -1 : 0); }
    Rational abs() const { return num_ < 0 ? -*this : *this; }

  private:
    static Rational fromWide(__int128 num, __int128 den);

    int64_t num_;
    int64_t den_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_RATIONAL_HH
