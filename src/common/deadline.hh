/**
 * @file
 * Cooperative per-request deadlines.
 *
 * A Deadline is a cheap copyable token threaded through long-running
 * work (the routing trial grid, the lowering fit loops). The work
 * calls check() at its natural iteration boundaries -- a stall step, a
 * block translation, a fit round -- and the call throws DeadlineError
 * once the budget is exhausted or the token was cancelled. The
 * default-constructed token is inactive: check() is a single pointer
 * test, so unconditional call sites cost nothing for requests without
 * a deadline.
 *
 * Cancellation is cooperative on purpose: work is only ever abandoned
 * at boundaries where no shared state is half-mutated, so a timed-out
 * request unwinds cleanly (exec::parallelFor rethrows the first
 * DeadlineError and skips unclaimed indices) and the server thread
 * that ran it stays healthy.
 *
 * Determinism note: a deadline never alters the content of a result --
 * work either completes (bit-identical to an undeadlined run, since
 * the token feeds no randomness) or errors. This is why serve excludes
 * deadlines from its result-cache key.
 */

#ifndef MIRAGE_COMMON_DEADLINE_HH
#define MIRAGE_COMMON_DEADLINE_HH

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace mirage {

/** Thrown by Deadline::check() when the budget is exhausted. */
class DeadlineError : public std::runtime_error
{
  public:
    explicit DeadlineError(const char *where)
        : std::runtime_error(std::string("deadline exceeded at ") + where)
    {}
    /** Relay constructor: an already-formatted message (e.g. rebuilt
     * on another thread from a RelayedError) -- no prefix is added. */
    explicit DeadlineError(const std::string &message)
        : std::runtime_error(message)
    {}
};

class Deadline
{
  public:
    /** Inactive token: active() is false, check() never throws. */
    Deadline() = default;

    /** A token that expires `ms` milliseconds from now. */
    static Deadline
    afterMs(double ms)
    {
        Deadline d;
        d.state_ = std::make_shared<State>();
        d.state_->expiry =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
        return d;
    }

    bool active() const { return state_ != nullptr; }

    bool
    expired() const
    {
        if (!state_)
            return false;
        return state_->cancelled.load(std::memory_order_relaxed) ||
               Clock::now() >= state_->expiry;
    }

    /**
     * Throw DeadlineError when expired or cancelled; `where` names the
     * checkpoint for the diagnostic. No-op on an inactive token.
     */
    void
    check(const char *where) const
    {
        if (state_ && expired())
            throw DeadlineError(where);
    }

    /** Cooperatively cancel every copy of this token. */
    void
    cancel() const
    {
        if (state_)
            state_->cancelled.store(true, std::memory_order_relaxed);
    }

    /** Milliseconds left (+inf when inactive, <= 0 when expired). */
    double
    remainingMs() const
    {
        if (!state_)
            return std::numeric_limits<double>::infinity();
        if (state_->cancelled.load(std::memory_order_relaxed))
            return 0.0;
        return std::chrono::duration<double, std::milli>(
                   state_->expiry - Clock::now())
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct State
    {
        Clock::time_point expiry;
        std::atomic<bool> cancelled{false};
    };

    std::shared_ptr<State> state_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_DEADLINE_HH
