/**
 * @file
 * Exact-round-trip serialization helpers for the persistent caches.
 *
 * Fitted decompositions are expensive to recompute, so the equivalence
 * library persists them across processes (saveCache/loadCache). The
 * warm-started library must reproduce *bit-identical* output, which
 * rules out decimal floating-point formatting: doubles are written as
 * C99 hexfloats ("%a"), which strtod recovers exactly. A small
 * whitespace-token reader with sticky error state keeps the cache
 * parsers short and makes truncated/corrupt files fail loudly instead
 * of loading garbage.
 */

#ifndef MIRAGE_COMMON_SERIAL_HH
#define MIRAGE_COMMON_SERIAL_HH

#include <cstdint>
#include <istream>
#include <string>

namespace mirage::serial {

/** Format a double as a C99 hexfloat; strtod parses it back exactly. */
std::string encodeDouble(double v);

/**
 * Parse a hexfloat (or any strtod-accepted) token back to a double.
 * Returns false if the token is not fully consumed by strtod or does
 * not represent a finite value.
 */
bool decodeDouble(const std::string &token, double *out);

/**
 * Whitespace-delimited token reader over an istream with sticky
 * failure: after the first failed read every subsequent call reports
 * failure too, so parsers can batch reads and check ok() once.
 */
class TokenReader
{
  public:
    explicit TokenReader(std::istream &in) : in_(in) {}

    bool ok() const { return ok_; }

    /** Next token, or "" on failure. */
    std::string token();

    /** Next token parsed as the requested type (failure is sticky). */
    int64_t i64();
    double f64();

    /** Fail unless the next token equals `expected` exactly. */
    void expect(const std::string &expected);

  private:
    std::istream &in_;
    bool ok_ = true;
};

} // namespace mirage::serial

#endif // MIRAGE_COMMON_SERIAL_HH
