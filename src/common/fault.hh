/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * Production code marks the places where the outside world can fail --
 * a cache load, a socket write, a numerical fit -- with a named
 * injection point:
 *
 *     if (fault::shouldFail("catalog.load")) { ... degrade ... }
 *     fault::maybeThrow("fit.converge");  // throws fault::Injected
 *
 * Points are inert until a schedule is armed (via the MIRAGE_FAULTS
 * environment variable or the --faults CLI flag). When disarmed the
 * check is a single relaxed atomic load, so the hooks cost nothing on
 * the happy path and stay compiled into release builds.
 *
 * A schedule is a comma-separated spec:
 *
 *     seed=42,catalog.load=1/1,serve.read=1/7,queue.admit=#3
 *
 *   - `point=N/D` injects on a pseudo-random N-out-of-D fraction of
 *     calls. The decision for call k is PRF(seed, fnv(point), k), the
 *     same counter-based construction as deriveSeed/StreamRng: a pure
 *     function of (seed, point, per-point call index), independent of
 *     thread interleaving and wall clock, so a chaos run is
 *     bit-reproducible.
 *   - `point=#K` injects exactly on the K-th call (1-based) and never
 *     again -- for pinning one specific failure in a test.
 *
 * Re-arming resets all call counters; disarm() returns the process to
 * the zero-cost state. Per-point call/injection counts are kept for
 * introspection (`stats()`), so harnesses can assert that a schedule
 * actually exercised the kinds it promised.
 */

#ifndef MIRAGE_COMMON_FAULT_HH
#define MIRAGE_COMMON_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mirage {
namespace fault {

/** Thrown by maybeThrow() when the armed schedule fires. */
class Injected : public std::runtime_error
{
  public:
    explicit Injected(const std::string &point)
        : std::runtime_error("injected fault at '" + point + "'"),
          point_(point)
    {}

    const std::string &point() const { return point_; }

  private:
    std::string point_;
};

/**
 * Arm a fault schedule. Throws std::invalid_argument on a malformed
 * spec (and leaves the previous schedule, if any, in place). Re-arming
 * with a new spec resets every per-point counter.
 */
void arm(const std::string &spec);

/** Return to the zero-cost disarmed state (counters are cleared). */
void disarm();

/** True when a schedule is armed. */
bool armed();

/** The spec currently armed ("" when disarmed). */
std::string spec();

/**
 * Record one call at `point` and decide whether it should fail under
 * the armed schedule. Always false when disarmed (one atomic load).
 */
bool shouldFail(const char *point);

/** shouldFail, but throws fault::Injected instead of returning true. */
void maybeThrow(const char *point);

/** Call/injection counts for one point since the last (re-)arm. */
struct PointStats
{
    std::string point;
    uint64_t calls = 0;
    uint64_t injected = 0;
};

/** Per-point stats, sorted by point name (empty when disarmed). */
std::vector<PointStats> stats();

/** Total injections across all points since the last (re-)arm. */
uint64_t injectedCount();

} // namespace fault
} // namespace mirage

#endif // MIRAGE_COMMON_FAULT_HH
