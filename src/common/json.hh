/**
 * @file
 * Minimal JSON value tree, writer, and parser (no third-party deps).
 *
 * Backs the machine-readable artifacts the `mirage` CLI emits (sweep
 * results, transpile reports) and reads back (`mirage report`). Design
 * points: object keys keep insertion order so dumps are deterministic
 * and diffable across runs; numbers round-trip exactly (integral values
 * print as integers, other doubles with the shortest representation
 * that strtod recovers bit-identically); parse errors carry line/column
 * diagnostics so malformed artifacts fail loudly and actionably.
 */

#ifndef MIRAGE_COMMON_JSON_HH
#define MIRAGE_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mirage::json {

/** Malformed-document error with 1-based line/column position. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(int line, int column, const std::string &message);

    int line() const { return line_; }
    int column() const { return column_; }

  private:
    int line_;
    int column_;
};

/**
 * One JSON value: null, bool, number, string, array, or object.
 * Objects preserve key insertion order (deterministic dumps).
 */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(int i) : kind_(Kind::Number), num_(i) {}
    Value(int64_t i) : kind_(Kind::Number), num_(double(i)) {}
    Value(uint64_t i) : kind_(Kind::Number), num_(double(i)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; panic on kind mismatch (internal misuse). */
    bool asBool() const;
    double asNumber() const;
    int64_t asInt() const;
    const std::string &asString() const;

    // --- arrays ------------------------------------------------------------
    size_t size() const;
    const Value &at(size_t i) const;
    /** Append to an array; the value must be an array. */
    void push(Value v);

    // --- objects -----------------------------------------------------------
    const std::vector<std::pair<std::string, Value>> &members() const;
    /** Set (insert or overwrite) a key; the value must be an object. */
    void set(const std::string &key, Value v);
    /** Member lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;
    bool contains(const std::string &key) const { return find(key); }
    /**
     * Member access; panics when absent — use find() for optional keys.
     */
    const Value &operator[](const std::string &key) const;

    /**
     * Serialize. indent > 0 pretty-prints with that many spaces per
     * level and a trailing newline; indent == 0 emits one compact line.
     */
    std::string dump(int indent = 2) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/** Parse a JSON document (throws ParseError on malformed input). */
Value parse(const std::string &text);

/**
 * Format a double exactly: integral values in +/-2^53 print without a
 * fraction, everything else with the shortest digit string strtod
 * parses back bit-identically. NaN/Inf (not representable in JSON)
 * print as null.
 */
std::string formatNumber(double v);

/** Escape and quote a string for embedding in a JSON document. */
std::string quote(const std::string &s);

} // namespace mirage::json

#endif // MIRAGE_COMMON_JSON_HH
