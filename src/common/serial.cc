/**
 * @file
 * Hexfloat encode/decode and the sticky-failure token reader backing
 * the equivalence-library cache files.
 */

#include "common/serial.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mirage::serial {

std::string
encodeDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

bool
decodeDouble(const std::string &token, double *out)
{
    if (token.empty())
        return false;
    const char *begin = token.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    // Reject partial parses and non-finite values: an overflowing
    // hexfloat ("0x1p+99999" -> inf) or a literal "inf"/"nan" token is
    // corruption, not data (no cache field is legitimately non-finite).
    if (end != begin + token.size() || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

std::string
TokenReader::token()
{
    if (!ok_)
        return "";
    std::string t;
    if (!(in_ >> t)) {
        ok_ = false;
        return "";
    }
    return t;
}

int64_t
TokenReader::i64()
{
    std::string t = token();
    if (!ok_)
        return 0;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(t.c_str(), &end, 10);
    if (errno != 0 || end != t.c_str() + t.size()) {
        ok_ = false;
        return 0;
    }
    return int64_t(v);
}

double
TokenReader::f64()
{
    std::string t = token();
    double v = 0;
    if (!ok_)
        return 0;
    if (!decodeDouble(t, &v)) {
        ok_ = false;
        return 0;
    }
    return v;
}

void
TokenReader::expect(const std::string &expected)
{
    if (token() != expected)
        ok_ = false;
}

} // namespace mirage::serial
