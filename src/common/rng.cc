#include "common/rng.hh"

// Rng is header-only today; this translation unit anchors the module so the
// build file stays stable if out-of-line members are added later.

namespace mirage {
} // namespace mirage
