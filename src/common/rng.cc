/**
 * @file
 * Deterministic seeded RNG implementation: std::mt19937_64 wrapper
 * with uniform/index/normal convenience draws.
 */

#include "common/rng.hh"

// Rng is header-only today; this translation unit anchors the module so the
// build file stays stable if out-of-line members are added later.

namespace mirage {
} // namespace mirage
