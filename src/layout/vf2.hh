/**
 * @file
 * VF2-style subgraph monomorphism search.
 *
 * The transpiler pipeline (paper Section V) first checks whether the
 * circuit's interaction graph embeds into the coupling map -- in that case
 * no SWAPs are needed and neither SABRE nor MIRAGE is invoked. This is a
 * non-induced subgraph search: every interaction edge must map onto a
 * coupling edge.
 */

#ifndef MIRAGE_LAYOUT_VF2_HH
#define MIRAGE_LAYOUT_VF2_HH

#include <optional>

#include "circuit/circuit.hh"
#include "layout/layout.hh"
#include "topology/coupling.hh"

namespace mirage::layout {

/** Interaction graph of a circuit: edges between qubit pairs sharing a
 * 2Q gate. */
std::vector<std::pair<int, int>>
interactionEdges(const circuit::Circuit &circuit);

/**
 * Search for a SWAP-free embedding of the circuit's interaction graph into
 * the coupling map. Returns the (full, padded) layout on success, nullopt
 * on failure or when the search exceeds max_states backtracking states.
 */
std::optional<Layout>
findSwapFreeLayout(const circuit::Circuit &circuit,
                   const topology::CouplingMap &coupling,
                   long max_states = 200000);

} // namespace mirage::layout

#endif // MIRAGE_LAYOUT_VF2_HH
