/**
 * @file
 * VF2-style non-induced subgraph monomorphism search used for the
 * SWAP-free layout check of the transpiler pipeline.
 */

#include "layout/vf2.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace mirage::layout {

std::vector<std::pair<int, int>>
interactionEdges(const circuit::Circuit &circuit)
{
    std::vector<std::pair<int, int>> edges;
    for (const auto &g : circuit.gates()) {
        if (g.isBarrier() || g.numQubits() < 2)
            continue;
        for (size_t i = 0; i < g.qubits.size(); ++i) {
            for (size_t j = i + 1; j < g.qubits.size(); ++j) {
                int a = g.qubits[i], b = g.qubits[j];
                if (a > b)
                    std::swap(a, b);
                edges.emplace_back(a, b);
            }
        }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

namespace {

struct Vf2State
{
    const std::vector<std::vector<int>> *ladj; // logical adjacency
    const topology::CouplingMap *coupling;
    std::vector<int> order;    // logical vertices in match order
    std::vector<int> mapping;  // logical -> physical (-1 unset)
    std::vector<bool> used;    // physical used
    long states = 0;
    long max_states = 0;

    bool
    extend(size_t depth)
    {
        if (++states > max_states)
            return false;
        if (depth == order.size())
            return true;
        int l = order[depth];

        // Candidate physicals: neighbors of an already-mapped logical
        // neighbor if one exists, otherwise all free vertices.
        std::vector<int> candidates;
        int anchor = -1;
        for (int nb : (*ladj)[size_t(l)]) {
            if (mapping[size_t(nb)] >= 0) {
                anchor = mapping[size_t(nb)];
                break;
            }
        }
        if (anchor >= 0) {
            auto nbrs = coupling->neighbors(anchor);
            candidates.assign(nbrs.begin(), nbrs.end());
        } else {
            candidates.resize(static_cast<size_t>(coupling->numQubits()));
            std::iota(candidates.begin(), candidates.end(), 0);
        }

        for (int p : candidates) {
            if (used[size_t(p)])
                continue;
            // Degree pruning + consistency with all mapped neighbors.
            if (int((*ladj)[size_t(l)].size()) >
                int(coupling->neighbors(p).size()))
                continue;
            bool ok = true;
            for (int nb : (*ladj)[size_t(l)]) {
                int pm = mapping[size_t(nb)];
                if (pm >= 0 && !coupling->isEdge(p, pm)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue;
            mapping[size_t(l)] = p;
            used[size_t(p)] = true;
            if (extend(depth + 1))
                return true;
            mapping[size_t(l)] = -1;
            used[size_t(p)] = false;
            if (states > max_states)
                return false;
        }
        return false;
    }
};

} // namespace

std::optional<Layout>
findSwapFreeLayout(const circuit::Circuit &circuit,
                   const topology::CouplingMap &coupling,
                   long max_states)
{
    const int nl = circuit.numQubits();
    const int np = coupling.numQubits();
    if (nl > np)
        return std::nullopt;

    auto edges = interactionEdges(circuit);
    std::vector<std::vector<int>> ladj(static_cast<size_t>(nl));
    for (auto [a, b] : edges) {
        ladj[size_t(a)].push_back(b);
        ladj[size_t(b)].push_back(a);
    }

    // Quick reject: a logical vertex needs a physical host of equal or
    // larger degree.
    int max_ldeg = 0;
    for (const auto &nb : ladj)
        max_ldeg = std::max(max_ldeg, int(nb.size()));
    if (max_ldeg > coupling.maxDegree())
        return std::nullopt;

    // Match order: descending degree, then BFS-ish connectivity (vertices
    // adjacent to already-ordered ones first) to keep pruning strong.
    std::vector<int> order(static_cast<size_t>(nl));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return ladj[size_t(x)].size() > ladj[size_t(y)].size();
    });
    std::vector<int> connected_order;
    std::vector<bool> placed(size_t(nl), false);
    for (int seed : order) {
        if (placed[size_t(seed)])
            continue;
        std::vector<int> queue = {seed};
        placed[size_t(seed)] = true;
        for (size_t h = 0; h < queue.size(); ++h) {
            connected_order.push_back(queue[h]);
            for (int nb : ladj[size_t(queue[h])]) {
                if (!placed[size_t(nb)]) {
                    placed[size_t(nb)] = true;
                    queue.push_back(nb);
                }
            }
        }
    }

    Vf2State state;
    state.ladj = &ladj;
    state.coupling = &coupling;
    state.order = connected_order;
    state.mapping.assign(size_t(nl), -1);
    state.used.assign(size_t(np), false);
    state.max_states = max_states;

    if (!state.extend(0))
        return std::nullopt;

    // Pad to a full bijection on physical wires.
    std::vector<int> full(size_t(np), -1);
    for (int l = 0; l < nl; ++l)
        full[size_t(l)] = state.mapping[size_t(l)];
    std::vector<bool> used(size_t(np), false);
    for (int l = 0; l < nl; ++l)
        used[size_t(state.mapping[size_t(l)])] = true;
    int next = 0;
    for (int l = nl; l < np; ++l) {
        while (used[size_t(next)])
            ++next;
        full[size_t(l)] = next;
        used[size_t(next)] = true;
    }
    return Layout(std::move(full));
}

} // namespace mirage::layout
