/**
 * @file
 * Layout implementation: logical<->physical bijection storage, swap
 * updates during routing, and random layout generation.
 */

#include "layout/layout.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace mirage::layout {

Layout::Layout(int n) : l2p_(size_t(n)), p2l_(size_t(n))
{
    std::iota(l2p_.begin(), l2p_.end(), 0);
    std::iota(p2l_.begin(), p2l_.end(), 0);
}

Layout::Layout(std::vector<int> logical_to_physical)
    : l2p_(std::move(logical_to_physical)), p2l_(l2p_.size(), -1)
{
    for (size_t l = 0; l < l2p_.size(); ++l) {
        int p = l2p_[l];
        MIRAGE_ASSERT(p >= 0 && p < int(l2p_.size()), "bad layout entry");
        MIRAGE_ASSERT(p2l_[size_t(p)] < 0, "layout is not a bijection");
        p2l_[size_t(p)] = int(l);
    }
}

void
Layout::swapPhysical(int pa, int pb)
{
    int la = p2l_[size_t(pa)];
    int lb = p2l_[size_t(pb)];
    std::swap(p2l_[size_t(pa)], p2l_[size_t(pb)]);
    l2p_[size_t(la)] = pb;
    l2p_[size_t(lb)] = pa;
}

Layout
Layout::random(int n, Rng &rng)
{
    std::vector<int> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    return Layout(std::move(perm));
}

} // namespace mirage::layout
