/**
 * @file
 * Qubit layouts: bijections between logical circuit qubits and physical
 * device qubits. Logical count may be smaller than physical count; the
 * layout is stored as a full bijection on physical wires with logical
 * qubits occupying the first indices of the logical side.
 */

#ifndef MIRAGE_LAYOUT_LAYOUT_HH
#define MIRAGE_LAYOUT_LAYOUT_HH

#include <vector>

#include "common/rng.hh"

namespace mirage::layout {

/** A logical <-> physical qubit bijection. */
class Layout
{
  public:
    Layout() = default;
    /** Identity layout on n wires. */
    explicit Layout(int n);
    /** From an explicit logical -> physical map (must be a bijection). */
    explicit Layout(std::vector<int> logical_to_physical);

    int size() const { return int(l2p_.size()); }
    int toPhysical(int logical) const { return l2p_[size_t(logical)]; }
    int toLogical(int physical) const { return p2l_[size_t(physical)]; }
    const std::vector<int> &logicalToPhysical() const { return l2p_; }
    const std::vector<int> &physicalToLogical() const { return p2l_; }

    /** Swap the logical qubits residing on two physical wires. */
    void swapPhysical(int pa, int pb);

    /** Uniformly random layout on n wires. */
    static Layout random(int n, Rng &rng);

    bool operator==(const Layout &o) const { return l2p_ == o.l2p_; }

  private:
    std::vector<int> l2p_;
    std::vector<int> p2l_;
};

/**
 * RAII hypothetical swap: applies swapPhysical(pa, pb) to a live layout
 * on construction and undoes it on destruction (a swap is its own
 * inverse). Lets callers score "what if these wires were swapped"
 * questions against the real layout without copying it -- the routing
 * reference scorer uses this instead of the O(n) Layout copy the old
 * hot path paid per candidate.
 */
class ScopedSwap
{
  public:
    ScopedSwap(Layout &layout, int pa, int pb)
        : layout_(layout), pa_(pa), pb_(pb)
    {
        layout_.swapPhysical(pa_, pb_);
    }
    ~ScopedSwap() { layout_.swapPhysical(pa_, pb_); }
    ScopedSwap(const ScopedSwap &) = delete;
    ScopedSwap &operator=(const ScopedSwap &) = delete;

  private:
    Layout &layout_;
    int pa_, pb_;
};

} // namespace mirage::layout

#endif // MIRAGE_LAYOUT_LAYOUT_HH
