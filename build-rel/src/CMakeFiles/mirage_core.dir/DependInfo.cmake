
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_circuits/arithmetic.cc" "src/CMakeFiles/mirage_core.dir/bench_circuits/arithmetic.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/bench_circuits/arithmetic.cc.o.d"
  "/root/repo/src/bench_circuits/generators.cc" "src/CMakeFiles/mirage_core.dir/bench_circuits/generators.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/bench_circuits/generators.cc.o.d"
  "/root/repo/src/bench_circuits/hidden_subgroup.cc" "src/CMakeFiles/mirage_core.dir/bench_circuits/hidden_subgroup.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/bench_circuits/hidden_subgroup.cc.o.d"
  "/root/repo/src/bench_circuits/mirror.cc" "src/CMakeFiles/mirage_core.dir/bench_circuits/mirror.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/bench_circuits/mirror.cc.o.d"
  "/root/repo/src/bench_circuits/qml.cc" "src/CMakeFiles/mirage_core.dir/bench_circuits/qml.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/bench_circuits/qml.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "src/CMakeFiles/mirage_core.dir/circuit/circuit.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/consolidate.cc" "src/CMakeFiles/mirage_core.dir/circuit/consolidate.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/consolidate.cc.o.d"
  "/root/repo/src/circuit/dag.cc" "src/CMakeFiles/mirage_core.dir/circuit/dag.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/dag.cc.o.d"
  "/root/repo/src/circuit/gate.cc" "src/CMakeFiles/mirage_core.dir/circuit/gate.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/gate.cc.o.d"
  "/root/repo/src/circuit/qasm.cc" "src/CMakeFiles/mirage_core.dir/circuit/qasm.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/qasm.cc.o.d"
  "/root/repo/src/circuit/sim.cc" "src/CMakeFiles/mirage_core.dir/circuit/sim.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/sim.cc.o.d"
  "/root/repo/src/circuit/sim_sparse.cc" "src/CMakeFiles/mirage_core.dir/circuit/sim_sparse.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/circuit/sim_sparse.cc.o.d"
  "/root/repo/src/cli/args.cc" "src/CMakeFiles/mirage_core.dir/cli/args.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/cli/args.cc.o.d"
  "/root/repo/src/cli/cli.cc" "src/CMakeFiles/mirage_core.dir/cli/cli.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/cli/cli.cc.o.d"
  "/root/repo/src/cli/experiments.cc" "src/CMakeFiles/mirage_core.dir/cli/experiments.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/cli/experiments.cc.o.d"
  "/root/repo/src/common/exec.cc" "src/CMakeFiles/mirage_core.dir/common/exec.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/exec.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/mirage_core.dir/common/json.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mirage_core.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rational.cc" "src/CMakeFiles/mirage_core.dir/common/rational.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/rational.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mirage_core.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serial.cc" "src/CMakeFiles/mirage_core.dir/common/serial.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/common/serial.cc.o.d"
  "/root/repo/src/decomp/ansatz.cc" "src/CMakeFiles/mirage_core.dir/decomp/ansatz.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/decomp/ansatz.cc.o.d"
  "/root/repo/src/decomp/equivalence.cc" "src/CMakeFiles/mirage_core.dir/decomp/equivalence.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/decomp/equivalence.cc.o.d"
  "/root/repo/src/decomp/numerical.cc" "src/CMakeFiles/mirage_core.dir/decomp/numerical.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/decomp/numerical.cc.o.d"
  "/root/repo/src/decomp/optimize.cc" "src/CMakeFiles/mirage_core.dir/decomp/optimize.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/decomp/optimize.cc.o.d"
  "/root/repo/src/geometry/polytope.cc" "src/CMakeFiles/mirage_core.dir/geometry/polytope.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/geometry/polytope.cc.o.d"
  "/root/repo/src/geometry/quadrature.cc" "src/CMakeFiles/mirage_core.dir/geometry/quadrature.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/geometry/quadrature.cc.o.d"
  "/root/repo/src/layout/layout.cc" "src/CMakeFiles/mirage_core.dir/layout/layout.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/layout/layout.cc.o.d"
  "/root/repo/src/layout/vf2.cc" "src/CMakeFiles/mirage_core.dir/layout/vf2.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/layout/vf2.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/mirage_core.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/expm.cc" "src/CMakeFiles/mirage_core.dir/linalg/expm.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/linalg/expm.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/mirage_core.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/random_unitary.cc" "src/CMakeFiles/mirage_core.dir/linalg/random_unitary.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/linalg/random_unitary.cc.o.d"
  "/root/repo/src/mirage/depth_metric.cc" "src/CMakeFiles/mirage_core.dir/mirage/depth_metric.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/mirage/depth_metric.cc.o.d"
  "/root/repo/src/mirage/pipeline.cc" "src/CMakeFiles/mirage_core.dir/mirage/pipeline.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/mirage/pipeline.cc.o.d"
  "/root/repo/src/monodromy/cost_model.cc" "src/CMakeFiles/mirage_core.dir/monodromy/cost_model.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/monodromy/cost_model.cc.o.d"
  "/root/repo/src/monodromy/coverage.cc" "src/CMakeFiles/mirage_core.dir/monodromy/coverage.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/monodromy/coverage.cc.o.d"
  "/root/repo/src/monodromy/haar_density.cc" "src/CMakeFiles/mirage_core.dir/monodromy/haar_density.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/monodromy/haar_density.cc.o.d"
  "/root/repo/src/monodromy/scores.cc" "src/CMakeFiles/mirage_core.dir/monodromy/scores.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/monodromy/scores.cc.o.d"
  "/root/repo/src/router/sabre.cc" "src/CMakeFiles/mirage_core.dir/router/sabre.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/router/sabre.cc.o.d"
  "/root/repo/src/topology/coupling.cc" "src/CMakeFiles/mirage_core.dir/topology/coupling.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/topology/coupling.cc.o.d"
  "/root/repo/src/weyl/can.cc" "src/CMakeFiles/mirage_core.dir/weyl/can.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/weyl/can.cc.o.d"
  "/root/repo/src/weyl/catalog.cc" "src/CMakeFiles/mirage_core.dir/weyl/catalog.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/weyl/catalog.cc.o.d"
  "/root/repo/src/weyl/coordinates.cc" "src/CMakeFiles/mirage_core.dir/weyl/coordinates.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/weyl/coordinates.cc.o.d"
  "/root/repo/src/weyl/kak.cc" "src/CMakeFiles/mirage_core.dir/weyl/kak.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/weyl/kak.cc.o.d"
  "/root/repo/src/weyl/magic.cc" "src/CMakeFiles/mirage_core.dir/weyl/magic.cc.o" "gcc" "src/CMakeFiles/mirage_core.dir/weyl/magic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
