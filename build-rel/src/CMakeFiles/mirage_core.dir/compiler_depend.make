# Empty compiler generated dependencies file for mirage_core.
# This may be replaced when dependencies are built.
