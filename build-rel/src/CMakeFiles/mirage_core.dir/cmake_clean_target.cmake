file(REMOVE_RECURSE
  "libmirage_core.a"
)
