file(REMOVE_RECURSE
  "CMakeFiles/mirage.dir/mirage_main.cc.o"
  "CMakeFiles/mirage.dir/mirage_main.cc.o.d"
  "mirage"
  "mirage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
