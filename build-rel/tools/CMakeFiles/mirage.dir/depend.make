# Empty dependencies file for mirage.
# This may be replaced when dependencies are built.
