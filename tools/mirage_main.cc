/**
 * @file
 * Entry point of the `mirage` command-line tool. All behavior lives in
 * mirage::cli::run (src/cli), which is also driven in-process by the
 * test suite; this file only adapts argv and the standard streams.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return mirage::cli::run(args, std::cout, std::cerr);
}
