/**
 * @file
 * Edge-case tests for common/json: the artifact format every sweep
 * writes and `mirage report` reads back. Covers deep nesting, escape
 * sequences inside keys, exact round-tripping of subnormal and huge
 * doubles, and ParseError line/column pinning on truncated documents.
 */

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <string>

#include "common/json.hh"

using mirage::json::ParseError;
using mirage::json::Value;
using mirage::json::parse;

namespace {

/** Parse-dump-parse: the second parse must see the identical document. */
Value
reparsed(const Value &v)
{
    return parse(v.dump(0));
}

} // namespace

// ---------------------------------------------------------------------
// Structure edge cases.

TEST(JsonEdge, DeeplyNestedArraysRoundTrip)
{
    const int depth = 100;
    std::string doc;
    for (int i = 0; i < depth; ++i)
        doc += '[';
    doc += "42";
    for (int i = 0; i < depth; ++i)
        doc += ']';

    Value v = parse(doc);
    const Value *p = &v;
    for (int i = 0; i < depth; ++i) {
        ASSERT_TRUE(p->isArray()) << "depth " << i;
        ASSERT_EQ(p->size(), 1u);
        p = &p->at(0);
    }
    EXPECT_EQ(p->asInt(), 42);

    // And the dump of the tree re-parses to the same shape.
    EXPECT_EQ(reparsed(v).dump(0), v.dump(0));
}

TEST(JsonEdge, EscapeSequencesInKeysAndValues)
{
    // Keys get the same escape handling as values -- including \uXXXX.
    Value v = parse(R"({"a\nb": 1, "tab\there": 2, "A\u00e9": 3,)"
                    R"( "q\"uote": "back\\slash"})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v["a\nb"].asInt(), 1);
    EXPECT_EQ(v["tab\there"].asInt(), 2);
    EXPECT_EQ(v["A\xc3\xa9"].asInt(), 3); // é -> UTF-8 C3 A9
    EXPECT_EQ(v["q\"uote"].asString(), "back\\slash");

    // Control characters and quotes survive a dump/parse cycle.
    Value out = Value::object();
    out.set(std::string("k\x01\n\"\\"), Value("v\t\r"));
    Value back = reparsed(out);
    EXPECT_EQ(back[std::string("k\x01\n\"\\")].asString(), "v\t\r");
}

// ---------------------------------------------------------------------
// Number round-tripping: artifacts must not silently lose precision.

TEST(JsonEdge, SubnormalAndHugeDoublesRoundTripExactly)
{
    const double cases[] = {
        5e-324,                  // smallest subnormal
        DBL_MIN,                 // smallest normal
        DBL_MAX,                 // largest finite
        1.0 / 3.0,               // needs 17 significant digits
        0.1,                     // classic non-representable decimal
        -2.2250738585072011e-308 // near-subnormal boundary, negative
    };
    for (double d : cases) {
        Value v = Value::array();
        v.push(Value(d));
        Value back = reparsed(v);
        const double r = back.at(0).asNumber();
        EXPECT_EQ(r, d) << "wanted " << d << " got " << r << " from "
                        << v.dump(0);
    }
}

TEST(JsonEdge, IntegralDoublesPrintAsIntegers)
{
    Value v = Value::array();
    v.push(Value(9007199254740991.0)); // 2^53 - 1: largest exact integer
    v.push(Value(-3.0));
    EXPECT_EQ(v.dump(0), "[9007199254740991,-3]");
    Value back = reparsed(v);
    EXPECT_EQ(back.at(0).asNumber(), 9007199254740991.0);
}

TEST(JsonEdge, NonFiniteNumbersDumpAsNull)
{
    Value v = Value::array();
    v.push(Value(std::nan("")));
    v.push(Value(HUGE_VAL));
    EXPECT_EQ(v.dump(0), "[null,null]");
}

// ---------------------------------------------------------------------
// ParseError diagnostics: a truncated artifact must fail with the line
// and column of the actual problem, not a generic "bad json".

TEST(JsonEdge, TruncatedDocumentPinsLineAndColumn)
{
    // Truncation mid-object on line 3: the parser runs off the end.
    const std::string doc = "{\n  \"rows\": [1, 2],\n  \"summary\": ";
    try {
        parse(doc);
        FAIL() << "truncated document parsed";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_GE(e.column(), int(std::string("  \"summary\": ").size()));
        EXPECT_NE(std::string(e.what()).find("end of document"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonEdge, UnterminatedStringReportsPosition)
{
    try {
        parse("{\"key\": \"runs off");
        FAIL() << "unterminated string parsed";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 1);
        EXPECT_GT(e.column(), 8);
        EXPECT_NE(std::string(e.what()).find("unterminated"),
                  std::string::npos);
    }
}

TEST(JsonEdge, TruncatedUnicodeEscapeReportsPosition)
{
    EXPECT_THROW(parse(R"(["\u00)"), ParseError);
    EXPECT_THROW(parse(R"(["\uZZZZ"])"), ParseError);
}

TEST(JsonEdge, TrailingGarbageRejected)
{
    try {
        parse("{} trailing");
        FAIL() << "trailing characters accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 1);
        EXPECT_NE(std::string(e.what()).find("trailing"),
                  std::string::npos);
    }
}

TEST(JsonEdge, NewlineInsideStringLiteralRejected)
{
    EXPECT_THROW(parse("[\"line\nbreak\"]"), ParseError);
}
