/**
 * @file
 * Tests for the sparse simulator and the mirror-circuit bitstring
 * oracle, including the NEGATIVE direction: a doctored pipeline that
 * drops a routing SWAP or corrupts a single-qubit gate must be caught.
 * An oracle that cannot fail is not an oracle.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "bench_circuits/mirror.hh"
#include "circuit/circuit.hh"
#include "circuit/sim.hh"
#include "circuit/sim_sparse.hh"
#include "common/rng.hh"
#include "mirage/pipeline.hh"
#include "support/bitstring_oracle.hh"
#include "topology/coupling.hh"

using namespace mirage;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::SparseState;
using circuit::StateVector;
using testsupport::bitstringRecovered;
using topology::CouplingMap;

namespace {

/** Identity layout on n qubits (logical q on wire q). */
std::vector<int>
identityLayout(int n)
{
    std::vector<int> l(static_cast<size_t>(n));
    for (int q = 0; q < n; ++q)
        l[size_t(q)] = q;
    return l;
}

/** A non-Clifford scramble touching every pair, for sim comparisons. */
Circuit
scramble(int n, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n, "scramble");
    for (int layer = 0; layer < 3; ++layer) {
        for (int q = 0; q < n; ++q) {
            c.rx(rng.uniform() * 3.0, q);
            c.rz(rng.uniform() * 3.0, q);
        }
        for (int q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
        c.cp(rng.uniform(), 0, n - 1);
    }
    return c;
}

} // namespace

// ---------------------------------------------------------------------
// SparseState agrees with the dense simulator.

TEST(SparseSim, MatchesDenseOnNonCliffordCircuit)
{
    const int n = 5;
    Circuit c = scramble(n, 0xD15E);

    StateVector dense(n);
    dense.applyCircuit(c);
    SparseState sparse(n);
    sparse.applyCircuit(c);

    EXPECT_NEAR(sparse.norm(), 1.0, 1e-9);
    for (uint64_t i = 0; i < (uint64_t(1) << n); ++i) {
        EXPECT_NEAR(std::abs(sparse.amplitude(i) - dense.amplitudes()[i]),
                    0.0, 1e-9)
            << "basis index " << i;
    }
}

TEST(SparseSim, MatchesDenseOnThreeQubitGates)
{
    const int n = 4;
    Circuit c(n, "ccx_cswap");
    c.h(0);
    c.h(1);
    c.ccx(0, 1, 2);
    c.t(2);
    c.cswap(2, 0, 3);
    c.h(3);

    StateVector dense(n);
    dense.applyCircuit(c);
    SparseState sparse(n);
    sparse.applyCircuit(c);

    for (uint64_t i = 0; i < (uint64_t(1) << n); ++i) {
        EXPECT_NEAR(std::abs(sparse.amplitude(i) - dense.amplitudes()[i]),
                    0.0, 1e-9)
            << "basis index " << i;
    }
}

TEST(SparseSim, SupportStaysSmallOnWideDevice)
{
    // A 3-qubit GHZ living on a 57-wire device: the dense simulator
    // cannot even allocate this, the sparse one stores 2 amplitudes.
    const int n = 57;
    Circuit c(n, "wide_ghz");
    c.h(10);
    c.cx(10, 30);
    c.cx(30, 56);
    // Idle-wire permutations must not grow the support.
    c.swap(0, 56);
    c.swap(5, 41);

    SparseState psi(n);
    psi.applyCircuit(c);
    EXPECT_EQ(psi.support(), 2u);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
    const uint64_t ones =
        (uint64_t(1) << 10) | (uint64_t(1) << 30) | (uint64_t(1) << 0);
    EXPECT_NEAR(psi.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(psi.probability(ones), 0.5, 1e-12);
}

TEST(SparseSim, PruningDropsNumericalDust)
{
    const int n = 2;
    SparseState psi(n);
    psi.setPruneThreshold(1e-6);
    // An RX by 2e-8 leaves a ~1e-8 cross amplitude: below threshold.
    psi.applyCircuit([&] {
        Circuit c(n, "dust");
        c.rx(2e-8, 0);
        return c;
    }());
    EXPECT_EQ(psi.support(), 1u);
    EXPECT_NEAR(psi.probability(0), 1.0, 1e-12);
}

TEST(SparseSim, RejectsOutOfRangeWidths)
{
    EXPECT_DEATH(SparseState(0), "");
    EXPECT_DEATH(SparseState(63), "");
}

// ---------------------------------------------------------------------
// The oracle's positive direction: a hand-built mirror circuit whose
// bitstring is known by construction, no generator involved.

TEST(BitstringOracle, HandBuiltThreeQubitMirrorPasses)
{
    // C = H(0), CX(0,1), CX(1,2); twist = X(1); then C^-1.
    // C^dag X1 C = X1 X2 (CX(1,2) copies X; CX(0,1) and H(0) act
    // trivially on a string supported off their control/target pattern),
    // so the output is |0,1,1> -- index 6 in little-endian bit order.
    Circuit c(3, "hand_mirror");
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.x(1);
    c.cx(1, 2);
    c.cx(0, 1);
    c.h(0);

    SparseState psi(3);
    psi.applyCircuit(c);
    EXPECT_NEAR(psi.probability(0b110), 1.0, 1e-12);

    EXPECT_TRUE(bitstringRecovered(c, layout::Layout(3),
                                   std::vector<int>{0, 1, 1}));
}

TEST(BitstringOracle, WrongBitstringFails)
{
    Circuit c(3, "hand_mirror");
    c.h(0);
    c.cx(0, 1);
    c.x(1);
    c.cx(0, 1);
    c.h(0);
    // Correct output is |0,1,0>; claim |0,0,0| and expect rejection.
    EXPECT_FALSE(bitstringRecovered(c, layout::Layout(3),
                                    std::vector<int>{0, 0, 0}));
    EXPECT_TRUE(bitstringRecovered(c, layout::Layout(3),
                                   std::vector<int>{0, 1, 0}));
}

// ---------------------------------------------------------------------
// The oracle's negative direction: doctored pipelines must be CAUGHT.

TEST(BitstringOracle, DroppedRoutingSwapIsCaught)
{
    auto mc = bench::mirrorQv(8, 3, 0xBADD);
    auto grid = CouplingMap::grid(3, 3);

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::SabreBaseline;
    opts.tryVf2 = false;
    opts.seed = 0x5EED;
    auto res = mirage_pass::transpile(mc.circuit, grid, opts);
    ASSERT_GT(res.swapsAdded, 0);

    // The honest routed circuit passes.
    EXPECT_TRUE(bitstringRecovered(res.routed, res.final, mc.bitstring));

    // Drop the first routing SWAP: every later gate touching those wires
    // acts on the wrong qubits, so the ideal bitstring's probability
    // collapses toward the 2^-8 background of a scrambled state.
    Circuit doctored = res.routed;
    auto &gates = doctored.gates();
    bool dropped = false;
    for (size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].kind == GateKind::SWAP) {
            gates.erase(gates.begin() + long(i));
            dropped = true;
            break;
        }
    }
    ASSERT_TRUE(dropped) << "routed circuit reported SWAPs but has none";

    const double p = bench::mirrorSuccessProbability(
        doctored, res.final.logicalToPhysical(), mc.bitstring);
    EXPECT_LT(p, 0.5) << "oracle failed to notice a missing SWAP";
    EXPECT_FALSE(bitstringRecovered(doctored, res.final, mc.bitstring,
                                    testsupport::loweringSuccessTolerance(
                                        1e-3)));
}

TEST(BitstringOracle, CorruptedGatesAreCaught)
{
    auto mc = bench::mirrorQv(7, 3, 0xC0DE);
    auto line = CouplingMap::line(7);

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    auto res = mirage_pass::transpile(mc.circuit, line, opts);
    EXPECT_TRUE(bitstringRecovered(res.routed, res.final, mc.bitstring));

    // Inject a stray X on a measured wire: the target bit flips, so
    // the ideal bitstring's probability falls to exactly 0. (Note a
    // corruption can be outcome-invisible -- e.g. swapping two
    // commuting Cliffords -- so the oracle certifies measurement
    // statistics, not the full unitary; these are corruptions that DO
    // move the outcome and therefore must trip the check.)
    Circuit stray_x = res.routed;
    stray_x.x(res.final.toPhysical(0));
    EXPECT_FALSE(bitstringRecovered(stray_x, res.final, mc.bitstring));

    // Dagger one SU(4) block mid-circuit: a subtle non-Clifford
    // corruption no gate-count or depth metric would notice.
    Circuit daggered = res.routed;
    for (auto &g : daggered.gates()) {
        if (g.kind == GateKind::Unitary2Q) {
            g = circuit::makeUnitary2(g.qubits[0], g.qubits[1],
                                      g.matrix4().dagger());
            break;
        }
    }
    EXPECT_FALSE(bitstringRecovered(daggered, res.final, mc.bitstring));
}

// ---------------------------------------------------------------------
// Success-probability bookkeeping through a non-identity final layout.

TEST(BitstringOracle, HonorsFinalLayoutPermutation)
{
    // Prepare |1> on logical qubit 0, then SWAP it to wire 2. With the
    // final layout recording 0 -> 2, the oracle must look at wire 2.
    Circuit c(3, "swapped");
    c.x(0);
    c.swap(0, 2);

    std::vector<int> l2p = {2, 1, 0};
    const double p = bench::mirrorSuccessProbability(
        c, l2p, std::vector<int>{1, 0, 0});
    EXPECT_NEAR(p, 1.0, 1e-12);

    // With the identity layout (looking at wire 0) it must fail.
    const double wrong = bench::mirrorSuccessProbability(
        c, identityLayout(3), std::vector<int>{1, 0, 0});
    EXPECT_NEAR(wrong, 0.0, 1e-12);
}
