/**
 * @file
 * Tests for the benchmark circuit generators: Table III inventory
 * integrity, functional spot checks via simulation, and parameterized
 * structural sweeps.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "circuit/sim.hh"
#include "mirage/pipeline.hh"

using namespace mirage;
using namespace mirage::bench;
using circuit::StateVector;

class PaperBenchmarks : public ::testing::TestWithParam<int>
{
};

TEST_P(PaperBenchmarks, MatchesInventory)
{
    const BenchmarkInfo &info = paperBenchmarks()[size_t(GetParam())];
    Circuit c = info.make();
    EXPECT_EQ(c.numQubits(), info.qubits) << info.name;
    EXPECT_GT(c.twoQubitGateCount(), 0) << info.name;
    // The CX-equivalent count stays within ~50% of the paper's Table III
    // value (exact for the MQTBench-derived entries, looser for the
    // QASMBench families that count native gates).
    double ratio = double(cxEquivalentCount(c)) / info.paperTwoQ;
    EXPECT_GT(ratio, 0.55) << info.name;
    EXPECT_LT(ratio, 1.55) << info.name;
}

TEST_P(PaperBenchmarks, UnrollsAndConsolidates)
{
    const BenchmarkInfo &info = paperBenchmarks()[size_t(GetParam())];
    Circuit c = mirage_pass::unrollThreeQubit(info.make());
    for (const auto &g : c.gates())
        EXPECT_LE(g.numQubits(), 2) << info.name;
    Circuit merged = circuit::consolidateBlocks(c);
    EXPECT_LE(merged.twoQubitGateCount(), c.twoQubitGateCount())
        << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, PaperBenchmarks,
    ::testing::Range(0, int(paperBenchmarks().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name = paperBenchmarks()[size_t(info.param)].name;
        for (auto &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(Generators, GhzStateIsCorrect)
{
    StateVector sv(4);
    sv.applyCircuit(ghz(4));
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0 / std::sqrt(2.0), 1e-10);
    EXPECT_NEAR(std::abs(sv.amplitudes()[15]), 1.0 / std::sqrt(2.0),
                1e-10);
}

TEST(Generators, WStateHasUniformSingleExcitation)
{
    const int n = 5;
    StateVector sv(n);
    sv.applyCircuit(wstate(n));
    double expect = 1.0 / std::sqrt(double(n));
    for (int q = 0; q < n; ++q) {
        size_t idx = size_t(1) << q;
        EXPECT_NEAR(std::abs(sv.amplitudes()[idx]), expect, 1e-9)
            << "qubit " << q;
    }
    // No amplitude outside the single-excitation subspace.
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 0.0, 1e-9);
}

TEST(Generators, BernsteinVaziraniRecoversSecret)
{
    const int n = 7, ones = 4;
    StateVector sv(n);
    sv.applyCircuit(bernsteinVazirani(n, ones));
    // Data qubits end in |secret>; the target stays in |->.
    size_t secret = (size_t(1) << ones) - 1;
    double p0 = std::norm(sv.amplitudes()[secret]);
    double p1 = std::norm(sv.amplitudes()[secret | (size_t(1) << (n - 1))]);
    EXPECT_NEAR(p0 + p1, 1.0, 1e-9);
}

TEST(Generators, QftMatchesDft)
{
    // QFT of |x> has amplitudes exp(2 pi i x y / N) / sqrt(N) -- check a
    // basis input on 4 qubits against the closed form, accounting for
    // the bit-reversal convention of the generator.
    const int n = 4;
    const size_t dim = 16;
    const size_t x = 5;
    StateVector sv(n);
    sv.amplitudes().assign(dim, 0);
    sv.amplitudes()[x] = 1;
    sv.applyCircuit(qft(n, true));

    for (size_t y = 0; y < dim; ++y) {
        auto expect = std::polar(1.0 / 4.0,
                                 2.0 * linalg::kPi * double(x * y) / 16.0);
        EXPECT_NEAR(std::abs(sv.amplitudes()[y] - expect), 0.0, 1e-9)
            << "y=" << y;
    }
}

TEST(Generators, QftInverseRoundTrip)
{
    // qpeExact embeds an inverse QFT; sanity-check the building block by
    // applying qft then its reverse structure via simulation overlap.
    Rng rng(3);
    StateVector a(5);
    a.randomize(rng);
    StateVector b = a;
    Circuit fwd = qft(5, true);
    b.applyCircuit(fwd);
    // Undo by applying the adjoint: simulate the reversed gate list with
    // negated parameters.
    Circuit rev(5);
    auto gates = fwd.gates();
    for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
        circuit::Gate g = *it;
        if (g.kind == circuit::GateKind::CP)
            g.params[0] = -g.params[0];
        rev.append(g);
    }
    b.applyCircuit(rev);
    EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-9);
}

TEST(Generators, BigadderComputesSum)
{
    // 3-bit CDKM adder instance (n = 8): verify a | b -> a | a+b on a
    // computational input. Use fresh inputs (strip the generator's
    // built-in state preparation X gates first).
    Circuit raw = bigadder(8);
    Circuit adder(8);
    size_t skip = 0;
    // Generator prepends X gates for a demo input; skip leading X's.
    const auto &gs = raw.gates();
    while (skip < gs.size() && gs[skip].kind == circuit::GateKind::X)
        ++skip;
    for (size_t i = skip; i < gs.size(); ++i)
        adder.append(gs[i]);

    const int w = 3;
    auto encode = [&](unsigned a, unsigned b) {
        StateVector sv(8);
        sv.amplitudes().assign(sv.amplitudes().size(), 0);
        size_t idx = 0;
        for (int i = 0; i < w; ++i) {
            if (a & (1u << i))
                idx |= size_t(1) << (1 + i);
            if (b & (1u << i))
                idx |= size_t(1) << (1 + w + i);
        }
        sv.amplitudes()[idx] = 1;
        return sv;
    };
    for (auto [a, b] : {std::pair<unsigned, unsigned>{3, 5},
                        {7, 1}, {2, 2}, {0, 6}}) {
        StateVector sv = encode(a, b);
        sv.applyCircuit(adder);
        // Find the basis state with unit amplitude.
        size_t hot = 0;
        for (size_t i = 0; i < sv.amplitudes().size(); ++i) {
            if (std::norm(sv.amplitudes()[i]) > 0.5)
                hot = i;
        }
        unsigned sum = 0;
        for (int i = 0; i < w; ++i) {
            if (hot & (size_t(1) << (1 + w + i)))
                sum |= 1u << i;
        }
        unsigned carry = (hot >> (1 + 2 * w)) & 1u;
        EXPECT_EQ(sum | (carry << w), a + b) << a << "+" << b;
    }
}

TEST(Generators, PortfolioQaoaLayerStructure)
{
    Circuit c = portfolioQaoa(8, 2, 3);
    // Two layers of complete-graph RZZ: 2 * C(8,2) = 56.
    EXPECT_EQ(c.countKind(circuit::GateKind::RZZ), 56);
    EXPECT_EQ(cxEquivalentCount(c), 112);
}

TEST(Generators, SwapTestInterferenceOnEqualStates)
{
    // Swap test on two identical single-qubit registers: the ancilla
    // must return |0> with probability 1.
    Circuit c(3);
    c.ry(0.7, 1);
    c.ry(0.7, 2);
    c.h(0);
    c.cswap(0, 1, 2);
    c.h(0);
    StateVector sv(3);
    sv.applyCircuit(c);
    double p1 = 0;
    for (size_t i = 0; i < sv.amplitudes().size(); ++i) {
        if (i & 1)
            p1 += std::norm(sv.amplitudes()[i]);
    }
    EXPECT_NEAR(p1, 0.0, 1e-10);
}

TEST(Generators, UnknownBenchmarkNameThrowsTyped)
{
    // Benchmark names can arrive as request/CLI data, so the lookup
    // must throw a catchable exception, never call fatal().
    EXPECT_THROW(bench::benchmarkByName("no_such_bench_n0"),
                 std::invalid_argument);
    EXPECT_NO_THROW(bench::benchmarkByName(
        bench::paperBenchmarks().front().name));
}
