/**
 * @file
 * Scoring-equivalence and hot-path regression tests for the router.
 *
 * The optimized routing path (flat distance table, scratch arena,
 * incremental delta scoring -- ScoreMode::Delta) must produce
 * bit-identical swap and mirror choices to the allocation-heavy
 * reference scorer (ScoreMode::Naive, a runtime hook rather than an
 * #ifdef). Both modes feed exact integer distance sums through one
 * shared combiner, so equality is exact, not approximate; these tests
 * enforce it over the whole Table III suite, every aggression level,
 * and two production topologies, plus the multi-trial flow across
 * thread counts.
 */

#include <gtest/gtest.h>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "layout/layout.hh"
#include "mirage/pipeline.hh"
#include "monodromy/cost_model.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

using namespace mirage;
using namespace mirage::router;
using circuit::Circuit;
using topology::CouplingMap;

namespace {

// TSan slows routing ~10x; cover a representative slice there and the
// full suite everywhere else.
#if defined(__SANITIZE_THREAD__)
constexpr size_t kSuiteLimit = 4;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr size_t kSuiteLimit = 4;
#else
constexpr size_t kSuiteLimit = size_t(-1);
#endif
#else
constexpr size_t kSuiteLimit = size_t(-1);
#endif

/** Full bit-identity of two route results, counters included. */
void
expectSameRoute(const RouteResult &a, const RouteResult &b,
                const std::string &what)
{
    EXPECT_TRUE(Circuit::bitIdentical(a.routed, b.routed)) << what;
    EXPECT_TRUE(a.initial == b.initial) << what;
    EXPECT_TRUE(a.final == b.final) << what;
    EXPECT_EQ(a.swapsAdded, b.swapsAdded) << what;
    EXPECT_EQ(a.mirrorsAccepted, b.mirrorsAccepted) << what;
    EXPECT_EQ(a.mirrorCandidates, b.mirrorCandidates) << what;
    EXPECT_EQ(a.estDepth, b.estDepth) << what;
    EXPECT_EQ(a.estTotalCost, b.estTotalCost) << what;
    EXPECT_TRUE(a.counters == b.counters) << what;
}

} // namespace

TEST(ScoringEquivalence, TableThreeSuiteAllAggressionsBothTopologies)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    const auto &suite = bench::paperBenchmarks();
    const size_t limit = std::min(kSuiteLimit, suite.size());
    std::vector<CouplingMap> topologies = {CouplingMap::grid(6, 6),
                                           CouplingMap::heavyHex57()};

    for (size_t i = 0; i < limit; ++i) {
        Circuit consolidated = circuit::consolidateBlocks(
            mirage_pass::unrollThreeQubit(suite[i].make()));
        for (const auto &topo : topologies) {
            Rng lay_rng(1000 + uint64_t(i));
            auto init =
                layout::Layout::random(topo.numQubits(), lay_rng);
            for (Aggression a :
                 {Aggression::None, Aggression::Lower, Aggression::Equal,
                  Aggression::Always}) {
                PassOptions opts;
                opts.aggression = a;
                opts.costModel = &cost;
                opts.seed = 42 + uint64_t(i);

                opts.scoreMode = ScoreMode::Delta;
                RouteResult fast =
                    routePass(consolidated, topo, init, opts);
                opts.scoreMode = ScoreMode::Naive;
                RouteResult ref =
                    routePass(consolidated, topo, init, opts);

                expectSameRoute(fast, ref,
                                suite[i].name + " on " + topo.name() +
                                    " aggression " +
                                    std::to_string(int(a)));
            }
        }
    }
}

TEST(ScoringEquivalence, TrialFlowMatchesAcrossModesAndThreads)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::qft(12, true));
    auto grid = CouplingMap::grid(4, 4);

    TrialOptions opts;
    opts.layoutTrials = 4;
    opts.swapTrials = 2;
    opts.postSelect = PostSelect::Depth;
    opts.trialAggression = mirageAggressionMix(opts.layoutTrials);
    opts.pass.costModel = &cost;
    opts.seed = 4242;

    std::vector<RouteResult> results;
    for (ScoreMode mode : {ScoreMode::Delta, ScoreMode::Naive}) {
        for (int threads : {1, 4}) {
            opts.pass.scoreMode = mode;
            opts.threads = threads;
            results.push_back(routeWithTrials(circ, grid, opts));
        }
    }
    for (size_t i = 1; i < results.size(); ++i)
        expectSameRoute(results[0], results[i],
                        "mode/thread combination " + std::to_string(i));
}

TEST(ScoringEquivalence, CountersTrackRealWork)
{
    // The counters feeding the perf trajectory must be non-trivial and
    // self-consistent: every stall scores at least one candidate, the
    // extended-set cache fires on congested circuits, and mirror
    // outlooks appear exactly when aggression allows them.
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::qft(10, true));
    auto line = CouplingMap::line(10);

    PassOptions opts;
    opts.costModel = &cost;
    RouteResult sabre = routePass(circ, line, layout::Layout(10), opts);
    EXPECT_GT(sabre.counters.stallSteps, 0u);
    EXPECT_GE(sabre.counters.heuristicEvals,
              sabre.counters.stallSteps);
    EXPECT_EQ(sabre.counters.swapCandidates,
              sabre.counters.heuristicEvals);
    EXPECT_GT(sabre.counters.extSetReuses, 0u);
    EXPECT_EQ(sabre.counters.mirrorOutlooks, 0u);
    EXPECT_EQ(uint64_t(sabre.swapsAdded), sabre.counters.stallSteps);

    opts.aggression = Aggression::Equal;
    RouteResult mir = routePass(circ, line, layout::Layout(10), opts);
    EXPECT_EQ(mir.counters.mirrorOutlooks,
              uint64_t(mir.mirrorCandidates));
    EXPECT_EQ(mir.counters.heuristicEvals,
              mir.counters.swapCandidates +
                  2 * mir.counters.mirrorOutlooks);
}

TEST(ScoringEquivalence, TrialCountersAggregateDeterministically)
{
    // routeWithTrials reports the routing work of the WHOLE grid; the
    // sum must be identical for every thread count.
    auto circ = bench::qft(8, true);
    auto grid = CouplingMap::grid(3, 3);
    TrialOptions opts;
    opts.layoutTrials = 3;
    opts.swapTrials = 2;
    opts.seed = 99;

    opts.threads = 1;
    RouteResult serial = routeWithTrials(circ, grid, opts);
    opts.threads = 4;
    RouteResult parallel = routeWithTrials(circ, grid, opts);
    EXPECT_TRUE(serial.counters == parallel.counters);
    EXPECT_GT(serial.counters.stallSteps, 0u);
    // The grid ran more passes than the winning one alone.
    EXPECT_GT(serial.counters.stallSteps,
              uint64_t(serial.swapsAdded));
}

TEST(ScopedSwapTest, AppliesAndRestores)
{
    layout::Layout layout(5);
    layout.swapPhysical(0, 3);
    const layout::Layout before = layout;
    {
        layout::ScopedSwap guard(layout, 1, 4);
        EXPECT_EQ(layout.toLogical(1), before.toLogical(4));
        EXPECT_EQ(layout.toLogical(4), before.toLogical(1));
        EXPECT_FALSE(layout == before);
    }
    EXPECT_TRUE(layout == before);
}
