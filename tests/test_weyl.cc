/**
 * @file
 * Tests for Weyl coordinates, canonicalization, the mirror transform
 * (paper Eq. 1), and the KAK decomposition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "linalg/random_unitary.hh"
#include "weyl/can.hh"
#include "weyl/catalog.hh"
#include "weyl/coordinates.hh"
#include "weyl/kak.hh"
#include "weyl/magic.hh"

using namespace mirage;
using namespace mirage::weyl;
using linalg::Complex;
using linalg::kPi;

namespace {

constexpr double kPi4 = kPi / 4.0;
constexpr double kPi8 = kPi / 8.0;

} // namespace

TEST(Magic, BasisIsUnitary)
{
    EXPECT_TRUE(magicBasis().isUnitary(1e-12));
}

TEST(Magic, CanIsDiagonalInMagicBasis)
{
    Mat4 can = canonicalGate(0.3, 0.2, 0.1);
    Mat4 m = toMagic(can);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i != j) {
                EXPECT_NEAR(std::abs(m(i, j)), 0.0, 1e-12);
            }
        }
    }
    auto d = canMagicAngles(0.3, 0.2, 0.1);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(m(i, i) - std::polar(1.0, d[size_t(i)])), 0.0,
                    1e-12);
}

TEST(Can, ReproducesNamedGates)
{
    // CAN(pi/4, pi/4, 0) is exactly iSWAP.
    EXPECT_LT(canonicalGate(kPi4, kPi4, 0).distance(gateISWAP()), 1e-12);
    // CAN(pi/4, pi/4, pi/4) is SWAP up to global phase.
    Mat4 sw = canonicalGate(kPi4, kPi4, kPi4);
    Complex t = (sw.dagger() * gateSWAP()).trace();
    Mat4 aligned = sw * (t / std::abs(t));
    EXPECT_LT(aligned.distance(gateSWAP()), 1e-12);
}

TEST(Coordinates, NamedGates)
{
    EXPECT_TRUE(weylCoordinates(gateCX()).closeTo(coordCNOT()));
    EXPECT_TRUE(weylCoordinates(gateCZ()).closeTo(coordCNOT()));
    EXPECT_TRUE(weylCoordinates(gateISWAP()).closeTo(coordISWAP()));
    EXPECT_TRUE(weylCoordinates(gateSWAP()).closeTo(coordSWAP()));
    EXPECT_TRUE(weylCoordinates(gateRootISWAP(2))
                    .closeTo(coordRootISWAP(2)));
    EXPECT_TRUE(weylCoordinates(gateRootISWAP(4))
                    .closeTo(coordRootISWAP(4)));
    EXPECT_TRUE(weylCoordinates(gateB()).closeTo(coordB()));
    EXPECT_TRUE(weylCoordinates(Mat4::identity()).closeTo(coordIdentity()));
    // CNS is locally an iSWAP (paper Fig. 1b).
    EXPECT_TRUE(weylCoordinates(gateCNS()).closeTo(coordISWAP()));
}

TEST(Coordinates, CPhaseFamily)
{
    for (double phi : {0.2, 0.7, 1.3, 2.0, 2.9}) {
        Coord c = weylCoordinates(gateCP(phi));
        EXPECT_TRUE(c.closeTo(coordCP(phi), 1e-8))
            << "phi=" << phi << " got " << c.toString();
        EXPECT_NEAR(c.a, phi / 4.0, 1e-8);
    }
    // Beyond pi the class folds back: CP(3pi/2) ~ CP(pi/2).
    Coord folded = weylCoordinates(gateCP(3.0 * kPi / 2.0));
    EXPECT_NEAR(folded.a, kPi8, 1e-8);
}

TEST(Coordinates, RoundTripThroughCan)
{
    Rng rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        // Sample a point in the alcove by rejection.
        double a, b, c;
        while (true) {
            a = rng.uniform(0, kPi / 2);
            b = rng.uniform(0, kPi / 2);
            c = rng.uniform(0, kPi / 2);
            if (a >= b && b >= c && a + b <= kPi / 2)
                break;
        }
        Coord in{a, b, c};
        // Avoid the c == 0 face double representation in this test.
        if (in.c < 1e-3)
            continue;
        Mat4 u = canonicalGate(in.a, in.b, in.c);
        Coord out = weylCoordinates(u);
        EXPECT_TRUE(out.closeTo(in, 1e-7))
            << "in " << in.toString() << " out " << out.toString();
    }
}

TEST(Coordinates, LocalInvariance)
{
    Rng rng(202);
    for (int trial = 0; trial < 100; ++trial) {
        Mat4 u = linalg::randomSU4(rng);
        Coord base = weylCoordinates(u);
        Mat4 dressed = linalg::randomLocal4(rng) * u *
                       linalg::randomLocal4(rng);
        Coord c = weylCoordinates(dressed);
        EXPECT_TRUE(c.closeTo(base, 1e-7))
            << base.toString() << " vs " << c.toString();
    }
}

TEST(Coordinates, AlcoveMembership)
{
    Rng rng(303);
    for (int trial = 0; trial < 200; ++trial) {
        Coord c = weylCoordinates(linalg::randomSU4(rng));
        EXPECT_TRUE(inAlcove(c)) << c.toString();
    }
}

TEST(Mirror, KnownPairs)
{
    // mirror(CNOT) = iSWAP; mirror(iSWAP) = CNOT; mirror(I) = SWAP.
    EXPECT_TRUE(mirrorCoord(coordCNOT()).closeTo(coordISWAP()));
    EXPECT_TRUE(mirrorCoord(coordISWAP()).closeTo(coordCNOT()));
    EXPECT_TRUE(mirrorCoord(coordIdentity()).closeTo(coordSWAP()));
    EXPECT_TRUE(mirrorCoord(coordSWAP()).closeTo(coordIdentity()));
}

TEST(Mirror, MatchesMatrixComposition)
{
    // Property: coords(U * SWAP_matrix) == mirrorCoord(coords(U)).
    Rng rng(404);
    for (int trial = 0; trial < 200; ++trial) {
        Mat4 u = linalg::randomSU4(rng);
        Coord direct = weylCoordinates(gateSWAP() * u);
        Coord via = mirrorCoord(weylCoordinates(u));
        EXPECT_TRUE(direct.closeTo(via, 1e-7))
            << direct.toString() << " vs " << via.toString();
    }
}

TEST(Mirror, IsInvolution)
{
    Rng rng(505);
    for (int trial = 0; trial < 200; ++trial) {
        Coord c = weylCoordinates(linalg::randomSU4(rng));
        Coord back = mirrorCoord(mirrorCoord(c));
        EXPECT_TRUE(back.closeTo(c, 1e-9))
            << c.toString() << " vs " << back.toString();
    }
}

TEST(Mirror, CPhaseToPswap)
{
    // Paper Fig. 6: the CPHASE family mirrors into the parametric-SWAP
    // family: mirror(phi/4, 0, 0) = (pi/4, pi/4, pi/4 - phi/4).
    for (double phi : {0.3, 0.9, 1.7, 2.6}) {
        Coord m = mirrorCoord(coordCP(phi));
        EXPECT_NEAR(m.a, kPi4, 1e-10);
        EXPECT_NEAR(m.b, kPi4, 1e-10);
        EXPECT_NEAR(m.c, kPi4 - phi / 4.0, 1e-10);
        // And it matches the pSWAP matrix itself.
        Coord mat = weylCoordinates(gatePSWAP(phi));
        EXPECT_TRUE(mat.closeTo(m, 1e-8));
    }
}

TEST(Canonicalize, FoldsIntoAlcove)
{
    Rng rng(606);
    for (int trial = 0; trial < 500; ++trial) {
        double a = rng.uniform(-3.0, 3.0);
        double b = rng.uniform(-3.0, 3.0);
        double c = rng.uniform(-3.0, 3.0);
        Coord f = canonicalize(a, b, c);
        EXPECT_TRUE(inAlcove(f)) << f.toString();
    }
}

TEST(Canonicalize, ZeroFaceConvention)
{
    // (3/8 pi, 1/16 pi, 0) folds to a <= pi/4 representative.
    Coord f = canonicalize(3.0 * kPi / 8.0, kPi / 16.0, 0.0);
    EXPECT_LE(f.a, kPi4 + 1e-12);
    Coord g = canonicalize(kPi / 2.0 - 3.0 * kPi / 8.0, kPi / 16.0, 0.0);
    EXPECT_TRUE(f.closeTo(g, 1e-12));
}

TEST(Kak, ReconstructsNamedGates)
{
    for (const Mat4 &u : {gateCX(), gateCZ(), gateISWAP(), gateSWAP(),
                          gateRootISWAP(2), gateRootISWAP(3),
                          gateRootISWAP(4), gateCNS(), gateB(),
                          Mat4::identity(), gateCP(1.1)}) {
        KakDecomposition kak = kakDecompose(u);
        EXPECT_LT(kak.error(u), 1e-7);
    }
}

TEST(Kak, ReconstructsRandomUnitaries)
{
    Rng rng(707);
    for (int trial = 0; trial < 200; ++trial) {
        Mat4 u = linalg::randomSU4(rng);
        KakDecomposition kak = kakDecompose(u);
        EXPECT_LT(kak.error(u), 1e-7) << "trial " << trial;
        EXPECT_TRUE(inAlcove(kak.coords));
    }
}

TEST(Kak, ReconstructsDressedCanGates)
{
    // Locally dressed CAN gates with degenerate spectra are the stress
    // case for the simultaneous diagonalization.
    Rng rng(808);
    for (int trial = 0; trial < 100; ++trial) {
        Mat4 u = linalg::randomLocal4(rng) *
                 canonicalGate(kPi4, 0, 0) * linalg::randomLocal4(rng);
        KakDecomposition kak = kakDecompose(u);
        EXPECT_LT(kak.error(u), 1e-7);
        EXPECT_TRUE(kak.coords.closeTo(coordCNOT(), 1e-7));
    }
}

TEST(Kak, LocalFactorsAreUnitary)
{
    Rng rng(909);
    for (int trial = 0; trial < 50; ++trial) {
        Mat4 u = linalg::randomSU4(rng);
        KakDecomposition kak = kakDecompose(u);
        Mat2 p1 = kak.l1 * kak.l1.dagger();
        Mat2 p2 = kak.r2 * kak.r2.dagger();
        EXPECT_NEAR(std::abs(p1(0, 0) - Complex(1)), 0.0, 1e-8);
        EXPECT_NEAR(std::abs(p2(0, 0) - Complex(1)), 0.0, 1e-8);
        EXPECT_NEAR(std::abs(p1(0, 1)), 0.0, 1e-8);
        EXPECT_NEAR(std::abs(p2(0, 1)), 0.0, 1e-8);
    }
}

TEST(Representatives, ZeroFaceTwin)
{
    auto reps = representatives(coordCNOT());
    // CNOT sits exactly at a == pi/4, its twin is itself.
    EXPECT_TRUE(reps[0].closeTo(reps[1], 1e-9));

    Coord cp = coordCP(1.0); // a = 0.25 rad
    auto reps2 = representatives(cp);
    EXPECT_NEAR(reps2[1].a, kPi / 2 - 0.25, 1e-9);

    Coord interior{0.5, 0.4, 0.3};
    auto reps3 = representatives(interior);
    EXPECT_TRUE(reps3[0].closeTo(reps3[1]));
}
