/**
 * @file
 * Tests for the Haar-score estimators: Monte Carlo (Algorithm 1) against
 * the exact polytope integration, approximate-decomposition acceptance,
 * and parameterized consistency sweeps over the basis family.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "monodromy/cost_model.hh"
#include "monodromy/haar_density.hh"
#include "monodromy/scores.hh"

using namespace mirage;
using namespace mirage::monodromy;

TEST(MonteCarlo, ConvergesToExactScore)
{
    // Fig. 5's headline property: the exact-decomposition MC estimate
    // converges to the polytope-integration value.
    const CoverageSet &cs = coverageForRootIswap(2);
    HaarScore exact = haarScoreExact(cs, false);
    MonteCarloOptions opts;
    opts.iterations = 400;
    opts.seed = 17;
    HaarScore mc = haarScoreMonteCarlo(cs, opts);
    EXPECT_NEAR(mc.score, exact.score, 0.03);
    EXPECT_NEAR(mc.fidelity, exact.fidelity, 0.002);
}

TEST(MonteCarlo, MirrorsLowerTheScore)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    MonteCarloOptions opts;
    opts.iterations = 200;
    HaarScore plain = haarScoreMonteCarlo(cs, opts);
    opts.mirrors = true;
    HaarScore mirror = haarScoreMonteCarlo(cs, opts);
    EXPECT_LT(mirror.score, plain.score);
    EXPECT_GT(mirror.fidelity, plain.fidelity);
}

TEST(MonteCarlo, ApproximationImprovesFidelityAndScore)
{
    // Table II property: allowing approximate decomposition can only
    // improve the average total fidelity, and lowers the cost.
    const CoverageSet &cs = coverageForRootIswap(2);
    MonteCarloOptions opts;
    opts.iterations = 60;
    opts.seed = 23;
    HaarScore exact = haarScoreMonteCarlo(cs, opts);
    opts.approximate = true;
    HaarScore approx = haarScoreMonteCarlo(cs, opts);
    EXPECT_LE(approx.score, exact.score + 1e-9);
    EXPECT_GE(approx.fidelity, exact.fidelity - 1e-9);
}

TEST(MonteCarlo, ProgressCallbackFires)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    MonteCarloOptions opts;
    opts.iterations = 10;
    int calls = 0;
    double last = 0;
    opts.progress = [&](int it, double running) {
        ++calls;
        EXPECT_GT(it, 0);
        last = running;
    };
    HaarScore s = haarScoreMonteCarlo(cs, opts);
    EXPECT_EQ(calls, 10);
    EXPECT_NEAR(last, s.score, 1e-12);
}

class BasisFamily : public ::testing::TestWithParam<int>
{
};

TEST_P(BasisFamily, ScoreBoundsAndMonotonicity)
{
    const int n = GetParam();
    const CoverageSet &cs = coverageForRootIswap(n);
    // Coverage fractions are monotone in k, scores positive and bounded
    // by the full-coverage depth.
    double prev = -1;
    for (int k = 1; k <= cs.kMax(); ++k) {
        double f = cs.haarFractionAt(k);
        EXPECT_GE(f, prev - 1e-9) << "k=" << k;
        EXPECT_GE(cs.mirrorHaarFractionAt(k), f - 1e-6) << "k=" << k;
        prev = f;
    }
    HaarScore plain = haarScoreExact(cs, false);
    EXPECT_GT(plain.score, 0.0);
    EXPECT_LE(plain.score, cs.kMax() * cs.basis().duration + 1e-9);
    EXPECT_GT(plain.fidelity, 0.95);
    EXPECT_LE(plain.fidelity, 1.0);
}

TEST_P(BasisFamily, MirrorInvolutionOnCosts)
{
    // mirror(mirror(x)) == x implies mirrorCost(mirrorCoord) == cost.
    const int n = GetParam();
    CostModel cm = makeRootIswapCostModel(n);
    Rng rng(uint64_t(100 + n));
    for (int i = 0; i < 20; ++i) {
        weyl::Coord c = sampleHaarCoord(rng);
        weyl::Coord m = weyl::mirrorCoord(c);
        EXPECT_EQ(cm.kFor(c), cm.kFor(weyl::mirrorCoord(m)));
    }
}

TEST_P(BasisFamily, SubadditivityBound)
{
    // The first signed coordinate is subadditive: k gates cannot exceed
    // x = k * beta, so any coord with larger x must need more gates.
    const int n = GetParam();
    const CoverageSet &cs = coverageForRootIswap(n);
    const double beta = cs.basis().coords.a;
    Rng rng(uint64_t(7 * n));
    for (int i = 0; i < 30; ++i) {
        weyl::Coord c = sampleHaarCoord(rng);
        auto s = weyl::signedRep(c);
        int k = cs.minK(c);
        EXPECT_GE(k * beta, s[0] - 1e-6)
            << "n=" << n << " coord " << c.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(IswapRoots, BasisFamily,
                         ::testing::Values(2, 3, 4),
                         [](const ::testing::TestParamInfo<int> &info) {
                             return "root" + std::to_string(info.param);
                         });
