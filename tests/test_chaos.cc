/**
 * @file
 * The fault-tolerance capstone: a live serve engine driven through a
 * seeded fault schedule must degrade -- structured, documented errors;
 * successes byte-identical to a fault-free run -- and never crash,
 * deadlock, or corrupt a cache. Also pins the satellite guarantees:
 * kill -9 mid-saveCache never yields a torn (Malformed) cache file,
 * deadlines surface as structured "deadline" errors and leave the
 * engine healthy, admission control sheds with a retryAfterMs hint,
 * size caps reject with "toolarge", and a corrupt catalog degrades to
 * a cold fit at every load site (transpile CLI, sweep, serve startup,
 * catalog stats).
 *
 * Carries the pipeline + concurrency labels: the chaos run exercises
 * the engine's locking under connection churn, so the TSan job picks
 * it up.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "cli/cli.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "decomp/equivalence.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/traffic.hh"

using namespace mirage;

namespace {

/** The committed fit catalog at the repo root (tests/ is one below). */
const char *const kCatalogPath =
    MIRAGE_TEST_DATA_DIR "/../FIT_CATALOG.bin";

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Every test here leaves the process disarmed, whatever happens. */
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarm(); }
    void TearDown() override { fault::disarm(); }
};

json::Value
handleParsed(serve::Engine &engine, const std::string &line)
{
    return json::parse(engine.handle(line));
}

/** A request line for `qasm` with small deterministic options. */
std::string
requestLine(int id, const std::string &qasm,
            const std::string &options =
                "{\"trials\":2,\"swapTrials\":1,\"fwdBwd\":1}")
{
    json::Value doc = json::Value::object();
    doc.set("id", id);
    doc.set("qasm", qasm);
    doc.set("options", json::parse(options));
    return doc.dump(0);
}

// --- the capstone -----------------------------------------------------------

TEST_F(ChaosTest, SeededChaosRunSurvivesAndDegrades)
{
    serve::ChaosOptions opts;
    opts.workDir = tempPath("chaos-run");
    std::ostringstream log;
    json::Value artifact;
    ASSERT_NO_THROW(artifact = serve::runChaos(opts, log))
        << "a throw here means the server stopped answering -- the one "
           "forbidden outcome\n"
        << log.str();

    SCOPED_TRACE(log.str());
    const json::Value &results = artifact["results"];
    // Zero crashes/deadlocks is implied by getting an artifact at all;
    // now the degradation must have been clean and real.
    EXPECT_TRUE(artifact["pass"].asBool()) << artifact.dump(2);
    EXPECT_TRUE(results["bitIdentical"].asBool())
        << "an injected fault corrupted a success response";
    EXPECT_EQ(results["undocumentedCodes"].size(), 0u)
        << "an error code escaped the documented taxonomy: "
        << results["undocumentedCodes"].dump(0);
    EXPECT_GE(results["faultKindsInjected"].asInt(), 6)
        << artifact.dump(2);
    EXPECT_GT(results["okResponses"].asInt(), 0);
    EXPECT_GT(results["errorResponses"].asInt(), 0)
        << "a chaos run where nothing failed exercised nothing";
    EXPECT_TRUE(results["catalogDegraded"].asBool())
        << "the injected catalog.load fault must degrade startup";
    EXPECT_EQ(artifact["parameters"]["requests"].asInt(), 200);
    EXPECT_EQ(artifact["kind"].asString(),
              std::string(serve::kServeChaosKind));
    // The run is seeded end to end; the injection census is part of
    // what makes a failure reproducible, so it must be non-trivial.
    EXPECT_GT(results["totalInjected"].asInt(), 10);
}

// --- crash-safe persistence -------------------------------------------------

TEST_F(ChaosTest, SigkillMidSaveNeverYieldsTornCache)
{
    using Status = decomp::EquivalenceLibrary::CacheLoadStatus;

    // A real, heavyweight library: the committed catalog (~400 KiB of
    // entries) so the save takes long enough for SIGKILL to land
    // mid-write at least sometimes.
    decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
    ASSERT_EQ(lib.loadCacheFileDetailed(kCatalogPath).status, Status::Ok)
        << "committed FIT_CATALOG.bin must load";

    const std::string dir = tempPath("killsave");
    std::filesystem::create_directories(dir);
    const std::string target = dir + "/eqlib-root2.cache";

    for (int round = 0; round < 6; ++round) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: save in a tight loop until killed. _exit, never
            // exit: no gtest/atexit machinery may run here.
            for (;;)
                lib.saveCacheFile(target);
            ::_exit(0); // unreachable
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + 2 * round));
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFSIGNALED(status));

        // The target must be the complete old file or the complete new
        // file -- a missing file is fine on round 0, a torn prefix
        // (Malformed) never is.
        decomp::EquivalenceLibrary probe(2, /*preseed=*/false);
        const auto load = probe.loadCacheFileDetailed(target);
        EXPECT_NE(load.status, Status::Malformed)
            << "round " << round
            << ": SIGKILL mid-save produced a torn cache: "
            << load.message;
        if (load.status == Status::Ok) {
            EXPECT_EQ(probe.cacheSize(), lib.cacheSize());
        }
    }
}

// --- deadlines --------------------------------------------------------------

TEST_F(ChaosTest, DeadlineSurfacesStructuredErrorAndEngineStaysHealthy)
{
    serve::Engine engine;
    // Heavy enough that 1 ms cannot cover routing: 12 qubits, 80
    // entangling gates, 8x4 trial grid.
    const std::string heavy = serve::syntheticQasm(0, 12, 80, 1);
    json::Value doc = handleParsed(
        engine,
        requestLine(1, heavy,
                    "{\"trials\":8,\"swapTrials\":4,\"fwdBwd\":2,"
                    "\"topology\":\"grid4x4\",\"deadlineMs\":1}"));
    ASSERT_FALSE(doc["ok"].asBool())
        << "a 1 ms budget must not cover an 8x4 trial grid";
    EXPECT_EQ(doc["error"]["code"].asString(), "deadline");
    EXPECT_EQ(engine.counters().deadlines, 1u);

    // The worker that died of the deadline must be fully healthy: the
    // SAME circuit without a deadline now completes.
    json::Value retry = handleParsed(
        engine, requestLine(2, heavy,
                            "{\"trials\":8,\"swapTrials\":4,\"fwdBwd\":2,"
                            "\"topology\":\"grid4x4\"}"));
    EXPECT_TRUE(retry["ok"].asBool()) << retry.dump(0);
}

TEST_F(ChaosTest, ServerDeadlineCapsClientBudget)
{
    serve::EngineOptions eopts;
    eopts.deadlineMs = 1; // server-wide cap
    serve::Engine engine(eopts);
    const std::string heavy = serve::syntheticQasm(0, 12, 80, 1);
    // The client asks for a generous budget; the server's cap wins.
    json::Value doc = handleParsed(
        engine,
        requestLine(1, heavy,
                    "{\"trials\":8,\"swapTrials\":4,\"fwdBwd\":2,"
                    "\"topology\":\"grid4x4\",\"deadlineMs\":60000}"));
    ASSERT_FALSE(doc["ok"].asBool());
    EXPECT_EQ(doc["error"]["code"].asString(), "deadline");
}

TEST_F(ChaosTest, TranspileCliHonorsDeadlineFlag)
{
    const std::string path = tempPath("deadline.qasm");
    {
        std::ofstream f(path);
        f << serve::syntheticQasm(0, 12, 80, 1);
    }
    std::ostringstream out, err;
    const int code = cli::run({"transpile", path, "--topology", "grid4x4",
                               "--trials", "8", "--swap-trials", "4",
                               "--deadline-ms", "1"},
                              out, err);
    EXPECT_EQ(code, cli::kExitFailure);
    EXPECT_NE(err.str().find("deadline"), std::string::npos) << err.str();

    // Invalid budgets are usage errors, not runtime ones.
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::run({"transpile", path, "--deadline-ms", "-5"}, out2,
                       err2),
              cli::kExitUsage);
}

// --- admission control ------------------------------------------------------

TEST_F(ChaosTest, AdmissionShedsWithRetryAfterHint)
{
    fault::arm("seed=1,queue.admit=#1"); // exactly the first admission
    serve::Engine engine;
    const std::string qasm = serve::syntheticQasm(1, 4, 8, 2);

    json::Value shed = handleParsed(engine, requestLine(1, qasm));
    ASSERT_FALSE(shed["ok"].asBool());
    EXPECT_EQ(shed["error"]["code"].asString(), "overloaded");
    const json::Value *retry = shed["error"].find("retryAfterMs");
    ASSERT_NE(retry, nullptr)
        << "overloaded must carry a backoff hint: " << shed.dump(0);
    EXPECT_GT(retry->asNumber(), 0.0);
    EXPECT_EQ(engine.counters().shed, 1u);

    // One-shot: the retry is admitted and completes.
    json::Value ok = handleParsed(engine, requestLine(2, qasm));
    EXPECT_TRUE(ok["ok"].asBool()) << ok.dump(0);
}

TEST_F(ChaosTest, SizeCapsRejectWithToolarge)
{
    serve::EngineOptions eopts;
    eopts.maxQubits = 3;
    serve::Engine engine(eopts);
    json::Value doc =
        handleParsed(engine, requestLine(1, serve::syntheticQasm(0, 4, 6, 3)));
    ASSERT_FALSE(doc["ok"].asBool());
    EXPECT_EQ(doc["error"]["code"].asString(), "toolarge");
    EXPECT_EQ(engine.counters().tooLarge, 1u);

    serve::EngineOptions gopts;
    gopts.maxGates = 2;
    serve::Engine gateCapped(gopts);
    json::Value doc2 = handleParsed(
        gateCapped, requestLine(2, serve::syntheticQasm(0, 4, 6, 3)));
    ASSERT_FALSE(doc2["ok"].asBool());
    EXPECT_EQ(doc2["error"]["code"].asString(), "toolarge");

    // Within the caps: served normally.
    serve::EngineOptions okopts;
    okopts.maxQubits = 16;
    okopts.maxGates = 10000;
    serve::Engine roomy(okopts);
    EXPECT_TRUE(
        handleParsed(roomy, requestLine(3, serve::syntheticQasm(0, 4, 6, 3)))
            ["ok"]
                .asBool());
}

// --- corrupt caches degrade at every load site ------------------------------

/** A file that opens fine but cannot be a catalog: Malformed, not
 * Unreadable, at every load site. */
std::string
writeCorruptCatalog(const std::string &name)
{
    const std::string path = tempPath(name);
    std::ofstream f(path);
    f << "this is not a mirage-eqlib cache\n";
    return path;
}

TEST_F(ChaosTest, CorruptCatalogIsMalformedNotUnreadable)
{
    using Status = decomp::EquivalenceLibrary::CacheLoadStatus;
    const std::string corrupt = writeCorruptCatalog("corrupt-unit.bin");
    decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
    const auto load = lib.loadCacheFileDetailed(corrupt);
    EXPECT_EQ(load.status, Status::Malformed);
    EXPECT_FALSE(load.message.empty());

    decomp::EquivalenceLibrary lib2(2, /*preseed=*/false);
    const auto missing = lib2.loadCacheFileDetailed(
        tempPath("does-not-exist.bin"));
    EXPECT_EQ(missing.status, Status::Unreadable);
}

TEST_F(ChaosTest, ServeStartupDegradesOnCorruptCatalog)
{
    using Status = decomp::EquivalenceLibrary::CacheLoadStatus;
    serve::EngineOptions eopts;
    eopts.catalogPath = writeCorruptCatalog("corrupt-serve.bin");
    serve::Engine engine(eopts);
    EXPECT_EQ(engine.catalogLoad().status, Status::Malformed)
        << "startup must record WHY the catalog was rejected";
    // ... and keep serving.
    json::Value doc = handleParsed(
        engine, requestLine(1, serve::syntheticQasm(0, 4, 6, 3)));
    EXPECT_TRUE(doc["ok"].asBool()) << doc.dump(0);
}

TEST_F(ChaosTest, CatalogStatsCliRejectsCorruptFile)
{
    const std::string corrupt = writeCorruptCatalog("corrupt-stats.bin");
    std::ostringstream out, err;
    EXPECT_EQ(cli::run({"catalog", "stats", "--path", corrupt}, out, err),
              cli::kExitFailure);
    EXPECT_NE(err.str().find("malformed"), std::string::npos) << err.str();

    // The committed catalog is the healthy baseline.
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::run({"catalog", "stats", "--path", kCatalogPath}, out2,
                       err2),
              cli::kExitSuccess);
}

TEST_F(ChaosTest, TranspileCliFitsColdOnCorruptCatalog)
{
    // A single CX on two qubits: the cold fallback costs only the
    // preseeded standard-gate fits.
    const std::string qasmPath = tempPath("tiny.qasm");
    {
        std::ofstream f(qasmPath);
        f << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
             "cx q[0],q[1];\n";
    }
    const std::string corrupt = writeCorruptCatalog("corrupt-cli.bin");
    std::ostringstream out, err;
    const int code =
        cli::run({"transpile", qasmPath, "--topology", "line2", "--lower",
                  "--trials", "1", "--swap-trials", "1", "--catalog",
                  corrupt},
                 out, err);
    EXPECT_EQ(code, cli::kExitSuccess)
        << "a corrupt catalog must warn and fit cold, not fail: "
        << err.str();
    EXPECT_NE(err.str().find("malformed"), std::string::npos) << err.str();
    EXPECT_NE(err.str().find("fitting cold"), std::string::npos)
        << err.str();
}

TEST_F(ChaosTest, SweepDegradesOnCorruptCatalog)
{
    // Two table3 --limit 1 runs sharing a cache dir: the first (valid
    // committed catalog) populates the equivalence cache, so the
    // second (corrupt catalog) falls back cold but finds every fit
    // warm -- the degrade path itself stays cheap to test.
    // Default knobs on purpose: they are the exact configuration the
    // committed catalog was built for, so the warm run performs zero
    // fits (the same invariant test_catalog_coldstart pins).
    const std::string cacheDir = tempPath("sweep-cache");
    const auto sweep = [&](const std::string &catalog, json::Value *doc) {
        std::ostringstream out, err;
        const int code = cli::run(
            {"sweep", "--experiment", "table3", "--limit", "1", "--cache",
             cacheDir, "--catalog", catalog, "--stdout"},
            out, err);
        if (code == cli::kExitSuccess)
            *doc = json::parse(out.str());
        return code;
    };

    json::Value warm;
    ASSERT_EQ(sweep(kCatalogPath, &warm), cli::kExitSuccess);
    EXPECT_TRUE(warm["summary"]["catalogLoaded"].asBool());

    json::Value degraded;
    ASSERT_EQ(sweep(writeCorruptCatalog("corrupt-sweep.bin"), &degraded),
              cli::kExitSuccess)
        << "sweep must degrade to a cold library, not fail";
    EXPECT_FALSE(degraded["summary"]["catalogLoaded"].asBool());
    ASSERT_NE(degraded["summary"].find("catalogError"), nullptr);
    EXPECT_FALSE(
        degraded["summary"]["catalogError"].asString().empty());
}

// --- serve over a socket under MIRAGE_FAULTS-style arming -------------------

TEST_F(ChaosTest, StatsOpPublishesInjectionCensusWhenArmed)
{
    fault::arm("seed=3,serve.read=1/2,queue.admit=0/5");
    serve::Engine engine;
    json::Value stats = handleParsed(engine, "{\"op\": \"stats\"}");
    const json::Value *faults = stats.find("faults");
    ASSERT_NE(faults, nullptr)
        << "an armed engine must disclose its schedule: " << stats.dump(0);
    EXPECT_EQ((*faults)["spec"].asString(),
              "seed=3,serve.read=1/2,queue.admit=0/5");

    fault::disarm();
    json::Value clean = handleParsed(engine, "{\"op\": \"stats\"}");
    EXPECT_EQ(clean.find("faults"), nullptr)
        << "a disarmed engine must not advertise fault machinery";
}

} // namespace
