/**
 * @file
 * Tests for the circuit IR: gates, DAG, simulator, consolidation, QASM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/consolidate.hh"
#include "circuit/dag.hh"
#include "circuit/qasm.hh"
#include "circuit/sim.hh"
#include "common/rng.hh"
#include "linalg/random_unitary.hh"
#include "weyl/catalog.hh"

using namespace mirage;
using namespace mirage::circuit;
using linalg::Complex;

TEST(Gate, MatrixDispatch)
{
    Gate cx = makeGate2(GateKind::CX, 0, 1);
    EXPECT_LT(cx.matrix4().distance(weyl::gateCX()), 1e-12);
    Gate h = makeGate1(GateKind::H, 0);
    EXPECT_NEAR(std::abs(h.matrix2()(0, 0) - Complex(1 / std::sqrt(2.0))),
                0.0, 1e-12);
}

TEST(Gate, CoordsAnnotation)
{
    Gate cx = makeGate2(GateKind::CX, 0, 1);
    EXPECT_FALSE(cx.coords.has_value());
    weyl::Coord c = cx.annotateCoords();
    EXPECT_TRUE(cx.coords.has_value());
    EXPECT_TRUE(c.closeTo(weyl::coordCNOT()));
}

TEST(Circuit, MetricsAndDepth)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.h(2);
    EXPECT_EQ(c.gateCount(), 4);
    EXPECT_EQ(c.twoQubitGateCount(), 2);
    EXPECT_EQ(c.depth(), 4); // h, cx, cx, h chain through qubit flow
}

TEST(Circuit, RejectsBadOperands)
{
    Circuit c(2);
    EXPECT_DEATH(c.cx(0, 5), "");
    EXPECT_DEATH(c.append(makeGate2(GateKind::CX, 1, 1)), "");
}

TEST(Dag, DependencyStructure)
{
    Circuit c(3);
    c.cx(0, 1); // A
    c.cx(1, 2); // B depends on A
    c.h(0);     // C depends on A
    c.cx(0, 2); // D depends on B and C
    DagCircuit dag(c);
    ASSERT_EQ(dag.size(), 4u);
    EXPECT_EQ(dag.roots().size(), 1u);
    EXPECT_EQ(dag.node(0).succs.size(), 2u);
    EXPECT_EQ(dag.node(3).preds.size(), 2u);
    EXPECT_EQ(dag.twoQubitDepth(), 3);
}

TEST(Sim, BellState)
{
    StateVector sv(2);
    sv.applyGate(makeGate1(GateKind::H, 0));
    sv.applyGate(makeGate2(GateKind::CX, 0, 1));
    // |00> + |11> (qubit 0 is the control, bit 0 of the index).
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, 1e-12);
}

TEST(Sim, TwoQubitOperandOrder)
{
    // CX with control = operand 0: |q1 q0> = |01> (q0=1) must flip q1.
    StateVector sv(2);
    sv.applyGate(makeGate1(GateKind::X, 0));
    sv.applyGate(makeGate2(GateKind::CX, 0, 1));
    // Expect |11> = index 3.
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1.0, 1e-12);
}

TEST(Sim, SwapGateMovesAmplitudes)
{
    Rng rng(5);
    StateVector sv(3);
    sv.randomize(rng);
    StateVector orig = sv;
    sv.applyGate(makeGate2(GateKind::SWAP, 0, 2));
    StateVector expect = orig.permuted({2, 1, 0});
    EXPECT_NEAR(std::abs(sv.inner(expect)), 1.0, 1e-12);
}

TEST(Sim, CcxAndCswap)
{
    // CCX: |110> (q0=1,q1=1,q2=0) -> |111>.
    StateVector sv(3);
    sv.applyGate(makeGate1(GateKind::X, 0));
    sv.applyGate(makeGate1(GateKind::X, 1));
    Gate ccx;
    ccx.kind = GateKind::CCX;
    ccx.qubits = {0, 1, 2};
    sv.applyGate(ccx);
    EXPECT_NEAR(std::abs(sv.amplitudes()[7]), 1.0, 1e-12);

    // CSWAP with control off leaves the state alone.
    StateVector sw(3);
    sw.applyGate(makeGate1(GateKind::X, 1));
    Gate cs;
    cs.kind = GateKind::CSWAP;
    cs.qubits = {0, 1, 2};
    sw.applyGate(cs);
    EXPECT_NEAR(std::abs(sw.amplitudes()[2]), 1.0, 1e-12);
}

TEST(Sim, PermutedRoundTrip)
{
    Rng rng(17);
    StateVector sv(4);
    sv.randomize(rng);
    std::vector<int> perm = {2, 0, 3, 1};
    std::vector<int> inv(4);
    for (int i = 0; i < 4; ++i)
        inv[size_t(perm[size_t(i)])] = i;
    StateVector back = sv.permuted(perm).permuted(inv);
    EXPECT_NEAR(std::abs(sv.inner(back)), 1.0, 1e-12);
}

namespace {

/** Unitary of a small circuit via simulation of basis states. */
std::vector<std::vector<Complex>>
circuitUnitary(const Circuit &c)
{
    size_t dim = size_t(1) << c.numQubits();
    std::vector<std::vector<Complex>> u(dim, std::vector<Complex>(dim));
    for (size_t col = 0; col < dim; ++col) {
        StateVector sv(c.numQubits());
        sv.amplitudes().assign(dim, Complex(0));
        sv.amplitudes()[col] = Complex(1);
        sv.applyCircuit(c);
        for (size_t row = 0; row < dim; ++row)
            u[row][col] = sv.amplitudes()[row];
    }
    return u;
}

double
unitaryDistance(const std::vector<std::vector<Complex>> &a,
                const std::vector<std::vector<Complex>> &b)
{
    // Phase-align then compare.
    Complex tr(0);
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a.size(); ++j)
            tr += std::conj(a[i][j]) * b[i][j];
    Complex phase = std::abs(tr) > 1e-12 ? tr / std::abs(tr) : Complex(1);
    double worst = 0;
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a.size(); ++j)
            worst = std::max(worst,
                             std::abs(a[i][j] * phase - b[i][j]));
    return worst;
}

} // namespace

TEST(Consolidate, PreservesUnitary)
{
    Rng rng(33);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(3);
        // Random mix of 1Q and 2Q gates.
        for (int g = 0; g < 14; ++g) {
            switch (rng.index(5)) {
              case 0: c.h(int(rng.index(3))); break;
              case 1: c.rz(rng.uniform(0, 3), int(rng.index(3))); break;
              case 2: c.cx(0, 1); break;
              case 3: c.cx(1, 2); break;
              default: c.cp(rng.uniform(0, 3), 0, 2); break;
            }
        }
        Circuit merged = consolidateBlocks(c);
        EXPECT_LE(merged.twoQubitGateCount(), c.twoQubitGateCount());
        EXPECT_LT(unitaryDistance(circuitUnitary(c),
                                  circuitUnitary(merged)),
                  1e-9);
    }
}

TEST(Consolidate, MergesSamePairRuns)
{
    Circuit c(2);
    c.cx(0, 1);
    c.h(0);
    c.cx(1, 0); // reversed operand order still merges
    c.cx(0, 1);
    Circuit merged = consolidateBlocks(c);
    EXPECT_EQ(merged.twoQubitGateCount(), 1);
    EXPECT_EQ(merged.gates()[0].kind, GateKind::Unitary2Q);
    EXPECT_TRUE(merged.gates()[0].coords.has_value());
}

TEST(Consolidate, CoordinateCacheHits)
{
    clearCoordinateCache();
    Circuit c(4);
    // The same CX block appears on many pairs: the interior unitary is
    // identical, so the cache should hit after the first.
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            c.cx(j, 3);
    ConsolidateStats stats;
    consolidateBlocks(c, ConsolidateOptions{}, &stats);
    EXPECT_GT(stats.coordCacheHits, 0u);
}

TEST(Consolidate, BarrierSealsBlocks)
{
    Circuit c(2);
    c.cx(0, 1);
    c.append(makeBarrier({0, 1}));
    c.cx(0, 1);
    Circuit merged = consolidateBlocks(c);
    EXPECT_EQ(merged.twoQubitGateCount(), 2);
}

TEST(Qasm, EmitsLoadableText)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cp(0.5, 1, 2);
    c.swap(0, 2);
    std::string q = toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0"), std::string::npos);
    EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("cp(0.5) q[1],q[2];"), std::string::npos);
    EXPECT_NE(q.find("swap q[0],q[2];"), std::string::npos);
}

TEST(Qasm, UnitaryBlocksViaKak)
{
    Rng rng(9);
    Circuit c(2);
    c.unitary(0, 1, linalg::randomSU4(rng));
    std::string q = toQasm(c);
    // KAK emission uses u3 + rxx/rzz primitives.
    EXPECT_NE(q.find("rxx"), std::string::npos);
    EXPECT_NE(q.find("u3"), std::string::npos);
}
