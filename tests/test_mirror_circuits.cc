/**
 * @file
 * Tests for the mirror-RB / mirror-QV generators: the predicted
 * bitstring must match an independent dense simulation at small widths,
 * generation must be deterministic, and -- the point of the exercise --
 * the bitstring oracle must certify routed (and lowered) circuits at
 * widths strictly past the 6-qubit exhaustive-unitary ceiling.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "bench_circuits/mirror.hh"
#include "circuit/circuit.hh"
#include "circuit/sim.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "support/bitstring_oracle.hh"
#include "support/equivalence.hh"
#include "topology/coupling.hh"

using namespace mirage;
using bench::MirrorCircuit;
using circuit::Circuit;
using circuit::StateVector;
using testsupport::bitstringRecovered;
using topology::CouplingMap;

namespace {

/** Dense-simulation check that |bitstring> is the exact output state. */
void
expectBitstringByDenseSim(const MirrorCircuit &mc)
{
    const int n = mc.circuit.numQubits();
    ASSERT_LE(n, 20) << "dense cross-check only feasible at small n";
    StateVector psi(n);
    psi.applyCircuit(mc.circuit);
    uint64_t target = 0;
    for (int q = 0; q < n; ++q) {
        if (mc.bitstring[size_t(q)])
            target |= uint64_t(1) << q;
    }
    const double p = std::norm(psi.amplitudes()[target]);
    EXPECT_NEAR(p, 1.0, 1e-9)
        << mc.circuit.name() << ": predicted bitstring has probability "
        << p;
}

} // namespace

// ---------------------------------------------------------------------
// The predicted bitstring is correct (independent dense simulation).

TEST(MirrorRb, BitstringMatchesDenseSimAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 8; ++seed)
        expectBitstringByDenseSim(bench::mirrorRb(5, 3, seed));
    expectBitstringByDenseSim(bench::mirrorRb(2, 1, 0x11));
    expectBitstringByDenseSim(bench::mirrorRb(6, 5, 0x22));
}

TEST(MirrorQv, BitstringMatchesDenseSimAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 8; ++seed)
        expectBitstringByDenseSim(bench::mirrorQv(5, 3, seed));
    expectBitstringByDenseSim(bench::mirrorQv(2, 1, 0x11));
    expectBitstringByDenseSim(bench::mirrorQv(6, 4, 0x22));
}

TEST(MirrorQv, TargetBitstringIsNeverAllZeros)
{
    // The all-zeros target would also "pass" on a pipeline that emits an
    // empty circuit, so the generator must always plant at least one X.
    for (uint64_t seed = 0; seed < 64; ++seed) {
        auto mc = bench::mirrorQv(4, 2, seed);
        int ones = 0;
        for (int b : mc.bitstring)
            ones += b;
        EXPECT_GE(ones, 1) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Determinism: same seed, same circuit, bit for bit.

TEST(MirrorGenerators, DeterministicAcrossCalls)
{
    auto a = bench::mirrorRb(9, 3, 0xAB);
    auto b = bench::mirrorRb(9, 3, 0xAB);
    EXPECT_TRUE(Circuit::bitIdentical(a.circuit, b.circuit));
    EXPECT_EQ(a.bitstring, b.bitstring);

    auto c = bench::mirrorQv(9, 4, 0xAB);
    auto d = bench::mirrorQv(9, 4, 0xAB);
    EXPECT_TRUE(Circuit::bitIdentical(c.circuit, d.circuit));
    EXPECT_EQ(c.bitstring, d.bitstring);

    // Different seeds must actually change the circuit.
    auto e = bench::mirrorQv(9, 4, 0xAC);
    EXPECT_FALSE(Circuit::bitIdentical(c.circuit, e.circuit));
}

TEST(MirrorGenerators, WideGenerationIsCheap)
{
    // 27 logical qubits: the largest heavy-hex-57 subregion the matrix
    // sweep targets. Generation and shape only -- no simulation here.
    auto rb = bench::mirrorRb(27, 3, 0x1D);
    EXPECT_EQ(rb.circuit.numQubits(), 27);
    EXPECT_EQ(rb.bitstring.size(), 27u);

    auto qv = bench::mirrorQv(27, 4, 0x1D);
    EXPECT_EQ(qv.circuit.numQubits(), 27);
    // depth layers of floor(27/2) SU(4) blocks, mirrored, plus the twist.
    EXPECT_GT(qv.circuit.size(), 2u * 4u * 13u);
}

// ---------------------------------------------------------------------
// The tentpole: routed (and lowered) verification PAST 6 qubits on the
// 57-wire heavy-hex device, where the exhaustive unitary oracle cannot
// go. Tagged "verification" in ctest via this binary's label.

TEST(MirrorEndToEnd, RoutedCircuitsVerifyPastSixQubits)
{
    auto hex = CouplingMap::heavyHex57();
    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.layoutTrials = 2;
    opts.swapTrials = 2;
    opts.forwardBackwardPasses = 1;

    for (int width : {10, 12, 14}) {
        auto mc = bench::mirrorQv(width, 3, 0x9A0 + uint64_t(width));
        auto res = mirage_pass::transpile(mc.circuit, hex, opts);
        EXPECT_TRUE(bitstringRecovered(res.routed, res.final, mc.bitstring))
            << "mirror-QV width " << width;

        auto rb = bench::mirrorRb(width, 3, 0x9B0 + uint64_t(width));
        auto rb_res = mirage_pass::transpile(rb.circuit, hex, opts);
        EXPECT_TRUE(
            bitstringRecovered(rb_res.routed, rb_res.final, rb.bitstring))
            << "mirror-RB width " << width;
    }
}

TEST(MirrorEndToEnd, LoweredCircuitVerifiesWithinFitTolerance)
{
    auto hex = CouplingMap::heavyHex57();
    auto mc = bench::mirrorQv(8, 3, 0xFAB);

    decomp::EquivalenceLibrary lib(2);
    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.layoutTrials = 2;
    opts.swapTrials = 2;
    opts.forwardBackwardPasses = 1;
    opts.lowerToBasis = true;
    opts.equivalenceLibrary = &lib;

    auto res = mirage_pass::transpile(mc.circuit, hex, opts);
    ASSERT_TRUE(res.loweredToBasis);

    // Routed: exact. Lowered: within the reported fit error budget.
    EXPECT_TRUE(bitstringRecovered(res.routed, res.final, mc.bitstring));
    const double tol = testsupport::loweringSuccessTolerance(
        res.translateStats.rootInfidelitySum);
    EXPECT_TRUE(
        bitstringRecovered(res.lowered, res.final, mc.bitstring, tol));
}
