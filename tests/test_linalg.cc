/**
 * @file
 * Unit tests for the dense linear algebra kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rational.hh"
#include "common/rng.hh"
#include "linalg/eigen.hh"
#include "linalg/expm.hh"
#include "linalg/matrix.hh"
#include "linalg/random_unitary.hh"

using namespace mirage;
using namespace mirage::linalg;

TEST(Mat2, IdentityAndMultiply)
{
    Mat2 i = Mat2::identity();
    Mat2 x = pauliX();
    EXPECT_LT((i * x).a[1].real() - 1.0, 1e-15);
    Mat2 xx = x * x;
    EXPECT_NEAR(std::abs(xx(0, 0) - Complex(1)), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(xx(0, 1)), 0.0, 1e-15);
}

TEST(Mat2, PauliAlgebra)
{
    Mat2 x = pauliX(), y = pauliY(), z = pauliZ();
    // XY = iZ
    Mat2 xy = x * y;
    Mat2 iz = z * Complex(0, 1);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(xy.a[size_t(i)] - iz.a[size_t(i)]), 0.0, 1e-15);
}

TEST(Mat2, DetAndDagger)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        Mat2 u = randomSU2(rng);
        EXPECT_NEAR(std::abs(u.det() - Complex(1)), 0.0, 1e-10);
        Mat2 p = u * u.dagger();
        EXPECT_NEAR(std::abs(p(0, 0) - Complex(1)), 0.0, 1e-10);
        EXPECT_NEAR(std::abs(p(0, 1)), 0.0, 1e-10);
    }
}

TEST(Mat4, DeterminantLU)
{
    Mat4 d = Mat4::diag(2, 3, Complex(0, 1), -1);
    EXPECT_NEAR(std::abs(d.det() - Complex(0, -6)), 0.0, 1e-12);

    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        Mat4 u = randomSU4(rng);
        EXPECT_NEAR(std::abs(u.det() - Complex(1)), 0.0, 1e-9);
    }
}

TEST(Mat4, KronStructure)
{
    Mat4 xx = kron(pauliX(), pauliX());
    // XX swaps |00> <-> |11> and |01> <-> |10>.
    EXPECT_NEAR(std::abs(xx(0, 3) - Complex(1)), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(xx(1, 2) - Complex(1)), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(xx(0, 0)), 0.0, 1e-15);
}

TEST(Mat4, UnitarityCheck)
{
    Rng rng(3);
    Mat4 u = randomSU4(rng);
    EXPECT_TRUE(u.isUnitary(1e-9));
    u(0, 0) += Complex(0.01, 0);
    EXPECT_FALSE(u.isUnitary(1e-9));
}

TEST(RandomUnitary, HaarTraceStatistics)
{
    // E[|tr U|^2] = 1 for Haar on U(N); check loosely on SU(4) where the
    // det normalization perturbs the statistic only slightly.
    Rng rng(1234);
    double acc = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        acc += std::norm(randomSU4(rng).trace());
    double mean = acc / n;
    EXPECT_GT(mean, 0.7);
    EXPECT_LT(mean, 1.6);
}

TEST(Eigen, CharacteristicPolynomialDiagonal)
{
    Mat4 d = Mat4::diag(1, 2, 3, 4);
    auto c = characteristicPolynomial(d);
    // (x-1)(x-2)(x-3)(x-4) = x^4 -10x^3 +35x^2 -50x +24
    EXPECT_NEAR(c[3].real(), -10.0, 1e-10);
    EXPECT_NEAR(c[2].real(), 35.0, 1e-10);
    EXPECT_NEAR(c[1].real(), -50.0, 1e-10);
    EXPECT_NEAR(c[0].real(), 24.0, 1e-10);
}

namespace {

double
spectrumDistance(std::array<Complex, 4> got, std::array<Complex, 4> want)
{
    double total = 0;
    std::array<bool, 4> used{};
    for (int i = 0; i < 4; ++i) {
        double best = 1e18;
        int bj = -1;
        for (int j = 0; j < 4; ++j) {
            if (used[size_t(j)])
                continue;
            double dd = std::abs(got[size_t(j)] - want[size_t(i)]);
            if (dd < best) {
                best = dd;
                bj = j;
            }
        }
        used[size_t(bj)] = true;
        total += best;
    }
    return total;
}

} // namespace

TEST(Eigen, EigenvaluesOfDiagonal)
{
    Mat4 d = Mat4::diag(Complex(0, 1), Complex(0, -1), 1, -1);
    auto eigs = eigenvalues4(d);
    std::array<Complex, 4> want = {Complex(0, 1), Complex(0, -1),
                                   Complex(1, 0), Complex(-1, 0)};
    EXPECT_LT(spectrumDistance(eigs, want), 1e-9);
}

TEST(Eigen, EigenvaluesDegenerate)
{
    Mat4 d = Mat4::diag(Complex(0, 1), Complex(0, 1), Complex(0, -1),
                        Complex(0, -1));
    auto eigs = eigenvalues4(d);
    std::array<Complex, 4> want = {Complex(0, 1), Complex(0, 1),
                                   Complex(0, -1), Complex(0, -1)};
    EXPECT_LT(spectrumDistance(eigs, want), 1e-6);
}

TEST(Eigen, EigenvaluesUnitaryConjugated)
{
    Rng rng(99);
    for (int trial = 0; trial < 25; ++trial) {
        Mat4 u = randomSU4(rng);
        std::array<Complex, 4> want = {
            std::polar(1.0, 0.3), std::polar(1.0, -1.1),
            std::polar(1.0, 2.0), std::polar(1.0, -1.2)};
        Mat4 d = Mat4::diag(want[0], want[1], want[2], want[3]);
        Mat4 m = u * d * u.dagger();
        auto eigs = eigenvalues4(m);
        EXPECT_LT(spectrumDistance(eigs, want), 1e-8);
    }
}

TEST(Eigen, JacobiRealSymmetric)
{
    Rng rng(5);
    for (int trial = 0; trial < 25; ++trial) {
        Sym4 m{};
        for (int i = 0; i < 4; ++i)
            for (int j = i; j < 4; ++j) {
                double v = rng.normal();
                m(i, j) = v;
                m(j, i) = v;
            }
        SymEig4 e = jacobiEigen4(m);
        // Check M V = V diag(w) column by column.
        for (int col = 0; col < 4; ++col) {
            for (int row = 0; row < 4; ++row) {
                double mv = 0;
                for (int k = 0; k < 4; ++k)
                    mv += m(row, k) * e.vectors(k, col);
                EXPECT_NEAR(mv, e.values[size_t(col)] * e.vectors(row, col),
                            1e-9);
            }
        }
    }
}

TEST(Eigen, SimultaneousDiagonalization)
{
    // Build commuting symmetric matrices from a shared eigenbasis with
    // degeneracy in the first one.
    Rng rng(17);
    Sym4 g{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            g(i, j) = rng.normal();
    // Orthonormalize columns of g (Gram-Schmidt).
    for (int col = 0; col < 4; ++col) {
        for (int prev = 0; prev < col; ++prev) {
            double dot = 0;
            for (int i = 0; i < 4; ++i)
                dot += g(i, prev) * g(i, col);
            for (int i = 0; i < 4; ++i)
                g(i, col) -= dot * g(i, prev);
        }
        double n = 0;
        for (int i = 0; i < 4; ++i)
            n += g(i, col) * g(i, col);
        n = std::sqrt(n);
        for (int i = 0; i < 4; ++i)
            g(i, col) /= n;
    }
    auto fromDiag = [&](std::array<double, 4> w) {
        Sym4 m{};
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j) {
                double s = 0;
                for (int k = 0; k < 4; ++k)
                    s += g(i, k) * w[size_t(k)] * g(j, k);
                m(i, j) = s;
            }
        return m;
    };
    Sym4 a = fromDiag({1.0, 1.0, -2.0, -2.0}); // degenerate pairs
    Sym4 b = fromDiag({0.5, -0.5, 3.0, 1.0});  // splits them

    Sym4 v = simultaneousDiagonalize(a, b);
    Sym4 av = congruence(v, a);
    Sym4 bv = congruence(v, b);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i == j)
                continue;
            EXPECT_NEAR(av(i, j), 0.0, 1e-8);
            EXPECT_NEAR(bv(i, j), 0.0, 1e-8);
        }
    }
}

TEST(Expm, MatchesClosedFormPauli)
{
    // exp(i t XX) = cos t I + i sin t XX.
    double t = 0.7;
    Mat4 viaExpm = expm(pauliXX() * Complex(0, t));
    Mat4 closed = Mat4::identity() * Complex(std::cos(t), 0) +
                  pauliXX() * Complex(0, std::sin(t));
    EXPECT_LT(viaExpm.distance(closed), 1e-12);
}

TEST(Expm, UnitaryForHermitianGenerator)
{
    Rng rng(23);
    for (int trial = 0; trial < 20; ++trial) {
        // Random Hermitian H, exp(iH) must be unitary.
        Mat4 h;
        for (int i = 0; i < 4; ++i) {
            h(i, i) = Complex(rng.normal(), 0);
            for (int j = i + 1; j < 4; ++j) {
                Complex v(rng.normal(), rng.normal());
                h(i, j) = v;
                h(j, i) = std::conj(v);
            }
        }
        Mat4 u = expm(h * Complex(0, 1));
        EXPECT_TRUE(u.isUnitary(1e-9));
    }
}

TEST(TensorFactor, RoundTrip)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        Mat2 a = randomSU2(rng);
        Mat2 b = randomSU2(rng);
        Mat4 m = kron(a, b);
        Mat2 fa, fb;
        double err = 0;
        factorTensorProduct(m, &fa, &fb, &err);
        EXPECT_LT(err, 1e-10);
        EXPECT_LT(kron(fa, fb).distance(m), 1e-10);
    }
}

TEST(Fidelity, SelfAndPhaseInvariance)
{
    Rng rng(41);
    Mat4 u = randomSU4(rng);
    EXPECT_NEAR(processFidelity(u, u), 1.0, 1e-12);
    Mat4 v = u * std::polar(1.0, 1.234);
    EXPECT_NEAR(processFidelity(u, v), 1.0, 1e-12);
    EXPECT_NEAR(averageGateFidelity(u, v), 1.0, 1e-12);
}

TEST(Rational, Arithmetic)
{
    Rational a(1, 3), b(1, 6);
    EXPECT_EQ((a + b), Rational(1, 2));
    EXPECT_EQ((a - b), Rational(1, 6));
    EXPECT_EQ((a * b), Rational(1, 18));
    EXPECT_EQ((a / b), Rational(2));
    EXPECT_TRUE(Rational(-2, -4) == Rational(1, 2));
    EXPECT_TRUE(Rational(1, -2) < Rational(0));
}

TEST(Rational, Approximate)
{
    EXPECT_EQ(Rational::approximate(0.5, 64), Rational(1, 2));
    EXPECT_EQ(Rational::approximate(-0.25, 64), Rational(-1, 4));
    EXPECT_EQ(Rational::approximate(2.0 / 3.0, 64), Rational(2, 3));
    EXPECT_EQ(Rational::approximate(1.0, 64), Rational(1));
    // 0.333333... within denominator budget 10 is 1/3.
    EXPECT_EQ(Rational::approximate(0.3333333333, 10), Rational(1, 3));
}
