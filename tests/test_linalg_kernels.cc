/**
 * @file
 * Differential tests: every vectorized linalg kernel vs its scalar
 * reference implementation (linalg/reference.hh).
 *
 * The optimized kernels preserve the reference accumulation order and
 * the naive complex-product formula, so for finite inputs the contract
 * is BIT-IDENTITY, not closeness: every double in the result must have
 * the same bit pattern as the reference result (signed zeros and
 * subnormals included). That is what keeps fitted decompositions,
 * golden lowered-QASM snapshots, and the committed FIT_CATALOG.bin
 * stable across the rewrite.
 *
 * Input classes, all seeded: Haar-random unitaries (>= 1000 per kernel
 * via the shared corpus), Hermitian, defective / near-degenerate, and
 * subnormal-entry matrices. A final test demonstrates the OTHER
 * equivalence class -- a deliberately reordered summation compared at
 * <= 1e-14 Frobenius -- so the two tolerance regimes stay distinct.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "linalg/eigen.hh"
#include "linalg/expm.hh"
#include "linalg/matrix.hh"
#include "linalg/random_unitary.hh"
#include "linalg/reference.hh"

using namespace mirage;
using namespace mirage::linalg;

namespace ref = mirage::linalg::reference;

namespace {

uint64_t
bits(double d)
{
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

void
expectBitEqual(Complex got, Complex want, const char *what, int trial)
{
    EXPECT_EQ(bits(got.real()), bits(want.real()))
        << what << " real part, trial " << trial << ": got " << got.real()
        << " want " << want.real();
    EXPECT_EQ(bits(got.imag()), bits(want.imag()))
        << what << " imag part, trial " << trial << ": got " << got.imag()
        << " want " << want.imag();
}

void
expectBitEqual2(const Mat2 &got, const Mat2 &want, const char *what,
                int trial)
{
    for (size_t i = 0; i < 4; ++i)
        expectBitEqual(got.a[i], want.a[i], what, trial);
}

void
expectBitEqual4(const Mat4 &got, const Mat4 &want, const char *what,
                int trial)
{
    for (size_t i = 0; i < 16; ++i)
        expectBitEqual(got.a[i], want.a[i], what, trial);
}

void
expectBitEqualSym(const Sym4 &got, const Sym4 &want, const char *what,
                  int trial)
{
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(bits(got.a[i]), bits(want.a[i]))
            << what << " entry " << i << ", trial " << trial;
}

/** Random matrix with independent normal entries (not unitary). */
Mat4
randomGinibre4(Rng &rng)
{
    Mat4 m;
    for (size_t i = 0; i < 16; ++i)
        m.a[i] = Complex(rng.normal(), rng.normal());
    return m;
}

Mat4
randomHermitian4(Rng &rng)
{
    Mat4 g = randomGinibre4(rng);
    return (g + g.dagger()) * Complex(0.5);
}

/**
 * Defective / near-degenerate: a Jordan-like block with eigenvalue
 * clusters split by ~1e-13, conjugated by a random unitary so the
 * structure is not axis-aligned.
 */
Mat4
nearDegenerate4(Rng &rng)
{
    Mat4 j;
    double lam = rng.uniform(-1.0, 1.0);
    j(0, 0) = Complex(lam);
    j(0, 1) = Complex(1);
    j(1, 1) = Complex(lam + 1e-13);
    j(1, 2) = Complex(1);
    j(2, 2) = Complex(lam - 1e-13);
    j(3, 3) = Complex(lam + rng.uniform(0.0, 1e-12));
    Mat4 u = randomSU4(rng);
    return u * j * u.dagger();
}

/** Entries scaled deep into the subnormal range. */
Mat4
subnormal4(Rng &rng)
{
    Mat4 m = randomGinibre4(rng);
    return m * Complex(5e-310);
}

/** The shared input corpus every kernel test walks. */
std::vector<Mat4>
corpus4()
{
    std::vector<Mat4> out;
    Rng rng(0x1CE4E5B9);
    for (int i = 0; i < 1000; ++i)
        out.push_back(randomSU4(rng));
    for (int i = 0; i < 100; ++i)
        out.push_back(randomHermitian4(rng));
    for (int i = 0; i < 100; ++i)
        out.push_back(nearDegenerate4(rng));
    for (int i = 0; i < 50; ++i)
        out.push_back(subnormal4(rng));
    // Structured edge cases: identity, zero, signed-zero pattern.
    out.push_back(Mat4::identity());
    out.push_back(Mat4{});
    Mat4 sz;
    sz(0, 0) = Complex(-0.0, 0.0);
    sz(1, 2) = Complex(0.0, -0.0);
    sz(3, 3) = Complex(-0.0, -0.0);
    out.push_back(sz);
    return out;
}

std::vector<Mat2>
corpus2()
{
    std::vector<Mat2> out;
    Rng rng(0x94D049BB);
    for (int i = 0; i < 1000; ++i)
        out.push_back(randomSU2(rng));
    for (int i = 0; i < 100; ++i) {
        Mat2 g;
        for (size_t k = 0; k < 4; ++k)
            g.a[k] = Complex(rng.normal(), rng.normal());
        out.push_back(g);
        out.push_back(g * Complex(5e-310));
    }
    out.push_back(Mat2::identity());
    out.push_back(Mat2{});
    return out;
}

double
frobeniusDiff(const Mat4 &a, const Mat4 &b)
{
    double s = 0;
    for (size_t i = 0; i < 16; ++i)
        s += std::norm(a.a[i] - b.a[i]);
    return std::sqrt(s);
}

} // namespace

TEST(KernelDiff, Matmul2BitIdentical)
{
    auto c = corpus2();
    for (size_t i = 0; i + 1 < c.size(); ++i)
        expectBitEqual2(c[i] * c[i + 1], ref::matmul2(c[i], c[i + 1]),
                        "matmul2", int(i));
}

TEST(KernelDiff, Matmul4BitIdentical)
{
    auto c = corpus4();
    for (size_t i = 0; i + 1 < c.size(); ++i)
        expectBitEqual4(c[i] * c[i + 1], ref::matmul4(c[i], c[i + 1]),
                        "matmul4", int(i));
}

TEST(KernelDiff, DaggerBitIdentical)
{
    auto c2 = corpus2();
    for (size_t i = 0; i < c2.size(); ++i)
        expectBitEqual2(c2[i].dagger(), ref::dagger2(c2[i]), "dagger2",
                        int(i));
    auto c4 = corpus4();
    for (size_t i = 0; i < c4.size(); ++i)
        expectBitEqual4(c4[i].dagger(), ref::dagger4(c4[i]), "dagger4",
                        int(i));
}

TEST(KernelDiff, ConjBitIdentical)
{
    auto c2 = corpus2();
    for (size_t i = 0; i < c2.size(); ++i)
        expectBitEqual2(c2[i].conj(), ref::conj2(c2[i]), "conj2", int(i));
    auto c4 = corpus4();
    for (size_t i = 0; i < c4.size(); ++i)
        expectBitEqual4(c4[i].conj(), ref::conj4(c4[i]), "conj4", int(i));
}

TEST(KernelDiff, ScaleBitIdentical)
{
    Rng rng(0xBF58476D);
    auto c2 = corpus2();
    for (size_t i = 0; i < c2.size(); ++i) {
        Complex s(rng.normal(), rng.normal());
        expectBitEqual2(c2[i] * s, ref::scale2(c2[i], s), "scale2", int(i));
    }
    auto c4 = corpus4();
    for (size_t i = 0; i < c4.size(); ++i) {
        Complex s(rng.normal(), rng.normal());
        expectBitEqual4(c4[i] * s, ref::scale4(c4[i], s), "scale4", int(i));
    }
}

TEST(KernelDiff, KronBitIdentical)
{
    auto c = corpus2();
    for (size_t i = 0; i + 1 < c.size(); ++i)
        expectBitEqual4(kron(c[i], c[i + 1]), ref::kron(c[i], c[i + 1]),
                        "kron", int(i));
}

TEST(KernelDiff, ProcessFidelityBitIdentical)
{
    auto c = corpus4();
    for (size_t i = 0; i + 1 < c.size(); ++i) {
        double got = processFidelity(c[i], c[i + 1]);
        double want = ref::processFidelity(c[i], c[i + 1]);
        EXPECT_EQ(bits(got), bits(want)) << "processFidelity trial " << i;
    }
}

TEST(KernelDiff, ExpmBitIdentical)
{
    auto c = corpus4();
    for (size_t i = 0; i < c.size(); ++i) {
        // expm of i*H for Hermitian-ish inputs plus the raw corpus:
        // both paths must match the reference bit for bit.
        expectBitEqual4(expm(c[i]), ref::expm(c[i]), "expm", int(i));
        Mat4 ih = c[i] * Complex(0, 1);
        expectBitEqual4(expm(ih), ref::expm(ih), "expm(iM)", int(i));
    }
}

TEST(KernelDiff, CharacteristicPolynomialBitIdentical)
{
    auto c = corpus4();
    for (size_t i = 0; i < c.size(); ++i) {
        auto got = characteristicPolynomial(c[i]);
        auto want = ref::characteristicPolynomial(c[i]);
        for (int k = 0; k < 4; ++k)
            expectBitEqual(got[size_t(k)], want[size_t(k)], "charpoly",
                           int(i));
    }
}

TEST(KernelDiff, Eigenvalues4BitIdentical)
{
    auto c = corpus4();
    for (size_t i = 0; i < c.size(); ++i) {
        auto got = eigenvalues4(c[i]);
        auto want = ref::eigenvalues4(c[i]);
        for (int k = 0; k < 4; ++k)
            expectBitEqual(got[size_t(k)], want[size_t(k)], "eigenvalues4",
                           int(i));
    }
}

TEST(KernelDiff, JacobiEigen4BitIdentical)
{
    Rng rng(0x2545F491);
    for (int trial = 0; trial < 1000; ++trial) {
        Sym4 s{};
        for (int i = 0; i < 4; ++i)
            for (int j = i; j < 4; ++j) {
                double v = rng.normal();
                s(i, j) = v;
                s(j, i) = v;
            }
        SymEig4 got = jacobiEigen4(s);
        SymEig4 want = ref::jacobiEigen4(s);
        for (int k = 0; k < 4; ++k)
            EXPECT_EQ(bits(got.values[size_t(k)]),
                      bits(want.values[size_t(k)]))
                << "jacobi value " << k << ", trial " << trial;
        expectBitEqualSym(got.vectors, want.vectors, "jacobi vectors",
                          trial);
    }
}

TEST(KernelDiff, SimultaneousDiagonalizeBitIdentical)
{
    Rng rng(0x632BE59B);
    for (int trial = 0; trial < 500; ++trial) {
        // Build a commuting pair A = V w V^T, B = V u V^T with a shared
        // eigenbasis and (every other trial) a degenerate cluster in w,
        // which drives the sub-block Jacobi path.
        Sym4 seed{};
        for (int i = 0; i < 4; ++i)
            for (int j = i; j < 4; ++j) {
                double v = rng.normal();
                seed(i, j) = v;
                seed(j, i) = v;
            }
        Sym4 basis = jacobiEigen4(seed).vectors;
        std::array<double, 4> w{}, u{};
        for (int k = 0; k < 4; ++k) {
            w[size_t(k)] = rng.uniform(-2.0, 2.0);
            u[size_t(k)] = rng.uniform(-2.0, 2.0);
        }
        if (trial % 2 == 0) {
            w[1] = w[0];
            w[2] = w[0] + 1e-12; // inside the default degeneracy_tol
        }
        auto compose = [&](const std::array<double, 4> &d) {
            Sym4 m{};
            for (int i = 0; i < 4; ++i)
                for (int j = 0; j < 4; ++j) {
                    double s = 0;
                    for (int k = 0; k < 4; ++k)
                        s += basis(i, k) * d[size_t(k)] * basis(j, k);
                    m(i, j) = s;
                }
            return m;
        };
        Sym4 a = compose(w), b = compose(u);
        expectBitEqualSym(simultaneousDiagonalize(a, b),
                          ref::simultaneousDiagonalize(a, b), "simdiag",
                          trial);
    }
}

// The other equivalence class the harness distinguishes: a summation in
// a DIFFERENT order is not bit-identical but must stay within 1e-14
// Frobenius of the ordered kernel for well-scaled inputs. Pinning this
// keeps "exact" and "tolerance" claims honest: if the production kernel
// ever reorders, the bit-identity tests above fail while this one keeps
// passing, pointing straight at an accumulation-order change.
TEST(KernelDiff, ReorderedSumWithinFrobeniusTolerance)
{
    Rng rng(0x8CB92BA7);
    for (int trial = 0; trial < 200; ++trial) {
        Mat4 a = randomSU4(rng), b = randomSU4(rng);
        Mat4 reordered;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j) {
                Complex s(0);
                for (int k = 3; k >= 0; --k) // descending: reordered sum
                    s += a(i, k) * b(k, j);
                reordered(i, j) = s;
            }
        EXPECT_LE(frobeniusDiff(a * b, reordered), 1e-14)
            << "trial " << trial;
    }
}
