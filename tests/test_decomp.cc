/**
 * @file
 * Tests for the numerical decomposition engine and the equivalence
 * library / basis translation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuit/sim.hh"
#include "decomp/ansatz.hh"
#include "decomp/equivalence.hh"
#include "decomp/numerical.hh"
#include "decomp/optimize.hh"
#include "linalg/random_unitary.hh"
#include "monodromy/coverage.hh"
#include "weyl/can.hh"
#include "weyl/catalog.hh"

using namespace mirage;
using namespace mirage::decomp;
using linalg::Mat4;

TEST(Ansatz, GradientMatchesFiniteDifference)
{
    Rng rng(1);
    Mat4 target = linalg::randomSU4(rng);
    Mat4 basis = weyl::gateRootISWAP(2);
    const int k = 2;
    std::vector<double> p(size_t(ansatzParamCount(k)));
    for (auto &x : p)
        x = rng.uniform(-1.5, 1.5);

    std::vector<double> grad;
    ansatzFidelity(target, basis, k, p, &grad);

    const double h = 1e-6;
    for (size_t i = 0; i < p.size(); i += 5) {
        auto pp = p;
        pp[i] += h;
        double up = ansatzFidelity(target, basis, k, pp, nullptr);
        pp[i] -= 2 * h;
        double dn = ansatzFidelity(target, basis, k, pp, nullptr);
        double fd = (up - dn) / (2 * h);
        EXPECT_NEAR(grad[i], fd, 1e-5) << "param " << i;
    }
}

TEST(Ansatz, BuildMatchesFidelityEvaluation)
{
    Rng rng(2);
    Mat4 basis = weyl::gateRootISWAP(3);
    std::vector<double> p(size_t(ansatzParamCount(2)));
    for (auto &x : p)
        x = rng.uniform(-2, 2);
    Mat4 v = buildAnsatz(basis, 2, p);
    double fid = ansatzFidelity(v, basis, 2, p, nullptr);
    EXPECT_NEAR(fid, 1.0, 1e-12);
    EXPECT_TRUE(v.isUnitary(1e-10));
}

TEST(Fit, CnotIntoTwoSqrtIswap)
{
    // Paper Fig. 1a: CNOT decomposes into two sqrt(iSWAP).
    Rng rng(3);
    AnsatzFit fit =
        fitAnsatz(weyl::gateCX(), weyl::gateRootISWAP(2), 2, rng);
    EXPECT_GT(fit.fidelity, 1.0 - 1e-8);
}

TEST(Fit, CnsIntoTwoSqrtIswap)
{
    // Paper Fig. 1b: CNOT+SWAP also needs only two sqrt(iSWAP).
    Rng rng(4);
    AnsatzFit fit =
        fitAnsatz(weyl::gateCNS(), weyl::gateRootISWAP(2), 2, rng);
    EXPECT_GT(fit.fidelity, 1.0 - 1e-8);
}

TEST(Fit, SwapNeedsThreeSqrtIswap)
{
    Rng rng(5);
    AnsatzFit two =
        fitAnsatz(weyl::gateSWAP(), weyl::gateRootISWAP(2), 2, rng);
    EXPECT_LT(two.fidelity, 0.999); // unreachable at k=2
    AnsatzFit three =
        fitAnsatz(weyl::gateSWAP(), weyl::gateRootISWAP(2), 3, rng);
    EXPECT_GT(three.fidelity, 1.0 - 1e-7);
}

TEST(Fit, MinimalDepthSearch)
{
    Rng rng(6);
    Decomposition d = decomposeMinimal(weyl::gateCX(),
                                       weyl::gateRootISWAP(2), 4,
                                       1.0 - 1e-8, rng);
    EXPECT_EQ(d.k, 2);
    EXPECT_GT(d.fidelity, 1.0 - 1e-8);
}

TEST(Fit, RandomTargetsMatchCoverageDepth)
{
    // The numerical fit at the polytope-predicted k must succeed.
    const auto &cs = monodromy::coverageForRootIswap(2);
    Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        Mat4 target = linalg::randomSU4(rng);
        int k = cs.minK(weyl::weylCoordinates(target));
        FitOptions opts;
        opts.restarts = 4;
        AnsatzFit fit =
            fitAnsatz(target, weyl::gateRootISWAP(2), k, rng, opts);
        EXPECT_GT(fit.fidelity, 1.0 - 1e-6)
            << "trial " << trial << " k=" << k;
    }
}

TEST(NelderMead, MinimizesQuadratic)
{
    ObjectiveFn f = [](const std::vector<double> &x) {
        double s = 0;
        for (size_t i = 0; i < x.size(); ++i)
            s += (x[i] - double(i)) * (x[i] - double(i));
        return s;
    };
    double best = 0;
    auto x = nelderMead(f, {5.0, 5.0, 5.0}, 1.0, 2000, &best);
    EXPECT_LT(best, 1e-8);
    EXPECT_NEAR(x[1], 1.0, 1e-3);
}

TEST(Equivalence, SeededRulesAreCached)
{
    EquivalenceLibrary lib(2);
    const Decomposition &cx = lib.lookup(weyl::gateCX());
    EXPECT_EQ(cx.k, 2);
    EXPECT_GT(cx.fidelity, 1.0 - 1e-7);
    const Decomposition &swap = lib.lookup(weyl::gateSWAP());
    EXPECT_EQ(swap.k, 3);
    const Decomposition &cns = lib.lookup(weyl::gateCNS());
    EXPECT_EQ(cns.k, 2); // the "free" mirror of CNOT
}

TEST(Equivalence, TranslatePreservesFunction)
{
    // Translate a small mixed circuit to sqrt(iSWAP) pulses and verify
    // by simulation.
    circuit::Circuit c(3, "mix");
    c.h(0);
    c.cx(0, 1);
    c.cp(0.7, 1, 2);
    c.swap(0, 2);
    c.cx(2, 1);

    EquivalenceLibrary lib(2);
    TranslateStats stats;
    circuit::Circuit lowered = lib.translate(c, &stats);
    EXPECT_EQ(stats.blocksTranslated, 4);
    EXPECT_LT(stats.worstInfidelity, 1e-6);
    // Only RootISWAP two-qubit gates remain.
    for (const auto &g : lowered.gates()) {
        if (g.isTwoQubit())
            EXPECT_EQ(g.kind, circuit::GateKind::RootISWAP);
    }

    Rng rng(11);
    double overlap = circuit::circuitOverlap(c, lowered, {0, 1, 2}, rng);
    EXPECT_NEAR(overlap, 1.0, 1e-5);
}

TEST(Equivalence, TranslationPulseBudgetMatchesCostModel)
{
    // CNOT=2, CP=2, SWAP=3, CNOT=2 pulses -> 9 total for the circuit in
    // the previous test.
    circuit::Circuit c(3, "mix");
    c.cx(0, 1);
    c.cp(0.7, 1, 2);
    c.swap(0, 2);
    c.cx(2, 1);
    EquivalenceLibrary lib(2);
    TranslateStats stats;
    (void)lib.translate(c, &stats);
    EXPECT_NEAR(stats.totalPulses, 9.0, 1e-12);
}

TEST(Equivalence, KeyCollisionFallsBackToFreshFit)
{
    // Regression: the cache used to trust the 64-bit key of the
    // quantized unitary, so a hash collision silently returned the
    // WRONG decomposition. Force every key to collide and check that
    // the stored quantized matrix disambiguates.
    EquivalenceLibrary lib(2, /*preseed=*/false);
    lib.forceKeyCollisionsForTest();

    const Decomposition &cx = lib.lookup(weyl::gateCX());
    EXPECT_EQ(cx.k, 2);
    EXPECT_EQ(lib.collisionCount(), 0u);

    // Same 64-bit key as CX now, different unitary: the buggy code
    // returned the k=2 CX entry here.
    const Decomposition &swap = lib.lookup(weyl::gateSWAP());
    EXPECT_EQ(swap.k, 3);
    EXPECT_GT(swap.fidelity, 1.0 - 1e-6);
    EXPECT_EQ(lib.collisionCount(), 1u);
    EXPECT_EQ(lib.cacheSize(), 2u);

    // Chained entries are still cached: repeat lookups hit, not refit.
    uint64_t fits = lib.fitCount();
    const Decomposition &swap_again = lib.lookup(weyl::gateSWAP());
    EXPECT_EQ(&swap, &swap_again);
    EXPECT_EQ(lib.fitCount(), fits);

    // And the collided entries survive a save/load round trip.
    std::stringstream cache;
    lib.saveCache(cache);
    EquivalenceLibrary fresh(2, /*preseed=*/false);
    fresh.forceKeyCollisionsForTest();
    ASSERT_TRUE(fresh.loadCache(cache));
    EXPECT_EQ(fresh.cacheSize(), 2u);
    EXPECT_EQ(fresh.lookup(weyl::gateSWAP()).k, 3);
    EXPECT_EQ(fresh.fitCount(), 0u);
}

TEST(Equivalence, SaveLoadRoundTripIsExact)
{
    EquivalenceLibrary lib(2);
    std::stringstream cache;
    lib.saveCache(cache);

    EquivalenceLibrary fresh(2, /*preseed=*/false);
    ASSERT_TRUE(fresh.loadCache(cache));
    EXPECT_EQ(fresh.cacheSize(), lib.cacheSize());

    // Looking up a preseeded gate must be a pure cache hit with
    // bit-exact parameters (hexfloat serialization loses nothing).
    const Decomposition &a = lib.lookup(weyl::gateCX());
    const Decomposition &b = fresh.lookup(weyl::gateCX());
    EXPECT_EQ(fresh.fitCount(), 0u);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.fidelity, b.fidelity);
    ASSERT_EQ(a.params.size(), b.params.size());
    for (size_t i = 0; i < a.params.size(); ++i)
        EXPECT_EQ(a.params[i], b.params[i]) << "param " << i;
}
