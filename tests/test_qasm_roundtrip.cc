/**
 * @file
 * QASM round-trip property test: every bench_circuits generator family
 * dumps to OpenQASM 2.0 and re-parses to a gate-for-gate identical
 * circuit (kind, operands, parameters). Standard-gate circuits must
 * survive exactly; the test also covers parser details (comments,
 * whitespace, pi expressions, multiple registers) and rejection of
 * malformed input.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/generators.hh"
#include "circuit/qasm.hh"
#include "circuit/sim.hh"
#include "common/rng.hh"
#include "linalg/random_unitary.hh"

using namespace mirage;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

/**
 * Gate-for-gate comparison. Parameters are compared to a RELATIVE
 * 1e-9: the exporter prints %.12g (12 significant digits), so the
 * round-trip error scales with magnitude -- ~1e-12 for O(1) angles,
 * ~1e-8 for the multi-thousand-radian phases of the ae family.
 */
void
expectRoundTrips(const Circuit &original, const char *label)
{
    std::string text = circuit::toQasm(original);
    Circuit parsed = circuit::fromQasm(text);

    ASSERT_EQ(parsed.numQubits(), original.numQubits()) << label;
    ASSERT_EQ(parsed.size(), original.size()) << label;
    for (size_t i = 0; i < original.size(); ++i) {
        const Gate &want = original.gates()[i];
        const Gate &got = parsed.gates()[i];
        EXPECT_EQ(int(got.kind), int(want.kind))
            << label << " gate " << i << " (" << want.name() << ")";
        EXPECT_EQ(got.qubits, want.qubits) << label << " gate " << i;
        ASSERT_EQ(got.params.size(), want.params.size())
            << label << " gate " << i;
        for (size_t p = 0; p < want.params.size(); ++p) {
            double tol = 1e-9 * std::max(1.0, std::abs(want.params[p]));
            EXPECT_NEAR(got.params[p], want.params[p], tol)
                << label << " gate " << i << " param " << p;
        }
    }
}

} // namespace

TEST(QasmRoundTrip, AllPaperBenchmarkFamilies)
{
    // The full Table III suite: every generator family the repository
    // ships. All of them use standard gates only, so the round trip is
    // exact gate-for-gate.
    for (const auto &b : bench::paperBenchmarks()) {
        auto circ = b.make();
        expectRoundTrips(circ, b.name.c_str());
    }
}

TEST(QasmRoundTrip, TwoLocalAnsatz)
{
    expectRoundTrips(bench::twoLocalFull(5, 2, 13), "twolocal");
}

TEST(QasmRoundTrip, EveryStandardGateKind)
{
    Circuit c(3, "allgates");
    c.h(0);
    c.x(1);
    c.y(2);
    c.z(0);
    c.s(1);
    c.sdg(2);
    c.t(0);
    c.tdg(1);
    c.sx(2);
    c.rx(0.25, 0);
    c.ry(-1.5, 1);
    c.rz(2.75, 2);
    c.u3(0.1, -0.2, 0.3, 0);
    c.cx(0, 1);
    c.cz(1, 2);
    c.cp(0.7, 0, 2);
    c.crx(-0.4, 1, 0);
    c.cry(0.9, 2, 1);
    c.crz(1.1, 0, 2);
    c.swap(0, 2);
    c.iswap(1, 2);
    c.rxx(0.33, 0, 1);
    c.rzz(-0.66, 1, 2);
    c.ccx(0, 1, 2);
    c.cswap(2, 0, 1);
    expectRoundTrips(c, "allgates");
}

/**
 * Property test: random circuits over the full standard gate set must
 * round-trip gate-for-gate across 100 seeds. Unlike the fixed circuit
 * above, this explores random operand orders, repeated gates, adjacent
 * duplicates, and random angles (including negative and multi-pi
 * values) -- the inputs a hand-written example never covers.
 */
TEST(QasmRoundTrip, RandomCircuitPropertyAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 100; ++seed) {
        Rng rng(deriveSeed(0x9A5A, 0x77, seed));
        const int n = 2 + int(rng.index(5)); // 2..6 qubits
        Circuit c(n, "prop");
        const int gates = 8 + int(rng.index(25));
        for (int i = 0; i < gates; ++i) {
            const int q0 = int(rng.index(uint64_t(n)));
            int q1 = int(rng.index(uint64_t(n) - 1));
            if (q1 >= q0)
                ++q1;
            const double th = (rng.uniform() - 0.5) * 8.0 * M_PI;
            switch (rng.index(25)) {
              case 0: c.h(q0); break;
              case 1: c.x(q0); break;
              case 2: c.y(q0); break;
              case 3: c.z(q0); break;
              case 4: c.s(q0); break;
              case 5: c.sdg(q0); break;
              case 6: c.t(q0); break;
              case 7: c.tdg(q0); break;
              case 8: c.sx(q0); break;
              case 9: c.rx(th, q0); break;
              case 10: c.ry(th, q0); break;
              case 11: c.rz(th, q0); break;
              case 12:
                c.u3(th, rng.uniform() * 2, rng.uniform() * -3, q0);
                break;
              case 13: c.cx(q0, q1); break;
              case 14: c.cz(q0, q1); break;
              case 15: c.cp(th, q0, q1); break;
              case 16: c.crx(th, q0, q1); break;
              case 17: c.cry(th, q0, q1); break;
              case 18: c.crz(th, q0, q1); break;
              case 19: c.swap(q0, q1); break;
              case 20: c.iswap(q0, q1); break;
              case 21: c.rxx(th, q0, q1); break;
              case 22: c.rzz(th, q0, q1); break;
              default: {
                if (n < 3) {
                    c.cx(q0, q1);
                    break;
                }
                int q2 = int(rng.index(uint64_t(n)));
                while (q2 == q0 || q2 == q1)
                    q2 = (q2 + 1) % n;
                if (rng.uniform() < 0.5)
                    c.ccx(q0, q1, q2);
                else
                    c.cswap(q0, q1, q2);
                break;
              }
            }
        }
        expectRoundTrips(c, ("seed " + std::to_string(seed)).c_str());
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(QasmRoundTrip, ParsedCircuitIsFunctionallyIdentical)
{
    // Beyond the syntactic gate-for-gate check: the re-parsed circuit
    // must implement the same unitary (guards against, e.g., silently
    // reordered operands).
    auto circ = bench::qft(5, true);
    Circuit parsed = circuit::fromQasm(circuit::toQasm(circ));
    Rng rng(5);
    circuit::StateVector a(5), b(5);
    a.randomize(rng);
    b = a;
    a.applyCircuit(circ);
    b.applyCircuit(parsed);
    EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-9);
}

TEST(QasmParser, HandlesCommentsWhitespaceAndExpressions)
{
    const std::string text = R"(// leading comment
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];   // classical bits are skipped
rx(-pi/2) q[0];
rz(pi) q[1];
ry(2*pi/4) q[0];
cp((pi)) q[0] , q[1];
measure q[0] -> c[0];
)";
    Circuit c = circuit::fromQasm(text);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(int(c.gates()[0].kind), int(GateKind::RX));
    EXPECT_NEAR(c.gates()[0].params[0], -linalg::kPi / 2, 1e-12);
    EXPECT_NEAR(c.gates()[1].params[0], linalg::kPi, 1e-12);
    EXPECT_NEAR(c.gates()[2].params[0], linalg::kPi / 2, 1e-12);
    EXPECT_EQ(c.gates()[3].qubits, (std::vector<int>{0, 1}));
}

TEST(QasmParser, ConcatenatesMultipleRegisters)
{
    const std::string text =
        "OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a[1],b[2];\n";
    Circuit c = circuit::fromQasm(text);
    EXPECT_EQ(c.numQubits(), 5);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gates()[0].qubits, (std::vector<int>{1, 4}));
}

TEST(QasmParser, ConsolidatedBlocksLowerToParsableText)
{
    // Unitary2Q blocks are exported via their KAK parameters; the text
    // must re-parse (as u3/rxx/rzz/rx primitives, not blocks) and stay
    // functionally equivalent.
    Circuit c(2, "blocks");
    Rng rng(77);
    c.unitary(0, 1, linalg::randomSU4(rng));
    Circuit parsed = circuit::fromQasm(circuit::toQasm(c));
    EXPECT_EQ(parsed.numQubits(), 2);
    EXPECT_GT(parsed.size(), 1u);

    circuit::StateVector x(2), y(2);
    Rng state_rng(3);
    x.randomize(state_rng);
    y = x;
    x.applyCircuit(c);
    y.applyCircuit(parsed);
    EXPECT_NEAR(std::abs(x.inner(y)), 1.0, 1e-7);
}

namespace {

/** Parse and return the diagnostic the malformed input produces. */
circuit::QasmError
diagnose(const std::string &text)
{
    try {
        circuit::fromQasm(text);
    } catch (const circuit::QasmError &e) {
        return e;
    }
    ADD_FAILURE() << "expected QasmError for: " << text;
    return circuit::QasmError(0, 0, "no error raised");
}

} // namespace

TEST(QasmParser, RejectsMalformedInput)
{
    EXPECT_THROW(circuit::fromQasm("qreg q[2];"), circuit::QasmError);
    EXPECT_THROW(
        circuit::fromQasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];"),
        circuit::QasmError);
    EXPECT_THROW(circuit::fromQasm("OPENQASM 2.0;\nqreg q[1];\nh r[0];"),
                 circuit::QasmError);
    // Over-indexing must fail at parse time, not silently alias into a
    // later register's wires.
    EXPECT_THROW(circuit::fromQasm(
                     "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\nx a[3];"),
                 circuit::QasmError);
}

TEST(QasmParser, DiagnosticsCarryLineAndColumn)
{
    // Header: the bad keyword starts at 1:1.
    auto e = diagnose("qreg q[2];");
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(e.message().find("OPENQASM"), std::string::npos);

    // Unsupported statement: points at the statement word.
    e = diagnose("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];");
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(e.message().find("frobnicate"), std::string::npos);

    // Unknown register on line 3 (named in the message).
    e = diagnose("OPENQASM 2.0;\nqreg q[1];\nh r[0];");
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(e.message().find("unknown register 'r'"),
              std::string::npos);

    // Out-of-range index: points at the offending index token.
    e = diagnose("OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\nx a[3];");
    EXPECT_EQ(e.line(), 4);
    EXPECT_EQ(e.column(), 5);
    EXPECT_NE(e.message().find("out of range"), std::string::npos);

    // Wrong parameter count: points at the gate word.
    e = diagnose("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\nrx q[0];");
    EXPECT_EQ(e.line(), 4);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(e.message().find("expects 1 params"), std::string::npos);

    // Oversized literal: reported as a diagnostic, not an exit.
    e = diagnose("OPENQASM 2.0;\nqreg q[99999999999999999999];");
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(e.message().find("out of range"), std::string::npos);

    // Comments and blank lines must not desynchronize the position.
    e = diagnose(
        "OPENQASM 2.0;\n// comment line\n\nqreg q[2];\nbadgate q[0];");
    EXPECT_EQ(e.line(), 5);
    EXPECT_EQ(e.column(), 1);

    // what() is the scriptable "line:col: message" form.
    EXPECT_NE(std::string(e.what()).find("5:1: "), std::string::npos);
}
