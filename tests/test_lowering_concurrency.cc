/**
 * @file
 * Concurrency and cache-persistence tests for the basis-lowering stage.
 *
 * The equivalence library's contract is that sharing never changes
 * output: one library may serve every circuit of a transpileMany batch
 * and every thread of the trial engine, and a cache saved from one
 * library and loaded into a fresh one must reproduce bit-identical
 * circuits with zero new fits. These tests pin all three properties --
 * thread-count invariance through the pipeline, raw concurrent
 * translate() on a shared library (the TSan target), and the
 * save/load round trip.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bench_circuits/generators.hh"
#include "circuit/circuit.hh"
#include "circuit/consolidate.hh"
#include "common/exec.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;
using circuit::Circuit;
using decomp::EquivalenceLibrary;
using decomp::TranslateStats;
using topology::CouplingMap;

namespace {

std::vector<Circuit>
smallBatch()
{
    return {bench::wstate(4), bench::qft(4, true), bench::ghz(4),
            bench::bernsteinVazirani(4, 2)};
}

mirage_pass::TranspileOptions
loweringOptions(int threads)
{
    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.lowerToBasis = true;
    opts.threads = threads;
    return opts;
}

void
expectStatsEqual(const TranslateStats &a, const TranslateStats &b)
{
    EXPECT_EQ(a.blocksTranslated, b.blocksTranslated);
    EXPECT_EQ(a.totalPulses, b.totalPulses);
    EXPECT_EQ(a.worstInfidelity, b.worstInfidelity);
    EXPECT_EQ(a.rootInfidelitySum, b.rootInfidelitySum);
}

} // namespace

TEST(LoweringConcurrency, SharedLibraryBatchIsThreadCountInvariant)
{
    // One shared library per run; the lowered circuits must be
    // bit-identical between threads=1 and threads=4.
    auto circuits = smallBatch();
    auto line = CouplingMap::line(4);

    EquivalenceLibrary lib1(2), lib4(2);
    auto opts1 = loweringOptions(1);
    opts1.equivalenceLibrary = &lib1;
    auto opts4 = loweringOptions(4);
    opts4.equivalenceLibrary = &lib4;

    auto serial = mirage_pass::transpileMany(circuits, line, opts1);
    auto parallel = mirage_pass::transpileMany(circuits, line, opts4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(Circuit::bitIdentical(serial[i].routed,
                                          parallel[i].routed))
            << "circuit " << i;
        ASSERT_TRUE(serial[i].loweredToBasis);
        ASSERT_TRUE(parallel[i].loweredToBasis);
        EXPECT_TRUE(Circuit::bitIdentical(serial[i].lowered,
                                          parallel[i].lowered))
            << "circuit " << i;
        expectStatsEqual(serial[i].translateStats,
                         parallel[i].translateStats);
    }
}

TEST(LoweringConcurrency, SharedLibraryMatchesPrivateLibraries)
{
    // A batch sharing one library must produce the same circuits as
    // standalone transpile() calls that each build a private library:
    // cached fits are pure functions of the target unitary.
    auto circuits = smallBatch();
    auto line = CouplingMap::line(4);

    EquivalenceLibrary shared(2);
    auto shared_opts = loweringOptions(1);
    shared_opts.equivalenceLibrary = &shared;
    auto batch = mirage_pass::transpileMany(circuits, line, shared_opts);

    auto private_opts = loweringOptions(1);
    for (size_t i = 0; i < circuits.size(); ++i) {
        auto solo = mirage_pass::transpile(circuits[i], line, private_opts);
        EXPECT_TRUE(Circuit::bitIdentical(batch[i].lowered, solo.lowered))
            << "circuit " << i;
        // Stats other than hit/fit attribution must agree too.
        EXPECT_EQ(batch[i].translateStats.totalPulses,
                  solo.translateStats.totalPulses);
        EXPECT_EQ(batch[i].translateStats.worstInfidelity,
                  solo.translateStats.worstInfidelity);
    }
}

TEST(LoweringConcurrency, ConcurrentTranslateOnSharedLibrary)
{
    // Hammer one shared library from a thread pool: concurrent lookups
    // of overlapping key sets, including concurrent first-touch fits of
    // the same unitary. Every result must equal the serial reference.
    // (This is the test the TSan job exists for.)
    std::vector<Circuit> circuits = {bench::qft(4, true),
                                     bench::wstate(4)};
    std::vector<Circuit> consolidated;
    for (const auto &c : circuits)
        consolidated.push_back(
            circuit::consolidateBlocks(mirage_pass::unrollThreeQubit(c)));

    // Serial references from a private library.
    std::vector<Circuit> reference;
    {
        EquivalenceLibrary ref_lib(2);
        for (const auto &c : consolidated)
            reference.push_back(ref_lib.translate(c));
    }

    EquivalenceLibrary shared(2, /*preseed=*/false);
    constexpr int kJobs = 8;
    std::vector<Circuit> results(kJobs);
    exec::ThreadPool pool(4);
    pool.parallelFor(kJobs, [&](int64_t j) {
        results[size_t(j)] =
            shared.translate(consolidated[size_t(j) % consolidated.size()]);
    });

    for (int j = 0; j < kJobs; ++j) {
        EXPECT_TRUE(Circuit::bitIdentical(
            results[size_t(j)],
            reference[size_t(j) % reference.size()]))
            << "job " << j;
    }
    // Concurrent duplicate fits may race benignly, but the cache must
    // deduplicate: the distinct-unitary count is what a serial run
    // would have fitted.
    EquivalenceLibrary serial(2, /*preseed=*/false);
    for (const auto &c : consolidated)
        (void)serial.translate(c);
    EXPECT_EQ(shared.cacheSize(), serial.cacheSize());
}

TEST(LoweringConcurrency, CacheRoundTripIsBitIdenticalWithZeroNewFits)
{
    auto circuits = smallBatch();
    auto line = CouplingMap::line(4);

    EquivalenceLibrary warm(2);
    auto opts = loweringOptions(1);
    opts.equivalenceLibrary = &warm;
    auto first = mirage_pass::transpileMany(circuits, line, opts);

    std::stringstream cache;
    warm.saveCache(cache);

    // Fresh library, no preseed fits: everything must come from the
    // loaded cache.
    EquivalenceLibrary reloaded(2, /*preseed=*/false);
    ASSERT_TRUE(reloaded.loadCache(cache));
    EXPECT_EQ(reloaded.cacheSize(), warm.cacheSize());

    uint64_t fits_before = reloaded.fitCount();
    auto opts2 = loweringOptions(1);
    opts2.equivalenceLibrary = &reloaded;
    auto second = mirage_pass::transpileMany(circuits, line, opts2);
    EXPECT_EQ(reloaded.fitCount(), fits_before)
        << "warm-started library performed new fits";

    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(Circuit::bitIdentical(first[i].lowered,
                                          second[i].lowered))
            << "circuit " << i;
        EXPECT_EQ(second[i].translateStats.newFits, 0) << "circuit " << i;
        expectStatsEqual(first[i].translateStats,
                         second[i].translateStats);
    }
}

TEST(LoweringConcurrency, LoadCacheRejectsMismatchedBasisAndGarbage)
{
    EquivalenceLibrary root2(2);
    std::stringstream cache;
    root2.saveCache(cache);

    // Basis mismatch: a root-3 library must refuse a root-2 cache.
    EquivalenceLibrary root3(3, /*preseed=*/false);
    EXPECT_FALSE(root3.loadCache(cache));
    EXPECT_EQ(root3.cacheSize(), 0u);

    // Truncated stream: library unchanged.
    std::string text = cache.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EquivalenceLibrary fresh(2, /*preseed=*/false);
    EXPECT_FALSE(fresh.loadCache(truncated));
    EXPECT_EQ(fresh.cacheSize(), 0u);

    std::stringstream garbage("not a cache file at all");
    EXPECT_FALSE(fresh.loadCache(garbage));
    EXPECT_EQ(fresh.cacheSize(), 0u);

    // Absurd pulse count: rejected by the sanity bound before the
    // parser allocates a matching params vector.
    std::stringstream huge("mirage-eqlib 1 root 2 entries 1\n"
                           "entry 100000000 0x0p+0 600000006\n");
    EXPECT_FALSE(fresh.loadCache(huge));
    EXPECT_EQ(fresh.cacheSize(), 0u);

    // Lying header count: must fail at the missing entries, not
    // attempt an enormous reserve.
    std::stringstream lying(
        "mirage-eqlib 1 root 2 entries 999999999999999999\nend\n");
    EXPECT_FALSE(fresh.loadCache(lying));
    EXPECT_EQ(fresh.cacheSize(), 0u);

    // Non-finite parameter (overflowing hexfloat): corruption, not data.
    std::stringstream inf_param("mirage-eqlib 1 root 2 entries 1\n"
                                "entry 0 0x1p+99999 6\n");
    EXPECT_FALSE(fresh.loadCache(inf_param));
    EXPECT_EQ(fresh.cacheSize(), 0u);

    // The intact stream still loads.
    std::stringstream again(text);
    EXPECT_TRUE(fresh.loadCache(again));
    EXPECT_EQ(fresh.cacheSize(), root2.cacheSize());
}
