/**
 * @file
 * Build-surface smoke test: drives a small circuit end-to-end through
 * mirage::mirage_pass::transpile on a line topology and checks that the
 * MIRAGE flow's estimated depth does not regress versus the no-mirror
 * SABRE baseline, that the routed circuit is legal for the coupling map,
 * that the routed circuit is unitarily equivalent to the input (via the
 * simulation-backed oracle in support/equivalence.hh), and that the
 * reported metrics are self-consistent.
 */

#include <gtest/gtest.h>

#include "bench_circuits/generators.hh"
#include "mirage/pipeline.hh"
#include "support/equivalence.hh"
#include "topology/coupling.hh"

using namespace mirage;
using circuit::Circuit;
using testsupport::expectRoutedEquivalent;
using topology::CouplingMap;

namespace {

void
expectLegal(const Circuit &routed, const CouplingMap &coupling)
{
    for (const auto &g : routed.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(coupling.isEdge(g.qubits[0], g.qubits[1]))
                << g.name() << " on (" << g.qubits[0] << "," << g.qubits[1]
                << ")";
        }
    }
}

} // namespace

TEST(PipelineSmoke, MirageDepthNoWorseThanSabreOnLine)
{
    auto circ = bench::twoLocalFull(4, 1, 11);
    auto line = CouplingMap::line(4);

    mirage_pass::TranspileOptions base;
    base.flow = mirage_pass::Flow::SabreBaseline;
    base.tryVf2 = false;
    auto sabre = mirage_pass::transpile(circ, line, base);

    mirage_pass::TranspileOptions mir;
    mir.flow = mirage_pass::Flow::MirageDepth;
    mir.tryVf2 = false;
    auto mirage = mirage_pass::transpile(circ, line, mir);

    expectLegal(sabre.routed, line);
    expectLegal(mirage.routed, line);

    // Both flows must implement the input unitary exactly (up to the
    // layout permutations and a global phase).
    expectRoutedEquivalent(circ, sabre.routed, sabre.initial, sabre.final,
                           line.numQubits());
    expectRoutedEquivalent(circ, mirage.routed, mirage.initial,
                           mirage.final, line.numQubits());

    EXPECT_GT(sabre.metrics.depthPulses, 0.0);
    EXPECT_GT(mirage.metrics.depthPulses, 0.0);
    EXPECT_LE(mirage.metrics.depthPulses, sabre.metrics.depthPulses);
}

TEST(PipelineSmoke, ResultFieldsAreConsistent)
{
    auto circ = bench::qft(5, true);
    auto grid = CouplingMap::grid(2, 3);

    mirage_pass::TranspileOptions opts;
    opts.tryVf2 = false;
    auto res = mirage_pass::transpile(circ, grid, opts);

    expectLegal(res.routed, grid);
    expectRoutedEquivalent(circ, res.routed, res.initial, res.final,
                           grid.numQubits());
    EXPECT_GE(res.swapsAdded, 0);
    EXPECT_GE(res.mirrorCandidates, res.mirrorsAccepted);
    EXPECT_GE(res.mirrorAcceptRate(), 0.0);
    EXPECT_LE(res.mirrorAcceptRate(), 1.0);
    EXPECT_GT(res.routed.size(), 0u);
}
