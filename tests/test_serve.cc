/**
 * @file
 * Tests for the `mirage serve` persistent transpilation service: the
 * protocol layer (request validation, fingerprints, cache keys), the
 * engine (memoization, single-flight coalescing, structured errors,
 * shutdown draining), concurrent-client bit-identity against one-shot
 * `mirage transpile` output, the Unix-socket transport, and the
 * serve-bench artifact's deterministic --check gate. The concurrent
 * cases carry the `concurrency` ctest label so the TSan job exercises
 * the engine's locking.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/cli.hh"
#include "circuit/qasm.hh"
#include "common/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/traffic.hh"

using namespace mirage;

namespace {

/** A 3-qubit circuit whose CX triangle forces routing on grid-2x2. */
const char *const kQasm =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "cx q[0],q[2];\n";

/** Build a transpile request line with the test's default options. */
std::string
requestLine(int id, const std::string &qasm = kQasm,
            const std::string &extraOptions = "")
{
    json::Value doc = json::Value::object();
    doc.set("id", id);
    doc.set("qasm", qasm);
    json::Value opts = json::parse(
        extraOptions.empty() ? "{\"trials\":2,\"swapTrials\":1}"
                             : extraOptions);
    doc.set("options", std::move(opts));
    return doc.dump(0);
}

json::Value
handleParsed(serve::Engine &engine, const std::string &line)
{
    return json::parse(engine.handle(line));
}

std::string
tempDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

// --- protocol ---------------------------------------------------------------

TEST(ServeProtocol, ParseRequestRejectsUnknownFieldsAndBadRanges)
{
    auto parse = [](const std::string &text) {
        return serve::parseTranspileRequest(json::parse(text));
    };
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"bogus\":1}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{}"), serve::RequestError); // no qasm
    EXPECT_THROW(parse("{\"qasm\":1}"), serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"trials\":0}}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"swapTrials\":-1}}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"aggression\":4}}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"root\":1}}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"fwdBwd\":-1}}"),
                 serve::RequestError);
    EXPECT_THROW(parse("{\"qasm\":\"x\",\"options\":{\"nope\":1}}"),
                 serve::RequestError);
    EXPECT_THROW(
        parse("{\"qasm\":\"x\",\"options\":{\"flow\":\"sobre\"}}"),
        serve::RequestError);

    serve::TranspileRequest req = parse(
        "{\"id\":7,\"qasm\":\"x\",\"options\":{\"trials\":3,"
        "\"topology\":\"line4\",\"format\":\"qasm\",\"seed\":11}}");
    EXPECT_EQ(req.id.asInt(), 7);
    EXPECT_EQ(req.options.layoutTrials, 3);
    EXPECT_EQ(req.topology, "line4");
    EXPECT_EQ(req.format, "qasm");
    EXPECT_EQ(req.options.seed, 11u);
}

TEST(ServeProtocol, FingerprintSeparatesCircuitsAndParams)
{
    circuit::Circuit a = circuit::fromQasm(kQasm);
    circuit::Circuit b = circuit::fromQasm(kQasm);
    EXPECT_EQ(serve::circuitFingerprint(a), serve::circuitFingerprint(b));

    circuit::Circuit c = circuit::fromQasm(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[1],q[0];\n");
    EXPECT_NE(serve::circuitFingerprint(a), serve::circuitFingerprint(c));

    circuit::Circuit d = circuit::fromQasm(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
        "rz(0.5) q[0];\n");
    circuit::Circuit e = circuit::fromQasm(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
        "rz(0.25) q[0];\n");
    EXPECT_NE(serve::circuitFingerprint(d), serve::circuitFingerprint(e));
}

TEST(ServeProtocol, CacheKeyIgnoresThreadsButNotSeed)
{
    mirage_pass::TranspileOptions a, b;
    a.threads = 1;
    b.threads = 8;
    EXPECT_EQ(serve::resultCacheKey(1, "grid-2x2", a, "json"),
              serve::resultCacheKey(1, "grid-2x2", b, "json"));
    b.seed = a.seed + 1;
    EXPECT_NE(serve::resultCacheKey(1, "grid-2x2", a, "json"),
              serve::resultCacheKey(1, "grid-2x2", b, "json"));
    EXPECT_NE(serve::resultCacheKey(1, "grid-2x2", a, "json"),
              serve::resultCacheKey(1, "grid-2x2", a, "qasm"));
    EXPECT_NE(serve::resultCacheKey(1, "grid-2x2", a, "json"),
              serve::resultCacheKey(2, "grid-2x2", a, "json"));
}

// --- engine: memoization ----------------------------------------------------

TEST(ServeEngine, RepeatRequestHitsTheMemoWithObservableCounters)
{
    serve::Engine engine;
    json::Value first = handleParsed(engine, requestLine(1));
    ASSERT_TRUE(first["ok"].asBool()) << engine.handle(requestLine(1));
    EXPECT_FALSE(first["cache"]["hit"].asBool());
    EXPECT_EQ(first["cache"]["misses"].asInt(), 1);
    EXPECT_EQ(first["cache"]["hits"].asInt(), 0);

    json::Value second = handleParsed(engine, requestLine(2));
    ASSERT_TRUE(second["ok"].asBool());
    EXPECT_TRUE(second["cache"]["hit"].asBool());
    EXPECT_EQ(second["cache"]["hits"].asInt(), 1);
    EXPECT_EQ(second["cache"]["misses"].asInt(), 1);

    // Identical report, modulo the echoed id.
    EXPECT_EQ(first["report"].dump(0), second["report"].dump(0));

    // A different seed is a different key: miss again.
    json::Value third = handleParsed(
        engine, requestLine(3, kQasm,
                            "{\"trials\":2,\"swapTrials\":1,\"seed\":9}"));
    ASSERT_TRUE(third["ok"].asBool());
    EXPECT_FALSE(third["cache"]["hit"].asBool());

    serve::EngineCounters c = engine.counters();
    EXPECT_EQ(c.requests, 3u);
    EXPECT_EQ(c.transpiles, 2u);
    EXPECT_EQ(c.cacheHits, 1u);
    EXPECT_EQ(c.cacheMisses, 2u);
    EXPECT_EQ(c.errors, 0u);
}

TEST(ServeEngine, QasmFormatReturnsCircuitText)
{
    serve::Engine engine;
    json::Value resp = handleParsed(
        engine,
        requestLine(1, kQasm,
                    "{\"trials\":2,\"swapTrials\":1,\"format\":\"qasm\"}"));
    ASSERT_TRUE(resp["ok"].asBool());
    const std::string qasm = resp["qasm"].asString();
    EXPECT_NE(qasm.find("OPENQASM 2.0"), std::string::npos);
    // The emitted text must parse back.
    circuit::Circuit routed = circuit::fromQasm(qasm);
    EXPECT_GE(routed.numQubits(), 3);
}

// --- engine: structured errors ----------------------------------------------

TEST(ServeEngine, MalformedRequestsGetStructuredErrorsNotCrashes)
{
    serve::Engine engine;

    json::Value bad = handleParsed(engine, "{\"op\": nope}");
    EXPECT_FALSE(bad["ok"].asBool());
    EXPECT_EQ(bad["error"]["code"].asString(), "parse");

    json::Value badOp = handleParsed(engine, "{\"op\":\"launch\"}");
    EXPECT_FALSE(badOp["ok"].asBool());
    EXPECT_EQ(badOp["error"]["code"].asString(), "request");

    json::Value badField =
        handleParsed(engine, "{\"id\":4,\"qasm\":\"x\",\"bogus\":true}");
    EXPECT_FALSE(badField["ok"].asBool());
    EXPECT_EQ(badField["error"]["code"].asString(), "request");
    EXPECT_EQ(badField["id"].asInt(), 4); // id echoed even on failure

    json::Value badQasm = handleParsed(
        engine, requestLine(5, "OPENQASM 2.0;\nqreg q[2];\nfrobnicate;"));
    EXPECT_FALSE(badQasm["ok"].asBool());
    EXPECT_EQ(badQasm["error"]["code"].asString(), "qasm");

    json::Value badTopo = handleParsed(
        engine,
        requestLine(6, kQasm,
                    "{\"trials\":1,\"swapTrials\":1,"
                    "\"topology\":\"line2\"}"));
    EXPECT_FALSE(badTopo["ok"].asBool());
    EXPECT_EQ(badTopo["error"]["code"].asString(), "input");

    // The engine is still healthy after the error burst.
    json::Value good = handleParsed(engine, requestLine(7));
    EXPECT_TRUE(good["ok"].asBool());
    EXPECT_EQ(engine.counters().errors, 5u);
}

// --- engine: shutdown -------------------------------------------------------

TEST(ServeEngine, ShutdownRejectsNewWorkButStatsKeepAnswering)
{
    serve::Engine engine;
    ASSERT_TRUE(handleParsed(engine, requestLine(1))["ok"].asBool());

    json::Value bye = handleParsed(engine, "{\"op\":\"shutdown\"}");
    EXPECT_TRUE(bye["ok"].asBool());
    EXPECT_TRUE(engine.shuttingDown());

    json::Value rejected = handleParsed(engine, requestLine(2));
    EXPECT_FALSE(rejected["ok"].asBool());
    EXPECT_EQ(rejected["error"]["code"].asString(), "shutdown");

    json::Value stats = handleParsed(engine, "{\"op\":\"stats\"}");
    EXPECT_TRUE(stats["ok"].asBool());
    EXPECT_TRUE(stats["shuttingDown"].asBool());
}

TEST(ServeEngine, StdioTransportStopsAfterShutdownRequest)
{
    serve::Engine engine;
    std::istringstream in(requestLine(1) + "\n{\"op\":\"shutdown\"}\n" +
                          requestLine(2) + "\n");
    std::ostringstream out;
    const uint64_t handled = serve::serveStdio(engine, in, out);
    // The line after shutdown is never read.
    EXPECT_EQ(handled, 2u);
    EXPECT_NE(out.str().find("\"draining\":true"), std::string::npos);
}

// --- engine: concurrency ----------------------------------------------------

TEST(ServeEngine, ConcurrentClientsAreBitIdenticalToOneShotTranspile)
{
    // One-shot ground truth through the real CLI path (same default
    // options as requestLine: trials=2, swapTrials=1).
    const std::string qasmPath = testing::TempDir() + "serve_ident.qasm";
    {
        std::ofstream f(qasmPath);
        ASSERT_TRUE(f.is_open());
        f << kQasm;
    }
    std::ostringstream cliOut, cliErr;
    int code = cli::run({"transpile", qasmPath, "--trials", "2",
                         "--swap-trials", "1"},
                        cliOut, cliErr);
    ASSERT_EQ(code, 0) << cliErr.str();
    json::Value oneShot = json::parse(cliOut.str());

    serve::Engine engine;
    constexpr int kClients = 8;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&engine, &responses, i] {
            responses[i] = engine.handle(requestLine(i));
        });
    for (auto &t : clients)
        t.join();

    int okCount = 0;
    for (int i = 0; i < kClients; ++i) {
        json::Value resp = json::parse(responses[i]);
        ASSERT_TRUE(resp["ok"].asBool()) << responses[i];
        ++okCount;
        json::Value report = resp["report"];
        // The serve report labels the input "<request>"; align it with
        // the one-shot's file label, then demand byte equality.
        json::Value in = report["input"];
        in.set("file", qasmPath);
        report.set("input", std::move(in));
        EXPECT_EQ(report.dump(2), oneShot.dump(2)) << "client " << i;
    }
    EXPECT_EQ(okCount, kClients);

    // Every client observed the same key: exactly one compute, and
    // hits + coalesced + misses account for all of them.
    serve::EngineCounters c = engine.counters();
    EXPECT_EQ(c.transpiles, 1u);
    EXPECT_EQ(c.cacheMisses, 1u);
    EXPECT_EQ(c.cacheHits + c.coalesced + c.cacheMisses,
              uint64_t(kClients));
}

TEST(ServeEngine, MixedConcurrentRequestsEachComputeOnce)
{
    serve::Engine engine;
    constexpr int kDistinct = 3;
    constexpr int kRepeats = 4;
    std::vector<std::string> bodies;
    for (int d = 0; d < kDistinct; ++d) {
        std::string qasm = kQasm;
        // Vary the circuit by appending d extra H gates on q[0].
        for (int i = 0; i < d; ++i)
            qasm += "h q[0];\n";
        bodies.push_back(qasm);
    }
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (int r = 0; r < kRepeats; ++r)
        for (int d = 0; d < kDistinct; ++d)
            clients.emplace_back([&engine, &bodies, &failures, r, d] {
                json::Value resp = json::parse(engine.handle(
                    requestLine(r * kDistinct + d, bodies[d])));
                if (!resp["ok"].asBool())
                    ++failures;
            });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    serve::EngineCounters c = engine.counters();
    EXPECT_EQ(c.cacheMisses, uint64_t(kDistinct));
    EXPECT_EQ(c.transpiles, uint64_t(kDistinct));
    EXPECT_EQ(c.cacheHits + c.coalesced,
              uint64_t(kDistinct * (kRepeats - 1)));
}

// --- socket transport -------------------------------------------------------

TEST(ServeSocket, EightConcurrentClientsOverTheSocket)
{
    const std::string path = testing::TempDir() + "mirage_serve_test.sock";
    std::filesystem::remove(path);

    serve::Engine engine;
    serve::SocketServer server(engine, path);
    server.start();
    std::thread serverThread([&server] { server.run(); });

    constexpr int kClients = 8;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&path, &responses, i] {
            serve::SocketClient client(path);
            responses[i] = client.roundTrip(requestLine(i));
        });
    for (auto &t : clients)
        t.join();

    std::string firstReport;
    for (int i = 0; i < kClients; ++i) {
        json::Value resp = json::parse(responses[i]);
        ASSERT_TRUE(resp["ok"].asBool()) << responses[i];
        EXPECT_EQ(resp["id"].asInt(), i);
        const std::string report = resp["report"].dump(0);
        if (firstReport.empty())
            firstReport = report;
        else
            EXPECT_EQ(report, firstReport) << "client " << i;
    }

    // A shutdown request drains the server; run() returns and the
    // socket file is gone.
    serve::SocketClient closer(path);
    json::Value bye =
        json::parse(closer.roundTrip("{\"op\":\"shutdown\"}"));
    EXPECT_TRUE(bye["ok"].asBool());
    serverThread.join();
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ServeSocket, SecondServerRefusesALivePath)
{
    const std::string path =
        testing::TempDir() + "mirage_serve_live.sock";
    std::filesystem::remove(path);

    serve::Engine engine;
    serve::SocketServer server(engine, path);
    server.start();
    std::thread serverThread([&server] { server.run(); });

    serve::Engine other;
    serve::SocketServer dup(other, path);
    EXPECT_THROW(dup.start(), serve::ServeError);

    server.stop();
    serverThread.join();
}

// --- library persistence ----------------------------------------------------

TEST(ServeEngine, EquivalenceLibraryPersistsAcrossEngines)
{
    const std::string dir = tempDir("serve_eqlib_cache/");
    const std::string line = requestLine(
        1, kQasm, "{\"trials\":1,\"swapTrials\":1,\"lower\":true}");
    {
        serve::EngineOptions opts;
        opts.cacheDir = dir;
        serve::Engine engine(opts);
        json::Value resp = handleParsed(engine, line);
        ASSERT_TRUE(resp["ok"].asBool()) << engine.handle(line);
        EXPECT_TRUE(resp["report"].contains("lowered"));
    } // destructor saves the library
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/eqlib-root2.cache"));

    serve::EngineOptions opts;
    opts.cacheDir = dir;
    serve::Engine warm(opts);
    json::Value resp = handleParsed(warm, line);
    ASSERT_TRUE(resp["ok"].asBool());
    // A warm library serves every block from its decomposition cache.
    EXPECT_EQ(resp["report"]["lowered"]["newFits"].asInt(), 0);
}

// --- serve-bench ------------------------------------------------------------

TEST(ServeBench, ArtifactCountersAreExactAndCheckGates)
{
    serve::TrafficOptions opts;
    opts.clients = 4;
    opts.requestsPerClient = 3;
    opts.distinct = 2;
    opts.width = 4;
    opts.twoQubitGates = 6;
    opts.topology = "grid2x2";
    opts.trials = 2;
    opts.swapTrials = 1;

    std::ostringstream log;
    json::Value first = serve::runTraffic(opts, log);
    EXPECT_EQ(first["kind"].asString(), serve::kServeBenchKind);
    const json::Value &counters = first["counters"];
    EXPECT_EQ(counters["requests"].asInt(), 2 + 4 * 3);
    EXPECT_EQ(counters["warmupMisses"].asInt(), 2);
    EXPECT_EQ(counters["driveHits"].asInt(), 4 * 3);
    EXPECT_EQ(counters["errors"].asInt(), 0);
    EXPECT_TRUE(counters["bitIdentical"].asBool());

    // A second run reproduces the deterministic sections exactly.
    json::Value second = serve::runTraffic(opts, log);
    std::string report;
    EXPECT_TRUE(serve::checkServeArtifact(second, first, &report))
        << report;

    // Any counter drift fails the gate and is named in the report.
    json::Value doctored = first;
    json::Value badCounters = doctored["counters"];
    badCounters.set("heuristicEvals",
                    badCounters["heuristicEvals"].asInt() + 1);
    doctored.set("counters", std::move(badCounters));
    report.clear();
    EXPECT_FALSE(serve::checkServeArtifact(second, doctored, &report));
    EXPECT_NE(report.find("heuristicEvals"), std::string::npos);

    // Parameter drift (a different workload) also fails.
    json::Value otherParams = first;
    json::Value p = otherParams["parameters"];
    p.set("clients", 99);
    otherParams.set("parameters", std::move(p));
    EXPECT_FALSE(serve::checkServeArtifact(second, otherParams, &report));
}

TEST(ServeBench, SyntheticQasmIsDeterministicAndDistinctPerIndex)
{
    const std::string a = serve::syntheticQasm(0, 4, 6, 1);
    EXPECT_EQ(a, serve::syntheticQasm(0, 4, 6, 1));
    EXPECT_NE(a, serve::syntheticQasm(1, 4, 6, 1));
    EXPECT_NE(a, serve::syntheticQasm(0, 4, 6, 2));
    circuit::Circuit c = circuit::fromQasm(a);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.twoQubitGateCount(), 6);
}
