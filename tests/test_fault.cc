/**
 * @file
 * Unit tests for the deterministic fault-injection framework
 * (common/fault.hh) and the cooperative Deadline token
 * (common/deadline.hh): spec parsing and its error cases, the seeded
 * counter-based schedule (bit-reproducible across re-arms), one-shot
 * points, per-point stats, the zero-cost disarmed path, and deadline
 * expiry/cancellation semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/deadline.hh"
#include "common/fault.hh"

using namespace mirage;

namespace {

/** Every test leaves the process disarmed, whatever happens. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarm(); }
    void TearDown() override { fault::disarm(); }
};

TEST_F(FaultTest, DisarmedIsSilent)
{
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::shouldFail("catalog.load"));
    EXPECT_NO_THROW(fault::maybeThrow("fit.converge"));
    EXPECT_TRUE(fault::stats().empty());
    EXPECT_EQ(fault::injectedCount(), 0u);
    EXPECT_EQ(fault::spec(), "");
}

TEST_F(FaultTest, SpecParseErrors)
{
    EXPECT_THROW(fault::arm(""), std::invalid_argument);
    EXPECT_THROW(fault::arm("seed=42"), std::invalid_argument); // no points
    EXPECT_THROW(fault::arm("novalue"), std::invalid_argument);
    EXPECT_THROW(fault::arm("p="), std::invalid_argument);
    EXPECT_THROW(fault::arm("=1/2"), std::invalid_argument);
    EXPECT_THROW(fault::arm("seed=x,p=1/2"), std::invalid_argument);
    EXPECT_THROW(fault::arm("p=12"), std::invalid_argument);   // no slash
    EXPECT_THROW(fault::arm("p=1/0"), std::invalid_argument);  // D >= 1
    EXPECT_THROW(fault::arm("p=3/2"), std::invalid_argument);  // N <= D
    EXPECT_THROW(fault::arm("p=#0"), std::invalid_argument);   // K >= 1
    EXPECT_THROW(fault::arm("p=#x"), std::invalid_argument);
    EXPECT_THROW(fault::arm("p=1/2,p=1/3"), std::invalid_argument);
    EXPECT_FALSE(fault::armed()); // nothing ever armed
}

TEST_F(FaultTest, BadSpecLeavesPreviousScheduleArmed)
{
    fault::arm("seed=1,p=1/1");
    EXPECT_THROW(fault::arm("garbage"), std::invalid_argument);
    EXPECT_TRUE(fault::armed());
    EXPECT_EQ(fault::spec(), "seed=1,p=1/1");
    EXPECT_TRUE(fault::shouldFail("p"));
}

TEST_F(FaultTest, AlwaysAndNeverRates)
{
    fault::arm("seed=9,always=1/1,never=0/7");
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(fault::shouldFail("always"));
        EXPECT_FALSE(fault::shouldFail("never"));
    }
}

TEST_F(FaultTest, RateScheduleIsSeededAndReproducible)
{
    const char *spec = "seed=11,p=1/3";
    auto sample = [&] {
        fault::arm(spec); // re-arm resets the per-point counters
        std::vector<bool> v;
        for (int i = 0; i < 300; ++i)
            v.push_back(fault::shouldFail("p"));
        return v;
    };
    const auto first = sample();
    const auto second = sample();
    EXPECT_EQ(first, second) << "schedule must be a pure function of "
                                "(seed, point, call index)";

    int fired = 0;
    for (bool b : first)
        fired += b ? 1 : 0;
    // ~100 expected; generous bounds, deterministic in practice.
    EXPECT_GT(fired, 60);
    EXPECT_LT(fired, 140);

    // A different seed must give a different schedule.
    fault::arm("seed=12,p=1/3");
    std::vector<bool> other;
    for (int i = 0; i < 300; ++i)
        other.push_back(fault::shouldFail("p"));
    EXPECT_NE(first, other);
}

TEST_F(FaultTest, OneShotFiresExactlyOnce)
{
    fault::arm("seed=1,p=#3");
    int fired_at = -1;
    for (int call = 1; call <= 10; ++call) {
        if (fault::shouldFail("p")) {
            EXPECT_EQ(fired_at, -1) << "one-shot fired twice";
            fired_at = call;
        }
    }
    EXPECT_EQ(fired_at, 3);
    const auto stats = fault::stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].point, "p");
    EXPECT_EQ(stats[0].calls, 10u);
    EXPECT_EQ(stats[0].injected, 1u);
    EXPECT_EQ(fault::injectedCount(), 1u);
}

TEST_F(FaultTest, UnscheduledPointsAreCountedButNeverFire)
{
    fault::arm("seed=1,p=1/1");
    EXPECT_FALSE(fault::shouldFail("other.point"));
    EXPECT_FALSE(fault::shouldFail("other.point"));
    bool found = false;
    for (const auto &s : fault::stats()) {
        if (s.point == "other.point") {
            found = true;
            EXPECT_EQ(s.calls, 2u);
            EXPECT_EQ(s.injected, 0u);
        }
    }
    EXPECT_TRUE(found) << "touched points must appear in stats()";
}

TEST_F(FaultTest, MaybeThrowCarriesThePointName)
{
    fault::arm("seed=1,fit.converge=1/1");
    try {
        fault::maybeThrow("fit.converge");
        FAIL() << "expected fault::Injected";
    } catch (const fault::Injected &e) {
        EXPECT_EQ(e.point(), "fit.converge");
        EXPECT_NE(std::string(e.what()).find("fit.converge"),
                  std::string::npos);
    }
}

TEST_F(FaultTest, DisarmClearsEverything)
{
    fault::arm("seed=1,p=1/1");
    (void)fault::shouldFail("p");
    fault::disarm();
    EXPECT_FALSE(fault::armed());
    EXPECT_TRUE(fault::stats().empty());
    EXPECT_EQ(fault::injectedCount(), 0u);
    EXPECT_FALSE(fault::shouldFail("p"));
}

// --- Deadline ---------------------------------------------------------------

TEST(DeadlineTest, InactiveTokenNeverThrows)
{
    Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_NO_THROW(d.check("anywhere"));
    EXPECT_TRUE(std::isinf(d.remainingMs()));
}

TEST(DeadlineTest, ExpiryThrowsWithCheckpointName)
{
    Deadline d = Deadline::afterMs(0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(d.expired());
    try {
        d.check("route.stall");
        FAIL() << "expected DeadlineError";
    } catch (const DeadlineError &e) {
        EXPECT_NE(std::string(e.what()).find("route.stall"),
                  std::string::npos);
    }
}

TEST(DeadlineTest, GenerousBudgetDoesNotTrip)
{
    Deadline d = Deadline::afterMs(60000);
    EXPECT_TRUE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_NO_THROW(d.check("pipeline.start"));
    EXPECT_GT(d.remainingMs(), 1000.0);
}

TEST(DeadlineTest, CancelReachesEveryCopy)
{
    Deadline d = Deadline::afterMs(60000);
    Deadline copy = d;
    copy.cancel();
    EXPECT_TRUE(d.expired());
    EXPECT_THROW(d.check("fit.round"), DeadlineError);
    EXPECT_EQ(copy.remainingMs(), 0.0);
}

} // namespace
