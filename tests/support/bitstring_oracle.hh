/**
 * @file
 * Bitstring oracle for self-verifying mirror circuits.
 *
 * A mirror circuit C' = D * twist * C with D = C^-1 maps |0...0> to a
 * single known computational basis state. After routing, |0...0> on the
 * physical wires is invariant under the initial-layout permutation, so
 * correctness reduces to one sparse simulation of the ROUTED (or
 * lowered) circuit from the all-zeros state: logical bit q of the ideal
 * bitstring must appear on physical wire finalLayout(q) with probability
 * ~1. Unlike the unitary oracle in support/equivalence.hh, which is
 * exhaustive only up to 6 qubits, this check scales with the circuit's
 * entangled support (2^k amplitudes for k logical qubits), so it
 * certifies the whole transpile stack on 57-wire devices.
 *
 * Tolerances: an exactly-routed circuit must reproduce the bitstring to
 * numerical noise (probability >= 1 - 1e-9). A basis-lowered circuit
 * accumulates per-block fit error; loweringSuccessTolerance converts the
 * reported root-infidelity sum into a probability slack (errors add
 * linearly in gate count -- never exponentially). Any real routing bug
 * scatters the state across ~2^k basis states, missing both bars by many
 * orders of magnitude, which is what the doctored-pipeline tests pin.
 */

#ifndef MIRAGE_TESTS_SUPPORT_BITSTRING_ORACLE_HH
#define MIRAGE_TESTS_SUPPORT_BITSTRING_ORACLE_HH

#include <gtest/gtest.h>

#include <vector>

#include "bench_circuits/mirror.hh"
#include "circuit/circuit.hh"
#include "layout/layout.hh"
#include "support/equivalence.hh"

namespace mirage::testsupport {

/** Probability slack for a lowered circuit's measured fit error. */
inline double
loweringSuccessTolerance(double root_infidelity_sum)
{
    // |amplitude| error e (see loweringTolerance) perturbs |a|^2 by at
    // most 2e for |a| <= 1; cap so the bar stays meaningfully above the
    // ~2^-k success probability of a scrambled state.
    return std::min(0.5, 2.0 * loweringTolerance(root_infidelity_sum));
}

/** Success probability >= 1 - tol for a routed/lowered mirror circuit. */
inline ::testing::AssertionResult
bitstringRecovered(const circuit::Circuit &routed,
                   const layout::Layout &final_layout,
                   const std::vector<int> &bitstring, double tol = 1e-9)
{
    const double p = bench::mirrorSuccessProbability(
        routed, final_layout.logicalToPhysical(), bitstring);
    if (p >= 1.0 - tol)
        return ::testing::AssertionSuccess()
               << "success probability " << p;
    return ::testing::AssertionFailure()
           << "ideal bitstring recovered with probability " << p
           << " < " << (1.0 - tol) << " on " << routed.numQubits()
           << " wires (" << routed.size() << " gates)";
}

} // namespace mirage::testsupport

#endif // MIRAGE_TESTS_SUPPORT_BITSTRING_ORACLE_HH
