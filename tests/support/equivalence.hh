/**
 * @file
 * Simulation-backed routing-equivalence oracle for the test suite.
 *
 * A routed circuit R with initial layout Li and final layout Lf is
 * correct iff  R * P(Li) == P(Lf) * C  as operators on the physical
 * wire space, where C is the input circuit lifted to the device size and
 * P(L) permutes logical qubit q onto physical wire L(q). Routing SWAPs
 * and MIRAGE mirror gates both fold into Lf, so this single check covers
 * plain SABRE and every mirror aggression level.
 *
 * For small devices (<= kMaxUnitaryCheckQubits physical qubits) the
 * check is exhaustive: both sides are applied to every computational
 * basis state, giving full unitary equivalence up to one global phase.
 * Larger devices fall back to a randomized check from Haar-ish random
 * states -- a single state already certifies equivalence with
 * overwhelming probability, and callers can raise `states` for more.
 *
 * The same oracle covers BASIS-LOWERED circuits: a circuit lowered by
 * decomp::EquivalenceLibrary::translate keeps the routed circuit's
 * initial/final layouts, it just approximates each block numerically.
 * Callers pass a tolerance derived from the reported fit error
 * (loweringTolerance) instead of the default near-exact 1e-9.
 */

#ifndef MIRAGE_TESTS_SUPPORT_EQUIVALENCE_HH
#define MIRAGE_TESTS_SUPPORT_EQUIVALENCE_HH

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>

#include "circuit/circuit.hh"
#include "circuit/sim.hh"
#include "layout/layout.hh"

namespace mirage::testsupport {

/** Largest device checked exhaustively (2^n basis-state simulations). */
inline constexpr int kMaxUnitaryCheckQubits = 6;

/** Lift a logical circuit onto n_phys wires (pads idle wires). */
inline circuit::Circuit
liftToDevice(const circuit::Circuit &c, int n_phys)
{
    circuit::Circuit lifted(n_phys, c.name());
    for (const auto &g : c.gates())
        lifted.append(g);
    return lifted;
}

/**
 * Overlap |<lhs|rhs>| for one input state where
 * lhs = routed(P(initial) |psi>) and rhs = P(final)(original |psi>).
 * 1.0 means the state is mapped identically up to global phase.
 */
inline double
routedStateOverlap(const circuit::Circuit &original,
                   const circuit::Circuit &routed,
                   const layout::Layout &initial,
                   const layout::Layout &final_layout,
                   const circuit::StateVector &psi)
{
    circuit::StateVector lhs = psi.permuted(initial.logicalToPhysical());
    lhs.applyCircuit(routed);

    circuit::StateVector rhs = psi;
    rhs.applyCircuit(liftToDevice(original, psi.numQubits()));
    rhs = rhs.permuted(final_layout.logicalToPhysical());

    return std::abs(lhs.inner(rhs));
}

/**
 * Exhaustive unitary equivalence on <= kMaxUnitaryCheckQubits wires:
 * compares the full operator column by column, requiring one CONSISTENT
 * global phase across all 2^n basis states (a per-column phase would
 * hide diagonal-phase routing bugs that single-state overlaps miss).
 */
inline ::testing::AssertionResult
unitaryEquivalent(const circuit::Circuit &original,
                  const circuit::Circuit &routed,
                  const layout::Layout &initial,
                  const layout::Layout &final_layout, int n_phys,
                  double tol = 1e-9)
{
    if (n_phys > kMaxUnitaryCheckQubits) {
        return ::testing::AssertionFailure()
               << "unitaryEquivalent limited to "
               << kMaxUnitaryCheckQubits << " qubits, got " << n_phys;
    }
    const circuit::Circuit lifted = liftToDevice(original, n_phys);
    const uint64_t dim = uint64_t(1) << n_phys;

    std::complex<double> phase(0.0, 0.0);
    bool phase_fixed = false;
    for (uint64_t col = 0; col < dim; ++col) {
        circuit::StateVector basis(n_phys);
        basis.amplitudes().assign(size_t(dim), 0.0);
        basis.amplitudes()[col] = 1.0;

        circuit::StateVector lhs =
            basis.permuted(initial.logicalToPhysical());
        lhs.applyCircuit(routed);
        circuit::StateVector rhs = basis;
        rhs.applyCircuit(lifted);
        rhs = rhs.permuted(final_layout.logicalToPhysical());

        if (!phase_fixed) {
            // Fix the global phase once, on the largest entry of the
            // first column (magnitude >= 1/sqrt(dim), so the division
            // is well conditioned).
            uint64_t arg_max = 0;
            for (uint64_t row = 1; row < dim; ++row) {
                if (std::abs(rhs.amplitudes()[row]) >
                    std::abs(rhs.amplitudes()[arg_max]))
                    arg_max = row;
            }
            phase = lhs.amplitudes()[arg_max] / rhs.amplitudes()[arg_max];
            phase_fixed = true;
        }

        for (uint64_t row = 0; row < dim; ++row) {
            std::complex<double> l = lhs.amplitudes()[row];
            std::complex<double> r = rhs.amplitudes()[row];
            std::complex<double> expect = phase * r;
            if (std::abs(l - expect) > tol) {
                return ::testing::AssertionFailure()
                       << "operator mismatch at column " << col << " row "
                       << row << ": routed " << l.real() << "+"
                       << l.imag() << "i vs original*phase "
                       << expect.real() << "+" << expect.imag()
                       << "i (|phase|=" << std::abs(phase) << ")";
            }
        }
    }
    return ::testing::AssertionSuccess();
}

/**
 * Amplitude tolerance for a circuit lowered with the given reported
 * fit errors: each block of process infidelity e contributes at most
 * ~sqrt(2e) operator-norm error, and errors add linearly in the worst
 * case. The floor keeps the tolerance meaningful when every fit is
 * essentially exact.
 */
inline double
loweringTolerance(double root_infidelity_sum)
{
    return 1e-7 + 8.0 * root_infidelity_sum;
}

/**
 * The routing oracle: exhaustive unitary check on small devices,
 * randomized state overlap otherwise. `tol` is the per-amplitude
 * (respectively overlap) tolerance -- the default expects an exact
 * routing transform; lowered circuits pass loweringTolerance(...).
 */
inline void
expectRoutedEquivalent(const circuit::Circuit &original,
                       const circuit::Circuit &routed,
                       const layout::Layout &initial,
                       const layout::Layout &final_layout, int n_phys,
                       uint64_t seed = 0xE9A1, int states = 2,
                       double tol = 1e-9)
{
    if (n_phys <= kMaxUnitaryCheckQubits) {
        EXPECT_TRUE(unitaryEquivalent(original, routed, initial,
                                      final_layout, n_phys, tol));
        return;
    }
    Rng rng(seed);
    for (int i = 0; i < states; ++i) {
        circuit::StateVector psi(n_phys);
        psi.randomize(rng);
        EXPECT_NEAR(routedStateOverlap(original, routed, initial,
                                       final_layout, psi),
                    1.0, tol)
            << "random-state check " << i << " (seed " << seed << ")";
    }
}

} // namespace mirage::testsupport

#endif // MIRAGE_TESTS_SUPPORT_EQUIVALENCE_HH
