/**
 * @file
 * Fit-catalog persistence suite: the contracts that make committing
 * FIT_CATALOG.bin safe.
 *
 * 1. Round-trip byte identity: saveCache -> loadCache -> saveCache
 *    reproduces the exact bytes, so `mirage catalog check` can gate CI
 *    on a binary compare instead of a semantic diff.
 * 2. Warm lowering: a library loaded from a catalog translates the
 *    same circuit with newFits == 0, fitEvaluations == 0, and
 *    bit-identical lowered QASM versus the cold fit -- at threads 1
 *    and 4 (the catalog must not perturb the thread-invariance
 *    guarantee).
 * 3. Rejection: truncated, corrupted, version-bumped, wrong-basis, and
 *    unreadable catalogs are refused with a diagnostic, and the
 *    unreadable-vs-malformed split of loadCacheFileDetailed is pinned
 *    so `mirage catalog check` and serve startup can report which
 *    failure happened.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench_circuits/generators.hh"
#include "circuit/qasm.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;
using decomp::EquivalenceLibrary;
using Status = EquivalenceLibrary::CacheLoadStatus;

namespace {

/** The lowering config shared by every test in this file. */
mirage_pass::TranspileOptions
loweringOptions(int threads)
{
    mirage_pass::TranspileOptions opts;
    opts.rootDegree = 2;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.lowerToBasis = true;
    opts.threads = threads;
    return opts;
}

/** A small input whose SU(4) blocks genuinely need numerical fits. */
const circuit::Circuit &
fixtureCircuit()
{
    static const circuit::Circuit c = bench::twoLocalFull(4);
    return c;
}

const topology::CouplingMap &
fixtureTopology()
{
    static const topology::CouplingMap topo =
        topology::CouplingMap::grid(2, 2);
    return topo;
}

/** Cold-fit the fixture once; every test reuses the same catalog. */
struct ColdFit
{
    std::string catalog;    ///< saveCache bytes of the cold library
    std::string loweredQasm;
    int newFits = 0;
};

const ColdFit &
coldFit()
{
    static const ColdFit fit = [] {
        EquivalenceLibrary lib(2);
        auto opts = loweringOptions(1);
        opts.equivalenceLibrary = &lib;
        auto res = mirage_pass::transpile(fixtureCircuit(),
                                          fixtureTopology(), opts);
        ColdFit f;
        std::ostringstream bytes;
        lib.saveCache(bytes);
        f.catalog = bytes.str();
        f.loweredQasm = circuit::toQasm(res.lowered);
        f.newFits = res.translateStats.newFits;
        return f;
    }();
    return fit;
}

/** Write `bytes` to a fresh file under the test temp dir. */
std::string
writeTempCatalog(const std::string &name, const std::string &bytes)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream f(path);
    EXPECT_TRUE(f.is_open()) << path;
    f << bytes;
    return path;
}

TEST(FitCatalog, SaveLoadSaveIsByteIdentical)
{
    const ColdFit &cold = coldFit();
    ASSERT_GT(cold.newFits, 0) << "fixture must exercise real fits";
    ASSERT_FALSE(cold.catalog.empty());

    EquivalenceLibrary loaded(2, /*preseed=*/false);
    std::istringstream in(cold.catalog);
    std::string error;
    ASSERT_TRUE(loaded.loadCache(in, &error)) << error;

    std::ostringstream again;
    loaded.saveCache(again);
    EXPECT_EQ(cold.catalog, again.str());
}

TEST(FitCatalog, WarmLoweringIsFitFreeAndBitIdentical)
{
    const ColdFit &cold = coldFit();
    for (int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EquivalenceLibrary warm(2, /*preseed=*/false);
        std::istringstream in(cold.catalog);
        ASSERT_TRUE(warm.loadCache(in));

        auto opts = loweringOptions(threads);
        opts.equivalenceLibrary = &warm;
        auto res = mirage_pass::transpile(fixtureCircuit(),
                                          fixtureTopology(), opts);
        EXPECT_EQ(res.translateStats.newFits, 0);
        EXPECT_EQ(res.translateStats.fitEvaluations, 0u);
        EXPECT_EQ(circuit::toQasm(res.lowered), cold.loweredQasm);
    }
}

TEST(FitCatalog, TruncatedCatalogRejectedWithDiagnostic)
{
    const std::string &bytes = coldFit().catalog;
    // Cut mid-entry: parsing must fail without mutating the library.
    const std::string truncated = bytes.substr(0, bytes.size() * 3 / 5);
    EquivalenceLibrary lib(2, /*preseed=*/false);
    std::istringstream in(truncated);
    std::string error;
    EXPECT_FALSE(lib.loadCache(in, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(lib.cacheSize(), 0u)
        << "a rejected catalog must not leave partial entries behind";
}

TEST(FitCatalog, MissingEndMarkerRejected)
{
    std::string bytes = coldFit().catalog;
    const size_t end = bytes.rfind("end");
    ASSERT_NE(end, std::string::npos);
    bytes.resize(end);
    EquivalenceLibrary lib(2, /*preseed=*/false);
    std::istringstream in(bytes);
    std::string error;
    EXPECT_FALSE(lib.loadCache(in, &error));
    EXPECT_NE(error.find("missing end marker"), std::string::npos)
        << error;
}

TEST(FitCatalog, CorruptedEntryRejected)
{
    std::string bytes = coldFit().catalog;
    // Replace the first hexfloat with a non-numeric token.
    const size_t pos = bytes.find("0x");
    ASSERT_NE(pos, std::string::npos);
    bytes.replace(pos, 2, "!!");
    EquivalenceLibrary lib(2, /*preseed=*/false);
    std::istringstream in(bytes);
    std::string error;
    EXPECT_FALSE(lib.loadCache(in, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(lib.cacheSize(), 0u);
}

TEST(FitCatalog, VersionBumpRejected)
{
    std::string bytes = coldFit().catalog;
    const std::string magic = "mirage-eqlib 1";
    const size_t pos = bytes.find(magic);
    ASSERT_EQ(pos, 0u);
    bytes[magic.size() - 1] = '2';
    EquivalenceLibrary lib(2, /*preseed=*/false);
    std::istringstream in(bytes);
    std::string error;
    EXPECT_FALSE(lib.loadCache(in, &error));
    EXPECT_NE(error.find("unsupported cache format version 2"),
              std::string::npos)
        << error;
}

TEST(FitCatalog, BasisMismatchRejected)
{
    EquivalenceLibrary lib(3, /*preseed=*/false);
    std::istringstream in(coldFit().catalog);
    std::string error;
    EXPECT_FALSE(lib.loadCache(in, &error));
    EXPECT_NE(error.find("basis mismatch"), std::string::npos) << error;
}

TEST(FitCatalog, DetailedLoadSplitsUnreadableFromMalformed)
{
    EquivalenceLibrary lib(2, /*preseed=*/false);

    // Unreadable: the file does not exist.
    const std::string missing =
        ::testing::TempDir() + "no-such-catalog.bin";
    auto unreadable = lib.loadCacheFileDetailed(missing);
    EXPECT_EQ(unreadable.status, Status::Unreadable);
    EXPECT_NE(unreadable.message.find("cannot open"), std::string::npos)
        << unreadable.message;

    // Malformed: the file exists but is not a catalog.
    const std::string garbage =
        writeTempCatalog("garbage-catalog.bin", "not a catalog\n");
    auto malformed = lib.loadCacheFileDetailed(garbage);
    EXPECT_EQ(malformed.status, Status::Malformed);
    EXPECT_NE(malformed.message.find(garbage), std::string::npos)
        << "malformed diagnostic must name the file: "
        << malformed.message;
    EXPECT_NE(malformed.message.find("bad magic"), std::string::npos)
        << malformed.message;

    // The bool overload keeps its old contract for both outcomes.
    EXPECT_FALSE(lib.loadCacheFile(missing));
    EXPECT_FALSE(lib.loadCacheFile(garbage));

    // A good file round-trips through the same API.
    const std::string good =
        writeTempCatalog("good-catalog.bin", coldFit().catalog);
    auto ok = lib.loadCacheFileDetailed(good);
    EXPECT_EQ(ok.status, Status::Ok);
    EXPECT_TRUE(ok.message.empty());
    EXPECT_EQ(ok.entriesLoaded, lib.cacheSize());
    EXPECT_GT(ok.entriesLoaded, 0u);
}

} // namespace
