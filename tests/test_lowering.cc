/**
 * @file
 * Simulator-verified basis-lowering suite.
 *
 * Drives every Table III generator family through the full pipeline
 * with TranspileOptions::lowerToBasis and proves, via the shared
 * equivalence oracle, that the lowered circuit implements the input
 * unitary: exhaustively (full operator, one consistent global phase)
 * for families instantiated on <= 6 physical qubits, by randomized
 * state overlap for the fixed-size larger families. Every lowered
 * circuit must contain only RootISWAP + one-qubit gates, report
 * worstInfidelity below 1e-6, and have measured pulse metrics
 * consistent with the polytope estimates.
 *
 * Also holds the golden-snapshot regression: three small benchmark
 * circuits lowered without routing are compared gate-for-gate against
 * committed QASM snapshots (tests/golden/), and the depth_metric
 * estimate must match TranslateStats::totalPulses exactly on
 * consolidated inputs. Set MIRAGE_REGEN_GOLDEN=1 to rewrite the
 * snapshots after an intentional change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "circuit/qasm.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "support/equivalence.hh"
#include "topology/coupling.hh"

using namespace mirage;
using circuit::Circuit;
using circuit::GateKind;
using topology::CouplingMap;

namespace {

/** Every 2Q gate is a RootISWAP of the expected degree; rest is 1Q. */
void
expectBasisOnly(const Circuit &lowered, int root_degree)
{
    for (const auto &g : lowered.gates()) {
        if (g.isBarrier())
            continue;
        if (g.isTwoQubit()) {
            ASSERT_EQ(g.kind, GateKind::RootISWAP) << g.name();
            EXPECT_EQ(int(g.params.at(0)), root_degree);
        } else {
            EXPECT_TRUE(g.isOneQubit()) << g.name();
        }
    }
}

/**
 * Full-pipeline lowering check for one circuit: transpile with
 * lowerToBasis, verify the gate set, the infidelity bar, the
 * estimated-vs-measured metric consistency, and simulator equivalence
 * of the LOWERED circuit against the original input.
 */
void
checkLowering(const Circuit &circ, const CouplingMap &coupling,
              int layout_trials = 4, int states = 1)
{
    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.layoutTrials = layout_trials;
    opts.lowerToBasis = true;
    auto res = mirage_pass::transpile(circ, coupling, opts);

    ASSERT_TRUE(res.loweredToBasis);
    ASSERT_GT(res.lowered.size(), 0u);
    expectBasisOnly(res.lowered, opts.rootDegree);

    EXPECT_LT(res.translateStats.worstInfidelity, 1e-6);
    EXPECT_EQ(res.translateStats.blocksTranslated,
              res.translateStats.cacheHits + res.translateStats.newFits);

    // Measured metrics must agree with the translation stats exactly,
    // and the polytope estimate can never exceed the measurement (a
    // fitted block uses at least the polytope-minimal pulse count).
    EXPECT_NEAR(res.loweredMetrics.totalPulses,
                res.translateStats.totalPulses, 1e-9);
    EXPECT_GE(res.loweredMetrics.totalPulses + 1e-9,
              res.metrics.totalPulses);
    EXPECT_GE(res.loweredMetrics.depthPulses + 1e-9,
              res.metrics.depthPulses);
    EXPECT_EQ(res.loweredMetrics.swapGates, 0);

    double tol = testsupport::loweringTolerance(
        res.translateStats.rootInfidelitySum);
    testsupport::expectRoutedEquivalent(circ, res.lowered, res.initial,
                                        res.final, coupling.numQubits(),
                                        0xE9A1, states, tol);
}

} // namespace

// --- Table III families on <= 6 qubits: exhaustive operator check ---------

TEST(LoweringFamilies, WState)
{
    checkLowering(bench::wstate(5), CouplingMap::line(5));
}

TEST(LoweringFamilies, QftEntangled)
{
    checkLowering(bench::qftEntangled(4), CouplingMap::line(4));
}

TEST(LoweringFamilies, QpeExact)
{
    checkLowering(bench::qpeExact(4), CouplingMap::line(4));
}

TEST(LoweringFamilies, AmplitudeEstimation)
{
    checkLowering(bench::amplitudeEstimation(4), CouplingMap::line(4));
}

TEST(LoweringFamilies, Qft)
{
    checkLowering(bench::qft(5, true), CouplingMap::line(5));
}

TEST(LoweringFamilies, BernsteinVazirani)
{
    checkLowering(bench::bernsteinVazirani(5, 3), CouplingMap::line(5));
}

TEST(LoweringFamilies, BigAdder)
{
    checkLowering(bench::bigadder(6), CouplingMap::line(6));
}

TEST(LoweringFamilies, PortfolioQaoa)
{
    checkLowering(bench::portfolioQaoa(4, 2), CouplingMap::line(4));
}

TEST(LoweringFamilies, Knn)
{
    checkLowering(bench::knn(5), CouplingMap::line(5));
}

TEST(LoweringFamilies, SwapTest)
{
    checkLowering(bench::swapTest(5), CouplingMap::line(5));
}

// --- fixed-size families above 6 qubits: randomized-overlap check ----------

TEST(LoweringFamiliesLarge, Seca)
{
    checkLowering(bench::seca(11), CouplingMap::grid(3, 4),
                  /*layout_trials=*/2);
}

TEST(LoweringFamiliesLarge, SatGrover)
{
    checkLowering(bench::satGrover(11), CouplingMap::grid(3, 4),
                  /*layout_trials=*/2);
}

TEST(LoweringFamiliesLarge, Multiplier)
{
    checkLowering(bench::multiplier(15), CouplingMap::grid(3, 5),
                  /*layout_trials=*/2);
}

TEST(LoweringFamiliesLarge, Qec9xz)
{
    checkLowering(bench::qec9xz(17), CouplingMap::grid(3, 6),
                  /*layout_trials=*/2);
}

TEST(LoweringFamiliesLarge, Qram)
{
    checkLowering(bench::qram(20), CouplingMap::grid(4, 5),
                  /*layout_trials=*/2);
}

// --- golden snapshots ------------------------------------------------------

namespace {

/** Deterministic routing-free lowering used for the snapshots. */
Circuit
lowerDirect(const Circuit &input, decomp::TranslateStats *stats,
            Circuit *consolidated_out = nullptr)
{
    Circuit unrolled = mirage_pass::unrollThreeQubit(input);
    Circuit consolidated = circuit::consolidateBlocks(unrolled);
    if (consolidated_out)
        *consolidated_out = consolidated;
    decomp::EquivalenceLibrary lib(2);
    return lib.translate(consolidated, stats);
}

std::string
goldenPath(const std::string &name)
{
    return std::string(MIRAGE_TEST_DATA_DIR) + "/golden/" + name + ".qasm";
}

/**
 * Compare against the committed snapshot gate-for-gate (kinds and
 * operands exact, parameters to 1e-9 -- robust to last-ulp libm
 * differences across toolchains while still pinning the decomposition).
 */
void
checkGolden(const std::string &name, const Circuit &input)
{
    decomp::TranslateStats stats;
    Circuit consolidated;
    Circuit lowered = lowerDirect(input, &stats, &consolidated);
    std::string qasm = circuit::toQasm(lowered);

    if (std::getenv("MIRAGE_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath(name));
        ASSERT_TRUE(out) << "cannot write " << goldenPath(name);
        out << qasm;
        GTEST_SKIP() << "regenerated " << goldenPath(name);
    }

    // The polytope estimate and the translation must agree exactly on
    // consolidated inputs: both derive each block's pulse count from
    // the same cost model.
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto estimated = mirage_pass::computeMetrics(consolidated, cost);
    EXPECT_NEAR(estimated.totalPulses, stats.totalPulses, 1e-9);

    std::ifstream in(goldenPath(name));
    ASSERT_TRUE(in) << "missing snapshot " << goldenPath(name)
                    << " (run with MIRAGE_REGEN_GOLDEN=1 to create)";
    std::stringstream buf;
    buf << in.rdbuf();
    Circuit expected = circuit::fromQasm(buf.str());
    Circuit actual = circuit::fromQasm(qasm);

    ASSERT_EQ(actual.numQubits(), expected.numQubits());
    ASSERT_EQ(actual.size(), expected.size())
        << "lowered gate count drifted from snapshot " << name;
    for (size_t i = 0; i < actual.size(); ++i) {
        const auto &a = actual.gates()[i];
        const auto &e = expected.gates()[i];
        ASSERT_EQ(a.kind, e.kind) << "gate " << i;
        ASSERT_EQ(a.qubits, e.qubits) << "gate " << i;
        ASSERT_EQ(a.params.size(), e.params.size()) << "gate " << i;
        for (size_t p = 0; p < a.params.size(); ++p)
            ASSERT_NEAR(a.params[p], e.params[p], 1e-9)
                << "gate " << i << " param " << p;
    }
}

} // namespace

TEST(LoweringGolden, WState4)
{
    checkGolden("wstate_n4_lowered", bench::wstate(4));
}

TEST(LoweringGolden, Qft4)
{
    checkGolden("qft_n4_lowered", bench::qft(4, true));
}

TEST(LoweringGolden, BernsteinVazirani4)
{
    checkGolden("bv_n4_lowered", bench::bernsteinVazirani(4, 2));
}
