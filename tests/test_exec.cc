/**
 * @file
 * Tests for the exec concurrency subsystem and the counter-based RNG
 * streams: pool lifecycle (shutdown drains the queue), exception
 * propagation through parallelFor and submit, stream independence
 * (no shared prefixes, negligible cross-correlation), and the central
 * guarantee that routeWithTrials / transpileMany produce bit-identical
 * results for every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "common/exec.hh"
#include "common/rng.hh"
#include "mirage/pipeline.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

using namespace mirage;
using circuit::Circuit;
using circuit::Gate;
using topology::CouplingMap;

namespace {

/**
 * Bit-exact circuit comparison (doubles compared with ==, not near).
 * Circuit::bitIdentical is the authoritative check (shared with the
 * bench binaries); the field-by-field EXPECTs below exist to localize
 * a mismatch when it fails.
 */
void
expectIdenticalCircuits(const Circuit &a, const Circuit &b)
{
    EXPECT_TRUE(Circuit::bitIdentical(a, b));
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        EXPECT_EQ(int(ga.kind), int(gb.kind)) << "gate " << i;
        EXPECT_EQ(ga.qubits, gb.qubits) << "gate " << i;
        EXPECT_EQ(ga.params, gb.params) << "gate " << i;
        EXPECT_EQ(ga.mirrored, gb.mirrored) << "gate " << i;
        ASSERT_EQ(ga.mat4.has_value(), gb.mat4.has_value()) << "gate " << i;
        if (ga.mat4.has_value()) {
            for (size_t k = 0; k < 16; ++k)
                EXPECT_EQ(ga.mat4->a[k], gb.mat4->a[k])
                    << "gate " << i << " entry " << k;
        }
        ASSERT_EQ(ga.coords.has_value(), gb.coords.has_value())
            << "gate " << i;
        if (ga.coords.has_value()) {
            EXPECT_EQ(ga.coords->a, gb.coords->a) << "gate " << i;
            EXPECT_EQ(ga.coords->b, gb.coords->b) << "gate " << i;
            EXPECT_EQ(ga.coords->c, gb.coords->c) << "gate " << i;
        }
    }
}

void
expectIdenticalRouteResults(const router::RouteResult &a,
                            const router::RouteResult &b)
{
    expectIdenticalCircuits(a.routed, b.routed);
    EXPECT_TRUE(a.initial == b.initial);
    EXPECT_TRUE(a.final == b.final);
    EXPECT_EQ(a.swapsAdded, b.swapsAdded);
    EXPECT_EQ(a.mirrorsAccepted, b.mirrorsAccepted);
    EXPECT_EQ(a.mirrorCandidates, b.mirrorCandidates);
    EXPECT_EQ(a.estDepth, b.estDepth);         // bitwise, not NEAR
    EXPECT_EQ(a.estTotalCost, b.estTotalCost); // bitwise, not NEAR
}

router::TrialOptions
mirageTrialOptions(const monodromy::CostModel &cost, uint64_t seed)
{
    router::TrialOptions opts;
    opts.layoutTrials = 4;
    opts.swapTrials = 3;
    opts.forwardBackwardPasses = 2;
    opts.postSelect = router::PostSelect::Depth;
    opts.trialAggression = router::mirageAggressionMix(4);
    opts.pass.costModel = &cost;
    opts.seed = seed;
    return opts;
}

} // namespace

// --- thread pool lifecycle ---------------------------------------------------

TEST(Exec, ResolveThreads)
{
    EXPECT_GE(exec::resolveThreads(0), 1);
    EXPECT_EQ(exec::resolveThreads(1), 1);
    EXPECT_EQ(exec::resolveThreads(7), 7);
}

TEST(Exec, SubmitRunsTasks)
{
    exec::ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&ran] { ++ran; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(ran.load(), 32);
}

TEST(Exec, ShutdownDrainsQueuedTasks)
{
    // Destroying the pool must finish every already-submitted task, not
    // abandon the queue.
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        // destructor runs here with the queue most likely non-empty
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(Exec, ParallelForCoversEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(257, [&](int64_t i) { ++hits[size_t(i)]; });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Exec, NullPoolFallbackRunsInline)
{
    std::vector<int> order;
    exec::parallelFor(nullptr, 5, [&](int64_t i) {
        order.push_back(int(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Exec, ParallelForPropagatesFirstException)
{
    exec::ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](int64_t i) {
                             if (i == 13)
                                 throw std::runtime_error("boom");
                             ++ran;
                         }),
        std::runtime_error);
    // Cancellation means not every index ran, but the pool survives and
    // stays usable.
    std::atomic<int> again{0};
    pool.parallelFor(50, [&](int64_t) { ++again; });
    EXPECT_EQ(again.load(), 50);
}

TEST(Exec, SubmitFutureCarriesException)
{
    exec::ThreadPool pool(1);
    auto fut = pool.submit([] { throw std::logic_error("task failed"); });
    EXPECT_THROW(fut.get(), std::logic_error);
}

// --- counter-based RNG streams ----------------------------------------------

TEST(RngStreams, CounterBasedRandomAccess)
{
    StreamRng s(42, 7);
    std::vector<uint64_t> drawn;
    for (int i = 0; i < 16; ++i)
        drawn.push_back(s());
    EXPECT_EQ(s.counter(), 16u);
    // at() is pure random access (stateless), and a fresh stream with
    // the same key replays identically.
    StreamRng replay(42, 7);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(drawn[size_t(i)], s.at(uint64_t(i))) << "draw " << i;
        EXPECT_EQ(drawn[size_t(i)], replay.at(uint64_t(i)));
        EXPECT_EQ(drawn[size_t(i)], deriveSeed(42, 7, uint64_t(i)));
    }
}

TEST(RngStreams, DistinctStreamsShareNoPrefix)
{
    // Overlapping prefixes between trial streams would correlate trials
    // that are supposed to be independent. With 64-bit outputs, ANY
    // repeated value across the first 64 draws of 32 streams indicates a
    // structural flaw (collision probability ~2^-53).
    std::set<uint64_t> seen;
    const int streams = 32, draws = 64;
    for (int s = 0; s < streams; ++s) {
        StreamRng rng(0xFEED, uint64_t(s));
        for (int i = 0; i < draws; ++i)
            EXPECT_TRUE(seen.insert(rng()).second)
                << "stream " << s << " draw " << i << " repeats a value";
    }
    // Same check across different master seeds (seed changes must remap
    // every stream).
    for (int s = 0; s < streams; ++s) {
        StreamRng rng(0xFEED + 1, uint64_t(s));
        for (int i = 0; i < draws; ++i)
            EXPECT_TRUE(seen.insert(rng()).second)
                << "seed+1 stream " << s << " draw " << i;
    }
}

TEST(RngStreams, StreamsAreUncorrelated)
{
    // Pearson correlation between uniform [0,1) projections of adjacent
    // streams; for independent uniforms with n = 4096 the estimator's
    // std dev is ~1/sqrt(n) ~ 0.016, so |r| < 0.08 is a 5-sigma bound.
    const int n = 4096;
    auto uniforms = [&](uint64_t stream) {
        std::vector<double> v;
        StreamRng rng(0xABCD, stream);
        for (int i = 0; i < n; ++i)
            v.push_back(double(rng() >> 11) * 0x1.0p-53);
        return v;
    };
    auto corr = [&](const std::vector<double> &x,
                    const std::vector<double> &y) {
        double mx = 0, my = 0;
        for (int i = 0; i < n; ++i) {
            mx += x[size_t(i)];
            my += y[size_t(i)];
        }
        mx /= n;
        my /= n;
        double sxy = 0, sxx = 0, syy = 0;
        for (int i = 0; i < n; ++i) {
            double dx = x[size_t(i)] - mx, dy = y[size_t(i)] - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        return sxy / std::sqrt(sxx * syy);
    };
    auto s0 = uniforms(0);
    for (uint64_t s = 1; s <= 4; ++s) {
        double r = corr(s0, uniforms(s));
        EXPECT_LT(std::abs(r), 0.08) << "streams 0 and " << s;
    }
    // Basic uniformity of a single stream.
    double mean = 0;
    for (double v : s0)
        mean += v;
    mean /= n;
    EXPECT_NEAR(mean, 0.5, 0.02);
}

// --- thread-count invariance of the routing engine ---------------------------

TEST(Trials, ThreadCountInvariance)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::qft(6, true));
    auto grid = CouplingMap::grid(3, 3);

    auto opts = mirageTrialOptions(cost, 2024);
    opts.threads = 1;
    router::RouteResult serial = router::routeWithTrials(circ, grid, opts);

    opts.threads = 4;
    router::RouteResult parallel =
        router::routeWithTrials(circ, grid, opts);
    expectIdenticalRouteResults(serial, parallel);

    // Repeat runs with the same thread count are stable too.
    router::RouteResult parallel2 =
        router::routeWithTrials(circ, grid, opts);
    expectIdenticalRouteResults(parallel, parallel2);

    // An externally owned pool (the transpileMany path) changes nothing.
    exec::ThreadPool pool(3);
    opts.threads = 1;
    opts.pool = &pool;
    router::RouteResult pooled = router::routeWithTrials(circ, grid, opts);
    expectIdenticalRouteResults(serial, pooled);
}

TEST(Trials, ThreadCountInvarianceSwapPostSelect)
{
    // Same guarantee for the plain-SABRE flow (no cost model, SWAP
    // post-selection).
    auto circ = bench::qft(5, true);
    auto line = CouplingMap::line(5);
    router::TrialOptions opts;
    opts.layoutTrials = 3;
    opts.swapTrials = 4;
    opts.seed = 31337;

    opts.threads = 1;
    router::RouteResult serial = router::routeWithTrials(circ, line, opts);
    opts.threads = 4;
    router::RouteResult parallel =
        router::routeWithTrials(circ, line, opts);
    expectIdenticalRouteResults(serial, parallel);
}

TEST(TranspileMany, MatchesIndividualTranspile)
{
    auto grid = CouplingMap::grid(3, 3);
    std::vector<Circuit> batch;
    batch.push_back(bench::qft(6, true));
    batch.push_back(bench::ghz(7));
    batch.push_back(bench::wstate(5));

    mirage_pass::TranspileOptions opts;
    opts.tryVf2 = false;
    opts.layoutTrials = 3;
    opts.swapTrials = 2;

    opts.threads = 4;
    auto batched = mirage_pass::transpileMany(batch, grid, opts);
    ASSERT_EQ(batched.size(), batch.size());

    opts.threads = 1;
    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = mirage_pass::transpile(batch[i], grid, opts);
        expectIdenticalCircuits(batched[i].routed, solo.routed);
        EXPECT_TRUE(batched[i].initial == solo.initial);
        EXPECT_TRUE(batched[i].final == solo.final);
        EXPECT_EQ(batched[i].swapsAdded, solo.swapsAdded);
        EXPECT_EQ(batched[i].metrics.depth, solo.metrics.depth);
    }
}
