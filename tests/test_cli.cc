/**
 * @file
 * In-process tests for the `mirage` command-line tool: argument-parser
 * behavior, JSON layer round trips, subcommand exit codes and error
 * messages, QASM diagnostics surfaced as file:line:col, artifact
 * schema validation, and deterministic transpile output across runs
 * and thread counts. Everything drives cli::run directly -- no
 * subprocesses -- so failures point at the exact layer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "bench_circuits/generators.hh"
#include "circuit/qasm.hh"
#include "cli/args.hh"
#include "cli/cli.hh"
#include "cli/experiments.hh"
#include "common/json.hh"

using namespace mirage;

namespace {

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
runCli(const std::vector<std::string> &args)
{
    std::ostringstream out, err;
    int code = cli::run(args, out, err);
    return {code, out.str(), err.str()};
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    f << content;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.is_open()) << path;
    std::ostringstream buf;
    buf << f.rdbuf();
    return buf.str();
}

} // namespace

// --- argument parser --------------------------------------------------------

TEST(ArgumentParser, FlagsOptionsAndPositionals)
{
    cli::ArgumentParser p("test", "<file>");
    p.addFlag("--lower", "flag");
    p.addOption("--seed", "N", "42", "seed");
    p.addOption("--topology", "SPEC", "auto", "topo");
    p.parse({"a.qasm", "--lower", "--seed=7", "--topology", "grid3x3",
             "--", "--not-an-option"});
    EXPECT_TRUE(p.flag("--lower"));
    EXPECT_EQ(p.intOption("--seed"), 7);
    EXPECT_TRUE(p.optionSeen("--seed"));
    EXPECT_EQ(p.option("--topology"), "grid3x3");
    ASSERT_EQ(p.positionals().size(), 2u);
    EXPECT_EQ(p.positionals()[0], "a.qasm");
    EXPECT_EQ(p.positionals()[1], "--not-an-option");
}

TEST(ArgumentParser, DefaultsApplyWhenAbsent)
{
    cli::ArgumentParser p("test", "");
    p.addOption("--seed", "N", "42", "seed");
    p.addFlag("--lower", "flag");
    p.parse({});
    EXPECT_EQ(p.intOption("--seed"), 42);
    EXPECT_FALSE(p.optionSeen("--seed"));
    EXPECT_FALSE(p.flag("--lower"));
}

TEST(ArgumentParser, ErrorsAreUsageErrors)
{
    cli::ArgumentParser p("test", "");
    p.addOption("--seed", "N", "42", "seed");
    p.addFlag("--lower", "flag");
    EXPECT_THROW(p.parse({"--bogus"}), cli::UsageError);

    cli::ArgumentParser q("test", "");
    q.addOption("--seed", "N", "42", "seed");
    EXPECT_THROW(q.parse({"--seed"}), cli::UsageError);

    cli::ArgumentParser r("test", "");
    r.addFlag("--lower", "flag");
    EXPECT_THROW(r.parse({"--lower=yes"}), cli::UsageError);

    cli::ArgumentParser s("test", "");
    s.addOption("--seed", "N", "42", "seed");
    s.parse({"--seed", "banana"});
    EXPECT_THROW(s.intOption("--seed"), cli::UsageError);
}

// --- json layer -------------------------------------------------------------

TEST(Json, DumpParseRoundTrip)
{
    json::Value doc = json::Value::object();
    doc.set("name", "qft_n8");
    doc.set("count", 42);
    doc.set("ratio", 0.1);
    doc.set("tiny", 1.77e-8);
    doc.set("ok", true);
    doc.set("none", json::Value());
    json::Value arr = json::Value::array();
    arr.push(1);
    arr.push("two");
    doc.set("mixed", std::move(arr));

    json::Value parsed = json::parse(doc.dump(2));
    EXPECT_EQ(parsed["name"].asString(), "qft_n8");
    EXPECT_EQ(parsed["count"].asInt(), 42);
    EXPECT_EQ(parsed["ratio"].asNumber(), 0.1);
    EXPECT_EQ(parsed["tiny"].asNumber(), 1.77e-8);
    EXPECT_TRUE(parsed["ok"].asBool());
    EXPECT_TRUE(parsed["none"].isNull());
    EXPECT_EQ(parsed["mixed"].at(1).asString(), "two");

    // Key order is preserved, so dumps are deterministic and diffable.
    EXPECT_EQ(parsed.dump(2), doc.dump(2));
    EXPECT_LT(doc.dump(0).find("\"name\""), doc.dump(0).find("\"count\""));
}

TEST(Json, StringEscapes)
{
    json::Value v(std::string("line\nquote\"tab\t\\"));
    json::Value parsed = json::parse(v.dump(0));
    EXPECT_EQ(parsed.asString(), "line\nquote\"tab\t\\");
}

TEST(Json, ParseErrorsCarryPosition)
{
    try {
        json::parse("{\n  \"a\": }");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_GT(e.column(), 1);
    }
    EXPECT_THROW(json::parse(""), json::ParseError);
    EXPECT_THROW(json::parse("{} trailing"), json::ParseError);
    EXPECT_THROW(json::parse("[1, 2"), json::ParseError);
}

// --- top-level dispatch -----------------------------------------------------

TEST(CliDispatch, NoArgumentsIsUsageError)
{
    auto r = runCli({});
    EXPECT_EQ(r.code, cli::kExitUsage);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliDispatch, UnknownCommandIsUsageError)
{
    auto r = runCli({"frobnicate"});
    EXPECT_EQ(r.code, cli::kExitUsage);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliDispatch, HelpAndVersionSucceed)
{
    auto help = runCli({"help"});
    EXPECT_EQ(help.code, cli::kExitSuccess);
    EXPECT_NE(help.out.find("transpile"), std::string::npos);

    auto version = runCli({"version"});
    EXPECT_EQ(version.code, cli::kExitSuccess);
    EXPECT_NE(version.out.find("mirage"), std::string::npos);

    auto sub = runCli({"transpile", "--help"});
    EXPECT_EQ(sub.code, cli::kExitSuccess);
    EXPECT_NE(sub.out.find("--topology"), std::string::npos);
}

// --- transpile --------------------------------------------------------------

namespace {

std::string
qft4Path()
{
    static const std::string path = [] {
        std::string p = tempPath("qft4.qasm");
        std::ofstream f(p);
        f << circuit::toQasm(bench::qft(4, true));
        return p;
    }();
    return path;
}

} // namespace

TEST(CliTranspile, MissingFileFailsWithExitOne)
{
    auto r = runCli({"transpile", tempPath("nope.qasm")});
    EXPECT_EQ(r.code, cli::kExitFailure);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTranspile, MalformedQasmReportsFileLineColumn)
{
    std::string path = tempPath("bad.qasm");
    writeFile(path,
              "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\nfrob q[0];\n");
    auto r = runCli({"transpile", path});
    EXPECT_EQ(r.code, cli::kExitFailure);
    EXPECT_NE(r.err.find(path + ":4:1:"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("unsupported statement 'frob'"),
              std::string::npos);
}

TEST(CliTranspile, UnknownTopologyIsUsageError)
{
    auto r = runCli({"transpile", qft4Path(), "--topology", "torus9"});
    EXPECT_EQ(r.code, cli::kExitUsage);
    EXPECT_NE(r.err.find("unknown topology"), std::string::npos);
}

TEST(CliTranspile, TopologyTooSmallFails)
{
    auto r = runCli({"transpile", qft4Path(), "--topology", "line2"});
    EXPECT_EQ(r.code, cli::kExitFailure);
    EXPECT_NE(r.err.find("qubits"), std::string::npos);
}

TEST(CliTranspile, NumericFlagsOutOfRangeAreUsageErrors)
{
    // Every rejection must be exit code 2 (usage) with a message that
    // names the offending flag -- never a crash, a hang, or a silent
    // fallback to a default.
    const struct
    {
        std::vector<std::string> extra;
        const char *needle;
    } cases[] = {
        {{"--trials", "0"}, "--trials"},
        {{"--trials", "-3"}, "--trials"},
        {{"--swap-trials", "0"}, "--swap-trials"},
        {{"--fwd-bwd", "-1"}, "--fwd-bwd"},
        {{"--threads", "-1"}, "--threads"},
        {{"--root", "1"}, "--root"},
        {{"--aggression", "4"}, "--aggression"},
        {{"--aggression", "-2"}, "--aggression"},
    };
    for (const auto &c : cases) {
        std::vector<std::string> args = {"transpile", qft4Path()};
        args.insert(args.end(), c.extra.begin(), c.extra.end());
        auto r = runCli(args);
        EXPECT_EQ(r.code, cli::kExitUsage)
            << c.extra[0] << " " << c.extra[1];
        EXPECT_NE(r.err.find(c.needle), std::string::npos) << r.err;
    }
}

TEST(CliTranspile, UncreatableCacheDirIsUsageError)
{
    // A regular file where a directory component should be: the cache
    // dir can never be created, so the run must stop up front with a
    // usage error instead of transpiling and failing to persist.
    const std::string file = tempPath("cache_blocker");
    writeFile(file, "not a directory");
    auto r = runCli({"transpile", qft4Path(), "--lower", "--cache",
                     file + "/sub"});
    EXPECT_EQ(r.code, cli::kExitUsage);
    EXPECT_NE(r.err.find("--cache"), std::string::npos) << r.err;

    // sweep shares the same validation.
    auto s = runCli({"sweep", "--experiment", "table3", "--cache",
                     file + "/sub"});
    EXPECT_EQ(s.code, cli::kExitUsage);
    EXPECT_NE(s.err.find("--cache"), std::string::npos) << s.err;
}

// --- serve flags ------------------------------------------------------------

TEST(CliServe, TransportAndNumericFlagValidation)
{
    auto none = runCli({"serve"});
    EXPECT_EQ(none.code, cli::kExitUsage);
    EXPECT_NE(none.err.find("--socket"), std::string::npos);

    auto both = runCli({"serve", "--socket", "/tmp/x.sock", "--stdio"});
    EXPECT_EQ(both.code, cli::kExitUsage);

    auto badThreads = runCli({"serve", "--stdio", "--threads", "-2"});
    EXPECT_EQ(badThreads.code, cli::kExitUsage);
    EXPECT_NE(badThreads.err.find("--threads"), std::string::npos);

    auto badEntries = runCli({"serve", "--stdio", "--cache-entries", "0"});
    EXPECT_EQ(badEntries.code, cli::kExitUsage);
    EXPECT_NE(badEntries.err.find("--cache-entries"), std::string::npos);

    auto badBatch = runCli({"serve", "--stdio", "--max-batch", "0"});
    EXPECT_EQ(badBatch.code, cli::kExitUsage);
    EXPECT_NE(badBatch.err.find("--max-batch"), std::string::npos);
}

TEST(CliServeBench, NumericFlagValidation)
{
    const struct
    {
        std::vector<std::string> extra;
        const char *needle;
    } cases[] = {
        {{"--clients", "0"}, "--clients"},
        {{"--requests", "-1"}, "--requests"},
        {{"--distinct", "0"}, "--distinct"},
        {{"--width", "1"}, "--width"},
        {{"--gates", "0"}, "--gates"},
        {{"--trials", "0"}, "--trials"},
        {{"--swap-trials", "0"}, "--swap-trials"},
        {{"--fwd-bwd", "-1"}, "--fwd-bwd"},
        {{"--aggression", "5"}, "--aggression"},
        {{"--threads", "-1"}, "--threads"},
    };
    for (const auto &c : cases) {
        std::vector<std::string> args = {"serve-bench"};
        args.insert(args.end(), c.extra.begin(), c.extra.end());
        auto r = runCli(args);
        EXPECT_EQ(r.code, cli::kExitUsage)
            << c.extra[0] << " " << c.extra[1];
        EXPECT_NE(r.err.find(c.needle), std::string::npos) << r.err;
    }
}

TEST(CliTranspile, JsonReportSchemaAndDeterminism)
{
    std::vector<std::string> args = {"transpile", qft4Path(),
                                     "--topology", "line4",
                                     "--seed",     "99",
                                     "--trials",   "4"};
    auto first = runCli(args);
    ASSERT_EQ(first.code, cli::kExitSuccess) << first.err;

    json::Value doc = json::parse(first.out);
    EXPECT_EQ(doc["schemaVersion"].asInt(), cli::kArtifactSchemaVersion);
    EXPECT_EQ(doc["kind"].asString(), "mirage-transpile");
    EXPECT_EQ(doc["input"]["qubits"].asInt(), 4);
    EXPECT_EQ(doc["topology"].find("name")->asString(), "line-4");
    EXPECT_GT(doc["result"]["metrics"]["totalPulses"].asNumber(), 0.0);
    EXPECT_FALSE(doc.contains("lowered"));

    // Identical invocation -> byte-identical report.
    auto second = runCli(args);
    EXPECT_EQ(first.out, second.out);

    // The determinism guarantee: thread count never changes the
    // transpile result (the echoed options block differs by design).
    args.push_back("--threads");
    args.push_back("4");
    auto threaded = runCli(args);
    json::Value threadedDoc = json::parse(threaded.out);
    EXPECT_EQ(doc["result"].dump(2), threadedDoc["result"].dump(2));
}

TEST(CliTranspile, LoweredQasmOutputRoundTripsThroughFromQasm)
{
    std::string outPath = tempPath("lowered.qasm");
    auto r = runCli({"transpile", qft4Path(), "--topology", "line4",
                     "--trials", "2", "--lower", "--format", "qasm",
                     "--output", outPath});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;

    circuit::Circuit lowered = circuit::fromQasm(readFile(outPath));
    EXPECT_EQ(lowered.numQubits(), 4);
    EXPECT_GT(lowered.size(), 0u);
}

TEST(CliTranspile, LoweredJsonReportsMeasuredMetrics)
{
    auto r = runCli({"transpile", qft4Path(), "--topology", "line4",
                     "--trials", "2", "--lower"});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;
    json::Value doc = json::parse(r.out);
    ASSERT_TRUE(doc.contains("lowered"));
    EXPECT_GT(doc["lowered"]["metrics"]["totalPulses"].asNumber(), 0.0);
    EXPECT_LT(doc["lowered"]["worstInfidelity"].asNumber(), 1e-6);
}

// --- sweep + report ---------------------------------------------------------

TEST(CliSweep, ListNamesEveryRegisteredExperiment)
{
    auto r = runCli({"sweep", "--list"});
    EXPECT_EQ(r.code, cli::kExitSuccess);
    for (const auto &e : cli::experimentRegistry())
        EXPECT_NE(r.out.find(e.name), std::string::npos) << e.name;
}

TEST(CliSweep, UnknownExperimentListsAvailable)
{
    auto r = runCli({"sweep", "--experiment", "fig99"});
    EXPECT_EQ(r.code, cli::kExitUsage);
    EXPECT_NE(r.err.find("unknown experiment"), std::string::npos);
    EXPECT_NE(r.err.find("table3"), std::string::npos);
    EXPECT_NE(r.err.find("mirror-qv"), std::string::npos);
    // The error teaches discovery: it names the --list flag.
    EXPECT_NE(r.err.find("sweep --list"), std::string::npos);
}

TEST(CliSweep, MissingExperimentIsUsageError)
{
    auto r = runCli({"sweep"});
    EXPECT_EQ(r.code, cli::kExitUsage);
}

TEST(CliSweep, Fig8ArtifactValidatesRendersAndExportsCsv)
{
    std::string dir = tempPath("arts");
    auto r = runCli({"sweep", "--experiment", "fig8", "--out", dir,
                     "--csv"});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;
    EXPECT_NE(r.out.find("fig8.json"), std::string::npos);

    json::Value artifact = json::parse(readFile(dir + "/fig8.json"));
    std::string schemaError;
    EXPECT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
    EXPECT_EQ(artifact["schemaVersion"].asInt(),
              cli::kArtifactSchemaVersion);
    EXPECT_EQ(artifact["kind"].asString(), "mirage-sweep");
    EXPECT_EQ(artifact["experiment"].asString(), "fig8");
    EXPECT_EQ(artifact["rows"].size(), 2u);

    std::string csv = readFile(dir + "/fig8.csv");
    EXPECT_NE(csv.find("flow,depthPulses"), std::string::npos);
    EXPECT_NE(csv.find("MIRAGE"), std::string::npos);

    auto report = runCli({"report", dir + "/fig8.json"});
    ASSERT_EQ(report.code, cli::kExitSuccess) << report.err;
    EXPECT_NE(report.out.find("| flow |"), std::string::npos);
    EXPECT_NE(report.out.find("MIRAGE"), std::string::npos);
}

TEST(CliSweep, StdoutModeEmitsArtifactJson)
{
    auto r = runCli({"sweep", "--experiment", "fig8", "--stdout"});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;
    json::Value artifact = json::parse(r.out);
    std::string schemaError;
    EXPECT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
}

TEST(CliSweep, MirrorQvSweepVerifiesBitstringsAboveSixQubits)
{
    // --limit 1 keeps this to the smallest width (8 qubits) -- already
    // strictly past the 6-qubit exhaustive-unitary ceiling.
    auto r = runCli({"sweep", "--experiment", "mirror-qv", "--limit", "1",
                     "--stdout"});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;
    json::Value artifact = json::parse(r.out);
    std::string schemaError;
    ASSERT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
    EXPECT_EQ(artifact["experiment"].asString(), "mirror-qv");
    ASSERT_EQ(artifact["rows"].size(), 1u);
    const json::Value &row = artifact["rows"].at(0);
    EXPECT_GT(row["qubits"].asInt(), 6);
    EXPECT_TRUE(row["verified"].asBool());
    EXPECT_GE(row["routedSuccess"].asNumber(), 1.0 - 1e-9);
    EXPECT_TRUE(artifact["summary"]["allVerified"].asBool());
}

TEST(CliSweep, MatrixSweepCoversTopologiesAndAggressions)
{
    // --limit 2 restricts the suite to the two mirror workloads (they
    // lead the suite precisely so the smoke slice self-verifies):
    // 2 workloads x 3 topologies x 4 aggression levels = 24 cells.
    auto r = runCli({"sweep", "--experiment", "matrix", "--limit", "2",
                     "--stdout"});
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;
    json::Value artifact = json::parse(r.out);
    std::string schemaError;
    ASSERT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
    ASSERT_EQ(artifact["rows"].size(), 24u);
    EXPECT_EQ(artifact["summary"]["mirrorCells"].asInt(), 24);
    EXPECT_TRUE(artifact["summary"]["allMirrorCellsVerified"].asBool());

    // Every topology and aggression level appears.
    std::set<std::string> topologies;
    std::set<int64_t> aggressions;
    for (size_t i = 0; i < artifact["rows"].size(); ++i) {
        const json::Value &row = artifact["rows"].at(i);
        topologies.insert(row["topology"].asString());
        aggressions.insert(row["aggression"].asInt());
        EXPECT_TRUE(row["verified"].asBool())
            << row["circuit"].asString() << " on "
            << row["topology"].asString() << " aggression "
            << row["aggression"].asInt();
    }
    EXPECT_EQ(topologies.size(), 3u);
    EXPECT_EQ(aggressions, (std::set<int64_t>{0, 1, 2, 3}));
}

// --- bench ------------------------------------------------------------------

namespace {

/** Tiny-knob bench invocation so the test stays fast. */
std::vector<std::string>
benchArgs(const std::string &outPath)
{
    return {"bench",   "--limit",       "2", "--trials", "2",
            "--swap-trials", "1", "--fwd-bwd", "1", "--out", outPath};
}

} // namespace

TEST(CliBench, WritesValidArtifactAndSelfCheckPasses)
{
    const std::string path = tempPath("bench_self.json");
    auto r = runCli(benchArgs(path));
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;

    json::Value artifact = json::parse(readFile(path));
    std::string schemaError;
    EXPECT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
    EXPECT_EQ(artifact["experiment"].asString(), "bench");
    ASSERT_EQ(artifact["rows"].size(), 2u);
    EXPECT_GT(artifact["rows"].at(0)["heuristicEvals"].asInt(), 0);
    EXPECT_TRUE(artifact["summary"]["outputsBitIdentical"].asBool());

    // Re-running against the just-written baseline must pass: the
    // counters are deterministic.
    auto args = benchArgs(tempPath("bench_self2.json"));
    args.push_back("--check");
    args.push_back(path);
    auto check = runCli(args);
    EXPECT_EQ(check.code, cli::kExitSuccess) << check.err;
    EXPECT_NE(check.out.find("bench check OK"), std::string::npos);
}

TEST(CliBench, CheckFailsOnCounterRegression)
{
    const std::string path = tempPath("bench_base.json");
    auto r = runCli(benchArgs(path));
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;

    // Doctor the baseline so the current run looks like a regression:
    // lower the first row's heuristicEvals by one.
    std::string text = readFile(path);
    const std::string key = "\"heuristicEvals\": ";
    size_t start = text.find(key);
    ASSERT_NE(start, std::string::npos);
    start += key.size();
    size_t end = text.find_first_of(",\n", start);
    long long evals = std::stoll(text.substr(start, end - start));
    text = text.substr(0, start) + std::to_string(evals - 1) +
           text.substr(end);
    const std::string doctored = tempPath("bench_doctored.json");
    writeFile(doctored, text);

    auto args = benchArgs(tempPath("bench_cur.json"));
    args.push_back("--check");
    args.push_back(doctored);
    auto check = runCli(args);
    EXPECT_EQ(check.code, cli::kExitFailure);
    EXPECT_NE(check.err.find("regressed"), std::string::npos) << check.err;
}

TEST(CliBench, CheckRejectsMismatchedParameters)
{
    const std::string path = tempPath("bench_params.json");
    auto r = runCli(benchArgs(path));
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;

    auto args = std::vector<std::string>{
        "bench", "--limit", "2", "--trials", "1", "--swap-trials", "1",
        "--fwd-bwd", "1", "--out", tempPath("bench_params2.json"),
        "--check", path};
    auto check = runCli(args);
    EXPECT_EQ(check.code, cli::kExitFailure);
    EXPECT_NE(check.err.find("regressed"), std::string::npos);
}

TEST(CliBench, CheckReadsBaselineBeforeOverwritingIt)
{
    // The default --out IS the committed baseline path, so the gate
    // must read the baseline before writing the fresh artifact --
    // otherwise it compares the new file to itself and always passes.
    const std::string path = tempPath("bench_inplace.json");
    auto r = runCli(benchArgs(path));
    ASSERT_EQ(r.code, cli::kExitSuccess) << r.err;

    // Plant a regression in the baseline, then check IN PLACE.
    std::string text = readFile(path);
    const std::string key = "\"heuristicEvals\": ";
    size_t start = text.find(key);
    ASSERT_NE(start, std::string::npos);
    start += key.size();
    size_t end = text.find_first_of(",\n", start);
    long long evals = std::stoll(text.substr(start, end - start));
    writeFile(path, text.substr(0, start) + std::to_string(evals - 1) +
                        text.substr(end));

    auto args = benchArgs(path); // --out == --check target
    args.push_back("--check");
    args.push_back(path);
    auto check = runCli(args);
    EXPECT_EQ(check.code, cli::kExitFailure) << check.out;
    EXPECT_NE(check.err.find("regressed"), std::string::npos) << check.err;
}

TEST(CliBench, RejectsBadLimit)
{
    auto r = runCli({"bench", "--limit", "0"});
    EXPECT_EQ(r.code, cli::kExitUsage);
}

TEST(CliReport, RejectsMalformedJsonWithPosition)
{
    std::string path = tempPath("garbage.json");
    writeFile(path, "{\n  not json\n");
    auto r = runCli({"report", path});
    EXPECT_EQ(r.code, cli::kExitFailure);
    EXPECT_NE(r.err.find(path + ":2:"), std::string::npos) << r.err;
}

TEST(CliReport, RejectsSchemaVersionDrift)
{
    json::Value artifact =
        cli::runExperiment(*cli::findExperiment("table1"), {});
    artifact.set("schemaVersion", 99);
    std::string path = tempPath("drift.json");
    writeFile(path, artifact.dump(2));
    auto r = runCli({"report", path});
    EXPECT_EQ(r.code, cli::kExitFailure);
    EXPECT_NE(r.err.find("schemaVersion"), std::string::npos);
}

TEST(CliReport, RejectsMissingRequiredKeys)
{
    json::Value artifact =
        cli::runExperiment(*cli::findExperiment("table1"), {});
    std::string schemaError;
    ASSERT_TRUE(cli::validateArtifact(artifact, &schemaError));

    json::Value noRows = json::Value::object();
    for (const auto &[k, v] : artifact.members()) {
        if (k != "rows")
            noRows.set(k, v);
    }
    EXPECT_FALSE(cli::validateArtifact(noRows, &schemaError));
    EXPECT_NE(schemaError.find("rows"), std::string::npos);

    EXPECT_FALSE(cli::validateArtifact(json::Value(3.0), &schemaError));

    // Every key the renderers dereference must be validated up front:
    // report has to exit 1 on these, never crash (regression).
    json::Value noPaperArtifact = json::Value::object();
    for (const auto &[k, v] : artifact.members()) {
        if (k != "paperArtifact")
            noPaperArtifact.set(k, v);
    }
    EXPECT_FALSE(cli::validateArtifact(noPaperArtifact, &schemaError));
    std::string path = tempPath("no-paper-artifact.json");
    writeFile(path, noPaperArtifact.dump(2));
    auto r = runCli({"report", path});
    EXPECT_EQ(r.code, cli::kExitFailure);

    json::Value badColumn = artifact;
    json::Value cols = json::Value::array();
    json::Value numericKey = json::Value::object();
    numericKey.set("key", 7);
    numericKey.set("label", "seven");
    cols.push(std::move(numericKey));
    badColumn.set("columns", std::move(cols));
    EXPECT_FALSE(cli::validateArtifact(badColumn, &schemaError));
    EXPECT_NE(schemaError.find("key/label"), std::string::npos);
}

// --- experiment registry ----------------------------------------------------

TEST(ExperimentRegistry, CoversTheReproduciblePaperArtifacts)
{
    for (const char *name : {"fig8", "fig10", "fig11", "fig12", "fig13",
                             "table1", "table2", "table3", "fig12-large"})
        EXPECT_NE(cli::findExperiment(name), nullptr) << name;
    EXPECT_EQ(cli::findExperiment("fig7"), nullptr);
}

TEST(ExperimentRegistry, Fig12LargeGatesSparseMemoryAndCounters)
{
    // One circuit per device keeps this to CI-test territory; the
    // artifact must be schema-valid and its own counter/memory gate
    // must accept it (checkBenchCounters is what CI's bench job runs).
    cli::SweepKnobs knobs;
    knobs.suiteLimit = 1;
    json::Value artifact =
        cli::runExperiment(*cli::findExperiment("fig12-large"), knobs);
    std::string schemaError;
    ASSERT_TRUE(cli::validateArtifact(artifact, &schemaError))
        << schemaError;
    EXPECT_EQ(artifact["rows"].size(), 3u); // one per device
    EXPECT_TRUE(artifact["summary"]["memorySubQuadratic"].asBool());
    EXPECT_TRUE(artifact["summary"]["landmarksAdmissible"].asBool());
    std::string report;
    EXPECT_TRUE(cli::checkBenchCounters(artifact, artifact, &report))
        << report;
}

TEST(CliTranspile, RoutesOnLargeSparseTopology)
{
    // End-to-end CLI on a 433-qubit sparse device: route a small QASM
    // circuit and check the reported topology block.
    std::string path = tempPath("ghz5.qasm");
    writeFile(path, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n"
                    "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
                    "cx q[2],q[3];\ncx q[3],q[4];\n");
    auto r = runCli({"transpile", path, "--topology", "heavyhex433",
                     "--trials", "1", "--swap-trials", "1", "--fwd-bwd",
                     "1", "--output", "-"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("\"heavyhex-433\""), std::string::npos);
    EXPECT_NE(r.out.find("\"qubits\": 433"), std::string::npos);
}

TEST(ExperimentRegistry, Table1MatchesPaperScores)
{
    json::Value artifact =
        cli::runExperiment(*cli::findExperiment("table1"), {});
    ASSERT_EQ(artifact["rows"].size(), 3u);
    // sqrt(iSWAP) exact Haar scores: paper Table I reports 1.105 plain
    // and 1.029 with mirrors.
    const json::Value &row = artifact["rows"].at(0);
    EXPECT_NEAR(row["haar"].asNumber(), 1.105, 0.02);
    EXPECT_NEAR(row["mirrorHaar"].asNumber(), 1.029, 0.02);
}
