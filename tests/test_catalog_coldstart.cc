/**
 * @file
 * Cold-start regression gate: the committed FIT_CATALOG.bin must make
 * a fresh clone lower warm.
 *
 * Loads the repository-root catalog into a bare (non-preseeded)
 * equivalence library and runs one Table III circuit through the full
 * pipeline with the exact table3 sweep configuration (grid 8x8,
 * MirageDepth, trials 8/2/2, seed 0xB3). Every translated block must
 * be answered from the catalog: newFits == 0, fitEvaluations == 0,
 * and the library performs zero fits overall. If a pipeline change
 * shifts routed blocks out of the catalog's target set, this test
 * fails first -- the fix is `mirage catalog build` plus committing the
 * regenerated file (CI's catalog-check job enforces the same).
 */

#include <gtest/gtest.h>

#include <string>

#include "bench_circuits/generators.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;
using decomp::EquivalenceLibrary;
using Status = EquivalenceLibrary::CacheLoadStatus;

namespace {

TEST(CatalogColdStart, CommittedCatalogLowersTableThreeFitFree)
{
    const std::string path =
        std::string(MIRAGE_TEST_DATA_DIR) + "/../FIT_CATALOG.bin";

    EquivalenceLibrary lib(2, /*preseed=*/false);
    const auto load = lib.loadCacheFileDetailed(path);
    ASSERT_EQ(load.status, Status::Ok) << load.message;
    ASSERT_GT(load.entriesLoaded, 0u);

    // The exact table3/bench-lowering configuration (see
    // cli/experiments.cc): any drift here measures a different block
    // set than the catalog was built for.
    const auto &benchmark = bench::paperBenchmarks().front();
    auto circ = benchmark.make();
    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.layoutTrials = 8;
    opts.swapTrials = 2;
    opts.forwardBackwardPasses = 2;
    opts.tryVf2 = false;
    opts.seed = 0xB3;
    opts.threads = 1;
    opts.lowerToBasis = true;
    opts.equivalenceLibrary = &lib;

    auto res = mirage_pass::transpile(
        circ, topology::CouplingMap::grid(8, 8), opts);

    EXPECT_GT(res.translateStats.blocksTranslated, 0);
    EXPECT_EQ(res.translateStats.newFits, 0)
        << benchmark.name << " needed fits the committed catalog lacks; "
        << "regenerate it with 'mirage catalog build'";
    EXPECT_EQ(res.translateStats.fitEvaluations, 0u);
    EXPECT_EQ(lib.fitCount(), 0u)
        << "a warm library must perform zero numerical fits";
}

} // namespace
