/**
 * @file
 * Tests for coupling maps, layouts, and the VF2 swap-free search.
 */

#include <gtest/gtest.h>

#include "bench_circuits/generators.hh"
#include "layout/layout.hh"
#include "layout/vf2.hh"
#include "topology/coupling.hh"

using namespace mirage;
using namespace mirage::topology;
using namespace mirage::layout;

TEST(Coupling, LineDistances)
{
    CouplingMap line = CouplingMap::line(5);
    EXPECT_EQ(line.numQubits(), 5);
    EXPECT_TRUE(line.isEdge(0, 1));
    EXPECT_FALSE(line.isEdge(0, 2));
    EXPECT_EQ(line.distance(0, 4), 4);
    EXPECT_TRUE(line.isConnected());
    EXPECT_EQ(line.maxDegree(), 2);
}

TEST(Coupling, RingWrapsAround)
{
    CouplingMap ring = CouplingMap::ring(6);
    EXPECT_EQ(ring.distance(0, 5), 1);
    EXPECT_EQ(ring.distance(0, 3), 3);
}

TEST(Coupling, GridStructure)
{
    CouplingMap grid = CouplingMap::grid(6, 6);
    EXPECT_EQ(grid.numQubits(), 36);
    EXPECT_EQ(grid.maxDegree(), 4);
    EXPECT_EQ(grid.distance(0, 35), 10);
    EXPECT_TRUE(grid.isConnected());
}

TEST(Coupling, HeavyHex57)
{
    CouplingMap hh = CouplingMap::heavyHex57();
    EXPECT_EQ(hh.numQubits(), 57);
    EXPECT_TRUE(hh.isConnected());
    // Heavy-hex keeps every degree at or below 3.
    EXPECT_LE(hh.maxDegree(), 3);
}

TEST(Coupling, ShortestPathIsValid)
{
    CouplingMap grid = CouplingMap::grid(4, 4);
    auto path = grid.shortestPath(0, 15);
    EXPECT_EQ(int(path.size()) - 1, grid.distance(0, 15));
    for (size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(grid.isEdge(path[i], path[i + 1]));
}

TEST(Coupling, FlatDistanceTableIsConsistent)
{
    // The flat row-major table behind distance()/distanceRow() must
    // agree with first principles: symmetric, zero on the diagonal,
    // exactly 1 across edges, and distanceRow(a)[b] == distance(a, b).
    for (const auto &cm :
         {CouplingMap::grid(3, 4), CouplingMap::heavyHex57(),
          CouplingMap::ring(7)}) {
        const int n = cm.numQubits();
        for (int a = 0; a < n; ++a) {
            const int *row = cm.distanceRow(a);
            EXPECT_EQ(row[a], 0);
            for (int b = 0; b < n; ++b) {
                EXPECT_EQ(row[b], cm.distance(a, b));
                EXPECT_EQ(cm.distance(a, b), cm.distance(b, a));
                EXPECT_EQ(cm.distance(a, b) == 1, cm.isEdge(a, b))
                    << cm.name() << " " << a << "," << b;
            }
        }
    }
}

TEST(Coupling, AdjacencyMatrixMatchesEdgeList)
{
    CouplingMap hex = CouplingMap::heavyHex57();
    int edge_count = 0;
    for (int a = 0; a < hex.numQubits(); ++a)
        for (int b = a + 1; b < hex.numQubits(); ++b)
            edge_count += hex.isEdge(a, b) ? 1 : 0;
    EXPECT_EQ(size_t(edge_count), hex.edges().size());
    for (const auto &[a, b] : hex.edges()) {
        EXPECT_TRUE(hex.isEdge(a, b));
        EXPECT_TRUE(hex.isEdge(b, a));
    }
}

TEST(Coupling, GeneratorsRejectDegenerateSizes)
{
    EXPECT_THROW(CouplingMap::line(0), TopologyError);
    EXPECT_THROW(CouplingMap::line(-3), TopologyError);
    EXPECT_THROW(CouplingMap::ring(0), TopologyError);
    EXPECT_THROW(CouplingMap::ring(-1), TopologyError);
    EXPECT_THROW(CouplingMap::grid(0, 5), TopologyError);
    EXPECT_THROW(CouplingMap::grid(3, 0), TopologyError);
    EXPECT_THROW(CouplingMap::grid(-2, -2), TopologyError);
    EXPECT_THROW(CouplingMap::allToAll(0), TopologyError);
    EXPECT_THROW(CouplingMap::heavyHex(0, 9), TopologyError);
    EXPECT_THROW(CouplingMap::heavyHex(5, -1), TopologyError);
    // Minimal valid sizes still build.
    EXPECT_EQ(CouplingMap::line(1).numQubits(), 1);
    EXPECT_EQ(CouplingMap::ring(2).numQubits(), 2);
    EXPECT_EQ(CouplingMap::grid(1, 1).numQubits(), 1);
}

TEST(Coupling, CustomConstructorRejectsBadEdges)
{
    using E = std::vector<std::pair<int, int>>;
    EXPECT_THROW(CouplingMap(-1, E{}), TopologyError);
    EXPECT_THROW(CouplingMap(3, E{{0, 3}}), TopologyError);  // out of range
    EXPECT_THROW(CouplingMap(3, E{{-1, 1}}), TopologyError); // out of range
    EXPECT_THROW(CouplingMap(3, E{{1, 1}}), TopologyError);  // self-loop
    // Duplicates are rejected even when written in opposite orders.
    EXPECT_THROW(CouplingMap(3, E{{0, 1}, {1, 0}}), TopologyError);
    EXPECT_THROW(CouplingMap(3, E{{0, 1}, {1, 2}, {0, 1}}), TopologyError);
    // A clean edge list still builds.
    EXPECT_EQ(CouplingMap(3, E{{0, 1}, {1, 2}}).numQubits(), 3);
}

TEST(Coupling, DisconnectedComponentsAreTracked)
{
    // Two components: {0,1} and {2,3,4}.
    CouplingMap cm(5, {{0, 1}, {2, 3}, {3, 4}}, "split");
    EXPECT_FALSE(cm.isConnected());
    EXPECT_EQ(cm.numComponents(), 2);
    EXPECT_TRUE(cm.sameComponent(0, 1));
    EXPECT_TRUE(cm.sameComponent(2, 4));
    EXPECT_FALSE(cm.sameComponent(1, 2));
    EXPECT_EQ(cm.distance(0, 2), -1);
    EXPECT_EQ(cm.distance(1, 4), -1);
    EXPECT_EQ(cm.distance(2, 4), 2);
    // An isolated qubit is its own component.
    CouplingMap iso(3, {{0, 1}}, "isolated");
    EXPECT_EQ(iso.numComponents(), 2);
    EXPECT_EQ(iso.componentOf(2), 1);
}

TEST(Coupling, ShortestPathThrowsAcrossComponents)
{
    // Regression: this used to spin forever walking -1 distances.
    CouplingMap cm(4, {{0, 1}, {2, 3}}, "split");
    EXPECT_THROW(cm.shortestPath(0, 2), TopologyError);
    EXPECT_THROW(cm.shortestPath(3, 1), TopologyError);
    EXPECT_THROW(cm.shortestPath(0, 7), TopologyError); // out of range
    // Within a component the path is still produced.
    auto path = cm.shortestPath(2, 3);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 2);
    EXPECT_EQ(path[1], 3);
    // Trivial a == b path.
    EXPECT_EQ(cm.shortestPath(1, 1), std::vector<int>{1});
}

TEST(Coupling, LargeHeavyHexRegistry)
{
    // IBM Osprey/Condor-scale instances; both over the dense threshold,
    // so they build in sparse mode with no O(n^2) tables.
    CouplingMap osprey = CouplingMap::heavyHex433();
    EXPECT_EQ(osprey.numQubits(), 433);
    EXPECT_TRUE(osprey.isConnected());
    EXPECT_LE(osprey.maxDegree(), 3);
    EXPECT_TRUE(osprey.sparse());

    CouplingMap condor = CouplingMap::heavyHex1121();
    EXPECT_EQ(condor.numQubits(), 1121);
    EXPECT_TRUE(condor.isConnected());
    EXPECT_LE(condor.maxDegree(), 3);
    EXPECT_TRUE(condor.sparse());

    // Small maps stay dense; the threshold is the only mode switch.
    EXPECT_FALSE(CouplingMap::heavyHex57().sparse());
    EXPECT_TRUE(CouplingMap::grid(33, 33).sparse());
}

TEST(Coupling, SparseMemoryFootprintIsSubQuadratic)
{
    CouplingMap condor = CouplingMap::heavyHex1121();
    const size_t n = size_t(condor.numQubits());
    const size_t dense_equiv = n * n * (sizeof(int) + sizeof(uint8_t));
    // CSR + components + landmarks: orders of magnitude below the flat
    // tables (the per-thread row cache is bounded separately).
    EXPECT_LT(condor.derivedTableBytes(), dense_equiv / 50);
}

TEST(Layout, SwapUpdatesBothMaps)
{
    Layout lay(4);
    lay.swapPhysical(0, 3);
    EXPECT_EQ(lay.toPhysical(0), 3);
    EXPECT_EQ(lay.toPhysical(3), 0);
    EXPECT_EQ(lay.toLogical(3), 0);
    EXPECT_EQ(lay.toLogical(0), 3);
    EXPECT_EQ(lay.toPhysical(1), 1);
}

TEST(Layout, RandomIsBijection)
{
    Rng rng(3);
    Layout lay = Layout::random(16, rng);
    std::vector<bool> seen(16, false);
    for (int l = 0; l < 16; ++l) {
        int p = lay.toPhysical(l);
        EXPECT_FALSE(seen[size_t(p)]);
        seen[size_t(p)] = true;
        EXPECT_EQ(lay.toLogical(p), l);
    }
}

TEST(Vf2, LineIntoGrid)
{
    // A 5-qubit GHZ chain embeds into a 3x3 grid without SWAPs.
    auto c = bench::ghz(5);
    auto grid = CouplingMap::grid(3, 3);
    auto found = findSwapFreeLayout(c, grid);
    ASSERT_TRUE(found.has_value());
    auto edges = interactionEdges(c);
    for (auto [a, b] : edges)
        EXPECT_TRUE(grid.isEdge(found->toPhysical(a), found->toPhysical(b)));
}

TEST(Vf2, RejectsImpossibleEmbedding)
{
    // A 5-qubit star (center degree 4) cannot embed into a line.
    circuit::Circuit star(5);
    for (int i = 1; i < 5; ++i)
        star.cx(0, i);
    EXPECT_FALSE(findSwapFreeLayout(star, CouplingMap::line(5)).has_value());
}

TEST(Vf2, FullGraphNeedsSwapsOnGrid)
{
    // TwoLocal full entanglement on 6 qubits cannot embed into a grid
    // (degree 5 > 4) -- this is why the paper's suite needs routing.
    auto c = bench::twoLocalFull(6);
    EXPECT_FALSE(
        findSwapFreeLayout(c, CouplingMap::grid(6, 6)).has_value());
}

TEST(Vf2, PaperSuiteNeedsRouting)
{
    // The paper selects benchmarks that require > 0 SWAPs on its
    // topologies (Section V). Spot-check a few on the 6x6 grid.
    auto grid = CouplingMap::grid(6, 6);
    for (const char *name :
         {"qft_n18", "portfolioqaoa_n16", "multiplier_n15"}) {
        auto circ = bench::benchmarkByName(name).make();
        EXPECT_FALSE(findSwapFreeLayout(circ, grid).has_value()) << name;
    }
}
