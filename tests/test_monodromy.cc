/**
 * @file
 * Tests for the monodromy coverage machinery: Haar density, coverage
 * polytopes (validated against the paper's anchor values), cost model,
 * and exact Haar scores (paper Table I).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.hh"
#include "monodromy/cost_model.hh"
#include "monodromy/coverage.hh"
#include "monodromy/haar_density.hh"
#include "monodromy/scores.hh"
#include "weyl/catalog.hh"

using namespace mirage;
using namespace mirage::monodromy;
using geometry::Polytope;
using geometry::Vec3;

namespace {

constexpr double kPi = 3.14159265358979323846;

} // namespace

TEST(HaarDensity, MatchesDirectSamplingOnHalfspace)
{
    // P(x <= pi/8) in signed-chamber coordinates: quadrature vs direct
    // Haar sampling.
    Polytope region = geometry::signedChamber();
    region.addHalfspace({{1, 0, 0}, kPi / 8.0});
    double quad = haarFraction(region, 3);

    Rng rng(42);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (sampleHaarSigned(rng).x <= kPi / 8.0)
            ++hits;
    }
    double mc = double(hits) / n;
    EXPECT_NEAR(quad, mc, 0.015);
}

TEST(HaarDensity, NormalizationPositive)
{
    EXPECT_GT(alcoveHaarMass(), 0.0);
    EXPECT_NEAR(haarFraction(geometry::signedChamber(), 4), 1.0, 1e-9);
    // Subdivision converges: each extra level tightens the fraction.
    double e2 = std::fabs(haarFraction(geometry::signedChamber(), 2) - 1.0);
    double e3 = std::fabs(haarFraction(geometry::signedChamber(), 3) - 1.0);
    EXPECT_LT(e3, e2);
    EXPECT_LT(e2, 5e-3);
    // The unfolded alcove's z >= 0 half carries exactly half the Haar
    // mass (mirror symmetry of the measure).
    EXPECT_NEAR(haarFraction(geometry::weylAlcove(), 4), 0.5, 1e-4);
}

TEST(Coverage, SqrtIswapStructure)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    // Paper: full Weyl chamber coverage at k = 3.
    EXPECT_EQ(cs.kMax(), 3);
    // k = 1 is a single point: zero volume.
    EXPECT_NEAR(cs.haarFractionAt(1), 0.0, 1e-9);
    // Paper Fig. 3: k = 2 covers 79.0% of the Haar-weighted volume.
    EXPECT_NEAR(cs.haarFractionAt(2), 0.790, 0.01);
    // Paper Fig. 3: with mirrors, 94.4%.
    EXPECT_NEAR(cs.mirrorHaarFractionAt(2), 0.944, 0.01);
    EXPECT_NEAR(cs.haarFractionAt(3), 1.0, 1e-6);
}

TEST(Coverage, SqrtIswapKnownGates)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    EXPECT_EQ(cs.minK(weyl::coordRootISWAP(2)), 1);
    EXPECT_EQ(cs.minK(weyl::coordCNOT()), 2);   // Fig. 1a
    EXPECT_EQ(cs.minK(weyl::coordISWAP()), 2);  // Fig. 1b (CNS)
    EXPECT_EQ(cs.minK(weyl::coordSWAP()), 3);   // SWAPs are most expensive
    EXPECT_EQ(cs.minK(weyl::coordB()), 2);
    EXPECT_EQ(cs.minK(weyl::coordIdentity()), 0);
    // Mirrors: SWAP becomes free data movement, CNOT stays k=2 (CNS).
    EXPECT_EQ(cs.minKMirrored(weyl::coordSWAP()), 0);
    EXPECT_EQ(cs.minKMirrored(weyl::coordCNOT()), 2);
}

TEST(Coverage, CnotPlanarAtK2)
{
    const CoverageSet &cs = coverageForCnot();
    EXPECT_EQ(cs.kMax(), 3);
    // Paper Fig. 3a/3b: both standard and mirrored k=2 slices have zero
    // volume.
    EXPECT_NEAR(cs.haarFractionAt(2), 0.0, 1e-6);
    EXPECT_NEAR(cs.mirrorHaarFractionAt(2), 0.0, 1e-6);
    // But CNOT itself and anything with c == 0 is reachable at k = 2.
    EXPECT_EQ(cs.minK(weyl::coordCNOT()), 1);
    EXPECT_EQ(cs.minK(weyl::coordISWAP()), 2);
    EXPECT_EQ(cs.minK(weyl::coordSWAP()), 3);
}

TEST(Coverage, QuarterIswapDepthBounds)
{
    const CoverageSet &cs = coverageForRootIswap(4);
    // Paper Section III-B: 4th-root iSWAP traditionally requires up to
    // k = 6; with mirroring the depth never exceeds k = 4.
    EXPECT_EQ(cs.kMax(), 6);
    EXPECT_LT(cs.haarFractionAt(5), 1.0 - 1e-4);
    EXPECT_EQ(cs.minK(weyl::coordSWAP()), 6);
    EXPECT_EQ(cs.minK(weyl::coordCNOT()), 4);
    EXPECT_NEAR(cs.mirrorHaarFractionAt(4), 1.0, 1e-4);
}

TEST(Coverage, MembershipMatchesSampledProducts)
{
    // Random interleaved products of k gates must land inside P_k.
    const CoverageSet &cs = coverageForRootIswap(2);
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        int k = 2 + int(rng.index(2)); // 2 or 3
        linalg::Mat4 w = weyl::gateRootISWAP(2);
        for (int j = 1; j < k; ++j)
            w = weyl::gateRootISWAP(2) * (linalg::randomLocal4(rng) * w);
        weyl::Coord c = weyl::weylCoordinates(w);
        EXPECT_LE(cs.minK(c), k) << "k=" << k << " coord " << c.toString();
    }
}

TEST(Coverage, MirrorRegionContainsMirrors)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    // The mirror-extended k=2 region must contain the mirror of every
    // point in P_2; spot check with CPHASE gates (mirrors are pSWAPs).
    for (double phi : {0.4, 1.0, 2.2, kPi}) {
        weyl::Coord cp = weyl::coordCP(phi);
        ASSERT_LE(cs.minK(cp), 2);
        weyl::Coord ps = weyl::mirrorCoord(cp);
        auto sr = weyl::signedRep(ps);
        bool in_mirror_region = false;
        for (const auto &piece : cs.mirrorRegion(2)) {
            if (piece.contains(Vec3{sr[0], sr[1], sr[2]}, 1e-7)) {
                in_mirror_region = true;
                break;
            }
        }
        EXPECT_TRUE(in_mirror_region) << "phi=" << phi;
    }
}

TEST(CostModel, PulseCosts)
{
    CostModel cm = makeRootIswapCostModel(2);
    EXPECT_NEAR(cm.basisDuration(), 0.5, 1e-12);
    EXPECT_NEAR(cm.costOf(weyl::coordCNOT()), 1.0, 1e-9);
    EXPECT_NEAR(cm.costOf(weyl::coordISWAP()), 1.0, 1e-9);
    EXPECT_NEAR(cm.swapCost(), 1.5, 1e-9);
    // Mirror of CNOT costs the same (the paper's central observation).
    EXPECT_NEAR(cm.mirrorCostOf(weyl::coordCNOT()), 1.0, 1e-9);
    // Mirror of SWAP is free.
    EXPECT_NEAR(cm.mirrorCostOf(weyl::coordSWAP()), 0.0, 1e-9);
}

TEST(CostModel, CacheWorks)
{
    CostModel cm = makeRootIswapCostModel(2);
    weyl::Coord c = weyl::coordB();
    (void)cm.kFor(c);
    uint64_t misses = cm.cacheMisses();
    for (int i = 0; i < 100; ++i)
        (void)cm.kFor(c);
    EXPECT_EQ(cm.cacheMisses(), misses);
    EXPECT_GE(cm.cacheHits(), 100u);
}

TEST(CostModel, DecayFidelityAnchors)
{
    // Unit-duration pulse = 0.99 by construction (paper Section III-C).
    EXPECT_NEAR(decayFidelity(1.0), 0.99, 1e-12);
    EXPECT_NEAR(decayFidelity(0.5), std::sqrt(0.99), 1e-12);
    EXPECT_NEAR(decayFidelity(0.0), 1.0, 1e-12);
}

TEST(HaarScores, TableOneSqrtIswap)
{
    const CoverageSet &cs = coverageForRootIswap(2);
    HaarScore plain = haarScoreExact(cs, false);
    HaarScore mirror = haarScoreExact(cs, true);
    // Paper Table I (sqrt iSWAP): 1.105 / 0.9890 and 1.029 / 0.9897.
    EXPECT_NEAR(plain.score, 1.105, 0.01);
    EXPECT_NEAR(plain.fidelity, 0.9890, 0.001);
    EXPECT_NEAR(mirror.score, 1.029, 0.012);
    EXPECT_NEAR(mirror.fidelity, 0.9897, 0.001);
}

TEST(HaarScores, TableOneOrdering)
{
    // Smaller fractions improve (lower) the Haar score, and mirrors always
    // help (paper Table I trends).
    double prev_plain = 1e9, prev_mirror = 1e9;
    for (int n : {2, 3, 4}) {
        const CoverageSet &cs = coverageForRootIswap(n);
        HaarScore plain = haarScoreExact(cs, false);
        HaarScore mirror = haarScoreExact(cs, true);
        EXPECT_LT(mirror.score, plain.score) << "n=" << n;
        EXPECT_GT(mirror.fidelity, plain.fidelity) << "n=" << n;
        EXPECT_LT(plain.score, prev_plain);
        EXPECT_LT(mirror.score, prev_mirror);
        prev_plain = plain.score;
        prev_mirror = mirror.score;
    }
}
