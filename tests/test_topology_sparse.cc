/**
 * @file
 * Dense-vs-sparse coupling-map equivalence: the sparse mode (CSR
 * adjacency + BFS-on-demand rows behind a per-thread LRU cache +
 * ALT landmark bounds) must be query-for-query identical to the dense
 * flat tables, including on randomized and disconnected graphs; the
 * row cache must survive eviction churn and multi-row hot-path usage;
 * and routing on a sparse device must be bit-identical to routing on
 * its dense twin at any thread count (the concurrency label puts the
 * thread_local cache under the TSan job).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "bench_circuits/generators.hh"
#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

using namespace mirage;
using namespace mirage::topology;

namespace {

/** Every public query must agree between the two storage modes. */
void
expectEquivalent(const CouplingMap &dense, const CouplingMap &sparse)
{
    ASSERT_FALSE(dense.sparse());
    ASSERT_TRUE(sparse.sparse());
    const int n = dense.numQubits();
    ASSERT_EQ(sparse.numQubits(), n);
    EXPECT_EQ(sparse.edges(), dense.edges());
    EXPECT_EQ(sparse.numComponents(), dense.numComponents());
    EXPECT_EQ(sparse.isConnected(), dense.isConnected());
    EXPECT_EQ(sparse.maxDegree(), dense.maxDegree());
    for (int a = 0; a < n; ++a) {
        auto dn = dense.neighbors(a);
        auto sn = sparse.neighbors(a);
        ASSERT_EQ(sn.size(), dn.size()) << dense.name() << " q" << a;
        EXPECT_TRUE(std::equal(dn.begin(), dn.end(), sn.begin()));
        EXPECT_EQ(sparse.componentOf(a), dense.componentOf(a));

        const int *drow = dense.distanceRow(a);
        const int *srow = sparse.distanceRow(a);
        ASSERT_EQ(std::memcmp(drow, srow, size_t(n) * sizeof(int)), 0)
            << dense.name() << " row " << a;
        for (int b = 0; b < n; ++b) {
            EXPECT_EQ(sparse.distance(a, b), dense.distance(a, b));
            EXPECT_EQ(sparse.isEdge(a, b), dense.isEdge(a, b));
            if (dense.sameComponent(a, b)) {
                // Identical rows + identical neighbor order => the
                // reconstruction walks the exact same path.
                EXPECT_EQ(sparse.shortestPath(a, b),
                          dense.shortestPath(a, b));
            } else {
                EXPECT_THROW(sparse.shortestPath(a, b), TopologyError);
                EXPECT_THROW(dense.shortestPath(a, b), TopologyError);
            }
        }
    }
}

/** Random graph on n qubits; ~edge_frac of all pairs, deduplicated.
 * Not necessarily connected -- that's the point. */
CouplingMap
randomGraph(int n, double edge_frac, uint64_t seed)
{
    Rng rng(seed);
    std::set<std::pair<int, int>> picked;
    const int target = int(edge_frac * n * (n - 1) / 2);
    for (int i = 0; i < target; ++i) {
        int a = int(rng.index(uint64_t(n)));
        int b = int(rng.index(uint64_t(n)));
        if (a == b)
            continue;
        picked.insert({std::min(a, b), std::max(a, b)});
    }
    return CouplingMap(
        n, std::vector<std::pair<int, int>>(picked.begin(), picked.end()),
        "rand-" + std::to_string(seed));
}

} // namespace

TEST(SparseEquivalence, RegistryTopologies)
{
    for (const auto &cm :
         {CouplingMap::line(8), CouplingMap::ring(9), CouplingMap::grid(6, 6),
          CouplingMap::grid(4, 7), CouplingMap::heavyHex57(),
          CouplingMap::allToAll(6)}) {
        expectEquivalent(cm, cm.asSparse());
    }
}

TEST(SparseEquivalence, RandomizedGraphsIncludingDisconnected)
{
    // Property test over random graphs of varying density; sparse ones
    // are usually disconnected, so the -1 rows and the shortestPath
    // throw are exercised too.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const int n = 10 + int(seed) * 3;
        const double frac = seed % 2 ? 0.04 : 0.15;
        auto dense = randomGraph(n, frac, seed);
        expectEquivalent(dense, dense.asSparse());
    }
}

TEST(SparseEquivalence, LargeDeviceSpotCheckAgainstReferenceBfs)
{
    // heavyhex-433 is too big for a dense twin; verify cached rows
    // against an independent BFS over the edge list.
    CouplingMap hh = CouplingMap::heavyHex433();
    const int n = hh.numQubits();
    std::vector<std::vector<int>> adj;
    adj.resize(size_t(n));
    for (auto [a, b] : hh.edges()) {
        adj[size_t(a)].push_back(b);
        adj[size_t(b)].push_back(a);
    }
    for (int src : {0, 7, 100, 210, 345, 432}) {
        std::vector<int> ref(size_t(n), -1);
        ref[size_t(src)] = 0;
        std::vector<int> queue = {src};
        for (size_t head = 0; head < queue.size(); ++head) {
            for (int v : adj[size_t(queue[head])]) {
                if (ref[size_t(v)] < 0) {
                    ref[size_t(v)] = ref[size_t(queue[head])] + 1;
                    queue.push_back(v);
                }
            }
        }
        const int *row = hh.distanceRow(src);
        for (int b = 0; b < n; ++b)
            ASSERT_EQ(row[b], ref[size_t(b)]) << src << "->" << b;
    }
}

TEST(SparseRowCache, EvictionChurnStaysCorrect)
{
    CouplingMap::clearRowCache();
    CouplingMap::setRowCacheCapacity(8);
    CouplingMap dense = CouplingMap::grid(10, 10);
    CouplingMap sparse = dense.asSparse();
    const int n = dense.numQubits();
    // Cycle through far more sources than the cache holds (a pure
    // cyclic scan is LRU's worst case -- every access misses), with a
    // recurring hot source mixed in so the hit path is exercised too;
    // every returned row must match the dense table even right after an
    // eviction recycled its storage.
    for (int i = 0; i < 600; ++i) {
        const int src = (i % 3 == 0) ? 42 : (i * 37) % n;
        const int *row = sparse.distanceRow(src);
        ASSERT_EQ(std::memcmp(row, dense.distanceRow(src),
                              size_t(n) * sizeof(int)),
                  0)
            << "iteration " << i << " src " << src;
    }
    const auto stats = CouplingMap::rowCacheStats();
    EXPECT_LE(stats.rows, 8u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.hits + stats.misses, 600u);
    CouplingMap::clearRowCache();
    CouplingMap::setRowCacheCapacity(256);
}

TEST(SparseRowCache, CapacityIsClampedAndTwoRowsStayValid)
{
    CouplingMap::clearRowCache();
    CouplingMap::setRowCacheCapacity(1); // clamped to >= 8
    EXPECT_GE(CouplingMap::rowCacheStats().capacity, 8u);

    // The router's deltaSums holds two row pointers simultaneously;
    // fetching the second row must never invalidate the first.
    CouplingMap sparse = CouplingMap::grid(9, 9).asSparse();
    CouplingMap dense = CouplingMap::grid(9, 9);
    const int *row_a = sparse.distanceRow(3);
    const int *row_b = sparse.distanceRow(77);
    for (int b = 0; b < dense.numQubits(); ++b) {
        EXPECT_EQ(row_a[b], dense.distance(3, b));
        EXPECT_EQ(row_b[b], dense.distance(77, b));
    }
    CouplingMap::clearRowCache();
    CouplingMap::setRowCacheCapacity(256);
}

TEST(SparseRowCache, DistinctMapsDoNotAlias)
{
    // Two different sparse maps with overlapping qubit indices must not
    // serve each other's cached rows.
    CouplingMap a = CouplingMap::grid(5, 5).asSparse();
    CouplingMap b = CouplingMap::line(25).asSparse();
    EXPECT_EQ(a.distance(0, 24), 8);  // grid corner-to-corner
    EXPECT_EQ(b.distance(0, 24), 24); // line end-to-end
    EXPECT_EQ(a.distance(0, 24), 8);  // still the grid's row
    // A copy shares the topology id (identical edges => identical rows).
    CouplingMap a2 = a;
    EXPECT_EQ(a2.distance(0, 24), 8);
}

TEST(SparseLandmarks, LowerBoundIsAdmissibleAndSymmetric)
{
    for (const auto &sparse :
         {CouplingMap::heavyHex433(), CouplingMap::grid(6, 6).asSparse(),
          CouplingMap::heavyHex57().asSparse()}) {
        const int n = sparse.numQubits();
        for (int s = 0; s < 400; ++s) {
            const int a = (s * 89) % n;
            const int b = (s * 157 + 13) % n;
            const int exact = sparse.distance(a, b);
            const int bound = sparse.distanceLowerBound(a, b);
            ASSERT_GE(bound, a == b ? 0 : 1) << sparse.name();
            ASSERT_LE(bound, exact) << sparse.name() << " " << a << "," << b;
            EXPECT_EQ(bound, sparse.distanceLowerBound(b, a));
        }
    }
    // Dense mode returns the exact distance (tightest possible bound);
    // disconnected pairs mirror distance()'s -1.
    CouplingMap dense = CouplingMap::grid(4, 4);
    EXPECT_EQ(dense.distanceLowerBound(0, 15), dense.distance(0, 15));
    CouplingMap split(4, {{0, 1}, {2, 3}}, "split");
    EXPECT_EQ(split.asSparse().distanceLowerBound(0, 3), -1);
}

TEST(SparseRouting, BitIdenticalToDenseAtAnyThreadCount)
{
    // The whole point of the dense/sparse split: identical distances =>
    // identical SWAP decisions => bit-identical routed circuits. Run the
    // same trial grid on the dense map (serial) and the sparse twin
    // (serial and 4 threads); with threads=4 the per-thread row caches
    // are exercised concurrently, which the TSan job verifies race-free.
    auto circ = bench::qft(12, /*with_swaps=*/false);
    CouplingMap dense = CouplingMap::grid(6, 6);
    CouplingMap sparse = dense.asSparse();

    // Plain-SABRE trials (mirror decisions would need a cost model);
    // the distance hot path is identical either way.
    router::TrialOptions opts;
    opts.layoutTrials = 4;
    opts.swapTrials = 2;
    opts.threads = 1;

    auto ref = router::routeWithTrials(circ, dense, opts);
    auto sparse_serial = router::routeWithTrials(circ, sparse, opts);
    opts.threads = 4;
    auto sparse_parallel = router::routeWithTrials(circ, sparse, opts);

    EXPECT_TRUE(
        circuit::Circuit::bitIdentical(ref.routed, sparse_serial.routed));
    EXPECT_TRUE(
        circuit::Circuit::bitIdentical(ref.routed, sparse_parallel.routed));
    EXPECT_TRUE(ref.counters == sparse_serial.counters);
    EXPECT_TRUE(ref.counters == sparse_parallel.counters);
    EXPECT_EQ(ref.swapsAdded, sparse_serial.swapsAdded);
}

TEST(SparseRouting, DisconnectedTopologyFailsFastAtRouteEntry)
{
    // Regression for the -1 sentinel: routing used to feed -1 distances
    // straight into the heuristic's integer score sums.
    auto circ = bench::ghz(4);
    CouplingMap split(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}}, "split-2x3");
    router::TrialOptions opts;
    opts.layoutTrials = 1;
    opts.swapTrials = 1;
    EXPECT_THROW(router::routeWithTrials(circ, split, opts), TopologyError);
    router::PassOptions pass;
    layout::Layout trivial(6);
    EXPECT_THROW(router::routePass(circ, split, trivial, pass),
                 TopologyError);
    // The diagnostic names the map and the component count.
    try {
        router::routeWithTrials(circ, split, opts);
        FAIL() << "expected TopologyError";
    } catch (const TopologyError &e) {
        EXPECT_NE(std::string(e.what()).find("split-2x3"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("disconnected"),
                  std::string::npos);
    }
}
